/**
 * @file
 * E6 -- Table III: ResNet-50 forward conv+batchnorm on the DaVinci
 * accelerator model. "smart" reproduces the paper's observation that
 * isl's smartfuse failed to fuse convolutions with batch norms
 * (separate passes, GM round trip); "ours" is the post-tiling fused
 * schedule (conv output consumed from the Unified Buffer). The
 * fusion decision itself is validated by running the driver pipeline
 * on a per-layer conv+bn program.
 *
 * Paper numbers: fwd conv+bn 11.50 -> 6.69 ms (1.72x), entire
 * workload 35.03 -> 30.25 ms (1.16x).
 */

#include "bench/common.hh"
#include "memsim/davinci.hh"
#include "workloads/resnet50.hh"

using namespace polyfuse;
using namespace polyfuse::bench;

namespace {

/** The driver options of the accelerator deployment. */
driver::PipelineOptions
acceleratorOptions(driver::Strategy strategy)
{
    driver::PipelineOptions opts;
    opts.strategy = strategy;
    opts.tileSizes = {8, 4, 4};
    opts.startup = schedule::FusionPolicy::Min;
    return opts;
}

} // namespace

int
main()
{
    auto layers = workloads::resnet50Layers(/*batch=*/1);

    // Validate the fusion decision on a representative layer: our
    // composition fuses conv+bn, the Min startup (standing in for
    // isl's failed smartfuse) leaves them separate.
    {
        memsim::ConvLayer probe;
        probe.cin = 64;
        probe.cout = 64;
        probe.height = 16;
        probe.width = 16;
        probe.kernel = 3;
        ir::Program p = workloads::makeConvBnProgram(probe);
        auto state = driver::Pipeline(
                         acceleratorOptions(Strategy::Ours))
                         .run(p);
        std::printf("fusion check: composed conv+bn spaces = %zu "
                    "(fused intermediates: %zu)\n\n",
                    state.composed.spaces.size(),
                    state.composed.fusedIntermediates.size());
    }

    double smart_convbn = 0, ours_convbn = 0;
    double smart_gm = 0, ours_gm = 0;
    for (const auto &l : layers) {
        auto u = memsim::estimateConvBn(l, /*fused=*/false);
        auto f = memsim::estimateConvBn(l, /*fused=*/true);
        smart_convbn += u.totalMs;
        ours_convbn += f.totalMs;
        smart_gm += u.gmBytes;
        ours_gm += f.gmBytes;
    }

    // The rest of a training step (backward convs and the remaining
    // operators) is identical in both versions; the paper's numbers
    // imply rest = 35.03 - 11.50 = 23.53 ms. We model the rest as
    // 2x the unfused forward work (backward conv ~= 2x forward).
    double rest = 2.0 * smart_convbn;
    double smart_total = smart_convbn + rest;
    double ours_total = ours_convbn + rest;

    std::printf("=== Table III: ResNet-50 on the DaVinci model "
                "===\n");
    printRow("metric", {"smart", "ours", "speedup"});
    printRow("fwd conv+bn (ms)",
             {fmt(smart_convbn), fmt(ours_convbn),
              fmt(smart_convbn / ours_convbn, "%.2fx")});
    printRow("entire workload (ms)",
             {fmt(smart_total), fmt(ours_total),
              fmt(smart_total / ours_total, "%.2fx")});
    printRow("GM traffic (MB)",
             {fmt(smart_gm / 1e6), fmt(ours_gm / 1e6),
              fmt(smart_gm / ours_gm, "%.2fx")});

    // Compilation time over all 53 conv+bn layer programs
    // (scheduling + codegen through the driver; smartfuse schedules
    // both spaces separately and the code generator scans both
    // nests).
    double smart_ms = 0, ours_ms = 0;
    for (const auto &l : layers) {
        ir::Program p = workloads::makeConvBnProgram(l);
        smart_ms += driver::Pipeline(
                        acceleratorOptions(Strategy::SmartFuse))
                        .run(p)
                        .compileMs();
        ours_ms += driver::Pipeline(
                       acceleratorOptions(Strategy::Ours))
                       .run(p)
                       .compileMs();
    }
    std::printf("\ncompilation time over 53 layers: smart %.1f ms, "
                "ours %.1f ms\n",
                smart_ms, ours_ms);
    return 0;
}
