/**
 * @file
 * Kernel-cache benchmark — the machine-readable artifact/cache
 * baseline behind BENCH_cache.json.
 *
 * Every registry workload is compiled through driver::compileKernel
 * three ways:
 *
 *   off    no cache (the plain plan -> compile path)
 *   cold   first compile against a shared exec::KernelCache (miss:
 *          full pipeline + bytecode lowering + insert)
 *   warm   repeat compile against the same cache (hit: fingerprint
 *          lookup only, the whole Presburger/codegen pipeline is
 *          skipped)
 *
 * Besides compile wall-clock (warm is best of reps), every variant's
 * artifact is executed and the output buffers compared bit-for-bit
 * against the cache-off reference — the benchmark doubles as a
 * correctness gate and exits nonzero on any mismatch, missed warm
 * hit, or warm compile that still ran a pipeline pass.
 *
 * Modes:
 *   (none)    full sweep, aligned table on stdout
 *   --json    full sweep, one JSON object on stdout
 *   --smoke   three-workload subset at tiny sizes with the same
 *             assertions, well under 5 s; the check_cache_smoke
 *             ctest runs this
 */

#include <cmath>
#include <cstring>

#include "bench/common.hh"
#include "driver/artifact.hh"
#include "driver/registry.hh"
#include "exec/kernel_cache.hh"
#include "workloads/equake.hh"

using namespace polyfuse;
using namespace polyfuse::bench;

namespace {

struct CacheTimes
{
    std::string name;
    double offCompileMs = 0;  ///< no cache
    double coldCompileMs = 0; ///< miss (compile + insert)
    double warmCompileMs = 0; ///< hit (lookup only), best of reps
    bool warmHit = false;     ///< the repeat compile was a hit
    bool warmPipelineFree = false; ///< hit ran no pipeline pass
    bool identical = true;    ///< all variants match cache-off bits

    double
    speedup() const
    {
        return warmCompileMs > 0 ? coldCompileMs / warmCompileMs : 0;
    }
};

/** Compile-benchmark sizes: compile cost dominates and is largely
 *  size-independent, so modest sizes keep the execute gate fast. */
driver::WorkloadParams
benchParams(const std::string &name)
{
    if (name == "equake")
        return {256, 16};
    if (name == "convbn")
        return {8, 8};
    return {64, 64};
}

void
initInputs(const ir::Program &p, exec::Buffers &buf)
{
    if (p.name() == "equake") {
        workloads::initEquakeInputs(p, buf, 11);
        return;
    }
    defaultInit(p, buf);
}

bool
buffersEqual(const ir::Program &p, const exec::Buffers &a,
             const exec::Buffers &b)
{
    for (size_t t = 0; t < p.tensors().size(); ++t)
        if (a.data(t) != b.data(t))
            return false;
    return true;
}

exec::Buffers
runArtifact(const driver::KernelArtifact &artifact,
            const ir::Program &p)
{
    exec::Buffers buf(p);
    initInputs(p, buf);
    driver::executeKernel(artifact, buf);
    return buf;
}

CacheTimes
measureWorkload(const driver::WorkloadSpec &spec,
                const driver::WorkloadParams &params, int reps,
                exec::KernelCache &cache)
{
    CacheTimes r;
    r.name = spec.name;
    auto p = std::make_shared<const ir::Program>(spec.make(params));

    driver::PipelineOptions popts;
    popts.strategy = Strategy::Ours;
    popts.tileSizes = spec.defaultTiles;
    driver::Pipeline pipeline(popts);

    // Reference: no cache.
    Timer t_off;
    auto off = driver::compileKernel(pipeline, p);
    r.offCompileMs = t_off.milliseconds();

    // Cold: first compile against the shared cache (miss + insert).
    driver::ArtifactOptions aopts;
    aopts.cache = &cache;
    Timer t_cold;
    auto cold = driver::compileKernel(pipeline, p, aopts);
    r.coldCompileMs = t_cold.milliseconds();

    // Warm: repeat compiles are pure lookups; take the best.
    driver::KernelArtifact warm;
    r.warmCompileMs = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
        Timer t_warm;
        warm = driver::compileKernel(pipeline, p, aopts);
        r.warmCompileMs =
            std::min(r.warmCompileMs, t_warm.milliseconds());
    }
    r.warmHit = warm.fromCache;
    r.warmPipelineFree = warm.stats.passes().size() == 1 &&
                         warm.stats.passes()[0].name == "KernelCache";

    // Execute gate: every variant computes the cache-off bits.
    auto ref = runArtifact(off, *p);
    r.identical = buffersEqual(*p, ref, runArtifact(cold, *p)) &&
                  buffersEqual(*p, ref, runArtifact(warm, *p));
    return r;
}

double
geomeanSpeedup(const std::vector<CacheTimes> &rows)
{
    double acc = 0;
    int n = 0;
    for (const auto &r : rows) {
        double v = r.speedup();
        if (v > 0) {
            acc += std::log(v);
            ++n;
        }
    }
    return n ? std::exp(acc / n) : 0;
}

std::string
rowJson(const CacheTimes &r)
{
    std::string out = "{\"name\": \"" + r.name + "\"";
    out += ", \"offCompileMs\": " + fmt(r.offCompileMs, "%.4f");
    out += ", \"coldCompileMs\": " + fmt(r.coldCompileMs, "%.4f");
    out += ", \"warmCompileMs\": " + fmt(r.warmCompileMs, "%.4f");
    out += ", \"speedup\": " + fmt(r.speedup(), "%.2f");
    out += ", \"warmHit\": ";
    out += r.warmHit ? "true" : "false";
    out += ", \"identical\": ";
    out += r.identical ? "true" : "false";
    out += "}";
    return out;
}

bool
rowOk(const CacheTimes &r)
{
    return r.warmHit && r.warmPipelineFree && r.identical;
}

/** Smoke: tiny subset, hit/bit-identity gates only (timings are
 *  noise at this scale). Must stay well under the ctest budget. */
int
runSmoke()
{
    struct
    {
        const char *name;
        driver::WorkloadParams params;
    } subset[] = {
        {"conv2d", {24, 24}},
        {"harris", {24, 24}},
        {"2mm", {24, 24}},
    };
    exec::KernelCache cache;
    int failures = 0;
    for (const auto &s : subset) {
        const driver::WorkloadSpec *w = driver::findWorkload(s.name);
        if (!w) {
            std::printf("FAIL %s: not in registry\n", s.name);
            ++failures;
            continue;
        }
        CacheTimes r = measureWorkload(*w, s.params, 1, cache);
        bool ok = rowOk(r);
        std::printf("%-10s warm %s, pipeline %s, buffers %s\n",
                    s.name, r.warmHit ? "hit" : "MISS",
                    r.warmPipelineFree ? "skipped" : "RAN",
                    r.identical ? "bit-identical" : "MISMATCH");
        failures += ok ? 0 : 1;
    }
    if (failures) {
        std::printf("FAILED: %d cache gate failures\n", failures);
        return 1;
    }
    std::printf("ok\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false, json = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
        else if (!std::strcmp(argv[i], "--json"))
            json = true;
        else {
            std::fprintf(stderr,
                         "usage: bench_cache [--smoke] [--json]\n");
            return 2;
        }
    }
    if (smoke)
        return runSmoke();

    exec::KernelCache cache;
    std::vector<CacheTimes> rows;
    for (const auto &w : driver::workloadRegistry())
        rows.push_back(
            measureWorkload(w, benchParams(w.name), 5, cache));

    double geo = geomeanSpeedup(rows);
    bool all_ok = true;
    for (const auto &r : rows)
        all_ok = all_ok && rowOk(r);
    const auto &c = cache.counters();

    if (json) {
        std::string out = "{\"bench\": \"cache\", ";
        out += "\"strategy\": \"ours\", \"warmReps\": 5, ";
        out += "\"workloads\": [";
        for (size_t i = 0; i < rows.size(); ++i) {
            if (i)
                out += ", ";
            out += rowJson(rows[i]);
        }
        out += "], \"geomeanWarmSpeedup\": " + fmt(geo, "%.1f");
        out += ", \"cacheHits\": " + std::to_string(c.hits);
        out += ", \"cacheMisses\": " + std::to_string(c.misses);
        out += ", \"cacheInsertions\": " +
               std::to_string(c.insertions);
        out += ", \"cacheEvictions\": " + std::to_string(c.evictions);
        out += ", \"cacheBytes\": " + std::to_string(cache.bytes());
        out += ", \"allIdentical\": ";
        out += all_ok ? "true" : "false";
        out += "}";
        std::printf("%s\n", out.c_str());
        return all_ok ? 0 : 1;
    }

    std::printf("=== Kernel cache (strategy ours, warm best of 5) "
                "===\n");
    printRow("workload",
             {"off ms", "cold ms", "warm ms", "speedup", "warm",
              "buffers"},
             11);
    for (const auto &r : rows)
        printRow(r.name,
                 {fmt(r.offCompileMs), fmt(r.coldCompileMs),
                  fmt(r.warmCompileMs, "%.4f"),
                  fmt(r.speedup(), "%.0fx"),
                  r.warmHit ? "hit" : "MISS",
                  r.identical ? "identical" : "MISMATCH"},
                 11);
    printRow("geomean", {"", "", "", fmt(geo, "%.0fx"), "", ""}, 11);
    std::printf("cache: %llu hits, %llu misses, %llu insertions, "
                "%llu evictions, %llu bytes\n",
                (unsigned long long)c.hits,
                (unsigned long long)c.misses,
                (unsigned long long)c.insertions,
                (unsigned long long)c.evictions,
                (unsigned long long)cache.bytes());
    return all_ok ? 0 : 1;
}
