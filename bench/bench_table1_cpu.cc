/**
 * @file
 * E1 -- Table I (CPU): the six PolyMage image pipelines under the
 * naive schedule, PolyMage (tiling-after-fusion, over-approximated
 * overlapped tiles), the Halide manual-schedule proxy, and the
 * paper's composition. Reports measured single-thread execution of
 * the generated loop nests, the modeled 32-core time, simulated DRAM
 * traffic, and compilation time.
 *
 * Paper expectation (shape): ours >= PolyMage >= naive and ours >=
 * Halide on most pipelines; mean improvement of ours over PolyMage
 * ~20% and over Halide ~33%.
 */

#include "bench/common.hh"
#include "workloads/pipelines.hh"

using namespace polyfuse;
using namespace polyfuse::bench;

namespace {

struct Entry
{
    const char *name;
    ir::Program (*make)(const workloads::PipelineConfig &);
    std::vector<int64_t> tiles; ///< auto-tuned sizes from Table I
};

} // namespace

int
main()
{
    workloads::PipelineConfig cfg{256, 256};
    // Tile sizes auto-tuned for these problem sizes (the paper
    // likewise uses per-benchmark auto-tuned sizes, Table I).
    std::vector<Entry> entries = {
        {"Bilateral Grid", workloads::makeBilateralGrid, {128, 128}},
        {"Camera Pipeline", workloads::makeCameraPipeline, {32, 64}},
        {"Harris Corner", workloads::makeHarris, {32, 128}},
        {"Local Laplacian", workloads::makeLocalLaplacian, {32, 64}},
        {"Multiscale Interp.", workloads::makeMultiscaleInterp,
         {32, 64}},
        {"Unsharp Mask", workloads::makeUnsharpMask, {8, 128}},
    };
    std::vector<Strategy> strategies = {Strategy::Naive,
                                        Strategy::PolyMage,
                                        Strategy::Halide,
                                        Strategy::Ours};

    std::printf("=== Table I (CPU): PolyMage benchmarks, %lldx%lld "
                "===\n",
                (long long)cfg.rows, (long long)cfg.cols);
    printRow("benchmark/strategy",
             {"model-1t(ms)", "model-32t", "dram(MB)", "compile(ms)",
              "speedup"});

    for (const auto &e : entries) {
        ir::Program p = e.make(cfg);
        double naive_1t = 0;
        for (Strategy s : strategies) {
            RunOptions opts;
            opts.tileSizes = e.tiles;
            RunResult r = runStrategy(
                p, s, opts,
                [&](exec::Buffers &b) { defaultInit(p, b); });
            double t1 =
                perfmodel::modeledCpuMs(r.stats, r.cache, 1);
            double t32 =
                perfmodel::modeledCpuMs(r.stats, r.cache, 32);
            if (s == Strategy::Naive)
                naive_1t = t1; // Table I baseline: naive on 1 core
            printRow(std::string(e.name) + "/" + strategyName(s),
                     {fmt(t1), fmt(t32),
                      fmt(r.cache.dramBytes / 1e6),
                      fmt(r.compileMs),
                      fmt(naive_1t / t32, "%.2fx")});
        }
        std::printf("\n");
    }
    std::printf("model-Nt: CPU cost model (compute via the "
                "schedule's own parallel fraction,\nshared-DRAM "
                "bandwidth bound from simulated traffic); speedup = "
                "naive(1t)/strategy(32t).\n");
    return 0;
}
