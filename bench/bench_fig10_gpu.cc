/**
 * @file
 * E5 -- Fig. 10: the image pipelines on the GPU model. PPCG minfuse
 * (the paper's baseline), smartfuse, maxfuse, the Halide proxy and
 * our composition; speedup over minfuse.
 *
 * Paper expectation (shape): ours wins by keeping intermediates in
 * shared memory (promoted scratchpads) while preserving 2-level
 * parallelism; maxfuse suffers where fusion costs parallelism.
 */

#include "bench/common.hh"
#include "workloads/pipelines.hh"

using namespace polyfuse;
using namespace polyfuse::bench;

int
main()
{
    workloads::PipelineConfig cfg{256, 256};
    struct Entry
    {
        const char *name;
        ir::Program (*make)(const workloads::PipelineConfig &);
        std::vector<int64_t> tiles; ///< GPU grid params of Table I
    };
    std::vector<Entry> entries = {
        {"BG", workloads::makeBilateralGrid, {64, 64}},
        {"CP", workloads::makeCameraPipeline, {16, 32}},
        {"HC", workloads::makeHarris, {16, 32}},
        {"LF", workloads::makeLocalLaplacian, {8, 64}},
        {"MI", workloads::makeMultiscaleInterp, {32, 16}},
        {"UM", workloads::makeUnsharpMask, {8, 32}},
    };
    std::vector<Strategy> strategies = {
        Strategy::MinFuse, Strategy::SmartFuse, Strategy::MaxFuse,
        Strategy::Halide, Strategy::Ours};

    std::printf("=== Fig. 10: GPU model (speedup over minfuse) "
                "===\n");
    printRow("bench/strategy",
             {"model(ms)", "dram(MB)", "shared(MB)", "occup",
              "speedup"});
    for (const auto &e : entries) {
        ir::Program p = e.make(cfg);
        double base = 0;
        for (Strategy s : strategies) {
            RunOptions opts;
            opts.tileSizes = e.tiles;
            opts.targetParallelism = 2;
            RunResult r = runStrategy(
                p, s, opts,
                [&](exec::Buffers &b) { defaultInit(p, b); });
            auto est = memsim::estimateGpu(p, r.ast, r.stats,
                                           r.gpuCounts);
            if (s == Strategy::MinFuse)
                base = est.ms;
            printRow(std::string(e.name) + "/" + strategyName(s),
                     {fmt(est.ms, "%.3f"),
                      fmt(est.globalBytes / 1e6),
                      fmt(est.sharedBytes / 1e6),
                      fmt(est.occupancy),
                      fmt(base / est.ms, "%.2fx")});
        }
        std::printf("\n");
    }
    return 0;
}
