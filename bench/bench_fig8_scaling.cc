/**
 * @file
 * E2 -- Fig. 8: per-pipeline speedup over the sequential naive code
 * at 1, 4, 16 and 32 threads for PolyMage-naive, PolyMage-optimized,
 * the Halide proxy and our composition. Thread scaling is modeled
 * from each schedule's measured single-thread time and its own
 * parallel fraction.
 *
 * Paper expectation (shape): all optimized versions scale with
 * threads (they preserve outer parallelism); ours is on top or tied
 * on every pipeline.
 */

#include "bench/common.hh"
#include "workloads/pipelines.hh"

using namespace polyfuse;
using namespace polyfuse::bench;

int
main()
{
    workloads::PipelineConfig cfg{256, 256};
    struct Entry
    {
        const char *name;
        ir::Program (*make)(const workloads::PipelineConfig &);
        std::vector<int64_t> tiles;
    };
    std::vector<Entry> entries = {
        {"BilateralGrid", workloads::makeBilateralGrid, {128, 128}},
        {"CameraPipeline", workloads::makeCameraPipeline, {32, 64}},
        {"HarrisCorner", workloads::makeHarris, {32, 128}},
        {"LocalLaplacian", workloads::makeLocalLaplacian, {32, 64}},
        {"MultiscaleInterp", workloads::makeMultiscaleInterp,
         {32, 64}},
        {"UnsharpMask", workloads::makeUnsharpMask, {8, 128}},
    };
    std::vector<Strategy> strategies = {Strategy::Naive,
                                        Strategy::PolyMage,
                                        Strategy::Halide,
                                        Strategy::Ours};
    std::vector<unsigned> threads = {1, 4, 16, 32};

    std::printf("=== Fig. 8: speedup over sequential naive vs "
                "threads ===\n");
    for (const auto &e : entries) {
        ir::Program p = e.make(cfg);
        std::printf("--- %s ---\n", e.name);
        printRow("strategy", {"t=1", "t=4", "t=16", "t=32"});
        double naive_1t = 0;
        for (Strategy s : strategies) {
            RunOptions opts;
            opts.tileSizes = e.tiles;
            RunResult r = runStrategy(
                p, s, opts,
                [&](exec::Buffers &b) { defaultInit(p, b); });
            if (s == Strategy::Naive)
                naive_1t =
                    perfmodel::modeledCpuMs(r.stats, r.cache, 1);
            std::vector<std::string> cells;
            for (unsigned t : threads) {
                double ms =
                    perfmodel::modeledCpuMs(r.stats, r.cache, t);
                cells.push_back(fmt(naive_1t / ms, "%.2f"));
            }
            printRow(strategyName(s), cells);
        }
        std::printf("\n");
    }
    return 0;
}
