/**
 * @file
 * E8 -- ablation of the design choices DESIGN.md calls out, on the
 * Harris pipeline, each variant expressed as driver pipeline
 * options:
 *
 *   full            the composition as published
 *   no-promotion    extension fusion but intermediates stay in DRAM
 *                   (shows the contribution of Sec. V-B storage
 *                   reduction; uses an out-of-place-safe pipeline)
 *   dilated         PolyMage-style over-approximated footprints
 *                   (shows the cost of loose tile shapes)
 *   no-guard        recompute guard disabled (maxRecompute = inf)
 *   tiling-only     live-out tiling without post-tiling fusion
 *                   (smartfuse + tiles: what tiling-after-fusion
 *                   already achieves)
 */

#include "bench/common.hh"
#include "workloads/pipelines.hh"

using namespace polyfuse;
using namespace polyfuse::bench;

namespace {

struct Variant
{
    const char *name;
    bool promote;
    unsigned dilation;
    double maxRecompute;
    bool fusion; ///< false: smartfuse + tiling only
};

} // namespace

int
main()
{
    ir::Program p = workloads::makeHarris({256, 256});
    std::vector<Variant> variants = {
        {"full", true, 0, 4.0, true},
        {"no-promotion", false, 0, 4.0, true},
        {"dilated", true, 1, 4.0, true},
        {"no-guard", true, 0, 1e30, true},
        {"tiling-only", true, 0, 4.0, false},
    };

    std::printf("=== Ablation (Harris, 256x256, tiles 32x128) ===\n");
    printRow("variant",
             {"model-32t(ms)", "dram(MB)", "instances", "compile"});
    for (const auto &v : variants) {
        driver::PipelineOptions popts;
        popts.strategy =
            v.fusion ? Strategy::Ours : Strategy::SmartFuse;
        popts.tileSizes = {32, 128};
        popts.footprintDilation = v.dilation;
        popts.maxRecompute = v.maxRecompute;
        popts.gen.promoteIntermediates = v.promote;
        auto state = driver::Pipeline(popts).run(p);

        exec::Buffers buf(p);
        defaultInit(p, buf);
        memsim::MemoryHierarchy mem(
            memsim::CacheConfig{16 * 1024, 64, 8, "L1"},
            memsim::CacheConfig{256 * 1024, 64, 16, "L2"});
        for (size_t t = 0; t < p.tensors().size(); ++t) {
            mem.addSpace(t, p.tensorSize(t));
            mem.addSpace(p.tensors().size() + t, p.tensorSize(t));
        }
        auto stats = exec::run(p, state.ast, buf,
                               [&](int space, int64_t off, bool w) {
                                   mem.access(space, off, w);
                               });
        printRow(v.name,
                 {fmt(perfmodel::modeledCpuMs(stats, mem.stats(), 32),
                      "%.3f"),
                  fmt(mem.stats().dramBytes / 1e6),
                  fmt(double(stats.instances), "%.0f"),
                  fmt(state.compileMs())});
    }
    std::printf("\nNote: Harris' stages write out of place, so the "
                "no-promotion variant is\nsemantically safe here "
                "(see GenOptions::promoteIntermediates).\n");
    return 0;
}
