/**
 * @file
 * E3 -- Fig. 9: equake on the test/train/ref problem sizes under
 * minfuse, smartfuse, maxfuse and our composition (speedup over
 * minfuse, modeled at 32 threads).
 *
 * Paper expectation (shape): our fusion equals maxfuse's grouping
 * (the gather fused with the follow-up elementwise nests) and both
 * beat the conservative heuristics; our approach needs no manual
 * while-loop permutation (the dynamic bound is folded into the
 * body, Sec. VI-A).
 */

#include "bench/common.hh"
#include "workloads/equake.hh"

using namespace polyfuse;
using namespace polyfuse::bench;

int
main()
{
    struct SizeEntry
    {
        const char *name;
        workloads::EquakeConfig cfg;
    };
    std::vector<SizeEntry> sizes = {
        {"test", workloads::EquakeConfig::test()},
        {"train", workloads::EquakeConfig::train()},
        {"ref", workloads::EquakeConfig::ref()},
    };
    std::vector<Strategy> strategies = {
        Strategy::MinFuse, Strategy::SmartFuse, Strategy::MaxFuse,
        Strategy::Ours};

    std::printf("=== Fig. 9: equake (speedup over minfuse, modeled "
                "32 threads) ===\n");
    printRow("size/strategy",
             {"model-1t(ms)", "model-32t", "dram(MB)", "speedup"});
    for (const auto &se : sizes) {
        ir::Program p = workloads::makeEquake(se.cfg);
        double base = 0;
        for (Strategy s : strategies) {
            RunOptions opts;
            opts.tileSizes = {512};
            RunResult r = runStrategy(
                p, s, opts, [&](exec::Buffers &b) {
                    workloads::initEquakeInputs(p, b, 11);
                });
            double t32 =
                perfmodel::modeledCpuMs(r.stats, r.cache, 32);
            if (s == Strategy::MinFuse)
                base = t32;
            printRow(std::string(se.name) + "/" + strategyName(s),
                     {fmt(perfmodel::modeledCpuMs(r.stats, r.cache,
                                                  1)),
                      fmt(t32),
                      fmt(r.cache.dramBytes / 1e6),
                      fmt(base / t32, "%.2fx")});
        }
        std::printf("\n");
    }
    return 0;
}
