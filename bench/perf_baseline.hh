/**
 * @file
 * Shared machinery of the machine-readable perf baseline
 * (BENCH_presburger.json / BENCH_compile_time.json): compiling each
 * registry workload twice in the same process — once in the baseline
 * configuration (forced-heap SmallVec rows, op cache off, i.e. the
 * pre-overhaul Presburger layer) and once optimized (inline rows,
 * cache on) — and comparing wall time, FM work and generated code.
 *
 * Both configurations run the identical binary; the baseline is
 * selected purely through the ScopedForceHeap test hook and
 * CompileContext::setOpCacheEnabled(false), so the measured delta is
 * exactly the row-storage + memoization work, not compiler-flag
 * noise. The generated C of both sides must be byte-identical; every
 * consumer of these helpers checks it.
 */

#ifndef POLYFUSE_BENCH_PERF_BASELINE_HH
#define POLYFUSE_BENCH_PERF_BASELINE_HH

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "codegen/cprinter.hh"
#include "driver/compile_context.hh"
#include "driver/registry.hh"
#include "support/small_vec.hh"

namespace polyfuse {
namespace bench {

/** One timed compilation (full pipeline, deps included). */
struct PerfMeasurement
{
    double ms = 0;         ///< fastest rep's pipeline wall time
    pres::fm::Counters fm; ///< that rep's context totals
    std::string code;      ///< printCode of the produced AST
};

/** One side of the A/B comparison. */
struct PerfVariant
{
    bool opCache = true;    ///< memoize Presburger operations
    bool inlineRows = true; ///< false forces SmallVec rows to heap
};

/** Compile @p p (a registry workload's program) once per rep with
 *  strategy "ours" and the workload's default tiles; keep the
 *  fastest rep. The program is built by the caller, once, so reps
 *  measure compilation only. */
inline PerfMeasurement
compileForPerf(const driver::WorkloadSpec &w, const ir::Program &p,
               const PerfVariant &v, int reps)
{
    PerfMeasurement best;
    best.ms = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
        std::unique_ptr<support::ScopedForceHeap> heap;
        if (!v.inlineRows)
            heap.reset(new support::ScopedForceHeap());
        driver::CompileContext ctx;
        ctx.setOpCacheEnabled(v.opCache);
        driver::PipelineOptions opts;
        opts.strategy = Strategy::Ours;
        opts.tileSizes = w.defaultTiles;
        Timer t;
        auto state = driver::Pipeline(opts).run(p, ctx);
        double ms = t.milliseconds();
        if (ms < best.ms) {
            best.ms = ms;
            best.fm = ctx.fmCounters();
            best.code = codegen::printCode(p, state.ast);
        }
    }
    return best;
}

/** Baseline vs optimized on one workload. */
struct PerfComparison
{
    std::string name;
    PerfMeasurement baseline;  ///< heap rows + cache off
    PerfMeasurement optimized; ///< inline rows + cache on

    double
    speedup() const
    {
        return optimized.ms > 0 ? baseline.ms / optimized.ms : 0;
    }

    /** Optimized run's cache hit rate in [0, 1]. */
    double
    hitRate() const
    {
        double total = double(optimized.fm.cacheHits) +
                       double(optimized.fm.cacheMisses);
        return total > 0 ? optimized.fm.cacheHits / total : 0;
    }

    /** Byte-identical generated C (the correctness gate). */
    bool identical() const { return baseline.code == optimized.code; }
};

/** Compare every registry workload, baseline then optimized, in
 *  registry order. Sequential by construction (--jobs 1). */
inline std::vector<PerfComparison>
sweepRegistryPerf(int reps)
{
    std::vector<PerfComparison> out;
    for (const auto &w : driver::workloadRegistry()) {
        ir::Program p = w.make(w.defaults);
        PerfComparison c;
        c.name = w.name;
        c.baseline = compileForPerf(w, p, {false, false}, reps);
        c.optimized = compileForPerf(w, p, {true, true}, reps);
        out.push_back(std::move(c));
    }
    return out;
}

/** Geometric-mean speedup over a sweep. */
inline double
geomeanSpeedup(const std::vector<PerfComparison> &cs)
{
    if (cs.empty())
        return 0;
    double log_sum = 0;
    for (const auto &c : cs)
        log_sum += std::log(c.speedup());
    return std::exp(log_sum / double(cs.size()));
}

/** One workload's JSON object (shared BENCH_*.json row schema). */
inline std::string
perfComparisonJson(const PerfComparison &c)
{
    std::string out = "{\"name\": \"" + c.name + "\"";
    out += ", \"baselineMs\": " + fmt(c.baseline.ms, "%.4f");
    out += ", \"optimizedMs\": " + fmt(c.optimized.ms, "%.4f");
    out += ", \"speedup\": " + fmt(c.speedup(), "%.4f");
    out += ", \"fmElims\": " +
           std::to_string(c.optimized.fm.eliminations);
    out += ", \"fmRows\": " +
           std::to_string(c.optimized.fm.constraintsVisited);
    out += ", \"cacheHits\": " +
           std::to_string(c.optimized.fm.cacheHits);
    out += ", \"cacheMisses\": " +
           std::to_string(c.optimized.fm.cacheMisses);
    out += ", \"cacheHitRate\": " + fmt(c.hitRate(), "%.4f");
    out += ", \"identicalCode\": ";
    out += c.identical() ? "true" : "false";
    out += "}";
    return out;
}

} // namespace bench
} // namespace polyfuse

#endif // POLYFUSE_BENCH_PERF_BASELINE_HH
