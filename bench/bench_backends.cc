/**
 * @file
 * Backend-registry benchmark — the machine-readable baseline behind
 * BENCH_backends.json, and the measurement half of the "one
 * numerical contract" story (ISSUE 9).
 *
 * Every registry workload is compiled once with the paper's
 * composition strategy, then executed on every registered backend
 * (exec::backendRegistry(): tier x parallel strategy x simd). Each
 * backend row records latency (best of reps) *and* numerical
 * deviation against the interpreter reference — max absolute
 * difference and max ULP distance over every buffer — plus whether
 * the run honored the backend's declared contract (today every
 * backend declares bit-identity; the deviation columns exist so a
 * future reassociating backend lands with its bound measured, not
 * asserted).
 *
 * Native backends need a working C toolchain and fork cc once per
 * (workload, team shape); they are skipped when no toolchain is
 * found, never silently substituted.
 *
 * Modes:
 *   (none)    full sweep, aligned table on stdout
 *   --json    full sweep, one JSON object on stdout
 *   --smoke   two-workload subset at tiny sizes, in-process
 *             backends only, same contract assertions, well under
 *             0.5 s; the check_backends_smoke ctest runs this
 */

#include <cmath>
#include <cstring>
#include <memory>

#ifdef __linux__
#include <sched.h>
#endif

#include "bench/common.hh"
#include "driver/registry.hh"
#include "exec/kernel_cache.hh"
#include "exec/native.hh"
#include "support/thread_pool.hh"
#include "workloads/equake.hh"

using namespace polyfuse;
using namespace polyfuse::bench;

namespace {

/** Sizes tuned like bench_runtime's: stable ratios, interp leg in
 *  fractions of a second. */
driver::WorkloadParams
benchParams(const std::string &name)
{
    if (name == "equake")
        return {1024, 16};
    if (name == "convbn")
        return {8, 16};
    if (name == "2mm" || name == "covariance")
        return {96, 96};
    if (name == "gemver")
        return {256, 256};
    if (name == "unsharp")
        return {64, 128};
    return {128, 128};
}

void
initInputs(const ir::Program &p, exec::Buffers &buf)
{
    if (p.name() == "equake") {
        workloads::initEquakeInputs(p, buf, 11);
        return;
    }
    defaultInit(p, buf);
}

/** Threads this process may actually run on: the affinity mask when
 *  the kernel exposes one (a pinned container reports every core
 *  via hardware_concurrency but schedules on one). */
unsigned
affinityThreads()
{
#ifdef __linux__
    cpu_set_t set;
    CPU_ZERO(&set);
    if (sched_getaffinity(0, sizeof(set), &set) == 0) {
        int n = CPU_COUNT(&set);
        if (n > 0)
            return unsigned(n);
    }
#endif
    return ThreadPool::defaultThreads();
}

/** One backend's measurement on one workload. */
struct BackendPoint
{
    std::string backend;
    double ms = -1; ///< < 0: backend unavailable here
    exec::BufferDeviation dev;
    bool withinContract = true;
    std::string degraded; ///< first fallback reason, if any
};

struct WorkloadRow
{
    std::string name;
    std::vector<BackendPoint> points;

    bool
    allWithinContract() const
    {
        for (const auto &pt : points)
            if (!pt.withinContract)
                return false;
        return true;
    }
};

WorkloadRow
measureWorkload(const driver::WorkloadSpec &spec,
                const driver::WorkloadParams &params, int reps,
                bool with_native)
{
    WorkloadRow row;
    row.name = spec.name;

    auto program = std::make_shared<const ir::Program>(
        spec.make(params));
    driver::PipelineOptions popts;
    popts.strategy = Strategy::Ours;
    popts.tileSizes = spec.defaultTiles;
    auto state = driver::Pipeline(popts).run(*program);

    // One image shared by every backend: the bytecode compiles
    // once, and native team shapes memoize per backend slot.
    auto image = std::make_shared<exec::KernelImage>();
    image->program = program;
    image->ast = state.ast;
    image->genBands = std::move(state.genBands);
    image->tileBands = std::move(state.tileBands);
    image->bytecode =
        exec::BytecodeKernel::compile(*program, image->ast);

    // Reference: the interpreter, the root of the contract.
    exec::Buffers ref(*program);
    initInputs(*program, ref);
    exec::ExecOptions iopts;
    iopts.tier = exec::Tier::Interp;
    exec::execute(*image, ref, iopts);

    for (const auto &b : exec::backendRegistry()) {
        BackendPoint pt;
        pt.backend = b.name;
        if (b.tier == exec::Tier::Native && !with_native) {
            row.points.push_back(pt);
            continue;
        }
        exec::ExecOptions eopts = exec::backendOptions(b);
        eopts.tileBands = &image->tileBands;

        // Warmup run doubles as the deviation measurement (native
        // backends pay their cc fork here, outside the timing).
        exec::Buffers buf(*program);
        initInputs(*program, buf);
        exec::ExecResult r = exec::execute(*image, buf, eopts);
        pt.dev = exec::bufferDeviation(*program, ref, buf);
        pt.withinContract =
            b.bitIdentical ? pt.dev.bitIdentical
                           : pt.dev.maxAbs <= b.maxAbsResidual;
        if (!r.fallbackReason.empty())
            pt.degraded = r.fallbackReason;
        else if (!r.parFallbackReason.empty())
            pt.degraded = r.parFallbackReason;
        else if (!r.simdFallbackReason.empty())
            pt.degraded = r.simdFallbackReason;

        pt.ms = r.stats.seconds * 1e3;
        for (int rep = 1; rep < reps; ++rep) {
            exec::Buffers again(*program);
            initInputs(*program, again);
            exec::ExecResult rr = exec::execute(*image, again, eopts);
            pt.ms = std::min(pt.ms, rr.stats.seconds * 1e3);
        }
        row.points.push_back(pt);
    }
    return row;
}

std::string
pointJson(const BackendPoint &pt)
{
    std::string out = "{\"backend\": \"" + pt.backend + "\"";
    if (pt.ms < 0)
        return out + ", \"available\": false}";
    out += ", \"ms\": " + fmt(pt.ms, "%.4f");
    out += ", \"maxAbsDeviation\": " + fmt(pt.dev.maxAbs, "%.17g");
    out += ", \"maxUlpDeviation\": " +
           std::to_string(pt.dev.maxUlp);
    out += ", \"identical\": ";
    out += pt.dev.bitIdentical ? "true" : "false";
    out += ", \"withinContract\": ";
    out += pt.withinContract ? "true" : "false";
    if (!pt.degraded.empty())
        out += ", \"degraded\": \"" + pt.degraded + "\"";
    out += "}";
    return out;
}

/** Smoke: two workloads, in-process backends only (native forks a
 *  compiler per team shape; the ctest budget is 0.5 s). */
int
runSmoke()
{
    struct
    {
        const char *name;
        driver::WorkloadParams params;
    } subset[] = {
        {"harris", {24, 24}},
        {"2mm", {24, 24}},
    };
    int failures = 0;
    for (const auto &s : subset) {
        const driver::WorkloadSpec *w = driver::findWorkload(s.name);
        if (!w) {
            std::printf("FAIL %s: not in registry\n", s.name);
            ++failures;
            continue;
        }
        WorkloadRow row = measureWorkload(*w, s.params, 1, false);
        for (const auto &pt : row.points) {
            if (pt.ms < 0)
                continue; // native skipped by design here
            if (!pt.withinContract) {
                std::printf("FAIL %s/%s: outside contract "
                            "(maxUlp %llu)\n",
                            row.name.c_str(), pt.backend.c_str(),
                            (unsigned long long)pt.dev.maxUlp);
                ++failures;
            }
        }
        std::printf("%-10s in-process backends: %s\n",
                    row.name.c_str(),
                    row.allWithinContract() ? "within contract"
                                            : "CONTRACT VIOLATION");
    }
    if (failures) {
        std::printf("FAILED: %d contract violations\n", failures);
        return 1;
    }
    std::printf("ok\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false, json = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
        else if (!std::strcmp(argv[i], "--json"))
            json = true;
        else {
            std::fprintf(
                stderr,
                "usage: bench_backends [--smoke] [--json]\n");
            return 2;
        }
    }
    if (smoke)
        return runSmoke();

    const int reps = 3;
    bool with_native = exec::NativeKernel::toolchainAvailable();
    unsigned hw = ThreadPool::defaultThreads();
    unsigned aff = affinityThreads();
    bool single_core = hw <= 1 || aff <= 1;

    std::vector<WorkloadRow> rows;
    for (const auto &w : driver::workloadRegistry())
        rows.push_back(measureWorkload(w, benchParams(w.name), reps,
                                       with_native));

    bool all_ok = true;
    for (const auto &r : rows)
        all_ok = all_ok && r.allWithinContract();

    if (json) {
        std::string out = "{\"bench\": \"backends\", ";
        out += "\"strategy\": \"ours\", \"reps\": " +
               std::to_string(reps);
        out += ", \"hardwareThreads\": " + std::to_string(hw);
        out += ", \"affinityThreads\": " + std::to_string(aff);
        // Parallel-backend latencies on a single-core box measure
        // scheduling overhead, not speedup: the flag tells every
        // consumer not to read them as one.
        out += ", \"singleCore\": ";
        out += single_core ? "true" : "false";
        out += ", \"simdWidth\": " +
               std::to_string(exec::simdWidth());
        out += ", \"nativeToolchain\": ";
        out += with_native ? "true" : "false";
        out += ", \"workloads\": [";
        for (size_t i = 0; i < rows.size(); ++i) {
            if (i)
                out += ", ";
            out += "{\"name\": \"" + rows[i].name +
                   "\", \"backends\": [";
            for (size_t j = 0; j < rows[i].points.size(); ++j) {
                if (j)
                    out += ", ";
                out += pointJson(rows[i].points[j]);
            }
            out += "]}";
        }
        out += "], \"allWithinContract\": ";
        out += all_ok ? "true" : "false";
        out += "}";
        std::printf("%s\n", out.c_str());
        return all_ok ? 0 : 1;
    }

    std::printf("=== Backend registry (strategy ours, best of %d, "
                "%u hardware threads%s) ===\n",
                reps, hw, single_core ? ", SINGLE CORE" : "");
    if (single_core)
        std::printf("note: single-core machine; parallel-backend "
                    "latencies are overhead measurements, not "
                    "speedups\n");
    for (const auto &r : rows) {
        std::printf("%s\n", r.name.c_str());
        printRow("  backend",
                 {"ms", "maxAbs", "maxUlp", "contract"}, 11);
        for (const auto &pt : r.points) {
            if (pt.ms < 0) {
                printRow("  " + pt.backend,
                         {"-", "-", "-", "skipped"}, 11);
                continue;
            }
            printRow("  " + pt.backend,
                     {fmt(pt.ms), fmt(pt.dev.maxAbs, "%.2g"),
                      std::to_string(pt.dev.maxUlp),
                      pt.withinContract ? "ok" : "VIOLATION"},
                     11);
        }
    }
    return all_ok ? 0 : 1;
}
