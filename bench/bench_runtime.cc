/**
 * @file
 * Execution-tier benchmark — the machine-readable runtime baseline
 * behind BENCH_runtime.json.
 *
 * Every registry workload is compiled once with the paper's
 * composition strategy, then executed on each tier:
 *
 *   interp    the Tier-0 reference interpreter (exec/executor.hh)
 *   bytecode  the Tier-1 compiled tape (exec/bytecode.hh)
 *   native    the Tier-2 dlopen'ed C kernel (exec/native.hh),
 *             included when a C toolchain is present
 *
 * Besides wall-clock (best of reps), every tier's output buffers are
 * compared bit-for-bit against the interpreter's — the benchmark
 * doubles as a correctness gate and exits nonzero on any mismatch.
 *
 * Modes:
 *   (none)    full sweep, aligned table on stdout
 *   --json    full sweep, one JSON object on stdout
 *   --smoke   three-workload subset at tiny sizes with the same
 *             equality assertions, well under 0.5 s; the
 *             check_exec_smoke ctest runs this
 */

#include <cmath>
#include <cstring>

#include "bench/common.hh"
#include "driver/registry.hh"
#include "exec/bytecode.hh"
#include "exec/native.hh"
#include "workloads/equake.hh"

using namespace polyfuse;
using namespace polyfuse::bench;

namespace {

struct TierTimes
{
    std::string name;
    double interpMs = 0;
    double bytecodeMs = 0;
    double nativeMs = -1; ///< < 0: tier unavailable
    bool identical = true;

    double
    speedup() const
    {
        return bytecodeMs > 0 ? interpMs / bytecodeMs : 0;
    }

    double
    nativeSpeedup() const
    {
        return nativeMs > 0 ? interpMs / nativeMs : 0;
    }
};

/** Benchmark sizes: large enough for stable ratios, small enough
 *  that the interpreter leg stays in fractions of a second. */
driver::WorkloadParams
benchParams(const std::string &name)
{
    if (name == "equake")
        return {1024, 16};
    if (name == "convbn")
        return {8, 16};
    if (name == "2mm" || name == "covariance")
        return {96, 96};
    if (name == "gemver")
        return {256, 256};
    if (name == "unsharp")
        return {64, 128};
    return {128, 128};
}

void
initInputs(const ir::Program &p, exec::Buffers &buf)
{
    if (p.name() == "equake") {
        workloads::initEquakeInputs(p, buf, 11);
        return;
    }
    defaultInit(p, buf);
}

bool
buffersEqual(const ir::Program &p, const exec::Buffers &a,
             const exec::Buffers &b)
{
    for (size_t t = 0; t < p.tensors().size(); ++t)
        if (a.data(t) != b.data(t))
            return false;
    return true;
}

TierTimes
measureWorkload(const driver::WorkloadSpec &spec,
                const driver::WorkloadParams &params, int reps,
                bool with_native)
{
    TierTimes r;
    r.name = spec.name;
    ir::Program p = spec.make(params);

    driver::PipelineOptions popts;
    popts.strategy = Strategy::Ours;
    popts.tileSizes = spec.defaultTiles;
    auto state = driver::Pipeline(popts).run(p);

    // Reference: interpreter, keeping the buffers for equality.
    exec::Buffers ref(p);
    r.interpMs = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
        exec::Buffers buf(p);
        initInputs(p, buf);
        auto stats = exec::run(p, state.ast, buf);
        r.interpMs = std::min(r.interpMs, stats.seconds * 1e3);
        if (rep == reps - 1)
            ref = std::move(buf);
    }

    // Tier 1: one compile, reps of the untraced fast path.
    exec::BytecodeKernel kernel =
        exec::BytecodeKernel::compile(p, state.ast);
    r.bytecodeMs = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
        exec::Buffers buf(p);
        initInputs(p, buf);
        auto stats = kernel.run(buf);
        r.bytecodeMs = std::min(r.bytecodeMs, stats.seconds * 1e3);
        if (rep == reps - 1)
            r.identical = r.identical && buffersEqual(p, ref, buf);
    }

    // Tier 2 (optional): one cc+dlopen, reps of the machine kernel.
    if (with_native) {
        exec::NativeKernel native =
            exec::NativeKernel::compile(p, state.ast);
        if (native.ok()) {
            r.nativeMs = 1e30;
            for (int rep = 0; rep < reps; ++rep) {
                exec::Buffers buf(p);
                initInputs(p, buf);
                auto stats = native.run(buf);
                r.nativeMs =
                    std::min(r.nativeMs, stats.seconds * 1e3);
                if (rep == reps - 1)
                    r.identical =
                        r.identical && buffersEqual(p, ref, buf);
            }
        }
    }
    return r;
}

double
geomean(const std::vector<TierTimes> &rows,
        double (TierTimes::*ratio)() const)
{
    double acc = 0;
    int n = 0;
    for (const auto &r : rows) {
        double v = (r.*ratio)();
        if (v > 0) {
            acc += std::log(v);
            ++n;
        }
    }
    return n ? std::exp(acc / n) : 0;
}

std::string
rowJson(const TierTimes &r)
{
    std::string out = "{\"name\": \"" + r.name + "\"";
    out += ", \"interpMs\": " + fmt(r.interpMs, "%.4f");
    out += ", \"bytecodeMs\": " + fmt(r.bytecodeMs, "%.4f");
    out += ", \"speedup\": " + fmt(r.speedup(), "%.2f");
    if (r.nativeMs >= 0) {
        out += ", \"nativeMs\": " + fmt(r.nativeMs, "%.4f");
        out +=
            ", \"nativeSpeedup\": " + fmt(r.nativeSpeedup(), "%.2f");
    }
    out += ", \"identical\": ";
    out += r.identical ? "true" : "false";
    out += "}";
    return out;
}

/** Smoke: tiny subset, equality gate only (ratios are noise at this
 *  scale). Must stay well under the 0.5 s budget of the ctest. */
int
runSmoke()
{
    struct
    {
        const char *name;
        driver::WorkloadParams params;
    } subset[] = {
        {"conv2d", {24, 24}},
        {"unsharp", {8, 64}},
        {"2mm", {32, 32}},
    };
    int failures = 0;
    for (const auto &s : subset) {
        const driver::WorkloadSpec *w = driver::findWorkload(s.name);
        if (!w) {
            std::printf("FAIL %s: not in registry\n", s.name);
            ++failures;
            continue;
        }
        // Native needs a compiler fork per workload; the smoke gate
        // sticks to the in-process tiers to stay under budget.
        TierTimes r = measureWorkload(*w, s.params, 1, false);
        std::printf("%-10s interp/bytecode buffers: %s\n", s.name,
                    r.identical ? "bit-identical" : "MISMATCH");
        failures += r.identical ? 0 : 1;
    }
    if (failures) {
        std::printf("FAILED: %d tier mismatches\n", failures);
        return 1;
    }
    std::printf("ok\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false, json = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
        else if (!std::strcmp(argv[i], "--json"))
            json = true;
        else {
            std::fprintf(stderr,
                         "usage: bench_runtime [--smoke] [--json]\n");
            return 2;
        }
    }
    if (smoke)
        return runSmoke();

    bool with_native = exec::NativeKernel::toolchainAvailable();
    std::vector<TierTimes> rows;
    for (const auto &w : driver::workloadRegistry())
        rows.push_back(measureWorkload(w, benchParams(w.name), 3,
                                       with_native));

    double geo = geomean(rows, &TierTimes::speedup);
    double ngeo = geomean(rows, &TierTimes::nativeSpeedup);
    bool all_identical = true;
    for (const auto &r : rows)
        all_identical = all_identical && r.identical;

    if (json) {
        std::string out = "{\"bench\": \"runtime\", ";
        out += "\"strategy\": \"ours\", \"reps\": 3, ";
        out += "\"workloads\": [";
        for (size_t i = 0; i < rows.size(); ++i) {
            if (i)
                out += ", ";
            out += rowJson(rows[i]);
        }
        out += "], \"geomeanSpeedup\": " + fmt(geo, "%.4f");
        if (with_native)
            out += ", \"nativeGeomeanSpeedup\": " +
                   fmt(ngeo, "%.4f");
        out += ", \"allIdentical\": ";
        out += all_identical ? "true" : "false";
        out += "}";
        std::printf("%s\n", out.c_str());
        return all_identical ? 0 : 1;
    }

    std::printf("=== Execution tiers (strategy ours, best of 3) "
                "===\n");
    printRow("workload",
             {"interp ms", "bytecode", "speedup", "native",
              "speedup", "buffers"},
             11);
    for (const auto &r : rows)
        printRow(
            r.name,
            {fmt(r.interpMs), fmt(r.bytecodeMs),
             fmt(r.speedup(), "%.2fx"),
             r.nativeMs >= 0 ? fmt(r.nativeMs) : "-",
             r.nativeMs >= 0 ? fmt(r.nativeSpeedup(), "%.2fx") : "-",
             r.identical ? "identical" : "MISMATCH"},
            11);
    printRow("geomean",
             {"", "", fmt(geo, "%.2fx"), "",
              with_native ? fmt(ngeo, "%.2fx") : "-", ""},
             11);
    return all_identical ? 0 : 1;
}
