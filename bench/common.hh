/**
 * @file
 * Shared machinery for the paper-reproduction benchmark binaries:
 * compiling each compared strategy through the driver's pass
 * pipeline (driver::Pipeline), executing the result, simulating the
 * cache hierarchy, and printing aligned tables.
 *
 * Every binary regenerates the rows/series of one table or figure of
 * the paper; EXPERIMENTS.md records paper-vs-measured per artifact.
 * All compilation goes through driver::Pipeline — no benchmark
 * assembles the deps -> fuse/compose -> codegen sequence by hand.
 */

#ifndef POLYFUSE_BENCH_COMMON_HH
#define POLYFUSE_BENCH_COMMON_HH

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "driver/pipeline.hh"
#include "exec/bytecode.hh"
#include "exec/executor.hh"
#include "memsim/cache.hh"
#include "memsim/gpu.hh"
#include "perfmodel/parallel.hh"
#include "support/timer.hh"

namespace polyfuse {
namespace bench {

using driver::Strategy;
using driver::strategyName;

/** What one (program, strategy) run produced. */
struct RunResult
{
    double wallMs = 0;      ///< measured single-thread execution
    double compileMs = 0;   ///< scheduling + codegen time (no deps)
    driver::PassStats passStats; ///< per-pass breakdown
    exec::ExecStats stats;
    memsim::CacheStats cache;
    memsim::GpuTraceCounts gpuCounts;
    codegen::AstPtr ast;
    schedule::ScheduleTree tree;
};

/** Options of the benchmark runner. */
struct RunOptions
{
    std::vector<int64_t> tileSizes{32, 32};
    unsigned targetParallelism = 1;
    bool simulateCache = true;
    /** Repetitions for the wall-clock measurement (min is taken). */
    int reps = 3;
    /**
     * Simulated hierarchy, scaled with the reduced problem sizes so
     * capacity effects appear at laptop-scale inputs (standard
     * simulator-study methodology; see EXPERIMENTS.md).
     */
    memsim::CacheConfig l1{16 * 1024, 64, 8, "L1"};
    memsim::CacheConfig l2{256 * 1024, 64, 16, "L2"};
};

/** The pipeline options of one benchmark strategy run. */
inline driver::PipelineOptions
pipelineOptions(Strategy strategy, const RunOptions &opts)
{
    driver::PipelineOptions popts;
    popts.strategy = strategy;
    popts.tileSizes = opts.tileSizes;
    popts.targetParallelism = opts.targetParallelism;
    return popts;
}

/** Compile one strategy through the driver. */
inline driver::CompilationState
compileStrategy(const ir::Program &p, Strategy strategy,
                const RunOptions &opts)
{
    return driver::Pipeline(pipelineOptions(strategy, opts)).run(p);
}

/** Execute one strategy end to end. */
inline RunResult
runStrategy(const ir::Program &p, Strategy strategy,
            const RunOptions &opts,
            const std::function<void(exec::Buffers &)> &init)
{
    RunResult r;
    driver::CompilationState state =
        compileStrategy(p, strategy, opts);
    r.tree = state.tree;
    r.ast = state.ast;
    r.compileMs = state.compileMs();
    r.passStats = state.stats;

    // One bytecode compile, then wall-clock best of reps on the
    // untraced fast path (bit-identical to the interpreter; see the
    // differential suite in tests/test_exec.cc).
    exec::BytecodeKernel kernel =
        exec::BytecodeKernel::compile(p, r.ast);
    r.wallMs = 1e30;
    for (int rep = 0; rep < opts.reps; ++rep) {
        exec::Buffers buf(p);
        init(buf);
        auto stats = kernel.run(buf);
        r.stats = stats;
        r.wallMs = std::min(r.wallMs, stats.seconds * 1e3);
    }

    if (opts.simulateCache) {
        exec::Buffers buf(p);
        init(buf);
        memsim::MemoryHierarchy mem(opts.l1, opts.l2);
        for (size_t t = 0; t < p.tensors().size(); ++t) {
            mem.addSpace(t, p.tensorSize(t));
            mem.addSpace(p.tensors().size() + t, p.tensorSize(t));
        }
        // Batched sink: hierarchy simulation plus the GPU-proxy
        // shared/global split, one virtual call per batch.
        struct CountingSink final : exec::TraceSink
        {
            memsim::MemoryHierarchy &mem;
            memsim::GpuTraceCounts &gpu;
            int nt;

            CountingSink(memsim::MemoryHierarchy &m,
                         memsim::GpuTraceCounts &g, int n)
                : mem(m), gpu(g), nt(n) {}

            void
            onRecords(const exec::TraceRecord *recs,
                      size_t n) override
            {
                for (size_t i = 0; i < n; ++i) {
                    mem.access(recs[i].space, recs[i].offset,
                               recs[i].isWrite != 0);
                    if (recs[i].space >= nt)
                        ++gpu.sharedAccesses;
                    else
                        ++gpu.globalAccesses;
                }
            }
        } sink(mem, r.gpuCounts, int(p.tensors().size()));
        kernel.run(buf, sink);
        r.cache = mem.stats();
    }
    return r;
}

/** Default input filler (deterministic, inputs in [0, 1]). */
inline void
defaultInit(const ir::Program &p, exec::Buffers &buf)
{
    for (size_t t = 0; t < p.tensors().size(); ++t) {
        if (p.tensor(t).kind == ir::TensorKind::Temp)
            continue;
        buf.fillPattern(t, 1000 + t);
        if (p.tensor(t).kind == ir::TensorKind::Input)
            for (auto &v : buf.data(t))
                v = v < 0 ? -v : v;
    }
}

/** Print one aligned row. */
inline void
printRow(const std::string &first,
         const std::vector<std::string> &cells, int width = 12)
{
    std::printf("%-24s", first.c_str());
    for (const auto &c : cells)
        std::printf("%*s", width, c.c_str());
    std::printf("\n");
}

inline std::string
fmt(double v, const char *f = "%.2f")
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), f, v);
    return buf;
}

} // namespace bench
} // namespace polyfuse

#endif // POLYFUSE_BENCH_COMMON_HH
