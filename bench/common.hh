/**
 * @file
 * Shared machinery for the paper-reproduction benchmark binaries:
 * building the compared schedules (naive / PPCG fusion heuristics /
 * PolyMage / Halide-manual / our composition), executing them,
 * simulating the cache hierarchy, and printing aligned tables.
 *
 * Every binary regenerates the rows/series of one table or figure of
 * the paper; EXPERIMENTS.md records paper-vs-measured per artifact.
 */

#ifndef POLYFUSE_BENCH_COMMON_HH
#define POLYFUSE_BENCH_COMMON_HH

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "codegen/generate.hh"
#include "core/compose.hh"
#include "exec/executor.hh"
#include "memsim/cache.hh"
#include "memsim/gpu.hh"
#include "perfmodel/parallel.hh"
#include "schedule/fusion.hh"
#include "support/timer.hh"

namespace polyfuse {
namespace bench {

/** The schedules the paper compares. */
enum class Strategy
{
    Naive,    ///< initial schedule, no tiling/fusion
    MinFuse,  ///< PPCG minfuse + rectangular tiling
    SmartFuse,///< PPCG smartfuse + rectangular tiling
    MaxFuse,  ///< PPCG maxfuse + rectangular tiling
    Hybrid,   ///< Pluto hybridfuse + rectangular tiling
    PolyMage, ///< tiling-after-fusion with over-approximated
              ///< overlapped tiles (footprint dilation 1)
    Halide,   ///< manual-schedule proxy: smartfuse groups, tiled
    Ours,     ///< the paper's composition (Algorithms 1-3)
};

inline const char *
strategyName(Strategy s)
{
    switch (s) {
      case Strategy::Naive: return "naive";
      case Strategy::MinFuse: return "minfuse";
      case Strategy::SmartFuse: return "smartfuse";
      case Strategy::MaxFuse: return "maxfuse";
      case Strategy::Hybrid: return "hybridfuse";
      case Strategy::PolyMage: return "polymage";
      case Strategy::Halide: return "halide";
      case Strategy::Ours: return "ours";
    }
    return "?";
}

/** What one (program, strategy) run produced. */
struct RunResult
{
    double wallMs = 0;      ///< measured single-thread execution
    double compileMs = 0;   ///< scheduling + codegen time
    exec::ExecStats stats;
    memsim::CacheStats cache;
    memsim::GpuTraceCounts gpuCounts;
    codegen::AstPtr ast;
    schedule::ScheduleTree tree;
};

/** Options of the benchmark runner. */
struct RunOptions
{
    std::vector<int64_t> tileSizes{32, 32};
    unsigned targetParallelism = 1;
    bool simulateCache = true;
    /** Repetitions for the wall-clock measurement (min is taken). */
    int reps = 3;
    /**
     * Simulated hierarchy, scaled with the reduced problem sizes so
     * capacity effects appear at laptop-scale inputs (standard
     * simulator-study methodology; see EXPERIMENTS.md).
     */
    memsim::CacheConfig l1{16 * 1024, 64, 8, "L1"};
    memsim::CacheConfig l2{256 * 1024, 64, 16, "L2"};
};

/** Tile every tilable top-level band (tiling-after-fusion). */
inline void
tileAllSpaces(schedule::ScheduleTree &tree,
              const std::vector<int64_t> &sizes)
{
    using schedule::NodePtr;
    NodePtr seq = tree.root()->onlyChild();
    if (!seq)
        return;
    for (const auto &filter : seq->children) {
        NodePtr band = schedule::ScheduleTree::findBand(filter);
        if (!band || !band->permutable || band->numBandDims() == 0 ||
            !band->tileSizes.empty())
            continue;
        std::vector<int64_t> s(band->numBandDims(), sizes.back());
        for (size_t k = 0; k < s.size() && k < sizes.size(); ++k)
            s[k] = sizes[k];
        tree.tileBand(band, s);
    }
}

/** Build the schedule tree of one strategy (timed). */
inline schedule::ScheduleTree
buildSchedule(const ir::Program &p, const deps::DependenceGraph &g,
              Strategy strategy, const RunOptions &opts,
              double &compile_ms)
{
    Timer timer;
    schedule::ScheduleTree tree;
    switch (strategy) {
      case Strategy::Naive: {
        tree = schedule::ScheduleTree::initial(p);
        tree.annotate(g);
        break;
      }
      case Strategy::MinFuse:
      case Strategy::SmartFuse:
      case Strategy::MaxFuse:
      case Strategy::Hybrid:
      case Strategy::Halide: {
        auto policy = strategy == Strategy::MinFuse
                          ? schedule::FusionPolicy::Min
                      : strategy == Strategy::MaxFuse
                          ? schedule::FusionPolicy::Max
                      : strategy == Strategy::Hybrid
                          ? schedule::FusionPolicy::Hybrid
                          : schedule::FusionPolicy::Smart;
        auto r = schedule::applyFusion(p, g, policy);
        tree = r.tree;
        tileAllSpaces(tree, opts.tileSizes);
        break;
      }
      case Strategy::PolyMage:
      case Strategy::Ours: {
        core::ComposeOptions copts;
        copts.tileSizes = opts.tileSizes;
        copts.targetParallelism = opts.targetParallelism;
        copts.footprintDilation =
            strategy == Strategy::PolyMage ? 1 : 0;
        auto r = core::compose(p, g, copts);
        tree = r.tree;
        break;
      }
    }
    compile_ms = timer.milliseconds();
    return tree;
}

/** Execute one strategy end to end. */
inline RunResult
runStrategy(const ir::Program &p, const deps::DependenceGraph &g,
            Strategy strategy, const RunOptions &opts,
            const std::function<void(exec::Buffers &)> &init)
{
    RunResult r;
    r.tree = buildSchedule(p, g, strategy, opts, r.compileMs);
    Timer gen_timer;
    r.ast = codegen::generateAst(r.tree);
    r.compileMs += gen_timer.milliseconds();

    // Wall-clock measurement (no trace), best of reps.
    r.wallMs = 1e30;
    for (int rep = 0; rep < opts.reps; ++rep) {
        exec::Buffers buf(p);
        init(buf);
        auto stats = exec::run(p, r.ast, buf);
        r.stats = stats;
        r.wallMs = std::min(r.wallMs, stats.seconds * 1e3);
    }

    if (opts.simulateCache) {
        exec::Buffers buf(p);
        init(buf);
        memsim::MemoryHierarchy mem(opts.l1, opts.l2);
        for (size_t t = 0; t < p.tensors().size(); ++t) {
            mem.addSpace(t, p.tensorSize(t));
            mem.addSpace(p.tensors().size() + t, p.tensorSize(t));
        }
        int nt = p.tensors().size();
        exec::run(p, r.ast, buf,
                  [&](int space, int64_t off, bool w) {
                      mem.access(space, off, w);
                      if (space >= nt)
                          ++r.gpuCounts.sharedAccesses;
                      else
                          ++r.gpuCounts.globalAccesses;
                  });
        r.cache = mem.stats();
    }
    return r;
}

/** Default input filler (deterministic, inputs in [0, 1]). */
inline void
defaultInit(const ir::Program &p, exec::Buffers &buf)
{
    for (size_t t = 0; t < p.tensors().size(); ++t) {
        if (p.tensor(t).kind == ir::TensorKind::Temp)
            continue;
        buf.fillPattern(t, 1000 + t);
        if (p.tensor(t).kind == ir::TensorKind::Input)
            for (auto &v : buf.data(t))
                v = v < 0 ? -v : v;
    }
}

/** Print one aligned row. */
inline void
printRow(const std::string &first,
         const std::vector<std::string> &cells, int width = 12)
{
    std::printf("%-24s", first.c_str());
    for (const auto &c : cells)
        std::printf("%*s", width, c.c_str());
    std::printf("\n");
}

inline std::string
fmt(double v, const char *f = "%.2f")
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), f, v);
    return buf;
}

} // namespace bench
} // namespace polyfuse

#endif // POLYFUSE_BENCH_COMMON_HH
