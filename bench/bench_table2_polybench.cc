/**
 * @file
 * E4 -- Table II: 2mm, gemver and covariance at 1, 8 and 32 threads
 * under sequential (naive), minfuse, smartfuse, maxfuse, hybridfuse
 * and our composition (32x32 tiles, the compilers' default).
 *
 * Paper expectation (shape): 2mm is insensitive to the fusion
 * heuristic (parallelism preserved everywhere, hybrid best thanks to
 * inner fusion); maxfuse collapses on gemver and covariance by
 * losing parallelism; ours fuses more than smartfuse at identical
 * multi-thread time.
 */

#include "bench/common.hh"
#include "workloads/polybench.hh"

using namespace polyfuse;
using namespace polyfuse::bench;

int
main()
{
    struct Entry
    {
        const char *name;
        ir::Program prog;
    };
    std::vector<Entry> entries;
    entries.push_back({"2mm", workloads::make2mm(192, 192, 192, 192)});
    entries.push_back({"gemver", workloads::makeGemver(768)});
    entries.push_back({"covariance",
                       workloads::makeCovariance(192, 192)});

    std::vector<Strategy> strategies = {
        Strategy::Naive,   Strategy::MinFuse, Strategy::SmartFuse,
        Strategy::MaxFuse, Strategy::Hybrid,  Strategy::Ours};

    std::printf("=== Table II: PolyBench (modeled time per thread "
                "count, ms) ===\n");
    for (auto &e : entries) {
        std::printf("--- %s ---\n", e.name);
        printRow("strategy",
                 {"t=1", "t=8", "t=32", "par-frac", "dram(MB)"});
        for (Strategy s : strategies) {
            RunOptions opts;
            opts.tileSizes = {32, 32};
            RunResult r = runStrategy(
                e.prog, s, opts, [&](exec::Buffers &b) {
                    defaultInit(e.prog, b);
                });
            std::vector<std::string> cells;
            for (unsigned t : {1u, 8u, 32u})
                cells.push_back(fmt(
                    perfmodel::modeledCpuMs(r.stats, r.cache, t)));
            cells.push_back(
                fmt(perfmodel::parallelFraction(r.stats)));
            cells.push_back(fmt(r.cache.dramBytes / 1e6));
            printRow(strategyName(s), cells);
        }
        std::printf("\n");
    }
    return 0;
}
