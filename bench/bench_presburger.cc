/**
 * @file
 * Presburger hot-path microbenchmarks — the machine-readable perf
 * baseline behind BENCH_presburger.json.
 *
 * Two layers of measurement:
 *
 *  1. Microkernels of the overhauled primitives: row construction
 *     with inline vs forced-heap SmallVec storage, structural row
 *     hashing, hash-grouped simplifyRows deduplication, and raw FM
 *     elimination. Each reports ns/op so regressions in the hot
 *     loops are visible without registry-level noise.
 *
 *  2. The registry A/B sweep (bench/perf_baseline.hh): every
 *     workload compiled baseline (heap rows + cache off) and
 *     optimized (inline rows + cache on) in the same process, with
 *     byte-identical generated C enforced.
 *
 * Modes:
 *   (none)    full sweep, aligned tables on stdout
 *   --json    full sweep, one JSON object on stdout
 *   --smoke   subset sweep with correctness assertions, < 5 s; the
 *             check_perf_smoke ctest runs this and fails on any
 *             cache-equivalence mismatch
 */

#include <cstring>

#include "bench/perf_baseline.hh"
#include "pres/fm.hh"
#include "pres/row_hash.hh"

using namespace polyfuse;
using namespace polyfuse::bench;

namespace {

/** Defeats dead-code elimination of the micro loops. */
volatile uint64_t g_sink = 0;

/** A representative FM system: bounds and couplings over @p cols
 *  columns (last column is the constant), with duplicated and
 *  parallel rows so simplifyRows has real work. */
std::vector<pres::Constraint>
makeSystem(unsigned cols, unsigned copies)
{
    std::vector<pres::Constraint> rows;
    for (unsigned rep = 0; rep < copies; ++rep) {
        for (unsigned c = 0; c + 1 < cols; ++c) {
            pres::CoeffRow lo(cols, 0), hi(cols, 0);
            lo[c] = 1; // x_c >= 0
            hi[c] = -1;
            hi[cols - 1] = 255 + int64_t(rep); // x_c <= 255 + rep
            rows.emplace_back(false, std::move(lo));
            rows.emplace_back(false, std::move(hi));
            if (c + 2 < cols) {
                pres::CoeffRow link(cols, 0);
                link[c] = 1;
                link[c + 1] = -1;
                link[cols - 1] = 2; // x_c - x_{c+1} + 2 >= 0
                rows.emplace_back(false, std::move(link));
            }
        }
    }
    return rows;
}

struct Micro
{
    const char *name;
    double nsPerOp;
    uint64_t iters;
};

/** Construct + destroy @p iters constraint rows of width 12. */
Micro
microRowConstruct(bool inline_rows, uint64_t iters)
{
    std::unique_ptr<support::ScopedForceHeap> heap;
    if (!inline_rows)
        heap.reset(new support::ScopedForceHeap());
    Timer t;
    uint64_t acc = 0;
    for (uint64_t i = 0; i < iters; ++i) {
        pres::CoeffRow row(12, int64_t(i));
        row[11] = 1;
        acc += uint64_t(row[0] + row[11]);
    }
    g_sink = g_sink + acc;
    return {inline_rows ? "row_construct_inline"
                        : "row_construct_heap",
            t.milliseconds() * 1e6 / double(iters), iters};
}

/** Structural hash of one 12-wide row, @p iters times. */
Micro
microRowHash(uint64_t iters)
{
    pres::Constraint c(false,
                       {3, -1, 0, 7, 0, 0, -2, 1, 0, 0, 5, 255});
    Timer t;
    uint64_t acc = 0;
    for (uint64_t i = 0; i < iters; ++i) {
        c.coeffs[0] = int64_t(i & 0xff);
        acc += pres::hashRow(c);
    }
    g_sink = g_sink + acc;
    return {"row_hash", t.milliseconds() * 1e6 / double(iters),
            iters};
}

/** Hash-grouped dedup: simplifyRows on a system with @p copies
 *  duplicates of every row. */
Micro
microSimplify(uint64_t iters)
{
    auto base = makeSystem(8, 4);
    pres::fm::PresCtx ctx;
    Timer t;
    for (uint64_t i = 0; i < iters; ++i) {
        auto rows = base;
        bool feasible = pres::fm::simplifyRows(ctx, rows);
        g_sink = g_sink + (feasible ? rows.size() : 0);
    }
    return {"simplify_dedup",
            t.milliseconds() * 1e6 / double(iters), iters};
}

/** Raw FM projection: eliminate every inner column of the system. */
Micro
microEliminate(uint64_t iters)
{
    auto base = makeSystem(8, 1);
    pres::fm::PresCtx ctx;
    Timer t;
    for (uint64_t i = 0; i < iters; ++i) {
        auto rows = base;
        bool exact = true;
        for (unsigned col = 6; col-- > 1;)
            if (!pres::fm::eliminateCol(ctx, rows, col, exact))
                break;
        g_sink = g_sink + rows.size() + (exact ? 1 : 0);
    }
    return {"fm_eliminate",
            t.milliseconds() * 1e6 / double(iters), iters};
}

std::vector<Micro>
runMicro(uint64_t scale)
{
    return {
        microRowConstruct(true, 200000 * scale),
        microRowConstruct(false, 200000 * scale),
        microRowHash(200000 * scale),
        microSimplify(500 * scale),
        microEliminate(2000 * scale),
    };
}

/** Smoke: tiny registry subset, every storage x cache combination
 *  must generate byte-identical C. Exit 1 on any mismatch. */
int
runSmoke()
{
    const char *subset[] = {"conv2d", "unsharp", "2mm"};
    const PerfVariant variants[] = {
        {true, true}, {true, false}, {false, true}, {false, false}};
    int failures = 0;
    for (const char *name : subset) {
        const driver::WorkloadSpec *w = driver::findWorkload(name);
        if (!w) {
            std::printf("FAIL %s: not in registry\n", name);
            ++failures;
            continue;
        }
        ir::Program p = w->make(w->defaults);
        std::string reference;
        bool ok = true;
        for (const PerfVariant &v : variants) {
            PerfMeasurement m = compileForPerf(*w, p, v, 1);
            if (reference.empty())
                reference = m.code;
            else if (m.code != reference)
                ok = false;
        }
        std::printf("%-10s cache on/off x rows inline/heap: %s\n",
                    name, ok ? "byte-identical" : "MISMATCH");
        failures += ok ? 0 : 1;
    }
    for (const Micro &m : runMicro(1))
        printRow(m.name, {fmt(m.nsPerOp, "%.1f"), "ns/op"}, 12);
    if (failures) {
        std::printf("FAILED: %d cache-correctness mismatches\n",
                    failures);
        return 1;
    }
    std::printf("ok\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false, json = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
        else if (!std::strcmp(argv[i], "--json"))
            json = true;
        else {
            std::fprintf(stderr,
                         "usage: bench_presburger [--smoke] "
                         "[--json]\n");
            return 2;
        }
    }
    if (smoke)
        return runSmoke();

    std::vector<Micro> micro = runMicro(4);
    std::vector<PerfComparison> sweep = sweepRegistryPerf(3);
    double geomean = geomeanSpeedup(sweep);
    bool all_identical = true;
    for (const auto &c : sweep)
        all_identical = all_identical && c.identical();

    if (json) {
        std::string out = "{\"bench\": \"presburger\", ";
        out += "\"jobs\": 1, \"micro\": [";
        for (size_t i = 0; i < micro.size(); ++i) {
            if (i)
                out += ", ";
            out += "{\"name\": \"" + std::string(micro[i].name) +
                   "\", \"nsPerOp\": " +
                   fmt(micro[i].nsPerOp, "%.2f") +
                   ", \"iters\": " + std::to_string(micro[i].iters) +
                   "}";
        }
        out += "], \"workloads\": [";
        for (size_t i = 0; i < sweep.size(); ++i) {
            if (i)
                out += ", ";
            out += perfComparisonJson(sweep[i]);
        }
        out += "], \"geomeanSpeedup\": " + fmt(geomean, "%.4f");
        out += ", \"allIdentical\": ";
        out += all_identical ? "true" : "false";
        out += "}";
        std::printf("%s\n", out.c_str());
        return all_identical ? 0 : 1;
    }

    std::printf("=== Presburger microkernels ===\n");
    for (const Micro &m : micro)
        printRow(m.name, {fmt(m.nsPerOp, "%.1f"), "ns/op"}, 12);
    std::printf("\n=== Registry A/B (baseline = heap rows + cache "
                "off; best of 3) ===\n");
    printRow("workload",
             {"base ms", "opt ms", "speedup", "hit rate", "code"},
             10);
    for (const auto &c : sweep)
        printRow(c.name,
                 {fmt(c.baseline.ms), fmt(c.optimized.ms),
                  fmt(c.speedup(), "%.2fx"),
                  fmt(c.hitRate() * 100, "%.1f%%"),
                  c.identical() ? "identical" : "MISMATCH"},
                 10);
    printRow("geomean", {"", "", fmt(geomean, "%.2fx")}, 10);
    return all_identical ? 0 : 1;
}
