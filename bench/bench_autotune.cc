/**
 * @file
 * Autotune search benchmark — the machine-readable search-time vs
 * quality-of-result baseline behind BENCH_autotune.json.
 *
 * Every registry workload is tuned twice over the default PolyMage
 * candidate ladder:
 *
 *   exhaustive   every feasible candidate measured (the oracle)
 *   guided       model-ranked top-K with successive halving
 *
 * and the JSON reports, per workload, how many candidates guided
 * actually measured, the search wall-time speedup, and the quality
 * gap of guided's winner vs the oracle's modeled time. A third
 * phase exercises the near-miss path: tune one workload cold with a
 * tuning store, re-tune the same pipeline at scaled extents (the
 * shape key seeds the ranking and shrinks the budget), then re-tune
 * at the original extents (the exact key warm-starts outright).
 *
 * The benchmark doubles as the acceptance gate and exits nonzero
 * when any bound is violated:
 *
 *   - guided measures <= 25% of the exhaustive candidate count
 *     (aggregated across the registry sweep),
 *   - guided's winner is within 5% modeledMs of the oracle on every
 *     workload,
 *   - geomean search-time speedup >= 4x,
 *   - the seeded near-miss run measures fewer candidates than the
 *     cold run, and the exact-key re-run warm-starts.
 *
 * Modes:
 *   (none)    full sweep, aligned table on stdout
 *   --json    full sweep, one JSON object on stdout
 *   --smoke   one-workload guided smoke (determinism + pruning
 *             gates), sub-second; the check_autotune_smoke ctest
 *             runs this
 *   --fit     measure every candidate on every workload and print a
 *             fresh least-squares calibration (the source of the
 *             constants in perfmodel::defaultModelFit())
 */

#include <cmath>
#include <cstdio>
#include <cstring>

#include "bench/common.hh"
#include "driver/registry.hh"
#include "perfmodel/autotune.hh"
#include "perfmodel/model.hh"
#include "perfmodel/search.hh"
#include "perfmodel/tune_db.hh"
#include "workloads/equake.hh"

using namespace polyfuse;
using namespace polyfuse::bench;

namespace {

/** Tuning-benchmark sizes: small enough that a full exhaustive
 *  sweep stays in seconds, big enough that several ladder rungs are
 *  feasible and locality effects separate them. */
driver::WorkloadParams
benchParams(const std::string &name)
{
    if (name == "equake")
        return {256, 16};
    if (name == "convbn")
        return {32, 8};
    if (name == "2mm" || name == "covariance")
        return {96, 96};
    if (name == "gemver")
        return {256, 256};
    return {64, 64};
}

void
initInputs(const ir::Program &p, exec::Buffers &buf)
{
    if (p.name() == "equake") {
        workloads::initEquakeInputs(p, buf, 11);
        return;
    }
    defaultInit(p, buf);
}

perfmodel::AutotuneOptions
baseOptions(const driver::WorkloadSpec &spec)
{
    perfmodel::AutotuneOptions opts;
    opts.dims = unsigned(spec.defaultTiles.size());
    return opts;
}

struct TuneRow
{
    std::string name;
    unsigned dims = 0;
    unsigned total = 0;
    unsigned guidedMeasured = 0;
    double exhaustiveMs = 0;
    double guidedMs = 0;
    double modelRankMs = 0;
    double oracleModeledMs = 0;
    double guidedModeledMs = 0;
    std::vector<int64_t> oracleTiles;
    std::vector<int64_t> guidedTiles;

    double
    gapPct() const
    {
        return oracleModeledMs > 0
                   ? 100.0 *
                         (guidedModeledMs - oracleModeledMs) /
                         oracleModeledMs
                   : 0;
    }

    double
    speedup() const
    {
        return guidedMs > 0 ? exhaustiveMs / guidedMs : 0;
    }

    double
    measuredFrac() const
    {
        return total ? double(guidedMeasured) / double(total) : 0;
    }
};

TuneRow
measureWorkload(const driver::WorkloadSpec &spec)
{
    TuneRow r;
    r.name = spec.name;
    ir::Program p = spec.make(benchParams(spec.name));
    auto graph = deps::DependenceGraph::compute(p);
    auto init = [&p](exec::Buffers &buf) { initInputs(p, buf); };

    perfmodel::AutotuneOptions opts = baseOptions(spec);
    r.dims = opts.dims;

    opts.searchMode = perfmodel::SearchMode::Exhaustive;
    auto oracle = perfmodel::autotuneTileSizes(p, graph, init, opts);
    r.total = oracle.totalCandidates;
    r.exhaustiveMs = oracle.searchMs;
    r.oracleModeledMs = oracle.modeledMs;
    r.oracleTiles = oracle.tileSizes;

    opts.searchMode = perfmodel::SearchMode::Guided;
    auto guided = perfmodel::autotuneTileSizes(p, graph, init, opts);
    r.guidedMeasured = guided.evaluated;
    r.guidedMs = guided.searchMs;
    r.modelRankMs = guided.modelRankMs;
    r.guidedModeledMs = guided.modeledMs;
    r.guidedTiles = guided.tileSizes;
    return r;
}

struct NearMiss
{
    std::string workload = "conv2d";
    unsigned coldMeasured = 0;
    unsigned seededMeasured = 0;
    bool seededFromShape = false;
    bool exactWarmStart = false;

    bool
    ok() const
    {
        return seededFromShape && exactWarmStart &&
               seededMeasured < coldMeasured;
    }
};

/** Cold -> extent-scaled (shape seed) -> same-extent (exact warm
 *  start), all against one throwaway store. */
NearMiss
measureNearMiss()
{
    NearMiss n;
    const driver::WorkloadSpec *spec =
        driver::findWorkload(n.workload);
    std::string db_path = "bench_autotune.tunedb.json";
    std::remove(db_path.c_str());
    {
        perfmodel::TuneDb db(db_path);
        auto tune = [&](driver::WorkloadParams params) {
            ir::Program p = spec->make(params);
            auto graph = deps::DependenceGraph::compute(p);
            auto init = [&p](exec::Buffers &buf) {
                initInputs(p, buf);
            };
            perfmodel::AutotuneOptions opts = baseOptions(*spec);
            opts.searchMode = perfmodel::SearchMode::Guided;
            opts.db = &db;
            return perfmodel::autotuneTileSizes(p, graph, init,
                                                opts);
        };
        auto cold = tune({64, 64});
        n.coldMeasured = cold.evaluated;
        auto seeded = tune({96, 96});
        n.seededMeasured = seeded.evaluated;
        n.seededFromShape = seeded.seededFromShape;
        auto warm = tune({64, 64});
        n.exactWarmStart = warm.warmStart;
    }
    std::remove(db_path.c_str());
    return n;
}

double
geomeanSpeedup(const std::vector<TuneRow> &rows)
{
    double acc = 0;
    int n = 0;
    for (const auto &r : rows) {
        double v = r.speedup();
        if (v > 0) {
            acc += std::log(v);
            ++n;
        }
    }
    return n ? std::exp(acc / n) : 0;
}

std::string
tilesJson(const std::vector<int64_t> &tiles)
{
    std::string out = "[";
    for (size_t i = 0; i < tiles.size(); ++i) {
        if (i)
            out += ", ";
        out += std::to_string(tiles[i]);
    }
    return out + "]";
}

std::string
rowJson(const TuneRow &r, double gap_bound)
{
    std::string out = "{\"name\": \"" + r.name + "\"";
    out += ", \"dims\": " + std::to_string(r.dims);
    out += ", \"totalCandidates\": " + std::to_string(r.total);
    out += ", \"guidedMeasured\": " +
           std::to_string(r.guidedMeasured);
    out += ", \"guidedPruned\": " +
           std::to_string(r.total - r.guidedMeasured);
    out += ", \"measuredFrac\": " + fmt(r.measuredFrac(), "%.4f");
    out += ", \"exhaustiveMs\": " + fmt(r.exhaustiveMs, "%.3f");
    out += ", \"guidedMs\": " + fmt(r.guidedMs, "%.3f");
    out += ", \"modelRankMs\": " + fmt(r.modelRankMs, "%.4f");
    out += ", \"speedup\": " + fmt(r.speedup(), "%.2f");
    out += ", \"oracleModeledMs\": " +
           fmt(r.oracleModeledMs, "%.6f");
    out += ", \"guidedModeledMs\": " +
           fmt(r.guidedModeledMs, "%.6f");
    out += ", \"qualityGapPct\": " + fmt(r.gapPct(), "%.4f");
    out += ", \"oracleTiles\": " + tilesJson(r.oracleTiles);
    out += ", \"guidedTiles\": " + tilesJson(r.guidedTiles);
    out += ", \"withinBound\": ";
    out += r.gapPct() <= gap_bound ? "true" : "false";
    out += "}";
    return out;
}

/** Smoke: one small guided search; assert it prunes, stays
 *  deterministic across job counts, and picks a feasible size.
 *  Must stay well under the ctest budget. */
int
runSmoke()
{
    const driver::WorkloadSpec *spec = driver::findWorkload("conv2d");
    ir::Program p = spec->make({32, 32});
    auto graph = deps::DependenceGraph::compute(p);
    auto init = [&p](exec::Buffers &buf) { initInputs(p, buf); };
    perfmodel::AutotuneOptions opts = baseOptions(*spec);
    opts.searchMode = perfmodel::SearchMode::Guided;
    auto seq = perfmodel::autotuneTileSizes(p, graph, init, opts);
    opts.jobs = 4;
    auto par = perfmodel::autotuneTileSizes(p, graph, init, opts);

    int failures = 0;
    if (seq.tileSizes.size() != opts.dims ||
        seq.evaluated == 0) {
        std::printf("FAIL: guided search returned no result\n");
        ++failures;
    }
    if (seq.evaluated >= seq.totalCandidates) {
        std::printf("FAIL: guided search pruned nothing (%u of "
                    "%u measured)\n",
                    seq.evaluated, seq.totalCandidates);
        ++failures;
    }
    if (par.tileSizes != seq.tileSizes ||
        par.evaluated != seq.evaluated) {
        std::printf("FAIL: jobs=4 diverged from jobs=1\n");
        ++failures;
    }
    if (failures)
        return 1;
    std::printf("ok: guided measured %u of %u candidates, "
                "tiles deterministic across jobs\n",
                seq.evaluated, seq.totalCandidates);
    return 0;
}

/** Calibration: exhaustive samples over the whole registry, one
 *  fresh least-squares fit, printed paste-ready. */
int
runFit()
{
    std::vector<perfmodel::ModelSample> samples;
    for (const auto &spec : driver::workloadRegistry()) {
        ir::Program p = spec.make(benchParams(spec.name));
        auto graph = deps::DependenceGraph::compute(p);
        auto init = [&p](exec::Buffers &buf) { initInputs(p, buf); };
        unsigned dims = unsigned(spec.defaultTiles.size());
        perfmodel::CostModel model(p, dims, 32);
        perfmodel::AutotuneOptions opts;
        auto cands = perfmodel::enumerateTileCandidates(
            p, opts.candidates, dims);
        for (const auto &tiles : cands) {
            double ms = perfmodel::evaluateCandidate(
                p, graph, tiles, init, opts.threads,
                opts.targetParallelism);
            samples.push_back(
                perfmodel::ModelSample{model.terms(tiles), ms});
        }
        std::printf("%-12s %zu samples\n", spec.name,
                    cands.size());
    }
    perfmodel::ModelFit zero;
    perfmodel::ModelFit fit = perfmodel::fitModel(samples, zero);
    double err = 0;
    for (const auto &s : samples) {
        double pred = perfmodel::predictMs(s.terms, fit);
        double denom = std::max(s.measuredMs, 1e-9);
        err += std::fabs(pred - s.measuredMs) / denom;
    }
    std::printf("\nfit over %zu samples (mean relative error "
                "%.1f%%):\n",
                samples.size(),
                100.0 * err / double(samples.size()));
    std::printf("    fit.cCompute = %.4f;\n", fit.cCompute);
    std::printf("    fit.cMem = %.4f;\n", fit.cMem);
    std::printf("    fit.cTraffic = %.4f;\n", fit.cTraffic);
    std::printf("    fit.cTile = %.4f;\n", fit.cTile);
    return 0;
}

/** Per-candidate model-vs-measurement dump for one workload --
 *  the tool for diagnosing a ranking miss. */
int
runRank(const char *name)
{
    const driver::WorkloadSpec *spec = nullptr;
    for (const auto &s : driver::workloadRegistry())
        if (!std::strcmp(s.name, name))
            spec = &s;
    if (!spec) {
        std::fprintf(stderr, "unknown workload: %s\n", name);
        return 2;
    }
    ir::Program p = spec->make(benchParams(spec->name));
    auto graph = deps::DependenceGraph::compute(p);
    auto init = [&p](exec::Buffers &buf) { initInputs(p, buf); };
    unsigned dims = unsigned(spec->defaultTiles.size());
    perfmodel::CostModel model(p, dims, 32);
    perfmodel::AutotuneOptions opts;
    perfmodel::ModelFit fit = perfmodel::defaultModelFit();
    auto cands =
        perfmodel::enumerateTileCandidates(p, opts.candidates, dims);
    struct Row
    {
        std::vector<int64_t> tiles;
        perfmodel::ModelTerms t;
        double score;
        double ms;
    };
    std::vector<Row> rows;
    for (const auto &tiles : cands) {
        Row r;
        r.tiles = tiles;
        r.t = model.terms(tiles);
        r.score = model.score(tiles, fit);
        r.ms = perfmodel::evaluateCandidate(
            p, graph, tiles, init, opts.threads,
            opts.targetParallelism);
        rows.push_back(std::move(r));
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.ms < b.ms; });
    std::printf("%-14s %10s %10s %10s %10s %10s %10s\n", "tiles",
                "measured", "score", "compute", "mem", "traffic",
                "tile");
    for (const auto &r : rows) {
        std::string ts;
        for (size_t i = 0; i < r.tiles.size(); ++i)
            ts += (i ? "x" : "") + std::to_string(r.tiles[i]);
        std::printf("%-14s %10.4f %10.4f %10.4f %10.4f %10.4f "
                    "%10.4f\n",
                    ts.c_str(), r.ms, r.score, r.t.compute, r.t.mem,
                    r.t.traffic, r.t.tile);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false, json = false, do_fit = false;
    const char *rank = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
        else if (!std::strcmp(argv[i], "--json"))
            json = true;
        else if (!std::strcmp(argv[i], "--fit"))
            do_fit = true;
        else if (!std::strcmp(argv[i], "--rank") && i + 1 < argc)
            rank = argv[++i];
        else {
            std::fprintf(stderr,
                         "usage: bench_autotune [--smoke] [--json] "
                         "[--fit] [--rank <workload>]\n");
            return 2;
        }
    }
    if (smoke)
        return runSmoke();
    if (do_fit)
        return runFit();
    if (rank)
        return runRank(rank);

    const double kMaxMeasuredFrac = 0.25;
    const double kMaxGapPct = 5.0;
    const double kMinGeomeanSpeedup = 4.0;

    std::vector<TuneRow> rows;
    for (const auto &w : driver::workloadRegistry())
        rows.push_back(measureWorkload(w));
    NearMiss nm = measureNearMiss();

    unsigned total = 0, measured = 0;
    double max_gap = 0;
    for (const auto &r : rows) {
        total += r.total;
        measured += r.guidedMeasured;
        max_gap = std::max(max_gap, r.gapPct());
    }
    double frac = total ? double(measured) / double(total) : 1.0;
    double geo = geomeanSpeedup(rows);
    bool all_ok = frac <= kMaxMeasuredFrac &&
                  max_gap <= kMaxGapPct &&
                  geo >= kMinGeomeanSpeedup && nm.ok();

    if (json) {
        std::string out = "{\"bench\": \"autotune\", ";
        out += "\"ladder\": [8, 16, 32, 64, 128, 256, 512], ";
        out += "\"workloads\": [";
        for (size_t i = 0; i < rows.size(); ++i) {
            if (i)
                out += ", ";
            out += rowJson(rows[i], kMaxGapPct);
        }
        out += "], \"aggregate\": {";
        out += "\"totalCandidates\": " + std::to_string(total);
        out += ", \"guidedMeasured\": " + std::to_string(measured);
        out += ", \"measuredFrac\": " + fmt(frac, "%.4f");
        out += ", \"geomeanSpeedup\": " + fmt(geo, "%.2f");
        out += ", \"maxQualityGapPct\": " + fmt(max_gap, "%.4f");
        out += "}, \"nearMiss\": {";
        out += "\"workload\": \"" + nm.workload + "\"";
        out += ", \"coldMeasured\": " +
               std::to_string(nm.coldMeasured);
        out += ", \"seededMeasured\": " +
               std::to_string(nm.seededMeasured);
        out += ", \"seededFromShape\": ";
        out += nm.seededFromShape ? "true" : "false";
        out += ", \"exactWarmStart\": ";
        out += nm.exactWarmStart ? "true" : "false";
        out += ", \"fewerWhenSeeded\": ";
        out += nm.seededMeasured < nm.coldMeasured ? "true"
                                                   : "false";
        out += "}, \"bounds\": {";
        out += "\"maxMeasuredFrac\": " +
               fmt(kMaxMeasuredFrac, "%.2f");
        out += ", \"maxQualityGapPct\": " + fmt(kMaxGapPct, "%.1f");
        out += ", \"minGeomeanSpeedup\": " +
               fmt(kMinGeomeanSpeedup, "%.1f");
        out += "}, \"allOk\": ";
        out += all_ok ? "true" : "false";
        out += "}";
        std::printf("%s\n", out.c_str());
        return all_ok ? 0 : 1;
    }

    std::printf("=== Autotune search: exhaustive oracle vs guided "
                "(default ladder) ===\n");
    printRow("workload",
             {"cands", "measured", "exh ms", "guided ms", "speedup",
              "gap %"},
             10);
    for (const auto &r : rows)
        printRow(r.name,
                 {std::to_string(r.total),
                  std::to_string(r.guidedMeasured),
                  fmt(r.exhaustiveMs, "%.1f"),
                  fmt(r.guidedMs, "%.1f"),
                  fmt(r.speedup(), "%.1fx"),
                  fmt(r.gapPct(), "%.2f")},
                 10);
    printRow("aggregate",
             {std::to_string(total), std::to_string(measured), "",
              "", fmt(geo, "%.1fx"), fmt(max_gap, "%.2f")},
             10);
    std::printf("near-miss (%s): cold measured %u, seeded %u "
                "(shape seed %s), exact re-run %s\n",
                nm.workload.c_str(), nm.coldMeasured,
                nm.seededMeasured, nm.seededFromShape ? "hit" : "MISS",
                nm.exactWarmStart ? "warm-started" : "COLD");
    std::printf("%s\n", all_ok ? "ok" : "FAILED: bounds violated");
    return all_ok ? 0 : 1;
}
