/**
 * @file
 * Compile-service benchmark — the machine-readable robustness
 * baseline behind BENCH_service.json.
 *
 * An in-process `polyfuse --serve` daemon is exercised the way a
 * fleet would use it:
 *
 *   latency   concurrent clients stream warm compile+run requests
 *             (kernel-cache hits) and ping requests through the unix
 *             socket; client-side wall-clock per request gives
 *             p50/p95/p99 for both classes, plus the mean in-server
 *             queue wait
 *   shed      a deliberately tiny admission queue is flooded; every
 *             response must be either ok or a typed `overloaded`
 *             error, and the daemon must keep answering afterwards
 *   retry     a transient native-tier failure is injected via the
 *             exec.native.transient failpoint; the request must
 *             retry per the backoff policy, degrade to bytecode,
 *             and still produce bit-identical buffers
 *
 * Every compile response's bufferHash is compared against a direct
 * driver::compileKernel run of the same request — the benchmark
 * doubles as a correctness gate and exits nonzero on any mismatch,
 * unexpected error kind, or lost response.
 *
 * Modes:
 *   (none)    full sweep, aligned table on stdout
 *   --json    full sweep, one JSON object on stdout
 *   --smoke   a short burst with the same gates, well under 0.5 s;
 *             the check_service_smoke ctest runs this
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <unistd.h>

#include "bench/common.hh"
#include "driver/artifact.hh"
#include "driver/registry.hh"
#include "exec/kernel_cache.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "support/failpoint.hh"

using namespace polyfuse;
using namespace polyfuse::bench;

namespace {

std::string
socketPath()
{
    return "/tmp/pf_bench_" + std::to_string(::getpid()) + ".sock";
}

service::Request
compileReq(uint64_t id, std::vector<int64_t> tiles = {8, 8})
{
    service::Request req;
    req.op = "compile";
    req.id = id;
    req.workload = "conv2d";
    req.rows = 32;
    req.cols = 32;
    req.tiles = std::move(tiles);
    req.tilesGiven = true;
    return req;
}

/** Direct driver run of @p req: the bit-identity reference. */
std::string
directHash(const service::Request &req)
{
    const driver::WorkloadSpec *spec =
        driver::findWorkload(req.workload);
    driver::PipelineOptions popts;
    driver::parseStrategy(req.strategy, popts.strategy);
    popts.tileSizes = req.tilesGiven ? req.tiles : spec->defaultTiles;
    driver::WorkloadParams params = spec->defaults;
    params.rows = req.rows;
    params.cols = req.cols;
    auto program =
        std::make_shared<const ir::Program>(spec->make(params));
    driver::Pipeline pipeline(popts);
    auto artifact = driver::compileKernel(pipeline, program);
    exec::Buffers buffers(*program);
    service::fillServiceInputs(*program, buffers);
    driver::executeKernel(artifact, buffers);
    return service::hashBuffers(buffers);
}

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0;
    std::sort(sorted.begin(), sorted.end());
    size_t idx = size_t(q * double(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

struct SweepResult
{
    // latency (client-side wall ms)
    std::vector<double> compileMs;
    std::vector<double> pingMs;
    double meanQueueMs = 0;
    uint64_t cacheHits = 0;
    // shed phase
    uint64_t shedOk = 0;       ///< flood responses that were ok
    uint64_t shedTyped = 0;    ///< flood responses typed overloaded
    uint64_t shedUnexpected = 0; ///< anything else (a failure)
    bool recoveredAfterShed = false;
    // retry phase
    unsigned retryCount = 0;
    bool retryDegradedOk = false;
    // gates
    uint64_t mismatches = 0;
    uint64_t transportErrors = 0;
};

/** Stream @p n warm compile requests + pings on one connection. */
void
clientLoop(const std::string &path, int n, uint64_t id_base,
           const std::string &expect_hash, SweepResult *out,
           std::mutex *mu)
{
    service::Client c;
    std::string err;
    if (!c.connect(path, &err)) {
        std::lock_guard<std::mutex> lock(*mu);
        ++out->transportErrors;
        return;
    }
    std::vector<double> compile_ms, ping_ms;
    double queue_ms = 0;
    uint64_t hits = 0, mismatches = 0, transport = 0;
    for (int i = 0; i < n; ++i) {
        service::Request req = compileReq(id_base + uint64_t(i));
        service::Response resp;
        Timer t;
        if (!c.call(req, &resp, &err) || !resp.ok) {
            ++transport;
            continue;
        }
        compile_ms.push_back(t.milliseconds());
        queue_ms += resp.queueMs;
        if (resp.fromCache)
            ++hits;
        if (resp.bufferHash != expect_hash)
            ++mismatches;

        service::Request ping;
        ping.op = "ping";
        ping.id = id_base + uint64_t(i);
        Timer tp;
        if (!c.call(ping, &resp, &err) || !resp.ok) {
            ++transport;
            continue;
        }
        ping_ms.push_back(tp.milliseconds());
    }
    std::lock_guard<std::mutex> lock(*mu);
    out->compileMs.insert(out->compileMs.end(), compile_ms.begin(),
                          compile_ms.end());
    out->pingMs.insert(out->pingMs.end(), ping_ms.begin(),
                       ping_ms.end());
    out->meanQueueMs += queue_ms;
    out->cacheHits += hits;
    out->mismatches += mismatches;
    out->transportErrors += transport;
}

/** Flood a tiny-queue server; count ok vs typed-overloaded. */
void
shedPhase(SweepResult *r, int flood)
{
    service::ServerOptions opts;
    opts.workers = 2;
    opts.maxQueueDepth = 2;
    opts.nativeRetry.sleep = [](double) {};
    service::Server srv(socketPath() + ".shed", opts);
    std::string err;
    if (!srv.start(&err)) {
        ++r->shedUnexpected;
        return;
    }
    const std::string expect = directHash(compileReq(0));

    std::mutex mu;
    std::vector<std::thread> threads;
    for (int i = 0; i < flood; ++i)
        threads.emplace_back([&, i] {
            service::Client c;
            std::string cerr;
            if (!c.connect(srv.socketPath(), &cerr)) {
                std::lock_guard<std::mutex> lock(mu);
                ++r->shedUnexpected;
                return;
            }
            service::Response resp;
            service::Request req = compileReq(uint64_t(i));
            if (!c.call(req, &resp, &cerr)) {
                std::lock_guard<std::mutex> lock(mu);
                ++r->shedUnexpected;
                return;
            }
            std::lock_guard<std::mutex> lock(mu);
            if (resp.ok && resp.bufferHash == expect)
                ++r->shedOk;
            else if (!resp.ok &&
                     resp.kind == service::ErrorKind::Overloaded)
                ++r->shedTyped;
            else
                ++r->shedUnexpected;
        });
    for (auto &t : threads)
        t.join();

    // The daemon must still answer after the flood. `overloaded` is
    // an explicit "come back later": admission slots release a beat
    // after the replies land, so honor the contract and retry.
    service::Client c;
    service::Response resp;
    if (c.connect(srv.socketPath(), &err)) {
        for (int attempt = 0; attempt < 200; ++attempt) {
            if (!c.call(compileReq(9999), &resp, &err))
                break;
            if (resp.ok) {
                r->recoveredAfterShed = resp.bufferHash == expect;
                break;
            }
            if (resp.kind != service::ErrorKind::Overloaded)
                break;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1));
        }
    }
    srv.stop();
}

/** Inject a transient native failure; demand retry-then-degrade. */
void
retryPhase(SweepResult *r)
{
    service::ServerOptions opts;
    opts.workers = 1;
    opts.nativeRetry.sleep = [](double) {};
    service::Server srv(socketPath() + ".retry", opts);
    std::string err;
    if (!srv.start(&err))
        return;
    service::Request req = compileReq(1, {16, 16});
    const std::string expect = [&] {
        service::Request ref = req;
        return directHash(ref);
    }();

    failpoints::set("exec.native.transient",
                    failpoints::Action::Error);
    service::Client c;
    service::Response resp;
    req.tier = "native";
    if (c.connect(srv.socketPath(), &err) &&
        c.call(req, &resp, &err) && resp.ok) {
        r->retryCount = resp.retries;
        r->retryDegradedOk =
            resp.tier == "bytecode" && resp.bufferHash == expect;
    }
    failpoints::clearAll();
    srv.stop();
}

int
runSweep(bool smoke, bool json)
{
    const int clients = smoke ? 2 : 4;
    const int per_client = smoke ? 4 : 50;
    const int flood = smoke ? 6 : 24;

    exec::KernelCache::process().clear();
    service::ServerOptions opts;
    opts.workers = 4;
    opts.nativeRetry.sleep = [](double) {};
    service::Server srv(socketPath(), opts);
    std::string err;
    if (!srv.start(&err)) {
        std::fprintf(stderr, "start: %s\n", err.c_str());
        return 1;
    }

    // Reference bits + cache warmup (one cold compile).
    const std::string expect = directHash(compileReq(0));
    {
        service::Client c;
        service::Response resp;
        if (!c.connect(srv.socketPath(), &err) ||
            !c.call(compileReq(0), &resp, &err) || !resp.ok ||
            resp.bufferHash != expect) {
            std::fprintf(stderr, "warmup failed\n");
            return 1;
        }
    }

    SweepResult r;
    std::mutex mu;
    std::vector<std::thread> threads;
    for (int i = 0; i < clients; ++i)
        threads.emplace_back(clientLoop, srv.socketPath(),
                             per_client,
                             uint64_t(1000 + i * per_client), expect,
                             &r, &mu);
    for (auto &t : threads)
        t.join();
    if (!r.compileMs.empty())
        r.meanQueueMs /= double(r.compileMs.size());
    service::ServerStats stats = srv.stats();
    srv.stop();

    shedPhase(&r, flood);
    retryPhase(&r);

    const uint64_t expected_responses =
        uint64_t(clients) * uint64_t(per_client);
    bool ok = r.mismatches == 0 && r.transportErrors == 0 &&
              r.compileMs.size() == expected_responses &&
              r.shedUnexpected == 0 &&
              r.shedOk + r.shedTyped == uint64_t(flood) &&
              r.recoveredAfterShed && r.retryDegradedOk;

    double p50 = percentile(r.compileMs, 0.50);
    double p95 = percentile(r.compileMs, 0.95);
    double p99 = percentile(r.compileMs, 0.99);
    double ping50 = percentile(r.pingMs, 0.50);
    double ping99 = percentile(r.pingMs, 0.99);

    if (json) {
        std::string out = "{\"bench\": \"service\", ";
        out += "\"workers\": 4, \"clients\": " +
               std::to_string(clients);
        out += ", \"requests\": " +
               std::to_string(r.compileMs.size());
        out += ", \"compileP50Ms\": " + fmt(p50, "%.4f");
        out += ", \"compileP95Ms\": " + fmt(p95, "%.4f");
        out += ", \"compileP99Ms\": " + fmt(p99, "%.4f");
        out += ", \"pingP50Ms\": " + fmt(ping50, "%.4f");
        out += ", \"pingP99Ms\": " + fmt(ping99, "%.4f");
        out += ", \"meanQueueMs\": " + fmt(r.meanQueueMs, "%.4f");
        out += ", \"cacheHits\": " + std::to_string(r.cacheHits);
        out +=
            ", \"serverAccepted\": " + std::to_string(stats.accepted);
        out += ", \"floodRequests\": " + std::to_string(flood);
        out += ", \"floodOk\": " + std::to_string(r.shedOk);
        out += ", \"floodShed\": " + std::to_string(r.shedTyped);
        out += ", \"recoveredAfterShed\": ";
        out += r.recoveredAfterShed ? "true" : "false";
        out += ", \"transientRetries\": " +
               std::to_string(r.retryCount);
        out += ", \"retryDegradedOk\": ";
        out += r.retryDegradedOk ? "true" : "false";
        out += ", \"allIdentical\": ";
        out += ok ? "true" : "false";
        out += "}";
        std::printf("%s\n", out.c_str());
        return ok ? 0 : 1;
    }

    std::printf("=== Compile service (%d clients x %d warm "
                "requests) ===\n",
                clients, per_client);
    printRow("latency",
             {"p50 ms", "p95 ms", "p99 ms", "queue ms"}, 11);
    printRow("compile+run",
             {fmt(p50, "%.3f"), fmt(p95, "%.3f"), fmt(p99, "%.3f"),
              fmt(r.meanQueueMs, "%.3f")},
             11);
    printRow("ping",
             {fmt(ping50, "%.3f"), "", fmt(ping99, "%.3f"), ""}, 11);
    std::printf("cache hits: %llu / %llu responses\n",
                (unsigned long long)r.cacheHits,
                (unsigned long long)r.compileMs.size());
    std::printf("flood: %llu ok + %llu shed (typed) of %d; "
                "recovered %s\n",
                (unsigned long long)r.shedOk,
                (unsigned long long)r.shedTyped, flood,
                r.recoveredAfterShed ? "yes" : "NO");
    std::printf("transient native failure: %u retries, degrade "
                "%s\n",
                r.retryCount, r.retryDegradedOk ? "ok" : "FAILED");
    std::printf("%s\n", ok ? "ok" : "FAILED: service gate");
    return ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false, json = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
        else if (!std::strcmp(argv[i], "--json"))
            json = true;
        else {
            std::fprintf(stderr,
                         "usage: bench_service [--smoke] [--json]\n");
            return 2;
        }
    }
    return runSweep(smoke, json);
}
