/**
 * @file
 * E7 -- compilation-time comparison (Table I columns + Sec. VI-D):
 * scheduling time of minfuse, smartfuse, maxfuse and our composition
 * on the six image pipelines, now with the driver's per-pass
 * breakdown (Fuse / Compose / Tile / Codegen) instead of one lumped
 * number.
 *
 * Paper expectation (shape): ours stays close to the cheap
 * heuristics and far below maxfuse (which the paper could not finish
 * within a day on four pipelines); Harris is the noted exception
 * where the footprint computation (the Compose pass) dominates for
 * our approach.
 */

#include <cstring>

#include "bench/common.hh"
#include "bench/perf_baseline.hh"
#include "driver/batch.hh"
#include "support/thread_pool.hh"
#include "workloads/pipelines.hh"

using namespace polyfuse;
using namespace polyfuse::bench;

namespace {

/**
 * --json: the registry-wide compile-time baseline behind
 * BENCH_compile_time.json. Every registry workload is compiled at
 * --jobs 1 twice in this same process — baseline (forced-heap rows,
 * op cache off) and optimized (inline rows, cache on) — and the
 * geomean speedup of the optimized configuration is the number the
 * perf trajectory tracks. Exit 1 when any workload's generated C
 * differs between the two configurations.
 */
int
runJson()
{
    std::vector<PerfComparison> sweep = sweepRegistryPerf(3);
    double geomean = geomeanSpeedup(sweep);
    bool all_identical = true;
    for (const auto &c : sweep)
        all_identical = all_identical && c.identical();

    std::string out = "{\"bench\": \"compile_time\", \"jobs\": 1, ";
    out += "\"strategy\": \"ours\", \"reps\": 3, \"workloads\": [";
    for (size_t i = 0; i < sweep.size(); ++i) {
        if (i)
            out += ", ";
        out += perfComparisonJson(sweep[i]);
    }
    out += "], \"geomeanSpeedup\": " + fmt(geomean, "%.4f");
    out += ", \"allIdentical\": ";
    out += all_identical ? "true" : "false";
    out += "}";
    std::printf("%s\n", out.c_str());
    return all_identical ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && !std::strcmp(argv[1], "--json"))
        return runJson();
    if (argc > 1) {
        std::fprintf(stderr, "usage: bench_compile_time [--json]\n");
        return 2;
    }
    workloads::PipelineConfig cfg{256, 256};
    struct Entry
    {
        const char *name;
        ir::Program (*make)(const workloads::PipelineConfig &);
    };
    std::vector<Entry> entries = {
        {"BilateralGrid", workloads::makeBilateralGrid},
        {"CameraPipeline", workloads::makeCameraPipeline},
        {"HarrisCorner", workloads::makeHarris},
        {"LocalLaplacian", workloads::makeLocalLaplacian},
        {"MultiscaleInterp", workloads::makeMultiscaleInterp},
        {"UnsharpMask", workloads::makeUnsharpMask},
    };
    std::vector<Strategy> strategies = {
        Strategy::MinFuse, Strategy::SmartFuse, Strategy::MaxFuse,
        Strategy::Ours};

    std::printf("=== Compilation time per pass (ms; best of 3) "
                "===\n");
    printRow("benchmark/strategy",
             {"fuse", "compose", "tile", "codegen", "total"}, 10);
    for (const auto &e : entries) {
        ir::Program p = e.make(cfg);
        for (Strategy s : strategies) {
            RunOptions opts;
            opts.tileSizes = {32, 32};
            // Best of three to de-noise; keep the stats of the
            // fastest run so the breakdown matches the total.
            driver::PassStats best;
            double best_ms = 1e30;
            for (int rep = 0; rep < 3; ++rep) {
                auto state = compileStrategy(p, s, opts);
                double ms = state.compileMs();
                if (ms < best_ms) {
                    best_ms = ms;
                    best = state.stats;
                }
            }
            printRow(std::string(e.name) + "/" + strategyName(s),
                     {fmt(best.msOf("Fuse")),
                      fmt(best.msOf("Compose")),
                      fmt(best.msOf("Tile")),
                      fmt(best.msOf("Codegen")), fmt(best_ms)},
                     10);
        }
        std::printf("\n");
    }
    std::printf("Dependence analysis is shared by all strategies "
                "and excluded from the total;\nmaxfuse's shift "
                "search lands in `fuse`, ours' footprint "
                "computation in `compose`.\n");

    // Batch sweep: the same pipeline x strategy grid through
    // driver::compileBatch, sequentially and on every hardware
    // thread, so the batching speedup is visible next to the E7
    // sequential numbers (which remain the paper artifact above).
    auto makeJobs = [&] {
        std::vector<driver::BatchJob> jobs;
        for (const auto &e : entries) {
            for (Strategy s : strategies) {
                driver::BatchJob job;
                job.name =
                    std::string(e.name) + "/" + strategyName(s);
                job.options.strategy = s;
                job.options.tileSizes = {32, 32};
                auto make = e.make;
                job.make = [make, cfg] { return make(cfg); };
                jobs.push_back(std::move(job));
            }
        }
        return jobs;
    };
    unsigned hw = ThreadPool::defaultThreads();
    std::printf("\n=== Batch compilation (driver::compileBatch, "
                "%zu jobs) ===\n",
                entries.size() * strategies.size());
    auto seq = driver::compileBatch(makeJobs(), 1);
    auto par = driver::compileBatch(makeJobs(), hw);
    printRow("jobs=1", {fmt(seq.wallMs), "wall ms"}, 10);
    printRow("jobs=" + std::to_string(hw),
             {fmt(par.wallMs), "wall ms"}, 10);
    printRow("speedup",
             {fmt(par.wallMs > 0 ? seq.wallMs / par.wallMs : 0.0,
                  "%.2fx")},
             10);
    if (seq.failed() || par.failed())
        std::printf("WARNING: %u/%u jobs failed\n", seq.failed(),
                    par.failed());
    return 0;
}
