/**
 * @file
 * E7 -- compilation-time comparison (Table I columns + Sec. VI-D):
 * scheduling time of minfuse, smartfuse, maxfuse and our composition
 * on the six image pipelines.
 *
 * Paper expectation (shape): ours stays close to the cheap
 * heuristics and far below maxfuse (which the paper could not finish
 * within a day on four pipelines); Harris is the noted exception
 * where the footprint computation dominates for our approach.
 */

#include "bench/common.hh"
#include "workloads/pipelines.hh"

using namespace polyfuse;
using namespace polyfuse::bench;

int
main()
{
    workloads::PipelineConfig cfg{256, 256};
    struct Entry
    {
        const char *name;
        ir::Program (*make)(const workloads::PipelineConfig &);
    };
    std::vector<Entry> entries = {
        {"BilateralGrid", workloads::makeBilateralGrid},
        {"CameraPipeline", workloads::makeCameraPipeline},
        {"HarrisCorner", workloads::makeHarris},
        {"LocalLaplacian", workloads::makeLocalLaplacian},
        {"MultiscaleInterp", workloads::makeMultiscaleInterp},
        {"UnsharpMask", workloads::makeUnsharpMask},
    };
    std::vector<Strategy> strategies = {
        Strategy::MinFuse, Strategy::SmartFuse, Strategy::MaxFuse,
        Strategy::Ours};

    std::printf("=== Compilation time (scheduling + codegen, ms) "
                "===\n");
    printRow("benchmark",
             {"minfuse", "smartfuse", "maxfuse", "ours"});
    for (const auto &e : entries) {
        ir::Program p = e.make(cfg);
        auto graph = deps::DependenceGraph::compute(p);
        std::vector<std::string> cells;
        for (Strategy s : strategies) {
            // Best of three to de-noise.
            double best = 1e30;
            for (int rep = 0; rep < 3; ++rep) {
                RunOptions opts;
                opts.tileSizes = {32, 32};
                double compile_ms = 0;
                auto tree =
                    buildSchedule(p, graph, s, opts, compile_ms);
                Timer t;
                codegen::generateAst(tree);
                compile_ms += t.milliseconds();
                best = std::min(best, compile_ms);
            }
            cells.push_back(fmt(best));
        }
        printRow(e.name, cells);
    }
    std::printf("\nDependence analysis is shared by all strategies "
                "and excluded;\nmaxfuse's shift search and ours' "
                "footprint computation are included.\n");
    return 0;
}
