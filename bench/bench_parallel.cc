/**
 * @file
 * Tile-graph parallel runtime benchmark — the machine-readable
 * baseline behind BENCH_parallel.json.
 *
 * Coincident-band workloads (compiled with the paper's composition)
 * run under the static strategy, the skewed/wavefront seidel sweep
 * under the graph strategy, each at 1/2/4/8 worker threads against
 * the sequential bytecode tape. Every parallel run's buffers are
 * compared bit-for-bit against the sequential run — the benchmark
 * doubles as a correctness gate and exits nonzero on any mismatch.
 *
 * Reported per workload: sequential wall-clock, per-thread-count
 * wall-clock and speedup, tiles executed, ready-queue waits, the
 * tile DAG's critical-path length, and the parallelism bound
 * tiles / criticalPath (the speedup ceiling no thread count can
 * beat). `hardwareThreads` records the machine's concurrency and
 * `singleCore` whether the process is effectively pinned to one
 * core (hardware count of 1 or a one-CPU affinity mask): on such a
 * box every speedup is pinned near 1x, so the geomean speedup
 * claims are withheld entirely — the rows remain as overhead
 * measurements, documented as such, not as a defect.
 *
 * Modes:
 *   (none)    full sweep, aligned table on stdout
 *   --json    full sweep, one JSON object on stdout
 *   --smoke   two-workload subset at tiny sizes with the same
 *             equality assertions, well under the ctest budget; the
 *             check_par_smoke ctest runs this
 */

#include <cmath>
#include <cstring>

#ifdef __linux__
#include <sched.h>
#endif

#include "bench/common.hh"
#include "driver/registry.hh"
#include "exec/engine.hh"
#include "support/thread_pool.hh"
#include "workloads/equake.hh"

using namespace polyfuse;
using namespace polyfuse::bench;

namespace {

constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};

struct ThreadPoint
{
    unsigned threads = 0;
    double ms = 0;
    uint64_t waits = 0;
    bool identical = true;
};

struct ParRow
{
    std::string name;
    Strategy strategy = Strategy::Ours;
    exec::ParStrategy par = exec::ParStrategy::Static;
    double seqMs = 0;
    uint64_t tiles = 0;
    uint64_t criticalPath = 0;
    std::string fallback; ///< nonempty: parallel path never engaged
    std::vector<ThreadPoint> points;

    double
    speedupAt(unsigned threads) const
    {
        for (const auto &pt : points)
            if (pt.threads == threads && pt.ms > 0)
                return seqMs / pt.ms;
        return 0;
    }

    /** tiles / criticalPath: the DAG's speedup ceiling. */
    double
    parallelismBound() const
    {
        return criticalPath ? double(tiles) / double(criticalPath)
                            : 0;
    }

    bool
    identical() const
    {
        for (const auto &pt : points)
            if (!pt.identical)
                return false;
        return true;
    }
};

driver::WorkloadParams
benchParams(const std::string &name)
{
    if (name == "2mm")
        return {96, 96};
    if (name == "unsharp")
        return {64, 128};
    if (name == "seidel")
        return {512, 512};
    return {128, 128};
}

bool
buffersEqual(const ir::Program &p, const exec::Buffers &a,
             const exec::Buffers &b)
{
    for (size_t t = 0; t < p.tensors().size(); ++t)
        if (a.data(t) != b.data(t))
            return false;
    return true;
}

ParRow
measure(const driver::WorkloadSpec &spec,
        const driver::WorkloadParams &params, Strategy strategy,
        exec::ParStrategy par, int reps)
{
    ParRow r;
    r.name = spec.name;
    r.strategy = strategy;
    r.par = par;
    ir::Program p = spec.make(params);

    driver::PipelineOptions popts;
    popts.strategy = strategy;
    popts.tileSizes = spec.defaultTiles;
    auto state = driver::Pipeline(popts).run(p);

    auto init = [&](exec::Buffers &buf) {
        for (size_t t = 0; t < p.tensors().size(); ++t)
            if (p.tensor(t).kind != ir::TensorKind::Temp)
                buf.fillPattern(t, 1000 + t);
    };

    exec::BytecodeKernel kernel =
        exec::BytecodeKernel::compile(p, state.ast);

    // Sequential baseline, keeping the buffers for equality.
    exec::Buffers ref(p);
    r.seqMs = 1e30;
    for (int rep = 0; rep < reps; ++rep) {
        exec::Buffers buf(p);
        init(buf);
        auto stats = kernel.run(buf);
        r.seqMs = std::min(r.seqMs, stats.seconds * 1e3);
        if (rep == reps - 1)
            ref = std::move(buf);
    }

    for (unsigned threads : kThreadCounts) {
        ThreadPoint pt;
        pt.threads = threads;
        pt.ms = 1e30;
        for (int rep = 0; rep < reps; ++rep) {
            exec::Buffers buf(p);
            init(buf);
            exec::ParRunStats ps;
            std::string reason;
            auto stats = kernel.runParallel(
                buf, threads, par, &state.tileBands, ps, reason);
            pt.ms = std::min(pt.ms, stats.seconds * 1e3);
            if (rep == reps - 1) {
                pt.waits = ps.waits;
                pt.identical = buffersEqual(p, ref, buf);
                r.tiles = ps.tilesExecuted;
                r.criticalPath = ps.criticalPath;
                r.fallback = reason;
            }
        }
        r.points.push_back(pt);
    }
    return r;
}

double
geomeanSpeedup(const std::vector<ParRow> &rows, unsigned threads,
               exec::ParStrategy only)
{
    double acc = 0;
    int n = 0;
    for (const auto &r : rows) {
        if (r.par != only)
            continue;
        double v = r.speedupAt(threads);
        if (v > 0) {
            acc += std::log(v);
            ++n;
        }
    }
    return n ? std::exp(acc / n) : 0;
}

std::string
rowJson(const ParRow &r)
{
    std::string out = "{\"name\": \"" + r.name + "\"";
    out += ", \"strategy\": \"";
    out += strategyName(r.strategy);
    out += "\", \"par\": \"";
    out += exec::parStrategyName(r.par);
    out += "\", \"seqMs\": " + fmt(r.seqMs, "%.4f");
    out += ", \"tiles\": " + std::to_string(r.tiles);
    out += ", \"criticalPath\": " + std::to_string(r.criticalPath);
    out +=
        ", \"parallelismBound\": " + fmt(r.parallelismBound(), "%.2f");
    out += ", \"threads\": [";
    for (size_t i = 0; i < r.points.size(); ++i) {
        const ThreadPoint &pt = r.points[i];
        if (i)
            out += ", ";
        out += "{\"threads\": " + std::to_string(pt.threads);
        out += ", \"ms\": " + fmt(pt.ms, "%.4f");
        out += ", \"speedup\": " +
               fmt(r.speedupAt(pt.threads), "%.2f");
        out += ", \"waits\": " + std::to_string(pt.waits);
        out += "}";
    }
    out += "], \"identical\": ";
    out += r.identical() ? "true" : "false";
    out += "}";
    return out;
}

std::vector<ParRow>
fullSweep(int reps)
{
    // Coincident-band workloads under the composition strategy
    // (static fast path) ...
    std::vector<ParRow> rows;
    for (const char *name :
         {"conv2d", "harris", "bilateral", "camera", "unsharp",
          "2mm"}) {
        const driver::WorkloadSpec *w = driver::findWorkload(name);
        if (!w)
            continue;
        rows.push_back(measure(*w, benchParams(name),
                               Strategy::Ours,
                               exec::ParStrategy::Static, reps));
    }
    // ... plus the skewed wavefront tiling through the tile DAG.
    if (const driver::WorkloadSpec *w = driver::findWorkload("seidel"))
        rows.push_back(measure(*w, benchParams("seidel"),
                               Strategy::MinFuse,
                               exec::ParStrategy::Graph, reps));
    return rows;
}

/** Smoke: tiny subset, equality gate only. */
int
runSmoke()
{
    int failures = 0;
    struct
    {
        const char *name;
        driver::WorkloadParams params;
        Strategy strategy;
        exec::ParStrategy par;
    } subset[] = {
        {"harris", {64, 256}, Strategy::Ours,
         exec::ParStrategy::Static},
        {"seidel", {48, 48}, Strategy::MinFuse,
         exec::ParStrategy::Graph},
    };
    for (const auto &s : subset) {
        const driver::WorkloadSpec *w = driver::findWorkload(s.name);
        if (!w) {
            std::printf("FAIL %s: not in registry\n", s.name);
            ++failures;
            continue;
        }
        ParRow r = measure(*w, s.params, s.strategy, s.par, 1);
        bool ok = r.identical() && r.fallback.empty() && r.tiles > 0;
        std::printf("%-10s %s: %llu tiles, critical path %llu, "
                    "buffers %s%s%s\n",
                    s.name, exec::parStrategyName(s.par),
                    (unsigned long long)r.tiles,
                    (unsigned long long)r.criticalPath,
                    r.identical() ? "bit-identical" : "MISMATCH",
                    r.fallback.empty() ? "" : ", fallback: ",
                    r.fallback.c_str());
        failures += ok ? 0 : 1;
    }
    if (failures) {
        std::printf("FAILED: %d parallel smoke failures\n", failures);
        return 1;
    }
    std::printf("ok\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false, json = false;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
        else if (!std::strcmp(argv[i], "--json"))
            json = true;
        else {
            std::fprintf(
                stderr,
                "usage: bench_parallel [--smoke] [--json]\n");
            return 2;
        }
    }
    if (smoke)
        return runSmoke();

    const int reps = 3;
    std::vector<ParRow> rows = fullSweep(reps);
    bool all_identical = true;
    for (const auto &r : rows)
        all_identical = all_identical && r.identical();

    unsigned hw = ThreadPool::defaultThreads();
    unsigned aff = hw;
#ifdef __linux__
    {
        cpu_set_t set;
        CPU_ZERO(&set);
        if (sched_getaffinity(0, sizeof(set), &set) == 0 &&
            CPU_COUNT(&set) > 0)
            aff = unsigned(CPU_COUNT(&set));
    }
#endif
    // Pinned to one core, a "speedup" is thread-scheduling noise:
    // the baseline refuses the claim outright instead of committing
    // a misleading geomean.
    bool single_core = hw <= 1 || aff <= 1;
    if (json) {
        std::string out = "{\"bench\": \"parallel\", ";
        out += "\"hardwareThreads\": " + std::to_string(hw);
        out += ", \"singleCore\": ";
        out += single_core ? "true" : "false";
        out += ", \"reps\": " + std::to_string(reps);
        out += ", \"workloads\": [";
        for (size_t i = 0; i < rows.size(); ++i) {
            if (i)
                out += ", ";
            out += rowJson(rows[i]);
        }
        out += "]";
        if (!single_core)
            for (unsigned t : {2u, 4u, 8u})
                out += ", \"geomeanSpeedup" + std::to_string(t) +
                       "\": " +
                       fmt(geomeanSpeedup(rows, t,
                                          exec::ParStrategy::Static),
                           "%.4f");
        out += ", \"allIdentical\": ";
        out += all_identical ? "true" : "false";
        out += "}";
        std::printf("%s\n", out.c_str());
        return all_identical ? 0 : 1;
    }

    std::printf("=== Tile-graph parallel runtime (best of %d, "
                "%u hardware threads) ===\n",
                reps, hw);
    printRow("workload",
             {"par", "seq ms", "x1", "x2", "x4", "x8", "tiles",
              "critpath", "buffers"},
             9);
    for (const auto &r : rows) {
        printRow(r.name,
                 {exec::parStrategyName(r.par), fmt(r.seqMs),
                  fmt(r.speedupAt(1), "%.2fx"),
                  fmt(r.speedupAt(2), "%.2fx"),
                  fmt(r.speedupAt(4), "%.2fx"),
                  fmt(r.speedupAt(8), "%.2fx"),
                  std::to_string(r.tiles),
                  std::to_string(r.criticalPath),
                  r.identical() ? "identical" : "MISMATCH"},
                 9);
    }
    if (single_core)
        std::printf("geomean withheld: single-core machine, "
                    "speedup rows measure overhead only\n");
    else
        printRow(
            "geomean",
            {"static", "",
             fmt(geomeanSpeedup(rows, 1, exec::ParStrategy::Static),
                 "%.2fx"),
             fmt(geomeanSpeedup(rows, 2, exec::ParStrategy::Static),
                 "%.2fx"),
             fmt(geomeanSpeedup(rows, 4, exec::ParStrategy::Static),
                 "%.2fx"),
             fmt(geomeanSpeedup(rows, 8, exec::ParStrategy::Static),
                 "%.2fx"),
             "", "", ""},
            9);
    return all_identical ? 0 : 1;
}
