/**
 * @file
 * Tile-size auto-tuning in the style the paper relies on for
 * Table I ("By considering 7 possible tile sizes including 8, 16,
 * 32, 64, 128, 256 and 512 for each dimension, the PolyMage
 * framework uses an auto-tuning strategy for tile size selection").
 *
 * Two search modes (perfmodel/search.hh):
 *
 *   - Exhaustive (the default here, and the oracle): run the
 *     composition for every candidate size vector, execute the
 *     result once with the cache simulation, and pick the size
 *     minimizing the modeled multi-thread time.
 *   - Guided: rank every candidate with the calibrated analytic
 *     cost model (perfmodel/model.hh), then fully evaluate only the
 *     top-K with successive-halving early stopping -- a fraction of
 *     the measurements at near-oracle quality.
 *
 * The tuning store participates at two levels: an exact-key hit
 * (same program, same sizes, same search space) returns the stored
 * tiles with no search at all, and -- in guided mode -- a shape-key
 * hit (same program structure at *different* tensor extents, via
 * ir::mixProgramShape) seeds the candidate ranking and halves the
 * measurement budget. Completed guided searches also fold their
 * measurements into the store's cost-model calibration, so every
 * search sharpens later rankings.
 */

#ifndef POLYFUSE_PERFMODEL_AUTOTUNE_HH
#define POLYFUSE_PERFMODEL_AUTOTUNE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "deps/dependences.hh"
#include "exec/executor.hh"
#include "ir/program.hh"
#include "perfmodel/search.hh"
#include "pres/fingerprint.hh"

namespace polyfuse {
namespace perfmodel {

class TuneDb;

/** Tuner configuration. */
struct AutotuneOptions
{
    /** Candidate sizes per dimension (PolyMage's ladder). */
    std::vector<int64_t> candidates{8, 16, 32, 64, 128, 256, 512};
    /** Dimensions to tune (tile vectors of this length). */
    unsigned dims = 2;
    unsigned threads = 32;          ///< objective thread count
    unsigned targetParallelism = 1; ///< forwarded to the composition
    /**
     * Concurrent candidate evaluations (0 = hardware concurrency).
     * Each evaluation compiles and simulates against its own
     * CompileContext-style state, and every reduction runs in
     * enumeration/ranking order after the pool drains, so the chosen
     * sizes are identical for any job count -- in both search modes.
     * @p init must be safe to call from several threads at once.
     */
    unsigned jobs = 1;

    /** How to explore the ladder. The library default stays
     *  Exhaustive (the oracle); the CLI defaults to Guided. */
    SearchMode searchMode = SearchMode::Exhaustive;

    /** Guided: fully evaluate this many top-ranked candidates
     *  (0 = auto, max(3, ceil(total / 5)); halved again when a
     *  shape-key seed is available). */
    unsigned searchTopK = 0;

    /** Guided: also run the exhaustive oracle and report
     *  oracleMs / qualityGapPct (costs a full sweep; for reports
     *  and benches, not production tuning). */
    bool compareOracle = false;

    /**
     * Persistent tuning store (perfmodel/tune_db.hh). When set, the
     * tuner first looks up the key fingerprinting the program
     * structure AND this search configuration (candidates, dims,
     * threads, targetParallelism); a hit warm-starts -- the stored
     * tiles come back with evaluated == 0 and warmStart set, no
     * candidate is compiled. A completed cold search puts its result
     * and save()s the store. Guided searches additionally consult
     * the extent-blind shape key (near-miss seeding) and update the
     * stored cost-model calibration.
     */
    TuneDb *db = nullptr;
};

/** Tuner outcome. */
struct AutotuneResult
{
    std::vector<int64_t> tileSizes;
    double modeledMs = 0;
    /** Candidates fully measured (compose + simulate). */
    unsigned evaluated = 0;

    /** The mode that produced this result. */
    SearchMode mode = SearchMode::Exhaustive;

    /** Feasible candidates in the search space. */
    unsigned totalCandidates = 0;

    /** Candidates skipped on model ranking alone (guided;
     *  totalCandidates - evaluated). */
    unsigned pruned = 0;

    /** Wall time of the model ranking pass (guided only). */
    double modelRankMs = 0;

    /** Wall time of the candidate sweep (compile + simulate). */
    double searchMs = 0;

    /** Presburger op-cache traffic of the sweep, aggregated across
     *  workers: the sequential path shares one cache across
     *  candidates, the parallel path sums its per-worker counters,
     *  so both report comparable numbers. */
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;

    /** Rough wall time the shared cache saved: (cold first candidate
     *  - warm average) x warm candidates, clamped at zero. An
     *  estimate -- candidates genuinely differ in cost -- but cheap,
     *  and zero whenever the cache was off or never hit. */
    double savedMsEstimate = 0;

    /** True when the result came out of the tuning store without a
     *  search (evaluated == 0 in that case). */
    bool warmStart = false;

    /** True when a shape-key near miss seeded the guided ranking. */
    bool seededFromShape = false;

    /** The exhaustive oracle's best modeled time (only when
     *  AutotuneOptions::compareOracle). */
    double oracleMs = 0;

    /** 100 x (modeledMs - oracleMs) / oracleMs (only when
     *  compareOracle; 0 when the winner matches the oracle). */
    double qualityGapPct = 0;
};

/**
 * The tuning-store key for @p program under @p options: the
 * program's structural fingerprint plus the search configuration,
 * so a changed ladder/dims/objective re-tunes. Deliberately blind
 * to searchMode/topK: guided and exhaustive searches answer the
 * same question, so either's stored winner serves both.
 */
pres::Fingerprint tuningKey(const ir::Program &program,
                            const AutotuneOptions &options);

/**
 * The extent-blind near-miss key: ir::mixProgramShape plus the same
 * search configuration. Two instantiations of one pipeline at
 * different sizes share this key, so tiles tuned at one size seed
 * the guided search at another.
 */
pres::Fingerprint tuningShapeKey(const ir::Program &program,
                                 const AutotuneOptions &options);

/**
 * Find the tile sizes minimizing the modeled time of the composed
 * schedule of @p program. @p init fills the input buffers before the
 * evaluation run.
 */
AutotuneResult
autotuneTileSizes(const ir::Program &program,
                  const deps::DependenceGraph &graph,
                  const std::function<void(exec::Buffers &)> &init,
                  const AutotuneOptions &options = {});

} // namespace perfmodel
} // namespace polyfuse

#endif // POLYFUSE_PERFMODEL_AUTOTUNE_HH
