/**
 * @file
 * Tile-size auto-tuning in the style the paper relies on for
 * Table I ("By considering 7 possible tile sizes including 8, 16,
 * 32, 64, 128, 256 and 512 for each dimension, the PolyMage
 * framework uses an auto-tuning strategy for tile size selection").
 *
 * The tuner runs the composition for every candidate size pair,
 * executes the result once with the cache simulation, and picks the
 * size minimizing the modeled multi-thread time. It is deliberately
 * exhaustive (the paper treats tuning as a complementary, offline
 * step) but prunes candidates larger than the iteration space.
 */

#ifndef POLYFUSE_PERFMODEL_AUTOTUNE_HH
#define POLYFUSE_PERFMODEL_AUTOTUNE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "deps/dependences.hh"
#include "exec/executor.hh"
#include "ir/program.hh"
#include "pres/fingerprint.hh"

namespace polyfuse {
namespace perfmodel {

class TuneDb;

/** Tuner configuration. */
struct AutotuneOptions
{
    /** Candidate sizes per dimension (PolyMage's ladder). */
    std::vector<int64_t> candidates{8, 16, 32, 64, 128, 256, 512};
    /** Dimensions to tune (tile vectors of this length). */
    unsigned dims = 2;
    unsigned threads = 32;          ///< objective thread count
    unsigned targetParallelism = 1; ///< forwarded to the composition
    /**
     * Concurrent candidate evaluations (0 = hardware concurrency).
     * Each evaluation compiles and simulates against its own
     * CompileContext-style state, and ties are broken by enumeration
     * order, so the chosen sizes are identical for any job count.
     * @p init must be safe to call from several threads at once.
     */
    unsigned jobs = 1;

    /**
     * Persistent tuning store (perfmodel/tune_db.hh). When set, the
     * tuner first looks up the key fingerprinting the program
     * structure AND this search configuration (candidates, dims,
     * threads, targetParallelism); a hit warm-starts -- the stored
     * tiles come back with evaluated == 0 and warmStart set, no
     * candidate is compiled. A completed cold search puts its result
     * and save()s the store.
     */
    TuneDb *db = nullptr;
};

/** Tuner outcome. */
struct AutotuneResult
{
    std::vector<int64_t> tileSizes;
    double modeledMs = 0;
    unsigned evaluated = 0;

    /** Wall time of the candidate sweep (compile + simulate). */
    double searchMs = 0;

    /** Presburger op-cache traffic of the sweep. The sequential path
     *  (jobs == 1) shares one cache across candidates, so repeated
     *  dependence compositions are memoized; the parallel path
     *  evaluates with per-thread contexts and reports zeros. */
    uint64_t cacheHits = 0;
    uint64_t cacheMisses = 0;

    /** Rough wall time the shared cache saved: (cold first candidate
     *  - warm average) x warm candidates, clamped at zero. An
     *  estimate -- candidates genuinely differ in cost -- but cheap,
     *  and zero whenever the cache was off or never hit. */
    double savedMsEstimate = 0;

    /** True when the result came out of the tuning store without a
     *  search (evaluated == 0 in that case). */
    bool warmStart = false;
};

/**
 * The tuning-store key for @p program under @p options: the
 * program's structural fingerprint plus the search configuration,
 * so a changed ladder/dims/objective re-tunes.
 */
pres::Fingerprint tuningKey(const ir::Program &program,
                            const AutotuneOptions &options);

/**
 * Find the tile sizes minimizing the modeled time of the composed
 * schedule of @p program. @p init fills the input buffers before the
 * evaluation run.
 */
AutotuneResult
autotuneTileSizes(const ir::Program &program,
                  const deps::DependenceGraph &graph,
                  const std::function<void(exec::Buffers &)> &init,
                  const AutotuneOptions &options = {});

} // namespace perfmodel
} // namespace polyfuse

#endif // POLYFUSE_PERFMODEL_AUTOTUNE_HH
