/**
 * @file
 * The analytic tile-size cost model behind guided autotuning: scores
 * a candidate tile vector from the program's access structure alone,
 * with no composition, codegen or simulation per candidate. The
 * model is the measurement-replacement half of ROADMAP item 3 (the
 * model-based tile selection of arXiv 1909.07190): rank all
 * candidates with the model, measure only the top of the ranking.
 *
 * Features are extracted once per program (O(statements x dims)):
 * per-statement iteration-box extents and per-access index
 * coefficient rows. A candidate is then scored in O(statements x
 * dims) arithmetic from four ms-dimensioned terms:
 *
 *   compute   flop count / sustained rate (candidate-invariant, but
 *             anchors the fit's scale)
 *   mem       access count x latency(per-tile footprint): the
 *             footprint volume of one tile -- eq. (4)/(5) evaluated
 *             on the box approximation, |coeff|-weighted tile spans
 *             plus halos -- interpolated against the L1/L2
 *             capacities of the tuning hierarchy (the reuse-distance
 *             proxy: a footprint that fits L1 hits at L1 latency, a
 *             spilling one pays L2/DRAM latency)
 *   traffic   tiles x per-tile footprint bytes / DRAM bandwidth
 *             (halo bytes are re-streamed per tile, so undersized
 *             tiles pay here)
 *   tile      tile count (loop overhead and parallel-grain term)
 *
 * The predicted time is a non-negative linear combination of the
 * terms. The coefficients (ModelFit) are CALIBRATED: fitModel()
 * least-squares fits them against really-measured samples
 * (compose + codegen + bytecode + memsim evaluations, the same
 * BENCH_runtime.json-style numbers the tuner minimizes), and the
 * fit is persisted in the TuneDb file so every cold search sharpens
 * later rankings. defaultModelFit() is the committed calibration:
 * the coefficients of a registry-wide fit (bench_autotune --fit)
 * checked in as code so a db-less guided search still ranks well.
 */

#ifndef POLYFUSE_PERFMODEL_MODEL_HH
#define POLYFUSE_PERFMODEL_MODEL_HH

#include <cstdint>
#include <vector>

#include "ir/program.hh"

namespace polyfuse {
namespace perfmodel {

/** Calibrated term weights of the cost model. */
struct ModelFit
{
    double cCompute = 0;
    double cMem = 0;
    double cTraffic = 0;
    double cTile = 0;
    /** Measured samples behind this fit (0 = not calibrated; use
     *  defaultModelFit() instead). */
    uint64_t samples = 0;
};

/** The committed registry-wide calibration (see file comment). */
ModelFit defaultModelFit();

/** Raw per-candidate features, each already in milliseconds-like
 *  units so the fitted weights stay O(1). */
struct ModelTerms
{
    double compute = 0;
    double mem = 0;
    double traffic = 0;
    double tile = 0;
};

/** dot(fit, terms): the modeled time of one candidate. */
double predictMs(const ModelTerms &terms, const ModelFit &fit);

/** One measured observation for calibration. */
struct ModelSample
{
    ModelTerms terms;
    double measuredMs = 0;
};

/**
 * Least-squares fit of the term weights against @p samples,
 * non-negativity enforced by clamp-and-refit. @p prior is blended
 * in by sample count (so an incremental re-fit cannot be yanked
 * around by one small search); pass samples == 0 to fit fresh.
 * Returns @p prior unchanged when the system is degenerate (fewer
 * than 4 usable samples or a singular normal matrix).
 */
ModelFit fitModel(const std::vector<ModelSample> &samples,
                  const ModelFit &prior);

/**
 * Per-program feature extraction + per-candidate scoring. Built
 * once per tuning call; score()/terms() are cheap and const
 * (thread-safe after construction).
 */
class CostModel
{
  public:
    /**
     * Extract features of @p program for tile vectors of length
     * @p dims evaluated at an objective of @p threads (the same
     * objective autotuning's modeledCpuMs uses).
     */
    CostModel(const ir::Program &program, unsigned dims,
              unsigned threads);

    /** The four raw terms of candidate @p tiles. */
    ModelTerms terms(const std::vector<int64_t> &tiles) const;

    /** predictMs(terms(tiles), fit). */
    double score(const std::vector<int64_t> &tiles,
                 const ModelFit &fit) const;

    /**
     * True when every tiled extent of the live-out boxes divides by
     * its tile (no ragged boundary tiles): the extent-divisor
     * preference of the dimension-matching candidate ordering.
     */
    bool dividesExtents(const std::vector<int64_t> &tiles) const;

    /**
     * True when the innermost tiled span equals the full innermost
     * extent (or the largest feasible candidate): the per-band
     * locality preference -- contiguous innermost walks first.
     */
    bool innermostContiguous(const std::vector<int64_t> &tiles,
                             int64_t widest_candidate) const;

  private:
    struct AccessFeat
    {
        int tensor = -1;
        /** |coefficient| per (tensor dim, statement dim). */
        std::vector<std::vector<int64_t>> absCoeffs;
    };

    struct StmtFeat
    {
        std::vector<int64_t> extents; ///< iteration-box per dim
        double instances = 1;         ///< box volume
        double flops = 1;             ///< instances x opsPerInstance
        unsigned accessCount = 0;     ///< loads + stores per instance
        bool liveOut = false;
        std::vector<AccessFeat> accesses;
    };

    /** Per-statement spans of one tile: min(tile, extent) on the
     *  tiled dims, the full extent below them. */
    void tileSpans(const StmtFeat &s,
                   const std::vector<int64_t> &tiles,
                   std::vector<int64_t> &spans) const;

    unsigned dims_;
    unsigned threads_;
    std::vector<StmtFeat> stmts_;
    std::vector<int64_t> tensorBytes_; ///< whole-tensor footprint cap
    std::vector<std::vector<int64_t>> tensorExtents_;
    double totalFlops_ = 0;
    double totalAccesses_ = 0;
};

} // namespace perfmodel
} // namespace polyfuse

#endif // POLYFUSE_PERFMODEL_MODEL_HH
