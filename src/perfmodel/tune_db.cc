#include "perfmodel/tune_db.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "pres/row_hash.hh"
#include "support/logging.hh"

namespace polyfuse {
namespace perfmodel {

namespace {

/** Format @p ms exactly as save() writes it; the checksum covers
 *  this spelling so text -> strtod -> text round trips verify. */
std::string
canonicalMs(double ms)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", ms);
    return std::string(buf);
}

/** Canonical spelling of a model coefficient (%.9g keeps tiny
 *  weights alive where %.6f would round them to zero). */
std::string
canonicalCoeff(double c)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.9g", c);
    return std::string(buf);
}

/**
 * A tiny recursive-descent reader for exactly the subset save()
 * emits (objects, arrays, strings without escapes beyond \" and \\,
 * numbers, and the known keys). Anything else fails the load -- the
 * store is ours to write, so unknown shapes mean corruption or a
 * foreign file, and refusing beats guessing.
 */
struct Reader
{
    const std::string &s;
    size_t pos = 0;

    explicit Reader(const std::string &text) : s(text) {}

    void
    ws()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    bool
    lit(char c)
    {
        ws();
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    string(std::string *out)
    {
        ws();
        if (pos >= s.size() || s[pos] != '"')
            return false;
        ++pos;
        out->clear();
        while (pos < s.size() && s[pos] != '"') {
            char c = s[pos++];
            if (c == '\\') {
                if (pos >= s.size())
                    return false;
                char e = s[pos++];
                if (e == '"' || e == '\\')
                    out->push_back(e);
                else
                    return false;
            } else {
                out->push_back(c);
            }
        }
        if (pos >= s.size())
            return false;
        ++pos; // closing quote
        return true;
    }

    bool
    number(double *out)
    {
        ws();
        char *end = nullptr;
        double v = std::strtod(s.c_str() + pos, &end);
        if (!end || end == s.c_str() + pos)
            return false;
        pos = size_t(end - s.c_str());
        *out = v;
        return true;
    }
};

bool
parseEntry(Reader &r, std::string *fp_hex, TuneEntry *entry,
           std::string *crc_hex)
{
    if (!r.lit('{'))
        return false;
    bool first = true;
    while (true) {
        r.ws();
        if (r.lit('}'))
            break;
        if (!first && !r.lit(','))
            return false;
        first = false;
        std::string key;
        if (!r.string(&key) || !r.lit(':'))
            return false;
        if (key == "fp") {
            if (!r.string(fp_hex))
                return false;
        } else if (key == "crc") {
            if (!r.string(crc_hex))
                return false;
        } else if (key == "strategy") {
            if (!r.string(&entry->strategy))
                return false;
        } else if (key == "tier") {
            if (!r.string(&entry->tier))
                return false;
        } else if (key == "tiles") {
            if (!r.lit('['))
                return false;
            entry->tiles.clear();
            if (!r.lit(']')) {
                do {
                    double v;
                    if (!r.number(&v))
                        return false;
                    entry->tiles.push_back(int64_t(v));
                } while (r.lit(','));
                if (!r.lit(']'))
                    return false;
            }
        } else if (key == "modeledMs") {
            if (!r.number(&entry->modeledMs))
                return false;
        } else if (key == "evaluated") {
            double v;
            if (!r.number(&v))
                return false;
            entry->evaluated = unsigned(v);
        } else if (key == "kind") {
            if (!r.string(&entry->kind))
                return false;
        } else {
            return false; // unknown key: not our file
        }
    }
    return !fp_hex->empty();
}

bool
parseModel(Reader &r, ModelFit *fit, std::string *crc_hex)
{
    if (!r.lit('{'))
        return false;
    bool first = true;
    while (true) {
        r.ws();
        if (r.lit('}'))
            break;
        if (!first && !r.lit(','))
            return false;
        first = false;
        std::string key;
        if (!r.string(&key) || !r.lit(':'))
            return false;
        double v;
        if (key == "cCompute") {
            if (!r.number(&fit->cCompute))
                return false;
        } else if (key == "cMem") {
            if (!r.number(&fit->cMem))
                return false;
        } else if (key == "cTraffic") {
            if (!r.number(&fit->cTraffic))
                return false;
        } else if (key == "cTile") {
            if (!r.number(&fit->cTile))
                return false;
        } else if (key == "samples") {
            if (!r.number(&v))
                return false;
            fit->samples = uint64_t(v);
        } else if (key == "crc") {
            if (!r.string(crc_hex))
                return false;
        } else {
            return false;
        }
    }
    return true;
}

} // namespace

uint64_t
recordChecksum(const std::string &fp_hex, const TuneEntry &entry)
{
    uint64_t h = pres::kFnvOffset;
    auto mixStr = [&h](const std::string &s) {
        h = pres::fnvMix(h, uint64_t(s.size()));
        for (char c : s) {
            h ^= uint8_t(c);
            h *= pres::kFnvPrime;
        }
    };
    mixStr(fp_hex);
    mixStr(entry.strategy);
    mixStr(entry.tier);
    h = pres::fnvMix(h, uint64_t(entry.tiles.size()));
    for (int64_t t : entry.tiles)
        h = pres::fnvMix(h, uint64_t(t));
    mixStr(canonicalMs(entry.modeledMs));
    h = pres::fnvMix(h, entry.evaluated);
    // "exact" records hash exactly as schema version 1 did (the
    // field did not exist), so legacy stores keep verifying.
    if (entry.kind != "exact")
        mixStr(entry.kind);
    return pres::hashFinalize(h);
}

uint64_t
modelChecksum(const ModelFit &fit)
{
    uint64_t h = pres::kFnvOffset;
    auto mixStr = [&h](const std::string &s) {
        h = pres::fnvMix(h, uint64_t(s.size()));
        for (char c : s) {
            h ^= uint8_t(c);
            h *= pres::kFnvPrime;
        }
    };
    mixStr(canonicalCoeff(fit.cCompute));
    mixStr(canonicalCoeff(fit.cMem));
    mixStr(canonicalCoeff(fit.cTraffic));
    mixStr(canonicalCoeff(fit.cTile));
    h = pres::fnvMix(h, fit.samples);
    return pres::hashFinalize(h);
}

std::string
checksumHex(uint64_t crc)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  (unsigned long long)crc);
    return std::string(buf);
}

TuneDb::TuneDb(std::string path) : path_(std::move(path))
{
    load();
}

bool
TuneDb::load()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    hasFit_ = false;
    lastLoadDropped_ = 0;
    std::ifstream in(path_);
    if (!in.is_open())
        return true; // missing file: an empty store
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();

    // The header must spell `{"version": 1` or `{"version": 2`
    // before anything else (save() always writes it first). A wrong
    // or missing version is a foreign file, not bit rot: refuse it
    // wholesale rather than salvaging records whose semantics we
    // cannot vouch for. Version 1 is the pre-model schema -- same
    // record format, no "model" section, no "kind" field -- and
    // loads cleanly.
    Reader r(text);
    {
        double v;
        std::string key;
        if (!r.lit('{') || !r.string(&key) || key != "version" ||
            !r.lit(':') || !r.number(&v) || (v != 1 && v != 2)) {
            warn("tune db " + path_ +
                 ": not a version-1/2 polyfuse store; starting "
                 "empty");
            return false;
        }
    }

    // From here on the file is ours, so damage means truncation or
    // bit rot. Salvage every record whose per-record checksum still
    // verifies; drop (and count) the rest. A structurally broken
    // record aborts its parse mid-stream, so resync by scanning for
    // the next record header instead of giving up on the tail.
    std::map<std::string, TuneEntry> parsed;
    bool structure_ok = false;
    bool model_dropped = false;
    std::string key;
    bool have_key = r.lit(',') && r.string(&key);
    if (have_key && key == "model") {
        // The optional calibration section. A damaged fit is
        // dropped on its own (guided search falls back to the
        // built-in calibration); the entries after it are still
        // salvaged.
        size_t model_start = r.pos;
        ModelFit mf;
        std::string crc;
        bool ok = r.lit(':') && parseModel(r, &mf, &crc) &&
                  crc == checksumHex(modelChecksum(mf));
        if (ok) {
            fit_ = mf;
            hasFit_ = true;
            have_key = r.lit(',') && r.string(&key);
        } else {
            model_dropped = true;
            have_key = false;
            size_t next = text.find("\"entries\"", model_start);
            if (next != std::string::npos) {
                r.pos = next;
                have_key = r.string(&key);
            }
        }
    }
    if (have_key) {
        if (key == "entries" && r.lit(':') && r.lit('[')) {
            if (r.lit(']')) {
                structure_ok = r.lit('}');
            } else {
                while (true) {
                    size_t start = r.pos;
                    std::string hex, crc;
                    TuneEntry entry;
                    pres::Fingerprint fp;
                    bool ok =
                        parseEntry(r, &hex, &entry, &crc) &&
                        pres::parseFingerprint(hex, &fp) &&
                        crc == checksumHex(recordChecksum(hex, entry));
                    if (ok) {
                        parsed[hex] = std::move(entry);
                        if (r.lit(','))
                            continue;
                        structure_ok = r.lit(']') && r.lit('}');
                        break;
                    }
                    ++lastLoadDropped_;
                    // Resync: the next record opens with the "fp"
                    // key save() always emits first. `start` may sit
                    // on whitespace before the failed record's own
                    // header, so locate that header first and search
                    // strictly past it -- otherwise the same damaged
                    // record would be re-parsed and double-counted.
                    size_t here = text.find("{\"fp\"", start);
                    size_t next =
                        here == std::string::npos
                            ? std::string::npos
                            : text.find("{\"fp\"", here + 1);
                    if (next == std::string::npos)
                        break;
                    r.pos = next;
                }
            }
        }
    }

    entries_ = std::move(parsed);
    if (lastLoadDropped_ == 0 && structure_ok && !model_dropped)
        return true;
    warn("tune db " + path_ + ": dropped " +
         std::to_string(lastLoadDropped_) +
         " corrupt record(s)" +
         (model_dropped ? " and the model calibration" : "") +
         ", kept " + std::to_string(entries_.size()) +
         "; next save() rewrites a clean store");
    return false;
}

bool
TuneDb::save() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "{\"version\": 2, ";
    if (hasFit_) {
        out += "\"model\": {";
        out += "\"cCompute\": " + canonicalCoeff(fit_.cCompute);
        out += ", \"cMem\": " + canonicalCoeff(fit_.cMem);
        out += ", \"cTraffic\": " + canonicalCoeff(fit_.cTraffic);
        out += ", \"cTile\": " + canonicalCoeff(fit_.cTile);
        out += ", \"samples\": " + std::to_string(fit_.samples);
        out += ", \"crc\": \"" + checksumHex(modelChecksum(fit_)) +
               "\"";
        out += "}, ";
    }
    out += "\"entries\": [";
    char buf[64];
    bool first = true;
    for (const auto &kv : entries_) {
        if (!first)
            out += ", ";
        first = false;
        const TuneEntry &e = kv.second;
        out += "{\"fp\": \"" + kv.first + "\"";
        out += ", \"strategy\": \"" + e.strategy + "\"";
        out += ", \"tiles\": [";
        for (size_t i = 0; i < e.tiles.size(); ++i) {
            if (i)
                out += ", ";
            out += std::to_string(e.tiles[i]);
        }
        out += "]";
        out += ", \"tier\": \"" + e.tier + "\"";
        std::snprintf(buf, sizeof(buf), "%.6f", e.modeledMs);
        out += ", \"modeledMs\": " + std::string(buf);
        out += ", \"evaluated\": " + std::to_string(e.evaluated);
        // Omitted for "exact": those records (and their checksums)
        // stay byte-compatible with schema version 1.
        if (e.kind != "exact")
            out += ", \"kind\": \"" + e.kind + "\"";
        out += ", \"crc\": \"" +
               checksumHex(recordChecksum(kv.first, e)) + "\"";
        out += "}";
    }
    out += "]}\n";

    std::string tmp = path_ + ".tmp";
    {
        std::ofstream f(tmp, std::ios::trunc);
        if (!f.is_open())
            return false;
        f << out;
        if (!f.good())
            return false;
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
TuneDb::find(const pres::Fingerprint &fp, TuneEntry *out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(fp.hex());
    if (it == entries_.end())
        return false;
    *out = it->second;
    return true;
}

void
TuneDb::put(const pres::Fingerprint &fp, const TuneEntry &entry)
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_[fp.hex()] = entry;
}

size_t
TuneDb::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

size_t
TuneDb::lastLoadDropped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return lastLoadDropped_;
}

bool
TuneDb::modelFit(ModelFit *out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!hasFit_)
        return false;
    *out = fit_;
    return true;
}

void
TuneDb::setModelFit(const ModelFit &fit)
{
    std::lock_guard<std::mutex> lock(mu_);
    fit_ = fit;
    hasFit_ = true;
}

} // namespace perfmodel
} // namespace polyfuse
