#include "perfmodel/tune_db.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace polyfuse {
namespace perfmodel {

namespace {

/**
 * A tiny recursive-descent reader for exactly the subset save()
 * emits (objects, arrays, strings without escapes beyond \" and \\,
 * numbers, and the known keys). Anything else fails the load -- the
 * store is ours to write, so unknown shapes mean corruption or a
 * foreign file, and refusing beats guessing.
 */
struct Reader
{
    const std::string &s;
    size_t pos = 0;

    explicit Reader(const std::string &text) : s(text) {}

    void
    ws()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    bool
    lit(char c)
    {
        ws();
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    string(std::string *out)
    {
        ws();
        if (pos >= s.size() || s[pos] != '"')
            return false;
        ++pos;
        out->clear();
        while (pos < s.size() && s[pos] != '"') {
            char c = s[pos++];
            if (c == '\\') {
                if (pos >= s.size())
                    return false;
                char e = s[pos++];
                if (e == '"' || e == '\\')
                    out->push_back(e);
                else
                    return false;
            } else {
                out->push_back(c);
            }
        }
        if (pos >= s.size())
            return false;
        ++pos; // closing quote
        return true;
    }

    bool
    number(double *out)
    {
        ws();
        char *end = nullptr;
        double v = std::strtod(s.c_str() + pos, &end);
        if (!end || end == s.c_str() + pos)
            return false;
        pos = size_t(end - s.c_str());
        *out = v;
        return true;
    }
};

bool
parseEntry(Reader &r, std::string *fp_hex, TuneEntry *entry)
{
    if (!r.lit('{'))
        return false;
    bool first = true;
    while (true) {
        r.ws();
        if (r.lit('}'))
            break;
        if (!first && !r.lit(','))
            return false;
        first = false;
        std::string key;
        if (!r.string(&key) || !r.lit(':'))
            return false;
        if (key == "fp") {
            if (!r.string(fp_hex))
                return false;
        } else if (key == "strategy") {
            if (!r.string(&entry->strategy))
                return false;
        } else if (key == "tier") {
            if (!r.string(&entry->tier))
                return false;
        } else if (key == "tiles") {
            if (!r.lit('['))
                return false;
            entry->tiles.clear();
            if (!r.lit(']')) {
                do {
                    double v;
                    if (!r.number(&v))
                        return false;
                    entry->tiles.push_back(int64_t(v));
                } while (r.lit(','));
                if (!r.lit(']'))
                    return false;
            }
        } else if (key == "modeledMs") {
            if (!r.number(&entry->modeledMs))
                return false;
        } else if (key == "evaluated") {
            double v;
            if (!r.number(&v))
                return false;
            entry->evaluated = unsigned(v);
        } else {
            return false; // unknown key: not our file
        }
    }
    return !fp_hex->empty();
}

} // namespace

TuneDb::TuneDb(std::string path) : path_(std::move(path))
{
    load();
}

bool
TuneDb::load()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    std::ifstream in(path_);
    if (!in.is_open())
        return true; // missing file: an empty store
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string text = buf.str();

    Reader r(text);
    if (!r.lit('{'))
        return false;
    bool saw_version = false;
    bool first = true;
    std::map<std::string, TuneEntry> parsed;
    while (true) {
        r.ws();
        if (r.lit('}'))
            break;
        if (!first && !r.lit(','))
            return false;
        first = false;
        std::string key;
        if (!r.string(&key) || !r.lit(':'))
            return false;
        if (key == "version") {
            double v;
            if (!r.number(&v) || v != 1)
                return false;
            saw_version = true;
        } else if (key == "entries") {
            if (!r.lit('['))
                return false;
            if (!r.lit(']')) {
                do {
                    std::string hex;
                    TuneEntry entry;
                    pres::Fingerprint fp;
                    if (!parseEntry(r, &hex, &entry) ||
                        !pres::parseFingerprint(hex, &fp))
                        return false;
                    parsed[hex] = std::move(entry);
                } while (r.lit(','));
                if (!r.lit(']'))
                    return false;
            }
        } else {
            return false;
        }
    }
    if (!saw_version)
        return false;
    entries_ = std::move(parsed);
    return true;
}

bool
TuneDb::save() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "{\"version\": 1, \"entries\": [";
    char buf[64];
    bool first = true;
    for (const auto &kv : entries_) {
        if (!first)
            out += ", ";
        first = false;
        const TuneEntry &e = kv.second;
        out += "{\"fp\": \"" + kv.first + "\"";
        out += ", \"strategy\": \"" + e.strategy + "\"";
        out += ", \"tiles\": [";
        for (size_t i = 0; i < e.tiles.size(); ++i) {
            if (i)
                out += ", ";
            out += std::to_string(e.tiles[i]);
        }
        out += "]";
        out += ", \"tier\": \"" + e.tier + "\"";
        std::snprintf(buf, sizeof(buf), "%.6f", e.modeledMs);
        out += ", \"modeledMs\": " + std::string(buf);
        out += ", \"evaluated\": " + std::to_string(e.evaluated);
        out += "}";
    }
    out += "]}\n";

    std::string tmp = path_ + ".tmp";
    {
        std::ofstream f(tmp, std::ios::trunc);
        if (!f.is_open())
            return false;
        f << out;
        if (!f.good())
            return false;
    }
    if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
TuneDb::find(const pres::Fingerprint &fp, TuneEntry *out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(fp.hex());
    if (it == entries_.end())
        return false;
    *out = it->second;
    return true;
}

void
TuneDb::put(const pres::Fingerprint &fp, const TuneEntry &entry)
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_[fp.hex()] = entry;
}

size_t
TuneDb::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

} // namespace perfmodel
} // namespace polyfuse
