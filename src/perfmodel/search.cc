#include "perfmodel/search.hh"

#include <algorithm>
#include <exception>
#include <limits>
#include <mutex>
#include <numeric>

#include "codegen/generate.hh"
#include "core/compose.hh"
#include "exec/bytecode.hh"
#include "memsim/cache.hh"
#include "perfmodel/parallel.hh"
#include "pres/op_cache.hh"
#include "support/thread_pool.hh"
#include "support/timer.hh"

namespace polyfuse {
namespace perfmodel {

namespace {

/** Largest tensor extent: candidates beyond it are pointless. */
int64_t
maxExtent(const ir::Program &p)
{
    int64_t best = 1;
    for (size_t t = 0; t < p.tensors().size(); ++t)
        for (unsigned d = 0; d < p.tensor(t).rank; ++d)
            best = std::max(best, p.tensorExtent(t, d));
    return best;
}

/**
 * Shared evaluation engine of both drivers. Sequential runs keep
 * one PresCtx + OpCache alive across every run() call (all rounds
 * of a guided search included), so repeated dependence compositions
 * are memoized across the whole search; parallel runs split each
 * batch into contiguous chunks, one private context per chunk, and
 * aggregate the per-worker fm::Counters -- sequential and parallel
 * searches report comparable cache stats (the jobs > 1 path used to
 * silently report zeros).
 *
 * Cold/warm wall times are tracked per context (the first
 * evaluation in a context pays the cache-cold cost) to feed the
 * savedMsEstimate heuristic.
 */
class BatchEvaluator
{
  public:
    explicit BatchEvaluator(const SearchInput &in)
        : in_(in),
          jobs_(in.config.jobs == 0 ? ThreadPool::defaultThreads()
                                    : in.config.jobs)
    {
        shared_.cache = &sharedCache_;
    }

    /** Evaluate in_.candidates[indices[k]] into out[k]. Order of
     *  results is the order of @p indices regardless of jobs. */
    void
    run(const std::vector<size_t> &indices, std::vector<double> &out)
    {
        out.assign(indices.size(), 0.0);
        if (indices.empty())
            return;
        if (jobs_ <= 1 || indices.size() <= 1) {
            pres::fm::ScopedCtx scope(shared_);
            for (size_t k = 0; k < indices.size(); ++k) {
                Timer t;
                out[k] = evaluateCandidate(
                    in_.program, in_.graph,
                    in_.candidates[indices[k]], in_.init,
                    in_.config.threads, in_.config.targetParallelism);
                double ms = t.milliseconds();
                if (!sawCold_) {
                    sawCold_ = true;
                    coldMs_ += ms;
                    ++coldN_;
                } else {
                    warmMs_ += ms;
                    ++warmN_;
                }
            }
            return;
        }

        // Pool jobs must not throw; hold the first failure and
        // rethrow on the caller thread (matching the sequential
        // error behaviour).
        std::exception_ptr failure;
        std::mutex mu;
        size_t chunk = (indices.size() + jobs_ - 1) / jobs_;
        {
            ThreadPool pool(jobs_);
            for (size_t c0 = 0; c0 < indices.size(); c0 += chunk) {
                size_t c1 = std::min(c0 + chunk, indices.size());
                pool.submit([&, c0, c1] {
                    pres::fm::PresCtx ctx;
                    pres::OpCache cache;
                    ctx.cache = &cache;
                    pres::fm::ScopedCtx scope(ctx);
                    double cold = 0, warm = 0;
                    unsigned coldn = 0, warmn = 0;
                    try {
                        for (size_t k = c0; k < c1; ++k) {
                            Timer t;
                            out[k] = evaluateCandidate(
                                in_.program, in_.graph,
                                in_.candidates[indices[k]], in_.init,
                                in_.config.threads,
                                in_.config.targetParallelism);
                            double ms = t.milliseconds();
                            if (k == c0) {
                                cold += ms;
                                ++coldn;
                            } else {
                                warm += ms;
                                ++warmn;
                            }
                        }
                    } catch (...) {
                        std::lock_guard<std::mutex> lock(mu);
                        if (!failure)
                            failure = std::current_exception();
                    }
                    std::lock_guard<std::mutex> lock(mu);
                    pooled_ += ctx.counters;
                    coldMs_ += cold;
                    coldN_ += coldn;
                    warmMs_ += warm;
                    warmN_ += warmn;
                });
            }
            pool.wait();
        }
        if (failure)
            std::rethrow_exception(failure);
    }

    /** Fold the evaluation stats into @p o. */
    void
    finish(SearchOutcome &o)
    {
        o.counters = pooled_;
        o.counters += shared_.counters;
        if (o.counters.cacheHits > 0 && coldN_ > 0 && warmN_ > 0) {
            double cold_avg = coldMs_ / coldN_;
            double warm_avg = warmMs_ / warmN_;
            if (cold_avg > warm_avg)
                o.savedMsEstimate = (cold_avg - warm_avg) * warmN_;
        }
    }

  private:
    const SearchInput &in_;
    unsigned jobs_;
    pres::fm::PresCtx shared_; ///< sequential path, search-lifetime
    pres::OpCache sharedCache_;
    pres::fm::Counters pooled_; ///< parallel workers, aggregated
    bool sawCold_ = false;
    double coldMs_ = 0, warmMs_ = 0;
    unsigned coldN_ = 0, warmN_ = 0;
};

} // namespace

const char *
searchModeName(SearchMode mode)
{
    return mode == SearchMode::Guided ? "guided" : "exhaustive";
}

bool
parseSearchMode(const std::string &text, SearchMode *out)
{
    if (text == "exhaustive") {
        *out = SearchMode::Exhaustive;
        return true;
    }
    if (text == "guided") {
        *out = SearchMode::Guided;
        return true;
    }
    return false;
}

memsim::CacheConfig
tuneL1Config()
{
    return memsim::CacheConfig{16 * 1024, 64, 8, "L1"};
}

memsim::CacheConfig
tuneL2Config()
{
    return memsim::CacheConfig{256 * 1024, 64, 16, "L2"};
}

memsim::MemoryHierarchy
tuningHierarchy(const ir::Program &p)
{
    memsim::MemoryHierarchy mem(tuneL1Config(), tuneL2Config());
    for (size_t t = 0; t < p.tensors().size(); ++t) {
        mem.addSpace(int(t), p.tensorSize(int(t)));
        mem.addSpace(int(p.tensors().size() + t),
                     p.tensorSize(int(t)));
    }
    return mem;
}

double
evaluateCandidate(const ir::Program &p,
                  const deps::DependenceGraph &g,
                  const std::vector<int64_t> &tiles,
                  const std::function<void(exec::Buffers &)> &init,
                  unsigned threads, unsigned target_parallelism)
{
    core::ComposeOptions copts;
    copts.tileSizes = tiles;
    copts.targetParallelism = target_parallelism;
    auto r = core::compose(p, g, copts);
    auto ast = codegen::generateAst(r.tree);

    exec::Buffers buf(p);
    init(buf);
    memsim::MemoryHierarchy mem = tuningHierarchy(p);
    // The bytecode tier with the batched hierarchy sink: identical
    // trace sequence to the interpreter (differentially tested),
    // at a fraction of the per-access cost.
    auto kernel = exec::BytecodeKernel::compile(p, ast);
    memsim::HierarchySink sink(mem);
    auto stats = kernel.run(buf, sink);
    return modeledCpuMs(stats, mem.stats(), threads);
}

std::vector<std::vector<int64_t>>
enumerateTileCandidates(const ir::Program &program,
                        const std::vector<int64_t> &ladder,
                        unsigned dims)
{
    int64_t limit = maxExtent(program);
    std::vector<std::vector<int64_t>> out;
    std::vector<int64_t> current;
    // Recursive ladder walk, identical order to the original
    // autotuner (outermost dimension varies slowest).
    std::function<void()> rec = [&] {
        if (current.size() == dims) {
            out.push_back(current);
            return;
        }
        for (int64_t c : ladder) {
            if (c > limit)
                continue;
            current.push_back(c);
            rec();
            current.pop_back();
        }
    };
    rec();
    return out;
}

SearchOutcome
searchExhaustive(const SearchInput &in)
{
    SearchOutcome o;
    std::vector<size_t> all(in.candidates.size());
    std::iota(all.begin(), all.end(), size_t(0));
    std::vector<double> modeled;
    BatchEvaluator ev(in);
    ev.run(all, modeled);
    ev.finish(o);
    o.measured = unsigned(in.candidates.size());
    for (size_t i = 0; i < in.candidates.size(); ++i) {
        if (o.tileSizes.empty() || modeled[i] < o.modeledMs) {
            o.modeledMs = modeled[i];
            o.tileSizes = in.candidates[i];
        }
    }
    return o;
}

SearchOutcome
searchGuided(const SearchInput &in, const ModelFit &fit)
{
    SearchOutcome o;
    const auto &cands = in.candidates;
    const size_t total = cands.size();
    if (total == 0)
        return o;

    Timer rank_timer;
    CostModel model(in.program, in.config.dims, in.config.threads);
    int64_t widest = 1;
    for (const auto &c : cands)
        if (!c.empty())
            widest = std::max(widest, c.back());

    // Model score with dimension-matching bonuses: extent-divisor
    // tiles (no ragged boundary tiles) and contiguous-innermost
    // tiles rank ahead of near-equal-scored rivals.
    std::vector<double> score(total);
    for (size_t i = 0; i < total; ++i) {
        double s = model.score(cands[i], fit);
        if (model.dividesExtents(cands[i]))
            s *= 0.97;
        if (model.innermostContiguous(cands[i], widest))
            s *= 0.95;
        score[i] = s;
    }
    std::vector<size_t> order(total);
    std::iota(order.begin(), order.end(), size_t(0));
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) {
                  if (score[a] != score[b])
                      return score[a] < score[b];
                  return a < b; // enumeration order breaks ties
              });

    // A near-miss seed jumps the ranking: measure it first.
    bool seeded = false;
    if (!in.seedTiles.empty()) {
        for (size_t i = 0; i < total; ++i) {
            if (cands[i] == in.seedTiles) {
                auto it =
                    std::find(order.begin(), order.end(), i);
                order.erase(it);
                order.insert(order.begin(), i);
                seeded = true;
                break;
            }
        }
    }
    o.modelRankMs = rank_timer.milliseconds();

    size_t k = in.config.topK
                   ? std::min<size_t>(in.config.topK, total)
                   : std::max<size_t>(3, (total + 4) / 5);
    // A seed is a trusted prior: spend half the budget confirming
    // it rather than re-exploring from scratch.
    if (seeded)
        k = std::max<size_t>(2, k / 2);
    k = std::min(k, total);

    // Successive halving over the shortlist: measure the top half,
    // then ever-smaller slices, stopping as soon as a round fails
    // to improve the best modeled time by more than 1%. Reduction
    // runs in ranking order after each (possibly parallel) round,
    // so the winner is jobs-invariant.
    BatchEvaluator ev(in);
    double best_ms = std::numeric_limits<double>::infinity();
    size_t best_idx = 0;
    bool have_best = false;
    size_t offset = 0;
    size_t round_size = (k + 1) / 2;
    while (offset < k) {
        size_t take = std::min(round_size, k - offset);
        std::vector<size_t> round(order.begin() + offset,
                                  order.begin() + offset + take);
        std::vector<double> ms;
        ev.run(round, ms);
        double prev_best =
            have_best ? best_ms
                      : std::numeric_limits<double>::infinity();
        for (size_t j = 0; j < round.size(); ++j) {
            o.samples.push_back(
                ModelSample{model.terms(cands[round[j]]), ms[j]});
            if (!have_best || ms[j] < best_ms) {
                best_ms = ms[j];
                best_idx = round[j];
                have_best = true;
            }
        }
        offset += take;
        if (prev_best !=
                std::numeric_limits<double>::infinity() &&
            best_ms > prev_best * 0.99)
            break;
        round_size = std::max<size_t>(1, (round_size + 1) / 2);
    }
    ev.finish(o);
    o.measured = unsigned(offset);
    o.tileSizes = cands[best_idx];
    o.modeledMs = best_ms;
    return o;
}

} // namespace perfmodel
} // namespace polyfuse
