#include "perfmodel/model.hh"

#include <algorithm>
#include <cmath>

#include "perfmodel/parallel.hh"

namespace polyfuse {
namespace perfmodel {

namespace {

/** Capacities of the tuning hierarchy (search.cc builds the memsim
 *  levels from the same values, so model and measurement agree). */
constexpr int64_t kL1Bytes = 16 * 1024;
constexpr int64_t kL2Bytes = 256 * 1024;
constexpr int kElemBytes = 8; ///< buffers are double

/**
 * Effective access latency for a per-tile footprint of @p bytes:
 * piecewise log-linear between the L1 / L2 / DRAM latencies of the
 * CPU model. Smooth (not a step) so candidates straddling a
 * capacity boundary rank sensibly instead of cliff-jumping.
 */
double
latencyCycles(double bytes, const CpuModelConfig &cfg)
{
    if (bytes <= kL1Bytes)
        return cfg.l1LatCycles;
    double logF = std::log2(bytes);
    if (bytes <= kL2Bytes) {
        double t = (logF - std::log2(double(kL1Bytes))) /
                   (std::log2(double(kL2Bytes)) -
                    std::log2(double(kL1Bytes)));
        return cfg.l1LatCycles +
               t * (cfg.l2LatCycles - cfg.l1LatCycles);
    }
    // An L2-spilling footprint degrades towards DRAM latency over
    // the next three doublings (fully DRAM-bound at 8x L2).
    double hi = std::log2(double(kL2Bytes)) + 3;
    if (logF >= hi)
        return cfg.dramLatCycles;
    double t = (logF - std::log2(double(kL2Bytes))) /
               (hi - std::log2(double(kL2Bytes)));
    return cfg.l2LatCycles + t * (cfg.dramLatCycles - cfg.l2LatCycles);
}

/** Solve the n x n system a x = b by Gaussian elimination with
 *  partial pivoting. @return false when (near-)singular. */
bool
solveLinear(std::vector<std::vector<double>> a,
            std::vector<double> b, std::vector<double> &x)
{
    const size_t n = b.size();
    for (size_t col = 0; col < n; ++col) {
        size_t pivot = col;
        for (size_t r = col + 1; r < n; ++r)
            if (std::fabs(a[r][col]) > std::fabs(a[pivot][col]))
                pivot = r;
        if (std::fabs(a[pivot][col]) < 1e-12)
            return false;
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        for (size_t r = col + 1; r < n; ++r) {
            double f = a[r][col] / a[col][col];
            for (size_t c = col; c < n; ++c)
                a[r][c] -= f * a[col][c];
            b[r] -= f * b[col];
        }
    }
    x.assign(n, 0.0);
    for (size_t i = n; i-- > 0;) {
        double acc = b[i];
        for (size_t c = i + 1; c < n; ++c)
            acc -= a[i][c] * x[c];
        x[i] = acc / a[i][i];
    }
    return true;
}

} // namespace

ModelFit
defaultModelFit()
{
    // The committed calibration: a registry-wide least-squares fit
    // (bench_autotune --fit over every workload x the default
    // candidate ladder, measured through the same compose + codegen
    // + bytecode + memsim path the tuner minimizes). Re-derive with
    //   ./build/bench/bench_autotune --fit
    // after changing the cost model, the tuning hierarchy or the
    // CPU model, and paste the printed values here.
    ModelFit fit;
    fit.cCompute = 0.1920;
    fit.cMem = 0.0071;
    fit.cTraffic = 0.0000;
    fit.cTile = 0.0000;
    fit.samples = 0; // the built-in fit; db fits carry real counts
    return fit;
}

double
predictMs(const ModelTerms &t, const ModelFit &fit)
{
    return fit.cCompute * t.compute + fit.cMem * t.mem +
           fit.cTraffic * t.traffic + fit.cTile * t.tile;
}

ModelFit
fitModel(const std::vector<ModelSample> &samples,
         const ModelFit &prior)
{
    const size_t kTerms = 4;
    if (samples.size() < kTerms)
        return prior;

    auto termVec = [](const ModelTerms &t) {
        return std::vector<double>{t.compute, t.mem, t.traffic,
                                   t.tile};
    };

    // Non-negative least squares by clamp-and-refit: solve the
    // normal equations over the active columns, zero any negative
    // weight, repeat. Terminates (the active set only shrinks).
    //
    // Rows are scaled by 1/measuredMs: the model exists to *rank*
    // candidates, so each sample should contribute its relative
    // error. Unweighted, a 5-second matmul sweep outvotes a
    // 5-microsecond stencil a million to one and the fit happily
    // inverts the small workload's ordering.
    std::vector<bool> active(kTerms, true);
    std::vector<double> weights(kTerms, 0.0);
    for (size_t round = 0; round <= kTerms; ++round) {
        std::vector<size_t> cols;
        for (size_t c = 0; c < kTerms; ++c)
            if (active[c])
                cols.push_back(c);
        if (cols.empty())
            return prior;
        std::vector<std::vector<double>> ata(
            cols.size(), std::vector<double>(cols.size(), 0.0));
        std::vector<double> atb(cols.size(), 0.0);
        for (const ModelSample &s : samples) {
            auto t = termVec(s.terms);
            double w = 1.0 / std::max(s.measuredMs, 1e-9);
            for (auto &v : t)
                v *= w;
            for (size_t i = 0; i < cols.size(); ++i) {
                for (size_t j = 0; j < cols.size(); ++j)
                    ata[i][j] += t[cols[i]] * t[cols[j]];
                atb[i] += t[cols[i]] * (s.measuredMs * w);
            }
        }
        std::vector<double> x;
        if (!solveLinear(ata, atb, x))
            return prior;
        bool clamped = false;
        std::fill(weights.begin(), weights.end(), 0.0);
        for (size_t i = 0; i < cols.size(); ++i) {
            if (x[i] < 0) {
                active[cols[i]] = false;
                clamped = true;
            } else {
                weights[cols[i]] = x[i];
            }
        }
        if (!clamped)
            break;
    }

    ModelFit fitted;
    fitted.cCompute = weights[0];
    fitted.cMem = weights[1];
    fitted.cTraffic = weights[2];
    fitted.cTile = weights[3];
    fitted.samples = uint64_t(samples.size());
    if (prior.samples == 0)
        return fitted;

    // Blend with the prior by sample count so one small search
    // cannot yank an established calibration around.
    double wp = double(prior.samples) /
                double(prior.samples + fitted.samples);
    ModelFit blended;
    blended.cCompute =
        wp * prior.cCompute + (1 - wp) * fitted.cCompute;
    blended.cMem = wp * prior.cMem + (1 - wp) * fitted.cMem;
    blended.cTraffic =
        wp * prior.cTraffic + (1 - wp) * fitted.cTraffic;
    blended.cTile = wp * prior.cTile + (1 - wp) * fitted.cTile;
    // Cap the count so the blend keeps adapting instead of freezing.
    blended.samples =
        std::min<uint64_t>(prior.samples + fitted.samples, 4096);
    return blended;
}

CostModel::CostModel(const ir::Program &program, unsigned dims,
                     unsigned threads)
    : dims_(dims), threads_(threads == 0 ? 1 : threads)
{
    const auto &params = program.paramValues();
    tensorBytes_.resize(program.tensors().size());
    tensorExtents_.resize(program.tensors().size());
    for (size_t t = 0; t < program.tensors().size(); ++t) {
        tensorBytes_[t] = program.tensorSize(t) * kElemBytes;
        const ir::TensorInfo &info = program.tensor(t);
        for (unsigned d = 0; d < info.rank; ++d)
            tensorExtents_[t].push_back(
                std::max<int64_t>(1, program.tensorExtent(t, d)));
    }

    for (const ir::Statement &s : program.statements()) {
        StmtFeat f;
        unsigned nd = s.numDims();
        f.instances = 1;
        for (unsigned j = 0; j < nd; ++j) {
            int64_t lo, hi;
            int64_t extent = 1;
            if (s.domain().dimBounds(j, params, lo, hi) && hi >= lo)
                extent = hi - lo + 1;
            f.extents.push_back(extent);
            f.instances *= double(extent);
        }
        f.flops = f.instances * s.opsPerInstance();
        f.accessCount = unsigned(s.accesses().size());
        f.liveOut = s.writeIndex() >= 0 &&
                    program.tensorLiveOut(s.writeAccess().tensor);
        for (const ir::Access &a : s.accesses()) {
            AccessFeat af;
            af.tensor = a.tensor;
            if (a.hasExprs) {
                for (const auto &row : a.indexExprs) {
                    // Rows span [stmt dims..., params..., 1]; only
                    // the statement-dim coefficients stretch the
                    // per-tile footprint.
                    std::vector<int64_t> abs_row;
                    for (unsigned j = 0; j < nd && j < row.size();
                         ++j)
                        abs_row.push_back(row[j] < 0 ? -row[j]
                                                     : row[j]);
                    af.absCoeffs.push_back(std::move(abs_row));
                }
            }
            // !hasExprs leaves absCoeffs empty: terms() falls back
            // to the whole-tensor footprint for that access.
            f.accesses.push_back(std::move(af));
        }
        totalFlops_ += f.flops;
        totalAccesses_ += f.instances * f.accessCount;
        stmts_.push_back(std::move(f));
    }
}

void
CostModel::tileSpans(const StmtFeat &s,
                     const std::vector<int64_t> &tiles,
                     std::vector<int64_t> &spans) const
{
    spans.clear();
    for (size_t j = 0; j < s.extents.size(); ++j) {
        if (j < dims_ && j < tiles.size())
            spans.push_back(
                std::min<int64_t>(tiles[j], s.extents[j]));
        else if (j < dims_ && !tiles.empty())
            spans.push_back(
                std::min<int64_t>(tiles.back(), s.extents[j]));
        else
            spans.push_back(s.extents[j]);
    }
}

ModelTerms
CostModel::terms(const std::vector<int64_t> &tiles) const
{
    const CpuModelConfig cfg;
    ModelTerms t;
    t.compute = totalFlops_ / cfg.opsPerCycle / (cfg.ghz * 1e6);

    // Per-tile footprint per tensor: the max over all accesses of
    // the |coeff|-weighted span box (eq. (4)/(5) on the bounding
    // box), capped at the whole tensor. Tensors shared by several
    // fused statements are counted once (the paper's point: fused
    // intermediates live tile-locally).
    std::vector<double> foot(tensorBytes_.size(), 0.0);
    double tile_count = 1;
    std::vector<int64_t> spans;
    for (const StmtFeat &s : stmts_) {
        tileSpans(s, tiles, spans);
        if (s.liveOut) {
            double st_tiles = 1;
            unsigned tiled =
                std::min<unsigned>(dims_, unsigned(spans.size()));
            for (unsigned j = 0; j < tiled; ++j)
                st_tiles *= std::ceil(double(s.extents[j]) /
                                      double(spans[j]));
            tile_count = std::max(tile_count, st_tiles);
        }
        for (const AccessFeat &a : s.accesses) {
            if (a.tensor < 0)
                continue;
            double fe;
            if (a.absCoeffs.empty() &&
                !tensorExtents_[a.tensor].empty()) {
                fe = double(tensorBytes_[a.tensor]) / kElemBytes;
            } else {
                fe = 1;
                for (size_t d = 0; d < a.absCoeffs.size(); ++d) {
                    double span = 1;
                    for (size_t j = 0; j < a.absCoeffs[d].size();
                         ++j)
                        span += double(a.absCoeffs[d][j]) *
                                double(spans[j] - 1);
                    if (d < tensorExtents_[a.tensor].size())
                        span = std::min(
                            span,
                            double(tensorExtents_[a.tensor][d]));
                    fe *= span;
                }
            }
            foot[a.tensor] = std::max(foot[a.tensor], fe);
        }
    }
    double foot_bytes = 0;
    for (double fe : foot)
        foot_bytes += fe * kElemBytes;

    t.mem = totalAccesses_ * latencyCycles(foot_bytes, cfg) /
            cfg.mlp / (cfg.ghz * 1e6);
    t.traffic = tile_count * foot_bytes / (cfg.dramGBs * 1e6);

    // Loop overhead (~0.1 us per tile) plus a parallel-grain
    // penalty: fewer tiles than objective threads leaves cores
    // idle, so the compute term is stretched by the shortfall.
    t.tile = tile_count * 1e-4;
    if (tile_count < double(threads_))
        t.tile += t.compute *
                  (double(threads_) / std::max(tile_count, 1.0) -
                   1.0);
    return t;
}

double
CostModel::score(const std::vector<int64_t> &tiles,
                 const ModelFit &fit) const
{
    return predictMs(terms(tiles), fit);
}

bool
CostModel::dividesExtents(const std::vector<int64_t> &tiles) const
{
    bool saw_live_out = false;
    std::vector<int64_t> spans;
    for (const StmtFeat &s : stmts_) {
        if (!s.liveOut)
            continue;
        saw_live_out = true;
        tileSpans(s, tiles, spans);
        unsigned tiled =
            std::min<unsigned>(dims_, unsigned(spans.size()));
        for (unsigned j = 0; j < tiled; ++j)
            if (spans[j] <= 0 || s.extents[j] % spans[j] != 0)
                return false;
    }
    return saw_live_out;
}

bool
CostModel::innermostContiguous(const std::vector<int64_t> &tiles,
                               int64_t widest_candidate) const
{
    bool saw_live_out = false;
    std::vector<int64_t> spans;
    for (const StmtFeat &s : stmts_) {
        if (!s.liveOut)
            continue;
        saw_live_out = true;
        tileSpans(s, tiles, spans);
        unsigned tiled =
            std::min<unsigned>(dims_, unsigned(spans.size()));
        if (tiled == 0)
            continue;
        unsigned j = tiled - 1;
        bool full = spans[j] >= s.extents[j];
        bool widest = j < tiles.size()
                          ? tiles[j] >= widest_candidate
                          : false;
        if (!full && !widest)
            return false;
    }
    return saw_live_out;
}

} // namespace perfmodel
} // namespace polyfuse
