/**
 * @file
 * The persistent, fingerprint-keyed tuning store: autotune results
 * survive the process, so repeated and batch runs warm-start from
 * the stored best (strategy, tiles, tier) instead of re-enumerating
 * the candidate ladder (the warm-start-over-re-search idea of
 * Acharya & Bondhugula's fast-permutation work).
 *
 * The on-disk format is one JSON object (schema version 2):
 *
 *   {"version": 2, "model": {"cCompute": ..., "cMem": ...,
 *      "cTraffic": ..., "cTile": ..., "samples": 40,
 *      "crc": "<16 hex digits>"}, "entries": [
 *     {"fp": "<32 hex digits>", "strategy": "ours",
 *      "tiles": [64, 128], "tier": "bytecode",
 *      "modeledMs": 1.234, "evaluated": 49,
 *      "kind": "shape", "crc": "<16 hex digits>"}, ...]}
 *
 * Version 2 adds two optional pieces on top of version 1, both with
 * backward-compatible load (a version-1 file reads cleanly):
 *
 *   - "model": the calibrated cost-model fit (perfmodel/model.hh)
 *     behind guided search, carrying its own checksum; a corrupt
 *     fit is dropped (back to the built-in calibration) without
 *     touching the entries.
 *   - per-entry "kind": "exact" (the default, omitted on disk, so
 *     exact records keep their version-1 checksum) or "shape" --
 *     the extent-blind near-miss records keyed by
 *     ir::mixProgramShape that seed guided candidate order.
 *
 * Each record carries its own checksum (FNV-1a over a canonical
 * serialization of the record, pres/row_hash.hh mixing). A store is
 * long-lived mutable state on disk, so load() assumes bit rot
 * happens: records whose checksum fails -- byte flips, hand edits,
 * truncated tails -- are dropped with a warning while every
 * verifying record is salvaged, and the next save() rewrites a
 * clean file. Only a wrong/missing version (a foreign file, not our
 * damage) rejects the whole store.
 *
 * Keys are pres::Fingerprint::hex() spellings of whatever the caller
 * fingerprinted -- autotuneTileSizes keys on the program structure
 * plus the search configuration (see tuningKey), so a changed
 * program, candidate ladder, dimension count or objective re-tunes
 * instead of reusing a stale answer. The fingerprint version tag
 * (driver-side) plus the file's "version" field guard against
 * format/semantics drift; load() rejects unknown versions.
 *
 * Writes are atomic (temp file + rename) and the in-memory map is
 * mutex-guarded, so one TuneDb can be shared by concurrent tuning
 * jobs; last-put-wins on the same key. Entries are saved in sorted
 * key order, so two stores holding the same facts are byte-identical
 * files.
 */

#ifndef POLYFUSE_PERFMODEL_TUNE_DB_HH
#define POLYFUSE_PERFMODEL_TUNE_DB_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "perfmodel/model.hh"
#include "pres/fingerprint.hh"

namespace polyfuse {
namespace perfmodel {

/** The stored best configuration for one tuning key. */
struct TuneEntry
{
    std::string strategy = "ours";
    std::vector<int64_t> tiles;
    std::string tier = "bytecode";
    double modeledMs = 0;
    unsigned evaluated = 0;
    /** "exact" (full tuningKey) or "shape" (extent-blind near-miss
     *  key). Omitted on disk for "exact", keeping version-1 records
     *  checksum-compatible. */
    std::string kind = "exact";
};

/** A fingerprint-keyed map of TuneEntry, persisted as JSON. */
class TuneDb
{
  public:
    /** Binds to @p path and load()s it when the file exists (a
     *  missing file is an empty store, not an error). */
    explicit TuneDb(std::string path);

    const std::string &path() const { return path_; }

    /**
     * (Re-)read the store from disk, replacing the in-memory map.
     * Damage-tolerant: records failing their per-record checksum
     * are dropped (counted in lastLoadDropped()) and the rest are
     * salvaged. @return true only for a fully clean load; false
     * after any salvage, or -- with an empty map -- for foreign
     * files (wrong/missing version).
     */
    bool load();

    /** Records dropped by the most recent load() (corrupt or
     *  checksum-mismatched). */
    size_t lastLoadDropped() const;

    /** Write the store atomically (temp + rename). @return false
     *  when the file cannot be written. */
    bool save() const;

    /** Look up @p fp. @return false (out untouched) when absent. */
    bool find(const pres::Fingerprint &fp, TuneEntry *out) const;

    /** Insert or overwrite the entry for @p fp (in memory; call
     *  save() to persist). */
    void put(const pres::Fingerprint &fp, const TuneEntry &entry);

    size_t size() const;

    /** The stored cost-model calibration. @return false (out
     *  untouched) when the store carries none. */
    bool modelFit(ModelFit *out) const;

    /** Set the calibration (in memory; call save() to persist). */
    void setModelFit(const ModelFit &fit);

  private:
    mutable std::mutex mu_;
    std::string path_;
    /** Keyed by Fingerprint::hex(): sorted, so save() is stable. */
    std::map<std::string, TuneEntry> entries_;
    ModelFit fit_;
    bool hasFit_ = false;
    size_t lastLoadDropped_ = 0;
};

/** The per-record checksum save() stores under "crc" (exposed for
 *  tests that fabricate corrupt stores). kind == "exact" records
 *  hash exactly as version 1 did, so legacy stores verify. */
uint64_t recordChecksum(const std::string &fp_hex,
                        const TuneEntry &entry);

/** The checksum of the "model" section (exposed for tests). */
uint64_t modelChecksum(const ModelFit &fit);

/** @p crc as the 16-hex-digit spelling used on disk. */
std::string checksumHex(uint64_t crc);

} // namespace perfmodel
} // namespace polyfuse

#endif // POLYFUSE_PERFMODEL_TUNE_DB_HH
