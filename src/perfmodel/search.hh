/**
 * @file
 * The tile-size search drivers behind autotuneTileSizes: the
 * exhaustive sweep (today's behaviour, kept as the oracle) and the
 * model-guided search of ROADMAP item 3 -- rank every candidate with
 * the calibrated analytic CostModel (perfmodel/model.hh), then fully
 * evaluate only the top of the ranking with successive-halving early
 * stopping. Guided search visits a fraction of the ladder at
 * near-oracle quality (BENCH_autotune.json tracks the tradeoff).
 *
 * Candidate ordering is dimension-matching in the sense of the
 * fusion/tiling heuristics of arXiv 1803.10726: among model-score
 * ties, tile vectors whose spans divide the live-out extents (no
 * ragged boundary tiles) and whose innermost span walks the full
 * contiguous extent are preferred. Seed tiles -- e.g. the stored
 * winner of a shape-key near miss (same program structure, other
 * tensor extents) -- jump the ranking entirely and are measured
 * first.
 *
 * Both drivers share one evaluation path (evaluateCandidate): a full
 * compose -> codegen -> bytecode+memsim run against the tuning
 * hierarchy (tuningHierarchy()), whose L1/L2 capacities are the same
 * constants the cost model interpolates against -- model and
 * measurement never disagree about the machine.
 *
 * Determinism contract: both drivers reduce in ranking/enumeration
 * order after every (possibly parallel) evaluation round, so the
 * chosen tiles are identical for any jobs count.
 */

#ifndef POLYFUSE_PERFMODEL_SEARCH_HH
#define POLYFUSE_PERFMODEL_SEARCH_HH

#include <functional>
#include <string>
#include <vector>

#include "deps/dependences.hh"
#include "exec/executor.hh"
#include "ir/program.hh"
#include "memsim/cache.hh"
#include "perfmodel/model.hh"
#include "pres/fm.hh"

namespace polyfuse {
namespace perfmodel {

/** How autotuneTileSizes explores the candidate space. */
enum class SearchMode
{
    /** Measure every feasible candidate (the oracle). */
    Exhaustive,
    /** Model-rank all candidates, measure only the top-K with
     *  successive halving. */
    Guided,
};

/** CLI spelling of @p mode ("exhaustive" / "guided"). */
const char *searchModeName(SearchMode mode);

/** Parse a CLI spelling. @return false on unknown text. */
bool parseSearchMode(const std::string &text, SearchMode *out);

/** L1 geometry of the tuning hierarchy (16 KiB: small on purpose,
 *  so locality effects show at bench-sized extents). */
memsim::CacheConfig tuneL1Config();

/** L2 geometry of the tuning hierarchy (256 KiB). */
memsim::CacheConfig tuneL2Config();

/**
 * The memory hierarchy every candidate evaluation (and the
 * calibration path) simulates against: tuneL1Config()/tuneL2Config()
 * with one pair of spaces per tensor (tensor + its scratch copy),
 * mirroring the executor's space numbering.
 */
memsim::MemoryHierarchy tuningHierarchy(const ir::Program &p);

/**
 * Measure one candidate: compose with @p tiles, generate the AST,
 * run the bytecode tier against tuningHierarchy(), and return
 * modeledCpuMs at an objective of @p threads.
 */
double evaluateCandidate(
    const ir::Program &p, const deps::DependenceGraph &g,
    const std::vector<int64_t> &tiles,
    const std::function<void(exec::Buffers &)> &init,
    unsigned threads, unsigned target_parallelism);

/** The search configuration a driver needs (a subset of
 *  AutotuneOptions, copied so search.hh and autotune.hh stay
 *  dependency-free of each other). */
struct SearchConfig
{
    unsigned dims = 2;
    unsigned threads = 32;
    unsigned targetParallelism = 1;
    unsigned jobs = 1; ///< 0 = hardware concurrency
    /** Guided: fully evaluate this many top-ranked candidates
     *  (0 = auto, max(3, ceil(total / 5))). */
    unsigned topK = 0;
};

/** One driver invocation. */
struct SearchInput
{
    const ir::Program &program;
    const deps::DependenceGraph &graph;
    const std::function<void(exec::Buffers &)> &init;
    SearchConfig config;
    /** Feasible candidates in ladder enumeration order. */
    std::vector<std::vector<int64_t>> candidates;
    /** Near-miss seed (e.g. a shape-key hit at other extents):
     *  measured first when it appears among candidates, and halves
     *  the guided top-K. Empty = cold. */
    std::vector<int64_t> seedTiles;
};

/** What a driver produced. */
struct SearchOutcome
{
    std::vector<int64_t> tileSizes;
    double modeledMs = 0;
    /** Candidates fully evaluated (compose + simulate). */
    unsigned measured = 0;
    /** Wall time of the model ranking pass (guided; 0 otherwise). */
    double modelRankMs = 0;
    /** Presburger FM/op-cache work of all evaluations, aggregated
     *  across workers (sequential and parallel runs report
     *  comparable numbers). */
    pres::fm::Counters counters;
    /** Estimated wall time the shared/per-worker op caches saved
     *  (cold-minus-warm estimate; see AutotuneResult). */
    double savedMsEstimate = 0;
    /** (terms, measuredMs) per evaluation, for calibration. */
    std::vector<ModelSample> samples;
};

/** Every feasible candidate vector of the options ladder, in
 *  enumeration order (candidates larger than the widest tensor
 *  extent are pruned). */
std::vector<std::vector<int64_t>>
enumerateTileCandidates(const ir::Program &program,
                        const std::vector<int64_t> &ladder,
                        unsigned dims);

/** The oracle: measure every candidate, pick the min (ties broken
 *  by enumeration order). Bit-identical tiles/modeledMs to the
 *  pre-search-driver autotuner. */
SearchOutcome searchExhaustive(const SearchInput &in);

/**
 * Model-guided search: rank all candidates by the calibrated model
 * (with dimension-matching tie-bonuses), then evaluate the top-K in
 * successive-halving rounds, stopping early when a round fails to
 * improve the best modeled time by more than 1%.
 */
SearchOutcome searchGuided(const SearchInput &in,
                           const ModelFit &fit);

} // namespace perfmodel
} // namespace polyfuse

#endif // POLYFUSE_PERFMODEL_SEARCH_HH
