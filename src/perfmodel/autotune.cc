#include "perfmodel/autotune.hh"

#include "codegen/generate.hh"
#include "core/compose.hh"
#include "memsim/cache.hh"
#include "perfmodel/parallel.hh"
#include "support/logging.hh"

namespace polyfuse {
namespace perfmodel {

namespace {

/** Largest tensor extent: candidates beyond it are pointless. */
int64_t
maxExtent(const ir::Program &p)
{
    int64_t best = 1;
    for (size_t t = 0; t < p.tensors().size(); ++t)
        for (unsigned d = 0; d < p.tensor(t).rank; ++d)
            best = std::max(best, p.tensorExtent(t, d));
    return best;
}

double
evaluate(const ir::Program &p, const deps::DependenceGraph &g,
         const std::vector<int64_t> &sizes,
         const std::function<void(exec::Buffers &)> &init,
         const AutotuneOptions &options)
{
    core::ComposeOptions copts;
    copts.tileSizes = sizes;
    copts.targetParallelism = options.targetParallelism;
    auto r = core::compose(p, g, copts);
    auto ast = codegen::generateAst(r.tree);

    exec::Buffers buf(p);
    init(buf);
    memsim::MemoryHierarchy mem(
        memsim::CacheConfig{16 * 1024, 64, 8, "L1"},
        memsim::CacheConfig{256 * 1024, 64, 16, "L2"});
    for (size_t t = 0; t < p.tensors().size(); ++t) {
        mem.addSpace(t, p.tensorSize(t));
        mem.addSpace(p.tensors().size() + t, p.tensorSize(t));
    }
    auto stats = exec::run(p, ast, buf,
                           [&](int space, int64_t off, bool w) {
                               mem.access(space, off, w);
                           });
    return modeledCpuMs(stats, mem.stats(), options.threads);
}

void
sweep(const ir::Program &p, const deps::DependenceGraph &g,
      const std::function<void(exec::Buffers &)> &init,
      const AutotuneOptions &options, std::vector<int64_t> &current,
      AutotuneResult &best)
{
    if (current.size() == options.dims) {
        double ms = evaluate(p, g, current, init, options);
        ++best.evaluated;
        if (best.tileSizes.empty() || ms < best.modeledMs) {
            best.modeledMs = ms;
            best.tileSizes = current;
        }
        return;
    }
    int64_t limit = maxExtent(p);
    for (int64_t c : options.candidates) {
        if (c > limit)
            continue;
        current.push_back(c);
        sweep(p, g, init, options, current, best);
        current.pop_back();
    }
}

} // namespace

AutotuneResult
autotuneTileSizes(const ir::Program &program,
                  const deps::DependenceGraph &graph,
                  const std::function<void(exec::Buffers &)> &init,
                  const AutotuneOptions &options)
{
    if (options.dims == 0 || options.candidates.empty())
        fatal("autotune: need at least one dimension and candidate");
    AutotuneResult best;
    std::vector<int64_t> current;
    sweep(program, graph, init, options, current, best);
    if (best.tileSizes.empty())
        fatal("autotune: no feasible candidate (all larger than the "
              "iteration space)");
    return best;
}

} // namespace perfmodel
} // namespace polyfuse
