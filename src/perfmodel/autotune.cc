#include "perfmodel/autotune.hh"

#include <exception>
#include <mutex>

#include "codegen/generate.hh"
#include "core/compose.hh"
#include "exec/bytecode.hh"
#include "ir/fingerprint.hh"
#include "memsim/cache.hh"
#include "perfmodel/parallel.hh"
#include "perfmodel/tune_db.hh"
#include "pres/op_cache.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"
#include "support/timer.hh"

namespace polyfuse {
namespace perfmodel {

namespace {

/** Largest tensor extent: candidates beyond it are pointless. */
int64_t
maxExtent(const ir::Program &p)
{
    int64_t best = 1;
    for (size_t t = 0; t < p.tensors().size(); ++t)
        for (unsigned d = 0; d < p.tensor(t).rank; ++d)
            best = std::max(best, p.tensorExtent(t, d));
    return best;
}

double
evaluate(const ir::Program &p, const deps::DependenceGraph &g,
         const std::vector<int64_t> &sizes,
         const std::function<void(exec::Buffers &)> &init,
         const AutotuneOptions &options)
{
    core::ComposeOptions copts;
    copts.tileSizes = sizes;
    copts.targetParallelism = options.targetParallelism;
    auto r = core::compose(p, g, copts);
    auto ast = codegen::generateAst(r.tree);

    exec::Buffers buf(p);
    init(buf);
    memsim::MemoryHierarchy mem(
        memsim::CacheConfig{16 * 1024, 64, 8, "L1"},
        memsim::CacheConfig{256 * 1024, 64, 16, "L2"});
    for (size_t t = 0; t < p.tensors().size(); ++t) {
        mem.addSpace(t, p.tensorSize(t));
        mem.addSpace(p.tensors().size() + t, p.tensorSize(t));
    }
    // The bytecode tier with the batched hierarchy sink: identical
    // trace sequence to the interpreter (differentially tested),
    // at a fraction of the per-access cost.
    auto kernel = exec::BytecodeKernel::compile(p, ast);
    memsim::HierarchySink sink(mem);
    auto stats = kernel.run(buf, sink);
    return modeledCpuMs(stats, mem.stats(), options.threads);
}

/**
 * Enumerate every feasible candidate vector, in ladder order.
 * @p limit is the hoisted maxExtent(p): the program never changes
 * between candidates, so the tensor scan runs once per tuning call
 * instead of once per recursion level.
 */
void
enumerateCandidates(const AutotuneOptions &options, int64_t limit,
                    std::vector<int64_t> &current,
                    std::vector<std::vector<int64_t>> &out)
{
    if (current.size() == options.dims) {
        out.push_back(current);
        return;
    }
    for (int64_t c : options.candidates) {
        if (c > limit)
            continue;
        current.push_back(c);
        enumerateCandidates(options, limit, current, out);
        current.pop_back();
    }
}

} // namespace

pres::Fingerprint
tuningKey(const ir::Program &program, const AutotuneOptions &options)
{
    pres::Fingerprinter fp;
    fp.mix("polyfuse-autotune-v1");
    ir::mixProgram(fp, program);
    fp.mix(uint64_t(options.candidates.size()));
    for (int64_t c : options.candidates)
        fp.mixSigned(c);
    fp.mix(uint64_t(options.dims));
    fp.mix(uint64_t(options.threads));
    fp.mix(uint64_t(options.targetParallelism));
    return fp.fingerprint();
}

AutotuneResult
autotuneTileSizes(const ir::Program &program,
                  const deps::DependenceGraph &graph,
                  const std::function<void(exec::Buffers &)> &init,
                  const AutotuneOptions &options)
{
    if (options.dims == 0 || options.candidates.empty())
        fatal("autotune: need at least one dimension and candidate");

    pres::Fingerprint key;
    if (options.db) {
        key = tuningKey(program, options);
        TuneEntry stored;
        if (options.db->find(key, &stored) &&
            stored.tiles.size() == options.dims) {
            AutotuneResult warm;
            warm.tileSizes = stored.tiles;
            warm.modeledMs = stored.modeledMs;
            warm.evaluated = 0;
            warm.warmStart = true;
            return warm;
        }
    }

    std::vector<std::vector<int64_t>> candidates;
    std::vector<int64_t> current;
    enumerateCandidates(options, maxExtent(program), current,
                        candidates);
    if (candidates.empty())
        fatal("autotune: no feasible candidate (all larger than the "
              "iteration space)");

    // The exhaustive search is embarrassingly parallel: every
    // evaluation compiles and simulates privately (the pres layer
    // charges FM work to each worker thread's own context). The
    // reduction below runs after the pool drains, in enumeration
    // order, so the winner never depends on thread timing.
    std::vector<double> modeled(candidates.size(), 0.0);
    unsigned jobs = options.jobs == 0 ? ThreadPool::defaultThreads()
                                      : options.jobs;
    AutotuneResult best;
    Timer search_timer;
    if (jobs <= 1 || candidates.size() <= 1) {
        // Sequential sweep: all candidates compile against one shared
        // context with one op cache, so the dependence compositions
        // and footprint projections every candidate re-derives are
        // memoized across the ladder (the program never changes, only
        // the tile sizes).
        pres::fm::PresCtx shared;
        pres::OpCache cache;
        shared.cache = &cache;
        pres::fm::ScopedCtx scope(shared);
        double cold_ms = 0, warm_ms = 0;
        for (size_t i = 0; i < candidates.size(); ++i) {
            Timer t;
            modeled[i] =
                evaluate(program, graph, candidates[i], init,
                         options);
            (i == 0 ? cold_ms : warm_ms) += t.milliseconds();
        }
        best.cacheHits = shared.counters.cacheHits;
        best.cacheMisses = shared.counters.cacheMisses;
        if (candidates.size() > 1 && best.cacheHits > 0) {
            double warm_avg = warm_ms / (candidates.size() - 1);
            if (cold_ms > warm_avg)
                best.savedMsEstimate =
                    (cold_ms - warm_avg) * (candidates.size() - 1);
        }
    } else {
        // Pool jobs must not throw; hold the first failure and
        // rethrow on the caller thread (matching the sequential
        // error behaviour).
        std::exception_ptr failure;
        std::mutex failure_mutex;
        {
            ThreadPool pool(jobs);
            for (size_t i = 0; i < candidates.size(); ++i)
                pool.submit([&, i] {
                    try {
                        modeled[i] = evaluate(program, graph,
                                              candidates[i], init,
                                              options);
                    } catch (...) {
                        std::lock_guard<std::mutex> lock(
                            failure_mutex);
                        if (!failure)
                            failure = std::current_exception();
                    }
                });
            pool.wait();
        }
        if (failure)
            std::rethrow_exception(failure);
    }

    best.searchMs = search_timer.milliseconds();
    best.evaluated = unsigned(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
        if (best.tileSizes.empty() || modeled[i] < best.modeledMs) {
            best.modeledMs = modeled[i];
            best.tileSizes = candidates[i];
        }
    }

    if (options.db) {
        TuneEntry entry;
        entry.strategy = "ours"; // the tuner evaluates core::compose
        entry.tiles = best.tileSizes;
        entry.tier = "bytecode"; // the tuner's evaluation tier
        entry.modeledMs = best.modeledMs;
        entry.evaluated = best.evaluated;
        options.db->put(key, entry);
        options.db->save();
    }
    return best;
}

} // namespace perfmodel
} // namespace polyfuse
