#include "perfmodel/autotune.hh"

#include "ir/fingerprint.hh"
#include "perfmodel/search.hh"
#include "perfmodel/tune_db.hh"
#include "support/logging.hh"
#include "support/timer.hh"

namespace polyfuse {
namespace perfmodel {

namespace {

/** Mix the search-space configuration (the part of the key shared
 *  by the exact and the shape layer). */
void
mixSearchConfig(pres::Fingerprinter &fp,
                const AutotuneOptions &options)
{
    fp.mix(uint64_t(options.candidates.size()));
    for (int64_t c : options.candidates)
        fp.mixSigned(c);
    fp.mix(uint64_t(options.dims));
    fp.mix(uint64_t(options.threads));
    fp.mix(uint64_t(options.targetParallelism));
}

} // namespace

pres::Fingerprint
tuningKey(const ir::Program &program, const AutotuneOptions &options)
{
    pres::Fingerprinter fp;
    fp.mix("polyfuse-autotune-v1");
    ir::mixProgram(fp, program);
    mixSearchConfig(fp, options);
    return fp.fingerprint();
}

pres::Fingerprint
tuningShapeKey(const ir::Program &program,
               const AutotuneOptions &options)
{
    pres::Fingerprinter fp;
    fp.mix("polyfuse-autotune-shape-v1");
    ir::mixProgramShape(fp, program);
    mixSearchConfig(fp, options);
    return fp.fingerprint();
}

AutotuneResult
autotuneTileSizes(const ir::Program &program,
                  const deps::DependenceGraph &graph,
                  const std::function<void(exec::Buffers &)> &init,
                  const AutotuneOptions &options)
{
    if (options.dims == 0 || options.candidates.empty())
        fatal("autotune: need at least one dimension and candidate");

    const bool guided = options.searchMode == SearchMode::Guided;
    pres::Fingerprint key, shape_key;
    std::vector<int64_t> seed_tiles;
    if (options.db) {
        key = tuningKey(program, options);
        TuneEntry stored;
        if (options.db->find(key, &stored) &&
            stored.tiles.size() == options.dims) {
            AutotuneResult warm;
            warm.tileSizes = stored.tiles;
            warm.modeledMs = stored.modeledMs;
            warm.evaluated = 0;
            warm.mode = options.searchMode;
            warm.warmStart = true;
            return warm;
        }
        if (guided) {
            // Exact miss: try the extent-blind shape layer. Tiles
            // tuned for the same structure at other sizes are a
            // strong prior, not an answer -- they seed the ranking
            // and shrink the measurement budget.
            shape_key = tuningShapeKey(program, options);
            if (options.db->find(shape_key, &stored) &&
                stored.tiles.size() == options.dims)
                seed_tiles = stored.tiles;
        }
    }

    SearchConfig cfg;
    cfg.dims = options.dims;
    cfg.threads = options.threads;
    cfg.targetParallelism = options.targetParallelism;
    cfg.jobs = options.jobs;
    cfg.topK = options.searchTopK;
    SearchInput in{program, graph,        init,
                   cfg,     enumerateTileCandidates(
                                program, options.candidates,
                                options.dims),
                   seed_tiles};
    if (in.candidates.empty())
        fatal("autotune: no feasible candidate (all larger than the "
              "iteration space)");

    ModelFit fit = defaultModelFit();
    if (guided && options.db) {
        ModelFit stored_fit;
        if (options.db->modelFit(&stored_fit) &&
            stored_fit.samples > 0)
            fit = stored_fit;
    }

    Timer search_timer;
    SearchOutcome outcome =
        guided ? searchGuided(in, fit) : searchExhaustive(in);

    AutotuneResult best;
    best.searchMs = search_timer.milliseconds();
    best.tileSizes = outcome.tileSizes;
    best.modeledMs = outcome.modeledMs;
    best.evaluated = outcome.measured;
    best.mode = options.searchMode;
    best.totalCandidates = unsigned(in.candidates.size());
    best.pruned = best.totalCandidates - outcome.measured;
    best.modelRankMs = outcome.modelRankMs;
    best.cacheHits = outcome.counters.cacheHits;
    best.cacheMisses = outcome.counters.cacheMisses;
    best.savedMsEstimate = outcome.savedMsEstimate;
    best.seededFromShape = !seed_tiles.empty();

    if (guided && options.compareOracle) {
        SearchOutcome oracle = searchExhaustive(in);
        best.oracleMs = oracle.modeledMs;
        if (oracle.modeledMs > 0)
            best.qualityGapPct = 100.0 *
                                 (best.modeledMs -
                                  oracle.modeledMs) /
                                 oracle.modeledMs;
    }

    if (options.db) {
        TuneEntry entry;
        entry.strategy = "ours"; // the tuner evaluates core::compose
        entry.tiles = best.tileSizes;
        entry.tier = "bytecode"; // the tuner's evaluation tier
        entry.modeledMs = best.modeledMs;
        entry.evaluated = best.evaluated;
        options.db->put(key, entry);
        if (guided) {
            // The extent-blind layer: the same winner filed under
            // the shape key, so other sizes of this pipeline start
            // seeded instead of cold.
            TuneEntry shape = entry;
            shape.kind = "shape";
            options.db->put(shape_key, shape);
            // Fold this search's measurements into the stored
            // calibration (sample-count-weighted against whatever
            // fit ranked this search).
            if (!outcome.samples.empty())
                options.db->setModelFit(
                    fitModel(outcome.samples, fit));
        }
        options.db->save();
    }
    return best;
}

} // namespace perfmodel
} // namespace polyfuse
