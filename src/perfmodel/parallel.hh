/**
 * @file
 * Parallel-scaling model for the thread sweeps of Fig. 8 and
 * Table II. Measured single-thread execution is combined with an
 * Amdahl model whose parallel fraction is read from the schedule
 * itself (instances executed under coincident loops), never assumed:
 * a schedule that lost parallelism (e.g. maxfuse after skewing)
 * shows a near-zero fraction and flat scaling, exactly the paper's
 * observation.
 */

#ifndef POLYFUSE_PERFMODEL_PARALLEL_HH
#define POLYFUSE_PERFMODEL_PARALLEL_HH

#include "exec/executor.hh"
#include "memsim/cache.hh"

namespace polyfuse {
namespace perfmodel {

/** Workstation description for the modeled-time formula. */
struct CpuModelConfig
{
    double ghz = 2.1;          ///< E5-2683 v4 base clock
    double opsPerCycle = 4.0;  ///< sustained scalar+SIMD mix
    double dramGBs = 60.0;     ///< socket memory bandwidth (shared)
    double l1LatCycles = 4.0;
    double l2LatCycles = 14.0;
    double dramLatCycles = 120.0;
    /** Memory-level parallelism hiding part of the latency. */
    double mlp = 4.0;
};

/**
 * Modeled execution time on @p threads: compute+latency cycles scale
 * with the Amdahl speedup of the schedule's own parallel fraction;
 * DRAM traffic is bounded by the shared socket bandwidth.
 */
double modeledCpuMs(const exec::ExecStats &stats,
                    const memsim::CacheStats &cache, unsigned threads,
                    const CpuModelConfig &config = {});

/** Fraction of statement instances inside parallel loops. */
double parallelFraction(const exec::ExecStats &stats);

/**
 * Amdahl speedup with a small per-thread coordination overhead
 * (keeps 32-thread numbers realistic instead of ideal).
 */
double amdahlSpeedup(double parallel_fraction, unsigned threads,
                     double sync_overhead = 0.002);

/** Modeled wall time on @p threads from a 1-thread measurement. */
double modeledSeconds(double serial_seconds,
                      const exec::ExecStats &stats, unsigned threads);

} // namespace perfmodel
} // namespace polyfuse

#endif // POLYFUSE_PERFMODEL_PARALLEL_HH
