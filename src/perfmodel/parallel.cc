#include "perfmodel/parallel.hh"

#include <algorithm>

namespace polyfuse {
namespace perfmodel {

double
parallelFraction(const exec::ExecStats &stats)
{
    if (stats.instances == 0)
        return 0.0;
    return double(stats.instancesParallel) / double(stats.instances);
}

double
amdahlSpeedup(double parallel_fraction, unsigned threads,
              double sync_overhead)
{
    if (threads == 0)
        threads = 1;
    double f = std::clamp(parallel_fraction, 0.0, 1.0);
    double t = double(threads);
    return 1.0 /
           ((1.0 - f) + f / t + sync_overhead * (t - 1.0) / t);
}

double
modeledSeconds(double serial_seconds, const exec::ExecStats &stats,
               unsigned threads)
{
    return serial_seconds /
           amdahlSpeedup(parallelFraction(stats), threads);
}

double
modeledCpuMs(const exec::ExecStats &stats,
             const memsim::CacheStats &cache, unsigned threads,
             const CpuModelConfig &config)
{
    double cycles =
        stats.flops / config.opsPerCycle +
        (double(cache.l1Hits) * config.l1LatCycles +
         double(cache.l2Hits) * config.l2LatCycles +
         double(cache.l2Misses) * config.dramLatCycles) /
            config.mlp;
    double compute_ms =
        cycles / (config.ghz * 1e6) /
        amdahlSpeedup(parallelFraction(stats), threads);
    double dram_ms = double(cache.dramBytes) / (config.dramGBs * 1e6);
    return std::max(compute_ms, dram_ms);
}

} // namespace perfmodel
} // namespace polyfuse
