#include "core/compose.hh"

#include <algorithm>
#include <set>

#include "core/footprint.hh"
#include "pres/affine.hh"
#include "pres/fm.hh"
#include "support/failpoint.hh"
#include "support/logging.hh"
#include "support/timer.hh"

namespace polyfuse {
namespace core {

using deps::DependenceGraph;
using ir::Program;
using ir::Statement;
using pres::Map;
using pres::Set;
using schedule::NodeKind;
using schedule::NodePtr;
using schedule::ScheduleTree;

namespace {

/** One computation space produced by the start-up heuristic. */
struct SpaceInfo
{
    int id = -1;
    std::vector<int> groups;
    std::vector<int> stmts;
    std::vector<std::string> stmtNames;
    NodePtr filterNode;
    NodePtr outerBand;
    bool liveOut = false;
    unsigned leadingCoincident = 0; ///< n in Algorithm 1
};

/** Per-live-out fusion plan (the Mixed_Schedules of Algorithm 1). */
struct LiveOutPlan
{
    int space = -1;
    bool tiled = false;
    NodePtr tileBandNode; ///< tile band after the split (if tiled)
    std::string tileTuple;
    /** Intermediate spaces fused into this live-out, exec order. */
    std::vector<int> fusedSpaces;
    /** Extension schedule per fused statement (eq. 6). */
    std::map<std::string, Map> ext;
};

unsigned
countLeadingCoincident(const NodePtr &band)
{
    if (!band)
        return 0;
    unsigned n = 0;
    for (bool c : band->coincident) {
        if (!c)
            break;
        ++n;
    }
    return n;
}

/**
 * Estimated recomputation factor of fusing @p s through extension
 * schedule @p h: tiles x per-(middle-)tile box volume / domain box
 * volume, all under the program's parameter values.
 */
double
recomputeFactor(const Program &program, const Statement &s,
                const pres::BasicMap &h)
{
    pres::BasicMap hh = h;
    for (const auto &[name, value] : program.paramValues())
        hh = hh.fixParam(name, value);
    unsigned nt = hh.space().numIn();

    // Tile count and middle tile coordinates.
    pres::BasicSet tiles = hh.domain();
    double tile_count = 1;
    std::vector<int64_t> mid;
    for (unsigned d = 0; d < nt; ++d) {
        int64_t lo, hi;
        if (!tiles.dimBounds(d, {}, lo, hi))
            return 0.0; // no tiles: nothing recomputed
        tile_count *= double(hi - lo + 1);
        mid.push_back((lo + hi) / 2);
    }

    // Per-tile footprint box volume at the middle tile.
    pres::BasicMap fixed = hh;
    for (unsigned d = 0; d < nt; ++d)
        fixed = fixed.fixInDim(d, mid[d]);
    double per_tile = 1;
    for (unsigned j = 0; j < fixed.space().numOut(); ++j) {
        std::vector<pres::DivBound> lowers, uppers;
        if (!fixed.outDimBounds(j, lowers, uppers))
            return 1e30; // unbounded: reject
        int64_t lo = evalBounds(lowers, mid, {}, true);
        int64_t hi = evalBounds(uppers, mid, {}, false);
        per_tile *= double(std::max<int64_t>(hi - lo + 1, 0));
    }

    // Domain box volume.
    pres::BasicSet dom = s.domain();
    for (const auto &[name, value] : program.paramValues())
        dom = dom.fixParam(name, value);
    double dom_vol = 1;
    for (unsigned d = 0; d < s.numDims(); ++d) {
        int64_t lo, hi;
        if (!dom.dimBounds(d, {}, lo, hi))
            return 0.0;
        dom_vol *= double(hi - lo + 1);
    }
    if (dom_vol <= 0)
        return 0.0;
    return tile_count * per_tile / dom_vol;
}

/** The +/-d dilation relation on a statement's instance space,
 *  clipped to its domain on the output side. */
pres::BasicMap
dilationMap(const Statement &s, unsigned d)
{
    pres::Space sp = pres::Space::forMap(
        s.name(), s.numDims(), s.name(), s.numDims(),
        s.domain().space().params());
    pres::BasicMap m(sp);
    for (unsigned k = 0; k < s.numDims(); ++k) {
        pres::LinExpr in = pres::LinExpr::inDim(sp, k);
        pres::LinExpr out = pres::LinExpr::outDim(sp, k);
        m.addConstraint(pres::geCons(out, in - int64_t(d)));
        m.addConstraint(pres::leCons(out, in + int64_t(d)));
    }
    return m.intersectRange(s.domain());
}

/** Space-level dependence: does space src feed space dst? */
bool
spaceFeeds(const DependenceGraph &graph, const SpaceInfo &src,
           const SpaceInfo &dst)
{
    for (int a : src.stmts)
        for (int b : dst.stmts)
            if (!graph.between(a, b).empty())
                return true;
    return false;
}

} // namespace

ComposeResult
compose(const Program &program, const DependenceGraph &graph,
        const ComposeOptions &options)
{
    // Step 0: start-up conservative fusion -> separated spaces.
    auto startup = schedule::applyFusion(program, graph,
                                         options.startup);
    return composeFrom(program, graph, startup, options);
}

ComposeResult
composeFrom(const Program &program, const DependenceGraph &graph,
            const schedule::FusionResult &startup,
            const ComposeOptions &options)
{
    failpoints::hit("core.compose");
    Timer timer;
    ComposeResult result;

    // Surgery below mutates the tree; keep the caller's copy intact.
    ScheduleTree tree = startup.tree.clone();

    // Collect the computation spaces from the top-level sequence.
    NodePtr top_seq = tree.root()->onlyChild();
    if (!top_seq || top_seq->kind != NodeKind::Sequence)
        panic("compose: unexpected tree shape");

    std::vector<SpaceInfo> spaces;
    for (size_t i = 0; i < top_seq->children.size(); ++i) {
        SpaceInfo info;
        info.id = i;
        info.filterNode = top_seq->children[i];
        info.stmtNames = info.filterNode->filter;
        info.groups = startup.clusters[i];
        for (const auto &name : info.stmtNames) {
            int id = program.statementId(name);
            info.stmts.push_back(id);
            const Statement &s = program.statement(id);
            if (s.writeIndex() >= 0 &&
                program.tensorLiveOut(s.writeAccess().tensor))
                info.liveOut = true;
        }
        info.outerBand = ScheduleTree::findBand(info.filterNode);
        info.leadingCoincident =
            countLeadingCoincident(info.outerBand);
        spaces.push_back(std::move(info));
    }

    // Tensors written by intermediate (non-live-out) spaces.
    std::set<int> intermediate_tensors;
    for (const auto &sp : spaces) {
        if (sp.liveOut)
            continue;
        for (int id : sp.stmts) {
            const Statement &s = program.statement(id);
            if (s.writeIndex() >= 0)
                intermediate_tensors.insert(s.writeAccess().tensor);
        }
    }

    // Step 1 (Algorithms 1 + 3 outer loop): per live-out planning.
    std::vector<LiveOutPlan> plans;
    for (auto &lo : spaces) {
        if (!lo.liveOut)
            continue;
        // The planning loop is the composition's dominant cost (one
        // footprint/extension computation per live-out x intermediate
        // pair); re-check the budget per live-out so the run stops
        // between units of work, not only deep inside the FM engine.
        pres::fm::checkBudget(pres::fm::activeCtx(),
                              "core::composeFrom");
        LiveOutPlan plan;
        plan.space = lo.id;
        plan.tileTuple = "T" + std::to_string(lo.id);

        // Tilability bar (Sec. III-C): enough leading parallel dims.
        bool tilable = lo.outerBand && lo.outerBand->permutable &&
                       lo.leadingCoincident >=
                           options.targetParallelism &&
                       !options.tileSizes.empty() &&
                       lo.outerBand->numBandDims() > 0;
        if (tilable) {
            std::vector<int64_t> sizes(lo.outerBand->numBandDims(),
                                       options.tileSizes.back());
            for (size_t k = 0;
                 k < sizes.size() && k < options.tileSizes.size(); ++k)
                sizes[k] = options.tileSizes[k];
            plan.tileBandNode = tree.tileBand(lo.outerBand, sizes);
            plan.tiled = true;
            ++result.tiledLiveOuts;
            if (!options.innerTileSizes.empty()) {
                NodePtr point = plan.tileBandNode->onlyChild();
                std::vector<int64_t> inner(
                    point->numBandDims(),
                    options.innerTileSizes.back());
                for (size_t k = 0; k < inner.size() &&
                                   k < options.innerTileSizes.size();
                     ++k)
                    inner[k] = options.innerTileSizes[k];
                tree.tileBand(point, inner);
            }
        }

        // The m of Algorithm 1: live-out parallel dims, capped by the
        // parallelism the target consumes.
        unsigned m = std::min<unsigned>(lo.leadingCoincident,
                                        options.targetParallelism);

        // Footprint maps per tensor (eq. 4): tile dims -> elements of
        // upwards exposed data.
        std::map<int, Map> footprint;
        auto addReadsOf = [&](const Statement &s, const Map &to_tile) {
            // to_tile : T -> S instances; extend footprints with the
            // data s reads.
            for (int r : s.readIndices()) {
                const ir::Access &acc = s.accesses()[r];
                if (!intermediate_tensors.count(acc.tensor))
                    continue;
                Map piece = to_tile.compose(
                    Map(acc.rel.intersectDomain(s.domain())));
                footprint[acc.tensor] =
                    footprint[acc.tensor].unite(piece);
            }
        };
        for (const auto &name : lo.stmtNames) {
            const Statement &s =
                program.statement(program.statementId(name));
            pres::BasicMap tm =
                tileMapFor(program,
                           plan.tiled ? plan.tileBandNode : nullptr,
                           name, plan.tileTuple);
            addReadsOf(s, Map(tm.reverse()));
        }

        // Worklist over intermediate spaces in reverse execution
        // order (consumers before producers).
        for (int i = int(spaces.size()) - 1; i >= 0; --i) {
            SpaceInfo &ic = spaces[i];
            if (ic.liveOut || ic.id >= lo.id)
                continue;
            pres::fm::checkBudget(pres::fm::activeCtx(),
                                  "core::composeFrom");
            // The m > n guard of Algorithm 1 (Sec. III-C).
            if (m > ic.leadingCoincident)
                continue;
            // Candidate extension schedules for the whole space;
            // commit only if every statement passes the
            // no-redundancy guard (a partially fused space would be
            // incorrect once its original is skipped). Footprints
            // are propagated within the space through a trial copy
            // so an accepted statement's reads reach its in-space
            // producers (e.g. a reduction's initializer).
            std::map<int, Map> trial = footprint;
            std::vector<std::pair<int, Map>> candidates;
            bool any = false;
            bool acceptable = true;
            auto addTrialReadsOf = [&](const Statement &s,
                                       const Map &to_tile) {
                for (int ri : s.readIndices()) {
                    const ir::Access &acc = s.accesses()[ri];
                    if (!intermediate_tensors.count(acc.tensor))
                        continue;
                    Map piece = to_tile.compose(Map(
                        acc.rel.intersectDomain(s.domain())));
                    trial[acc.tensor] =
                        trial[acc.tensor].unite(piece);
                }
            };
            for (int k = int(ic.stmts.size()) - 1; k >= 0; --k) {
                const Statement &s = program.statement(ic.stmts[k]);
                if (s.writeIndex() < 0)
                    continue;
                const ir::Access &w = s.writeAccess();
                auto it = trial.find(w.tensor);
                if (it == trial.end())
                    continue;
                // Eq. 6: tile dims -> producer instances.
                Map h = it->second.compose(Map(
                    w.rel.intersectDomain(s.domain()).reverse()));
                if (h.isEmpty())
                    continue;
                if (options.footprintDilation > 0)
                    h = h.compose(Map(dilationMap(
                        s, options.footprintDilation)));
                // The code generator needs one convex piece per
                // statement; the simple hull over-approximates the
                // union of per-access pieces, which is safe: extra
                // producer instances recompute identical values
                // inside the tile-local buffer.
                if (h.pieces().size() > 1)
                    h = Map(h.simpleHull());
                if (recomputeFactor(program, s, h.pieces()[0]) >
                    options.maxRecompute) {
                    acceptable = false;
                    break;
                }
                addTrialReadsOf(s, h);
                candidates.emplace_back(ic.stmts[k], std::move(h));
                any = true;
            }
            if (!any || !acceptable)
                continue;
            footprint = std::move(trial);
            for (auto &[sid, h] : candidates)
                plan.ext[program.statement(sid).name()] = h;
            plan.fusedSpaces.insert(plan.fusedSpaces.begin(), ic.id);
        }
        plans.push_back(std::move(plan));
    }

    // Step 2 (Algorithm 3): reject fusions that would introduce
    // redundant computation. An intermediate space stays fused only
    // if (a) every space consuming its output is itself fused (or is
    // the live-out) inside every plan that needs it, and (b) when it
    // is shared by several live-outs, the per-use instance sets do
    // not intersect (Fig. 6).
    auto planOf = [&](int space_id) -> LiveOutPlan * {
        for (auto &p : plans)
            if (p.space == space_id)
                return &p;
        return nullptr;
    };
    auto isFusedIn = [&](const LiveOutPlan &p, int space_id) {
        return std::find(p.fusedSpaces.begin(), p.fusedSpaces.end(),
                         space_id) != p.fusedSpaces.end();
    };
    auto unfuse = [&](int space_id) {
        for (auto &p : plans) {
            auto it = std::find(p.fusedSpaces.begin(),
                                p.fusedSpaces.end(), space_id);
            if (it == p.fusedSpaces.end())
                continue;
            p.fusedSpaces.erase(it);
            for (const auto &name : spaces[space_id].stmtNames)
                p.ext.erase(name);
        }
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto &ic : spaces) {
            if (ic.liveOut)
                continue;
            bool fused_somewhere = false;
            for (const auto &p : plans)
                fused_somewhere |= isFusedIn(p, ic.id);
            if (!fused_somewhere)
                continue;

            bool ok = true;
            // (a) every consumer covered.
            for (const auto &consumer : spaces) {
                if (consumer.id == ic.id)
                    continue;
                if (!spaceFeeds(graph, ic, consumer))
                    continue;
                if (consumer.liveOut) {
                    LiveOutPlan *p = planOf(consumer.id);
                    if (!p || !isFusedIn(*p, ic.id))
                        ok = false;
                } else {
                    // Intermediate consumer: wherever it is fused,
                    // this producer must be fused too; and it must be
                    // fused somewhere (otherwise the original runs
                    // and needs the original producer).
                    bool consumer_fused = false;
                    for (const auto &p : plans) {
                        if (!isFusedIn(p, consumer.id))
                            continue;
                        consumer_fused = true;
                        if (!isFusedIn(p, ic.id))
                            ok = false;
                    }
                    if (!consumer_fused)
                        ok = false;
                }
            }
            // (b) shared uses must be disjoint.
            if (ok) {
                std::vector<const LiveOutPlan *> uses;
                for (const auto &p : plans)
                    if (isFusedIn(p, ic.id))
                        uses.push_back(&p);
                for (size_t a = 0; a + 1 < uses.size() && ok; ++a) {
                    for (size_t b = a + 1; b < uses.size() && ok;
                         ++b) {
                        for (const auto &name : ic.stmtNames) {
                            auto ia = uses[a]->ext.find(name);
                            auto ib = uses[b]->ext.find(name);
                            if (ia == uses[a]->ext.end() ||
                                ib == uses[b]->ext.end())
                                continue;
                            Set ra = ia->second.range();
                            Set rb = ib->second.range();
                            if (!ra.intersect(rb).isEmpty())
                                ok = false;
                        }
                    }
                }
            }
            if (!ok) {
                unfuse(ic.id);
                changed = true;
            }
        }
    }

    // Algorithm 1, line 17/18: intermediate spaces that were not
    // fused anywhere become their own computation spaces and get
    // plain rectangular tiling (when tilable).
    {
        std::set<int> fused_spaces;
        for (const auto &p : plans)
            for (int sid : p.fusedSpaces)
                fused_spaces.insert(sid);
        for (auto &ic : spaces) {
            if (ic.liveOut || fused_spaces.count(ic.id))
                continue;
            bool tilable = ic.outerBand && ic.outerBand->permutable &&
                           ic.leadingCoincident >=
                               options.targetParallelism &&
                           !options.tileSizes.empty() &&
                           ic.outerBand->numBandDims() > 0 &&
                           ic.outerBand->tileSizes.empty();
            if (!tilable)
                continue;
            std::vector<int64_t> sizes(ic.outerBand->numBandDims(),
                                       options.tileSizes.back());
            for (size_t k = 0;
                 k < sizes.size() && k < options.tileSizes.size();
                 ++k)
                sizes[k] = options.tileSizes[k];
            tree.tileBand(ic.outerBand, sizes);
        }
    }

    // Step 3 (Algorithm 2): schedule tree surgery per plan.
    for (auto &plan : plans) {
        if (plan.fusedSpaces.empty())
            continue;
        SpaceInfo &lo = spaces[plan.space];

        // Union extension schedule for the node.
        Map ext_union;
        for (const auto &[name, m] : plan.ext)
            ext_union = ext_union.unite(m);

        std::vector<NodePtr> seq_children;
        for (int sid : plan.fusedSpaces) {
            const SpaceInfo &ic = spaces[sid];
            // Clone the original space's content so the "skipped"
            // mark on the original does not affect this copy.
            NodePtr copy = ScheduleTree(program,
                                        ic.filterNode->onlyChild())
                               .clone()
                               .root();
            seq_children.push_back(
                schedule::makeFilter(ic.stmtNames, copy));
        }

        if (plan.tiled) {
            NodePtr point_subtree = plan.tileBandNode->onlyChild();
            seq_children.push_back(
                schedule::makeFilter(lo.stmtNames, point_subtree));
            plan.tileBandNode->children = {schedule::makeExtension(
                ext_union,
                schedule::makeSequence(std::move(seq_children)))};
        } else {
            NodePtr original = lo.filterNode->onlyChild();
            seq_children.push_back(
                schedule::makeFilter(lo.stmtNames, original));
            lo.filterNode->children = {schedule::makeExtension(
                ext_union,
                schedule::makeSequence(std::move(seq_children)))};
        }

        for (const auto &[name, m] : plan.ext) {
            result.fusedIntermediates.push_back(name);
            result.extensionSchedules[name] =
                result.extensionSchedules[name].unite(m);
        }
    }

    // Mark fused originals "skipped" and detect dead stores.
    for (const auto &ic : spaces) {
        if (ic.liveOut)
            continue;
        bool fused_somewhere = false;
        for (const auto &p : plans)
            fused_somewhere |= isFusedIn(p, ic.id);
        if (!fused_somewhere)
            continue;
        ic.filterNode->children = {schedule::makeMark(
            "skipped", ic.filterNode->onlyChild())};
        for (const auto &name : ic.stmtNames) {
            result.skippedStatements.push_back(name);
            auto it = result.extensionSchedules.find(name);
            if (it == result.extensionSchedules.end())
                continue;
            const Statement &s =
                program.statement(program.statementId(name));
            // Compare under the concrete parameter values: that is
            // what decides whether the generated code computes fewer
            // instances than the original loop nest.
            Set covered = it->second.range();
            Set dom = Set(s.domain());
            for (const auto &[pname, pvalue] : program.paramValues()) {
                covered = covered.fixParam(pname, pvalue);
                dom = dom.fixParam(pname, pvalue);
            }
            if (!dom.subtract(covered).isEmpty())
                result.deadCodeEliminated = true;
        }
    }

    // Final computation spaces for reporting.
    std::set<int> consumed;
    for (const auto &p : plans)
        for (int sid : p.fusedSpaces)
            consumed.insert(sid);
    for (const auto &sp : spaces) {
        if (consumed.count(sp.id))
            continue;
        std::vector<int> groups = sp.groups;
        if (sp.liveOut) {
            if (const LiveOutPlan *p = planOf(sp.id)) {
                for (int sid : p->fusedSpaces)
                    for (int g : spaces[sid].groups)
                        groups.insert(groups.begin(), g);
            }
        }
        std::sort(groups.begin(), groups.end());
        result.spaces.push_back(std::move(groups));
    }

    result.tree = tree;
    result.compileMs = timer.milliseconds();
    return result;
}

} // namespace core
} // namespace polyfuse
