#include "core/footprint.hh"

#include "pres/affine.hh"
#include "pres/fm.hh"
#include "support/failpoint.hh"
#include "support/intmath.hh"
#include "support/logging.hh"

namespace polyfuse {
namespace core {

using ir::Program;
using ir::Statement;
using pres::BasicMap;
using pres::LinExpr;
using pres::Map;
using pres::Space;

pres::BasicMap
tileMapFor(const Program &program, const schedule::NodePtr &band,
           const std::string &stmt, const std::string &tile_tuple)
{
    failpoints::hit("core.footprint");
    pres::fm::checkBudget(pres::fm::activeCtx(), "core::tileMapFor");
    const Statement &s = program.statement(program.statementId(stmt));

    unsigned ntile = 0;
    const schedule::BandMember *member = nullptr;
    if (band && !band->tileSizes.empty()) {
        auto it = band->members.find(stmt);
        if (it == band->members.end())
            panic("tileMapFor: " + stmt + " not a band member");
        member = &it->second;
        ntile = band->tileSizes.size();
    }

    Space sp = Space::forMap(stmt, s.numDims(), tile_tuple, ntile,
                             s.domain().space().params());
    BasicMap m(sp);
    for (unsigned k = 0; k < ntile; ++k) {
        unsigned dim = member->dims[k];
        int64_t shift = member->shifts[k];
        int64_t size = band->tileSizes[k];
        LinExpr d = LinExpr::inDim(sp, dim) + shift;
        LinExpr o = LinExpr::outDim(sp, k);
        // size*o <= dim + shift < size*(o + 1).
        m.addConstraint(leCons(o * size, d));
        m.addConstraint(ltCons(d, o * size + size));
    }
    return m.intersectDomain(s.domain());
}

Map
clusterTileMap(const Program &program, const schedule::NodePtr &band,
               const std::vector<std::string> &stmts,
               const std::string &tile_tuple)
{
    Map out;
    for (const auto &name : stmts)
        out.addPiece(tileMapFor(program, band, name, tile_tuple));
    return out;
}

int64_t
evalBounds(const std::vector<pres::DivBound> &bounds,
           const std::vector<int64_t> &in_values,
           const std::vector<int64_t> &param_values, bool is_lower)
{
    if (bounds.empty())
        panic("evalBounds: empty bound list");
    bool first = true;
    int64_t best = 0;
    for (const auto &b : bounds) {
        // Coefficient row spans [in dims, params, 1].
        if (b.coeffs.size() != in_values.size() + param_values.size() + 1)
            panic("evalBounds: bound arity mismatch");
        int64_t acc = b.coeffs.back();
        for (size_t i = 0; i < in_values.size(); ++i)
            acc = checkedAdd(acc,
                             checkedMul(b.coeffs[i], in_values[i]));
        for (size_t i = 0; i < param_values.size(); ++i)
            acc = checkedAdd(
                acc, checkedMul(b.coeffs[in_values.size() + i],
                                param_values[i]));
        int64_t v = is_lower ? ceilDiv(acc, b.div)
                             : floorDiv(acc, b.div);
        if (first)
            best = v;
        else
            best = is_lower ? std::max(best, v) : std::min(best, v);
        first = false;
    }
    return best;
}

} // namespace core
} // namespace polyfuse
