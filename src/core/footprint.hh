/**
 * @file
 * Footprint machinery shared by Algorithm 1 and the memory promotion
 * pass: tile maps (eq. 2), upwards-exposed-data footprints (eq. 4)
 * and extension schedules (eq. 6).
 */

#ifndef POLYFUSE_CORE_FOOTPRINT_HH
#define POLYFUSE_CORE_FOOTPRINT_HH

#include <string>
#include <vector>

#include "ir/program.hh"
#include "pres/map.hh"
#include "schedule/tree.hh"

namespace polyfuse {
namespace core {

/**
 * The tile map of one band member (eq. 2 with domain constraints):
 * statement instances -> tile coordinates of @p band, using the
 * band's member dims/shifts and tile sizes:
 *     T_k * o_k <= dim_k + shift_k < T_k * (o_k + 1).
 * When the band is untiled (or @p band is null) the result maps to a
 * zero-dimensional tile tuple: the paper's "extension schedule with
 * an empty domain" fallback that fuses without tiling (Sec. VI-A,
 * equake).
 */
pres::BasicMap tileMapFor(const ir::Program &program,
                          const schedule::NodePtr &band,
                          const std::string &stmt,
                          const std::string &tile_tuple);

/** Union of tileMapFor over every member of @p band. */
pres::Map clusterTileMap(const ir::Program &program,
                         const schedule::NodePtr &band,
                         const std::vector<std::string> &stmts,
                         const std::string &tile_tuple);

/**
 * Evaluate a DivBound list at concrete outer values: the max of the
 * lower bounds or min of the upper bounds.
 */
int64_t evalBounds(const std::vector<pres::DivBound> &bounds,
                   const std::vector<int64_t> &in_values,
                   const std::vector<int64_t> &param_values,
                   bool is_lower);

} // namespace core
} // namespace polyfuse

#endif // POLYFUSE_CORE_FOOTPRINT_HH
