/**
 * @file
 * The paper's contribution: compositing loop tiling and fusion by
 * reordering the two transformations.
 *
 *  - Algorithm 1 constructs arbitrary tile shapes: live-out
 *    computation spaces are tiled rectangularly; intermediate spaces
 *    are tiled through extension schedules (eq. 6) derived from the
 *    upwards exposed data footprints (eq. 4) of the live-out tiles.
 *  - Algorithm 2 performs post-tiling fusion by schedule tree
 *    surgery: band replacement, tile/point splitting, extension /
 *    sequence / filter insertion and "skipped" marks (Fig. 5).
 *  - Algorithm 3 generalizes to multiple live-out spaces, rejecting
 *    fusions that would introduce redundant computation (Fig. 6) and
 *    performing fine-grained dead-code elimination.
 */

#ifndef POLYFUSE_CORE_COMPOSE_HH
#define POLYFUSE_CORE_COMPOSE_HH

#include <map>
#include <string>
#include <vector>

#include "deps/dependences.hh"
#include "ir/program.hh"
#include "schedule/fusion.hh"
#include "schedule/tree.hh"

namespace polyfuse {
namespace core {

/** Options controlling the composition. */
struct ComposeOptions
{
    /**
     * Tile sizes for live-out bands, outermost first; padded with the
     * last value when a band is deeper. Empty disables tiling.
     */
    std::vector<int64_t> tileSizes{32, 32};

    /**
     * Hardware parallelism the target needs: 1 for OpenMP CPUs, 2 for
     * the GPU grid (Sec. III-C). Used both as the tilability bar of
     * live-out spaces and as the cap on m in the m > n guard.
     */
    unsigned targetParallelism = 1;

    /**
     * Start-up conservative heuristic producing the separated
     * computation spaces (Sec. III: minfuse for PPCG, smartfuse for
     * the Ascend backend).
     */
    schedule::FusionPolicy startup = schedule::FusionPolicy::Smart;

    /**
     * Second-level tile sizes applied to the point band of every
     * tiled live-out space (multi-level tiling for multi-level
     * hierarchies, e.g. DaVinci's L1 + L0 buffers). Empty disables
     * the second level.
     */
    std::vector<int64_t> innerTileSizes{};

    /**
     * Upper bound on acceptable recomputation: an intermediate
     * statement is fused only when (number of tiles) x (its per-tile
     * footprint volume) / (its domain volume) stays below this.
     * Bounded stencil halos pass; matmul-style full-row footprints
     * (2mm, gemver, covariance) are rejected, keeping the paper's
     * "no redundancy" guarantee (Sec. IV-C) while still enabling
     * overlapped tiling.
     */
    double maxRecompute = 4.0;

    /**
     * Dilate every extension schedule by this many points per
     * dimension (clipped to the statement domain). 0 reproduces the
     * paper's tight tile shapes; 1+ emulates PolyMage's
     * over-approximated overlapped tiles, whose extra recomputation
     * the paper measures against (Sec. VI-A, Camera Pipeline).
     */
    unsigned footprintDilation = 0;
};

/** Result of the composition. */
struct ComposeResult
{
    schedule::ScheduleTree tree;

    /** Group ids per final computation space, execution order. */
    std::vector<std::vector<int>> spaces;

    /** Statements fused into a live-out tile via extension nodes. */
    std::vector<std::string> fusedIntermediates;

    /** Statements whose original subtree is marked "skipped". */
    std::vector<std::string> skippedStatements;

    /** Extension schedule per fused statement (union over tiles). */
    std::map<std::string, pres::Map> extensionSchedules;

    /** True when some fused statement's extension tiles cover a
     *  strict subset of its domain (dead stores eliminated). */
    bool deadCodeEliminated = false;

    /** Live-out spaces that were tiled rectangularly. */
    unsigned tiledLiveOuts = 0;

    /** Compilation time of the composition in milliseconds. */
    double compileMs = 0.0;
};

/**
 * Run the full composition (Algorithm 3) on @p program.
 */
ComposeResult compose(const ir::Program &program,
                      const deps::DependenceGraph &graph,
                      const ComposeOptions &options = {});

/**
 * Same, but start from an already-computed start-up fusion instead of
 * re-running @p options.startup internally. The driver's pass
 * pipeline uses this so the `Fuse` and `Compose` passes are timed
 * separately without doing the start-up clustering twice.
 * @p startup's tree is cloned; the argument is not mutated.
 */
ComposeResult composeFrom(const ir::Program &program,
                          const deps::DependenceGraph &graph,
                          const schedule::FusionResult &startup,
                          const ComposeOptions &options = {});

} // namespace core
} // namespace polyfuse

#endif // POLYFUSE_CORE_COMPOSE_HH
