#include "support/strutil.hh"

#include <cstdarg>
#include <cstdio>

namespace polyfuse {

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : text) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty() || !out.empty())
        out.push_back(cur);
    return out;
}

std::string
trim(const std::string &text)
{
    size_t begin = text.find_first_not_of(" \t\n\r");
    if (begin == std::string::npos)
        return "";
    size_t end = text.find_last_not_of(" \t\n\r");
    return text.substr(begin, end - begin + 1);
}

std::string
strformat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args2;
    va_copy(args2, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out(len, '\0');
    std::vsnprintf(out.data(), len + 1, fmt, args2);
    va_end(args2);
    return out;
}

} // namespace polyfuse
