#include "support/logging.hh"

#include <mutex>
#include <set>

namespace polyfuse {

namespace {
bool warningsEnabled = true;
std::mutex warnMutex;
std::set<std::string> seenWarnings;
} // namespace

void
fatal(const std::string &msg)
{
    throw FatalError(msg);
}

void
panic(const std::string &msg)
{
    throw PanicError(msg);
}

void
warn(const std::string &msg)
{
    std::lock_guard<std::mutex> guard(warnMutex);
    if (!warningsEnabled)
        return;
    if (seenWarnings.insert(msg).second)
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
setWarningsEnabled(bool enabled)
{
    std::lock_guard<std::mutex> guard(warnMutex);
    warningsEnabled = enabled;
}

} // namespace polyfuse
