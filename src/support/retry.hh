/**
 * @file
 * Deterministic retry-with-exponential-backoff policy for *transient*
 * failures (a flaky `cc` fork, a failed dlopen, a full /tmp). The
 * policy is pure arithmetic -- attempt k sleeps
 * min(baseMs * multiplier^k, capMs) milliseconds -- so tests can
 * assert the exact schedule, and the sleep itself is an injectable
 * hook so tests run in microseconds while recording every delay.
 *
 * The decision table the compile service implements with this
 * (DESIGN.md section 11):
 *
 *   transient native-tier failure   retry per this policy, then
 *                                   degrade to the bytecode tier
 *   permanent native-tier failure   degrade immediately, no retry
 *   BudgetExceeded                  never retried here; it rides the
 *                                   driver's strategy-fallback ladder
 *   FatalError / PanicError         never retried; reported as a
 *                                   typed error (the input or the
 *                                   library is wrong -- again would
 *                                   fail again)
 */

#ifndef POLYFUSE_SUPPORT_RETRY_HH
#define POLYFUSE_SUPPORT_RETRY_HH

#include <chrono>
#include <functional>
#include <thread>

namespace polyfuse {

/** Exponential-backoff schedule for transient failures. */
struct RetryPolicy
{
    /** Total attempts, including the first (>= 1; at most
     *  attempts - 1 retries happen). */
    unsigned attempts = 3;

    /** Delay before the first retry, in milliseconds. */
    double baseMs = 1.0;

    /** Ceiling on any single delay, in milliseconds. */
    double capMs = 50.0;

    /** Growth factor between consecutive retries. */
    double multiplier = 2.0;

    /** Test hook: when set, backoff() calls this instead of really
     *  sleeping (the argument is the computed delay in ms). */
    std::function<void(double)> sleep;

    /** The delay before retry number @p retry (0-based), in
     *  milliseconds: min(baseMs * multiplier^retry, capMs).
     *  Deterministic -- no jitter -- so schedules are testable and
     *  fleet behaviour is reproducible. */
    double
    delayMs(unsigned retry) const
    {
        double d = baseMs;
        for (unsigned i = 0; i < retry; ++i) {
            d *= multiplier;
            if (d >= capMs)
                return capMs;
        }
        return d < capMs ? d : capMs;
    }

    /** True when retry number @p retry (0-based) is allowed, i.e.
     *  attempt retry+2 would still be within `attempts`. */
    bool
    shouldRetry(unsigned retry) const
    {
        return retry + 1 < attempts;
    }

    /** Sleep (or invoke the test hook) for delayMs(retry). */
    void
    backoff(unsigned retry) const
    {
        double ms = delayMs(retry);
        if (sleep) {
            sleep(ms);
            return;
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(ms));
    }
};

} // namespace polyfuse

#endif // POLYFUSE_SUPPORT_RETRY_HH
