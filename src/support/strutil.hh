/**
 * @file
 * Small string helpers shared by printers and parsers.
 */

#ifndef POLYFUSE_SUPPORT_STRUTIL_HH
#define POLYFUSE_SUPPORT_STRUTIL_HH

#include <sstream>
#include <string>
#include <vector>

namespace polyfuse {

/** Join the elements of @p items with @p sep. */
template <typename Container>
std::string
join(const Container &items, const std::string &sep)
{
    std::ostringstream os;
    bool first = true;
    for (const auto &item : items) {
        if (!first)
            os << sep;
        os << item;
        first = false;
    }
    return os.str();
}

/** Split @p text on character @p sep (no empty trailing element). */
std::vector<std::string> split(const std::string &text, char sep);

/** Strip leading/trailing whitespace. */
std::string trim(const std::string &text);

/** printf-style formatting into a std::string. */
std::string strformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace polyfuse

#endif // POLYFUSE_SUPPORT_STRUTIL_HH
