/**
 * @file
 * Checked 64-bit integer arithmetic and number-theory helpers used by
 * the Presburger layer. All overflow checks throw PanicError because
 * the library is expected to stay within 64-bit magnitudes for the
 * workloads it models.
 */

#ifndef POLYFUSE_SUPPORT_INTMATH_HH
#define POLYFUSE_SUPPORT_INTMATH_HH

#include <cstdint>
#include <cstdlib>

#include "support/logging.hh"

namespace polyfuse {

/** Add with overflow detection. */
inline int64_t
checkedAdd(int64_t a, int64_t b)
{
    int64_t r;
    if (__builtin_add_overflow(a, b, &r))
        panic("integer overflow in add");
    return r;
}

/** Subtract with overflow detection. */
inline int64_t
checkedSub(int64_t a, int64_t b)
{
    int64_t r;
    if (__builtin_sub_overflow(a, b, &r))
        panic("integer overflow in sub");
    return r;
}

/** Multiply with overflow detection. */
inline int64_t
checkedMul(int64_t a, int64_t b)
{
    int64_t r;
    if (__builtin_mul_overflow(a, b, &r))
        panic("integer overflow in mul");
    return r;
}

/** Greatest common divisor; gcd(0, 0) == 0, result is non-negative. */
inline int64_t
gcd(int64_t a, int64_t b)
{
    if (a < 0)
        a = -a;
    if (b < 0)
        b = -b;
    while (b != 0) {
        int64_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

/** Least common multiple (non-negative inputs expected). */
inline int64_t
lcm(int64_t a, int64_t b)
{
    if (a == 0 || b == 0)
        return 0;
    return checkedMul(a / gcd(a, b), b);
}

/** Floor division: rounds toward negative infinity. */
inline int64_t
floorDiv(int64_t a, int64_t b)
{
    if (b == 0)
        panic("floorDiv by zero");
    int64_t q = a / b;
    int64_t r = a % b;
    if (r != 0 && ((r < 0) != (b < 0)))
        --q;
    return q;
}

/** Ceiling division: rounds toward positive infinity. */
inline int64_t
ceilDiv(int64_t a, int64_t b)
{
    if (b == 0)
        panic("ceilDiv by zero");
    int64_t q = a / b;
    int64_t r = a % b;
    if (r != 0 && ((r < 0) == (b < 0)))
        ++q;
    return q;
}

/** Mathematical modulo: result has the sign of the divisor's magnitude,
 *  i.e. 0 <= result < |b|. */
inline int64_t
floorMod(int64_t a, int64_t b)
{
    return checkedSub(a, checkedMul(floorDiv(a, b), b));
}

} // namespace polyfuse

#endif // POLYFUSE_SUPPORT_INTMATH_HH
