/**
 * @file
 * A small, strict JSON reader for the compile service's request /
 * response payloads. Unlike the write-only emitters scattered through
 * the repo (PassStats::json, the bench tables) this one has to accept
 * *hostile* input -- frames arrive over a socket from arbitrary
 * clients -- so it is a real recursive-descent parser with a depth
 * cap, full escape handling, duplicate-key rejection and precise
 * error offsets, and it never throws: malformed input comes back as
 * `false` plus a diagnostic, which the server turns into a typed
 * `badrequest` response instead of a dead connection.
 *
 * Deliberately not used by perfmodel::TuneDb, whose reader is fused
 * with its fixed schema; this one produces a generic JsonValue tree
 * the protocol layer then validates field by field.
 */

#ifndef POLYFUSE_SUPPORT_JSON_HH
#define POLYFUSE_SUPPORT_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace polyfuse {
namespace json {

/** One parsed JSON value (a tree; objects keep insertion order). */
struct Value
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::vector<Value> array;
    std::vector<std::pair<std::string, Value>> object;

    bool isNull() const { return kind == Kind::Null; }
    bool isBool() const { return kind == Kind::Bool; }
    bool isNumber() const { return kind == Kind::Number; }
    bool isString() const { return kind == Kind::String; }
    bool isArray() const { return kind == Kind::Array; }
    bool isObject() const { return kind == Kind::Object; }

    /** Object member lookup; null when absent or not an object. */
    const Value *get(const std::string &key) const;
};

/**
 * Parse @p text (one complete JSON value, nothing trailing) into
 * @p out. @return false with a diagnostic ("... at offset N") in
 * @p error on malformed input, inputs nested deeper than 64 levels,
 * or duplicate object keys. Never throws.
 */
bool parse(const std::string &text, Value *out,
           std::string *error = nullptr);

/** JSON string escaping (shared spelling with driver::jsonEscape). */
std::string escape(const std::string &s);

} // namespace json
} // namespace polyfuse

#endif // POLYFUSE_SUPPORT_JSON_HH
