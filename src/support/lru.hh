/**
 * @file
 * The least-recently-used map shared by every bounded cache in the
 * repository: the Presburger operation cache (pres/op_cache.hh,
 * capacity counted in entries) and the process-wide kernel cache
 * (exec/kernel_cache.hh, capacity counted in bytes). One policy, one
 * implementation, so eviction behaviour and its counters mean the
 * same thing at both layers.
 *
 * Capacity is expressed in caller-defined *weight* units: every
 * insert carries a weight (1 for entry-counted caches, a byte
 * estimate for byte-counted ones) and eviction pops entries from the
 * cold end until the total weight fits the capacity again. The entry
 * being inserted is bumped to the hot end first, so it is evicted
 * only when it alone exceeds the whole capacity.
 *
 * Not thread-safe; callers serialize (the op cache is per-context,
 * the kernel cache wraps one LruMap per shard in a mutex).
 */

#ifndef POLYFUSE_SUPPORT_LRU_HH
#define POLYFUSE_SUPPORT_LRU_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <utility>

namespace polyfuse {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruMap
{
  public:
    /** @p capacity in weight units; 0 is clamped to 1. */
    explicit LruMap(uint64_t capacity)
        : capacity_(capacity ? capacity : 1)
    {
    }

    /** Entries currently held. */
    size_t size() const { return index_.size(); }

    /** Sum of the held entries' weights. */
    uint64_t weight() const { return weight_; }

    uint64_t capacity() const { return capacity_; }

    /**
     * Look up @p key, bumping it to most-recently-used on a hit.
     * The returned pointer stays valid until the entry is evicted or
     * the map is cleared (recency bumps never move storage).
     */
    Value *
    find(const Key &key)
    {
        auto it = index_.find(key);
        if (it == index_.end())
            return nullptr;
        order_.splice(order_.begin(), order_, it->second);
        return &it->second->value;
    }

    /**
     * Insert (or overwrite) @p key with @p weight units of @p value,
     * bump it to most-recently-used, then evict cold entries until
     * the total weight fits the capacity. @return entries evicted.
     */
    size_t
    insert(const Key &key, Value value, uint64_t entry_weight = 1)
    {
        auto it = index_.find(key);
        if (it != index_.end()) {
            weight_ -= it->second->weight;
            it->second->value = std::move(value);
            it->second->weight = entry_weight;
            weight_ += entry_weight;
            order_.splice(order_.begin(), order_, it->second);
            return evictOver();
        }
        order_.push_front(Node{key, std::move(value), entry_weight});
        index_.emplace(key, order_.begin());
        weight_ += entry_weight;
        return evictOver();
    }

    /** Drop every entry (a reset, not an eviction). */
    void
    clear()
    {
        order_.clear();
        index_.clear();
        weight_ = 0;
    }

    /** Change the capacity, evicting to fit. @return evictions. */
    size_t
    setCapacity(uint64_t capacity)
    {
        capacity_ = capacity ? capacity : 1;
        return evictOver();
    }

    /** Least-recently-used key (must not be empty). */
    const Key &coldestKey() const { return order_.back().key; }

  private:
    struct Node
    {
        Key key;
        Value value;
        uint64_t weight;
    };

    size_t
    evictOver()
    {
        size_t evicted = 0;
        while (weight_ > capacity_ && !order_.empty()) {
            weight_ -= order_.back().weight;
            index_.erase(order_.back().key);
            order_.pop_back();
            ++evicted;
        }
        return evicted;
    }

    uint64_t capacity_;
    uint64_t weight_ = 0;
    std::list<Node> order_; ///< most-recently-used first
    std::unordered_map<Key, typename std::list<Node>::iterator, Hash>
        index_;
};

} // namespace polyfuse

#endif // POLYFUSE_SUPPORT_LRU_HH
