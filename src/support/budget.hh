/**
 * @file
 * Resource budgets and cooperative cancellation for the compile path.
 *
 * The paper's central complaint about pre-tiling fusion is that
 * aggressive fusion explodes compile time; our own Fourier-Motzkin
 * engine has the same failure mode (one pathological workload x
 * strategy pair can consume unbounded rows and wall time). A Budget
 * states how much a compilation may consume; the FM engine, the
 * composition, codegen and every driver pass check it cooperatively
 * and raise BudgetExceeded -- a third error class next to FatalError
 * (user error) and PanicError (library bug) meaning "the input was
 * fine, the work was correct, but it cost more than the caller
 * allowed". The driver reacts by retrying down a cheaper strategy
 * chain, so callers always get a correct (if less optimized) program.
 *
 * A CancelToken is the asynchronous half: batch drivers trip it from
 * another thread and every cooperative check point turns into an
 * immediate BudgetExceeded, so one slow job no longer holds a pool.
 */

#ifndef POLYFUSE_SUPPORT_BUDGET_HH
#define POLYFUSE_SUPPORT_BUDGET_HH

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace polyfuse {

/**
 * Error thrown when an armed Budget is exhausted or a CancelToken is
 * tripped. Deliberately distinct from FatalError/PanicError: the
 * computation was valid, it just cost more than allowed, so the
 * driver may retry with a cheaper strategy instead of reporting a
 * failure.
 */
class BudgetExceeded : public std::runtime_error
{
  public:
    explicit BudgetExceeded(const std::string &msg)
        : std::runtime_error(msg) {}
};

/**
 * Resource ceilings of one compilation. Every field is a limit on the
 * work done *since the budget was armed*; 0 means unlimited. Owned by
 * the driver's CompileContext and enforced inside pres::fm (the only
 * unbounded allocator in the compiler), core::compose/footprint,
 * codegen and each Pipeline pass.
 */
struct Budget
{
    /** Wall-clock deadline in milliseconds (steady clock). */
    double wallMs = 0;

    /** Ceiling on FM column eliminations. */
    uint64_t fmEliminations = 0;

    /** Ceiling on cumulative constraint rows visited by eliminations. */
    uint64_t fmRows = 0;

    /** Ceiling on rows alive in any single constraint system (cuts
     *  the quadratic FM combination blow-up mid-explosion). */
    uint64_t fmLiveRows = 0;

    /** Ceiling on bytes of constraint-row storage the FM engine
     *  materializes (the engine's arena proxy). */
    uint64_t allocBytes = 0;

    /** True when every ceiling is disabled. */
    bool
    unlimited() const
    {
        return wallMs <= 0 && fmEliminations == 0 && fmRows == 0 &&
               fmLiveRows == 0 && allocBytes == 0;
    }
};

/**
 * A cooperative cancellation flag. cancel() may be called from any
 * thread; observers poll cancelled() at the same check points that
 * enforce budgets. Tokens chain: a per-job token whose parent is the
 * batch-level token reports cancelled when either is tripped, which
 * is how compileBatch aborts a whole fleet with one call.
 */
class CancelToken
{
  public:
    CancelToken() = default;
    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Trip the token (sticky until reset()). Thread-safe. */
    void
    cancel() noexcept
    {
        flag_.store(true, std::memory_order_relaxed);
    }

    /** True when this token or any parent was tripped. */
    bool
    cancelled() const noexcept
    {
        if (flag_.load(std::memory_order_relaxed))
            return true;
        const CancelToken *p = parent_;
        return p && p->cancelled();
    }

    /** Clear this token's own flag (the parent is untouched). */
    void
    reset() noexcept
    {
        flag_.store(false, std::memory_order_relaxed);
    }

    /** Observe @p parent as well (null detaches). Set before the
     *  token is shared between threads; not itself synchronized. */
    void
    chainTo(const CancelToken *parent) noexcept
    {
        parent_ = parent;
    }

  private:
    std::atomic<bool> flag_{false};
    const CancelToken *parent_ = nullptr;
};

} // namespace polyfuse

#endif // POLYFUSE_SUPPORT_BUDGET_HH
