#include "support/thread_pool.hh"

#include <algorithm>
#include <chrono>

namespace polyfuse {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreads();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    workReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

bool
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (draining_) {
            ++rejected_;
            return false; // `job` destroyed here: RAII guards fire
        }
        queue_.push_back(std::move(job));
        ++pending_;
    }
    workReady_.notify_one();
    return true;
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return pending_ == 0; });
}

ThreadPool::DrainResult
ThreadPool::drain(double deadlineMs)
{
    DrainResult result;
    std::deque<std::function<void()>> dropped;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        draining_ = true;
        auto done = [this] { return pending_ == 0; };
        if (deadlineMs <= 0) {
            allDone_.wait(lock, done);
        } else {
            allDone_.wait_for(
                lock,
                std::chrono::duration<double, std::milli>(deadlineMs),
                done);
        }
        result.abandoned = queue_.size();
        result.completed = pending_ == 0;
        if (!queue_.empty()) {
            // Destroy abandoned jobs outside the lock: their RAII
            // guards may call back into thread-safe pool accessors.
            dropped.swap(queue_);
            pending_ -= dropped.size();
            if (pending_ == 0)
                allDone_.notify_all();
        }
    }
    dropped.clear();
    return result;
}

bool
ThreadPool::draining() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return draining_;
}

size_t
ThreadPool::rejectedCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rejected_;
}

void
ThreadPool::parallelFor(int64_t begin, int64_t end, int64_t grain,
                        const std::function<void(int64_t, int64_t)> &fn)
{
    if (begin >= end)
        return;
    int64_t n = end - begin;
    if (grain <= 0) {
        // A few chunks per worker so uneven chunk costs rebalance.
        int64_t target = int64_t(size()) * 4;
        grain = (n + target - 1) / target;
        if (grain < 1)
            grain = 1;
    }

    // Capture an escaped exception exactly like workerLoop does, so
    // parallelFor failures surface through failureCount()/
    // takeFailures() whichever thread ran the chunk.
    auto guarded = [this, &fn](int64_t lo, int64_t hi) {
        std::string failure;
        bool failed = false;
        try {
            fn(lo, hi);
        } catch (const std::exception &e) {
            failed = true;
            failure = e.what();
        } catch (...) {
            failed = true;
            failure = "non-std exception escaped a parallelFor chunk";
        }
        if (failed) {
            std::lock_guard<std::mutex> lock(mutex_);
            failures_.push_back(std::move(failure));
        }
    };

    if (n <= grain) {
        guarded(begin, end);
        return;
    }

    // Per-call completion state: only this call's chunks are waited
    // on, so concurrent submit() users are unaffected.
    struct Sync
    {
        std::mutex m;
        std::condition_variable done;
        int64_t left = 0;
    } sync;
    sync.left = (n + grain - 1) / grain;

    for (int64_t lo = begin; lo < end; lo += grain) {
        int64_t hi = std::min(lo + grain, end);
        bool queued = submit([&guarded, &sync, lo, hi] {
            guarded(lo, hi);
            std::lock_guard<std::mutex> lock(sync.m);
            if (--sync.left == 0)
                sync.done.notify_all();
        });
        if (!queued) {
            // Intake closed by drain(): run the chunk inline so the
            // index space still tears nowhere and sync.left drains.
            guarded(lo, hi);
            std::lock_guard<std::mutex> lock(sync.m);
            if (--sync.left == 0)
                sync.done.notify_all();
        }
    }
    std::unique_lock<std::mutex> lock(sync.m);
    sync.done.wait(lock, [&sync] { return sync.left == 0; });
}

unsigned
ThreadPool::defaultThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

size_t
ThreadPool::failureCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return failures_.size();
}

std::vector<std::string>
ThreadPool::takeFailures()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.swap(failures_);
    return out;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this] {
                return stop_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stop_ set and nothing left to drain
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        // Contain escaped exceptions: a throwing job would otherwise
        // std::terminate the whole process from the worker thread.
        std::string failure;
        bool failed = false;
        try {
            job();
        } catch (const std::exception &e) {
            failed = true;
            failure = e.what();
        } catch (...) {
            failed = true;
            failure = "non-std exception escaped a pool job";
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (failed)
                failures_.push_back(std::move(failure));
            if (--pending_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace polyfuse
