#include "support/thread_pool.hh"

namespace polyfuse {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = defaultThreads();
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    workReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(job));
        ++pending_;
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return pending_ == 0; });
}

unsigned
ThreadPool::defaultThreads()
{
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
}

size_t
ThreadPool::failureCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return failures_.size();
}

std::vector<std::string>
ThreadPool::takeFailures()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.swap(failures_);
    return out;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this] {
                return stop_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stop_ set and nothing left to drain
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        // Contain escaped exceptions: a throwing job would otherwise
        // std::terminate the whole process from the worker thread.
        std::string failure;
        bool failed = false;
        try {
            job();
        } catch (const std::exception &e) {
            failed = true;
            failure = e.what();
        } catch (...) {
            failed = true;
            failure = "non-std exception escaped a pool job";
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (failed)
                failures_.push_back(std::move(failure));
            if (--pending_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace polyfuse
