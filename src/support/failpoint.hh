/**
 * @file
 * Fault-injection harness: named failpoints compiled into the binary
 * always (no build flag), disarmed by default, armed per site either
 * programmatically (tests) or via the POLYFUSE_FAILPOINTS environment
 * variable / the CLI's --failpoints flag:
 *
 *   POLYFUSE_FAILPOINTS='core.compose=budget;pres.eliminateCol=fatal:100'
 *
 * A site spec is `site=action[:skip]` where action is one of
 * fatal | panic | budget | badalloc | error | off and `skip` lets that
 * many hits pass before the site starts firing (it then fires on
 * every hit until cleared). Specs are separated by ';' or ','.
 *
 * Sites live at the compiler's failure-prone seams -- the FM engine
 * (`pres.eliminateCol`, `pres.simplifyRows`), the parser
 * (`pres.parse`), the composition (`core.compose`,
 * `core.footprint`), codegen (`codegen.generate`), the parallel
 * executor's planning steps (`exec.par.spawn`,
 * `exec.par.tilegraph` -- both fire before any tile runs, so
 * degrading to sequential is deterministic) and per batch job
 * (`driver.job.<name>`) -- so tests can prove that every guard,
 * fallback step and batch-isolation property actually holds under
 * injected budget exhaustion, allocation failure and escaped
 * exceptions.
 *
 * The disarmed fast path is one relaxed atomic load; arming any site
 * switches every hit() to the locked slow path, so keep failpoints
 * cleared outside fault-injection runs.
 */

#ifndef POLYFUSE_SUPPORT_FAILPOINT_HH
#define POLYFUSE_SUPPORT_FAILPOINT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace polyfuse {
namespace failpoints {

/** What an armed failpoint does when it fires. */
enum class Action
{
    Off,      ///< disarmed (clearing spelling in specs)
    Fatal,    ///< throw FatalError
    Panic,    ///< throw PanicError
    Budget,   ///< throw BudgetExceeded
    BadAlloc, ///< throw std::bad_alloc (allocation failure)
    Error,    ///< throw std::runtime_error (an "unknown" escapee)
};

/** Arm @p site with @p action; the first @p skip hits pass through.
 *  Action::Off clears the site. Thread-safe. */
void set(const std::string &site, Action action, uint64_t skip = 0);

/** Disarm @p site. */
void clear(const std::string &site);

/** Disarm every site (tests call this in teardown). */
void clearAll();

/** Number of currently armed sites. */
size_t armedCount();

/** The armed sites, sorted (for diagnostics). */
std::vector<std::string> armedSites();

/**
 * Parse and apply a spec string (see file comment). @return false,
 * with a diagnostic in @p error, when the spec is malformed; sites
 * parsed before the error are still applied.
 */
bool parseSpec(const std::string &spec, std::string *error = nullptr);

/**
 * A failpoint site: throws per the armed action, or returns
 * immediately when nothing is armed. The POLYFUSE_FAILPOINTS
 * environment variable is loaded (once) on the first hit.
 */
void hit(const char *site);

/** hit() for dynamically composed site names. */
inline void
hit(const std::string &site)
{
    hit(site.c_str());
}

} // namespace failpoints
} // namespace polyfuse

#endif // POLYFUSE_SUPPORT_FAILPOINT_HH
