/**
 * @file
 * An inline-storage small vector for the compiler's hot rows.
 *
 * Every Presburger constraint row used to heap-allocate a
 * std::vector<int64_t>; profiling the FM engine shows that per-row
 * malloc (and the matching free on every erase/temporary) dominates
 * elimination time on the registry workloads. SmallVec<T, N> keeps up
 * to N elements in the object itself and only spills to the heap
 * beyond that, so the common row (dims + params + constant <= N
 * columns) costs zero allocations while arbitrarily wide rows keep
 * working.
 *
 * The element type must be trivially copyable (rows are int64_t);
 * this keeps growth/copy/move as memcpy and the whole class simple
 * enough to reason about under ASAN/TSAN.
 */

#ifndef POLYFUSE_SUPPORT_SMALL_VEC_HH
#define POLYFUSE_SUPPORT_SMALL_VEC_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <iterator>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace polyfuse {
namespace support {

namespace smallvec_detail {

/**
 * Test hook: when set (via ScopedForceHeap below), every SmallVec
 * constructed on this thread allocates its storage on the heap even
 * when the contents would fit inline. Lets the equivalence tests
 * prove that inline and spilled storage behave identically, and gives
 * the benchmarks a same-binary "small-vec off" baseline approximating
 * the old one-malloc-per-row std::vector rows. Thread-local, so
 * concurrent compilations are unaffected (same idiom as the pres
 * layer's thread-default context).
 */
inline thread_local bool t_force_heap = false;

} // namespace smallvec_detail

/** RAII guard forcing heap storage for SmallVecs on this thread. */
class ScopedForceHeap
{
  public:
    ScopedForceHeap() : prev_(smallvec_detail::t_force_heap)
    {
        smallvec_detail::t_force_heap = true;
    }
    ~ScopedForceHeap() { smallvec_detail::t_force_heap = prev_; }
    ScopedForceHeap(const ScopedForceHeap &) = delete;
    ScopedForceHeap &operator=(const ScopedForceHeap &) = delete;

  private:
    bool prev_;
};

/** A vector with N elements of inline storage, heap spill beyond. */
template <typename T, unsigned N>
class SmallVec
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "SmallVec is restricted to trivially copyable "
                  "elements (rows of integers)");
    static_assert(N > 0, "inline capacity must be positive");

  public:
    using value_type = T;
    using iterator = T *;
    using const_iterator = const T *;
    using size_type = size_t;

    SmallVec() { initStorage(0); }

    explicit SmallVec(size_t n, T value = T{})
    {
        initStorage(n);
        size_ = n;
        std::fill(data_, data_ + n, value);
    }

    SmallVec(std::initializer_list<T> init)
    {
        initStorage(init.size());
        size_ = init.size();
        std::copy(init.begin(), init.end(), data_);
    }

    /** Iterator-pair construction; constrained so SmallVec(n, value)
     *  never lands here when both arguments are integers. */
    template <typename It,
              typename =
                  typename std::iterator_traits<It>::difference_type>
    SmallVec(It first, It last)
    {
        size_t n = size_t(std::distance(first, last));
        initStorage(n);
        size_ = n;
        std::copy(first, last, data_);
    }

    SmallVec(const SmallVec &o)
    {
        initStorage(o.size_);
        size_ = o.size_;
        std::memcpy(data_, o.data_, size_ * sizeof(T));
    }

    SmallVec(SmallVec &&o) noexcept
    {
        stealFrom(o);
    }

    SmallVec &
    operator=(const SmallVec &o)
    {
        if (this == &o)
            return *this;
        assignRange(o.data_, o.size_);
        return *this;
    }

    SmallVec &
    operator=(SmallVec &&o) noexcept
    {
        if (this == &o)
            return *this;
        if (onHeap())
            delete[] data_;
        stealFrom(o);
        return *this;
    }

    ~SmallVec()
    {
        if (onHeap())
            delete[] data_;
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    size_t capacity() const { return cap_; }

    /** True while the elements live in the inline buffer. */
    bool isInline() const { return !onHeap(); }

    T *data() { return data_; }
    const T *data() const { return data_; }

    iterator begin() { return data_; }
    iterator end() { return data_ + size_; }
    const_iterator begin() const { return data_; }
    const_iterator end() const { return data_ + size_; }

    T &operator[](size_t i) { return data_[i]; }
    const T &operator[](size_t i) const { return data_[i]; }

    T &front() { return data_[0]; }
    const T &front() const { return data_[0]; }
    T &back() { return data_[size_ - 1]; }
    const T &back() const { return data_[size_ - 1]; }

    void
    clear()
    {
        size_ = 0;
    }

    void
    reserve(size_t n)
    {
        if (n > cap_)
            grow(n);
    }

    void
    resize(size_t n, T value = T{})
    {
        if (n > cap_)
            grow(n);
        if (n > size_)
            std::fill(data_ + size_, data_ + n, value);
        size_ = n;
    }

    void
    push_back(T value)
    {
        if (size_ == cap_)
            grow(size_ + 1);
        data_[size_++] = value;
    }

    void
    pop_back()
    {
        --size_;
    }

    iterator
    insert(const_iterator pos, T value)
    {
        return insert(pos, size_t(1), value);
    }

    iterator
    insert(const_iterator pos, size_t count, T value)
    {
        size_t at = size_t(pos - data_);
        if (size_ + count > cap_)
            grow(size_ + count);
        std::memmove(data_ + at + count, data_ + at,
                     (size_ - at) * sizeof(T));
        std::fill(data_ + at, data_ + at + count, value);
        size_ += count;
        return data_ + at;
    }

    iterator
    erase(const_iterator pos)
    {
        return erase(pos, pos + 1);
    }

    iterator
    erase(const_iterator first, const_iterator last)
    {
        size_t at = size_t(first - data_);
        size_t count = size_t(last - first);
        std::memmove(data_ + at, data_ + at + count,
                     (size_ - at - count) * sizeof(T));
        size_ -= count;
        return data_ + at;
    }

    bool
    operator==(const SmallVec &o) const
    {
        return size_ == o.size_ &&
               std::equal(data_, data_ + size_, o.data_);
    }

    bool operator!=(const SmallVec &o) const { return !(*this == o); }

    /** Convenience comparison against std::vector (tests mostly). */
    template <typename Alloc>
    bool
    operator==(const std::vector<T, Alloc> &o) const
    {
        return size_ == o.size() &&
               std::equal(data_, data_ + size_, o.begin());
    }

    template <typename Alloc>
    bool
    operator!=(const std::vector<T, Alloc> &o) const
    {
        return !(*this == o);
    }

    /** Lexicographic, matching std::vector ordering semantics. */
    bool
    operator<(const SmallVec &o) const
    {
        return std::lexicographical_compare(data_, data_ + size_,
                                            o.data_,
                                            o.data_ + o.size_);
    }

  private:
    T *data_ = nullptr;
    uint32_t size_ = 0;
    uint32_t cap_ = 0;
    alignas(T) unsigned char inline_[N * sizeof(T)];

    T *inlineBuf() { return reinterpret_cast<T *>(inline_); }
    const T *
    inlineBuf() const
    {
        return reinterpret_cast<const T *>(inline_);
    }

    bool onHeap() const { return data_ != inlineBuf(); }

    void
    initStorage(size_t n)
    {
        if (n > N || smallvec_detail::t_force_heap) {
            size_t cap = n > N ? n : N;
            data_ = new T[cap];
            cap_ = uint32_t(cap);
        } else {
            data_ = inlineBuf();
            cap_ = N;
        }
        size_ = 0;
    }

    /** Move o's storage into *this (assumes our heap, if any, is
     *  already released). Leaves o empty but valid. */
    void
    stealFrom(SmallVec &o) noexcept
    {
        if (o.onHeap()) {
            data_ = o.data_;
            cap_ = o.cap_;
            size_ = o.size_;
        } else {
            data_ = inlineBuf();
            cap_ = N;
            size_ = o.size_;
            std::memcpy(data_, o.data_, size_ * sizeof(T));
        }
        o.data_ = o.inlineBuf();
        o.cap_ = N;
        o.size_ = 0;
    }

    void
    assignRange(const T *src, size_t n)
    {
        if (n > cap_) {
            // src can never alias our storage here: aliasing implies
            // n <= size_ <= cap_.
            T *fresh = new T[n];
            std::memcpy(fresh, src, n * sizeof(T));
            if (onHeap())
                delete[] data_;
            data_ = fresh;
            cap_ = uint32_t(n);
        } else {
            std::memmove(data_, src, n * sizeof(T));
        }
        size_ = uint32_t(n);
    }

    void
    grow(size_t need)
    {
        size_t cap = cap_ ? cap_ : 1;
        while (cap < need)
            cap *= 2;
        T *fresh = new T[cap];
        std::memcpy(fresh, data_, size_ * sizeof(T));
        if (onHeap())
            delete[] data_;
        data_ = fresh;
        cap_ = uint32_t(cap);
    }
};

} // namespace support
} // namespace polyfuse

#endif // POLYFUSE_SUPPORT_SMALL_VEC_HH
