/**
 * @file
 * A fixed-size thread pool for batch compilation: one shared FIFO
 * queue, no work stealing, no task dependencies. Deliberately small —
 * the compiler's parallel units (one Pipeline::run per job) are
 * coarse enough that a single mutex-protected queue never contends.
 *
 * Jobs must not touch shared mutable state; the pres layer is
 * re-entrant because its instrumentation lives in per-thread /
 * per-CompileContext PresCtx state, which is what makes fanning
 * Pipeline::run out over this pool safe.
 */

#ifndef POLYFUSE_SUPPORT_THREAD_POOL_HH
#define POLYFUSE_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace polyfuse {

/** Fixed pool of worker threads draining one FIFO queue. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (>= 1; 0 means defaultThreads()). */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p job; it runs on some worker in FIFO order. The job
     *  must not throw (wrap and capture errors at the call site). */
    void submit(std::function<void()> job);

    /** Block until every submitted job has finished running. */
    void wait();

    /** Number of worker threads. */
    unsigned size() const { return unsigned(workers_.size()); }

    /** Hardware concurrency, with a floor of 1 when unknown. */
    static unsigned defaultThreads();

  private:
    void workerLoop();

    std::mutex mutex_;
    std::condition_variable workReady_;  ///< queue non-empty or stop
    std::condition_variable allDone_;    ///< pending_ reached zero
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    size_t pending_ = 0; ///< queued + currently running jobs
    bool stop_ = false;
};

} // namespace polyfuse

#endif // POLYFUSE_SUPPORT_THREAD_POOL_HH
