/**
 * @file
 * A fixed-size thread pool for batch compilation: one shared FIFO
 * queue, no work stealing, no task dependencies. Deliberately small —
 * the compiler's parallel units (one Pipeline::run per job) are
 * coarse enough that a single mutex-protected queue never contends.
 *
 * Jobs must not touch shared mutable state; the pres layer is
 * re-entrant because its instrumentation lives in per-thread /
 * per-CompileContext PresCtx state, which is what makes fanning
 * Pipeline::run out over this pool safe.
 *
 * An exception escaping a job does NOT kill the process: the worker
 * captures it, records the message (takeFailures()), and keeps
 * draining the queue. Callers that care about per-job errors should
 * still capture them at the call site (compileBatch does) -- the pool
 * only guarantees containment.
 */

#ifndef POLYFUSE_SUPPORT_THREAD_POOL_HH
#define POLYFUSE_SUPPORT_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace polyfuse {

/** Fixed pool of worker threads draining one FIFO queue. */
class ThreadPool
{
  public:
    /** Spawn @p threads workers (>= 1; 0 means defaultThreads()). */
    explicit ThreadPool(unsigned threads);

    /** Drains the queue, then joins every worker. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p job; it runs on some worker in FIFO order. An
     *  exception escaping the job is captured and recorded (see
     *  takeFailures()), never propagated out of the worker.
     *  @return false (the job is destroyed, not run, and counted by
     *  rejectedCount()) once drain() has stopped intake. */
    bool submit(std::function<void()> job);

    /** Block until every submitted job has finished running. */
    void wait();

    /** What drain() did. */
    struct DrainResult
    {
        /** Every in-flight and queued job finished inside the
         *  deadline (nothing was abandoned). */
        bool completed = false;

        /** Queued jobs destroyed unrun when the deadline expired.
         *  Jobs already *running* at the deadline are not abandoned
         *  -- they run to completion (interrupt them cooperatively,
         *  e.g. via a CancelToken, before calling drain). */
        size_t abandoned = 0;
    };

    /**
     * Graceful shutdown: permanently stop intake (later submit()s
     * are rejected), wait up to @p deadlineMs (<= 0: forever) for
     * every pending job to finish, then destroy whatever is still
     * queued. Destroying a job runs the destructors of its captured
     * state, so RAII completion guards in the closures still fire --
     * which is how the compile service answers abandoned requests
     * with a typed `shutdown` error instead of silence. Idempotent;
     * the destructor remains the final join.
     */
    DrainResult drain(double deadlineMs);

    /** True once drain() has been called (intake is closed). */
    bool draining() const;

    /** Jobs rejected by submit() since drain() closed intake. */
    size_t rejectedCount() const;

    /**
     * Blocking data-parallel loop: split [begin, end) into chunks of
     * at most @p grain indices (grain <= 0 picks a chunk size that
     * gives every worker several chunks), run
     * `fn(chunkBegin, chunkEnd)` on the pool, and return when every
     * chunk has finished. Only this call's chunks are waited on, so
     * parallelFor composes with unrelated submit() traffic. An
     * exception escaping @p fn is captured into the same
     * failureCount()/takeFailures() path submit() jobs use; the
     * remaining chunks still run (no tearing of the index space).
     * When the range is empty nothing runs; a single-chunk range runs
     * inline on the calling thread (exceptions are then captured the
     * same way, never thrown).
     */
    void parallelFor(int64_t begin, int64_t end, int64_t grain,
                     const std::function<void(int64_t, int64_t)> &fn);

    /** Number of jobs whose exception the pool has captured since
     *  construction or the last takeFailures(). */
    size_t failureCount() const;

    /** Drain and return the captured failure messages (job order of
     *  capture, which is nondeterministic across workers). */
    std::vector<std::string> takeFailures();

    /** Number of worker threads. */
    unsigned size() const { return unsigned(workers_.size()); }

    /** Hardware concurrency, with a floor of 1 when unknown. */
    static unsigned defaultThreads();

  private:
    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable workReady_;  ///< queue non-empty or stop
    std::condition_variable allDone_;    ///< pending_ reached zero
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::vector<std::string> failures_;  ///< escaped-exception log
    size_t pending_ = 0; ///< queued + currently running jobs
    size_t rejected_ = 0; ///< submits refused after drain()
    bool stop_ = false;
    bool draining_ = false; ///< intake closed by drain()
};

} // namespace polyfuse

#endif // POLYFUSE_SUPPORT_THREAD_POOL_HH
