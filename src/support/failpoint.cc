#include "support/failpoint.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>

#include "support/budget.hh"
#include "support/logging.hh"

namespace polyfuse {
namespace failpoints {

namespace {

struct SiteState
{
    Action action = Action::Off;
    uint64_t skip = 0;  ///< hits still allowed to pass
};

struct Registry
{
    std::mutex mutex;
    std::map<std::string, SiteState> sites;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

// Fast-path gate: hit() returns immediately while this is zero.
std::atomic<size_t> g_armed{0};

void
loadEnvOnce()
{
    static const bool loaded = [] {
        const char *spec = std::getenv("POLYFUSE_FAILPOINTS");
        if (spec && *spec) {
            std::string error;
            if (!parseSpec(spec, &error))
                warn("POLYFUSE_FAILPOINTS: " + error);
        }
        return true;
    }();
    (void)loaded;
}

[[noreturn]] void
fire(const std::string &site, Action action)
{
    switch (action) {
      case Action::Fatal:
        fatal("failpoint '" + site + "' fired");
      case Action::Panic:
        panic("failpoint '" + site + "' fired");
      case Action::Budget:
        throw BudgetExceeded("failpoint '" + site +
                             "' exhausted the budget");
      case Action::BadAlloc:
        throw std::bad_alloc();
      case Action::Error:
        throw std::runtime_error("failpoint '" + site + "' fired");
      case Action::Off:
        break;
    }
    panic("failpoint fire: disarmed site");
}

bool
parseAction(const std::string &word, Action &out)
{
    if (word == "fatal") out = Action::Fatal;
    else if (word == "panic") out = Action::Panic;
    else if (word == "budget") out = Action::Budget;
    else if (word == "badalloc") out = Action::BadAlloc;
    else if (word == "error") out = Action::Error;
    else if (word == "off") out = Action::Off;
    else return false;
    return true;
}

} // namespace

void
set(const std::string &site, Action action, uint64_t skip)
{
    // No loadEnvOnce() here: parseSpec (which env loading runs) calls
    // set(), and recursing into the magic static would deadlock.
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto it = r.sites.find(site);
    if (action == Action::Off) {
        if (it != r.sites.end()) {
            r.sites.erase(it);
            g_armed.fetch_sub(1, std::memory_order_relaxed);
        }
        return;
    }
    if (it == r.sites.end()) {
        r.sites.emplace(site, SiteState{action, skip});
        g_armed.fetch_add(1, std::memory_order_relaxed);
    } else {
        it->second = SiteState{action, skip};
    }
}

void
clear(const std::string &site)
{
    set(site, Action::Off);
}

void
clearAll()
{
    // Load the environment first so its sites are cleared too rather
    // than popping up on a later hit().
    loadEnvOnce();
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    g_armed.fetch_sub(r.sites.size(), std::memory_order_relaxed);
    r.sites.clear();
}

size_t
armedCount()
{
    loadEnvOnce();
    return g_armed.load(std::memory_order_relaxed);
}

std::vector<std::string>
armedSites()
{
    loadEnvOnce();
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<std::string> out;
    out.reserve(r.sites.size());
    for (const auto &[name, state] : r.sites)
        out.push_back(name);
    return out;
}

bool
parseSpec(const std::string &spec, std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    size_t pos = 0;
    while (pos < spec.size()) {
        size_t end = spec.find_first_of(";,", pos);
        if (end == std::string::npos)
            end = spec.size();
        std::string item = spec.substr(pos, end - pos);
        pos = end + 1;
        // Trim surrounding spaces.
        size_t a = item.find_first_not_of(" \t");
        size_t b = item.find_last_not_of(" \t");
        if (a == std::string::npos)
            continue; // empty item (trailing separator)
        item = item.substr(a, b - a + 1);

        size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0)
            return fail("bad failpoint item '" + item +
                        "' (want site=action[:skip])");
        std::string site = item.substr(0, eq);
        std::string rhs = item.substr(eq + 1);
        uint64_t skip = 0;
        size_t colon = rhs.find(':');
        if (colon != std::string::npos) {
            std::string num = rhs.substr(colon + 1);
            rhs = rhs.substr(0, colon);
            char *endp = nullptr;
            unsigned long long v =
                std::strtoull(num.c_str(), &endp, 10);
            if (num.empty() || !endp || *endp != '\0')
                return fail("bad failpoint skip count '" + num +
                            "' in '" + item + "'");
            skip = v;
        }
        Action action;
        if (!parseAction(rhs, action))
            return fail("unknown failpoint action '" + rhs +
                        "' in '" + item + "'");
        set(site, action, skip);
    }
    return true;
}

void
hit(const char *site)
{
    loadEnvOnce();
    if (g_armed.load(std::memory_order_relaxed) == 0)
        return;
    Action action;
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        auto it = r.sites.find(site);
        if (it == r.sites.end())
            return;
        if (it->second.skip > 0) {
            --it->second.skip;
            return;
        }
        action = it->second.action;
    }
    fire(site, action);
}

} // namespace failpoints
} // namespace polyfuse
