/**
 * @file
 * Wall-clock timer used by compile-time and execution benchmarks.
 */

#ifndef POLYFUSE_SUPPORT_TIMER_HH
#define POLYFUSE_SUPPORT_TIMER_HH

#include <chrono>

namespace polyfuse {

// Timing must never jump backwards with wall-clock (NTP) adjustments:
// per-pass durations and benchmark numbers are computed as differences
// of these time points, so the clock has to be monotonic.
static_assert(std::chrono::steady_clock::is_steady,
              "Timer requires a monotonic clock");

/** Simple RAII-free stopwatch over the steady clock. */
class Timer
{
  public:
    Timer() { reset(); }

    /** Restart the measurement window. */
    void reset() { start_ = std::chrono::steady_clock::now(); }

    /** Elapsed seconds since construction or the last reset(). */
    double
    seconds() const
    {
        auto now = std::chrono::steady_clock::now();
        return std::chrono::duration<double>(now - start_).count();
    }

    /** Elapsed milliseconds. */
    double milliseconds() const { return seconds() * 1e3; }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace polyfuse

#endif // POLYFUSE_SUPPORT_TIMER_HH
