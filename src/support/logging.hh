/**
 * @file
 * Diagnostic helpers in the spirit of gem5's logging.hh.
 *
 * fatal()  -- the user asked for something the library cannot do
 *             (bad configuration, unsupported input); throws
 *             FatalError so callers/tests can observe it.
 * panic()  -- an internal invariant was violated (a library bug);
 *             throws PanicError.
 * warn()   -- something is handled conservatively; execution goes on.
 */

#ifndef POLYFUSE_SUPPORT_LOGGING_HH
#define POLYFUSE_SUPPORT_LOGGING_HH

#include <cstdio>
#include <stdexcept>
#include <string>

namespace polyfuse {

/** Error thrown for user-caused conditions (see file comment). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Error thrown for internal invariant violations (library bugs). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg) {}
};

/** Abort the current operation because of a user-level error. */
[[noreturn]] void fatal(const std::string &msg);

/** Abort the current operation because of an internal bug. */
[[noreturn]] void panic(const std::string &msg);

/** Emit a non-fatal warning to stderr (deduplicated per message). */
void warn(const std::string &msg);

/** Enable/disable warning output globally (tests silence it). */
void setWarningsEnabled(bool enabled);

} // namespace polyfuse

#endif // POLYFUSE_SUPPORT_LOGGING_HH
