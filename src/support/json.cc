#include "support/json.hh"

#include <cstdio>
#include <cstdlib>

namespace polyfuse {
namespace json {

namespace {

constexpr int kMaxDepth = 64;

struct Parser
{
    const std::string &s;
    size_t pos = 0;
    std::string error;

    explicit Parser(const std::string &text) : s(text) {}

    bool
    fail(const std::string &msg)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), " at offset %zu", pos);
        error = msg + buf;
        return false;
    }

    void
    ws()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        size_t n = 0;
        while (word[n])
            ++n;
        if (s.compare(pos, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos += n;
        return true;
    }

    /** Append codepoint @p cp as UTF-8. */
    static void
    appendUtf8(std::string *out, uint32_t cp)
    {
        if (cp < 0x80) {
            out->push_back(char(cp));
        } else if (cp < 0x800) {
            out->push_back(char(0xc0 | (cp >> 6)));
            out->push_back(char(0x80 | (cp & 0x3f)));
        } else {
            out->push_back(char(0xe0 | (cp >> 12)));
            out->push_back(char(0x80 | ((cp >> 6) & 0x3f)));
            out->push_back(char(0x80 | (cp & 0x3f)));
        }
    }

    bool
    parseString(std::string *out)
    {
        if (pos >= s.size() || s[pos] != '"')
            return fail("expected string");
        ++pos;
        out->clear();
        while (pos < s.size()) {
            unsigned char c = s[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out->push_back(char(c));
                ++pos;
                continue;
            }
            ++pos; // backslash
            if (pos >= s.size())
                return fail("truncated escape");
            char e = s[pos++];
            switch (e) {
              case '"': out->push_back('"'); break;
              case '\\': out->push_back('\\'); break;
              case '/': out->push_back('/'); break;
              case 'b': out->push_back('\b'); break;
              case 'f': out->push_back('\f'); break;
              case 'n': out->push_back('\n'); break;
              case 'r': out->push_back('\r'); break;
              case 't': out->push_back('\t'); break;
              case 'u': {
                if (pos + 4 > s.size())
                    return fail("truncated \\u escape");
                uint32_t cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = s[pos++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= uint32_t(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= uint32_t(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= uint32_t(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // Surrogates would need pairing; the protocol never
                // emits them, so refuse rather than mis-decode.
                if (cp >= 0xd800 && cp <= 0xdfff)
                    return fail("surrogate \\u escape unsupported");
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(double *out)
    {
        size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        while (pos < s.size() &&
               ((s[pos] >= '0' && s[pos] <= '9') || s[pos] == '.' ||
                s[pos] == 'e' || s[pos] == 'E' || s[pos] == '+' ||
                s[pos] == '-'))
            ++pos;
        if (pos == start) {
            pos = start;
            return fail("expected number");
        }
        std::string tok = s.substr(start, pos - start);
        char *end = nullptr;
        double v = std::strtod(tok.c_str(), &end);
        if (!end || *end != '\0') {
            pos = start;
            return fail("malformed number");
        }
        *out = v;
        return true;
    }

    bool
    parseValue(Value *out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        ws();
        if (pos >= s.size())
            return fail("unexpected end of input");
        char c = s[pos];
        if (c == '"') {
            out->kind = Value::Kind::String;
            return parseString(&out->string);
        }
        if (c == '{') {
            ++pos;
            out->kind = Value::Kind::Object;
            ws();
            if (pos < s.size() && s[pos] == '}') {
                ++pos;
                return true;
            }
            while (true) {
                ws();
                std::string key;
                if (!parseString(&key))
                    return false;
                for (const auto &kv : out->object)
                    if (kv.first == key)
                        return fail("duplicate key \"" + key + "\"");
                ws();
                if (pos >= s.size() || s[pos] != ':')
                    return fail("expected ':'");
                ++pos;
                Value v;
                if (!parseValue(&v, depth + 1))
                    return false;
                out->object.emplace_back(std::move(key),
                                         std::move(v));
                ws();
                if (pos < s.size() && s[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < s.size() && s[pos] == '}') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out->kind = Value::Kind::Array;
            ws();
            if (pos < s.size() && s[pos] == ']') {
                ++pos;
                return true;
            }
            while (true) {
                Value v;
                if (!parseValue(&v, depth + 1))
                    return false;
                out->array.push_back(std::move(v));
                ws();
                if (pos < s.size() && s[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < s.size() && s[pos] == ']') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == 't') {
            out->kind = Value::Kind::Bool;
            out->boolean = true;
            return literal("true");
        }
        if (c == 'f') {
            out->kind = Value::Kind::Bool;
            out->boolean = false;
            return literal("false");
        }
        if (c == 'n') {
            out->kind = Value::Kind::Null;
            return literal("null");
        }
        out->kind = Value::Kind::Number;
        return parseNumber(&out->number);
    }
};

} // namespace

const Value *
Value::get(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &kv : object)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

bool
parse(const std::string &text, Value *out, std::string *error)
{
    Parser p(text);
    Value v;
    if (!p.parseValue(&v, 0)) {
        if (error)
            *error = p.error;
        return false;
    }
    p.ws();
    if (p.pos != text.size()) {
        if (error) {
            p.fail("trailing garbage");
            *error = p.error;
        }
        return false;
    }
    *out = std::move(v);
    return true;
}

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(char(c));
            }
        }
    }
    return out;
}

} // namespace json
} // namespace polyfuse
