/**
 * @file
 * Exact rational numbers over int64, used where Fourier-Motzkin needs
 * rational intermediate bounds.
 */

#ifndef POLYFUSE_SUPPORT_RATIONAL_HH
#define POLYFUSE_SUPPORT_RATIONAL_HH

#include <cstdint>
#include <string>

#include "support/intmath.hh"

namespace polyfuse {

/** A normalized rational number p/q with q > 0. */
class Rational
{
  public:
    Rational() : num_(0), den_(1) {}
    Rational(int64_t value) : num_(value), den_(1) {}

    Rational(int64_t num, int64_t den)
        : num_(num), den_(den)
    {
        normalize();
    }

    int64_t num() const { return num_; }
    int64_t den() const { return den_; }

    Rational
    operator+(const Rational &o) const
    {
        return Rational(checkedAdd(checkedMul(num_, o.den_),
                                   checkedMul(o.num_, den_)),
                        checkedMul(den_, o.den_));
    }

    Rational
    operator-(const Rational &o) const
    {
        return Rational(checkedSub(checkedMul(num_, o.den_),
                                   checkedMul(o.num_, den_)),
                        checkedMul(den_, o.den_));
    }

    Rational
    operator*(const Rational &o) const
    {
        return Rational(checkedMul(num_, o.num_),
                        checkedMul(den_, o.den_));
    }

    Rational
    operator/(const Rational &o) const
    {
        if (o.num_ == 0)
            panic("Rational division by zero");
        return Rational(checkedMul(num_, o.den_),
                        checkedMul(den_, o.num_));
    }

    bool
    operator==(const Rational &o) const
    {
        return num_ == o.num_ && den_ == o.den_;
    }

    bool operator!=(const Rational &o) const { return !(*this == o); }

    bool
    operator<(const Rational &o) const
    {
        return checkedMul(num_, o.den_) < checkedMul(o.num_, den_);
    }

    bool operator<=(const Rational &o) const { return !(o < *this); }
    bool operator>(const Rational &o) const { return o < *this; }
    bool operator>=(const Rational &o) const { return !(*this < o); }

    /** Largest integer <= this. */
    int64_t floor() const { return floorDiv(num_, den_); }

    /** Smallest integer >= this. */
    int64_t ceil() const { return ceilDiv(num_, den_); }

    std::string
    str() const
    {
        if (den_ == 1)
            return std::to_string(num_);
        return std::to_string(num_) + "/" + std::to_string(den_);
    }

  private:
    void
    normalize()
    {
        if (den_ == 0)
            panic("Rational with zero denominator");
        if (den_ < 0) {
            num_ = -num_;
            den_ = -den_;
        }
        int64_t g = gcd(num_, den_);
        if (g > 1) {
            num_ /= g;
            den_ /= g;
        }
    }

    int64_t num_;
    int64_t den_;
};

} // namespace polyfuse

#endif // POLYFUSE_SUPPORT_RATIONAL_HH
