#include "driver/batch.hh"

#include <cstdio>
#include <exception>

#include "support/failpoint.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"
#include "support/timer.hh"

namespace polyfuse {
namespace driver {

namespace {

/** Run one job on the current thread, capturing failures. */
void
runJob(const BatchJob &job, const BatchOptions &opts,
       const CancelToken *cancel, BatchJobResult &out)
{
    out.name = job.name;
    Timer t;
    try {
        failpoints::hit("driver.job." + job.name);
        CompileContext ctx;
        ctx.setOpCacheEnabled(opts.useOpCache);
        ctx.budget = opts.budget;
        if (opts.timeoutMs > 0 &&
            (ctx.budget.wallMs == 0 ||
             opts.timeoutMs < ctx.budget.wallMs))
            ctx.budget.wallMs = opts.timeoutMs;
        ctx.cancel.chainTo(cancel);
        auto program = std::make_shared<ir::Program>(job.make());
        ArtifactOptions aopts;
        aopts.cache = opts.kernelCache;
        aopts.tier = opts.tier;
        out.artifact = compileKernel(Pipeline(job.options),
                                     std::move(program), ctx, aopts);
        out.fm = ctx.fmCounters();
        out.ok = true;
    } catch (const std::exception &e) {
        out.artifact = KernelArtifact{};
        out.error = e.what();
        out.ok = false;
    }
    out.wallMs = t.milliseconds();
}

} // namespace

unsigned
BatchResult::failed() const
{
    unsigned n = 0;
    for (const auto &j : jobs)
        n += j.ok ? 0 : 1;
    return n;
}

unsigned
BatchResult::downgradedCount() const
{
    unsigned n = 0;
    for (const auto &j : jobs)
        n += j.ok && j.artifact.downgraded() ? 1 : 0;
    return n;
}

double
BatchResult::totalCompileMs() const
{
    double total = 0;
    for (const auto &j : jobs)
        if (j.ok)
            total += j.artifact.compileMs();
    return total;
}

pres::fm::Counters
BatchResult::fmTotals() const
{
    pres::fm::Counters total;
    for (const auto &j : jobs)
        total += j.fm;
    return total;
}

std::string
BatchResult::summary() const
{
    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line), "%-24s %10s %10s %12s  %s\n",
                  "job", "wall_ms", "compile_ms", "fm_elims",
                  "status");
    out += line;
    for (const auto &j : jobs) {
        std::string status =
            !j.ok ? "FAILED: " + j.error
            : j.artifact.downgraded()
                ? std::string("ok (downgraded to ") +
                      strategyName(j.artifact.effectiveStrategy) + ")"
                : std::string("ok");
        std::snprintf(
            line, sizeof(line), "%-24s %10.3f %10.3f %12llu  %s\n",
            j.name.c_str(), j.wallMs,
            j.ok ? j.artifact.compileMs() : 0.0,
            static_cast<unsigned long long>(j.fm.eliminations),
            status.c_str());
        out += line;
    }
    pres::fm::Counters fm = fmTotals();
    std::snprintf(line, sizeof(line),
                  "%zu jobs (%u failed), jobs=%u, wall %.3f ms, "
                  "compile sum %.3f ms, fm_elims %llu\n",
                  jobs.size(), failed(), jobsN, wallMs,
                  totalCompileMs(),
                  static_cast<unsigned long long>(fm.eliminations));
    out += line;
    return out;
}

std::string
BatchResult::json() const
{
    std::string out = "{\"jobs\": [";
    char buf[64];
    bool first = true;
    for (const auto &j : jobs) {
        if (!first)
            out += ", ";
        first = false;
        out += "{\"name\": \"" + jsonEscape(j.name) + "\", \"ok\": ";
        out += j.ok ? "true" : "false";
        std::snprintf(buf, sizeof(buf), "%.4f", j.wallMs);
        out += ", \"wallMs\": " + std::string(buf);
        if (j.ok) {
            std::snprintf(buf, sizeof(buf), "%.4f",
                          j.artifact.compileMs());
            out += ", \"compileMs\": " + std::string(buf);
            out += ", \"fmElims\": " +
                   std::to_string(j.fm.eliminations);
            out += ", \"fmRows\": " +
                   std::to_string(j.fm.constraintsVisited);
            out += ", \"cacheHits\": " +
                   std::to_string(j.fm.cacheHits);
            out += ", \"cacheMisses\": " +
                   std::to_string(j.fm.cacheMisses);
            out += ", \"strategy\": \"" +
                   std::string(
                       strategyName(j.artifact.requestedStrategy)) +
                   "\"";
            out += ", \"effective\": \"" +
                   std::string(
                       strategyName(j.artifact.effectiveStrategy)) +
                   "\"";
            out += ", \"downgrades\": " +
                   std::to_string(j.artifact.fallbackTrail.size());
            out += ", \"stats\": " + j.artifact.stats.json();
        } else {
            out += ", \"error\": \"" + jsonEscape(j.error) + "\"";
        }
        out += "}";
    }
    out += "], \"jobsN\": " + std::to_string(jobsN);
    std::snprintf(buf, sizeof(buf), "%.4f", wallMs);
    out += ", \"wallMs\": " + std::string(buf);
    std::snprintf(buf, sizeof(buf), "%.4f", totalCompileMs());
    out += ", \"totalCompileMs\": " + std::string(buf) + "}";
    return out;
}

BatchResult
compileBatch(std::vector<BatchJob> jobs, const BatchOptions &options)
{
    unsigned jobsN = options.jobsN == 0 ? ThreadPool::defaultThreads()
                                        : options.jobsN;
    BatchResult result;
    result.jobsN = jobsN;
    result.jobs.resize(jobs.size());

    // One token for the whole batch: failFast trips it, and the
    // caller's external token (when given) feeds every job too.
    CancelToken batch_token;
    CancelToken *token =
        options.cancel ? options.cancel : &batch_token;

    Timer t;
    if (jobsN == 1 || jobs.size() <= 1) {
        // Inline: exactly the sequential path, no pool overhead.
        for (size_t i = 0; i < jobs.size(); ++i) {
            runJob(jobs[i], options, token, result.jobs[i]);
            if (options.failFast && !result.jobs[i].ok)
                token->cancel();
        }
    } else {
        // One job per chunk: jobs are coarse and runJob already
        // captures its own failures, so the pool's failure log stays
        // empty unless the harness itself breaks.
        ThreadPool pool(jobsN);
        pool.parallelFor(
            0, int64_t(jobs.size()), 1, [&](int64_t lo, int64_t hi) {
                for (int64_t i = lo; i < hi; ++i) {
                    runJob(jobs[size_t(i)], options, token,
                           result.jobs[size_t(i)]);
                    if (options.failFast && !result.jobs[size_t(i)].ok)
                        token->cancel();
                }
            });
    }
    result.wallMs = t.milliseconds();
    return result;
}

BatchResult
compileBatch(std::vector<BatchJob> jobs, unsigned jobsN)
{
    BatchOptions options;
    options.jobsN = jobsN;
    return compileBatch(std::move(jobs), options);
}

int
batchExitCode(const BatchResult &result, bool strict)
{
    if (result.failed() > 0)
        return 1;
    if (strict && result.downgradedCount() > 0)
        return 1;
    return 0;
}

} // namespace driver
} // namespace polyfuse
