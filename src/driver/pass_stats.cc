#include "driver/pass_stats.hh"

#include <algorithm>
#include <cstdio>

namespace polyfuse {
namespace driver {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += char(c);
            }
        }
    }
    return out;
}

int64_t
PassStat::counter(const std::string &key, int64_t fallback) const
{
    for (const auto &[name, value] : counters)
        if (name == key)
            return value;
    return fallback;
}

void
PassStats::add(PassStat stat)
{
    passes_.push_back(std::move(stat));
}

const PassStat *
PassStats::find(const std::string &name) const
{
    for (const auto &p : passes_)
        if (p.name == name)
            return &p;
    return nullptr;
}

double
PassStats::msOf(const std::string &name) const
{
    const PassStat *p = find(name);
    return p ? p->ms : 0.0;
}

double
PassStats::totalMs() const
{
    double total = 0;
    for (const auto &p : passes_)
        total += p.ms;
    return total;
}

std::string
PassStats::str() const
{
    std::string out;
    char line[160];
    std::snprintf(line, sizeof(line), "%-12s %10s  %s\n", "pass",
                  "ms", "counters");
    out += line;
    for (const auto &p : passes_) {
        std::string cs;
        for (const auto &[name, value] : p.counters) {
            if (!cs.empty())
                cs += "  ";
            cs += name + "=" + std::to_string(value);
        }
        std::snprintf(line, sizeof(line), "%-12s %10.3f  %s\n",
                      p.name.c_str(), p.ms, cs.c_str());
        out += line;
    }
    std::snprintf(line, sizeof(line), "%-12s %10.3f\n", "total",
                  totalMs());
    out += line;
    return out;
}

std::string
PassStats::json() const
{
    std::string out = "{\"passes\": [";
    bool first_pass = true;
    char buf[64];
    for (const auto &p : passes_) {
        if (!first_pass)
            out += ", ";
        first_pass = false;
        std::snprintf(buf, sizeof(buf), "%.4f", p.ms);
        out += "{\"name\": \"" + jsonEscape(p.name) +
               "\", \"ms\": " + buf + ", \"counters\": {";
        // Key order must not depend on the order passes happened to
        // report counters in: sort (stably, so a duplicate key keeps
        // its first-reported-first position).
        auto counters = p.counters;
        std::stable_sort(counters.begin(), counters.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        bool first_counter = true;
        for (const auto &[name, value] : counters) {
            if (!first_counter)
                out += ", ";
            first_counter = false;
            out += "\"" + jsonEscape(name) +
                   "\": " + std::to_string(value);
        }
        out += "}}";
    }
    std::snprintf(buf, sizeof(buf), "%.4f", totalMs());
    out += "], \"totalMs\": " + std::string(buf) + "}";
    return out;
}

} // namespace driver
} // namespace polyfuse
