#include "driver/artifact.hh"

#include <thread>
#include <utility>

#include "support/logging.hh"
#include "support/timer.hh"

namespace polyfuse {
namespace driver {

namespace {

/** Bump whenever the mixed structure below (or ir/pres mixers)
 *  changes meaning: persistent stores key on the result. */
constexpr const char *kFingerprintVersion = "polyfuse-kernel-v2";

/** One PassStat snapshotting the cache's aggregate counters. */
PassStat
cacheStat(const exec::KernelCache &cache, bool hit, double lookup_ms)
{
    exec::KernelCache::Counters c = cache.counters();
    PassStat ps;
    ps.name = "KernelCache";
    ps.ms = lookup_ms;
    ps.endMs = lookup_ms;
    ps.counters.emplace_back("hit", hit ? 1 : 0);
    ps.counters.emplace_back("cache_hits", int64_t(c.hits));
    ps.counters.emplace_back("cache_misses", int64_t(c.misses));
    ps.counters.emplace_back("cache_insertions",
                             int64_t(c.insertions));
    ps.counters.emplace_back("cache_evictions",
                             int64_t(c.evictions));
    ps.counters.emplace_back("cache_entries",
                             int64_t(cache.entries()));
    ps.counters.emplace_back("cache_bytes", int64_t(cache.bytes()));
    ps.counters.emplace_back("lookup_ns", int64_t(c.lookupNs));
    return ps;
}

} // namespace

pres::Fingerprint
programFingerprint(const ir::Program &program,
                   const PipelineOptions &options, exec::Tier tier,
                   exec::ParStrategy par, unsigned par_threads,
                   exec::SimdMode simd)
{
    // The SIMD mode deliberately stays out of the key: it is a pure
    // runtime VM flag, selected per-loop at execution time, and
    // changes nothing about the compiled artifact.
    (void)simd;
    pres::Fingerprinter fp;
    fp.mix(kFingerprintVersion);
    ir::mixProgram(fp, program);
    // Everything that changes emitted code; budgetFallback is policy
    // about *when* to compile cheaper, not *what* code a completed
    // non-downgraded compile produces, so it is deliberately absent
    // (and downgraded artifacts are never cached).
    fp.mix(strategyName(options.strategy));
    fp.mix(uint64_t(options.tileSizes.size()));
    for (int64_t s : options.tileSizes)
        fp.mixSigned(s);
    fp.mix(uint64_t(options.innerTileSizes.size()));
    for (int64_t s : options.innerTileSizes)
        fp.mixSigned(s);
    fp.mix(uint64_t(options.targetParallelism));
    fp.mix(uint64_t(options.startup));
    fp.mixDouble(options.maxRecompute);
    fp.mix(uint64_t(options.footprintDilation));
    fp.mixBool(options.gen.promoteIntermediates);
    fp.mix(exec::tierName(tier));
    // The tile-team shape is baked into a parallel native TU, so it
    // (and the probed toolchain mode deciding OpenMP vs generated
    // std::thread) must key the artifact.
    if (tier == exec::Tier::Native &&
        par != exec::ParStrategy::Off) {
        fp.mix(exec::parStrategyName(par));
        unsigned nt = par_threads
                          ? par_threads
                          : std::thread::hardware_concurrency();
        if (nt == 0)
            nt = 1;
        fp.mix(uint64_t(nt));
        fp.mix(exec::nativeParModeName(
            exec::NativeKernel::parallelToolchain()));
    }
    return fp.fingerprint();
}

KernelArtifact
compileKernel(const Pipeline &pipeline,
              std::shared_ptr<const ir::Program> program,
              CompileContext &ctx,
              const ArtifactOptions &artifact_options)
{
    if (!program)
        fatal("compileKernel: null program");

    KernelArtifact artifact;
    artifact.fingerprint = programFingerprint(
        *program, pipeline.options(), artifact_options.tier,
        artifact_options.par, artifact_options.parThreads,
        artifact_options.simd);
    artifact.requestedStrategy = pipeline.options().strategy;
    artifact.effectiveStrategy = pipeline.options().strategy;

    exec::KernelCache *cache = artifact_options.cache;
    if (cache) {
        Timer lookup;
        std::shared_ptr<const exec::KernelImage> image =
            cache->find(artifact.fingerprint);
        double lookup_ms = lookup.milliseconds();
        if (image) {
            artifact.image = std::move(image);
            artifact.fromCache = true;
            artifact.stats.add(cacheStat(*cache, true, lookup_ms));
            return artifact;
        }
    }

    CompilationState state = pipeline.run(*program, ctx);
    double pipeline_ms = state.stats.totalMs();

    auto image = std::make_shared<exec::KernelImage>();
    image->program = program;
    image->ast = state.ast;
    image->genBands = std::move(state.genBands);
    image->tileBands = std::move(state.tileBands);

    Timer lower;
    image->bytecode =
        exec::BytecodeKernel::compile(*program, image->ast);
    PassStat lower_ps;
    lower_ps.name = "LowerBytecode";
    lower_ps.ms = lower.milliseconds();
    lower_ps.endMs = pipeline_ms + lower_ps.ms;
    lower_ps.counters.emplace_back(
        "instructions", int64_t(image->bytecode.numInstructions()));
    lower_ps.counters.emplace_back(
        "statements", int64_t(image->bytecode.numStatements()));
    lower_ps.counters.emplace_back(
        "tile_regions", int64_t(image->bytecode.numTileRegions()));
    image->bytes = exec::estimateImageBytes(*image);

    artifact.stats = std::move(state.stats);
    artifact.stats.add(std::move(lower_ps));
    artifact.requestedStrategy = state.requestedStrategy;
    artifact.effectiveStrategy = state.effectiveStrategy;
    artifact.fallbackTrail = std::move(state.fallbackTrail);
    artifact.image = std::move(image);

    if (cache) {
        if (!artifact.downgraded())
            cache->insert(artifact.fingerprint, artifact.image);
        artifact.stats.add(cacheStat(*cache, false, 0));
    }
    return artifact;
}

KernelArtifact
compileKernel(const Pipeline &pipeline,
              std::shared_ptr<const ir::Program> program,
              const ArtifactOptions &artifact_options)
{
    CompileContext ctx;
    return compileKernel(pipeline, std::move(program), ctx,
                         artifact_options);
}

exec::ExecResult
executeKernel(const KernelArtifact &artifact, exec::Buffers &buffers,
              const exec::ExecOptions &options)
{
    if (!artifact.ok())
        fatal("executeKernel: artifact has no image");
    return exec::execute(*artifact.image, buffers, options);
}

} // namespace driver
} // namespace polyfuse
