#include "driver/registry.hh"

#include "workloads/conv2d.hh"
#include "workloads/equake.hh"
#include "workloads/pipelines.hh"
#include "workloads/polybench.hh"
#include "workloads/resnet50.hh"

namespace polyfuse {
namespace driver {

namespace {

workloads::PipelineConfig
imageCfg(const WorkloadParams &p)
{
    return {p.rows, p.cols};
}

std::vector<WorkloadSpec>
buildRegistry()
{
    std::vector<WorkloadSpec> reg;
    reg.push_back({"conv2d",
                   "the paper's running example (Fig. 1a)",
                   {32, 32},
                   {64, 64},
                   [](const WorkloadParams &p) {
                       return workloads::makeConv2D(
                           {p.rows, p.cols, 3, 3});
                   }});
    reg.push_back({"bilateral",
                   "bilateral grid (7 stages)",
                   {128, 128},
                   {256, 256},
                   [](const WorkloadParams &p) {
                       return workloads::makeBilateralGrid(
                           imageCfg(p));
                   }});
    reg.push_back({"camera",
                   "camera pipeline (16 stages)",
                   {32, 64},
                   {256, 256},
                   [](const WorkloadParams &p) {
                       return workloads::makeCameraPipeline(
                           imageCfg(p));
                   }});
    reg.push_back({"harris",
                   "Harris corner detection (11 stages)",
                   {32, 128},
                   {256, 256},
                   [](const WorkloadParams &p) {
                       return workloads::makeHarris(imageCfg(p));
                   }});
    reg.push_back({"laplacian",
                   "local Laplacian filter",
                   {32, 64},
                   {256, 256},
                   [](const WorkloadParams &p) {
                       return workloads::makeLocalLaplacian(
                           imageCfg(p));
                   }});
    reg.push_back({"interp",
                   "multiscale interpolation pyramid",
                   {32, 64},
                   {256, 256},
                   [](const WorkloadParams &p) {
                       return workloads::makeMultiscaleInterp(
                           imageCfg(p));
                   }});
    reg.push_back({"unsharp",
                   "unsharp mask (4 stages)",
                   {8, 128},
                   {256, 256},
                   [](const WorkloadParams &p) {
                       return workloads::makeUnsharpMask(
                           imageCfg(p));
                   }});
    reg.push_back({"equake",
                   "equake sparse FEM kernel (rows = nodes, "
                   "cols = max degree)",
                   {512},
                   {4096, 16},
                   [](const WorkloadParams &p) {
                       return workloads::makeEquake(
                           {p.rows, p.cols});
                   }});
    reg.push_back({"2mm",
                   "PolyBench 2mm (rows = all extents)",
                   {32, 32},
                   {192, 192},
                   [](const WorkloadParams &p) {
                       return workloads::make2mm(p.rows, p.rows,
                                                 p.rows, p.rows);
                   }});
    reg.push_back({"gemver",
                   "PolyBench gemver (rows = n)",
                   {32, 32},
                   {768, 768},
                   [](const WorkloadParams &p) {
                       return workloads::makeGemver(p.rows);
                   }});
    reg.push_back({"seidel",
                   "Gauss-Seidel sweep (rows = n, cols = m; "
                   "wavefront tiles)",
                   {32, 32},
                   {256, 256},
                   [](const WorkloadParams &p) {
                       return workloads::makeSeidel(p.rows, p.cols);
                   }});
    reg.push_back({"covariance",
                   "PolyBench covariance (rows = n, cols = m)",
                   {32, 32},
                   {192, 192},
                   [](const WorkloadParams &p) {
                       return workloads::makeCovariance(p.rows,
                                                        p.cols);
                   }});
    reg.push_back({"convbn",
                   "ResNet-50 conv + batchnorm layer "
                   "(rows = channels, cols = spatial)",
                   {8, 4, 4},
                   {64, 16},
                   [](const WorkloadParams &p) {
                       memsim::ConvLayer layer;
                       layer.cin = p.rows;
                       layer.cout = p.rows;
                       layer.height = p.cols;
                       layer.width = p.cols;
                       layer.kernel = 3;
                       return workloads::makeConvBnProgram(layer);
                   }});
    return reg;
}

} // namespace

const std::vector<WorkloadSpec> &
workloadRegistry()
{
    static const std::vector<WorkloadSpec> reg = buildRegistry();
    return reg;
}

const WorkloadSpec *
findWorkload(const std::string &name)
{
    for (const auto &w : workloadRegistry())
        if (name == w.name)
            return &w;
    return nullptr;
}

} // namespace driver
} // namespace polyfuse
