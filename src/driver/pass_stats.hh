/**
 * @file
 * Per-pass instrumentation registry of the compilation driver: every
 * pass the Pipeline runs reports its wall time (steady clock) and a
 * small set of named integer counters (FM eliminations / constraint
 * rows from src/pres, fusion cluster counts, extension nodes
 * inserted by core::compose, AST node counts, ...). The registry
 * renders as an aligned table (str()) or a JSON object (json()) and
 * is what gives E7 honest per-pass compile-time numbers instead of
 * one lumped total.
 */

#ifndef POLYFUSE_DRIVER_PASS_STATS_HH
#define POLYFUSE_DRIVER_PASS_STATS_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace polyfuse {
namespace driver {

/**
 * Escape @p s for embedding inside a JSON string literal: quotes,
 * backslashes, and control characters (\uXXXX for the ones without a
 * short form). Shared by every JSON emitter in the driver so merged
 * batch reports stay machine-parseable whatever the labels contain.
 */
std::string jsonEscape(const std::string &s);

/** One executed pass: name, timing, counters (insertion order). */
struct PassStat
{
    std::string name;
    /** Wall time of the pass in milliseconds (steady clock). */
    double ms = 0;
    /** Cumulative milliseconds since the pipeline started, taken
     *  when the pass finished; monotone across the pass list. */
    double endMs = 0;
    /** Named counters, in the order the pass reported them. */
    std::vector<std::pair<std::string, int64_t>> counters;

    /** Counter value by name; @p fallback when absent. */
    int64_t counter(const std::string &key,
                    int64_t fallback = 0) const;
};

/** The ordered registry of every pass one Pipeline::run produced. */
class PassStats
{
  public:
    void add(PassStat stat);

    const std::vector<PassStat> &passes() const { return passes_; }

    /** The record of pass @p name (null when it never ran). */
    const PassStat *find(const std::string &name) const;

    /** Milliseconds of pass @p name (0 when it never ran). */
    double msOf(const std::string &name) const;

    /** Sum of the per-pass times. */
    double totalMs() const;

    /** Aligned human-readable table, one line per pass. */
    std::string str() const;

    /**
     * One JSON object: {"passes": [...], "totalMs": ...}. Machine-
     * stable: strings are escaped and counter keys are emitted in
     * sorted order, so two runs recording the same values produce
     * byte-identical text (batch mode merges many of these blobs).
     */
    std::string json() const;

  private:
    std::vector<PassStat> passes_;
};

} // namespace driver
} // namespace polyfuse

#endif // POLYFUSE_DRIVER_PASS_STATS_HH
