/**
 * @file
 * Batch compilation: run many independent (program, options) jobs
 * through the driver's pass pipeline, fanned out over a fixed thread
 * pool. This is the production entry point the paper's compile-time
 * story implies — post-tiling composition is cheap enough that the
 * real workload is compiling hundreds of workload x strategy x
 * tile-size variants, not one kernel — and it is what `polyfuse
 * --all --jobs N`, the E7 bench sweep and the tile-size auto-tuner
 * build on.
 *
 * Every job compiles against its own CompileContext, so per-job
 * PassStats (including the FM counters) are byte-identical whether
 * the batch runs on 1 thread or N.
 */

#ifndef POLYFUSE_DRIVER_BATCH_HH
#define POLYFUSE_DRIVER_BATCH_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "driver/artifact.hh"
#include "driver/pipeline.hh"
#include "support/budget.hh"

namespace polyfuse {
namespace driver {

/** One unit of batch work. */
struct BatchJob
{
    /** Label in reports ("workload/strategy" by convention). */
    std::string name;

    /** Program factory, invoked on the worker thread (program
     *  construction is part of the job's wall time). Must be safe to
     *  call concurrently with the other jobs' factories. */
    std::function<ir::Program()> make;

    /** Driver options of this job. */
    PipelineOptions options;
};

/** What one batch job produced. */
struct BatchJobResult
{
    std::string name;

    /** The compiled kernel artifact (valid only when ok). Owns the
     *  program through its image, so the result is self-contained,
     *  movable, and directly executable via executeKernel. */
    KernelArtifact artifact;

    /** The job's context totals (FM work of exactly this job). */
    pres::fm::Counters fm;

    /** Build + compile wall time, measured on the worker thread. */
    double wallMs = 0;

    bool ok = false;
    std::string error; ///< failure message when !ok
};

/** Resource policy of one compileBatch call. */
struct BatchOptions
{
    /** Worker threads (0 = hardware concurrency; 1 runs inline). */
    unsigned jobsN = 0;

    /** Per-job wall-clock deadline in milliseconds (0 = none). Caps
     *  budget.wallMs when both are set. */
    double timeoutMs = 0;

    /** Per-job resource budget (each job gets its own window). */
    Budget budget;

    /** Memoize Presburger operations per job (each job's context owns
     *  its own cache, so concurrency is unaffected). Off reproduces
     *  the uncached baseline bit for bit. */
    bool useOpCache = true;

    /** Optional external cancellation token; tripping it makes every
     *  not-yet-finished job fail with a "cancelled" error. */
    CancelToken *cancel = nullptr;

    /** Cancel the rest of the batch after the first job failure. */
    bool failFast = false;

    /** Shared kernel cache consulted/populated by every job (null:
     *  each job compiles from scratch). Thread-safe, so concurrent
     *  jobs share it directly. */
    exec::KernelCache *kernelCache = nullptr;

    /** Execution tier baked into each job's artifact fingerprint. */
    exec::Tier tier = exec::Tier::Bytecode;
};

/** Everything a compileBatch call produced. */
struct BatchResult
{
    std::vector<BatchJobResult> jobs; ///< input order, not finish order
    unsigned jobsN = 1;               ///< worker threads used
    double wallMs = 0;                ///< batch wall-clock time

    /** Number of failed jobs. */
    unsigned failed() const;

    /** Number of jobs the budget downgraded to a cheaper strategy. */
    unsigned downgradedCount() const;

    /** Sum of per-job compileMs (scheduling + codegen, no deps). */
    double totalCompileMs() const;

    /** Sum of the per-job FM counters. */
    pres::fm::Counters fmTotals() const;

    /** Aligned cross-job summary table (one line per job). */
    std::string summary() const;

    /** One JSON object: {"jobs": [...], "jobsN": ..., "wallMs": ...,
     *  "totalCompileMs": ...}; per-job stats use PassStats::json. */
    std::string json() const;
};

/**
 * Compile every job, @p jobsN at a time (0 = hardware concurrency;
 * 1 runs inline on the calling thread with no pool). Job failures
 * (FatalError/PanicError/std::exception) are captured per job, never
 * thrown. Results land in input order.
 */
BatchResult compileBatch(std::vector<BatchJob> jobs,
                         unsigned jobsN = 0);

/** compileBatch with a full resource policy: per-job budgets and
 *  deadlines, external cancellation, fail-fast. */
BatchResult compileBatch(std::vector<BatchJob> jobs,
                         const BatchOptions &options);

/** Process exit code for a finished batch: 1 when any job failed, or
 *  (under @p strict) when any job was downgraded; 0 otherwise. */
int batchExitCode(const BatchResult &result, bool strict);

} // namespace driver
} // namespace polyfuse

#endif // POLYFUSE_DRIVER_BATCH_HH
