/**
 * @file
 * The per-compilation context the driver threads through the layers.
 * One CompileContext per independent compilation: it owns every piece
 * of state the libraries below mutate while compiling (today the
 * presburger layer's FM instrumentation), so two runs with two
 * contexts share nothing and can execute on different threads.
 *
 * Pipeline::run installs the context's PresCtx as the thread's
 * active pres context for the duration of the run, which is how the
 * unchanged pres/codegen call chains find it without every function
 * signature in the library growing a parameter.
 */

#ifndef POLYFUSE_DRIVER_COMPILE_CONTEXT_HH
#define POLYFUSE_DRIVER_COMPILE_CONTEXT_HH

#include "pres/fm.hh"

namespace polyfuse {
namespace driver {

/** Everything one compilation mutates below the driver. Not
 *  thread-safe: use one context per concurrent job. */
struct CompileContext
{
    /** Presburger-layer state (FM instrumentation). */
    pres::fm::PresCtx pres;

    /** FM totals accumulated by runs against this context. */
    const pres::fm::Counters &fmCounters() const
    {
        return pres.counters;
    }
};

} // namespace driver
} // namespace polyfuse

#endif // POLYFUSE_DRIVER_COMPILE_CONTEXT_HH
