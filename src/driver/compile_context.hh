/**
 * @file
 * The per-compilation context the driver threads through the layers.
 * One CompileContext per independent compilation: it owns every piece
 * of state the libraries below mutate while compiling (the presburger
 * layer's FM instrumentation, the resource budget, the cancellation
 * token), so two runs with two contexts share nothing and can execute
 * on different threads.
 *
 * Pipeline::run installs the context's PresCtx as the thread's
 * active pres context for the duration of the run, which is how the
 * unchanged pres/codegen call chains find it without every function
 * signature in the library growing a parameter.
 */

#ifndef POLYFUSE_DRIVER_COMPILE_CONTEXT_HH
#define POLYFUSE_DRIVER_COMPILE_CONTEXT_HH

#include "pres/fm.hh"
#include "pres/op_cache.hh"
#include "support/budget.hh"

namespace polyfuse {
namespace driver {

/** Everything one compilation mutates below the driver. Not
 *  thread-safe: use one context per concurrent job. Non-copyable:
 *  the pres context points at the owned cancellation token. */
struct CompileContext
{
    CompileContext()
    {
        pres.cancel = &cancel;
        pres.cache = &opCache;
    }
    CompileContext(const CompileContext &) = delete;
    CompileContext &operator=(const CompileContext &) = delete;

    /** Presburger-layer state (FM instrumentation + budget). */
    pres::fm::PresCtx pres;

    /** Hash-consed operation cache for this compilation; wired into
     *  the pres context (enabled by default). Pipeline::run clears it
     *  at the start of every attempt so each run is deterministic and
     *  independent of compilation history. */
    pres::OpCache opCache;

    /** Detach/attach the cache (the --no-op-cache baseline and the
     *  equivalence tests use this; contents are preserved). */
    void
    setOpCacheEnabled(bool on)
    {
        pres.cache = on ? &opCache : nullptr;
    }

    bool opCacheEnabled() const { return pres.cache != nullptr; }

    /** Resource limits for runs against this context; all-zero means
     *  unlimited. Pipeline::run arms it per attempt. */
    Budget budget;

    /** Cooperative cancellation; callers (e.g. compileBatch) may trip
     *  it from another thread, or chain it to a batch-level token. */
    CancelToken cancel;

    /** FM totals accumulated by runs against this context. */
    const pres::fm::Counters &fmCounters() const
    {
        return pres.counters;
    }
};

} // namespace driver
} // namespace polyfuse

#endif // POLYFUSE_DRIVER_COMPILE_CONTEXT_HH
