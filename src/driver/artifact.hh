/**
 * @file
 * The compile stage as a first-class value: plan (fingerprint) ->
 * compile (an immutable KernelArtifact) -> execute, layered on top of
 * Pipeline::run.
 *
 * A KernelArtifact bundles a frozen exec::KernelImage (program, AST,
 * GeneratedBand markers, TileGraph classifications, bytecode, lazy
 * native handle) with the driver-level compile record (PassStats,
 * requested/effective strategy, fallback trail). Artifacts are
 * addressed by programFingerprint(), which extends the Presburger op
 * cache's 128-bit structural fingerprinting to whole compilations.
 *
 * Fingerprint stability contract (on top of pres/fingerprint.hh and
 * ir/fingerprint.hh): the fingerprint covers everything that changes
 * the emitted code -- the program structure, the strategy, both tile
 * size lists, target parallelism, the startup fusion policy, the
 * recompute guard, footprint dilation, codegen flags, and the
 * requested execution tier -- and nothing that does not (budget
 * limits, fallback policy, thread counts, trace sinks, cache
 * settings). It is invariant across contexts, threads and runs, so
 * the process-wide KernelCache and the on-disk tuning store can both
 * key on it. A version tag is mixed first; bump it whenever the
 * mixed structure (or the meaning of any mixed field) changes.
 *
 * Cache-correctness invariant: a budget-downgraded compile (non-empty
 * fallbackTrail) produced code for a *cheaper* strategy than the
 * options fingerprinted, so compileKernel never inserts downgraded
 * artifacts into the cache -- a later, less-constrained compile of
 * the same key must be able to produce (and cache) the real thing.
 */

#ifndef POLYFUSE_DRIVER_ARTIFACT_HH
#define POLYFUSE_DRIVER_ARTIFACT_HH

#include <memory>
#include <string>
#include <vector>

#include "driver/pipeline.hh"
#include "exec/kernel_cache.hh"
#include "ir/fingerprint.hh"

namespace polyfuse {
namespace driver {

/**
 * The plan stage: fingerprint of compiling @p program under
 * @p options for @p tier. See the stability contract above.
 *
 * Backend parameters fold in exactly when they change emitted
 * code: with tier == Native and a parallel @p par, the strategy,
 * the resolved team size and the probed parallel toolchain mode
 * are mixed (the tile-team shape is baked into the native TU), so
 * a warm cache hit can never serve a kernel compiled for a
 * different backend. @p simd is accepted for symmetry but never
 * mixed -- the vector path is a pure runtime VM flag selected
 * per-loop at execution time; it changes no emitted code.
 */
pres::Fingerprint
programFingerprint(const ir::Program &program,
                   const PipelineOptions &options, exec::Tier tier,
                   exec::ParStrategy par = exec::ParStrategy::Off,
                   unsigned par_threads = 0,
                   exec::SimdMode simd = exec::SimdMode::Off);

/** Knobs of compileKernel beyond the pipeline options. */
struct ArtifactOptions
{
    /** Kernel cache to consult/populate (null: always compile). */
    exec::KernelCache *cache = nullptr;

    /** Execution tier the artifact targets (part of the
     *  fingerprint; the native handle still compiles lazily). */
    exec::Tier tier = exec::Tier::Bytecode;

    /** Tile scheduling strategy the kernel will run with; part of
     *  the fingerprint only when tier == Native (see
     *  programFingerprint). */
    exec::ParStrategy par = exec::ParStrategy::Off;

    /** Team size for a parallel native kernel (0: hardware
     *  count); fingerprint-relevant only when tier == Native and
     *  par != Off. */
    unsigned parThreads = 0;

    /** Runtime VM flag; never part of the fingerprint. */
    exec::SimdMode simd = exec::SimdMode::Off;
};

/** An immutable compiled kernel plus its compile-time record. */
struct KernelArtifact
{
    /** The plan-stage fingerprint the artifact is addressed by. */
    pres::Fingerprint fingerprint;

    /** The frozen executable image (shared with the cache). */
    std::shared_ptr<const exec::KernelImage> image;

    /** Per-pass wall times and counters of this compile (a single
     *  "KernelCache" pass on a cache hit). */
    PassStats stats;

    Strategy requestedStrategy = Strategy::Ours;
    Strategy effectiveStrategy = Strategy::Ours;

    /** One entry per abandoned attempt: "<strategy>: <reason>". */
    std::vector<std::string> fallbackTrail;

    /** True when the artifact came out of the kernel cache. */
    bool fromCache = false;

    bool ok() const { return image != nullptr; }

    bool downgraded() const { return !fallbackTrail.empty(); }

    /** Scheduling + codegen + lowering ms, dependence analysis
     *  excluded (mirrors CompilationState::compileMs). */
    double compileMs() const
    {
        return stats.totalMs() - stats.msOf("ComputeDeps");
    }
};

/**
 * The compile stage: produce the artifact for @p program under
 * @p pipeline's options, consulting @p artifact_options.cache first.
 * A hit skips the entire Presburger/codegen pipeline (the returned
 * stats record only the lookup); a miss runs Pipeline::run against
 * @p ctx, lowers the bytecode once ("LowerBytecode" pass), and
 * populates the cache (unless the compile was downgraded; see the
 * invariant above). Shares Pipeline::run's exception behaviour.
 */
KernelArtifact compileKernel(const Pipeline &pipeline,
                             std::shared_ptr<const ir::Program> program,
                             CompileContext &ctx,
                             const ArtifactOptions &artifact_options = {});

/** compileKernel against a context local to the call. */
KernelArtifact compileKernel(const Pipeline &pipeline,
                             std::shared_ptr<const ir::Program> program,
                             const ArtifactOptions &artifact_options = {});

/**
 * The execute stage: run the artifact's image over @p buffers.
 * Thin veneer over exec::execute(image, ...); the artifact's
 * tileBands flow in automatically when options.tileBands is null.
 */
exec::ExecResult executeKernel(const KernelArtifact &artifact,
                               exec::Buffers &buffers,
                               const exec::ExecOptions &options = {});

} // namespace driver
} // namespace polyfuse

#endif // POLYFUSE_DRIVER_ARTIFACT_HH
