#include "driver/pipeline.hh"

#include <algorithm>

#include "pres/fm.hh"
#include "support/logging.hh"
#include "support/timer.hh"

namespace polyfuse {
namespace driver {

using schedule::FusionPolicy;
using schedule::NodeKind;
using schedule::NodePtr;
using schedule::ScheduleTree;

const std::vector<Strategy> &
allStrategies()
{
    static const std::vector<Strategy> all = {
        Strategy::Naive,    Strategy::MinFuse, Strategy::SmartFuse,
        Strategy::MaxFuse,  Strategy::Hybrid,  Strategy::PolyMage,
        Strategy::Halide,   Strategy::Ours,
    };
    return all;
}

const char *
strategyName(Strategy s)
{
    switch (s) {
      case Strategy::Naive: return "naive";
      case Strategy::MinFuse: return "minfuse";
      case Strategy::SmartFuse: return "smartfuse";
      case Strategy::MaxFuse: return "maxfuse";
      case Strategy::Hybrid: return "hybridfuse";
      case Strategy::PolyMage: return "polymage";
      case Strategy::Halide: return "halide";
      case Strategy::Ours: return "ours";
    }
    panic("strategyName: unknown strategy");
}

bool
parseStrategy(const std::string &name, Strategy &out)
{
    for (Strategy s : allStrategies()) {
        if (name == strategyName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

namespace {

/** The heuristic of a tiling-after-fusion strategy. */
FusionPolicy
heuristicPolicy(Strategy s)
{
    switch (s) {
      case Strategy::MinFuse: return FusionPolicy::Min;
      case Strategy::SmartFuse: return FusionPolicy::Smart;
      case Strategy::MaxFuse: return FusionPolicy::Max;
      case Strategy::Hybrid: return FusionPolicy::Hybrid;
      case Strategy::Halide: return FusionPolicy::Smart;
      case Strategy::Naive:
      case Strategy::PolyMage:
      case Strategy::Ours:
        break;
    }
    panic("heuristicPolicy: not a heuristic strategy");
}

bool
usesCompose(Strategy s)
{
    return s == Strategy::PolyMage || s == Strategy::Ours;
}

unsigned
countExtensionNodes(const NodePtr &node)
{
    if (!node)
        return 0;
    unsigned n = node->kind == NodeKind::Extension ? 1 : 0;
    for (const auto &c : node->children)
        n += countExtensionNodes(c);
    return n;
}

void
countAstNodes(const codegen::AstPtr &node, int64_t &nodes,
              int64_t &loops, int64_t &stmts, int64_t &allocs)
{
    if (!node)
        return;
    ++nodes;
    switch (node->kind) {
      case codegen::AstKind::For: ++loops; break;
      case codegen::AstKind::Stmt: ++stmts; break;
      case codegen::AstKind::Alloc: ++allocs; break;
      case codegen::AstKind::Block: break;
    }
    for (const auto &c : node->children)
        countAstNodes(c, nodes, loops, stmts, allocs);
}

} // namespace

unsigned
tileAllBands(ScheduleTree &tree, const std::vector<int64_t> &sizes)
{
    NodePtr seq = tree.root()->onlyChild();
    if (!seq || sizes.empty())
        return 0;
    unsigned tiled = 0;
    for (const auto &filter : seq->children) {
        NodePtr band = ScheduleTree::findBand(filter);
        if (!band || !band->permutable || band->numBandDims() == 0 ||
            !band->tileSizes.empty())
            continue;
        std::vector<int64_t> s(band->numBandDims(), sizes.back());
        for (size_t k = 0; k < s.size() && k < sizes.size(); ++k)
            s[k] = sizes[k];
        tree.tileBand(band, s);
        ++tiled;
    }
    return tiled;
}

double
CompilationState::compileMs() const
{
    return stats.totalMs() - stats.msOf("ComputeDeps");
}

Pipeline::Pipeline(PipelineOptions options)
    : options_(std::move(options))
{
}

const std::vector<std::string> &
Pipeline::passNames()
{
    static const std::vector<std::string> names = {
        "ComputeDeps", "Fuse", "Compose", "Tile", "Promote",
        "Codegen", "TileGraph",
    };
    return names;
}

CompilationState
Pipeline::run(const ir::Program &program) const
{
    CompileContext ctx;
    return run(program, ctx);
}

std::vector<Strategy>
fallbackChain(Strategy requested)
{
    static const std::vector<Strategy> ladder = {
        Strategy::Hybrid, Strategy::MinFuse, Strategy::Naive,
    };
    std::vector<Strategy> chain{requested};
    size_t start = 0;
    for (size_t i = 0; i < ladder.size(); ++i) {
        if (ladder[i] == requested) {
            start = i + 1;
            break;
        }
    }
    for (size_t i = start; i < ladder.size(); ++i)
        chain.push_back(ladder[i]);
    return chain;
}

CompilationState
Pipeline::run(const ir::Program &program, CompileContext &ctx) const
{
    // Each attempt gets a fresh budget window (the ceilings bound one
    // attempt's work, not the lifetime totals of the context).
    struct Disarm
    {
        pres::fm::PresCtx &p;
        ~Disarm() { p.disarmBudget(); }
    } disarm{ctx.pres};

    if (!options_.budgetFallback) {
        ctx.pres.armBudget(ctx.budget);
        return runOnce(program, ctx, options_);
    }

    const std::vector<Strategy> chain =
        fallbackChain(options_.strategy);
    std::vector<std::string> trail;
    double wastedMs = 0;
    for (size_t attempt = 0; attempt <= chain.size(); ++attempt) {
        PipelineOptions opt = options_;
        bool reserve = attempt == chain.size();
        // The reserve attempt repeats naive with the budget disarmed:
        // a passthrough schedule must always come out, no matter how
        // tight the limits were. Cancellation stays in force.
        opt.strategy = reserve ? Strategy::Naive : chain[attempt];
        if (reserve)
            ctx.pres.disarmBudget();
        else
            ctx.pres.armBudget(ctx.budget);
        Timer t;
        try {
            CompilationState st = runOnce(program, ctx, opt);
            st.requestedStrategy = options_.strategy;
            st.effectiveStrategy = opt.strategy;
            st.fallbackTrail = std::move(trail);
            if (st.downgraded()) {
                PassStat ps;
                ps.name = "Fallback";
                ps.ms = wastedMs;
                ps.endMs = wastedMs + st.stats.totalMs();
                ps.counters.emplace_back(
                    "downgrades", int64_t(st.fallbackTrail.size()));
                st.stats.add(std::move(ps));
            }
            return st;
        } catch (const BudgetExceeded &e) {
            if (ctx.cancel.cancelled() || reserve)
                throw;
            wastedMs += t.milliseconds();
            trail.push_back(std::string(strategyName(opt.strategy)) +
                            ": " + e.what());
        }
    }
    panic("Pipeline::run: fallback chain exhausted"); // unreachable
}

CompilationState
Pipeline::runOnce(const ir::Program &program, CompileContext &ctx,
                  const PipelineOptions &opt) const
{
    CompilationState st;
    st.program = &program;
    st.requestedStrategy = opt.strategy;
    st.effectiveStrategy = opt.strategy;

    // Everything below (pres ops reached through schedule/core/
    // codegen) charges its work to this run's context.
    pres::fm::ScopedCtx scope(ctx.pres);

    // A fresh memoization table per attempt: results never leak
    // between runs, so a compilation's output (and its FM counters,
    // modulo cache hit/miss tallies) is a function of the program and
    // options alone, no matter what this context compiled before.
    if (ctx.pres.cache)
        ctx.pres.cache->clear();

    Timer pipeline_timer;
    // Each pass is timed individually and reports the FM engine's
    // work (elimination/constraint deltas from the run's context) on
    // top of its own counters.
    auto runPass = [&](const char *name, auto &&body) {
        pres::fm::checkBudget(ctx.pres, name);
        PassStat ps;
        ps.name = name;
        pres::fm::Counters before = ctx.pres.counters;
        Timer t;
        body(ps);
        ps.ms = t.milliseconds();
        ps.endMs = pipeline_timer.milliseconds();
        const pres::fm::Counters &after = ctx.pres.counters;
        if (after.eliminations > before.eliminations) {
            ps.counters.emplace_back(
                "fm_elims",
                int64_t(after.eliminations - before.eliminations));
            ps.counters.emplace_back(
                "fm_rows", int64_t(after.constraintsVisited -
                                   before.constraintsVisited));
        }
        if (after.cacheHits > before.cacheHits ||
            after.cacheMisses > before.cacheMisses) {
            ps.counters.emplace_back(
                "cache_hits",
                int64_t(after.cacheHits - before.cacheHits));
            ps.counters.emplace_back(
                "cache_misses",
                int64_t(after.cacheMisses - before.cacheMisses));
        }
        if (after.cacheEvictions > before.cacheEvictions)
            ps.counters.emplace_back(
                "cache_evictions",
                int64_t(after.cacheEvictions - before.cacheEvictions));
        st.stats.add(std::move(ps));
    };

    runPass("ComputeDeps", [&](PassStat &ps) {
        st.graph = deps::DependenceGraph::compute(program);
        int64_t flow = 0;
        for (const auto &d : st.graph.all())
            flow += d.kind == deps::DepKind::Flow ? 1 : 0;
        ps.counters.emplace_back("deps",
                                 int64_t(st.graph.all().size()));
        ps.counters.emplace_back("flow", flow);
    });

    runPass("Fuse", [&](PassStat &ps) {
        if (opt.strategy == Strategy::Naive) {
            ScheduleTree t = ScheduleTree::initial(program);
            t.annotate(st.graph);
            st.fusion.tree = t;
            st.fusion.clusters.clear();
            for (unsigned g = 0; g < program.numGroups(); ++g)
                st.fusion.clusters.push_back({int(g)});
        } else {
            FusionPolicy policy = usesCompose(opt.strategy)
                                      ? opt.startup
                                      : heuristicPolicy(opt.strategy);
            st.fusion =
                schedule::applyFusion(program, st.graph, policy);
        }
        st.tree = st.fusion.tree;
        ps.counters.emplace_back("clusters",
                                 int64_t(st.fusion.clusters.size()));
    });

    runPass("Compose", [&](PassStat &ps) {
        if (!usesCompose(opt.strategy))
            return;
        core::ComposeOptions copts;
        copts.tileSizes = opt.tileSizes;
        copts.innerTileSizes = opt.innerTileSizes;
        copts.targetParallelism = opt.targetParallelism;
        copts.startup = opt.startup;
        copts.maxRecompute = opt.maxRecompute;
        copts.footprintDilation =
            opt.strategy == Strategy::PolyMage
                ? std::max(1u, opt.footprintDilation)
                : opt.footprintDilation;
        st.composed =
            core::composeFrom(program, st.graph, st.fusion, copts);
        st.tree = st.composed.tree;
        ps.counters.emplace_back(
            "extensions",
            int64_t(st.composed.fusedIntermediates.size()));
        ps.counters.emplace_back(
            "skipped", int64_t(st.composed.skippedStatements.size()));
        ps.counters.emplace_back(
            "tiled_live_outs", int64_t(st.composed.tiledLiveOuts));
        ps.counters.emplace_back("spaces",
                                 int64_t(st.composed.spaces.size()));
        ps.counters.emplace_back(
            "dead_code", st.composed.deadCodeEliminated ? 1 : 0);
    });

    runPass("Tile", [&](PassStat &ps) {
        // Composition strategies tile inside Compose (Algorithm 1);
        // the naive strategy never tiles.
        if (usesCompose(opt.strategy) ||
            opt.strategy == Strategy::Naive)
            return;
        unsigned tiled = tileAllBands(st.tree, opt.tileSizes);
        ps.counters.emplace_back("bands_tiled", int64_t(tiled));
    });

    runPass("Promote", [&](PassStat &ps) {
        // Promotion is applied while scanning the tree (Sec. V-B);
        // this pass accounts for what Codegen will promote.
        int64_t extensions =
            countExtensionNodes(st.tree.root());
        ps.counters.emplace_back("extension_nodes", extensions);
        ps.counters.emplace_back(
            "promoted",
            opt.gen.promoteIntermediates ? extensions : 0);
    });

    runPass("Codegen", [&](PassStat &ps) {
        st.ast = codegen::generateAst(st.tree, opt.gen, st.genBands);
        int64_t nodes = 0, loops = 0, stmts = 0, allocs = 0;
        countAstNodes(st.ast, nodes, loops, stmts, allocs);
        ps.counters.emplace_back("ast_nodes", nodes);
        ps.counters.emplace_back("loops", loops);
        ps.counters.emplace_back("stmts", stmts);
        ps.counters.emplace_back("allocs", allocs);
        ps.counters.emplace_back("tile_bands",
                                 int64_t(st.genBands.size()));
    });

    runPass("TileGraph", [&](PassStat &ps) {
        std::vector<deps::TileBandDesc> descs;
        descs.reserve(st.genBands.size());
        for (const codegen::GeneratedBand &b : st.genBands) {
            deps::TileBandDesc d;
            d.id = b.id;
            d.tileSizes = b.tileSizes;
            d.coincident = b.coincident;
            for (const codegen::GeneratedBandMember &m : b.members)
                d.members.push_back({m.stmt, m.dims, m.shifts});
            d.extraStmts = b.extraStmts;
            d.localTensors = b.localTensors;
            descs.push_back(std::move(d));
        }
        try {
            st.tileBands = deps::tileGraph(st.graph, descs);
        } catch (const BudgetExceeded &) {
            // Classification is an optimization; degrade every band
            // to the always-safe answer instead of failing the run.
            st.tileBands.clear();
            for (const deps::TileBandDesc &d : descs) {
                deps::TileBandGraph g;
                g.bandId = d.id;
                g.cls = deps::TileBandClass::Serial;
                g.note = "tile-graph budget exceeded";
                st.tileBands.push_back(std::move(g));
            }
        }
        int64_t par = 0, wave = 0, serial = 0;
        for (const deps::TileBandGraph &g : st.tileBands) {
            switch (g.cls) {
              case deps::TileBandClass::FullyParallel: ++par; break;
              case deps::TileBandClass::Wavefront: ++wave; break;
              case deps::TileBandClass::Serial: ++serial; break;
            }
        }
        ps.counters.emplace_back("bands_parallel", par);
        ps.counters.emplace_back("bands_wavefront", wave);
        ps.counters.emplace_back("bands_serial", serial);
    });

    return st;
}

} // namespace driver
} // namespace polyfuse
