/**
 * @file
 * The production command-line entry point of the compiler:
 *
 *   polyfuse --workload harris --strategy ours --tiles 32,128 \
 *            --emit c|cuda|tree|stats
 *
 * Builds the named workload, runs the driver's pass pipeline with
 * the chosen strategy, and emits the generated C/CUDA code, the
 * final schedule tree, or the per-pass timing/counter report.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "codegen/cprinter.hh"
#include "driver/pipeline.hh"
#include "driver/registry.hh"

using namespace polyfuse;

namespace {

void
usage(FILE *to)
{
    std::fprintf(
        to,
        "usage: polyfuse --workload <name> [options]\n"
        "\n"
        "options:\n"
        "  --workload <name>     workload to compile (see --list)\n"
        "  --strategy <name>     naive|minfuse|smartfuse|maxfuse|\n"
        "                        hybridfuse|polymage|halide|ours\n"
        "                        (default: ours)\n"
        "  --tiles a,b,...       live-out tile sizes (default: the\n"
        "                        workload's auto-tuned sizes)\n"
        "  --inner-tiles a,b,... second-level tile sizes\n"
        "  --parallelism N       1 = OpenMP CPU, 2 = GPU grid\n"
        "  --rows N / --cols N   workload size parameters\n"
        "  --no-promote          keep intermediates in DRAM\n"
        "  --emit c|cuda|tree|stats|json\n"
        "                        what to print (default: stats)\n"
        "  --list                list registered workloads\n"
        "  --help                this text\n");
}

bool
parseTiles(const std::string &arg, std::vector<int64_t> &out)
{
    out.clear();
    size_t pos = 0;
    while (pos < arg.size()) {
        size_t comma = arg.find(',', pos);
        std::string tok = arg.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        char *end = nullptr;
        long long v = std::strtoll(tok.c_str(), &end, 10);
        if (!end || *end != '\0' || v <= 0)
            return false;
        out.push_back(v);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return !out.empty();
}

void
listWorkloads()
{
    std::printf("%-12s %-10s %s\n", "name", "tiles", "description");
    for (const auto &w : driver::workloadRegistry()) {
        std::string tiles;
        for (int64_t t : w.defaultTiles)
            tiles += (tiles.empty() ? "" : ",") + std::to_string(t);
        std::printf("%-12s %-10s %s\n", w.name, tiles.c_str(),
                    w.description);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload;
    std::string emit = "stats";
    driver::PipelineOptions opts;
    bool tiles_given = false;
    driver::WorkloadParams params;
    bool rows_given = false, cols_given = false;

    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "polyfuse: %s needs a value\n",
                         argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (arg == "--list") {
            listWorkloads();
            return 0;
        } else if (arg == "--workload") {
            workload = value(i);
        } else if (arg == "--strategy") {
            std::string name = value(i);
            if (!driver::parseStrategy(name, opts.strategy)) {
                std::fprintf(stderr,
                             "polyfuse: unknown strategy '%s'\n",
                             name.c_str());
                return 2;
            }
        } else if (arg == "--tiles") {
            if (!parseTiles(value(i), opts.tileSizes)) {
                std::fprintf(stderr, "polyfuse: bad --tiles\n");
                return 2;
            }
            tiles_given = true;
        } else if (arg == "--inner-tiles") {
            if (!parseTiles(value(i), opts.innerTileSizes)) {
                std::fprintf(stderr, "polyfuse: bad --inner-tiles\n");
                return 2;
            }
        } else if (arg == "--parallelism") {
            opts.targetParallelism = std::atoi(value(i));
        } else if (arg == "--rows") {
            params.rows = std::atoll(value(i));
            rows_given = true;
        } else if (arg == "--cols") {
            params.cols = std::atoll(value(i));
            cols_given = true;
        } else if (arg == "--no-promote") {
            opts.gen.promoteIntermediates = false;
        } else if (arg == "--emit") {
            emit = value(i);
        } else {
            std::fprintf(stderr, "polyfuse: unknown option '%s'\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        }
    }

    if (emit != "stats" && emit != "json" && emit != "tree" &&
        emit != "c" && emit != "cuda") {
        std::fprintf(stderr, "polyfuse: unknown --emit '%s'\n",
                     emit.c_str());
        return 2;
    }
    if (workload.empty()) {
        usage(stderr);
        return 2;
    }
    const driver::WorkloadSpec *spec =
        driver::findWorkload(workload);
    if (!spec) {
        std::fprintf(stderr, "polyfuse: unknown workload '%s' "
                     "(try --list)\n",
                     workload.c_str());
        return 2;
    }
    if (!rows_given)
        params.rows = spec->defaults.rows;
    if (!cols_given)
        params.cols = spec->defaults.cols;
    if (!tiles_given)
        opts.tileSizes = spec->defaultTiles;

    ir::Program program = spec->make(params);
    driver::Pipeline pipeline(opts);
    driver::CompilationState state = pipeline.run(program);

    if (emit == "stats") {
        std::printf("workload %s, strategy %s, %zu statements\n",
                    spec->name,
                    driver::strategyName(opts.strategy),
                    program.statements().size());
        std::printf("%s", state.stats.str().c_str());
        std::printf("compile (scheduling + codegen): %.3f ms\n",
                    state.compileMs());
    } else if (emit == "json") {
        std::printf("%s\n", state.stats.json().c_str());
    } else if (emit == "tree") {
        std::printf("%s", state.tree.str().c_str());
    } else if (emit == "c") {
        std::printf("%s",
                    codegen::printCode(program, state.ast).c_str());
    } else {
        // emit == "cuda"; the spelling was validated up front.
        std::printf("%s",
                    codegen::printCode(program, state.ast,
                                       codegen::PrintStyle::Cuda)
                        .c_str());
    }
    return 0;
}
