/**
 * @file
 * The production command-line entry point of the compiler:
 *
 *   polyfuse --workload harris --strategy ours --tiles 32,128 \
 *            --emit c|cuda|tree|stats
 *   polyfuse --all --jobs 8 --emit stats|json
 *
 * Builds the named workload, runs the driver's pass pipeline with
 * the chosen strategy, and emits the generated C/CUDA code, the
 * final schedule tree, or the per-pass timing/counter report.
 * `--all` batch-compiles every registered workload under every
 * strategy through driver::compileBatch, `--jobs N` of them
 * concurrently, and prints the cross-job summary table (or one
 * merged JSON object with `--emit json`).
 */

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "codegen/cprinter.hh"
#include "deps/dependences.hh"
#include "driver/artifact.hh"
#include "driver/batch.hh"
#include "driver/pipeline.hh"
#include "driver/registry.hh"
#include "exec/engine.hh"
#include "exec/kernel_cache.hh"
#include "perfmodel/autotune.hh"
#include "perfmodel/tune_db.hh"
#include "service/client.hh"
#include "service/server.hh"
#include "support/budget.hh"
#include "support/failpoint.hh"
#include "support/thread_pool.hh"
#include "workloads/equake.hh"

using namespace polyfuse;

namespace {

void
usage(FILE *to)
{
    std::fprintf(
        to,
        "usage: polyfuse --workload <name> [options]\n"
        "       polyfuse --all [--jobs N] [options]\n"
        "\n"
        "options:\n"
        "  --workload <name>     workload to compile (see --list)\n"
        "  --all                 batch-compile every registered\n"
        "                        workload under every strategy\n"
        "  --jobs N              concurrent compilations for --all\n"
        "                        (default 1; 0 = all hardware\n"
        "                        threads)\n"
        "  --strategy <name>     naive|minfuse|smartfuse|maxfuse|\n"
        "                        hybridfuse|polymage|halide|ours\n"
        "                        (default: ours)\n"
        "  --tiles a,b,...       live-out tile sizes (default: the\n"
        "                        workload's auto-tuned sizes)\n"
        "  --inner-tiles a,b,... second-level tile sizes\n"
        "  --parallelism N       1 = OpenMP CPU, 2 = GPU grid\n"
        "  --rows N / --cols N   workload size parameters\n"
        "  --no-promote          keep intermediates in DRAM\n"
        "  --no-op-cache         disable the Presburger operation\n"
        "                        cache (the uncached baseline)\n"
        "  --timeout-ms N        per-job wall-clock budget; over-\n"
        "                        budget jobs fall back to cheaper\n"
        "                        strategies (see --no-fallback)\n"
        "  --budget-elims N      cap FM eliminations per job\n"
        "  --no-fallback         fail over-budget jobs instead of\n"
        "                        downgrading the strategy\n"
        "  --strict              exit nonzero when any job was\n"
        "                        downgraded (failures always do)\n"
        "  --failpoints SPEC     arm fault-injection sites, e.g.\n"
        "                        'core.compose=budget;pres.parse=off'\n"
        "                        (also: POLYFUSE_FAILPOINTS env)\n"
        "  --run                 execute the compiled program and\n"
        "                        report runtime statistics\n"
        "  --exec <tier>         execution tier for --run:\n"
        "                        interp|bytecode|native (default:\n"
        "                        bytecode; implies --run)\n"
        "  --native              shorthand for --exec native\n"
        "  --threads N           worker threads for --run (0 = all\n"
        "                        hardware threads; implies --run)\n"
        "  --par off|static|graph\n"
        "                        tile scheduling strategy for --run\n"
        "                        (bytecode tier; static = coincident\n"
        "                        bands only, graph = also wavefront\n"
        "                        bands via the inter-tile DAG;\n"
        "                        with --exec native, compiles a\n"
        "                        tile-team over coincident bands;\n"
        "                        implies --run)\n"
        "  --simd on|off         vectorized bytecode fast path for\n"
        "                        unit-stride inner loops (selected\n"
        "                        per loop, bit-identical to scalar;\n"
        "                        implies --run)\n"
        "  --cache               consult/populate the process-wide\n"
        "                        kernel cache (fingerprint-keyed;\n"
        "                        repeat compiles of the same program\n"
        "                        + options skip the whole pipeline)\n"
        "  --cache-bytes N       kernel cache capacity in bytes\n"
        "                        (implies --cache; default 256 MiB)\n"
        "  --repeat N            compile+run N times in-process (with\n"
        "                        --cache, iterations 2..N are warm)\n"
        "  --autotune            pick tile sizes with the perfmodel\n"
        "                        auto-tuner before compiling\n"
        "                        (--workload only)\n"
        "  --tune-db PATH        persistent fingerprint-keyed tuning\n"
        "                        store for --autotune: hits warm-\n"
        "                        start, searches are saved back\n"
        "  --search MODE         autotune search driver: 'guided'\n"
        "                        (model-ranked top-K, the default)\n"
        "                        or 'exhaustive' (measure every\n"
        "                        candidate; the oracle)\n"
        "  --search-top-k N      guided: fully measure the N top-\n"
        "                        ranked candidates (default: auto,\n"
        "                        ~20%% of the ladder)\n"
        "  --search-report       also run the exhaustive oracle and\n"
        "                        report the guided quality gap\n"
        "  --emit c|cuda|tree|stats|json\n"
        "                        what to print (default: stats;\n"
        "                        --all supports stats and json)\n"
        "  --serve SOCKET        run as a long-lived compile daemon\n"
        "                        on the unix socket (SIGTERM or a\n"
        "                        shutdown request drains gracefully)\n"
        "  --serve-workers N     daemon compile workers (default 4)\n"
        "  --queue-depth N       daemon admission cap; excess\n"
        "                        requests are shed as 'overloaded'\n"
        "                        (default 16)\n"
        "  --drain-ms N          daemon drain deadline on shutdown\n"
        "                        (default 2000)\n"
        "  --connect SOCKET      send one request to a daemon and\n"
        "                        print the response (uses --workload,\n"
        "                        --strategy, --tiles, --exec, ...)\n"
        "  --deadline-ms N       whole-request deadline for\n"
        "                        --connect (queue + compile + run)\n"
        "  --shutdown            with --connect: ask the daemon to\n"
        "                        drain and exit\n"
        "  --list                list registered workloads\n"
        "  --help                this text\n");
}

bool
parseTiles(const std::string &arg, std::vector<int64_t> &out)
{
    out.clear();
    size_t pos = 0;
    while (pos < arg.size()) {
        size_t comma = arg.find(',', pos);
        std::string tok = arg.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        char *end = nullptr;
        long long v = std::strtoll(tok.c_str(), &end, 10);
        if (!end || *end != '\0' || v <= 0)
            return false;
        out.push_back(v);
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return !out.empty();
}

void
listWorkloads()
{
    std::printf("%-12s %-10s %s\n", "name", "tiles", "description");
    for (const auto &w : driver::workloadRegistry()) {
        std::string tiles;
        for (int64_t t : w.defaultTiles)
            tiles += (tiles.empty() ? "" : ",") + std::to_string(t);
        std::printf("%-12s %-10s %s\n", w.name, tiles.c_str(),
                    w.description);
    }
}

/** Set by SIGTERM/SIGINT; the serve loop polls it (the handler must
 *  stay async-signal-safe, so it only flips this flag). */
volatile std::sig_atomic_t g_signal = 0;

void
onSignal(int)
{
    g_signal = 1;
}

} // namespace

/** The --all batch: every workload x every strategy. */
int
runAll(const driver::BatchOptions &bopts,
       const driver::PipelineOptions &base, bool tiles_given,
       const driver::WorkloadParams &params, bool rows_given,
       bool cols_given, const std::string &emit, bool strict)
{
    std::vector<driver::BatchJob> jobs;
    for (const auto &w : driver::workloadRegistry()) {
        driver::WorkloadParams p = w.defaults;
        if (rows_given)
            p.rows = params.rows;
        if (cols_given)
            p.cols = params.cols;
        for (auto strategy : driver::allStrategies()) {
            driver::BatchJob job;
            job.name = std::string(w.name) + "/" +
                       driver::strategyName(strategy);
            job.options = base;
            job.options.strategy = strategy;
            if (!tiles_given)
                job.options.tileSizes = w.defaultTiles;
            // The registry spec outlives the batch; capture cheaply.
            const auto &make = w.make;
            job.make = [&make, p] { return make(p); };
            jobs.push_back(std::move(job));
        }
    }

    driver::BatchResult batch =
        driver::compileBatch(std::move(jobs), bopts);
    if (emit == "json")
        std::printf("%s\n", batch.json().c_str());
    else
        std::printf("%s", batch.summary().c_str());
    for (const auto &j : batch.jobs) {
        if (!j.ok)
            std::fprintf(stderr, "polyfuse: job %s FAILED: %s\n",
                         j.name.c_str(), j.error.c_str());
        else if (j.artifact.downgraded())
            std::fprintf(
                stderr,
                "polyfuse: job %s downgraded %s -> %s "
                "(%zu attempts over budget)%s\n",
                j.name.c_str(),
                driver::strategyName(j.artifact.requestedStrategy),
                driver::strategyName(j.artifact.effectiveStrategy),
                j.artifact.fallbackTrail.size(),
                strict ? " [strict]" : "");
    }
    return driver::batchExitCode(batch, strict);
}

int
main(int argc, char **argv)
{
    std::string workload;
    std::string emit = "stats";
    driver::PipelineOptions opts;
    bool tiles_given = false;
    bool all = false;
    unsigned jobsN = 1;
    driver::WorkloadParams params;
    bool rows_given = false, cols_given = false;
    double timeout_ms = 0;
    uint64_t budget_elims = 0;
    bool strict = false;
    bool use_op_cache = true;
    bool do_run = false;
    exec::Tier tier = exec::Tier::Bytecode;
    unsigned run_threads = 1;
    exec::ParStrategy par = exec::ParStrategy::Off;
    exec::SimdMode simd = exec::SimdMode::Off;
    bool use_cache = false;
    uint64_t cache_bytes = 0;
    unsigned repeatN = 1;
    bool do_autotune = false;
    std::string tune_db_path;
    // The CLI defaults to the guided driver (the library default
    // stays exhaustive for backward compatibility).
    perfmodel::SearchMode search_mode = perfmodel::SearchMode::Guided;
    unsigned search_top_k = 0;
    bool search_report = false;
    std::string serve_path;
    std::string connect_path;
    unsigned serve_workers = 4;
    size_t queue_depth = 16;
    double drain_ms = 2000;
    double deadline_ms = 0;
    bool do_shutdown = false;

    auto value = [&](int &i) -> const char * {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "polyfuse: %s needs a value\n",
                         argv[i]);
            std::exit(2);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (arg == "--list") {
            listWorkloads();
            return 0;
        } else if (arg == "--workload") {
            workload = value(i);
        } else if (arg == "--all") {
            all = true;
        } else if (arg == "--jobs") {
            char *end = nullptr;
            const char *v = value(i);
            long n = std::strtol(v, &end, 10);
            if (!end || *end != '\0' || n < 0) {
                std::fprintf(stderr, "polyfuse: bad --jobs '%s'\n",
                             v);
                return 2;
            }
            jobsN = n == 0
                        ? polyfuse::ThreadPool::defaultThreads()
                        : unsigned(n);
        } else if (arg == "--strategy") {
            std::string name = value(i);
            if (!driver::parseStrategy(name, opts.strategy)) {
                std::fprintf(stderr,
                             "polyfuse: unknown strategy '%s'\n",
                             name.c_str());
                return 2;
            }
        } else if (arg == "--tiles") {
            if (!parseTiles(value(i), opts.tileSizes)) {
                std::fprintf(stderr, "polyfuse: bad --tiles\n");
                return 2;
            }
            tiles_given = true;
        } else if (arg == "--inner-tiles") {
            if (!parseTiles(value(i), opts.innerTileSizes)) {
                std::fprintf(stderr, "polyfuse: bad --inner-tiles\n");
                return 2;
            }
        } else if (arg == "--parallelism") {
            opts.targetParallelism = std::atoi(value(i));
        } else if (arg == "--rows") {
            params.rows = std::atoll(value(i));
            rows_given = true;
        } else if (arg == "--cols") {
            params.cols = std::atoll(value(i));
            cols_given = true;
        } else if (arg == "--no-promote") {
            opts.gen.promoteIntermediates = false;
        } else if (arg == "--no-op-cache") {
            use_op_cache = false;
        } else if (arg == "--timeout-ms") {
            char *end = nullptr;
            const char *v = value(i);
            double ms = std::strtod(v, &end);
            if (!end || *end != '\0' || ms <= 0) {
                std::fprintf(stderr,
                             "polyfuse: bad --timeout-ms '%s'\n", v);
                return 2;
            }
            timeout_ms = ms;
        } else if (arg == "--budget-elims") {
            char *end = nullptr;
            const char *v = value(i);
            long long n = std::strtoll(v, &end, 10);
            if (!end || *end != '\0' || n <= 0) {
                std::fprintf(stderr,
                             "polyfuse: bad --budget-elims '%s'\n",
                             v);
                return 2;
            }
            budget_elims = uint64_t(n);
        } else if (arg == "--no-fallback") {
            opts.budgetFallback = false;
        } else if (arg == "--strict") {
            strict = true;
        } else if (arg == "--failpoints") {
            std::string err;
            if (!failpoints::parseSpec(value(i), &err)) {
                std::fprintf(stderr,
                             "polyfuse: bad --failpoints: %s\n",
                             err.c_str());
                return 2;
            }
        } else if (arg == "--run") {
            do_run = true;
        } else if (arg == "--exec") {
            std::string name = value(i);
            if (!exec::parseTier(name, &tier)) {
                std::fprintf(stderr,
                             "polyfuse: unknown --exec tier '%s'\n",
                             name.c_str());
                return 2;
            }
            do_run = true;
        } else if (arg == "--native") {
            tier = exec::Tier::Native;
            do_run = true;
        } else if (arg == "--threads") {
            char *end = nullptr;
            const char *v = value(i);
            long n = std::strtol(v, &end, 10);
            if (!end || *end != '\0' || n < 0) {
                std::fprintf(stderr,
                             "polyfuse: bad --threads '%s'\n", v);
                return 2;
            }
            run_threads =
                n == 0 ? polyfuse::ThreadPool::defaultThreads()
                       : unsigned(n);
            do_run = true;
        } else if (arg == "--par") {
            std::string name = value(i);
            if (!exec::parseParStrategy(name, &par)) {
                std::fprintf(stderr,
                             "polyfuse: unknown --par '%s'\n",
                             name.c_str());
                return 2;
            }
            do_run = true;
        } else if (arg == "--simd") {
            std::string name = value(i);
            if (!exec::parseSimdMode(name, &simd)) {
                std::fprintf(stderr,
                             "polyfuse: unknown --simd '%s'\n",
                             name.c_str());
                return 2;
            }
            do_run = true;
        } else if (arg == "--cache") {
            use_cache = true;
        } else if (arg == "--cache-bytes") {
            char *end = nullptr;
            const char *v = value(i);
            long long n = std::strtoll(v, &end, 10);
            if (!end || *end != '\0' || n <= 0) {
                std::fprintf(stderr,
                             "polyfuse: bad --cache-bytes '%s'\n", v);
                return 2;
            }
            cache_bytes = uint64_t(n);
            use_cache = true;
        } else if (arg == "--repeat") {
            char *end = nullptr;
            const char *v = value(i);
            long n = std::strtol(v, &end, 10);
            if (!end || *end != '\0' || n <= 0) {
                std::fprintf(stderr, "polyfuse: bad --repeat '%s'\n",
                             v);
                return 2;
            }
            repeatN = unsigned(n);
        } else if (arg == "--autotune") {
            do_autotune = true;
        } else if (arg == "--search") {
            const char *v = value(i);
            if (!perfmodel::parseSearchMode(v, &search_mode)) {
                std::fprintf(stderr,
                             "polyfuse: bad --search '%s' (use "
                             "exhaustive|guided)\n",
                             v);
                return 2;
            }
        } else if (arg == "--search-top-k") {
            char *end = nullptr;
            const char *v = value(i);
            long n = std::strtol(v, &end, 10);
            if (!end || *end != '\0' || n <= 0) {
                std::fprintf(stderr,
                             "polyfuse: bad --search-top-k '%s'\n",
                             v);
                return 2;
            }
            search_top_k = unsigned(n);
        } else if (arg == "--search-report") {
            search_report = true;
        } else if (arg == "--tune-db") {
            tune_db_path = value(i);
        } else if (arg == "--serve") {
            serve_path = value(i);
        } else if (arg == "--serve-workers") {
            char *end = nullptr;
            const char *v = value(i);
            long n = std::strtol(v, &end, 10);
            if (!end || *end != '\0' || n < 0) {
                std::fprintf(stderr,
                             "polyfuse: bad --serve-workers '%s'\n",
                             v);
                return 2;
            }
            serve_workers = unsigned(n);
        } else if (arg == "--queue-depth") {
            char *end = nullptr;
            const char *v = value(i);
            long n = std::strtol(v, &end, 10);
            if (!end || *end != '\0' || n <= 0) {
                std::fprintf(stderr,
                             "polyfuse: bad --queue-depth '%s'\n",
                             v);
                return 2;
            }
            queue_depth = size_t(n);
        } else if (arg == "--drain-ms") {
            char *end = nullptr;
            const char *v = value(i);
            double ms = std::strtod(v, &end);
            if (!end || *end != '\0' || ms < 0) {
                std::fprintf(stderr,
                             "polyfuse: bad --drain-ms '%s'\n", v);
                return 2;
            }
            drain_ms = ms;
        } else if (arg == "--connect") {
            connect_path = value(i);
        } else if (arg == "--deadline-ms") {
            char *end = nullptr;
            const char *v = value(i);
            double ms = std::strtod(v, &end);
            if (!end || *end != '\0' || ms <= 0) {
                std::fprintf(stderr,
                             "polyfuse: bad --deadline-ms '%s'\n",
                             v);
                return 2;
            }
            deadline_ms = ms;
        } else if (arg == "--shutdown") {
            do_shutdown = true;
        } else if (arg == "--emit") {
            emit = value(i);
        } else {
            std::fprintf(stderr, "polyfuse: unknown option '%s'\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        }
    }

    if (emit != "stats" && emit != "json" && emit != "tree" &&
        emit != "c" && emit != "cuda") {
        std::fprintf(stderr, "polyfuse: unknown --emit '%s'\n",
                     emit.c_str());
        return 2;
    }

    // Daemon mode: serve compile requests until SIGTERM/SIGINT or a
    // shutdown request, then drain gracefully.
    if (!serve_path.empty()) {
        if (all || !workload.empty() || !connect_path.empty()) {
            std::fprintf(stderr,
                         "polyfuse: --serve excludes --all, "
                         "--workload and --connect\n");
            return 2;
        }
        std::unique_ptr<perfmodel::TuneDb> db;
        if (!tune_db_path.empty())
            db = std::make_unique<perfmodel::TuneDb>(tune_db_path);
        service::ServerOptions sopts;
        sopts.workers = serve_workers;
        sopts.maxQueueDepth = queue_depth;
        sopts.drainMs = drain_ms;
        sopts.tuneDb = db.get();
        if (cache_bytes)
            exec::KernelCache::process().setCapacityBytes(
                cache_bytes);
        service::Server server(serve_path, sopts);
        std::string err;
        if (!server.start(&err)) {
            std::fprintf(stderr, "polyfuse: --serve: %s\n",
                         err.c_str());
            return 1;
        }
        std::signal(SIGTERM, onSignal);
        std::signal(SIGINT, onSignal);
        std::fprintf(stderr,
                     "polyfuse: serving on %s (%u workers, queue "
                     "depth %zu)\n",
                     serve_path.c_str(),
                     sopts.workers ? sopts.workers
                                   : ThreadPool::defaultThreads(),
                     sopts.maxQueueDepth);
        server.run([] { return g_signal != 0; });
        std::fprintf(stderr, "polyfuse: daemon drained, exiting\n");
        return 0;
    }

    // Client mode: one request against a serving daemon.
    if (!connect_path.empty()) {
        service::Client client;
        std::string err;
        if (!client.connect(connect_path, &err)) {
            std::fprintf(stderr, "polyfuse: --connect: %s\n",
                         err.c_str());
            return 1;
        }
        service::Request req;
        req.id = 1;
        if (do_shutdown) {
            req.op = "shutdown";
        } else {
            if (workload.empty()) {
                std::fprintf(stderr,
                             "polyfuse: --connect needs --workload "
                             "(or --shutdown)\n");
                return 2;
            }
            req.op = "compile";
            req.workload = workload;
            if (rows_given)
                req.rows = params.rows;
            if (cols_given)
                req.cols = params.cols;
            req.strategy = driver::strategyName(opts.strategy);
            if (tiles_given) {
                req.tiles = opts.tileSizes;
                req.tilesGiven = true;
            }
            req.innerTiles = opts.innerTileSizes;
            req.tier = exec::tierName(tier);
            req.run = do_run;
            req.deadlineMs = deadline_ms;
            req.threads = run_threads;
            req.par = exec::parStrategyName(par);
            req.simd = exec::simdModeName(simd);
        }
        service::Response resp;
        if (!client.call(req, &resp, &err)) {
            std::fprintf(stderr, "polyfuse: --connect: %s\n",
                         err.c_str());
            return 1;
        }
        std::printf("%s\n",
                    service::encodeResponse(resp).c_str());
        if (!resp.ok) {
            std::fprintf(stderr, "polyfuse: %s: %s\n",
                         service::errorKindName(resp.kind),
                         resp.message.c_str());
            return 1;
        }
        return 0;
    }

    if (all) {
        if (!workload.empty()) {
            std::fprintf(stderr, "polyfuse: --all and --workload "
                                 "are mutually exclusive\n");
            return 2;
        }
        if (emit != "stats" && emit != "json") {
            std::fprintf(stderr, "polyfuse: --all supports --emit "
                                 "stats|json only\n");
            return 2;
        }
        if (do_autotune) {
            std::fprintf(stderr, "polyfuse: --autotune needs "
                                 "--workload\n");
            return 2;
        }
        driver::BatchOptions bopts;
        bopts.jobsN = jobsN;
        bopts.timeoutMs = timeout_ms;
        bopts.budget.fmEliminations = budget_elims;
        bopts.useOpCache = use_op_cache;
        bopts.tier = tier;
        if (use_cache) {
            bopts.kernelCache = &exec::KernelCache::process();
            if (cache_bytes)
                bopts.kernelCache->setCapacityBytes(cache_bytes);
        }
        return runAll(bopts, opts, tiles_given, params, rows_given,
                      cols_given, emit, strict);
    }
    if (workload.empty()) {
        usage(stderr);
        return 2;
    }
    const driver::WorkloadSpec *spec =
        driver::findWorkload(workload);
    if (!spec) {
        std::fprintf(stderr, "polyfuse: unknown workload '%s' "
                     "(try --list)\n",
                     workload.c_str());
        return 2;
    }
    if (!rows_given)
        params.rows = spec->defaults.rows;
    if (!cols_given)
        params.cols = spec->defaults.cols;
    if (!tiles_given)
        opts.tileSizes = spec->defaultTiles;

    auto program =
        std::make_shared<const ir::Program>(spec->make(params));

    auto fill_inputs = [&](exec::Buffers &buffers) {
        if (program->name() == "equake") {
            workloads::initEquakeInputs(*program, buffers, 11);
        } else {
            for (size_t t = 0; t < program->tensors().size(); ++t)
                if (program->tensor(t).kind != ir::TensorKind::Temp)
                    buffers.fillPattern(t, 1000 + t);
        }
    };

    // Plan stage: auto-tuned tile sizes first (they are part of the
    // artifact fingerprint), warm-started from the tuning store.
    std::unique_ptr<perfmodel::TuneDb> tune_db;
    if (!tune_db_path.empty())
        tune_db = std::make_unique<perfmodel::TuneDb>(tune_db_path);
    perfmodel::AutotuneResult tuned;
    bool tuned_ok = false;
    if (do_autotune) {
        try {
            auto graph = deps::DependenceGraph::compute(*program);
            perfmodel::AutotuneOptions aopts;
            aopts.dims = opts.tileSizes.empty()
                             ? 2u
                             : unsigned(opts.tileSizes.size());
            aopts.targetParallelism = opts.targetParallelism;
            aopts.searchMode = search_mode;
            aopts.searchTopK = search_top_k;
            aopts.compareOracle = search_report;
            aopts.db = tune_db.get();
            tuned = perfmodel::autotuneTileSizes(*program, graph,
                                                 fill_inputs, aopts);
            tuned_ok = true;
            opts.tileSizes = tuned.tileSizes;
            std::string tiles;
            for (int64_t t : tuned.tileSizes)
                tiles +=
                    (tiles.empty() ? "" : ",") + std::to_string(t);
            if (tuned.warmStart) {
                std::fprintf(stderr,
                             "polyfuse: autotune picked tiles %s "
                             "(tuning-store warm start)\n",
                             tiles.c_str());
            } else {
                std::fprintf(
                    stderr,
                    "polyfuse: autotune picked tiles %s (%s "
                    "search%s, %u of %u candidates measured, "
                    "%u model-pruned)\n",
                    tiles.c_str(),
                    perfmodel::searchModeName(tuned.mode),
                    tuned.seededFromShape ? ", shape-key seeded"
                                          : "",
                    tuned.evaluated, tuned.totalCandidates,
                    tuned.pruned);
            }
            if (search_report && !tuned.warmStart &&
                tuned.mode == perfmodel::SearchMode::Guided)
                std::fprintf(
                    stderr,
                    "polyfuse: search report: modeled %.4f ms vs "
                    "oracle %.4f ms (gap %.2f%%), rank %.2f ms, "
                    "sweep %.2f ms\n",
                    tuned.modeledMs, tuned.oracleMs,
                    tuned.qualityGapPct, tuned.modelRankMs,
                    tuned.searchMs);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "polyfuse: autotune failed: %s\n",
                         e.what());
            return 1;
        }
    }

    driver::Pipeline pipeline(opts);
    driver::CompileContext ctx;
    ctx.setOpCacheEnabled(use_op_cache);
    ctx.budget.wallMs = timeout_ms;
    ctx.budget.fmEliminations = budget_elims;

    driver::ArtifactOptions aopts;
    aopts.tier = tier;
    aopts.par = par;
    aopts.parThreads = run_threads;
    aopts.simd = simd;
    if (use_cache) {
        aopts.cache = &exec::KernelCache::process();
        if (cache_bytes)
            aopts.cache->setCapacityBytes(cache_bytes);
    }

    // The tree emitter needs the schedule tree, which the frozen
    // artifact deliberately does not carry; it stays on the direct
    // pipeline path (and supports no --run/--repeat extras).
    if (emit == "tree") {
        try {
            driver::CompilationState state =
                pipeline.run(*program, ctx);
            std::printf("%s", state.tree.str().c_str());
            return 0;
        } catch (const std::exception &e) {
            std::fprintf(stderr, "polyfuse: %s\n", e.what());
            return 1;
        }
    }

    // Compile stage (x --repeat): every iteration goes through the
    // kernel cache when --cache is on, so iterations 2..N hit and
    // skip the whole Presburger/codegen pipeline.
    driver::KernelArtifact artifact;
    exec::ExecResult result;
    bool ran = false;
    for (unsigned rep = 0; rep < repeatN; ++rep) {
        try {
            artifact =
                driver::compileKernel(pipeline, program, ctx, aopts);
        } catch (const std::exception &e) {
            std::fprintf(stderr, "polyfuse: %s\n", e.what());
            return 1;
        }
        if (artifact.downgraded()) {
            std::fprintf(
                stderr,
                "polyfuse: downgraded %s -> %s "
                "(%zu attempts over budget)%s\n",
                driver::strategyName(artifact.requestedStrategy),
                driver::strategyName(artifact.effectiveStrategy),
                artifact.fallbackTrail.size(),
                strict ? " [strict]" : "");
            if (strict)
                return 1;
        }

        // Execute stage. Run before emitting: --emit json folds the
        // run report (the effective tier, fallback reasons, parallel
        // counters) into the one JSON object instead of dropping it.
        if (do_run) {
            exec::Buffers buffers(*program);
            fill_inputs(buffers);
            exec::ExecOptions eopts;
            eopts.tier = tier;
            eopts.threads = run_threads;
            eopts.par = par;
            eopts.simd = simd;
            try {
                result =
                    driver::executeKernel(artifact, buffers, eopts);
                ran = true;
            } catch (const std::exception &e) {
                std::fprintf(stderr, "polyfuse: run failed: %s\n",
                             e.what());
                return 1;
            }
            if (!result.fallbackReason.empty())
                std::fprintf(
                    stderr,
                    "polyfuse: fell back from %s to %s: %s\n",
                    exec::tierName(tier),
                    exec::tierName(result.tier),
                    result.fallbackReason.c_str());
            if (!result.parFallbackReason.empty())
                std::fprintf(stderr,
                             "polyfuse: parallel run degraded: %s\n",
                             result.parFallbackReason.c_str());
            if (simd == exec::SimdMode::On &&
                !result.simdFallbackReason.empty())
                std::fprintf(stderr,
                             "polyfuse: simd run degraded: %s\n",
                             result.simdFallbackReason.c_str());
        }
    }

    if (emit == "stats") {
        std::printf("workload %s, strategy %s, %zu statements%s\n",
                    spec->name,
                    driver::strategyName(artifact.effectiveStrategy),
                    program->statements().size(),
                    artifact.fromCache ? " [kernel-cache hit]" : "");
        std::printf("fingerprint %s\n",
                    artifact.fingerprint.hex().c_str());
        std::printf("%s", artifact.stats.str().c_str());
        std::printf("compile (scheduling + codegen): %.3f ms\n",
                    artifact.compileMs());
    } else if (emit == "json") {
        std::string out = artifact.stats.json();
        {
            // Splice artifact identity into the stats JSON (which
            // always ends in '}').
            std::string art = ", \"artifact\": {\"fingerprint\": \"" +
                              artifact.fingerprint.hex() +
                              "\", \"fromCache\": ";
            art += artifact.fromCache ? "true" : "false";
            art += "}";
            out.insert(out.size() - 1, art);
        }
        if (tuned_ok) {
            // Splice the tuning outcome into the stats JSON (which
            // always ends in '}').
            char buf[200];
            std::string tiles;
            for (int64_t t : tuned.tileSizes)
                tiles +=
                    (tiles.empty() ? "" : ", ") + std::to_string(t);
            std::string tj = ", \"autotune\": {\"tiles\": [" +
                             tiles + "], ";
            std::snprintf(
                buf, sizeof(buf),
                "\"mode\": \"%s\", \"warmStart\": %s, "
                "\"seededFromShape\": %s, \"modeledMs\": %.6f, ",
                perfmodel::searchModeName(tuned.mode),
                tuned.warmStart ? "true" : "false",
                tuned.seededFromShape ? "true" : "false",
                tuned.modeledMs);
            tj += buf;
            std::snprintf(
                buf, sizeof(buf),
                "\"measured\": %u, \"totalCandidates\": %u, "
                "\"pruned\": %u, \"modelRankMs\": %.4f, "
                "\"searchMs\": %.4f",
                tuned.evaluated, tuned.totalCandidates,
                tuned.pruned, tuned.modelRankMs, tuned.searchMs);
            tj += buf;
            if (search_report &&
                tuned.mode == perfmodel::SearchMode::Guided) {
                std::snprintf(buf, sizeof(buf),
                              ", \"oracleMs\": %.6f, "
                              "\"qualityGapPct\": %.4f",
                              tuned.oracleMs, tuned.qualityGapPct);
                tj += buf;
            }
            tj += "}";
            out.insert(out.size() - 1, tj);
        }
        if (ran) {
            // Splice a "run" object into the stats JSON (which always
            // ends in '}').
            char buf[160];
            std::snprintf(
                buf, sizeof(buf),
                ", \"run\": {\"requestedTier\": \"%s\", "
                "\"tier\": \"%s\", ",
                exec::tierName(tier), exec::tierName(result.tier));
            std::string run_json = buf;
            run_json += "\"fallbackReason\": \"" +
                        driver::jsonEscape(result.fallbackReason) +
                        "\", ";
            std::snprintf(buf, sizeof(buf),
                          "\"ms\": %.4f, \"instances\": %llu, "
                          "\"loads\": %llu, \"stores\": %llu, ",
                          result.stats.seconds * 1e3,
                          (unsigned long long)result.stats.instances,
                          (unsigned long long)result.stats.loads,
                          (unsigned long long)result.stats.stores);
            run_json += buf;
            const exec::ParRunStats &p = result.par;
            std::snprintf(
                buf, sizeof(buf),
                "\"par\": {\"threads\": %u, \"strategy\": \"%s\", "
                "\"regionsParallel\": %llu, "
                "\"regionsSequential\": %llu, ",
                p.threads, exec::parStrategyName(p.strategy),
                (unsigned long long)p.regionsParallel,
                (unsigned long long)p.regionsSequential);
            run_json += buf;
            std::snprintf(
                buf, sizeof(buf),
                "\"tilesExecuted\": %llu, \"waits\": %llu, "
                "\"criticalPath\": %llu, ",
                (unsigned long long)p.tilesExecuted,
                (unsigned long long)p.waits,
                (unsigned long long)p.criticalPath);
            run_json += buf;
            run_json +=
                "\"fallbackReason\": \"" +
                driver::jsonEscape(result.parFallbackReason) +
                "\"}, ";
            std::snprintf(
                buf, sizeof(buf),
                "\"simd\": {\"mode\": \"%s\", \"width\": %u, "
                "\"loops\": %llu, \"lanes\": %llu, ",
                exec::simdModeName(result.simd), exec::simdWidth(),
                (unsigned long long)result.stats.simdLoops,
                (unsigned long long)result.stats.simdLanes);
            run_json += buf;
            run_json +=
                "\"fallbackReason\": \"" +
                driver::jsonEscape(result.simdFallbackReason) +
                "\"}}";
            out.insert(out.size() - 1, run_json);
        }
        std::printf("%s\n", out.c_str());
    } else if (emit == "c") {
        std::printf("%s",
                    codegen::printCode(*program,
                                       artifact.image->ast)
                        .c_str());
    } else {
        // emit == "cuda"; the spelling was validated up front.
        std::printf("%s",
                    codegen::printCode(*program,
                                       artifact.image->ast,
                                       codegen::PrintStyle::Cuda)
                        .c_str());
    }

    if (ran && emit != "json") {
        std::printf("run: tier %s, %.3f ms",
                    exec::tierName(result.tier),
                    result.stats.seconds * 1e3);
        if (result.tier != exec::Tier::Native)
            std::printf(
                ", %llu instances, %llu loads, %llu stores",
                (unsigned long long)result.stats.instances,
                (unsigned long long)result.stats.loads,
                (unsigned long long)result.stats.stores);
        if (result.par.threads > 0)
            std::printf(
                ", par %s x%u (%llu tiles, %llu waits, "
                "critical path %llu)",
                exec::parStrategyName(result.par.strategy),
                result.par.threads,
                (unsigned long long)result.par.tilesExecuted,
                (unsigned long long)result.par.waits,
                (unsigned long long)result.par.criticalPath);
        if (result.simd == exec::SimdMode::On)
            std::printf(", simd x%u (%llu loops, %llu lanes)",
                        exec::simdWidth(),
                        (unsigned long long)result.stats.simdLoops,
                        (unsigned long long)result.stats.simdLanes);
        std::printf("\n");
    }
    return 0;
}
