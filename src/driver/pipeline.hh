/**
 * @file
 * The unified compilation driver: one named, ordered pass pipeline
 * (ComputeDeps -> Fuse -> Compose -> Tile -> Promote -> Codegen ->
 * TileGraph)
 * over a CompilationState, replacing the ad-hoc deps/fusion/compose/
 * codegen glue every benchmark, example and test used to assemble by
 * hand. The shape follows the pass managers of the paper's host
 * compilers (AKG, PPCG) and PolyMage's staged group/tile/storage
 * driver: every consumer goes through Pipeline::run and gets
 * per-pass wall times and counters (PassStats) for free.
 *
 * Strategy selection (the schedules the paper compares) is part of
 * the options: heuristic strategies route the work through the Fuse
 * and Tile passes, the composition strategies through Compose (which
 * tiles internally, Algorithm 1); passes that a strategy does not
 * need still run as recorded no-ops so the registry always lists the
 * full pipeline exactly once, in order.
 */

#ifndef POLYFUSE_DRIVER_PIPELINE_HH
#define POLYFUSE_DRIVER_PIPELINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "codegen/generate.hh"
#include "core/compose.hh"
#include "deps/dependences.hh"
#include "deps/tile_graph.hh"
#include "driver/compile_context.hh"
#include "driver/pass_stats.hh"
#include "ir/program.hh"
#include "schedule/fusion.hh"
#include "schedule/tree.hh"

namespace polyfuse {
namespace driver {

/** The schedules the paper compares (DESIGN.md section 4). */
enum class Strategy
{
    Naive,    ///< initial schedule, no tiling/fusion
    MinFuse,  ///< PPCG minfuse + rectangular tiling
    SmartFuse,///< PPCG smartfuse + rectangular tiling
    MaxFuse,  ///< PPCG maxfuse + rectangular tiling
    Hybrid,   ///< Pluto hybridfuse + rectangular tiling
    PolyMage, ///< tiling-after-fusion with over-approximated
              ///< overlapped tiles (footprint dilation 1)
    Halide,   ///< manual-schedule proxy: smartfuse groups, tiled
    Ours,     ///< the paper's composition (Algorithms 1-3)
};

/** Every strategy, in declaration order (for tables and parsing). */
const std::vector<Strategy> &allStrategies();

/** Printable strategy name; round-trips through parseStrategy. */
const char *strategyName(Strategy s);

/**
 * Parse a strategyName() spelling. @return false (leaving @p out
 * untouched) when @p name matches no strategy.
 */
bool parseStrategy(const std::string &name, Strategy &out);

/** Options of one driver run. */
struct PipelineOptions
{
    Strategy strategy = Strategy::Ours;

    /** Live-out tile sizes, outermost first; empty disables the
     *  Tile pass (and tiling inside Compose). */
    std::vector<int64_t> tileSizes{32, 32};

    /** Second-level tile sizes (multi-level hierarchies). */
    std::vector<int64_t> innerTileSizes{};

    /** 1 = OpenMP CPU, 2 = GPU grid (Sec. III-C). */
    unsigned targetParallelism = 1;

    /** Start-up heuristic of the composition strategies. */
    schedule::FusionPolicy startup = schedule::FusionPolicy::Smart;

    /** Recompute guard of the composition (core::ComposeOptions). */
    double maxRecompute = 4.0;

    /** Footprint dilation; Strategy::PolyMage forces >= 1. */
    unsigned footprintDilation = 0;

    /** Code generation options (scratchpad promotion, ...). */
    codegen::GenOptions gen;

    /** When the context's budget trips (BudgetExceeded), retry down
     *  the fallback chain of cheaper strategies instead of failing
     *  the run. Cancellation is never retried. */
    bool budgetFallback = true;
};

/**
 * The deterministic degradation ladder for @p requested: the
 * requested strategy first, then every strictly cheaper rung of
 * hybridfuse -> minfuse -> naive. The last entry is always
 * Strategy::Naive (for which Pipeline::run additionally holds an
 * unguarded passthrough attempt in reserve).
 */
std::vector<Strategy> fallbackChain(Strategy requested);

/** Everything the pipeline computed for one program. */
struct CompilationState
{
    /** The compiled program (owned by the caller; must outlive the
     *  state, as the dependence graph refers into it). */
    const ir::Program *program = nullptr;

    /** ComputeDeps output. */
    deps::DependenceGraph graph;

    /** Fuse output: start-up / heuristic clusters and their tree. */
    schedule::FusionResult fusion;

    /** Compose output (composition strategies only). */
    core::ComposeResult composed;

    /** The final schedule tree the AST was generated from. */
    schedule::ScheduleTree tree;

    /** Codegen output. */
    codegen::AstPtr ast;

    /** Tiled bands the AST carries, in generation order (bandId ==
     *  index); the Codegen pass's side table. */
    std::vector<codegen::GeneratedBand> genBands;

    /** TileGraph output: per-band inter-tile dependence stencils and
     *  parallel classifications, keyed by bandId. Feed to
     *  exec::ExecOptions::tileBands to enable parallel execution. */
    std::vector<deps::TileBandGraph> tileBands;

    /** Per-pass wall times and counters. */
    PassStats stats;

    /** The strategy the caller asked for. */
    Strategy requestedStrategy = Strategy::Ours;

    /** The strategy that actually produced the AST (differs from
     *  requestedStrategy after a budget-driven downgrade). */
    Strategy effectiveStrategy = Strategy::Ours;

    /** One entry per abandoned attempt: "<strategy>: <reason>". */
    std::vector<std::string> fallbackTrail;

    /** True when the budget forced a cheaper strategy. */
    bool downgraded() const { return !fallbackTrail.empty(); }

    /** Scheduling + codegen milliseconds, dependence analysis
     *  excluded (the compile-time metric of E7 / Table I). */
    double compileMs() const;
};

/** The compilation driver. */
class Pipeline
{
  public:
    explicit Pipeline(PipelineOptions options = {});

    const PipelineOptions &options() const { return options_; }

    /**
     * Run every pass over @p program, charging the work to @p ctx
     * (installed as the thread's active pres context for the
     * duration), and return the final state. Re-entrant: concurrent
     * runs with distinct contexts share no mutable state.
     */
    CompilationState run(const ir::Program &program,
                         CompileContext &ctx) const;

    /** run() against a context local to the call (per-pass stats are
     *  identical; the caller just cannot inspect the totals). */
    CompilationState run(const ir::Program &program) const;

    /** The pass names run() executes, in execution order. */
    static const std::vector<std::string> &passNames();

  private:
    CompilationState runOnce(const ir::Program &program,
                             CompileContext &ctx,
                             const PipelineOptions &opt) const;

    PipelineOptions options_;
};

/**
 * Tile every tilable top-level band of @p tree rectangularly
 * (tiling-after-fusion; the driver's Tile pass for the heuristic
 * strategies). @return the number of bands tiled.
 */
unsigned tileAllBands(schedule::ScheduleTree &tree,
                      const std::vector<int64_t> &sizes);

} // namespace driver
} // namespace polyfuse

#endif // POLYFUSE_DRIVER_PIPELINE_HH
