/**
 * @file
 * The workload registry of the production CLI: every program the
 * repository can build, addressable by name, with its default
 * (auto-tuned) tile sizes. Backs `polyfuse --workload <name>` and
 * keeps the benchmark tables and the CLI pointed at the same
 * factories.
 */

#ifndef POLYFUSE_DRIVER_REGISTRY_HH
#define POLYFUSE_DRIVER_REGISTRY_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ir/program.hh"

namespace polyfuse {
namespace driver {

/** Size parameters of a registry workload. Interpretation is per
 *  workload: image rows/cols, equake nodes/degree, PolyBench n/m. */
struct WorkloadParams
{
    int64_t rows = 256;
    int64_t cols = 256;
};

/** One registered workload. */
struct WorkloadSpec
{
    const char *name;        ///< CLI spelling
    const char *description; ///< one line for --list
    std::vector<int64_t> defaultTiles; ///< auto-tuned default
    WorkloadParams defaults; ///< sizes used when the CLI gives none
    std::function<ir::Program(const WorkloadParams &)> make;
};

/** Every registered workload, listing order. */
const std::vector<WorkloadSpec> &workloadRegistry();

/** Lookup by name (null when unknown). */
const WorkloadSpec *findWorkload(const std::string &name);

} // namespace driver
} // namespace polyfuse

#endif // POLYFUSE_DRIVER_REGISTRY_HH
