#include "pres/op_cache.hh"

#include <string>

#include "pres/row_hash.hh"

namespace polyfuse {
namespace pres {

namespace {

// Second-fingerprint seed: any constant with good bit dispersion that
// differs from kFnvOffset works; golden-ratio bits are traditional.
constexpr uint64_t kSeed2 = 0x9e3779b97f4a7c15ull;

uint64_t
mixStr(uint64_t h, const std::string &s)
{
    h = fnvMix(h, uint64_t(s.size()));
    for (char c : s) {
        h ^= uint8_t(c);
        h *= kFnvPrime;
    }
    return h;
}

uint64_t
mixSpace(uint64_t h, const Space &sp)
{
    h = fnvMix(h, sp.isMap() ? 1 : 0);
    h = mixStr(h, sp.inTuple());
    h = mixStr(h, sp.outTuple());
    h = fnvMix(h, sp.numIn());
    h = fnvMix(h, sp.numOut());
    h = fnvMix(h, sp.numParams());
    for (const auto &p : sp.params())
        h = mixStr(h, p);
    return h;
}

uint64_t
mixRows(uint64_t h, const std::vector<Constraint> &rows)
{
    h = fnvMix(h, uint64_t(rows.size()));
    for (const auto &r : rows)
        h = hashRow(r, h);
    return h;
}

uint64_t
fpMap(const BasicMap &m, uint64_t seed)
{
    uint64_t h = mixSpace(seed, m.space());
    h = fnvMix(h, m.wasExact() ? 1 : 0);
    h = fnvMix(h, m.markedEmpty() ? 1 : 0);
    return hashFinalize(mixRows(h, m.constraints()));
}

uint64_t
fpSet(const BasicSet &s, uint64_t seed)
{
    uint64_t h = mixSpace(seed, s.space());
    h = fnvMix(h, s.wasExact() ? 1 : 0);
    h = fnvMix(h, s.markedEmpty() ? 1 : 0);
    return hashFinalize(mixRows(h, s.constraints()));
}

uint64_t
opSeed(Op op, uint64_t seed)
{
    return fnvMix(seed, uint64_t(op));
}

/** Per-entry byte estimate for the arena proxy: rows + key + node. */
uint64_t
rowsBytes(const std::vector<Constraint> &rows)
{
    uint64_t b = sizeof(OpCache::Key) + 2 * sizeof(void *);
    for (const auto &r : rows)
        b += sizeof(Constraint) + r.coeffs.size() * sizeof(int64_t);
    return b;
}

uint64_t
boundsBytes(const OpCache::BoundsValue &v)
{
    uint64_t b = sizeof(OpCache::Key) + 2 * sizeof(void *);
    for (const auto &d : v.lowers)
        b += sizeof(DivBound) + d.coeffs.size() * sizeof(int64_t);
    for (const auto &d : v.uppers)
        b += sizeof(DivBound) + d.coeffs.size() * sizeof(int64_t);
    return b;
}

} // namespace

OpCache::Key
OpCache::makeKey(Op op, const BasicMap &a)
{
    return {fpMap(a, opSeed(op, kFnvOffset)),
            fpMap(a, opSeed(op, kSeed2))};
}

OpCache::Key
OpCache::makeKey(Op op, const BasicMap &a, const BasicMap &b)
{
    return {fpMap(b, fpMap(a, opSeed(op, kFnvOffset))),
            fpMap(b, fpMap(a, opSeed(op, kSeed2)))};
}

OpCache::Key
OpCache::makeKey(Op op, const BasicMap &a, const BasicSet &b)
{
    return {fpSet(b, fpMap(a, opSeed(op, kFnvOffset))),
            fpSet(b, fpMap(a, opSeed(op, kSeed2)))};
}

OpCache::Key
OpCache::makeKey(Op op, const BasicMap &a, uint64_t arg)
{
    return {fnvMix(fpMap(a, opSeed(op, kFnvOffset)), arg),
            fnvMix(fpMap(a, opSeed(op, kSeed2)), arg)};
}

OpCache::Key
OpCache::makeKey(Op op, const BasicSet &a)
{
    return {fpSet(a, opSeed(op, kFnvOffset)),
            fpSet(a, opSeed(op, kSeed2))};
}

OpCache::Key
OpCache::makeKey(Op op, const BasicSet &a, const BasicSet &b)
{
    return {fpSet(b, fpSet(a, opSeed(op, kFnvOffset))),
            fpSet(b, fpSet(a, opSeed(op, kSeed2)))};
}

OpCache::Key
OpCache::makeKey(Op op, const BasicSet &a, uint64_t arg0,
                 uint64_t arg1)
{
    return {fnvMix(fnvMix(fpSet(a, opSeed(op, kFnvOffset)), arg0),
                   arg1),
            fnvMix(fnvMix(fpSet(a, opSeed(op, kSeed2)), arg0), arg1)};
}

void
OpCache::hit(fm::PresCtx &ctx)
{
    ++stats_.hits;
    ++ctx.counters.cacheHits;
}

void
OpCache::miss(fm::PresCtx &ctx)
{
    ++stats_.misses;
    ++ctx.counters.cacheMisses;
}

const BasicMap *
OpCache::findMap(fm::PresCtx &ctx, const Key &k)
{
    auto it = maps_.find(k);
    if (it == maps_.end()) {
        miss(ctx);
        return nullptr;
    }
    hit(ctx);
    return &it->second;
}

const BasicSet *
OpCache::findSet(fm::PresCtx &ctx, const Key &k)
{
    auto it = sets_.find(k);
    if (it == sets_.end()) {
        miss(ctx);
        return nullptr;
    }
    hit(ctx);
    return &it->second;
}

const bool *
OpCache::findBool(fm::PresCtx &ctx, const Key &k)
{
    auto it = bools_.find(k);
    if (it == bools_.end()) {
        miss(ctx);
        return nullptr;
    }
    hit(ctx);
    return &it->second;
}

const OpCache::BoundsValue *
OpCache::findBounds(fm::PresCtx &ctx, const Key &k)
{
    auto it = bounds_.find(k);
    if (it == bounds_.end()) {
        miss(ctx);
        return nullptr;
    }
    hit(ctx);
    return &it->second;
}

void
OpCache::charge(fm::PresCtx &ctx, uint64_t bytes)
{
    // The arena proxy tracks cumulative materialized bytes (it is
    // never refunded, matching the FM engine's accounting), so an
    // armed Budget's allocBytes ceiling covers cache growth too.
    ctx.allocBytes += bytes;
    fm::checkBudget(ctx, "pres::OpCache::store");
}

void
OpCache::maybeEvict(fm::PresCtx &ctx)
{
    if (entries() < maxEntries_)
        return;
    uint64_t dropped = entries();
    stats_.evictions += dropped;
    ctx.counters.cacheEvictions += dropped;
    maps_.clear();
    sets_.clear();
    bools_.clear();
    bounds_.clear();
}

void
OpCache::storeMap(fm::PresCtx &ctx, const Key &k, const BasicMap &v)
{
    maybeEvict(ctx);
    charge(ctx, rowsBytes(v.constraints()));
    maps_.emplace(k, v);
}

void
OpCache::storeSet(fm::PresCtx &ctx, const Key &k, const BasicSet &v)
{
    maybeEvict(ctx);
    charge(ctx, rowsBytes(v.constraints()));
    sets_.emplace(k, v);
}

void
OpCache::storeBool(fm::PresCtx &ctx, const Key &k, bool v)
{
    maybeEvict(ctx);
    charge(ctx, sizeof(Key) + 2 * sizeof(void *) + sizeof(bool));
    bools_.emplace(k, v);
}

void
OpCache::storeBounds(fm::PresCtx &ctx, const Key &k,
                     const BoundsValue &v)
{
    maybeEvict(ctx);
    charge(ctx, boundsBytes(v));
    bounds_.emplace(k, v);
}

void
OpCache::clear()
{
    // A deliberate reset (new pipeline run), not capacity pressure:
    // not counted as evictions.
    maps_.clear();
    sets_.clear();
    bools_.clear();
    bounds_.clear();
}

} // namespace pres
} // namespace polyfuse
