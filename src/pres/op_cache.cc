#include "pres/op_cache.hh"

namespace polyfuse {
namespace pres {

namespace {

Fingerprinter
opSeed(Op op)
{
    Fingerprinter fp;
    fp.mix(uint64_t(op));
    return fp;
}

/** Per-entry byte estimate for the arena proxy: rows + key + node. */
uint64_t
rowsBytes(const std::vector<Constraint> &rows)
{
    uint64_t b = sizeof(OpCache::Key) + 2 * sizeof(void *);
    for (const auto &r : rows)
        b += sizeof(Constraint) + r.coeffs.size() * sizeof(int64_t);
    return b;
}

uint64_t
boundsBytes(const OpCache::BoundsValue &v)
{
    uint64_t b = sizeof(OpCache::Key) + 2 * sizeof(void *);
    for (const auto &d : v.lowers)
        b += sizeof(DivBound) + d.coeffs.size() * sizeof(int64_t);
    for (const auto &d : v.uppers)
        b += sizeof(DivBound) + d.coeffs.size() * sizeof(int64_t);
    return b;
}

} // namespace

OpCache::Key
OpCache::makeKey(Op op, const BasicMap &a)
{
    Fingerprinter fp = opSeed(op);
    mixBasicMap(fp, a);
    return fp.fingerprint();
}

OpCache::Key
OpCache::makeKey(Op op, const BasicMap &a, const BasicMap &b)
{
    Fingerprinter fp = opSeed(op);
    mixBasicMap(fp, a);
    mixBasicMap(fp, b);
    return fp.fingerprint();
}

OpCache::Key
OpCache::makeKey(Op op, const BasicMap &a, const BasicSet &b)
{
    Fingerprinter fp = opSeed(op);
    mixBasicMap(fp, a);
    mixBasicSet(fp, b);
    return fp.fingerprint();
}

OpCache::Key
OpCache::makeKey(Op op, const BasicMap &a, uint64_t arg)
{
    Fingerprinter fp = opSeed(op);
    mixBasicMap(fp, a);
    fp.mix(arg);
    return fp.fingerprint();
}

OpCache::Key
OpCache::makeKey(Op op, const BasicSet &a)
{
    Fingerprinter fp = opSeed(op);
    mixBasicSet(fp, a);
    return fp.fingerprint();
}

OpCache::Key
OpCache::makeKey(Op op, const BasicSet &a, const BasicSet &b)
{
    Fingerprinter fp = opSeed(op);
    mixBasicSet(fp, a);
    mixBasicSet(fp, b);
    return fp.fingerprint();
}

OpCache::Key
OpCache::makeKey(Op op, const BasicSet &a, uint64_t arg0,
                 uint64_t arg1)
{
    Fingerprinter fp = opSeed(op);
    mixBasicSet(fp, a);
    fp.mix(arg0);
    fp.mix(arg1);
    return fp.fingerprint();
}

void
OpCache::hit(fm::PresCtx &ctx)
{
    ++stats_.hits;
    ++ctx.counters.cacheHits;
}

void
OpCache::miss(fm::PresCtx &ctx)
{
    ++stats_.misses;
    ++ctx.counters.cacheMisses;
}

const BasicMap *
OpCache::findMap(fm::PresCtx &ctx, const Key &k)
{
    return findAs<BasicMap>(ctx, k);
}

const BasicSet *
OpCache::findSet(fm::PresCtx &ctx, const Key &k)
{
    return findAs<BasicSet>(ctx, k);
}

const bool *
OpCache::findBool(fm::PresCtx &ctx, const Key &k)
{
    return findAs<bool>(ctx, k);
}

const OpCache::BoundsValue *
OpCache::findBounds(fm::PresCtx &ctx, const Key &k)
{
    return findAs<BoundsValue>(ctx, k);
}

void
OpCache::charge(fm::PresCtx &ctx, uint64_t bytes)
{
    // The arena proxy tracks cumulative materialized bytes (it is
    // never refunded, matching the FM engine's accounting), so an
    // armed Budget's allocBytes ceiling covers cache growth too.
    ctx.allocBytes += bytes;
    fm::checkBudget(ctx, "pres::OpCache::store");
}

void
OpCache::store(fm::PresCtx &ctx, const Key &k, Value v,
               uint64_t bytes)
{
    charge(ctx, bytes);
    size_t evicted = lru_.insert(k, std::move(v));
    stats_.evictions += evicted;
    ctx.counters.cacheEvictions += evicted;
}

void
OpCache::storeMap(fm::PresCtx &ctx, const Key &k, const BasicMap &v)
{
    store(ctx, k, Value(v), rowsBytes(v.constraints()));
}

void
OpCache::storeSet(fm::PresCtx &ctx, const Key &k, const BasicSet &v)
{
    store(ctx, k, Value(v), rowsBytes(v.constraints()));
}

void
OpCache::storeBool(fm::PresCtx &ctx, const Key &k, bool v)
{
    store(ctx, k, Value(v),
          sizeof(Key) + 2 * sizeof(void *) + sizeof(bool));
}

void
OpCache::storeBounds(fm::PresCtx &ctx, const Key &k,
                     const BoundsValue &v)
{
    store(ctx, k, Value(v), boundsBytes(v));
}

} // namespace pres
} // namespace polyfuse
