/**
 * @file
 * A recursive-descent parser for an isl-like textual notation of sets
 * and maps, so workloads and tests can be stated the way the paper
 * writes them:
 *
 *   parseSet("[H,W,KH,KW] -> { S2[h,w,kh,kw] : 0 <= h <= H-KH and "
 *            "0 <= w <= W-KW and 0 <= kh < KH and 0 <= kw < KW }")
 *   parseMap("{ S2[h,w,kh,kw] -> A[h+kh, w+kw] }")
 *
 * Supported syntax:
 *  - optional parameter prefix "[N, M] -> ";
 *  - one or more pieces separated by ';' inside "{ }";
 *  - tuple elements that are fresh identifiers become dimensions;
 *    elements that are expressions (or reuse a bound name) add an
 *    equality on a fresh anonymous dimension;
 *  - conditions: affine comparisons chained (a <= b < c), joined
 *    with "and";
 *  - affine expressions: + - and multiplication by constants.
 *
 * Unknown identifiers in conditions are an error (parameters must be
 * declared), which catches typos in workload definitions.
 */

#ifndef POLYFUSE_PRES_PARSER_HH
#define POLYFUSE_PRES_PARSER_HH

#include <string>
#include <vector>

#include "pres/map.hh"
#include "pres/set.hh"

namespace polyfuse {
namespace pres {

/** Parse a (union) set. Throws FatalError on syntax errors. */
Set parseSet(const std::string &text);

/** Parse a (union) map. Throws FatalError on syntax errors. */
Map parseMap(const std::string &text);

/** Parse a set that must consist of a single piece. */
BasicSet parseBasicSet(const std::string &text);

/** Parse a map that must consist of a single piece. */
BasicMap parseBasicMap(const std::string &text);

/**
 * A parsed access relation: the map plus, when every output element
 * was given as an affine expression of the inputs, the row-per-output
 * index expressions over [in dims, params, 1] (used by the executor
 * to evaluate the access directly).
 */
struct ParsedAccess
{
    BasicMap map;
    bool hasExprs = false;
    std::vector<std::vector<int64_t>> outExprs;
};

/** Parse a single-piece map, retaining output index expressions. */
ParsedAccess parseAccess(const std::string &text);

/**
 * Parse a set that must consist of a single piece, also reporting
 * the dimension names as written (anonymous dims appear as "$k").
 */
BasicSet parseBasicSetNamed(const std::string &text,
                            std::vector<std::string> *dim_names);

/**
 * Parse a standalone affine expression over @p params into a
 * coefficient row laid out [params..., 1] (used for tensor extents).
 */
std::vector<int64_t>
parseAffine(const std::string &text,
            const std::vector<std::string> &params);

} // namespace pres
} // namespace polyfuse

#endif // POLYFUSE_PRES_PARSER_HH
