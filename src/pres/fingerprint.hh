/**
 * @file
 * 128-bit structural fingerprints: the generalization of the op
 * cache's two-seed key derivation (pres/op_cache.hh) into a reusable
 * streaming fingerprinter, so whole programs -- IR, strategy, tile
 * sizes, execution tier, codegen flags -- can be fingerprinted with
 * the same machinery that keys individual Presburger operations.
 *
 * Stability contract (what callers may rely on):
 *
 *  - A fingerprint is a pure function of the bytes mixed in: it is
 *    invariant across contexts, threads, processes and runs. No
 *    pointer values, iteration order of unordered containers, clock
 *    readings or allocator state ever enter the stream.
 *  - Two streams differing in any mixed word produce distinct
 *    fingerprints except for ~2^-64-probability collisions per pair
 *    (two independently seeded 64-bit FNV-1a/splitmix lanes).
 *  - Fingerprints are *not* stable across revisions that change what
 *    a stream mixes; persistent stores (perfmodel/tune_db.hh) guard
 *    against this with an explicit version tag mixed first.
 *
 * Length prefixes: every variable-length field (string, vector) mixes
 * its size before its elements, so concatenation ambiguities
 * ("ab"+"c" vs "a"+"bc") cannot alias.
 */

#ifndef POLYFUSE_PRES_FINGERPRINT_HH
#define POLYFUSE_PRES_FINGERPRINT_HH

#include <cstdint>
#include <string>

#include "pres/row_hash.hh"

namespace polyfuse {
namespace pres {

class Space;
class BasicSet;
class BasicMap;

/** Second-lane seed (distinct from kFnvOffset; golden-ratio bits). */
constexpr uint64_t kFingerprintSeed2 = 0x9e3779b97f4a7c15ull;

/** A 128-bit structural fingerprint: two independent 64-bit lanes. */
struct Fingerprint
{
    uint64_t h1 = 0;
    uint64_t h2 = 0;

    bool
    operator==(const Fingerprint &o) const
    {
        return h1 == o.h1 && h2 == o.h2;
    }

    bool operator!=(const Fingerprint &o) const { return !(*this == o); }

    /** 32 lower-case hex digits (h1 then h2); parseFingerprint
     *  round-trips. The tuning store's key spelling. */
    std::string hex() const;
};

/** Parse a Fingerprint::hex() spelling; false (and @p out untouched)
 *  on anything else. */
bool parseFingerprint(const std::string &text, Fingerprint *out);

/** Hash functor for unordered containers keyed by Fingerprint (h1
 *  alone: the lanes are already avalanched). */
struct FingerprintHash
{
    size_t operator()(const Fingerprint &f) const
    {
        return size_t(f.h1);
    }
};

/**
 * Streaming two-lane fingerprint builder. Mix the structure in any
 * deterministic order, then read fingerprint(); mixing is cheap
 * enough for per-operation cache keys (a few ns per word).
 */
class Fingerprinter
{
  public:
    explicit Fingerprinter(uint64_t seed1 = kFnvOffset,
                           uint64_t seed2 = kFingerprintSeed2)
        : a_(seed1), b_(seed2)
    {
    }

    void
    mix(uint64_t v)
    {
        a_ = fnvMix(a_, v);
        b_ = fnvMix(b_, v);
    }

    void mixSigned(int64_t v) { mix(uint64_t(v)); }

    void mixBool(bool v) { mix(v ? 1 : 0); }

    /** Bit pattern, so -0.0 != 0.0 and NaNs are stable. */
    void mixDouble(double v);

    /** Length-prefixed bytes. */
    void mix(const std::string &s);

    void mix(const char *s) { mix(std::string(s)); }

    /** Finalized fingerprint of everything mixed so far (the builder
     *  may keep mixing afterwards). */
    Fingerprint
    fingerprint() const
    {
        return {hashFinalize(a_), hashFinalize(b_)};
    }

  private:
    uint64_t a_;
    uint64_t b_;
};

/// @name Structural mixers for the Presburger layer
/// Full structural state: tuple names, arities, parameter names,
/// exactness/emptiness flags, and every constraint row in stored
/// order (see op_cache.hh on why in-order, not sorted).
/// @{
void mixSpace(Fingerprinter &fp, const Space &space);
void mixBasicSet(Fingerprinter &fp, const BasicSet &set);
void mixBasicMap(Fingerprinter &fp, const BasicMap &map);
/// @}

} // namespace pres
} // namespace polyfuse

#endif // POLYFUSE_PRES_FINGERPRINT_HH
