/**
 * @file
 * A small builder DSL for affine expressions and constraints over a
 * Space. Used by the IR layer and by tests to state iteration
 * domains, access relations and schedules readably:
 *
 *     Space sp = Space::forMap("S2", 4, "A", 2, {"H", "W"});
 *     LinExpr h = LinExpr::inDim(sp, 0), kh = LinExpr::inDim(sp, 2);
 *     Constraint c = eqCons(LinExpr::outDim(sp, 0), h + kh);
 */

#ifndef POLYFUSE_PRES_AFFINE_HH
#define POLYFUSE_PRES_AFFINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "pres/constraint.hh"
#include "pres/space.hh"
#include "support/intmath.hh"
#include "support/logging.hh"

namespace polyfuse {
namespace pres {

/** An affine expression: one coefficient per column of a Space.
 *  Stored as a CoeffRow, so building expressions allocates nothing
 *  for the common column counts. */
class LinExpr
{
  public:
    LinExpr() = default;

    explicit LinExpr(const Space &space)
        : coeffs_(space.numCols(), 0) {}

    /** The constant expression @p value. */
    static LinExpr
    constant(const Space &space, int64_t value)
    {
        LinExpr e(space);
        e.coeffs_.back() = value;
        return e;
    }

    /** Input dimension @p i of a map space. */
    static LinExpr
    inDim(const Space &space, unsigned i)
    {
        if (i >= space.numIn())
            panic("inDim index out of range");
        LinExpr e(space);
        e.coeffs_[space.inCol(i)] = 1;
        return e;
    }

    /** Output (or set) dimension @p i. */
    static LinExpr
    outDim(const Space &space, unsigned i)
    {
        if (i >= space.numOut())
            panic("outDim index out of range");
        LinExpr e(space);
        e.coeffs_[space.outCol(i)] = 1;
        return e;
    }

    /** Set dimension @p i (alias of outDim for set spaces). */
    static LinExpr
    setDim(const Space &space, unsigned i)
    {
        return outDim(space, i);
    }

    /** Parameter named @p name (must exist in the space). */
    static LinExpr
    param(const Space &space, const std::string &name)
    {
        int idx = space.paramIndex(name);
        if (idx < 0)
            panic("unknown parameter " + name);
        LinExpr e(space);
        e.coeffs_[space.paramCol(idx)] = 1;
        return e;
    }

    const CoeffRow &coeffs() const { return coeffs_; }

    LinExpr
    operator+(const LinExpr &o) const
    {
        LinExpr r = *this;
        checkCompat(o);
        for (size_t i = 0; i < coeffs_.size(); ++i)
            r.coeffs_[i] = checkedAdd(r.coeffs_[i], o.coeffs_[i]);
        return r;
    }

    LinExpr
    operator-(const LinExpr &o) const
    {
        LinExpr r = *this;
        checkCompat(o);
        for (size_t i = 0; i < coeffs_.size(); ++i)
            r.coeffs_[i] = checkedSub(r.coeffs_[i], o.coeffs_[i]);
        return r;
    }

    LinExpr
    operator*(int64_t f) const
    {
        LinExpr r = *this;
        for (auto &c : r.coeffs_)
            c = checkedMul(c, f);
        return r;
    }

    LinExpr
    operator+(int64_t v) const
    {
        LinExpr r = *this;
        r.coeffs_.back() = checkedAdd(r.coeffs_.back(), v);
        return r;
    }

    LinExpr operator-(int64_t v) const { return *this + (-v); }

  private:
    void
    checkCompat(const LinExpr &o) const
    {
        if (coeffs_.size() != o.coeffs_.size())
            panic("LinExpr arity mismatch");
    }

    CoeffRow coeffs_;
};

/** lhs == rhs. */
inline Constraint
eqCons(const LinExpr &lhs, const LinExpr &rhs)
{
    return Constraint(true, (lhs - rhs).coeffs());
}

/** lhs >= rhs. */
inline Constraint
geCons(const LinExpr &lhs, const LinExpr &rhs)
{
    return Constraint(false, (lhs - rhs).coeffs());
}

/** lhs <= rhs. */
inline Constraint
leCons(const LinExpr &lhs, const LinExpr &rhs)
{
    return Constraint(false, (rhs - lhs).coeffs());
}

/** lhs < rhs. */
inline Constraint
ltCons(const LinExpr &lhs, const LinExpr &rhs)
{
    return Constraint(false, (rhs - lhs - 1).coeffs());
}

/** lhs > rhs. */
inline Constraint
gtCons(const LinExpr &lhs, const LinExpr &rhs)
{
    return Constraint(false, (lhs - rhs - 1).coeffs());
}

} // namespace pres
} // namespace polyfuse

#endif // POLYFUSE_PRES_AFFINE_HH
