#include "pres/fm.hh"

#include <algorithm>
#include <string>
#include <unordered_map>

#include "pres/row_hash.hh"
#include "support/failpoint.hh"
#include "support/intmath.hh"
#include "support/logging.hh"

namespace polyfuse {
namespace pres {
namespace fm {

namespace {

// One default context per thread plus an optional installed one:
// compilation that never mentions contexts still gets thread-private
// counters, so the engine is re-entrant with zero caller changes.
thread_local PresCtx t_default_ctx;
thread_local PresCtx *t_active_ctx = nullptr;

} // namespace

PresCtx &
activeCtx()
{
    return t_active_ctx ? *t_active_ctx : t_default_ctx;
}

ScopedCtx::ScopedCtx(PresCtx &ctx)
    : prev_(t_active_ctx)
{
    t_active_ctx = &ctx;
}

ScopedCtx::~ScopedCtx()
{
    t_active_ctx = prev_;
}

void
PresCtx::armBudget(const Budget &budget)
{
    budget_ = budget;
    baseElims_ = counters.eliminations;
    baseRows_ = counters.constraintsVisited;
    baseAlloc_ = allocBytes;
    hasDeadline_ = budget.wallMs > 0;
    if (hasDeadline_)
        deadline_ = std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double, std::milli>(
                            budget.wallMs));
    armed_ = !budget.unlimited();
}

void
PresCtx::disarmBudget()
{
    armed_ = false;
    hasDeadline_ = false;
}

namespace {

[[noreturn]] void
overBudget(const char *site, const std::string &what, uint64_t used,
           uint64_t limit)
{
    throw BudgetExceeded("budget exceeded at " + std::string(site) +
                         ": " + what + " " + std::to_string(used) +
                         " > limit " + std::to_string(limit));
}

} // namespace

void
checkBudget(PresCtx &ctx, const char *site)
{
    if (ctx.cancel && ctx.cancel->cancelled())
        throw BudgetExceeded(std::string("cancelled at ") + site);
    if (!ctx.armed_)
        return;
    const Budget &b = ctx.budget_;
    if (b.fmEliminations) {
        uint64_t used = ctx.counters.eliminations - ctx.baseElims_;
        if (used > b.fmEliminations)
            overBudget(site, "FM eliminations", used,
                       b.fmEliminations);
    }
    if (b.fmRows) {
        uint64_t used = ctx.counters.constraintsVisited - ctx.baseRows_;
        if (used > b.fmRows)
            overBudget(site, "FM constraint rows", used, b.fmRows);
    }
    if (b.allocBytes) {
        uint64_t used = ctx.allocBytes - ctx.baseAlloc_;
        if (used > b.allocBytes)
            overBudget(site, "FM row bytes", used, b.allocBytes);
    }
    if (ctx.hasDeadline_ &&
        std::chrono::steady_clock::now() > ctx.deadline_)
        throw BudgetExceeded(
            "budget exceeded at " + std::string(site) +
            ": wall deadline of " + std::to_string(ctx.budget_.wallMs) +
            " ms passed");
}

bool
normalizeRow(Constraint &row)
{
    size_t ncols = row.coeffs.size();
    int64_t g = 0;
    for (size_t i = 0; i + 1 < ncols; ++i)
        g = gcd(g, row.coeffs[i]);
    if (g == 0) {
        // Constant row: feasibility decided by the constant alone.
        if (row.isEq)
            return row.constant() == 0;
        return row.constant() >= 0;
    }
    if (g > 1) {
        if (row.isEq) {
            if (row.constant() % g != 0)
                return false;
            for (auto &c : row.coeffs)
                c /= g;
        } else {
            for (size_t i = 0; i + 1 < ncols; ++i)
                row.coeffs[i] /= g;
            // Integer tightening: floor the rational bound.
            row.coeffs.back() = floorDiv(row.coeffs.back(), g);
        }
    }
    // Canonicalize equalities so the first nonzero coefficient is
    // positive (makes deduplication effective).
    if (row.isEq) {
        for (size_t i = 0; i + 1 < ncols; ++i) {
            if (row.coeffs[i] == 0)
                continue;
            if (row.coeffs[i] < 0)
                for (auto &c : row.coeffs)
                    c = -c;
            break;
        }
    }
    return true;
}

bool
simplifyRows(PresCtx &ctx, std::vector<Constraint> &rows)
{
    failpoints::hit("pres.simplifyRows");
    checkBudget(ctx, "pres::fm::simplifyRows");
    std::vector<Constraint> kept;
    kept.reserve(rows.size());
    for (auto &row : rows) {
        if (!normalizeRow(row))
            return false;
        if (row.isConstant())
            continue; // Satisfied constant row (infeasible handled above).
        kept.push_back(std::move(row));
    }

    // Group by variable-coefficient vector (all but the constant).
    // Key: (coeff prefix); track best eq/ineq constants for the key and
    // its negation to merge opposite inequalities. The grouping is a
    // hash table over the row-prefix hashes (shared with the op
    // cache), so dedup costs one hash per row instead of a tree of
    // lexicographic vector comparisons; determinism comes from the
    // final sort of the emitted rows, not from group order.
    struct Best
    {
        bool hasEq = false;
        int64_t eqConst = 0;
        bool hasIneq = false;
        int64_t ineqConst = 0; // smallest constant == tightest bound
    };
    auto keyOf = [](const Constraint &c) {
        return CoeffRow(c.coeffs.begin(), c.coeffs.end() - 1);
    };
    auto negKey = [](CoeffRow key) {
        for (auto &v : key)
            v = -v;
        return key;
    };
    struct PrefixHash
    {
        size_t
        operator()(const CoeffRow &k) const
        {
            return size_t(hashCoeffs(k.data(), k.size()));
        }
    };

    std::unordered_map<CoeffRow, Best, PrefixHash> groups;
    groups.reserve(kept.size() * 2);
    for (auto &row : kept) {
        auto key = keyOf(row);
        Best &best = groups[key];
        if (row.isEq) {
            if (best.hasEq && best.eqConst != row.constant())
                return false; // Two contradictory equalities.
            best.hasEq = true;
            best.eqConst = row.constant();
        } else {
            if (!best.hasIneq || row.constant() < best.ineqConst)
                best.ineqConst = row.constant();
            best.hasIneq = true;
        }
    }

    std::vector<Constraint> out;
    out.reserve(groups.size());
    for (auto &[key, best] : groups) {
        // Equality dominates and must be consistent with inequalities.
        auto nkey = negKey(key);
        auto nit = groups.find(nkey);
        if (best.hasEq) {
            if (best.hasIneq && best.ineqConst < best.eqConst)
                return false; // a.x == -e but a.x >= -c with c < e.
            if (nit != groups.end()) {
                const Best &nbest = nit->second;
                if (nbest.hasEq && nbest.eqConst != -best.eqConst)
                    return false;
                if (nbest.hasIneq && nbest.ineqConst < -best.eqConst)
                    return false;
            }
            // Emit each equality once (from its canonical orientation:
            // normalizeRow() made the first nonzero coefficient
            // positive, so the negated key never holds an equality of
            // the same row).
            Constraint c(true, key);
            c.coeffs.push_back(best.eqConst);
            out.push_back(std::move(c));
            continue;
        }
        if (!best.hasIneq)
            continue;
        if (nit != groups.end() && !nit->second.hasEq &&
            nit->second.hasIneq) {
            int64_t sum = checkedAdd(best.ineqConst,
                                     nit->second.ineqConst);
            if (sum < 0)
                return false; // a.x >= -c1 and a.x <= c2 with c2 < -c1.
            if (sum == 0) {
                // Opposite inequalities meet: equality. Emit once, from
                // the lexicographically smaller key.
                if (key < nkey) {
                    Constraint c(true, key);
                    c.coeffs.push_back(best.ineqConst);
                    if (!normalizeRow(c))
                        return false;
                    out.push_back(std::move(c));
                }
                continue;
            }
        }
        Constraint c(false, key);
        c.coeffs.push_back(best.ineqConst);
        out.push_back(std::move(c));
    }

    std::sort(out.begin(), out.end());
    rows = std::move(out);
    return true;
}

bool
simplifyRows(std::vector<Constraint> &rows)
{
    return simplifyRows(activeCtx(), rows);
}

namespace {

/** Erase column @p col from every row. */
void
eraseCol(std::vector<Constraint> &rows, unsigned col)
{
    for (auto &row : rows)
        row.coeffs.erase(row.coeffs.begin() + col);
}

/**
 * Substitute using equality @p eq (coefficient @p c at @p col, with
 * |c| == 1) into @p row, zeroing the column.
 */
void
substituteUnitEq(Constraint &row, const Constraint &eq, unsigned col)
{
    int64_t c = eq.coeffs[col];
    int64_t f = row.coeffs[col];
    if (f == 0)
        return;
    // row' = row - (f / c) * eq; integral since |c| == 1.
    int64_t factor = f / c;
    for (size_t i = 0; i < row.coeffs.size(); ++i)
        row.coeffs[i] =
            checkedSub(row.coeffs[i], checkedMul(factor, eq.coeffs[i]));
}

} // namespace

bool
eliminateCol(PresCtx &ctx, std::vector<Constraint> &rows,
             unsigned col, bool &exact)
{
    failpoints::hit("pres.eliminateCol");
    ++ctx.counters.eliminations;
    ctx.counters.constraintsVisited += rows.size();
    // Charge the working set to the arena proxy, then enforce the
    // armed ceilings before doing any real work.
    const uint64_t row_bytes =
        rows.empty() ? sizeof(Constraint)
                     : sizeof(Constraint) +
                           rows[0].coeffs.size() * sizeof(int64_t);
    ctx.allocBytes += uint64_t(rows.size()) * row_bytes;
    checkBudget(ctx, "pres::fm::eliminateCol");
    if (ctx.budgetArmed() && ctx.budget().fmLiveRows &&
        rows.size() > ctx.budget().fmLiveRows)
        overBudget("pres::fm::eliminateCol", "live constraint rows",
                   rows.size(), ctx.budget().fmLiveRows);
    if (!simplifyRows(ctx, rows))
        return false;

    // 1) Prefer an equality with a unit coefficient: exact Gaussian
    //    substitution.
    int eq_idx = -1;
    int nonunit_eq_idx = -1;
    for (size_t i = 0; i < rows.size(); ++i) {
        if (!rows[i].isEq || rows[i].coeffs[col] == 0)
            continue;
        int64_t c = rows[i].coeffs[col];
        if (c == 1 || c == -1) {
            eq_idx = i;
            break;
        }
        if (nonunit_eq_idx < 0)
            nonunit_eq_idx = i;
    }

    if (eq_idx >= 0) {
        Constraint eq = rows[eq_idx];
        rows.erase(rows.begin() + eq_idx);
        for (auto &row : rows)
            substituteUnitEq(row, eq, col);
        eraseCol(rows, col);
        return simplifyRows(ctx, rows);
    }

    if (nonunit_eq_idx >= 0) {
        // c*x + e == 0 with |c| > 1: scale other rows and cancel.
        // The divisibility condition c | e is dropped, so the result
        // may over-approximate the integer projection.
        exact = false;
        Constraint eq = rows[nonunit_eq_idx];
        rows.erase(rows.begin() + nonunit_eq_idx);
        int64_t c = eq.coeffs[col];
        int64_t ac = c < 0 ? -c : c;
        for (auto &row : rows) {
            int64_t f = row.coeffs[col];
            if (f == 0)
                continue;
            // row' = |c|*row - sign(c)*f*eq.
            int64_t factor = (c < 0 ? -1 : 1) * f;
            for (size_t i = 0; i < row.coeffs.size(); ++i)
                row.coeffs[i] =
                    checkedSub(checkedMul(ac, row.coeffs[i]),
                               checkedMul(factor, eq.coeffs[i]));
        }
        eraseCol(rows, col);
        return simplifyRows(ctx, rows);
    }

    // 2) Fourier-Motzkin on inequalities.
    std::vector<Constraint> lowers, uppers, rest;
    for (auto &row : rows) {
        if (row.coeffs[col] > 0)
            lowers.push_back(std::move(row));
        else if (row.coeffs[col] < 0)
            uppers.push_back(std::move(row));
        else
            rest.push_back(std::move(row));
    }

    if (!lowers.empty() && !uppers.empty()) {
        // This pairing is where FM explodes (|lowers| x |uppers| new
        // rows); enforce the arena and live-row ceilings per created
        // row so a pathological system is stopped mid-blow-up rather
        // than after materializing it.
        const bool guard = ctx.budgetArmed();
        for (const auto &lo : lowers) {
            for (const auto &up : uppers) {
                int64_t a = lo.coeffs[col];
                int64_t b = -up.coeffs[col];
                if (a != 1 && b != 1)
                    exact = false; // Real shadow only.
                Constraint combo(false,
                                 CoeffRow(lo.coeffs.size(), 0));
                for (size_t i = 0; i < combo.coeffs.size(); ++i)
                    combo.coeffs[i] =
                        checkedAdd(checkedMul(b, lo.coeffs[i]),
                                   checkedMul(a, up.coeffs[i]));
                ctx.allocBytes += row_bytes;
                if (guard) {
                    const Budget &bud = ctx.budget();
                    if (bud.allocBytes &&
                        ctx.allocBytes - ctx.baseAlloc_ >
                            bud.allocBytes)
                        overBudget("pres::fm::eliminateCol",
                                   "FM row bytes",
                                   ctx.allocBytes - ctx.baseAlloc_,
                                   bud.allocBytes);
                    if (bud.fmLiveRows &&
                        rest.size() >= bud.fmLiveRows)
                        overBudget("pres::fm::eliminateCol",
                                   "live constraint rows",
                                   rest.size() + 1, bud.fmLiveRows);
                }
                rest.push_back(std::move(combo));
            }
        }
    }
    // If either side is absent the variable is unbounded there and the
    // projection just drops the rows mentioning it (exact).

    rows = std::move(rest);
    eraseCol(rows, col);
    return simplifyRows(ctx, rows);
}

bool
eliminateCol(std::vector<Constraint> &rows, unsigned col, bool &exact)
{
    return eliminateCol(activeCtx(), rows, col, exact);
}

bool
substituteCol(PresCtx &ctx, std::vector<Constraint> &rows,
              unsigned col, int64_t value)
{
    for (auto &row : rows) {
        int64_t f = row.coeffs[col];
        if (f != 0)
            row.coeffs.back() =
                checkedAdd(row.coeffs.back(), checkedMul(f, value));
    }
    eraseCol(rows, col);
    return simplifyRows(ctx, rows);
}

bool
substituteCol(std::vector<Constraint> &rows, unsigned col,
              int64_t value)
{
    return substituteCol(activeCtx(), rows, col, value);
}

bool
colUnused(const std::vector<Constraint> &rows, unsigned col)
{
    for (const auto &row : rows)
        if (row.coeffs[col] != 0)
            return false;
    return true;
}

} // namespace fm
} // namespace pres
} // namespace polyfuse
