#include "pres/printing.hh"

#include <sstream>

namespace polyfuse {
namespace pres {

std::string
renderConstraint(const Constraint &c,
                 const std::vector<std::string> &col_names)
{
    std::ostringstream os;
    bool first = true;
    for (size_t i = 0; i + 1 < c.coeffs.size(); ++i) {
        int64_t v = c.coeffs[i];
        if (v == 0)
            continue;
        if (first) {
            if (v == -1)
                os << "-";
            else if (v != 1)
                os << v << "*";
        } else {
            os << (v > 0 ? " + " : " - ");
            int64_t a = v > 0 ? v : -v;
            if (a != 1)
                os << a << "*";
        }
        os << col_names[i];
        first = false;
    }
    int64_t k = c.constant();
    if (first) {
        os << k;
    } else if (k > 0) {
        os << " + " << k;
    } else if (k < 0) {
        os << " - " << -k;
    }
    os << (c.isEq ? " = 0" : " >= 0");
    return os.str();
}

std::string
renderRows(const std::vector<Constraint> &rows,
           const std::vector<std::string> &col_names)
{
    std::ostringstream os;
    bool first = true;
    for (const auto &row : rows) {
        if (!first)
            os << " and ";
        os << renderConstraint(row, col_names);
        first = false;
    }
    return os.str();
}

} // namespace pres
} // namespace polyfuse
