#include "pres/parser.hh"

#include <cctype>
#include <map>

#include "pres/affine.hh"
#include "support/failpoint.hh"
#include "support/intmath.hh"
#include "support/logging.hh"

namespace polyfuse {
namespace pres {

namespace {

/** Token kinds produced by the lexer. */
enum class Tok
{
    Ident,
    Number,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    LParen,
    RParen,
    Comma,
    Semi,
    Colon,
    Plus,
    Minus,
    Star,
    Arrow,
    Le,
    Ge,
    Lt,
    Gt,
    Eq,
    And,
    End,
};

struct Token
{
    Tok kind;
    std::string text;
    int64_t value = 0;
    size_t offset = 0; ///< character offset in the source text
};

std::vector<Token>
lex(const std::string &text)
{
    std::vector<Token> out;
    size_t i = 0;
    auto push = [&](Tok k, std::string t = "") {
        out.push_back({k, std::move(t), 0, i});
    };
    while (i < text.size()) {
        char c = text[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
            c == '$') {
            size_t j = i;
            while (j < text.size() &&
                   (std::isalnum(static_cast<unsigned char>(text[j])) ||
                    text[j] == '_' || text[j] == '$' || text[j] == '\''))
                ++j;
            std::string word = text.substr(i, j - i);
            if (word == "and")
                push(Tok::And);
            else
                push(Tok::Ident, word);
            i = j;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t j = i;
            int64_t v = 0;
            while (j < text.size() &&
                   std::isdigit(static_cast<unsigned char>(text[j]))) {
                v = checkedAdd(checkedMul(v, 10), text[j] - '0');
                ++j;
            }
            out.push_back({Tok::Number, text.substr(i, j - i), v, i});
            i = j;
            continue;
        }
        switch (c) {
          case '[': push(Tok::LBracket); ++i; break;
          case ']': push(Tok::RBracket); ++i; break;
          case '{': push(Tok::LBrace); ++i; break;
          case '}': push(Tok::RBrace); ++i; break;
          case '(': push(Tok::LParen); ++i; break;
          case ')': push(Tok::RParen); ++i; break;
          case ',': push(Tok::Comma); ++i; break;
          case ';': push(Tok::Semi); ++i; break;
          case ':': push(Tok::Colon); ++i; break;
          case '+': push(Tok::Plus); ++i; break;
          case '*': push(Tok::Star); ++i; break;
          case '-':
            if (i + 1 < text.size() && text[i + 1] == '>') {
                push(Tok::Arrow);
                i += 2;
            } else {
                push(Tok::Minus);
                ++i;
            }
            break;
          case '<':
            if (i + 1 < text.size() && text[i + 1] == '=') {
                push(Tok::Le);
                i += 2;
            } else {
                push(Tok::Lt);
                ++i;
            }
            break;
          case '>':
            if (i + 1 < text.size() && text[i + 1] == '=') {
                push(Tok::Ge);
                i += 2;
            } else {
                push(Tok::Gt);
                ++i;
            }
            break;
          case '=': {
            size_t at = i;
            if (i + 1 < text.size() && text[i + 1] == '=')
                i += 2;
            else
                ++i;
            out.push_back({Tok::Eq, "", 0, at});
            break;
          }
          default:
            fatal(std::string("parse error: unexpected character '") +
                  c + "' at offset " + std::to_string(i));
        }
    }
    push(Tok::End);
    return out;
}

/** A symbolic affine expression over named variables. */
struct SymExpr
{
    std::map<std::string, int64_t> terms;
    int64_t constant = 0;

    void
    add(const SymExpr &o, int64_t factor)
    {
        for (const auto &[n, v] : o.terms)
            terms[n] = checkedAdd(terms[n], checkedMul(v, factor));
        constant = checkedAdd(constant, checkedMul(o.constant, factor));
    }

    void
    scale(int64_t f)
    {
        for (auto &[n, v] : terms)
            v = checkedMul(v, f);
        constant = checkedMul(constant, f);
    }

    bool
    isConst() const
    {
        for (const auto &[n, v] : terms)
            if (v != 0)
                return false;
        return true;
    }
};

/** One parsed tuple: name, dim names (anonymous get "$k"), and
 *  equalities for expression elements. */
struct ParsedTuple
{
    std::string name;
    std::vector<std::string> dims;
    /// (dim name, defining expression) pairs for expression elements.
    std::vector<std::pair<std::string, SymExpr>> defs;
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : toks_(lex(text))
    {
        failpoints::hit("pres.parse");
    }

    /** Dim names of the last parsed set piece. */
    std::vector<std::string> lastDimNames;

    /** Parse a standalone affine expression (no braces). */
    std::vector<int64_t>
    parseAffineText(const std::vector<std::string> &params)
    {
        params_ = params;
        SymExpr e = parseExpr();
        expect(Tok::End);
        std::vector<int64_t> row(params.size() + 1, 0);
        for (const auto &[name, v] : e.terms) {
            if (v == 0)
                continue;
            bool found = false;
            for (unsigned i = 0; i < params.size(); ++i) {
                if (params[i] == name) {
                    row[i] = v;
                    found = true;
                    break;
                }
            }
            if (!found)
                fatal("parseAffine: unknown identifier '" + name + "'");
        }
        row.back() = e.constant;
        return row;
    }

    /** Parse a union set. */
    Set
    parseSetText()
    {
        parseParamPrefix();
        expect(Tok::LBrace);
        Set out;
        while (true) {
            out.addPiece(parseSetPiece());
            if (peek() == Tok::Semi) {
                next();
                continue;
            }
            break;
        }
        expect(Tok::RBrace);
        expect(Tok::End);
        return out;
    }

    /** Parse a union map; optionally capture output expressions of
     *  the LAST piece (used by parseAccess on single-piece maps). */
    Map
    parseMapText(ParsedAccess *access_out = nullptr)
    {
        parseParamPrefix();
        expect(Tok::LBrace);
        Map out;
        while (true) {
            out.addPiece(parseMapPiece(access_out));
            if (peek() == Tok::Semi) {
                next();
                continue;
            }
            break;
        }
        expect(Tok::RBrace);
        expect(Tok::End);
        return out;
    }

  private:
    std::vector<Token> toks_;
    size_t pos_ = 0;
    std::vector<std::string> params_;
    unsigned anon_ = 0;

    Tok peek() const { return toks_[pos_].kind; }
    const Token &cur() const { return toks_[pos_]; }

    const Token &
    next()
    {
        if (peek() == Tok::End)
            fatal("parse error: unexpected end of input at offset " +
                  std::to_string(cur().offset));
        return toks_[pos_++];
    }

    void
    expect(Tok k)
    {
        if (peek() != k) {
            if (peek() == Tok::End)
                fatal("parse error: unexpected end of input at offset " +
                      std::to_string(cur().offset));
            fatal("parse error: unexpected token '" + cur().text +
                  "' at offset " + std::to_string(cur().offset));
        }
        ++pos_;
    }

    void
    parseParamPrefix()
    {
        // "[N, M] ->" before "{" only.
        if (peek() != Tok::LBracket)
            return;
        size_t save = pos_;
        next();
        std::vector<std::string> params;
        if (peek() != Tok::RBracket) {
            while (true) {
                if (peek() != Tok::Ident) {
                    pos_ = save;
                    return;
                }
                params.push_back(next().text);
                if (peek() == Tok::Comma) {
                    next();
                    continue;
                }
                break;
            }
        }
        if (peek() != Tok::RBracket) {
            pos_ = save;
            return;
        }
        next();
        if (peek() != Tok::Arrow) {
            pos_ = save;
            return;
        }
        next();
        params_ = std::move(params);
    }

    /**
     * Parse a tuple "Name[e0, e1, ...]". Fresh identifiers become dim
     * names; expressions (and reused names) become anonymous dims
     * with a defining equality. @p bound holds names already taken.
     */
    ParsedTuple
    parseTuple(const std::vector<std::string> &bound)
    {
        ParsedTuple t;
        if (peek() == Tok::Ident)
            t.name = next().text;
        expect(Tok::LBracket);
        if (peek() == Tok::RBracket) {
            next();
            return t;
        }
        while (true) {
            bool fresh_ident =
                peek() == Tok::Ident &&
                (toks_[pos_ + 1].kind == Tok::Comma ||
                 toks_[pos_ + 1].kind == Tok::RBracket) &&
                !isBound(cur().text, bound) &&
                !isBound(cur().text, t.dims) && !isParam(cur().text);
            if (fresh_ident) {
                t.dims.push_back(next().text);
            } else {
                SymExpr e = parseExpr();
                std::string anon = "$" + std::to_string(anon_++);
                t.dims.push_back(anon);
                t.defs.emplace_back(anon, std::move(e));
            }
            if (peek() == Tok::Comma) {
                next();
                continue;
            }
            break;
        }
        expect(Tok::RBracket);
        return t;
    }

    bool
    isBound(const std::string &name,
            const std::vector<std::string> &names) const
    {
        for (const auto &n : names)
            if (n == name)
                return true;
        return false;
    }

    bool
    isParam(const std::string &name) const
    {
        return isBound(name, params_);
    }

    SymExpr
    parseExpr()
    {
        SymExpr e = parseTerm();
        while (peek() == Tok::Plus || peek() == Tok::Minus) {
            bool minus = next().kind == Tok::Minus;
            SymExpr rhs = parseTerm();
            e.add(rhs, minus ? -1 : 1);
        }
        return e;
    }

    SymExpr
    parseTerm()
    {
        SymExpr e = parseFactor();
        while (peek() == Tok::Star) {
            next();
            SymExpr rhs = parseFactor();
            if (e.isConst()) {
                rhs.scale(e.constant);
                e = std::move(rhs);
            } else if (rhs.isConst()) {
                e.scale(rhs.constant);
            } else {
                fatal("parse error: non-affine product");
            }
        }
        return e;
    }

    SymExpr
    parseFactor()
    {
        SymExpr e;
        if (peek() == Tok::Number) {
            e.constant = next().value;
            // Allow "2x" shorthand.
            if (peek() == Tok::Ident) {
                SymExpr v;
                v.terms[next().text] = 1;
                v.scale(e.constant);
                return v;
            }
            return e;
        }
        if (peek() == Tok::Ident) {
            e.terms[next().text] = 1;
            return e;
        }
        if (peek() == Tok::Minus) {
            next();
            e = parseFactor();
            e.scale(-1);
            return e;
        }
        if (peek() == Tok::LParen) {
            next();
            e = parseExpr();
            expect(Tok::RParen);
            return e;
        }
        fatal("parse error: expected expression at '" + cur().text +
              "' at offset " + std::to_string(cur().offset));
    }

    /** Chained comparisons: e0 op e1 op e2 ... */
    std::vector<Constraint>
    parseRelation(const Space &sp,
                  const std::map<std::string, unsigned> &cols)
    {
        std::vector<Constraint> out;
        SymExpr lhs = parseExpr();
        bool any = false;
        while (true) {
            Tok op = peek();
            if (op != Tok::Le && op != Tok::Ge && op != Tok::Lt &&
                op != Tok::Gt && op != Tok::Eq)
                break;
            next();
            SymExpr rhs = parseExpr();
            out.push_back(makeConstraint(sp, cols, lhs, op, rhs));
            lhs = std::move(rhs);
            any = true;
        }
        if (!any)
            fatal("parse error: expected comparison operator at offset " +
                  std::to_string(cur().offset));
        return out;
    }

    Constraint
    makeConstraint(const Space &sp,
                   const std::map<std::string, unsigned> &cols,
                   const SymExpr &lhs, Tok op, const SymExpr &rhs)
    {
        // diff = lhs - rhs.
        SymExpr diff = lhs;
        diff.add(rhs, -1);
        std::vector<int64_t> coeffs(sp.numCols(), 0);
        for (const auto &[name, v] : diff.terms) {
            if (v == 0)
                continue;
            auto it = cols.find(name);
            if (it == cols.end())
                fatal("parse error: unknown identifier '" + name + "'");
            coeffs[it->second] = v;
        }
        coeffs.back() = diff.constant;
        switch (op) {
          case Tok::Eq:
            return Constraint(true, coeffs);
          case Tok::Ge: // lhs - rhs >= 0
            return Constraint(false, coeffs);
          case Tok::Gt: { // lhs - rhs - 1 >= 0
            coeffs.back() = checkedSub(coeffs.back(), 1);
            return Constraint(false, coeffs);
          }
          case Tok::Le: { // rhs - lhs >= 0
            for (auto &c : coeffs)
                c = -c;
            return Constraint(false, coeffs);
          }
          case Tok::Lt: { // rhs - lhs - 1 >= 0
            for (auto &c : coeffs)
                c = -c;
            coeffs.back() = checkedSub(coeffs.back(), 1);
            return Constraint(false, coeffs);
          }
          default:
            panic("unreachable comparison token");
        }
    }

    /** Column lookup table for a piece's space. */
    std::map<std::string, unsigned>
    columnTable(const Space &sp, const ParsedTuple &in,
                const ParsedTuple &out) const
    {
        std::map<std::string, unsigned> cols;
        for (unsigned i = 0; i < in.dims.size(); ++i)
            cols[in.dims[i]] = sp.inCol(i);
        for (unsigned i = 0; i < out.dims.size(); ++i)
            cols[out.dims[i]] = sp.outCol(i);
        for (unsigned i = 0; i < params_.size(); ++i)
            cols[params_[i]] = sp.paramCol(i);
        return cols;
    }

    void
    addDefs(const Space &sp, const std::map<std::string, unsigned> &cols,
            const ParsedTuple &t, std::vector<Constraint> &out)
    {
        for (const auto &[dim, expr] : t.defs) {
            SymExpr diff;
            diff.terms[dim] = 1;
            diff.add(expr, -1);
            std::vector<int64_t> coeffs(sp.numCols(), 0);
            for (const auto &[name, v] : diff.terms) {
                if (v == 0)
                    continue;
                auto it = cols.find(name);
                if (it == cols.end())
                    fatal("parse error: unknown identifier '" + name +
                          "'");
                coeffs[it->second] = v;
            }
            coeffs.back() = diff.constant;
            out.push_back(Constraint(true, coeffs));
        }
    }

    BasicSet
    parseSetPiece()
    {
        ParsedTuple t = parseTuple({});
        Space sp = Space::forSet(t.name, t.dims.size(), params_);
        auto cols = columnTable(sp, ParsedTuple{}, t);
        std::vector<Constraint> cons;
        addDefs(sp, cols, t, cons);
        if (peek() == Tok::Colon) {
            next();
            while (true) {
                auto rel = parseRelation(sp, cols);
                cons.insert(cons.end(), rel.begin(), rel.end());
                if (peek() == Tok::And) {
                    next();
                    continue;
                }
                break;
            }
        }
        BasicSet s(sp);
        for (auto &c : cons)
            s.addConstraint(c);
        s.simplify();
        lastDimNames = t.dims;
        return s;
    }

    BasicMap
    parseMapPiece(ParsedAccess *access_out)
    {
        ParsedTuple in = parseTuple({});
        expect(Tok::Arrow);
        ParsedTuple out = parseTuple(in.dims);
        Space sp = Space::forMap(in.name, in.dims.size(), out.name,
                                 out.dims.size(), params_);
        auto cols = columnTable(sp, in, out);
        std::vector<Constraint> cons;
        addDefs(sp, cols, in, cons);
        addDefs(sp, cols, out, cons);
        if (peek() == Tok::Colon) {
            next();
            while (true) {
                auto rel = parseRelation(sp, cols);
                cons.insert(cons.end(), rel.begin(), rel.end());
                if (peek() == Tok::And) {
                    next();
                    continue;
                }
                break;
            }
        }
        BasicMap m(sp);
        for (auto &c : cons)
            m.addConstraint(c);
        m.simplify();

        if (access_out) {
            // Output expressions over [in dims, params, 1] exist when
            // every out element had a definition.
            access_out->hasExprs = out.defs.size() == out.dims.size();
            access_out->outExprs.clear();
            if (access_out->hasExprs) {
                for (const auto &[dim, expr] : out.defs) {
                    std::vector<int64_t> row(
                        in.dims.size() + params_.size() + 1, 0);
                    bool ok = true;
                    for (const auto &[name, v] : expr.terms) {
                        if (v == 0)
                            continue;
                        bool found = false;
                        for (unsigned i = 0; i < in.dims.size(); ++i) {
                            if (in.dims[i] == name) {
                                row[i] = v;
                                found = true;
                                break;
                            }
                        }
                        if (!found) {
                            for (unsigned i = 0; i < params_.size();
                                 ++i) {
                                if (params_[i] == name) {
                                    row[in.dims.size() + i] = v;
                                    found = true;
                                    break;
                                }
                            }
                        }
                        if (!found)
                            ok = false;
                    }
                    row.back() = expr.constant;
                    if (!ok) {
                        access_out->hasExprs = false;
                        access_out->outExprs.clear();
                        break;
                    }
                    access_out->outExprs.push_back(std::move(row));
                }
            }
        }
        return m;
    }
};

} // namespace

Set
parseSet(const std::string &text)
{
    return Parser(text).parseSetText();
}

Map
parseMap(const std::string &text)
{
    return Parser(text).parseMapText();
}

BasicSet
parseBasicSet(const std::string &text)
{
    Set s = parseSet(text);
    if (s.pieces().size() != 1)
        fatal("parseBasicSet: expected exactly one piece in " + text);
    return s.pieces()[0];
}

BasicMap
parseBasicMap(const std::string &text)
{
    Map m = parseMap(text);
    if (m.pieces().size() != 1)
        fatal("parseBasicMap: expected exactly one piece in " + text);
    return m.pieces()[0];
}

BasicSet
parseBasicSetNamed(const std::string &text,
                   std::vector<std::string> *dim_names)
{
    Parser p(text);
    Set s = p.parseSetText();
    if (s.pieces().size() != 1)
        fatal("parseBasicSetNamed: expected exactly one piece in " +
              text);
    if (dim_names)
        *dim_names = p.lastDimNames;
    return s.pieces()[0];
}

std::vector<int64_t>
parseAffine(const std::string &text,
            const std::vector<std::string> &params)
{
    return Parser(text).parseAffineText(params);
}

ParsedAccess
parseAccess(const std::string &text)
{
    ParsedAccess out;
    Parser p(text);
    Map m = p.parseMapText(&out);
    if (m.pieces().size() != 1)
        fatal("parseAccess: expected exactly one piece in " + text);
    out.map = m.pieces()[0];
    return out;
}

} // namespace pres
} // namespace polyfuse
