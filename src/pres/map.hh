/**
 * @file
 * A finite union of BasicMaps over named tuple pairs (the role
 * isl_union_map plays in the paper: access relations, dependences,
 * tiling schedules and extension schedules spanning many statements).
 */

#ifndef POLYFUSE_PRES_MAP_HH
#define POLYFUSE_PRES_MAP_HH

#include <string>
#include <vector>

#include "pres/basic_map.hh"
#include "pres/set.hh"

namespace polyfuse {
namespace pres {

/** A union of convex affine relations over named tuple pairs. */
class Map
{
  public:
    Map() = default;

    explicit Map(BasicMap piece) { addPiece(std::move(piece)); }

    /** Append one conjunction (empty pieces are dropped). */
    void addPiece(BasicMap piece);

    const std::vector<BasicMap> &pieces() const { return pieces_; }
    bool empty() const { return pieces_.empty(); }

    Map unite(const Map &other) const;

    /** Pairwise intersection of pieces with matching tuple pairs. */
    Map intersect(const Map &other) const;

    /** Relation difference (exact; may split pieces). */
    Map subtract(const Map &other) const;

    /** Swap inputs and outputs of every piece. */
    Map reverse() const;

    /** Union of the domains of all pieces. */
    Set domain() const;

    /** Union of the ranges of all pieces. */
    Set range() const;

    /**
     * Composition: pieces of this applied first, then matching pieces
     * of @p g (isl's apply_range): {a -> c : a->b in this, b->c in g}.
     */
    Map compose(const Map &g) const;

    /** Image of @p set under this relation. */
    Set apply(const Set &set) const;

    /** Restrict domains to matching pieces of @p set. */
    Map intersectDomain(const Set &set) const;

    /** Restrict ranges to matching pieces of @p set. */
    Map intersectRange(const Set &set) const;

    /** Union of per-piece delta sets (equal-arity pieces only). */
    Set deltas() const;

    /** Pieces whose input tuple is @p name. */
    Map extractDomainTuple(const std::string &name) const;

    /** Pieces whose output tuple is @p name. */
    Map extractRangeTuple(const std::string &name) const;

    Map fixParam(const std::string &name, int64_t value) const;

    bool isEmpty() const;
    bool wasExact() const;

    /**
     * A single convex piece containing every piece of this map: the
     * "simple hull" keeping exactly the constraints valid for all
     * pieces. Requires all pieces to share one tuple pair. The result
     * over-approximates the union (it never drops constraints common
     * to every piece, so e.g. domain bounds survive).
     */
    BasicMap simpleHull() const;

    std::string str() const;

  private:
    std::vector<BasicMap> pieces_;
};

} // namespace pres
} // namespace polyfuse

#endif // POLYFUSE_PRES_MAP_HH
