/**
 * @file
 * A conjunction of affine constraints over a set Space: the basic
 * building block of the Presburger layer (isl's isl_basic_set).
 *
 * Integer semantics: the set contains the integer points satisfying
 * all constraints, for every integer parameter valuation. Projections
 * use Fourier-Motzkin with GCD tightening and are integer-exact in
 * the unit-coefficient fragment; otherwise the result is a sound
 * over-approximation and wasExact() reports false.
 */

#ifndef POLYFUSE_PRES_BASIC_SET_HH
#define POLYFUSE_PRES_BASIC_SET_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pres/constraint.hh"
#include "pres/space.hh"

namespace polyfuse {
namespace pres {

/** Parameter valuation used by evaluation-style queries. */
using ParamValues = std::map<std::string, int64_t>;

/** A conjunction of affine constraints (a convex integer set). */
class BasicSet
{
  public:
    BasicSet() = default;

    /** The universe of @p space (no constraints). */
    explicit BasicSet(Space space);

    /** The canonical empty set of @p space. */
    static BasicSet makeEmpty(Space space);

    const Space &space() const { return space_; }
    const std::vector<Constraint> &constraints() const { return cons_; }

    /** Add one constraint (arity-checked against the space). */
    void addConstraint(const Constraint &c);

    /** True if simplification has already proved emptiness. */
    bool markedEmpty() const { return markedEmpty_; }

    /**
     * True when no over-approximating operation produced this set;
     * i.e. the constraints describe the integer set exactly.
     */
    bool wasExact() const { return exact_; }

    /** Conjunction with @p other (same tuples; params are aligned). */
    BasicSet intersect(const BasicSet &other) const;

    /** Existentially project out set dims [first, first + n). */
    BasicSet projectOut(unsigned first, unsigned n) const;

    /**
     * True when the set is certainly integer-empty for every
     * parameter valuation. A false return means a rational point
     * exists (the set may still lack integer points in non-unit
     * fragments) -- the sound direction for all library uses.
     */
    bool isEmpty() const;

    /** Normalize, deduplicate and detect trivial emptiness. */
    void simplify();

    /** Reorder/extend parameter columns to match @p params. */
    BasicSet alignParams(const std::vector<std::string> &params) const;

    /** Substitute a parameter with a constant value. */
    BasicSet fixParam(const std::string &name, int64_t value) const;

    /** Fix set dimension @p pos to @p value (adds an equality). */
    BasicSet fixDim(unsigned pos, int64_t value) const;

    /** Rename the tuple. */
    BasicSet renameTuple(const std::string &name) const;

    /** Insert @p n unconstrained dims at position @p pos. */
    BasicSet insertDims(unsigned pos, unsigned n) const;

    /** Membership test under a full parameter valuation. */
    bool contains(const std::vector<int64_t> &point,
                  const ParamValues &params) const;

    /**
     * Enumerate all integer points under @p params, in lexicographic
     * order. The set must be bounded; enumeration is exact (FM is
     * used only for bounding, membership is rechecked). Throws
     * FatalError if more than @p max_points points are found.
     */
    std::vector<std::vector<int64_t>>
    enumerate(const ParamValues &params, size_t max_points = 1 << 22)
        const;

    /**
     * Integer bounds [lo, hi] of dim @p pos after projecting out all
     * other dims, under @p params. @return false if unbounded on
     * either side or empty.
     */
    bool dimBounds(unsigned pos, const ParamValues &params,
                   int64_t &lo, int64_t &hi) const;

    /** isl-like rendering for debugging and golden tests. */
    std::string str() const;

    bool operator==(const BasicSet &o) const;

  private:
    friend class BasicMap;

    Space space_;
    std::vector<Constraint> cons_;
    bool exact_ = true;
    bool markedEmpty_ = false;

    void markEmpty();
};

} // namespace pres
} // namespace polyfuse

#endif // POLYFUSE_PRES_BASIC_SET_HH
