/**
 * @file
 * A single affine constraint over the columns of a Space.
 *
 * A constraint stores one coefficient per space column (see
 * Space::numCols()); its meaning is
 *
 *     coeffs . (dims, params, 1)  ==  0      (equality)
 *     coeffs . (dims, params, 1)  >=  0      (inequality)
 */

#ifndef POLYFUSE_PRES_CONSTRAINT_HH
#define POLYFUSE_PRES_CONSTRAINT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace polyfuse {
namespace pres {

/** One affine equality or inequality row. */
struct Constraint
{
    bool isEq = false;
    std::vector<int64_t> coeffs;

    Constraint() = default;
    Constraint(bool is_eq, std::vector<int64_t> c)
        : isEq(is_eq), coeffs(std::move(c)) {}

    /** True when every variable/parameter coefficient is zero. */
    bool
    isConstant() const
    {
        for (size_t i = 0; i + 1 < coeffs.size(); ++i)
            if (coeffs[i] != 0)
                return false;
        return true;
    }

    int64_t constant() const { return coeffs.back(); }

    bool
    operator==(const Constraint &o) const
    {
        return isEq == o.isEq && coeffs == o.coeffs;
    }

    bool
    operator<(const Constraint &o) const
    {
        if (isEq != o.isEq)
            return isEq && !o.isEq;
        return coeffs < o.coeffs;
    }
};

} // namespace pres
} // namespace polyfuse

#endif // POLYFUSE_PRES_CONSTRAINT_HH
