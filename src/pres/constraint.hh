/**
 * @file
 * A single affine constraint over the columns of a Space.
 *
 * A constraint stores one coefficient per space column (see
 * Space::numCols()); its meaning is
 *
 *     coeffs . (dims, params, 1)  ==  0      (equality)
 *     coeffs . (dims, params, 1)  >=  0      (inequality)
 *
 * Rows are the compiler's hottest data structure: Fourier-Motzkin
 * creates and destroys them by the million, so the coefficients live
 * in a SmallVec with inline storage (see support/small_vec.hh) and a
 * typical row costs no heap allocation at all.
 */

#ifndef POLYFUSE_PRES_CONSTRAINT_HH
#define POLYFUSE_PRES_CONSTRAINT_HH

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "support/small_vec.hh"

namespace polyfuse {
namespace pres {

/**
 * One constraint row's coefficients. 12 inline columns cover
 * dims + params + constant for every registry workload's common
 * systems; wider rows (joins over three tuples, deltas of deep
 * loop nests) spill to the heap transparently.
 */
using CoeffRow = support::SmallVec<int64_t, 12>;

/** One affine equality or inequality row. */
struct Constraint
{
    bool isEq = false;
    CoeffRow coeffs;

    Constraint() = default;
    Constraint(bool is_eq, CoeffRow c)
        : isEq(is_eq), coeffs(std::move(c)) {}
    Constraint(bool is_eq, const std::vector<int64_t> &c)
        : isEq(is_eq), coeffs(c.begin(), c.end()) {}
    Constraint(bool is_eq, std::initializer_list<int64_t> c)
        : isEq(is_eq), coeffs(c) {}

    /** True when every variable/parameter coefficient is zero.
     *  An empty row (no columns, not even a constant) is vacuously
     *  constant; constant() then reports 0 rather than reading past
     *  the buffer. */
    bool
    isConstant() const
    {
        if (coeffs.empty())
            return true;
        for (size_t i = 0; i + 1 < coeffs.size(); ++i)
            if (coeffs[i] != 0)
                return false;
        return true;
    }

    /** The constant column; 0 for an empty row (see isConstant). */
    int64_t
    constant() const
    {
        return coeffs.empty() ? 0 : coeffs.back();
    }

    bool
    operator==(const Constraint &o) const
    {
        return isEq == o.isEq && coeffs == o.coeffs;
    }

    bool
    operator<(const Constraint &o) const
    {
        if (isEq != o.isEq)
            return isEq && !o.isEq;
        return coeffs < o.coeffs;
    }
};

} // namespace pres
} // namespace polyfuse

#endif // POLYFUSE_PRES_CONSTRAINT_HH
