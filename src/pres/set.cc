#include "pres/set.hh"

#include <algorithm>
#include <set>

#include "pres/fm.hh"
#include "support/logging.hh"

namespace polyfuse {
namespace pres {

namespace {

std::vector<std::string>
mergeParams(const std::vector<std::string> &a,
            const std::vector<std::string> &b)
{
    std::vector<std::string> out = a;
    for (const auto &p : b)
        if (std::find(out.begin(), out.end(), p) == out.end())
            out.push_back(p);
    return out;
}

} // namespace

void
Set::addPiece(BasicSet piece)
{
    piece.simplify();
    if (piece.markedEmpty())
        return;
    for (const auto &existing : pieces_) {
        if (existing.space().sameTuples(piece.space()) &&
            existing == piece)
            return; // Structural duplicate.
    }
    pieces_.push_back(std::move(piece));
}

Set
Set::unite(const Set &other) const
{
    Set out = *this;
    for (const auto &p : other.pieces_)
        out.addPiece(p);
    return out;
}

Set
Set::intersect(const Set &other) const
{
    Set out;
    for (const auto &a : pieces_) {
        for (const auto &b : other.pieces_) {
            if (!a.space().sameTuples(b.space()))
                continue;
            out.addPiece(a.intersect(b));
        }
    }
    return out;
}

namespace {

/**
 * Subtract one conjunction from another (same tuple): the classic
 * piece-splitting a - b = union_i (a and b_1..b_{i-1} and not b_i).
 */
std::vector<BasicSet>
subtractPiece(const BasicSet &a, const BasicSet &b)
{
    auto params = mergeParams(a.space().params(), b.space().params());
    BasicSet base = a.alignParams(params);
    BasicSet bb = b.alignParams(params);

    std::vector<BasicSet> out;
    // `ctx` accumulates the constraints of b handled so far.
    BasicSet ctx = base;
    for (const auto &c : bb.constraints()) {
        if (c.isEq) {
            // not(e == 0) = (e >= 1) or (-e >= 1).
            Constraint pos(false, c.coeffs);
            pos.coeffs.back() -= 1;
            Constraint neg(false, c.coeffs);
            for (auto &v : neg.coeffs)
                v = -v;
            neg.coeffs.back() -= 1;
            BasicSet p1 = ctx;
            p1.addConstraint(pos);
            p1.simplify();
            if (!p1.markedEmpty())
                out.push_back(std::move(p1));
            BasicSet p2 = ctx;
            p2.addConstraint(neg);
            p2.simplify();
            if (!p2.markedEmpty())
                out.push_back(std::move(p2));
        } else {
            // not(e >= 0) = (-e - 1 >= 0).
            Constraint neg(false, c.coeffs);
            for (auto &v : neg.coeffs)
                v = -v;
            neg.coeffs.back() -= 1;
            BasicSet p = ctx;
            p.addConstraint(neg);
            p.simplify();
            if (!p.markedEmpty())
                out.push_back(std::move(p));
        }
        ctx.addConstraint(c);
        ctx.simplify();
        if (ctx.markedEmpty())
            break; // a already fully inside handled prefix.
    }
    return out;
}

} // namespace

Set
Set::subtract(const Set &other) const
{
    Set out;
    for (const auto &a : pieces_) {
        std::vector<BasicSet> remaining{a};
        for (const auto &b : other.pieces_) {
            if (!a.space().sameTuples(b.space()))
                continue;
            std::vector<BasicSet> next;
            for (const auto &piece : remaining) {
                auto split = subtractPiece(piece, b);
                next.insert(next.end(), split.begin(), split.end());
            }
            remaining = std::move(next);
            if (remaining.empty())
                break;
        }
        for (auto &piece : remaining)
            out.addPiece(std::move(piece));
    }
    return out;
}

bool
Set::isEmpty() const
{
    for (const auto &p : pieces_)
        if (!p.isEmpty())
            return false;
    return true;
}

bool
Set::isSubset(const Set &other) const
{
    return subtract(other).isEmpty();
}

Set
Set::extractTuple(const std::string &name) const
{
    Set out;
    for (const auto &p : pieces_)
        if (p.space().outTuple() == name)
            out.addPiece(p);
    return out;
}

std::vector<std::string>
Set::tupleNames() const
{
    std::vector<std::string> out;
    for (const auto &p : pieces_) {
        const std::string &t = p.space().outTuple();
        if (std::find(out.begin(), out.end(), t) == out.end())
            out.push_back(t);
    }
    return out;
}

Set
Set::fixParam(const std::string &name, int64_t value) const
{
    Set out;
    for (const auto &p : pieces_)
        out.addPiece(p.fixParam(name, value));
    return out;
}

bool
Set::wasExact() const
{
    for (const auto &p : pieces_)
        if (!p.wasExact())
            return false;
    return true;
}

std::vector<std::vector<int64_t>>
Set::enumerateTuple(const std::string &name,
                    const ParamValues &params) const
{
    std::set<std::vector<int64_t>> points;
    for (const auto &p : pieces_) {
        if (p.space().outTuple() != name)
            continue;
        for (auto &pt : p.enumerate(params))
            points.insert(std::move(pt));
    }
    return {points.begin(), points.end()};
}

std::string
Set::str() const
{
    if (pieces_.empty())
        return "{ }";
    std::string out;
    for (size_t i = 0; i < pieces_.size(); ++i) {
        if (i)
            out += " u ";
        out += pieces_[i].str();
    }
    return out;
}

} // namespace pres
} // namespace polyfuse
