#include "pres/space.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/strutil.hh"

namespace polyfuse {
namespace pres {

Space
Space::forSet(const std::string &tuple, unsigned dims,
              std::vector<std::string> params)
{
    Space s;
    s.isMap_ = false;
    s.outTuple_ = tuple;
    s.numOut_ = dims;
    s.params_ = std::move(params);
    return s;
}

Space
Space::forMap(const std::string &in_tuple, unsigned in_dims,
              const std::string &out_tuple, unsigned out_dims,
              std::vector<std::string> params)
{
    Space s;
    s.isMap_ = true;
    s.inTuple_ = in_tuple;
    s.outTuple_ = out_tuple;
    s.numIn_ = in_dims;
    s.numOut_ = out_dims;
    s.params_ = std::move(params);
    return s;
}

int
Space::paramIndex(const std::string &name) const
{
    auto it = std::find(params_.begin(), params_.end(), name);
    if (it == params_.end())
        return -1;
    return it - params_.begin();
}

void
Space::addParam(const std::string &name)
{
    if (paramIndex(name) >= 0)
        panic("duplicate parameter " + name);
    params_.push_back(name);
}

Space
Space::domainSpace() const
{
    if (!isMap_)
        panic("domainSpace() on a set space");
    return forSet(inTuple_, numIn_, params_);
}

Space
Space::rangeSpace() const
{
    if (!isMap_)
        panic("rangeSpace() on a set space");
    return forSet(outTuple_, numOut_, params_);
}

Space
Space::mapTo(const Space &range) const
{
    if (isMap_ || range.isMap_)
        panic("mapTo() expects two set spaces");
    std::vector<std::string> params = params_;
    for (const auto &p : range.params_)
        if (std::find(params.begin(), params.end(), p) == params.end())
            params.push_back(p);
    return forMap(outTuple_, numOut_, range.outTuple_, range.numOut_,
                  std::move(params));
}

Space
Space::reversed() const
{
    if (!isMap_)
        panic("reversed() on a set space");
    return forMap(outTuple_, numOut_, inTuple_, numIn_, params_);
}

bool
Space::operator==(const Space &o) const
{
    return isMap_ == o.isMap_ && inTuple_ == o.inTuple_ &&
           outTuple_ == o.outTuple_ && numIn_ == o.numIn_ &&
           numOut_ == o.numOut_ && params_ == o.params_;
}

bool
Space::sameTuples(const Space &o) const
{
    return isMap_ == o.isMap_ && inTuple_ == o.inTuple_ &&
           outTuple_ == o.outTuple_ && numIn_ == o.numIn_ &&
           numOut_ == o.numOut_;
}

std::string
Space::str() const
{
    std::string out;
    if (!params_.empty())
        out += "[" + join(params_, ",") + "] -> ";
    if (isMap_) {
        out += inTuple_ + "[" + std::to_string(numIn_) + "] -> ";
        out += outTuple_ + "[" + std::to_string(numOut_) + "]";
    } else {
        out += outTuple_ + "[" + std::to_string(numOut_) + "]";
    }
    return out;
}

} // namespace pres
} // namespace polyfuse
