/**
 * @file
 * A conjunction of affine constraints relating two tuples: the basic
 * relation of the Presburger layer (isl's isl_basic_map). Columns are
 * laid out [in dims | out dims | params | 1].
 */

#ifndef POLYFUSE_PRES_BASIC_MAP_HH
#define POLYFUSE_PRES_BASIC_MAP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "pres/basic_set.hh"
#include "pres/constraint.hh"
#include "pres/space.hh"

namespace polyfuse {
namespace pres {

/**
 * An affine bound on one dimension as a function of other columns:
 * dim >= ceil(coeffs . cols / div) for lower bounds,
 * dim <= floor(coeffs . cols / div) for upper bounds.
 */
struct DivBound
{
    CoeffRow coeffs; ///< over [in dims, params, 1]
    int64_t div = 1;
};

/** A convex affine relation between two integer tuples. */
class BasicMap
{
  public:
    BasicMap() = default;

    /** Universe relation of @p space. */
    explicit BasicMap(Space space);

    /** Canonical empty relation. */
    static BasicMap makeEmpty(Space space);

    /** Identity relation on a set space. */
    static BasicMap identity(const Space &set_space);

    /**
     * Relation defined by output equalities: out[i] == exprs[i] where
     * each expression row spans [in dims, params, 1].
     */
    static BasicMap
    fromOutExprs(const std::string &in_tuple, unsigned in_dims,
                 const std::string &out_tuple,
                 const std::vector<std::vector<int64_t>> &exprs,
                 std::vector<std::string> params);

    const Space &space() const { return space_; }
    const std::vector<Constraint> &constraints() const { return cons_; }

    void addConstraint(const Constraint &c);
    void simplify();

    bool wasExact() const { return exact_; }
    bool markedEmpty() const { return markedEmpty_; }
    bool isEmpty() const;

    BasicMap intersect(const BasicMap &other) const;

    /** Restrict the domain to @p set (a set over the input tuple). */
    BasicMap intersectDomain(const BasicSet &set) const;

    /** Restrict the range to @p set (a set over the output tuple). */
    BasicMap intersectRange(const BasicSet &set) const;

    /** Swap input and output tuples. */
    BasicMap reverse() const;

    /** Project onto the input tuple. */
    BasicSet domain() const;

    /** Project onto the output tuple. */
    BasicSet range() const;

    /**
     * Relation composition: this : A -> B, @p g : B -> C, the result
     * is (g o this) : A -> C.
     */
    BasicMap compose(const BasicMap &g) const;

    /** Image of @p set (over the input tuple) under this relation. */
    BasicSet apply(const BasicSet &set) const;

    /**
     * Difference set {out - in} for relations with equal arities
     * (tuple names may differ); the result tuple is "delta".
     */
    BasicSet deltas() const;

    /** Flatten to a set over [in, out] named "in->out". */
    BasicSet wrap() const;

    BasicMap alignParams(const std::vector<std::string> &params) const;
    BasicMap fixParam(const std::string &name, int64_t value) const;

    /** Fix input dim @p pos to @p value. */
    BasicMap fixInDim(unsigned pos, int64_t value) const;

    /** Rename the input/output tuples. */
    BasicMap renameTuples(const std::string &in_tuple,
                          const std::string &out_tuple) const;

    /**
     * Affine lower/upper bounds of output dim @p j as functions of
     * the input dims and parameters (other output dims projected
     * out): the box the paper uses for memory footprints (Sec. III-A)
     * and scratchpad allocation (Sec. V-B).
     *
     * @return false if @p j is unbounded below or above.
     */
    bool outDimBounds(unsigned j, std::vector<DivBound> &lowers,
                      std::vector<DivBound> &uppers) const;

    std::string str() const;

    bool operator==(const BasicMap &o) const;

  private:
    Space space_;
    std::vector<Constraint> cons_;
    bool exact_ = true;
    bool markedEmpty_ = false;

    void markEmpty();
};

} // namespace pres
} // namespace polyfuse

#endif // POLYFUSE_PRES_BASIC_MAP_HH
