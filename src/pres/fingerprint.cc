#include "pres/fingerprint.hh"

#include <cstdio>
#include <cstring>

#include "pres/basic_map.hh"
#include "pres/basic_set.hh"
#include "pres/space.hh"

namespace polyfuse {
namespace pres {

std::string
Fingerprint::hex() const
{
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  (unsigned long long)h1, (unsigned long long)h2);
    return buf;
}

bool
parseFingerprint(const std::string &text, Fingerprint *out)
{
    if (text.size() != 32)
        return false;
    uint64_t lanes[2] = {0, 0};
    for (int lane = 0; lane < 2; ++lane) {
        for (int i = 0; i < 16; ++i) {
            char c = text[size_t(lane * 16 + i)];
            uint64_t digit;
            if (c >= '0' && c <= '9')
                digit = uint64_t(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = uint64_t(c - 'a' + 10);
            else
                return false;
            lanes[lane] = (lanes[lane] << 4) | digit;
        }
    }
    out->h1 = lanes[0];
    out->h2 = lanes[1];
    return true;
}

void
Fingerprinter::mixDouble(double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
}

void
Fingerprinter::mix(const std::string &s)
{
    mix(uint64_t(s.size()));
    for (char c : s) {
        a_ ^= uint8_t(c);
        a_ *= kFnvPrime;
        b_ ^= uint8_t(c);
        b_ *= kFnvPrime;
    }
}

void
mixSpace(Fingerprinter &fp, const Space &space)
{
    fp.mixBool(space.isMap());
    fp.mix(space.inTuple());
    fp.mix(space.outTuple());
    fp.mix(space.numIn());
    fp.mix(space.numOut());
    fp.mix(space.numParams());
    for (const auto &p : space.params())
        fp.mix(p);
}

namespace {

void
mixRows(Fingerprinter &fp, const std::vector<Constraint> &rows)
{
    fp.mix(uint64_t(rows.size()));
    for (const Constraint &r : rows) {
        fp.mixBool(r.isEq);
        fp.mix(uint64_t(r.coeffs.size()));
        for (size_t i = 0; i < r.coeffs.size(); ++i)
            fp.mixSigned(r.coeffs[i]);
    }
}

} // namespace

void
mixBasicSet(Fingerprinter &fp, const BasicSet &set)
{
    mixSpace(fp, set.space());
    fp.mixBool(set.wasExact());
    fp.mixBool(set.markedEmpty());
    mixRows(fp, set.constraints());
}

void
mixBasicMap(Fingerprinter &fp, const BasicMap &map)
{
    mixSpace(fp, map.space());
    fp.mixBool(map.wasExact());
    fp.mixBool(map.markedEmpty());
    mixRows(fp, map.constraints());
}

} // namespace pres
} // namespace polyfuse
