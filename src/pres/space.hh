/**
 * @file
 * Space descriptions for Presburger sets and maps.
 *
 * A Space names the tuple(s) and dimensions a set or map lives in,
 * plus its symbolic parameters. The constraint column layout derived
 * from a space is
 *
 *     [ in dims | out dims | params | constant ]
 *
 * where sets have no "in" part and their dimensions occupy the "out"
 * slot (mirroring isl's convention, which lets a map be treated as a
 * relation whose range is a set space).
 */

#ifndef POLYFUSE_PRES_SPACE_HH
#define POLYFUSE_PRES_SPACE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace polyfuse {
namespace pres {

/** Dimension/parameter bookkeeping shared by BasicSet and BasicMap. */
class Space
{
  public:
    Space() = default;

    /** Build a set space: a named tuple with @p dims dimensions. */
    static Space forSet(const std::string &tuple, unsigned dims,
                        std::vector<std::string> params = {});

    /** Build a map space between two named tuples. */
    static Space forMap(const std::string &in_tuple, unsigned in_dims,
                        const std::string &out_tuple, unsigned out_dims,
                        std::vector<std::string> params = {});

    bool isSet() const { return !isMap_; }
    bool isMap() const { return isMap_; }

    const std::string &inTuple() const { return inTuple_; }
    const std::string &outTuple() const { return outTuple_; }

    unsigned numIn() const { return numIn_; }
    unsigned numOut() const { return numOut_; }
    unsigned numParams() const { return params_.size(); }

    /** Total variable (non-param) dimensions. */
    unsigned numDims() const { return numIn_ + numOut_; }

    /** Total constraint columns including the constant column. */
    unsigned numCols() const { return numDims() + numParams() + 1; }

    /** Column index of output dimension @p i. */
    unsigned outCol(unsigned i) const { return numIn_ + i; }

    /** Column index of input dimension @p i. */
    unsigned inCol(unsigned i) const { return i; }

    /** Column index of parameter @p i. */
    unsigned paramCol(unsigned i) const { return numDims() + i; }

    /** Column index of the constant term. */
    unsigned constCol() const { return numCols() - 1; }

    const std::vector<std::string> &params() const { return params_; }

    /** Index of parameter @p name, or -1 when absent. */
    int paramIndex(const std::string &name) const;

    /** Append a parameter (must not already exist). */
    void addParam(const std::string &name);

    /** Space of the map's domain as a set space. */
    Space domainSpace() const;

    /** Space of the map's range as a set space. */
    Space rangeSpace() const;

    /** Map space from this set space to @p range. */
    Space mapTo(const Space &range) const;

    /** Reversed map space (out -> in). */
    Space reversed() const;

    /** Structural equality (tuples, arities, param names). */
    bool operator==(const Space &o) const;
    bool operator!=(const Space &o) const { return !(*this == o); }

    /** Same tuples/arities, ignoring parameters. */
    bool sameTuples(const Space &o) const;

    /** Human-readable description, e.g. "S0[2] -> A[2]". */
    std::string str() const;

  private:
    bool isMap_ = false;
    std::string inTuple_;
    std::string outTuple_;
    unsigned numIn_ = 0;
    unsigned numOut_ = 0;
    std::vector<std::string> params_;
};

} // namespace pres
} // namespace polyfuse

#endif // POLYFUSE_PRES_SPACE_HH
