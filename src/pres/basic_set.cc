#include "pres/basic_set.hh"

#include <algorithm>

#include "pres/fm.hh"
#include "pres/op_cache.hh"
#include "pres/printing.hh"
#include "support/intmath.hh"
#include "support/logging.hh"
#include "support/strutil.hh"

namespace polyfuse {
namespace pres {

BasicSet::BasicSet(Space space)
    : space_(std::move(space))
{
    if (space_.isMap())
        panic("BasicSet constructed with a map space");
}

BasicSet
BasicSet::makeEmpty(Space space)
{
    BasicSet s(std::move(space));
    s.markEmpty();
    return s;
}

void
BasicSet::markEmpty()
{
    markedEmpty_ = true;
    cons_.clear();
    // 0 >= 1 is unsatisfiable; keeps derived operations empty even if
    // a caller ignores markedEmpty().
    Constraint c(false, CoeffRow(space_.numCols(), 0));
    c.coeffs.back() = -1;
    cons_.push_back(std::move(c));
}

void
BasicSet::addConstraint(const Constraint &c)
{
    if (c.coeffs.size() != space_.numCols())
        panic("constraint arity mismatch: " +
              std::to_string(c.coeffs.size()) + " vs " +
              std::to_string(space_.numCols()));
    cons_.push_back(c);
}

void
BasicSet::simplify()
{
    if (markedEmpty_)
        return;
    if (!fm::simplifyRows(fm::activeCtx(), cons_))
        markEmpty();
}

BasicSet
BasicSet::alignParams(const std::vector<std::string> &params) const
{
    // Verify the target is a superset of the current parameters.
    std::vector<int> remap(space_.numParams(), -1);
    for (unsigned i = 0; i < space_.numParams(); ++i) {
        auto it = std::find(params.begin(), params.end(),
                            space_.params()[i]);
        if (it == params.end())
            panic("alignParams target misses " + space_.params()[i]);
        remap[i] = it - params.begin();
    }

    BasicSet out(Space::forSet(space_.outTuple(), space_.numOut(),
                               params));
    out.exact_ = exact_;
    out.markedEmpty_ = markedEmpty_;
    unsigned nd = space_.numDims();
    for (const auto &c : cons_) {
        Constraint nc(c.isEq, CoeffRow(out.space_.numCols(),
                                                   0));
        for (unsigned i = 0; i < nd; ++i)
            nc.coeffs[i] = c.coeffs[i];
        for (unsigned i = 0; i < space_.numParams(); ++i)
            nc.coeffs[nd + remap[i]] = c.coeffs[nd + i];
        nc.coeffs.back() = c.constant();
        out.cons_.push_back(std::move(nc));
    }
    return out;
}

namespace {

/** Union of two parameter name lists, preserving order. */
std::vector<std::string>
mergeParams(const std::vector<std::string> &a,
            const std::vector<std::string> &b)
{
    std::vector<std::string> out = a;
    for (const auto &p : b)
        if (std::find(out.begin(), out.end(), p) == out.end())
            out.push_back(p);
    return out;
}

} // namespace

BasicSet
BasicSet::intersect(const BasicSet &other) const
{
    if (!space_.sameTuples(other.space_))
        panic("intersect: tuple mismatch " + space_.str() + " vs " +
              other.space_.str());
    fm::PresCtx &cctx = fm::activeCtx();
    OpCache *cache = cctx.cache;
    OpCache::Key key;
    if (cache) {
        key = OpCache::makeKey(Op::IntersectSet, *this, other);
        if (const BasicSet *cached = cache->findSet(cctx, key))
            return *cached;
    }
    auto params = mergeParams(space_.params(), other.space_.params());
    BasicSet a = alignParams(params);
    BasicSet b = other.alignParams(params);
    a.exact_ = exact_ && other.exact_;
    for (const auto &c : b.cons_)
        a.cons_.push_back(c);
    a.markedEmpty_ = markedEmpty_ || other.markedEmpty_;
    a.simplify();
    if (cache)
        cache->storeSet(cctx, key, a);
    return a;
}

BasicSet
BasicSet::projectOut(unsigned first, unsigned n) const
{
    if (first + n > space_.numOut())
        panic("projectOut out of range");
    fm::PresCtx &ctx = fm::activeCtx();
    OpCache *cache = ctx.cache;
    OpCache::Key key;
    if (cache) {
        key = OpCache::makeKey(Op::ProjectOut, *this, first, n);
        if (const BasicSet *cached = cache->findSet(ctx, key))
            return *cached;
    }
    BasicSet out = *this;
    bool exact = true;
    bool empty = false;
    // Eliminate from the highest column down so indices stay valid.
    for (unsigned i = 0; i < n && !empty; ++i) {
        unsigned col = first + n - 1 - i;
        if (!fm::eliminateCol(ctx, out.cons_, col, exact))
            empty = true;
    }
    out.space_ = Space::forSet(space_.outTuple(), space_.numOut() - n,
                               space_.params());
    if (empty)
        out.markEmpty();
    else
        out.exact_ = exact_ && exact;
    if (cache)
        cache->storeSet(ctx, key, out);
    return out;
}

bool
BasicSet::isEmpty() const
{
    if (markedEmpty_)
        return true;
    fm::PresCtx &ctx = fm::activeCtx();
    OpCache *cache = ctx.cache;
    OpCache::Key key;
    if (cache) {
        key = OpCache::makeKey(Op::IsEmptySet, *this);
        if (const bool *cached = cache->findBool(ctx, key))
            return *cached;
    }
    std::vector<Constraint> rows = cons_;
    bool exact = true;
    unsigned total = space_.numDims() + space_.numParams();
    bool empty = false;
    for (unsigned i = 0; i < total && !empty; ++i)
        if (!fm::eliminateCol(ctx, rows, 0, exact))
            empty = true;
    // Whatever remains is constant rows already verified feasible.
    if (cache)
        cache->storeBool(ctx, key, empty);
    return empty;
}

BasicSet
BasicSet::fixParam(const std::string &name, int64_t value) const
{
    int idx = space_.paramIndex(name);
    if (idx < 0)
        return *this; // Parameter not referenced here.
    std::vector<std::string> params = space_.params();
    params.erase(params.begin() + idx);
    BasicSet out(Space::forSet(space_.outTuple(), space_.numOut(),
                               params));
    out.exact_ = exact_;
    out.cons_ = cons_;
    unsigned col = space_.paramCol(idx);
    if (!fm::substituteCol(fm::activeCtx(), out.cons_, col, value))
        out.markEmpty();
    out.markedEmpty_ = out.markedEmpty_ || markedEmpty_;
    return out;
}

BasicSet
BasicSet::fixDim(unsigned pos, int64_t value) const
{
    if (pos >= space_.numOut())
        panic("fixDim out of range");
    BasicSet out = *this;
    Constraint c(true, CoeffRow(space_.numCols(), 0));
    c.coeffs[space_.outCol(pos)] = 1;
    c.coeffs.back() = -value;
    out.cons_.push_back(std::move(c));
    out.simplify();
    return out;
}

BasicSet
BasicSet::renameTuple(const std::string &name) const
{
    BasicSet out = *this;
    out.space_ =
        Space::forSet(name, space_.numOut(), space_.params());
    return out;
}

BasicSet
BasicSet::insertDims(unsigned pos, unsigned n) const
{
    if (pos > space_.numOut())
        panic("insertDims out of range");
    BasicSet out(Space::forSet(space_.outTuple(), space_.numOut() + n,
                               space_.params()));
    out.exact_ = exact_;
    out.markedEmpty_ = markedEmpty_;
    for (const auto &c : cons_) {
        Constraint nc = c;
        nc.coeffs.insert(nc.coeffs.begin() + pos, n, 0);
        out.cons_.push_back(std::move(nc));
    }
    return out;
}

bool
BasicSet::contains(const std::vector<int64_t> &point,
                   const ParamValues &params) const
{
    if (markedEmpty_)
        return false;
    if (point.size() != space_.numOut())
        panic("contains: point arity mismatch");
    for (const auto &c : cons_) {
        int64_t acc = c.constant();
        for (unsigned i = 0; i < space_.numOut(); ++i)
            acc = checkedAdd(acc, checkedMul(c.coeffs[space_.outCol(i)],
                                             point[i]));
        for (unsigned i = 0; i < space_.numParams(); ++i) {
            int64_t coeff = c.coeffs[space_.paramCol(i)];
            if (coeff == 0)
                continue;
            auto it = params.find(space_.params()[i]);
            if (it == params.end())
                fatal("contains: missing value for parameter " +
                      space_.params()[i]);
            acc = checkedAdd(acc, checkedMul(coeff, it->second));
        }
        if (c.isEq ? acc != 0 : acc < 0)
            return false;
    }
    return true;
}

namespace {

/**
 * Integer bounds of column 0 of a dim-only system (columns: dims +
 * constant). @return false when infeasible; fatal when unbounded.
 */
bool
headBounds(fm::PresCtx &ctx, std::vector<Constraint> rows,
           unsigned ndims, int64_t &lo, int64_t &hi)
{
    bool exact = true;
    for (unsigned i = ndims - 1; i >= 1; --i)
        if (!fm::eliminateCol(ctx, rows, i, exact))
            return false;
    bool has_lo = false, has_hi = false;
    lo = 0;
    hi = 0;
    for (const auto &row : rows) {
        int64_t a = row.coeffs[0];
        int64_t k = row.constant();
        if (a == 0)
            continue;
        if (row.isEq) {
            int64_t v = -k / a;
            if (checkedMul(a, v) + k != 0)
                return false;
            if (!has_lo || v > lo)
                lo = v;
            if (!has_hi || v < hi)
                hi = v;
            has_lo = has_hi = true;
        } else if (a > 0) {
            int64_t v = ceilDiv(-k, a);
            if (!has_lo || v > lo)
                lo = v;
            has_lo = true;
        } else {
            int64_t v = floorDiv(k, -a);
            if (!has_hi || v < hi)
                hi = v;
            has_hi = true;
        }
    }
    if (!has_lo || !has_hi)
        fatal("enumerate: unbounded dimension");
    return lo <= hi;
}

void
enumRec(fm::PresCtx &ctx, const std::vector<Constraint> &rows,
        unsigned ndims, std::vector<int64_t> &prefix,
        std::vector<std::vector<int64_t>> &out, size_t max_points)
{
    if (ndims == 0) {
        // All rows are constant; feasibility was checked on the way
        // down by substituteCol/simplifyRows.
        if (out.size() >= max_points)
            fatal("enumerate: too many points");
        out.push_back(prefix);
        return;
    }
    int64_t lo, hi;
    if (!headBounds(ctx, rows, ndims, lo, hi))
        return;
    for (int64_t v = lo; v <= hi; ++v) {
        std::vector<Constraint> sub = rows;
        if (!fm::substituteCol(ctx, sub, 0, v))
            continue;
        prefix.push_back(v);
        enumRec(ctx, sub, ndims - 1, prefix, out, max_points);
        prefix.pop_back();
    }
}

} // namespace

std::vector<std::vector<int64_t>>
BasicSet::enumerate(const ParamValues &params, size_t max_points) const
{
    if (markedEmpty_)
        return {};
    // Substitute parameters (right to left so columns stay valid).
    std::vector<Constraint> rows = cons_;
    unsigned nd = space_.numDims();
    fm::PresCtx &ctx = fm::activeCtx();
    for (unsigned i = space_.numParams(); i-- > 0;) {
        if (fm::colUnused(rows, nd + i)) {
            for (auto &row : rows)
                row.coeffs.erase(row.coeffs.begin() + nd + i);
            continue;
        }
        auto it = params.find(space_.params()[i]);
        if (it == params.end())
            fatal("enumerate: missing value for parameter " +
                  space_.params()[i]);
        if (!fm::substituteCol(ctx, rows, nd + i, it->second))
            return {};
    }
    std::vector<std::vector<int64_t>> out;
    std::vector<int64_t> prefix;
    if (nd == 0) {
        if (fm::simplifyRows(ctx, rows))
            out.push_back({});
        return out;
    }
    enumRec(ctx, rows, nd, prefix, out, max_points);
    return out;
}

bool
BasicSet::dimBounds(unsigned pos, const ParamValues &params,
                    int64_t &lo, int64_t &hi) const
{
    if (pos >= space_.numOut())
        panic("dimBounds out of range");
    if (markedEmpty_)
        return false;
    BasicSet tmp = *this;
    for (const auto &[name, value] : params)
        tmp = tmp.fixParam(name, value);
    if (tmp.space_.numParams() != 0)
        fatal("dimBounds: unresolved parameters remain");
    if (tmp.markedEmpty_)
        return false;
    // Move dim `pos` to the front, then bound the head column.
    std::vector<Constraint> rows = tmp.cons_;
    for (auto &row : rows) {
        int64_t v = row.coeffs[pos];
        row.coeffs.erase(row.coeffs.begin() + pos);
        row.coeffs.insert(row.coeffs.begin(), v);
    }
    unsigned nd = space_.numDims();
    fm::PresCtx &ctx = fm::activeCtx();
    if (nd == 1) {
        bool exact = true;
        (void)exact;
        std::vector<Constraint> probe = rows;
        if (!fm::simplifyRows(ctx, probe))
            return false;
        return headBounds(ctx, probe, 1, lo, hi);
    }
    return headBounds(ctx, rows, nd, lo, hi);
}

std::string
BasicSet::str() const
{
    std::vector<std::string> names;
    for (unsigned i = 0; i < space_.numOut(); ++i)
        names.push_back("i" + std::to_string(i));
    std::vector<std::string> cols = names;
    for (const auto &p : space_.params())
        cols.push_back(p);
    cols.push_back("1");

    std::string out;
    if (!space_.params().empty())
        out += "[" + join(space_.params(), ", ") + "] -> ";
    out += "{ " + space_.outTuple() + "[" + join(names, ", ") + "]";
    if (markedEmpty_) {
        out += " : false }";
        return out;
    }
    if (!cons_.empty())
        out += " : " + renderRows(cons_, cols);
    out += " }";
    return out;
}

bool
BasicSet::operator==(const BasicSet &o) const
{
    if (!(space_ == o.space_))
        return false;
    if (markedEmpty_ || o.markedEmpty_)
        return isEmpty() && o.isEmpty();
    BasicSet a = *this;
    BasicSet b = o;
    a.simplify();
    b.simplify();
    return a.cons_ == b.cons_ && a.markedEmpty_ == b.markedEmpty_;
}

} // namespace pres
} // namespace polyfuse
