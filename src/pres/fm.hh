/**
 * @file
 * The constraint-system engine shared by BasicSet and BasicMap:
 * GCD normalization/tightening, row simplification, and integer
 * Fourier-Motzkin elimination with the Omega test's exact
 * unit-coefficient rule.
 *
 * All functions operate on plain rows (Constraint) whose last column
 * is the constant term; they carry no Space knowledge. Callers adjust
 * spaces after columns are erased.
 *
 * Instrumentation is per-context (PresCtx) so independent
 * compilations — including concurrent ones on different threads —
 * never share mutable state. Code that does not care about contexts
 * keeps calling the ctx-less entry points, which route to the
 * thread's active context (a thread-local default when none is
 * installed), so the library is re-entrant either way.
 */

#ifndef POLYFUSE_PRES_FM_HH
#define POLYFUSE_PRES_FM_HH

#include <chrono>
#include <cstdint>
#include <vector>

#include "pres/constraint.hh"
#include "support/budget.hh"

namespace polyfuse {
namespace pres {

class OpCache;

namespace fm {

/**
 * Cumulative instrumentation of the FM engine, feeding the driver's
 * per-pass reporting: how many columns were projected out and how
 * many constraint rows those projections visited, plus the hash-
 * consed operation cache's hit/miss/eviction totals (zero when no
 * cache is attached). Owned by a PresCtx; callers snapshot
 * before/after a phase and report the delta.
 */
struct Counters
{
    uint64_t eliminations = 0;       ///< eliminateCol() invocations
    uint64_t constraintsVisited = 0; ///< rows alive at elimination
    uint64_t cacheHits = 0;          ///< OpCache lookups satisfied
    uint64_t cacheMisses = 0;        ///< OpCache lookups computed
    uint64_t cacheEvictions = 0;     ///< entries dropped by the cache

    Counters &
    operator+=(const Counters &o)
    {
        eliminations += o.eliminations;
        constraintsVisited += o.constraintsVisited;
        cacheHits += o.cacheHits;
        cacheMisses += o.cacheMisses;
        cacheEvictions += o.cacheEvictions;
        return *this;
    }
};

/**
 * Per-compilation state of the presburger layer. One context per
 * independent compilation (the driver's CompileContext owns one);
 * never shared between threads without external synchronization.
 *
 * Besides the instrumentation, the context is where the resource
 * guards live: an armed Budget is enforced cooperatively by
 * eliminateCol/simplifyRows (and re-checked by compose, codegen and
 * every driver pass via checkBudget), and an attached CancelToken is
 * polled at the same points. Exceeding either raises BudgetExceeded;
 * the constraint system being worked on is then in a valid but
 * unspecified state (basic exception guarantee), so callers discard
 * the whole in-flight compilation -- which is exactly what the
 * driver's fallback chain does.
 */
struct PresCtx
{
    Counters counters;

    /** Bytes of constraint-row storage materialized by the engine
     *  (working sets + FM combination rows); the arena proxy the
     *  Budget's allocBytes ceiling is enforced against. */
    uint64_t allocBytes = 0;

    /** Cancellation observed by every cooperative check; non-owning,
     *  may be null (the driver's CompileContext wires its token). */
    const CancelToken *cancel = nullptr;

    /** Hash-consed operation cache consulted by the BasicSet/BasicMap
     *  binary operations; non-owning, null disables memoization (the
     *  driver's CompileContext owns and wires one; the thread-default
     *  context has none, so context-free callers keep the exact
     *  uncached behaviour). */
    OpCache *cache = nullptr;

    /** Arm @p budget: ceilings apply to the work done from now on
     *  (counter baselines are snapshotted; the wall deadline starts
     *  ticking). Re-arming resets the window. */
    void armBudget(const Budget &budget);

    /** Disarm the budget (cancellation stays observed). */
    void disarmBudget();

    /** True when an armed budget is currently enforced. */
    bool budgetArmed() const { return armed_; }

    /** The armed budget's ceilings (meaningful while budgetArmed()). */
    const Budget &budget() const { return budget_; }

  private:
    friend void checkBudget(PresCtx &, const char *);
    friend bool eliminateCol(PresCtx &, std::vector<Constraint> &,
                             unsigned, bool &);
    Budget budget_;
    uint64_t baseElims_ = 0;   ///< counters at armBudget() time
    uint64_t baseRows_ = 0;
    uint64_t baseAlloc_ = 0;
    std::chrono::steady_clock::time_point deadline_{};
    bool hasDeadline_ = false;
    bool armed_ = false;
};

/**
 * Cooperative guard: throws BudgetExceeded when @p ctx's cancel token
 * was tripped or an armed budget ceiling is exceeded, naming @p site
 * in the message. No-op on an unarmed, uncancelled context, so it is
 * safe (and cheap) to sprinkle over every compilation phase.
 */
void checkBudget(PresCtx &ctx, const char *site);

/**
 * The context FM work is attributed to on this thread: the innermost
 * installed ScopedCtx, or a thread-local default context when none is
 * installed. Never null; distinct per thread, so code that ignores
 * contexts entirely is still re-entrant.
 */
PresCtx &activeCtx();

/** RAII installer of a thread's active context (nestable). */
class ScopedCtx
{
  public:
    explicit ScopedCtx(PresCtx &ctx);
    ~ScopedCtx();
    ScopedCtx(const ScopedCtx &) = delete;
    ScopedCtx &operator=(const ScopedCtx &) = delete;

  private:
    PresCtx *prev_;
};

/**
 * Normalize one row: divide by the GCD of the variable coefficients,
 * tightening the constant (floor) for inequalities; detect an
 * infeasible equality (GCD does not divide the constant).
 *
 * @return false iff the row alone proves infeasibility.
 */
bool normalizeRow(Constraint &row);

/**
 * Simplify a system: normalize rows, drop satisfied constant rows,
 * deduplicate, merge opposite inequalities into equalities, keep the
 * tightest of parallel inequalities.
 *
 * @return false iff the system is proved infeasible.
 */
bool simplifyRows(PresCtx &ctx, std::vector<Constraint> &rows);

/** simplifyRows against the thread's active context. */
bool simplifyRows(std::vector<Constraint> &rows);

/**
 * Eliminate (existentially project out) column @p col, erasing it
 * from every row. Counts one elimination (plus the rows visited)
 * in @p ctx.
 *
 * @param exact Cleared when the projection may over-approximate the
 *              integer projection (non-unit coefficients on both
 *              sides of a combination, or a non-unit equality).
 * @return false iff the system is proved infeasible.
 */
bool eliminateCol(PresCtx &ctx, std::vector<Constraint> &rows,
                  unsigned col, bool &exact);

/** eliminateCol against the thread's active context. */
bool eliminateCol(std::vector<Constraint> &rows, unsigned col,
                  bool &exact);

/**
 * Substitute column @p col with the constant @p value, folding the
 * contribution into the constant term and erasing the column.
 *
 * @return false iff the system is proved infeasible afterwards.
 */
bool substituteCol(PresCtx &ctx, std::vector<Constraint> &rows,
                   unsigned col, int64_t value);

/** substituteCol against the thread's active context. */
bool substituteCol(std::vector<Constraint> &rows, unsigned col,
                   int64_t value);

/** True when no row mentions column @p col. */
bool colUnused(const std::vector<Constraint> &rows, unsigned col);

} // namespace fm
} // namespace pres
} // namespace polyfuse

#endif // POLYFUSE_PRES_FM_HH
