/**
 * @file
 * The constraint-system engine shared by BasicSet and BasicMap:
 * GCD normalization/tightening, row simplification, and integer
 * Fourier-Motzkin elimination with the Omega test's exact
 * unit-coefficient rule.
 *
 * All functions operate on plain rows (Constraint) whose last column
 * is the constant term; they carry no Space knowledge. Callers adjust
 * spaces after columns are erased.
 */

#ifndef POLYFUSE_PRES_FM_HH
#define POLYFUSE_PRES_FM_HH

#include <cstdint>
#include <vector>

#include "pres/constraint.hh"

namespace polyfuse {
namespace pres {
namespace fm {

/**
 * Cumulative instrumentation of the FM engine, feeding the driver's
 * per-pass reporting: how many columns were projected out and how
 * many constraint rows those projections visited. Process-wide and
 * unsynchronized, like the rest of the library (single-threaded
 * compilation); callers snapshot before/after a phase and report the
 * delta.
 */
struct Counters
{
    uint64_t eliminations = 0;       ///< eliminateCol() invocations
    uint64_t constraintsVisited = 0; ///< rows alive at elimination
};

/** The process-wide counters (mutable). */
Counters &counters();

/** Zero the process-wide counters. */
void resetCounters();

/**
 * Normalize one row: divide by the GCD of the variable coefficients,
 * tightening the constant (floor) for inequalities; detect an
 * infeasible equality (GCD does not divide the constant).
 *
 * @return false iff the row alone proves infeasibility.
 */
bool normalizeRow(Constraint &row);

/**
 * Simplify a system: normalize rows, drop satisfied constant rows,
 * deduplicate, merge opposite inequalities into equalities, keep the
 * tightest of parallel inequalities.
 *
 * @return false iff the system is proved infeasible.
 */
bool simplifyRows(std::vector<Constraint> &rows);

/**
 * Eliminate (existentially project out) column @p col, erasing it
 * from every row.
 *
 * @param exact Cleared when the projection may over-approximate the
 *              integer projection (non-unit coefficients on both
 *              sides of a combination, or a non-unit equality).
 * @return false iff the system is proved infeasible.
 */
bool eliminateCol(std::vector<Constraint> &rows, unsigned col,
                  bool &exact);

/**
 * Substitute column @p col with the constant @p value, folding the
 * contribution into the constant term and erasing the column.
 *
 * @return false iff the system is proved infeasible afterwards.
 */
bool substituteCol(std::vector<Constraint> &rows, unsigned col,
                   int64_t value);

/** True when no row mentions column @p col. */
bool colUnused(const std::vector<Constraint> &rows, unsigned col);

} // namespace fm
} // namespace pres
} // namespace polyfuse

#endif // POLYFUSE_PRES_FM_HH
