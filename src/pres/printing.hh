/**
 * @file
 * Shared constraint renderer for BasicSet/BasicMap::str().
 */

#ifndef POLYFUSE_PRES_PRINTING_HH
#define POLYFUSE_PRES_PRINTING_HH

#include <string>
#include <vector>

#include "pres/constraint.hh"

namespace polyfuse {
namespace pres {

/** Render one constraint as "expr = 0" or "expr >= 0". */
std::string renderConstraint(const Constraint &c,
                             const std::vector<std::string> &col_names);

/** Render a conjunction, " and "-separated. */
std::string renderRows(const std::vector<Constraint> &rows,
                       const std::vector<std::string> &col_names);

} // namespace pres
} // namespace polyfuse

#endif // POLYFUSE_PRES_PRINTING_HH
