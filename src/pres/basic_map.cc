#include "pres/basic_map.hh"

#include <algorithm>

#include "pres/fm.hh"
#include "pres/op_cache.hh"
#include "pres/printing.hh"
#include "support/intmath.hh"
#include "support/logging.hh"
#include "support/strutil.hh"

namespace polyfuse {
namespace pres {

namespace {

std::vector<std::string>
mergeParams(const std::vector<std::string> &a,
            const std::vector<std::string> &b)
{
    std::vector<std::string> out = a;
    for (const auto &p : b)
        if (std::find(out.begin(), out.end(), p) == out.end())
            out.push_back(p);
    return out;
}

} // namespace

BasicMap::BasicMap(Space space)
    : space_(std::move(space))
{
    if (!space_.isMap())
        panic("BasicMap constructed with a set space");
}

BasicMap
BasicMap::makeEmpty(Space space)
{
    BasicMap m(std::move(space));
    m.markEmpty();
    return m;
}

void
BasicMap::markEmpty()
{
    markedEmpty_ = true;
    cons_.clear();
    Constraint c(false, CoeffRow(space_.numCols(), 0));
    c.coeffs.back() = -1;
    cons_.push_back(std::move(c));
}

BasicMap
BasicMap::identity(const Space &set_space)
{
    if (set_space.isMap())
        panic("identity expects a set space");
    unsigned n = set_space.numOut();
    BasicMap m(Space::forMap(set_space.outTuple(), n,
                             set_space.outTuple(), n,
                             set_space.params()));
    for (unsigned i = 0; i < n; ++i) {
        Constraint c(true, CoeffRow(m.space_.numCols(), 0));
        c.coeffs[m.space_.inCol(i)] = 1;
        c.coeffs[m.space_.outCol(i)] = -1;
        m.cons_.push_back(std::move(c));
    }
    return m;
}

BasicMap
BasicMap::fromOutExprs(const std::string &in_tuple, unsigned in_dims,
                       const std::string &out_tuple,
                       const std::vector<std::vector<int64_t>> &exprs,
                       std::vector<std::string> params)
{
    unsigned nparams = params.size();
    BasicMap m(Space::forMap(in_tuple, in_dims, out_tuple,
                             exprs.size(), std::move(params)));
    for (unsigned j = 0; j < exprs.size(); ++j) {
        const auto &e = exprs[j];
        if (e.size() != in_dims + nparams + 1)
            panic("fromOutExprs: expression arity mismatch");
        Constraint c(true, CoeffRow(m.space_.numCols(), 0));
        c.coeffs[m.space_.outCol(j)] = -1;
        for (unsigned i = 0; i < in_dims; ++i)
            c.coeffs[m.space_.inCol(i)] = e[i];
        for (unsigned p = 0; p < nparams; ++p)
            c.coeffs[m.space_.paramCol(p)] = e[in_dims + p];
        c.coeffs.back() = e.back();
        m.cons_.push_back(std::move(c));
    }
    return m;
}

void
BasicMap::addConstraint(const Constraint &c)
{
    if (c.coeffs.size() != space_.numCols())
        panic("constraint arity mismatch in BasicMap");
    cons_.push_back(c);
}

void
BasicMap::simplify()
{
    if (markedEmpty_)
        return;
    if (!fm::simplifyRows(fm::activeCtx(), cons_))
        markEmpty();
}

bool
BasicMap::isEmpty() const
{
    if (markedEmpty_)
        return true;
    fm::PresCtx &ctx = fm::activeCtx();
    OpCache *cache = ctx.cache;
    OpCache::Key key;
    if (cache) {
        key = OpCache::makeKey(Op::IsEmptyMap, *this);
        if (const bool *cached = cache->findBool(ctx, key))
            return *cached;
    }
    std::vector<Constraint> rows = cons_;
    bool exact = true;
    unsigned total = space_.numDims() + space_.numParams();
    bool empty = false;
    for (unsigned i = 0; i < total && !empty; ++i)
        if (!fm::eliminateCol(ctx, rows, 0, exact))
            empty = true;
    if (cache)
        cache->storeBool(ctx, key, empty);
    return empty;
}

BasicMap
BasicMap::alignParams(const std::vector<std::string> &params) const
{
    std::vector<int> remap(space_.numParams(), -1);
    for (unsigned i = 0; i < space_.numParams(); ++i) {
        auto it = std::find(params.begin(), params.end(),
                            space_.params()[i]);
        if (it == params.end())
            panic("alignParams target misses " + space_.params()[i]);
        remap[i] = it - params.begin();
    }
    BasicMap out(Space::forMap(space_.inTuple(), space_.numIn(),
                               space_.outTuple(), space_.numOut(),
                               params));
    out.exact_ = exact_;
    out.markedEmpty_ = markedEmpty_;
    unsigned nd = space_.numDims();
    for (const auto &c : cons_) {
        Constraint nc(c.isEq,
                      CoeffRow(out.space_.numCols(), 0));
        for (unsigned i = 0; i < nd; ++i)
            nc.coeffs[i] = c.coeffs[i];
        for (unsigned i = 0; i < space_.numParams(); ++i)
            nc.coeffs[nd + remap[i]] = c.coeffs[nd + i];
        nc.coeffs.back() = c.constant();
        out.cons_.push_back(std::move(nc));
    }
    return out;
}

BasicMap
BasicMap::fixParam(const std::string &name, int64_t value) const
{
    int idx = space_.paramIndex(name);
    if (idx < 0)
        return *this;
    std::vector<std::string> params = space_.params();
    params.erase(params.begin() + idx);
    BasicMap out(Space::forMap(space_.inTuple(), space_.numIn(),
                               space_.outTuple(), space_.numOut(),
                               params));
    out.exact_ = exact_;
    out.cons_ = cons_;
    if (!fm::substituteCol(fm::activeCtx(), out.cons_,
                           space_.paramCol(idx), value))
        out.markEmpty();
    out.markedEmpty_ = out.markedEmpty_ || markedEmpty_;
    return out;
}

BasicMap
BasicMap::fixInDim(unsigned pos, int64_t value) const
{
    if (pos >= space_.numIn())
        panic("fixInDim out of range");
    BasicMap out = *this;
    Constraint c(true, CoeffRow(space_.numCols(), 0));
    c.coeffs[space_.inCol(pos)] = 1;
    c.coeffs.back() = -value;
    out.cons_.push_back(std::move(c));
    out.simplify();
    return out;
}

BasicMap
BasicMap::renameTuples(const std::string &in_tuple,
                       const std::string &out_tuple) const
{
    BasicMap out = *this;
    out.space_ = Space::forMap(in_tuple, space_.numIn(), out_tuple,
                               space_.numOut(), space_.params());
    return out;
}

BasicMap
BasicMap::intersect(const BasicMap &other) const
{
    if (!space_.sameTuples(other.space_))
        panic("BasicMap::intersect tuple mismatch: " + space_.str() +
              " vs " + other.space_.str());
    fm::PresCtx &cctx = fm::activeCtx();
    OpCache *cache = cctx.cache;
    OpCache::Key key;
    if (cache) {
        key = OpCache::makeKey(Op::IntersectMap, *this, other);
        if (const BasicMap *cached = cache->findMap(cctx, key))
            return *cached;
    }
    auto params = mergeParams(space_.params(), other.space_.params());
    BasicMap a = alignParams(params);
    BasicMap b = other.alignParams(params);
    a.exact_ = exact_ && other.exact_;
    for (const auto &c : b.cons_)
        a.cons_.push_back(c);
    a.markedEmpty_ = markedEmpty_ || other.markedEmpty_;
    a.simplify();
    if (cache)
        cache->storeMap(cctx, key, a);
    return a;
}

BasicMap
BasicMap::intersectDomain(const BasicSet &set) const
{
    if (set.space().outTuple() != space_.inTuple() ||
        set.space().numOut() != space_.numIn())
        panic("intersectDomain tuple mismatch");
    fm::PresCtx &cctx = fm::activeCtx();
    OpCache *cache = cctx.cache;
    OpCache::Key key;
    if (cache) {
        key = OpCache::makeKey(Op::IntersectDomain, *this, set);
        if (const BasicMap *cached = cache->findMap(cctx, key))
            return *cached;
    }
    auto params = mergeParams(space_.params(), set.space().params());
    BasicMap a = alignParams(params);
    BasicSet b = set.alignParams(params);
    a.exact_ = exact_ && set.wasExact();
    for (const auto &c : b.constraints()) {
        // Widen set columns [dims, params, 1] to map columns.
        Constraint nc(c.isEq,
                      CoeffRow(a.space_.numCols(), 0));
        for (unsigned i = 0; i < space_.numIn(); ++i)
            nc.coeffs[a.space_.inCol(i)] = c.coeffs[i];
        for (unsigned p = 0; p < params.size(); ++p)
            nc.coeffs[a.space_.paramCol(p)] =
                c.coeffs[space_.numIn() + p];
        nc.coeffs.back() = c.constant();
        a.cons_.push_back(std::move(nc));
    }
    a.markedEmpty_ = markedEmpty_ || set.markedEmpty();
    a.simplify();
    if (cache)
        cache->storeMap(cctx, key, a);
    return a;
}

BasicMap
BasicMap::intersectRange(const BasicSet &set) const
{
    if (set.space().outTuple() != space_.outTuple() ||
        set.space().numOut() != space_.numOut())
        panic("intersectRange tuple mismatch");
    fm::PresCtx &cctx = fm::activeCtx();
    OpCache *cache = cctx.cache;
    OpCache::Key key;
    if (cache) {
        key = OpCache::makeKey(Op::IntersectRange, *this, set);
        if (const BasicMap *cached = cache->findMap(cctx, key))
            return *cached;
    }
    auto params = mergeParams(space_.params(), set.space().params());
    BasicMap a = alignParams(params);
    BasicSet b = set.alignParams(params);
    a.exact_ = exact_ && set.wasExact();
    for (const auto &c : b.constraints()) {
        Constraint nc(c.isEq,
                      CoeffRow(a.space_.numCols(), 0));
        for (unsigned i = 0; i < space_.numOut(); ++i)
            nc.coeffs[a.space_.outCol(i)] = c.coeffs[i];
        for (unsigned p = 0; p < params.size(); ++p)
            nc.coeffs[a.space_.paramCol(p)] =
                c.coeffs[space_.numOut() + p];
        nc.coeffs.back() = c.constant();
        a.cons_.push_back(std::move(nc));
    }
    a.markedEmpty_ = markedEmpty_ || set.markedEmpty();
    a.simplify();
    if (cache)
        cache->storeMap(cctx, key, a);
    return a;
}

BasicMap
BasicMap::reverse() const
{
    fm::PresCtx &cctx = fm::activeCtx();
    OpCache *cache = cctx.cache;
    OpCache::Key key;
    if (cache) {
        key = OpCache::makeKey(Op::Reverse, *this);
        if (const BasicMap *cached = cache->findMap(cctx, key))
            return *cached;
    }
    BasicMap out(space_.reversed());
    out.exact_ = exact_;
    out.markedEmpty_ = markedEmpty_;
    unsigned ni = space_.numIn();
    unsigned no = space_.numOut();
    for (const auto &c : cons_) {
        Constraint nc(c.isEq,
                      CoeffRow(c.coeffs.size(), 0));
        for (unsigned i = 0; i < no; ++i)
            nc.coeffs[i] = c.coeffs[ni + i];
        for (unsigned i = 0; i < ni; ++i)
            nc.coeffs[no + i] = c.coeffs[i];
        for (unsigned i = ni + no; i < c.coeffs.size(); ++i)
            nc.coeffs[i] = c.coeffs[i];
        out.cons_.push_back(std::move(nc));
    }
    if (cache)
        cache->storeMap(cctx, key, out);
    return out;
}

BasicSet
BasicMap::domain() const
{
    fm::PresCtx &ctx = fm::activeCtx();
    OpCache *cache = ctx.cache;
    OpCache::Key key;
    if (cache) {
        key = OpCache::makeKey(Op::Domain, *this);
        if (const BasicSet *cached = cache->findSet(ctx, key))
            return *cached;
    }
    // Project out the output dims.
    std::vector<Constraint> rows = cons_;
    bool exact = true;
    bool empty = markedEmpty_;
    for (unsigned i = 0; i < space_.numOut() && !empty; ++i) {
        unsigned col = space_.numIn() + space_.numOut() - 1 - i;
        if (!fm::eliminateCol(ctx, rows, col, exact))
            empty = true;
    }
    Space sp = space_.domainSpace();
    BasicSet out = empty ? BasicSet::makeEmpty(sp) : BasicSet(sp);
    if (!empty) {
        for (auto &r : rows)
            out.addConstraint(r);
        out.exact_ = exact_ && exact;
    }
    if (cache)
        cache->storeSet(ctx, key, out);
    return out;
}

BasicSet
BasicMap::range() const
{
    fm::PresCtx &ctx = fm::activeCtx();
    OpCache *cache = ctx.cache;
    OpCache::Key key;
    if (cache) {
        key = OpCache::makeKey(Op::Range, *this);
        if (const BasicSet *cached = cache->findSet(ctx, key))
            return *cached;
    }
    std::vector<Constraint> rows = cons_;
    bool exact = true;
    bool empty = markedEmpty_;
    for (unsigned i = 0; i < space_.numIn() && !empty; ++i)
        if (!fm::eliminateCol(ctx, rows, 0, exact))
            empty = true;
    Space sp = space_.rangeSpace();
    BasicSet out = empty ? BasicSet::makeEmpty(sp) : BasicSet(sp);
    if (!empty) {
        for (auto &r : rows)
            out.addConstraint(r);
        out.exact_ = exact_ && exact;
        if (!out.exact_)
            warn("BasicMap::range over-approximated (non-unit FM)");
    }
    if (cache)
        cache->storeSet(ctx, key, out);
    return out;
}

BasicMap
BasicMap::compose(const BasicMap &g) const
{
    if (space_.outTuple() != g.space().inTuple() ||
        space_.numOut() != g.space().numIn())
        panic("compose: mid tuple mismatch " + space_.str() + " then " +
              g.space().str());
    fm::PresCtx &cctx = fm::activeCtx();
    OpCache *cache = cctx.cache;
    OpCache::Key key;
    if (cache) {
        key = OpCache::makeKey(Op::Compose, *this, g);
        if (const BasicMap *cached = cache->findMap(cctx, key))
            return *cached;
    }
    auto params = mergeParams(space_.params(), g.space().params());
    BasicMap a = alignParams(params);
    BasicMap b = g.alignParams(params);

    unsigned na = space_.numIn();
    unsigned nb = space_.numOut();
    unsigned nc = g.space().numOut();
    unsigned np = params.size();
    unsigned total_cols = na + nb + nc + np + 1;

    std::vector<Constraint> rows;
    // Rows of this: [A, B] -> [A, B, C].
    for (const auto &c : a.cons_) {
        Constraint r(c.isEq, CoeffRow(total_cols, 0));
        for (unsigned i = 0; i < na + nb; ++i)
            r.coeffs[i] = c.coeffs[i];
        for (unsigned i = 0; i < np + 1; ++i)
            r.coeffs[na + nb + nc + i] = c.coeffs[na + nb + i];
        rows.push_back(std::move(r));
    }
    // Rows of g: [B, C] -> [A, B, C].
    for (const auto &c : b.cons_) {
        Constraint r(c.isEq, CoeffRow(total_cols, 0));
        for (unsigned i = 0; i < nb + nc; ++i)
            r.coeffs[na + i] = c.coeffs[i];
        for (unsigned i = 0; i < np + 1; ++i)
            r.coeffs[na + nb + nc + i] = c.coeffs[nb + nc + i];
        rows.push_back(std::move(r));
    }

    bool exact = true;
    fm::PresCtx &ctx = fm::activeCtx();
    bool empty = markedEmpty_ || g.markedEmpty_;
    for (unsigned i = 0; i < nb && !empty; ++i)
        if (!fm::eliminateCol(ctx, rows, na + nb - 1 - i, exact))
            empty = true;

    Space sp = Space::forMap(space_.inTuple(), na, g.space().outTuple(),
                             nc, params);
    BasicMap out = empty ? BasicMap::makeEmpty(sp) : BasicMap(sp);
    if (!empty) {
        out.cons_ = std::move(rows);
        out.exact_ = exact_ && g.exact_ && exact;
    }
    if (cache)
        cache->storeMap(cctx, key, out);
    return out;
}

BasicSet
BasicMap::apply(const BasicSet &set) const
{
    return intersectDomain(set).range();
}

BasicSet
BasicMap::deltas() const
{
    if (space_.numIn() != space_.numOut())
        panic("deltas: arity mismatch");
    fm::PresCtx &cctx = fm::activeCtx();
    OpCache *cache = cctx.cache;
    OpCache::Key key;
    if (cache) {
        key = OpCache::makeKey(Op::Deltas, *this);
        if (const BasicSet *cached = cache->findSet(cctx, key))
            return *cached;
    }
    unsigned n = space_.numIn();
    unsigned np = space_.numParams();
    unsigned total = 2 * n + n + np + 1; // [in, out, delta, params, 1]

    std::vector<Constraint> rows;
    for (const auto &c : cons_) {
        Constraint r(c.isEq, CoeffRow(total, 0));
        for (unsigned i = 0; i < 2 * n; ++i)
            r.coeffs[i] = c.coeffs[i];
        for (unsigned i = 0; i < np + 1; ++i)
            r.coeffs[3 * n + i] = c.coeffs[2 * n + i];
        rows.push_back(std::move(r));
    }
    // delta[i] == out[i] - in[i].
    for (unsigned i = 0; i < n; ++i) {
        Constraint r(true, CoeffRow(total, 0));
        r.coeffs[2 * n + i] = 1;
        r.coeffs[n + i] = -1;
        r.coeffs[i] = 1;
        rows.push_back(std::move(r));
    }

    bool exact = true;
    bool empty = markedEmpty_;
    for (unsigned i = 0; i < 2 * n && !empty; ++i)
        if (!fm::eliminateCol(cctx, rows, 0, exact))
            empty = true;

    Space sp = Space::forSet("delta", n, space_.params());
    BasicSet out = empty ? BasicSet::makeEmpty(sp) : BasicSet(sp);
    if (!empty) {
        for (auto &r : rows)
            out.addConstraint(r);
        out.exact_ = exact_ && exact;
    }
    if (cache)
        cache->storeSet(cctx, key, out);
    return out;
}

BasicSet
BasicMap::wrap() const
{
    Space sp = Space::forSet(space_.inTuple() + "->" + space_.outTuple(),
                             space_.numDims(), space_.params());
    if (markedEmpty_)
        return BasicSet::makeEmpty(sp);
    BasicSet out(sp);
    for (const auto &c : cons_)
        out.addConstraint(c);
    return out;
}

bool
BasicMap::outDimBounds(unsigned j, std::vector<DivBound> &lowers,
                       std::vector<DivBound> &uppers) const
{
    if (j >= space_.numOut())
        panic("outDimBounds out of range");
    fm::PresCtx &ctx = fm::activeCtx();
    OpCache *cache = ctx.cache;
    OpCache::Key key;
    if (cache) {
        key = OpCache::makeKey(Op::OutDimBounds, *this, uint64_t(j));
        if (const OpCache::BoundsValue *cached =
                cache->findBounds(ctx, key)) {
            lowers = cached->lowers;
            uppers = cached->uppers;
            return cached->ok;
        }
    }
    std::vector<Constraint> rows = cons_;
    bool exact = true;
    // Eliminate all output dims except j, from the highest down.
    for (unsigned i = space_.numOut(); i-- > 0;) {
        if (i == j)
            continue;
        if (!fm::eliminateCol(ctx, rows, space_.numIn() + i, exact))
            // Empty: no bounds to report. Not cached -- the uncached
            // path leaves the out-params untouched here, and a cached
            // replay must not differ observably.
            return false;
    }
    // j is the only remaining out dim after the eliminations above.
    unsigned jcol = space_.numIn();

    lowers.clear();
    uppers.clear();
    for (const auto &row : rows) {
        int64_t a = row.coeffs[jcol];
        if (a == 0)
            continue;
        DivBound b;
        b.coeffs.reserve(row.coeffs.size() - 1);
        for (size_t i = 0; i < row.coeffs.size(); ++i) {
            if (i == jcol)
                continue;
            b.coeffs.push_back(row.coeffs[i]);
        }
        if (row.isEq) {
            // a*j + e == 0 -> j == -e/a: both a bound below and above.
            DivBound lo = b, hi = b;
            int64_t div = a > 0 ? a : -a;
            int64_t sign = a > 0 ? -1 : 1;
            for (auto &v : lo.coeffs)
                v = checkedMul(v, sign);
            lo.div = div;
            hi = lo;
            lowers.push_back(lo);
            uppers.push_back(hi);
        } else if (a > 0) {
            // a*j + e >= 0 -> j >= ceil(-e / a).
            for (auto &v : b.coeffs)
                v = -v;
            b.div = a;
            lowers.push_back(std::move(b));
        } else {
            // -b*j + e >= 0 -> j <= floor(e / b).
            b.div = -a;
            uppers.push_back(std::move(b));
        }
    }
    bool ok = !lowers.empty() && !uppers.empty();
    if (cache)
        cache->storeBounds(ctx, key, {ok, lowers, uppers});
    return ok;
}

std::string
BasicMap::str() const
{
    std::vector<std::string> in_names, out_names, cols;
    for (unsigned i = 0; i < space_.numIn(); ++i)
        in_names.push_back("i" + std::to_string(i));
    for (unsigned i = 0; i < space_.numOut(); ++i)
        out_names.push_back("o" + std::to_string(i));
    cols = in_names;
    cols.insert(cols.end(), out_names.begin(), out_names.end());
    for (const auto &p : space_.params())
        cols.push_back(p);
    cols.push_back("1");

    std::string out;
    if (!space_.params().empty())
        out += "[" + join(space_.params(), ", ") + "] -> ";
    out += "{ " + space_.inTuple() + "[" + join(in_names, ", ") +
           "] -> " + space_.outTuple() + "[" + join(out_names, ", ") +
           "]";
    if (markedEmpty_) {
        out += " : false }";
        return out;
    }
    if (!cons_.empty())
        out += " : " + renderRows(cons_, cols);
    out += " }";
    return out;
}

bool
BasicMap::operator==(const BasicMap &o) const
{
    if (!(space_ == o.space_))
        return false;
    if (markedEmpty_ || o.markedEmpty_)
        return isEmpty() && o.isEmpty();
    BasicMap a = *this;
    BasicMap b = o;
    a.simplify();
    b.simplify();
    return a.cons_ == b.cons_;
}

} // namespace pres
} // namespace polyfuse
