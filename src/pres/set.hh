/**
 * @file
 * A finite union of BasicSets, possibly over different named tuples
 * (the role isl_union_set plays in the paper's algorithms: iteration
 * domains of many statements, upwards exposed data of many arrays).
 */

#ifndef POLYFUSE_PRES_SET_HH
#define POLYFUSE_PRES_SET_HH

#include <string>
#include <vector>

#include "pres/basic_set.hh"

namespace polyfuse {
namespace pres {

/** A union of convex integer sets over named tuples. */
class Set
{
  public:
    Set() = default;

    explicit Set(BasicSet piece) { addPiece(std::move(piece)); }

    /** Append one conjunction (empty pieces are dropped). */
    void addPiece(BasicSet piece);

    const std::vector<BasicSet> &pieces() const { return pieces_; }
    bool empty() const { return pieces_.empty(); }

    /** Union (concatenate pieces, drop structural duplicates). */
    Set unite(const Set &other) const;

    /** Pairwise intersection of pieces with matching tuples. */
    Set intersect(const Set &other) const;

    /** Set difference (exact; may split pieces). */
    Set subtract(const Set &other) const;

    /** True when every piece is certainly empty (see BasicSet). */
    bool isEmpty() const;

    /** True when this - other is certainly empty. */
    bool isSubset(const Set &other) const;

    /** Pieces whose tuple is @p name. */
    Set extractTuple(const std::string &name) const;

    /** Distinct tuple names in order of first appearance. */
    std::vector<std::string> tupleNames() const;

    Set fixParam(const std::string &name, int64_t value) const;

    /** Conjunction of wasExact() over all pieces. */
    bool wasExact() const;

    /**
     * Enumerate all integer points of pieces with tuple @p name under
     * @p params, deduplicated across overlapping pieces, sorted.
     */
    std::vector<std::vector<int64_t>>
    enumerateTuple(const std::string &name, const ParamValues &params)
        const;

    std::string str() const;

  private:
    std::vector<BasicSet> pieces_;
};

} // namespace pres
} // namespace polyfuse

#endif // POLYFUSE_PRES_SET_HH
