/**
 * @file
 * Structural hashing shared by the FM engine's row deduplication and
 * the hash-consed operation cache: FNV-1a over 64-bit words, with a
 * splitmix-style finalizer so low-entropy coefficient patterns (lots
 * of 0/±1) still spread over the table.
 */

#ifndef POLYFUSE_PRES_ROW_HASH_HH
#define POLYFUSE_PRES_ROW_HASH_HH

#include <cstddef>
#include <cstdint>

#include "pres/constraint.hh"

namespace polyfuse {
namespace pres {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

/** Fold one 64-bit word into an FNV-1a state, byte by byte. */
inline uint64_t
fnvMix(uint64_t h, uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xff;
        h *= kFnvPrime;
    }
    return h;
}

/** Final avalanche (splitmix64 finalizer). */
inline uint64_t
hashFinalize(uint64_t h)
{
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return h;
}

/** Hash a span of coefficients. */
inline uint64_t
hashCoeffs(const int64_t *data, size_t n, uint64_t seed = kFnvOffset)
{
    uint64_t h = fnvMix(seed, uint64_t(n));
    for (size_t i = 0; i < n; ++i)
        h = fnvMix(h, uint64_t(data[i]));
    return hashFinalize(h);
}

/** Hash one full constraint row (kind + every coefficient). */
inline uint64_t
hashRow(const Constraint &c, uint64_t seed = kFnvOffset)
{
    uint64_t h = fnvMix(seed, c.isEq ? 0x9e3779b97f4a7c15ull : 1);
    return hashCoeffs(c.coeffs.data(), c.coeffs.size(), h);
}

} // namespace pres
} // namespace polyfuse

#endif // POLYFUSE_PRES_ROW_HASH_HH
