/**
 * @file
 * Hash-consed memoization of the expensive BasicSet/BasicMap
 * operations (compose, projections, intersections, emptiness and
 * bound queries), keyed on 128-bit structural fingerprints of the
 * operands (pres/fingerprint.hh).
 *
 * A compilation recomputes the same dependence compositions and
 * footprint projections many times: every fusion candidate re-derives
 * per-pair dependence relations, every tiling legality check
 * re-projects the same maps. The cache sits behind PresCtx (one per
 * CompileContext, never shared between threads) and returns the
 * stored result when an identical operation on byte-identical
 * operands repeats, skipping the Fourier-Motzkin work entirely.
 *
 * Correctness stance: fingerprints cover the full structural state of
 * an operand -- space (tuples, arities, parameter names), exactness
 * and emptiness flags, and every constraint row *in order*. In-order
 * hashing (rather than sorting rows first) deliberately treats two
 * permutations of the same system as different keys: a hit therefore
 * guarantees the uncached computation would have produced exactly the
 * stored bytes, which is what the byte-identical-output equivalence
 * tests demand. Since simplifyRows() sorts rows canonically, the
 * systems that repeat in practice hash identically anyway. Two
 * independent 64-bit fingerprints (distinct seeds) make accidental
 * collisions a non-issue (~2^-64 per pair under a random-oracle
 * approximation).
 *
 * Resource accounting: stored results are charged to the owning
 * context's allocBytes arena proxy, so an armed Budget's byte ceiling
 * covers cache growth too. Capacity pressure evicts entries one at a
 * time from the cold end of a shared LruMap (support/lru.hh) -- the
 * same policy the kernel cache uses -- instead of dropping the whole
 * table; hits/misses/evictions feed fm::Counters and surface as
 * per-pass stats.
 */

#ifndef POLYFUSE_PRES_OP_CACHE_HH
#define POLYFUSE_PRES_OP_CACHE_HH

#include <cstddef>
#include <cstdint>
#include <variant>
#include <vector>

#include "pres/basic_map.hh"
#include "pres/basic_set.hh"
#include "pres/fingerprint.hh"
#include "pres/fm.hh"
#include "support/lru.hh"

namespace polyfuse {
namespace pres {

/** Operation tags mixed into cache keys (values are part of the key
 *  derivation; renumbering invalidates nothing but keep them stable
 *  for debuggability). */
enum class Op : uint8_t
{
    Compose = 1,
    Reverse,
    Domain,
    Range,
    Deltas,
    IntersectMap,
    IntersectSet,
    IntersectDomain,
    IntersectRange,
    IsEmptyMap,
    IsEmptySet,
    ProjectOut,
    OutDimBounds,
};

/** Memoization table for Presburger operations; one per PresCtx. */
class OpCache
{
  public:
    /** 128-bit key: two independent fingerprints of (op, operands). */
    using Key = Fingerprint;

    /** Cached result of BasicMap::outDimBounds. */
    struct BoundsValue
    {
        bool ok = false;
        std::vector<DivBound> lowers;
        std::vector<DivBound> uppers;
    };

    /** Lifetime totals (never reset by clear()). */
    struct Stats
    {
        uint64_t hits = 0;
        uint64_t misses = 0;
        uint64_t evictions = 0;
    };

    static constexpr size_t kDefaultMaxEntries = 1 << 14;

    explicit OpCache(size_t max_entries = kDefaultMaxEntries)
        : lru_(max_entries ? max_entries : 1)
    {
    }

    /// @name Key derivation
    /// Mix the op tag, operand fingerprints and scalar arguments into
    /// a key; overloads cover every cached operation's signature.
    /// @{
    static Key makeKey(Op op, const BasicMap &a);
    static Key makeKey(Op op, const BasicMap &a, const BasicMap &b);
    static Key makeKey(Op op, const BasicMap &a, const BasicSet &b);
    static Key makeKey(Op op, const BasicMap &a, uint64_t arg);
    static Key makeKey(Op op, const BasicSet &a);
    static Key makeKey(Op op, const BasicSet &a, const BasicSet &b);
    static Key makeKey(Op op, const BasicSet &a, uint64_t arg0,
                       uint64_t arg1);
    /// @}

    /// @name Lookup
    /// A hit bumps @p ctx's cacheHits counter (and the entry to
    /// most-recently-used) and returns a pointer valid until the next
    /// store/clear; a miss bumps cacheMisses and returns null (the
    /// caller computes and stores).
    /// @{
    const BasicMap *findMap(fm::PresCtx &ctx, const Key &k);
    const BasicSet *findSet(fm::PresCtx &ctx, const Key &k);
    const bool *findBool(fm::PresCtx &ctx, const Key &k);
    const BoundsValue *findBounds(fm::PresCtx &ctx, const Key &k);
    /// @}

    /// @name Store
    /// Charges the stored bytes to @p ctx.allocBytes (and re-checks
    /// the armed budget); evicts least-recently-used entries past the
    /// entry ceiling.
    /// @{
    void storeMap(fm::PresCtx &ctx, const Key &k, const BasicMap &v);
    void storeSet(fm::PresCtx &ctx, const Key &k, const BasicSet &v);
    void storeBool(fm::PresCtx &ctx, const Key &k, bool v);
    void storeBounds(fm::PresCtx &ctx, const Key &k,
                     const BoundsValue &v);
    /// @}

    /** Drop every entry (a reset, not counted as evictions). */
    void clear() { lru_.clear(); }

    size_t entries() const { return lru_.size(); }

    size_t maxEntries() const { return size_t(lru_.capacity()); }

    const Stats &stats() const { return stats_; }

  private:
    using Value = std::variant<BasicMap, BasicSet, bool, BoundsValue>;

    void hit(fm::PresCtx &ctx);
    void miss(fm::PresCtx &ctx);
    void charge(fm::PresCtx &ctx, uint64_t bytes);
    void store(fm::PresCtx &ctx, const Key &k, Value v,
               uint64_t bytes);

    template <typename T>
    const T *
    findAs(fm::PresCtx &ctx, const Key &k)
    {
        Value *v = lru_.find(k);
        const T *t = v ? std::get_if<T>(v) : nullptr;
        if (!t) {
            miss(ctx);
            return nullptr;
        }
        hit(ctx);
        return t;
    }

    Stats stats_;
    LruMap<Key, Value, FingerprintHash> lru_;
};

} // namespace pres
} // namespace polyfuse

#endif // POLYFUSE_PRES_OP_CACHE_HH
