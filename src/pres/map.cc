#include "pres/map.hh"

#include <algorithm>

#include "support/logging.hh"

namespace polyfuse {
namespace pres {

void
Map::addPiece(BasicMap piece)
{
    piece.simplify();
    if (piece.markedEmpty())
        return;
    for (const auto &existing : pieces_) {
        if (existing.space().sameTuples(piece.space()) &&
            existing == piece)
            return;
    }
    pieces_.push_back(std::move(piece));
}

Map
Map::unite(const Map &other) const
{
    Map out = *this;
    for (const auto &p : other.pieces_)
        out.addPiece(p);
    return out;
}

Map
Map::intersect(const Map &other) const
{
    Map out;
    for (const auto &a : pieces_)
        for (const auto &b : other.pieces_)
            if (a.space().sameTuples(b.space()))
                out.addPiece(a.intersect(b));
    return out;
}

namespace {

std::vector<std::string>
mergeParams(const std::vector<std::string> &a,
            const std::vector<std::string> &b)
{
    std::vector<std::string> out = a;
    for (const auto &p : b)
        if (std::find(out.begin(), out.end(), p) == out.end())
            out.push_back(p);
    return out;
}

/** Piece-splitting subtraction on relations (same tuple pair). */
std::vector<BasicMap>
subtractPiece(const BasicMap &a, const BasicMap &b)
{
    auto params = mergeParams(a.space().params(), b.space().params());
    BasicMap base = a.alignParams(params);
    BasicMap bb = b.alignParams(params);

    std::vector<BasicMap> out;
    BasicMap ctx = base;
    for (const auto &c : bb.constraints()) {
        auto addNeg = [&](Constraint neg) {
            BasicMap p = ctx;
            p.addConstraint(neg);
            p.simplify();
            if (!p.markedEmpty())
                out.push_back(std::move(p));
        };
        if (c.isEq) {
            Constraint pos(false, c.coeffs);
            pos.coeffs.back() -= 1;
            addNeg(pos);
            Constraint neg(false, c.coeffs);
            for (auto &v : neg.coeffs)
                v = -v;
            neg.coeffs.back() -= 1;
            addNeg(neg);
        } else {
            Constraint neg(false, c.coeffs);
            for (auto &v : neg.coeffs)
                v = -v;
            neg.coeffs.back() -= 1;
            addNeg(neg);
        }
        ctx.addConstraint(c);
        ctx.simplify();
        if (ctx.markedEmpty())
            break;
    }
    return out;
}

} // namespace

Map
Map::subtract(const Map &other) const
{
    Map out;
    for (const auto &a : pieces_) {
        std::vector<BasicMap> remaining{a};
        for (const auto &b : other.pieces_) {
            if (!a.space().sameTuples(b.space()))
                continue;
            std::vector<BasicMap> next;
            for (const auto &piece : remaining) {
                auto split = subtractPiece(piece, b);
                next.insert(next.end(), split.begin(), split.end());
            }
            remaining = std::move(next);
            if (remaining.empty())
                break;
        }
        for (auto &piece : remaining)
            out.addPiece(std::move(piece));
    }
    return out;
}

Map
Map::reverse() const
{
    Map out;
    for (const auto &p : pieces_)
        out.addPiece(p.reverse());
    return out;
}

Set
Map::domain() const
{
    Set out;
    for (const auto &p : pieces_)
        out.addPiece(p.domain());
    return out;
}

Set
Map::range() const
{
    Set out;
    for (const auto &p : pieces_)
        out.addPiece(p.range());
    return out;
}

Map
Map::compose(const Map &g) const
{
    Map out;
    for (const auto &a : pieces_)
        for (const auto &b : g.pieces_)
            if (a.space().outTuple() == b.space().inTuple() &&
                a.space().numOut() == b.space().numIn())
                out.addPiece(a.compose(b));
    return out;
}

Set
Map::apply(const Set &set) const
{
    Set out;
    for (const auto &m : pieces_)
        for (const auto &s : set.pieces())
            if (m.space().inTuple() == s.space().outTuple() &&
                m.space().numIn() == s.space().numOut())
                out.addPiece(m.intersectDomain(s).range());
    return out;
}

Map
Map::intersectDomain(const Set &set) const
{
    Map out;
    for (const auto &m : pieces_)
        for (const auto &s : set.pieces())
            if (m.space().inTuple() == s.space().outTuple() &&
                m.space().numIn() == s.space().numOut())
                out.addPiece(m.intersectDomain(s));
    return out;
}

Map
Map::intersectRange(const Set &set) const
{
    Map out;
    for (const auto &m : pieces_)
        for (const auto &s : set.pieces())
            if (m.space().outTuple() == s.space().outTuple() &&
                m.space().numOut() == s.space().numOut())
                out.addPiece(m.intersectRange(s));
    return out;
}

Set
Map::deltas() const
{
    Set out;
    for (const auto &p : pieces_) {
        if (p.space().numIn() != p.space().numOut())
            panic("Map::deltas on mixed-arity union");
        out.addPiece(p.deltas());
    }
    return out;
}

Map
Map::extractDomainTuple(const std::string &name) const
{
    Map out;
    for (const auto &p : pieces_)
        if (p.space().inTuple() == name)
            out.addPiece(p);
    return out;
}

Map
Map::extractRangeTuple(const std::string &name) const
{
    Map out;
    for (const auto &p : pieces_)
        if (p.space().outTuple() == name)
            out.addPiece(p);
    return out;
}

Map
Map::fixParam(const std::string &name, int64_t value) const
{
    Map out;
    for (const auto &p : pieces_)
        out.addPiece(p.fixParam(name, value));
    return out;
}

BasicMap
Map::simpleHull() const
{
    if (pieces_.empty())
        panic("simpleHull of an empty union");
    if (pieces_.size() == 1)
        return pieces_[0];
    // Align every piece on the same parameter list.
    std::vector<std::string> params;
    for (const auto &p : pieces_) {
        if (!p.space().sameTuples(pieces_[0].space()))
            panic("simpleHull: mixed tuple pairs");
        params = mergeParams(params, p.space().params());
    }
    std::vector<BasicMap> aligned;
    for (const auto &p : pieces_)
        aligned.push_back(p.alignParams(params));

    BasicMap hull(aligned[0].space());
    std::vector<Constraint> kept;
    for (size_t i = 0; i < aligned.size(); ++i) {
        for (const auto &c : aligned[i].constraints()) {
            if (std::find(kept.begin(), kept.end(), c) != kept.end())
                continue;
            // Valid iff every piece satisfies it (piece ∧ ¬c empty).
            bool valid = true;
            auto violates = [&](const BasicMap &q,
                                const Constraint &neg) {
                BasicMap probe = q;
                probe.addConstraint(neg);
                probe.simplify();
                return !probe.isEmpty();
            };
            for (size_t j = 0; j < aligned.size() && valid; ++j) {
                if (j == i)
                    continue;
                if (c.isEq) {
                    Constraint pos(false, c.coeffs);
                    pos.coeffs.back() -= 1;
                    Constraint neg(false, c.coeffs);
                    for (auto &v : neg.coeffs)
                        v = -v;
                    neg.coeffs.back() -= 1;
                    if (violates(aligned[j], pos) ||
                        violates(aligned[j], neg))
                        valid = false;
                } else {
                    Constraint neg(false, c.coeffs);
                    for (auto &v : neg.coeffs)
                        v = -v;
                    neg.coeffs.back() -= 1;
                    if (violates(aligned[j], neg))
                        valid = false;
                }
            }
            if (valid)
                kept.push_back(c);
        }
    }
    for (const auto &c : kept)
        hull.addConstraint(c);
    hull.simplify();
    return hull;
}

bool
Map::isEmpty() const
{
    for (const auto &p : pieces_)
        if (!p.isEmpty())
            return false;
    return true;
}

bool
Map::wasExact() const
{
    for (const auto &p : pieces_)
        if (!p.wasExact())
            return false;
    return true;
}

std::string
Map::str() const
{
    if (pieces_.empty())
        return "{ }";
    std::string out;
    for (size_t i = 0; i < pieces_.size(); ++i) {
        if (i)
            out += " u ";
        out += pieces_[i].str();
    }
    return out;
}

} // namespace pres
} // namespace polyfuse
