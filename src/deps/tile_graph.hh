/**
 * @file
 * Projection of statement-level dependences onto tile coordinates.
 *
 * A tiled band partitions its members' instances into tiles indexed
 * by t_k = floor((dim_k + shift_k) / T_k). Projecting each dependence
 * distance range [a, b] (band space, shifts applied) through the
 * floor gives a tile-distance box [floorDiv(a, T), ceilDiv(b, T)] per
 * level -- tight, since floor((v+d)/T) - floor(v/T) always lands in
 * {floor(d/T), ceil(d/T)}. The union of the enumerated non-zero
 * lexicographically positive vectors from these boxes is a compact
 * inter-tile dependence stencil: tile u must finish before tile
 * u + delta starts, for every delta in the set. Zero vectors
 * (intra-tile, satisfied by sequential execution inside the tile) and
 * lex-negative vectors (projection slack -- a legal schedule gives
 * real inter-tile distances that are lex-nonnegative) are dropped.
 *
 * The result classifies each band:
 *  - FullyParallel: empty stencil; every tile is independent.
 *  - Wavefront: bounded stencil; tiles form a DAG that a ready-queue
 *    executor can drain (e.g. skewed/maxfuse tilings).
 *  - Serial: an unbounded distance, an oversized stencil, or a
 *    dependence that cannot be projected (a post-tiling fused
 *    statement without band coordinates, through a tensor that is
 *    not tile-local).
 *
 * All Presburger work runs through the active PresCtx, so the op
 * cache and budget enforcement of the enclosing CompileContext apply;
 * a BudgetExceeded escapes to the caller (the pipeline catches it and
 * degrades the band to Serial).
 */

#ifndef POLYFUSE_DEPS_TILE_GRAPH_HH
#define POLYFUSE_DEPS_TILE_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "deps/dependences.hh"

namespace polyfuse {
namespace deps {

/**
 * Plain-data description of one tiled band. Mirrors
 * codegen::GeneratedBand, but deps sits below codegen in the layer
 * order, so the caller (driver::Pipeline) converts rather than this
 * header including codegen's.
 */
struct TileBandDesc
{
    int id = -1;
    std::vector<int64_t> tileSizes; ///< per level, all > 0
    std::vector<bool> coincident;   ///< per level
    struct Member
    {
        int stmt = -1;
        std::vector<unsigned> dims;  ///< domain dim per level
        std::vector<int64_t> shifts; ///< added to the dim per level
    };
    std::vector<Member> members;
    /** Statements executing inside the tiles without band
     *  coordinates (extension-fused producers). */
    std::vector<int> extraStmts;
    /** Tensors promoted to tile-local scratchpads under the band:
     *  dependences carried purely through them never cross tiles. */
    std::vector<int> localTensors;
};

/** How a band's tiles may be executed. */
enum class TileBandClass
{
    FullyParallel, ///< no inter-tile dependences: any order
    Wavefront,     ///< DAG from `deltas`: topological order
    Serial,        ///< sequential lexicographic order only
};

const char *tileBandClassName(TileBandClass cls);

/** The inter-tile dependence summary of one band. */
struct TileBandGraph
{
    int bandId = -1;
    TileBandClass cls = TileBandClass::Serial;
    /**
     * The dependence stencil: distinct lexicographically positive
     * tile-distance vectors (one component per band level). Tile u
     * depends on tile u - delta for each delta. Sorted
     * lexicographically; empty unless cls == Wavefront.
     */
    std::vector<std::vector<int64_t>> deltas;
    /** Number of statement-level dependences projected. */
    unsigned depsProjected = 0;
    /** Dependences skipped as tile-local (localTensors). */
    unsigned depsLocal = 0;
    /** Human-readable reason when cls == Serial. */
    std::string note;
};

/** Options for tileGraph(). */
struct TileGraphOptions
{
    /** Cap on distinct stencil vectors per band; exceeding it
     *  classifies the band Serial (a stencil this large would make
     *  the ready-queue bookkeeping cost more than it buys). */
    unsigned maxDeltas = 64;
};

/**
 * Project @p graph onto the tile coordinates of each band in
 * @p bands. Returns one TileBandGraph per input band, same order.
 * Dependences with an endpoint outside a band's statements are
 * satisfied by the sequential order of the surrounding code and do
 * not constrain that band's tiles.
 */
std::vector<TileBandGraph>
tileGraph(const DependenceGraph &graph,
          const std::vector<TileBandDesc> &bands,
          const TileGraphOptions &options = {});

} // namespace deps
} // namespace polyfuse

#endif // POLYFUSE_DEPS_TILE_GRAPH_HH
