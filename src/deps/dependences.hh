/**
 * @file
 * Memory-based dependence analysis over the program IR.
 *
 * For every ordered pair of statement instances that touch the same
 * tensor element with at least one write, a Dependence records the
 * relation between source and destination instances. "Ordered" is
 * decided by the initial schedule: group order between loop nests,
 * and the statement paths (shared loops + sequence positions) inside
 * a nest. Memory-based dependences are sound for every legality
 * question asked in this library (fusion, tiling, post-tiling fusion)
 * and avoid lexmin machinery.
 */

#ifndef POLYFUSE_DEPS_DEPENDENCES_HH
#define POLYFUSE_DEPS_DEPENDENCES_HH

#include <cstdint>
#include <vector>

#include "ir/program.hh"
#include "pres/map.hh"

namespace polyfuse {
namespace deps {

/** Classic dependence kinds. */
enum class DepKind
{
    Flow,   ///< write -> read (producer-consumer)
    Anti,   ///< read -> write
    Output, ///< write -> write
};

/** One dependence between two statements over one tensor. */
struct Dependence
{
    int src = -1;    ///< source statement id (executes first)
    int dst = -1;    ///< destination statement id
    int tensor = -1; ///< tensor causing the dependence
    DepKind kind = DepKind::Flow;
    /** Source instances -> dependent destination instances. */
    pres::Map rel;
};

/** Min/max of one dependence-distance component. */
struct DistanceRange
{
    int64_t min = 0;
    int64_t max = 0;
    bool bounded = false;
};

/** The dependence graph of a program. */
class DependenceGraph
{
  public:
    /** Analyze @p program (kept by reference; must outlive this). */
    static DependenceGraph compute(const ir::Program &program);

    const std::vector<Dependence> &all() const { return deps_; }
    const ir::Program &program() const { return *prog_; }

    /** Dependences from statement @p src to statement @p dst. */
    std::vector<const Dependence *> between(int src, int dst) const;

    /** Dependences whose source is in group @p gsrc and dest in
     *  @p gdst. */
    std::vector<const Dependence *> betweenGroups(int gsrc,
                                                  int gdst) const;

    /** True when some dependence flows from @p gsrc into @p gdst. */
    bool groupDependsOn(int gdst, int gsrc) const;

    /** Flow dependences caused by @p tensor. */
    std::vector<const Dependence *> flowOfTensor(int tensor) const;

    /**
     * Distance ranges of @p dep projected onto band dimensions:
     * component k is dst band dim k minus src band dim k, bounded
     * under the program's parameter values. Components unbounded on
     * either side report bounded == false.
     */
    std::vector<DistanceRange>
    bandDistances(const Dependence &dep,
                  const std::vector<unsigned> &src_dims,
                  const std::vector<unsigned> &dst_dims) const;

  private:
    const ir::Program *prog_ = nullptr;
    std::vector<Dependence> deps_;
};

/**
 * The instance-level "executes strictly before" relation between two
 * statements under the initial schedule (exposed for testing).
 */
pres::Map beforeMap(const ir::Program &program, int src, int dst);

} // namespace deps
} // namespace polyfuse

#endif // POLYFUSE_DEPS_DEPENDENCES_HH
