#include "deps/tile_graph.hh"

#include <map>
#include <set>

#include "pres/fm.hh"
#include "support/intmath.hh"
#include "support/logging.hh"

namespace polyfuse {
namespace deps {

const char *
tileBandClassName(TileBandClass cls)
{
    switch (cls) {
      case TileBandClass::FullyParallel:
        return "parallel";
      case TileBandClass::Wavefront:
        return "wavefront";
      case TileBandClass::Serial:
        return "serial";
    }
    return "?";
}

namespace {

/** Cap on enumerated tile-distance box volume per dependence. */
constexpr int64_t kMaxBoxVolume = 4096;

bool
lexPositive(const std::vector<int64_t> &v)
{
    for (int64_t c : v) {
        if (c > 0)
            return true;
        if (c < 0)
            return false;
    }
    return false;
}

TileBandGraph
projectBand(const DependenceGraph &graph, const TileBandDesc &band,
            const TileGraphOptions &opt)
{
    TileBandGraph out;
    out.bandId = band.id;
    unsigned levels = band.tileSizes.size();

    auto serial = [&](std::string note) {
        out.cls = TileBandClass::Serial;
        out.deltas.clear();
        out.note = std::move(note);
        return out;
    };

    if (levels == 0)
        return serial("zero-dimensional band");
    for (int64_t t : band.tileSizes)
        if (t <= 0)
            return serial("non-positive tile size");

    std::map<int, const TileBandDesc::Member *> members;
    for (const auto &m : band.members) {
        if (m.dims.size() != levels || m.shifts.size() != levels)
            return serial("member arity mismatch");
        members[m.stmt] = &m;
    }
    std::set<int> extras(band.extraStmts.begin(),
                         band.extraStmts.end());
    std::set<int> locals(band.localTensors.begin(),
                         band.localTensors.end());

    std::set<std::vector<int64_t>> deltas;
    for (const auto &dep : graph.all()) {
        bool src_in =
            members.count(dep.src) || extras.count(dep.src);
        bool dst_in =
            members.count(dep.dst) || extras.count(dep.dst);
        // An endpoint outside the band is ordered by the sequential
        // code surrounding the band, not by its tiles.
        if (!src_in || !dst_in)
            continue;
        if (locals.count(dep.tensor)) {
            // Carried through a tile-local scratchpad: every tile
            // sees its own copy, so the dependence never crosses
            // tiles.
            ++out.depsLocal;
            continue;
        }
        if (extras.count(dep.src) || extras.count(dep.dst))
            return serial(
                "dependence through a non-local tensor involves a "
                "fused statement without tile coordinates");

        const TileBandDesc::Member &ms = *members.at(dep.src);
        const TileBandDesc::Member &md = *members.at(dep.dst);
        std::vector<DistanceRange> dist =
            graph.bandDistances(dep, ms.dims, md.dims);

        // Tile-distance box: band-space distance D (shifts applied)
        // in [a, b] puts floor((v+D)/T) - floor(v/T) inside
        // [floorDiv(a, T), ceilDiv(b, T)].
        std::vector<int64_t> lo(levels), hi(levels);
        int64_t volume = 1;
        for (unsigned k = 0; k < levels; ++k) {
            if (!dist[k].bounded)
                return serial(
                    "unbounded dependence distance at level " +
                    std::to_string(k));
            int64_t shift = md.shifts[k] - ms.shifts[k];
            lo[k] = floorDiv(dist[k].min + shift, band.tileSizes[k]);
            hi[k] = ceilDiv(dist[k].max + shift, band.tileSizes[k]);
            int64_t span = hi[k] - lo[k] + 1;
            if (span > kMaxBoxVolume || volume > kMaxBoxVolume / span)
                return serial("tile-distance box too large");
            volume *= span;
        }
        ++out.depsProjected;

        // Enumerate the box. Zero vectors are intra-tile (satisfied
        // by sequential execution inside the tile); lex-negative
        // vectors are projection slack (a legal schedule keeps real
        // inter-tile distances lex-nonnegative). Keep the rest.
        std::vector<int64_t> v = lo;
        for (;;) {
            if (lexPositive(v)) {
                deltas.insert(v);
                if (deltas.size() > opt.maxDeltas)
                    return serial(
                        "dependence stencil exceeds " +
                        std::to_string(opt.maxDeltas) + " vectors");
            }
            int j = int(levels) - 1;
            for (; j >= 0; --j) {
                if (v[j] < hi[j]) {
                    ++v[j];
                    break;
                }
                v[j] = lo[j];
            }
            if (j < 0)
                break; // wrapped around: box exhausted
        }
    }

    if (deltas.empty()) {
        out.cls = TileBandClass::FullyParallel;
    } else {
        out.cls = TileBandClass::Wavefront;
        out.deltas.assign(deltas.begin(), deltas.end());
    }
    return out;
}

} // namespace

std::vector<TileBandGraph>
tileGraph(const DependenceGraph &graph,
          const std::vector<TileBandDesc> &bands,
          const TileGraphOptions &options)
{
    pres::fm::PresCtx &pc = pres::fm::activeCtx();
    std::vector<TileBandGraph> out;
    out.reserve(bands.size());
    for (const auto &b : bands) {
        // Re-check between bands; bandDistances charges the fine-
        // grained Presburger work to the same context.
        pres::fm::checkBudget(pc, "deps::tileGraph");
        out.push_back(projectBand(graph, b, options));
    }
    return out;
}

} // namespace deps
} // namespace polyfuse
