#include "deps/dependences.hh"

#include "pres/affine.hh"
#include "support/logging.hh"

namespace polyfuse {
namespace deps {

using ir::PathElem;
using ir::Program;
using ir::Statement;
using pres::BasicMap;
using pres::BasicSet;
using pres::Constraint;
using pres::LinExpr;
using pres::Map;
using pres::Space;

namespace {

/**
 * Aligned loop pairs of two statement paths: positions where both
 * paths still run loops in lockstep. Also reports the sequence values
 * found immediately after the shared loops (or -1 if a path ends or
 * continues with loops).
 */
void
alignPaths(const Statement &a, const Statement &b,
           std::vector<std::pair<unsigned, unsigned>> &loops,
           int &seq_a, int &seq_b)
{
    const auto &pa = a.path();
    const auto &pb = b.path();
    size_t i = 0, j = 0;
    loops.clear();
    while (i < pa.size() && j < pb.size()) {
        // Skip matching sequence elements (same position: the pair
        // lives in the same subtree; continue into deeper loops).
        if (pa[i].kind == PathElem::Kind::Seq &&
            pb[j].kind == PathElem::Kind::Seq) {
            if (pa[i].value != pb[j].value)
                break;
            ++i;
            ++j;
            continue;
        }
        if (pa[i].kind != PathElem::Kind::Loop ||
            pb[j].kind != PathElem::Kind::Loop)
            break;
        loops.emplace_back(pa[i].value, pb[j].value);
        ++i;
        ++j;
    }
    seq_a = (i < pa.size() && pa[i].kind == PathElem::Kind::Seq)
                ? int(pa[i].value)
                : -1;
    seq_b = (j < pb.size() && pb[j].kind == PathElem::Kind::Seq)
                ? int(pb[j].value)
                : -1;
}

} // namespace

Map
beforeMap(const Program &program, int src, int dst)
{
    const Statement &a = program.statement(src);
    const Statement &b = program.statement(dst);
    Space sp = Space::forMap(a.name(), a.numDims(), b.name(),
                             b.numDims());

    Map out;
    if (a.group() != b.group()) {
        if (a.group() < b.group())
            out.addPiece(BasicMap(sp)); // every pair ordered
        return out;
    }

    std::vector<std::pair<unsigned, unsigned>> loops;
    int seq_a, seq_b;
    alignPaths(a, b, loops, seq_a, seq_b);

    // Carried at shared loop level k: equal above, strictly less at k.
    for (size_t k = 0; k < loops.size(); ++k) {
        BasicMap piece(sp);
        for (size_t l = 0; l < k; ++l)
            piece.addConstraint(
                eqCons(LinExpr::inDim(sp, loops[l].first),
                       LinExpr::outDim(sp, loops[l].second)));
        piece.addConstraint(
            ltCons(LinExpr::inDim(sp, loops[k].first),
                   LinExpr::outDim(sp, loops[k].second)));
        out.addPiece(std::move(piece));
    }

    // All shared loops equal: textual order decides.
    bool text_before;
    if (seq_a >= 0 && seq_b >= 0)
        text_before = seq_a < seq_b;
    else if (src != dst)
        text_before = src < dst; // declaration order fallback
    else
        text_before = false; // identical instance: not strictly before
    if (text_before) {
        BasicMap piece(sp);
        for (const auto &[da, db] : loops)
            piece.addConstraint(eqCons(LinExpr::inDim(sp, da),
                                       LinExpr::outDim(sp, db)));
        out.addPiece(std::move(piece));
    }
    return out;
}

DependenceGraph
DependenceGraph::compute(const Program &program)
{
    DependenceGraph g;
    g.prog_ = &program;

    int n = program.statements().size();
    for (int src = 0; src < n; ++src) {
        const Statement &a = program.statement(src);
        for (int dst = 0; dst < n; ++dst) {
            const Statement &b = program.statement(dst);
            Map before = beforeMap(program, src, dst);
            if (before.empty())
                continue;
            for (const auto &acc_a : a.accesses()) {
                for (const auto &acc_b : b.accesses()) {
                    if (!acc_a.isWrite && !acc_b.isWrite)
                        continue;
                    if (acc_a.tensor != acc_b.tensor)
                        continue;
                    // Shared-element pairs: a -> b via the tensor.
                    BasicMap cand =
                        acc_a.rel.intersectDomain(a.domain())
                            .compose(acc_b.rel
                                         .intersectDomain(b.domain())
                                         .reverse());
                    Map rel = Map(cand).intersect(before);
                    if (rel.isEmpty())
                        continue;
                    Dependence d;
                    d.src = src;
                    d.dst = dst;
                    d.tensor = acc_a.tensor;
                    d.kind = acc_a.isWrite
                                 ? (acc_b.isWrite ? DepKind::Output
                                                  : DepKind::Flow)
                                 : DepKind::Anti;
                    d.rel = std::move(rel);
                    g.deps_.push_back(std::move(d));
                }
            }
        }
    }
    return g;
}

std::vector<const Dependence *>
DependenceGraph::between(int src, int dst) const
{
    std::vector<const Dependence *> out;
    for (const auto &d : deps_)
        if (d.src == src && d.dst == dst)
            out.push_back(&d);
    return out;
}

std::vector<const Dependence *>
DependenceGraph::betweenGroups(int gsrc, int gdst) const
{
    std::vector<const Dependence *> out;
    for (const auto &d : deps_)
        if (prog_->statement(d.src).group() == gsrc &&
            prog_->statement(d.dst).group() == gdst)
            out.push_back(&d);
    return out;
}

bool
DependenceGraph::groupDependsOn(int gdst, int gsrc) const
{
    return !betweenGroups(gsrc, gdst).empty();
}

std::vector<const Dependence *>
DependenceGraph::flowOfTensor(int tensor) const
{
    std::vector<const Dependence *> out;
    for (const auto &d : deps_)
        if (d.kind == DepKind::Flow && d.tensor == tensor)
            out.push_back(&d);
    return out;
}

std::vector<DistanceRange>
DependenceGraph::bandDistances(const Dependence &dep,
                               const std::vector<unsigned> &src_dims,
                               const std::vector<unsigned> &dst_dims)
    const
{
    if (src_dims.size() != dst_dims.size())
        panic("bandDistances: band arity mismatch");
    unsigned nb = src_dims.size();
    const Statement &a = prog_->statement(dep.src);
    const Statement &b = prog_->statement(dep.dst);

    // Projection maps onto the band dims.
    auto proj = [&](const Statement &s,
                    const std::vector<unsigned> &dims) {
        std::vector<std::vector<int64_t>> rows;
        for (unsigned d : dims) {
            std::vector<int64_t> row(s.numDims() + 1, 0);
            row[d] = 1;
            rows.push_back(std::move(row));
        }
        return BasicMap::fromOutExprs(s.name(), s.numDims(), "band",
                                      rows, {});
    };
    BasicMap pa = proj(a, src_dims);
    BasicMap pb = proj(b, dst_dims);

    std::vector<DistanceRange> out(nb);
    bool first = true;
    for (const auto &piece : dep.rel.pieces()) {
        BasicMap band_rel =
            pa.reverse().compose(piece).compose(pb);
        BasicSet deltas = band_rel.deltas();
        for (const auto &[name, value] : prog_->paramValues())
            deltas = deltas.fixParam(name, value);
        if (deltas.isEmpty())
            continue;
        for (unsigned k = 0; k < nb; ++k) {
            int64_t lo, hi;
            bool bounded = true;
            try {
                if (!deltas.dimBounds(k, {}, lo, hi))
                    continue; // piece empty in this direction
            } catch (const FatalError &) {
                bounded = false;
                lo = hi = 0;
            }
            if (first) {
                out[k] = {lo, hi, bounded};
            } else if (!bounded || !out[k].bounded) {
                out[k].bounded = false;
            } else {
                out[k].min = std::min(out[k].min, lo);
                out[k].max = std::max(out[k].max, hi);
            }
        }
        first = false;
    }
    return out;
}

} // namespace deps
} // namespace polyfuse
