#include "workloads/pipelines.hh"

#include "support/logging.hh"

namespace polyfuse {
namespace workloads {

using namespace ir;

/*
 * Bilateral grid (PolyMage "bilateral_grid"), 7 stages.
 *
 * The PolyMage version scatters pixels into intensity bins; scatter
 * is modelled here as a per-bin gather reduction (same data space and
 * dependence structure, affine writes):
 *
 *   Ginit[cx,cy,z] = 0
 *   Gacc [cx,cy,z] += w(I[8cx+di, 8cy+dj], z) over the 8x8 cell
 *   Gn = Gacc / 64
 *   Bz, Bx, By: 1-3-1 blurs along z, cx, cy
 *   O[i,j] = By[i/8, j/8, bin(I[i,j])]   (data-dependent slice)
 *
 * Live-out: O. The slice's read is declared as the affine
 * over-approximation (whole bin column of the covering cell), which
 * is exactly how a polyhedral compiler must treat it.
 */
Program
makeBilateralGrid(const PipelineConfig &cfg)
{
    if (cfg.rows % 8 != 0 || cfg.cols % 8 != 0)
        fatal("bilateral grid expects multiples of 8");
    const int64_t NB = 8; // intensity bins

    ProgramBuilder b("bilateral_grid");
    b.param("R", cfg.rows)
        .param("C", cfg.cols)
        .param("GR", cfg.rows / 8)
        .param("GC", cfg.cols / 8)
        .param("NB", NB);

    b.tensor("I", {"R", "C"}, TensorKind::Input);
    b.tensor("G", {"GR", "GC", "NB"}, TensorKind::Temp);
    b.tensor("Gn", {"GR", "GC", "NB"}, TensorKind::Temp);
    b.tensor("Bz", {"GR", "GC", "NB"}, TensorKind::Temp);
    b.tensor("Bx", {"GR", "GC", "NB"}, TensorKind::Temp);
    b.tensor("By", {"GR", "GC", "NB"}, TensorKind::Temp);
    b.tensor("O", {"R", "C"}, TensorKind::Output);

    // Grid construction: init + accumulation in one nest.
    b.statement("Sgi")
        .domain("[GR, GC, NB] -> { Sgi[cx, cy, z] : 0 <= cx < GR and "
                "0 <= cy < GC and 0 <= z < NB }")
        .writes("G", "{ Sgi[cx, cy, z] -> G[cx, cy, z] }")
        .body(lit(0.0))
        .group(0)
        .path({L(0), L(1), L(2), S(0)});

    {
        // weight = max(0, 1 - |I*(NB-1) - z|); G += weight * I.
        ExprPtr v = loadAcc(1);
        ExprPtr z = iterVar(2);
        ExprPtr d = un(UnOp::Abs,
                       v * lit(double(NB - 1)) - z);
        ExprPtr w = bin(BinOp::Max, lit(0.0), lit(1.0) - d);
        b.statement("Sga")
            .domain("[GR, GC, NB] -> { Sga[cx, cy, z, di, dj] : "
                    "0 <= cx < GR and 0 <= cy < GC and 0 <= z < NB "
                    "and 0 <= di < 8 and 0 <= dj < 8 }")
            .reads("G", "{ Sga[cx, cy, z, di, dj] -> G[cx, cy, z] }")
            .reads("I", "{ Sga[cx, cy, z, di, dj] -> "
                        "I[8cx + di, 8cy + dj] }")
            .writes("G", "{ Sga[cx, cy, z, di, dj] -> G[cx, cy, z] }")
            .body(loadAcc(0) + w * v)
            .ops(6)
            .group(0)
            .path({L(0), L(1), L(2), S(1), L(3), L(4)});
    }

    b.statement("Sgn")
        .domain("[GR, GC, NB] -> { Sgn[cx, cy, z] : 0 <= cx < GR and "
                "0 <= cy < GC and 0 <= z < NB }")
        .reads("G", "{ Sgn[cx, cy, z] -> G[cx, cy, z] }")
        .writes("Gn", "{ Sgn[cx, cy, z] -> Gn[cx, cy, z] }")
        .body(loadAcc(0) * lit(1.0 / 64.0))
        .group(1);

    // 1-3-1 blur along z (interior bins).
    b.statement("Sbz")
        .domain("[GR, GC, NB] -> { Sbz[cx, cy, z] : 0 <= cx < GR and "
                "0 <= cy < GC and 1 <= z < NB - 1 }")
        .reads("Gn", "{ Sbz[cx, cy, z] -> Gn[cx, cy, z - 1] }")
        .reads("Gn", "{ Sbz[cx, cy, z] -> Gn[cx, cy, z] }")
        .reads("Gn", "{ Sbz[cx, cy, z] -> Gn[cx, cy, z + 1] }")
        .writes("Bz", "{ Sbz[cx, cy, z] -> Bz[cx, cy, z] }")
        .body((loadAcc(0) + loadAcc(1) * lit(3.0) + loadAcc(2)) *
              lit(0.2))
        .ops(4)
        .group(2);

    b.statement("Sbx")
        .domain("[GR, GC, NB] -> { Sbx[cx, cy, z] : 1 <= cx < GR - 1 "
                "and 0 <= cy < GC and 1 <= z < NB - 1 }")
        .reads("Bz", "{ Sbx[cx, cy, z] -> Bz[cx - 1, cy, z] }")
        .reads("Bz", "{ Sbx[cx, cy, z] -> Bz[cx, cy, z] }")
        .reads("Bz", "{ Sbx[cx, cy, z] -> Bz[cx + 1, cy, z] }")
        .writes("Bx", "{ Sbx[cx, cy, z] -> Bx[cx, cy, z] }")
        .body((loadAcc(0) + loadAcc(1) * lit(3.0) + loadAcc(2)) *
              lit(0.2))
        .ops(4)
        .group(3);

    b.statement("Sby")
        .domain("[GR, GC, NB] -> { Sby[cx, cy, z] : 1 <= cx < GR - 1 "
                "and 1 <= cy < GC - 1 and 1 <= z < NB - 1 }")
        .reads("Bx", "{ Sby[cx, cy, z] -> Bx[cx, cy - 1, z] }")
        .reads("Bx", "{ Sby[cx, cy, z] -> Bx[cx, cy, z] }")
        .reads("Bx", "{ Sby[cx, cy, z] -> Bx[cx, cy + 1, z] }")
        .writes("By", "{ Sby[cx, cy, z] -> By[cx, cy, z] }")
        .body((loadAcc(0) + loadAcc(1) * lit(3.0) + loadAcc(2)) *
              lit(0.2))
        .ops(4)
        .group(4);

    {
        // Slice: clamp the cell and bin into the blurred interior.
        ExprPtr v = loadAcc(0); // I[i, j]
        auto clamp = [](ExprPtr x, ExprPtr lo, ExprPtr hi) {
            return bin(BinOp::Min,
                       bin(BinOp::Max, std::move(x), std::move(lo)),
                       std::move(hi));
        };
        ExprPtr cx = clamp(un(UnOp::Floor, iterVar(0) * lit(0.125)),
                           lit(1.0), paramRef("GR") - lit(2.0));
        ExprPtr cy = clamp(un(UnOp::Floor, iterVar(1) * lit(0.125)),
                           lit(1.0), paramRef("GC") - lit(2.0));
        ExprPtr z = clamp(un(UnOp::Floor, v * lit(double(NB - 1))),
                          lit(1.0), paramRef("NB") - lit(2.0));
        b.statement("Ssl")
            .domain("[R, C] -> { Ssl[i, j] : 0 <= i < R and "
                    "0 <= j < C }")
            .reads("I", "{ Ssl[i, j] -> I[i, j] }")
            // The clamped cell may be one off the covering cell at
            // the borders; the declared (over-approximated) read
            // widens the window accordingly.
            .reads("By", "[GR, GC, NB] -> { Ssl[i, j] -> "
                         "By[a, bb, z] : 8a - 8 <= i < 8a + 16 and "
                         "8bb - 8 <= j < 8bb + 16 and 0 <= z < NB "
                         "and 1 <= a < GR - 1 and 1 <= bb < GC - 1 }")
            .writes("O", "{ Ssl[i, j] -> O[i, j] }")
            .body(loadIdx(5 /* By */, {cx, cy, z}))
            .ops(8)
            .group(5);
    }

    return b.build();
}

} // namespace workloads
} // namespace polyfuse
