#include "workloads/resnet50.hh"

namespace polyfuse {
namespace workloads {

using memsim::ConvLayer;

namespace {

ConvLayer
layer(int64_t batch, int64_t cin, int64_t cout, int64_t size,
      int64_t kernel, int64_t stride)
{
    ConvLayer l;
    l.batch = batch;
    l.cin = cin;
    l.cout = cout;
    l.height = size;
    l.width = size;
    l.kernel = kernel;
    l.stride = stride;
    return l;
}

/** One bottleneck block: 1x1 reduce, 3x3, 1x1 expand. */
void
bottleneck(std::vector<ConvLayer> &out, int64_t batch, int64_t cin,
           int64_t mid, int64_t cout, int64_t size, int64_t stride)
{
    out.push_back(layer(batch, cin, mid, size, 1, stride));
    out.push_back(layer(batch, mid, mid, size / stride, 3, 1));
    out.push_back(layer(batch, mid, cout, size / stride, 1, 1));
}

} // namespace

std::vector<ConvLayer>
resnet50Layers(int64_t batch)
{
    std::vector<ConvLayer> out;
    // conv1: 7x7/2 on 224x224x3.
    out.push_back(layer(batch, 3, 64, 224, 7, 2));

    // Stage 2: 3 blocks at 56, channels 64/64/256.
    out.push_back(layer(batch, 64, 256, 56, 1, 1)); // projection
    bottleneck(out, batch, 64, 64, 256, 56, 1);
    bottleneck(out, batch, 256, 64, 256, 56, 1);
    bottleneck(out, batch, 256, 64, 256, 56, 1);

    // Stage 3: 4 blocks at 28, channels 128/512.
    out.push_back(layer(batch, 256, 512, 56, 1, 2)); // projection
    bottleneck(out, batch, 256, 128, 512, 56, 2);
    bottleneck(out, batch, 512, 128, 512, 28, 1);
    bottleneck(out, batch, 512, 128, 512, 28, 1);
    bottleneck(out, batch, 512, 128, 512, 28, 1);

    // Stage 4: 6 blocks at 14, channels 256/1024.
    out.push_back(layer(batch, 512, 1024, 28, 1, 2)); // projection
    bottleneck(out, batch, 512, 256, 1024, 28, 2);
    for (int i = 0; i < 5; ++i)
        bottleneck(out, batch, 1024, 256, 1024, 14, 1);

    // Stage 5: 3 blocks at 7, channels 512/2048.
    out.push_back(layer(batch, 1024, 2048, 14, 1, 2)); // projection
    bottleneck(out, batch, 1024, 512, 2048, 14, 2);
    bottleneck(out, batch, 2048, 512, 2048, 7, 1);
    bottleneck(out, batch, 2048, 512, 2048, 7, 1);

    return out;
}

ir::Program
makeConvBnProgram(const memsim::ConvLayer &l)
{
    using namespace ir;
    ProgramBuilder b("conv_bn");
    b.param("CO", l.cout)
        .param("CI", l.cin)
        .param("OH", l.outH())
        .param("OW", l.outW())
        .param("KK", l.kernel);

    b.tensor("In", {"CI", "OH + KK - 1", "OW + KK - 1"},
             TensorKind::Input);
    b.tensor("Wt", {"CO", "CI", "KK", "KK"}, TensorKind::Input);
    b.tensor("Scale", {"CO"}, TensorKind::Input);
    b.tensor("Shift", {"CO"}, TensorKind::Input);
    b.tensor("Conv", {"CO", "OH", "OW"}, TensorKind::Temp);
    b.tensor("Out", {"CO", "OH", "OW"}, TensorKind::Output);

    b.statement("Sci")
        .domain("[CO, OH, OW] -> { Sci[co, h, w] : 0 <= co < CO and "
                "0 <= h < OH and 0 <= w < OW }")
        .writes("Conv", "{ Sci[co, h, w] -> Conv[co, h, w] }")
        .body(lit(0.0))
        .group(0)
        .path({L(0), L(1), L(2), S(0)});

    b.statement("Scr")
        .domain("[CO, CI, OH, OW, KK] -> { Scr[co, h, w, ci, kh, kw] "
                ": 0 <= co < CO and 0 <= h < OH and 0 <= w < OW and "
                "0 <= ci < CI and 0 <= kh < KK and 0 <= kw < KK }")
        .reads("Conv", "{ Scr[co, h, w, ci, kh, kw] -> "
                       "Conv[co, h, w] }")
        .reads("In", "{ Scr[co, h, w, ci, kh, kw] -> "
                     "In[ci, h + kh, w + kw] }")
        .reads("Wt", "{ Scr[co, h, w, ci, kh, kw] -> "
                     "Wt[co, ci, kh, kw] }")
        .writes("Conv", "{ Scr[co, h, w, ci, kh, kw] -> "
                        "Conv[co, h, w] }")
        .body(loadAcc(0) + loadAcc(1) * loadAcc(2))
        .ops(2)
        .group(0)
        .path({L(0), L(1), L(2), S(1), L(3), L(4), L(5)});

    b.statement("Sbn")
        .domain("[CO, OH, OW] -> { Sbn[co, h, w] : 0 <= co < CO and "
                "0 <= h < OH and 0 <= w < OW }")
        .reads("Conv", "{ Sbn[co, h, w] -> Conv[co, h, w] }")
        .reads("Scale", "{ Sbn[co, h, w] -> Scale[co] }")
        .reads("Shift", "{ Sbn[co, h, w] -> Shift[co] }")
        .writes("Out", "{ Sbn[co, h, w] -> Out[co, h, w] }")
        .body(un(UnOp::Relu,
                 loadAcc(0) * loadAcc(1) + loadAcc(2)))
        .ops(3)
        .group(1);

    return b.build();
}

} // namespace workloads
} // namespace polyfuse
