/**
 * @file
 * The six image-processing pipelines of the paper's Table I,
 * re-implemented as polyhedral programs with the same loop/
 * dependence structure as the PolyMage benchmarks they were taken
 * from (stencil chains, multi-rate pyramids, grid scatter/slice,
 * data-dependent gathers). Stage counts are parameterized and can
 * be smaller than the unrolled counts PolyMage reports; DESIGN.md
 * documents the simplifications.
 *
 * All pipelines read a single-channel image "I" of ROWS x COLS and
 * write one live-out tensor; every other tensor is an intermediate,
 * which is what gives the paper's composition something to fuse.
 */

#ifndef POLYFUSE_WORKLOADS_PIPELINES_HH
#define POLYFUSE_WORKLOADS_PIPELINES_HH

#include <cstdint>

#include "ir/program.hh"

namespace polyfuse {
namespace workloads {

/** Common image-pipeline configuration. */
struct PipelineConfig
{
    int64_t rows = 256;
    int64_t cols = 256;
};

/** Unsharp Mask: blury -> blurx -> sharpen -> mask (4 stages). */
ir::Program makeUnsharpMask(const PipelineConfig &cfg = {});

/** Harris corner detection: gradients, products, box sums,
 *  det/trace/response (11 stages). */
ir::Program makeHarris(const PipelineConfig &cfg = {});

/** Bilateral grid: construction (init+accumulate), normalization,
 *  3 blur passes, data-dependent slice (7 stages). */
ir::Program makeBilateralGrid(const PipelineConfig &cfg = {});

/** Camera pipeline: Bayer deinterleave, demosaic interpolation,
 *  color correction, tone mapping, sharpen, clamp (16 stages). */
ir::Program makeCameraPipeline(const PipelineConfig &cfg = {});

/** Multiscale interpolation: 4-level analysis/synthesis pyramid
 *  with stride-2 down/upsampling (~20 stages). */
ir::Program makeMultiscaleInterp(const PipelineConfig &cfg = {});

/** Local Laplacian filter: K remap copies, per-copy pyramids,
 *  data-dependent level selection (11 stages with K folded into a
 *  tensor dimension; the paper's 99 counts unrolled copies). */
ir::Program makeLocalLaplacian(const PipelineConfig &cfg = {});

} // namespace workloads
} // namespace polyfuse

#endif // POLYFUSE_WORKLOADS_PIPELINES_HH
