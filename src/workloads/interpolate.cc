#include "workloads/pipelines.hh"

#include "support/logging.hh"
#include "support/strutil.hh"

namespace polyfuse {
namespace workloads {

using namespace ir;

namespace {

/** Image-pyramid level names and parameter names. */
std::string
lv(const std::string &base, int level)
{
    return base + std::to_string(level);
}

} // namespace

/*
 * Multiscale interpolation (PolyMage "interpolate"): a 4-level
 * analysis/synthesis pyramid. Downsampling is a 2x2 average at
 * stride 2; upsampling is bilinear through four quadrant statements
 * per level (keeping every access affine, as PolyMage's unrolled
 * stages do); each synthesis level blends the upsampled signal with
 * the same-resolution analysis level. 24 statements in 12 nests.
 * Live-out: Out.
 */
Program
makeMultiscaleInterp(const PipelineConfig &cfg)
{
    if (cfg.rows % 16 != 0 || cfg.cols % 16 != 0)
        fatal("interpolate expects multiples of 16");

    ProgramBuilder b("interpolate");
    b.param("R", cfg.rows).param("C", cfg.cols);
    // Level sizes R/2^l as parameters (affine extents need them).
    for (int l = 1; l <= 4; ++l) {
        b.param("R" + std::to_string(l), cfg.rows >> l);
        b.param("C" + std::to_string(l), cfg.cols >> l);
    }

    b.tensor("I", {"R", "C"}, TensorKind::Input);
    for (int l = 1; l <= 4; ++l)
        b.tensor(lv("D", l),
                 {"R" + std::to_string(l), "C" + std::to_string(l)},
                 TensorKind::Temp);
    // Upsampled/combined planes, at the size of level l-1.
    for (int l = 1; l <= 4; ++l) {
        std::string rs = l == 1 ? "R" : "R" + std::to_string(l - 1);
        std::string cs = l == 1 ? "C" : "C" + std::to_string(l - 1);
        b.tensor(lv("U", l), {rs, cs}, TensorKind::Temp);
    }
    for (int l = 1; l <= 3; ++l)
        b.tensor(lv("Cm", l),
                 {"R" + std::to_string(l), "C" + std::to_string(l)},
                 TensorKind::Temp);
    b.tensor("Out", {"R", "C"}, TensorKind::Output);

    int g = 0;

    // Analysis: D1 from I, Dl from D(l-1).
    for (int l = 1; l <= 4; ++l) {
        std::string in = l == 1 ? "I" : lv("D", l - 1);
        std::string out = lv("D", l);
        std::string stmt = "Sd" + std::to_string(l);
        std::string rp = "R" + std::to_string(l);
        std::string cp = "C" + std::to_string(l);
        auto s = b.statement(stmt);
        s.domain("[" + rp + ", " + cp + "] -> { " + stmt +
                 "[i, j] : 0 <= i < " + rp + " and 0 <= j < " + cp +
                 " }");
        for (int di = 0; di < 2; ++di)
            for (int dj = 0; dj < 2; ++dj)
                s.reads(in, "{ " + stmt + "[i, j] -> " + in + "[2i + " +
                                std::to_string(di) + ", 2j + " +
                                std::to_string(dj) + "] }");
        s.writes(out, "{ " + stmt + "[i, j] -> " + out + "[i, j] }");
        s.body((loadAcc(0) + loadAcc(1) + loadAcc(2) + loadAcc(3)) *
               lit(0.25))
            .ops(4)
            .group(g++);
    }

    // Synthesis: level 4 upsamples D4; level l < 4 upsamples Cm(l).
    for (int l = 4; l >= 1; --l) {
        std::string src = l == 4 ? "D4" : lv("Cm", l);
        std::string up = lv("U", l);
        std::string rp = "R" + std::to_string(l);
        std::string cp = "C" + std::to_string(l);
        std::string sb = "Su" + std::to_string(l);

        // Four quadrant statements in one nest.
        auto quadrant = [&](const std::string &suffix,
                            const std::string &target,
                            std::vector<std::string> reads,
                            ExprPtr body, int pos) {
            std::string stmt = sb + suffix;
            auto s = b.statement(stmt);
            s.domain("[" + rp + ", " + cp + "] -> { " + stmt +
                     "[i, j] : 0 <= i < " + rp + " - 1 and 0 <= j < " +
                     cp + " - 1 }");
            for (const auto &r : reads)
                s.reads(src, "{ " + stmt + "[i, j] -> " + src + r +
                                 " }");
            s.writes(up, "{ " + stmt + "[i, j] -> " + up + target +
                             " }");
            s.body(std::move(body)).group(g).path(
                {L(0), L(1), S(unsigned(pos))});
        };
        quadrant("a", "[2i, 2j]", {"[i, j]"}, loadAcc(0), 0);
        quadrant("b", "[2i, 2j + 1]", {"[i, j]", "[i, j + 1]"},
                 (loadAcc(0) + loadAcc(1)) * lit(0.5), 1);
        quadrant("c", "[2i + 1, 2j]", {"[i, j]", "[i + 1, j]"},
                 (loadAcc(0) + loadAcc(1)) * lit(0.5), 2);
        quadrant("d", "[2i + 1, 2j + 1]",
                 {"[i, j]", "[i, j + 1]", "[i + 1, j]",
                  "[i + 1, j + 1]"},
                 (loadAcc(0) + loadAcc(1) + loadAcc(2) + loadAcc(3)) *
                     lit(0.25),
                 3);
        ++g;

        // Blend with the same-resolution analysis plane.
        std::string ref = l == 1 ? "I" : lv("D", l - 1);
        std::string out = l == 1 ? "Out" : lv("Cm", l - 1);
        std::string rs = l == 1 ? "R" : "R" + std::to_string(l - 1);
        std::string cs = l == 1 ? "C" : "C" + std::to_string(l - 1);
        std::string stmt = "Sc" + std::to_string(l);
        b.statement(stmt)
            .domain("[" + rs + ", " + cs + "] -> { " + stmt +
                    "[i, j] : 0 <= i < " + rs + " and 0 <= j < " + cs +
                    " }")
            .reads(ref,
                   "{ " + stmt + "[i, j] -> " + ref + "[i, j] }")
            .reads(up, "{ " + stmt + "[i, j] -> " + up + "[i, j] }")
            .writes(out,
                    "{ " + stmt + "[i, j] -> " + out + "[i, j] }")
            .body((loadAcc(0) + loadAcc(1)) * lit(0.5))
            .ops(2)
            .group(g++);
    }

    return b.build();
}

} // namespace workloads
} // namespace polyfuse
