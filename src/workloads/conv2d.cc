#include "workloads/conv2d.hh"

#include "support/strutil.hh"

namespace polyfuse {
namespace workloads {

using namespace ir;

Program
makeConv2D(const Conv2DConfig &cfg)
{
    ProgramBuilder b("conv2d");
    b.param("H", cfg.height)
        .param("W", cfg.width)
        .param("KH", cfg.kh)
        .param("KW", cfg.kw);

    int A = b.tensor("A", {"H", "W"}, TensorKind::Temp);
    int B = b.tensor("B", {"KH", "KW"}, TensorKind::Input);
    int C = b.tensor("C", {"H - KH + 1", "W - KW + 1"},
                     TensorKind::Output);
    (void)A;
    (void)B;
    (void)C;

    // S0: A[h][w] = Quant(A[h][w]) -- modelled as x * 0.5.
    b.statement("S0")
        .domain("[H, W] -> { S0[h, w] : 0 <= h < H and 0 <= w < W }")
        .reads("A", "{ S0[h, w] -> A[h, w] }")
        .writes("A", "{ S0[h, w] -> A[h, w] }")
        .body(bin(BinOp::Mul, loadAcc(0), lit(0.5)))
        .group(0);

    // S1: C[h][w] = 0.
    b.statement("S1")
        .domain("[H, W, KH, KW] -> { S1[h, w] : 0 <= h <= H - KH and "
                "0 <= w <= W - KW }")
        .writes("C", "{ S1[h, w] -> C[h, w] }")
        .body(lit(0.0))
        .group(1)
        .path({L(0), L(1), S(0)});

    // S2: C[h][w] += A[h+kh][w+kw] * B[kh][kw].
    b.statement("S2")
        .domain("[H, W, KH, KW] -> { S2[h, w, kh, kw] : "
                "0 <= h <= H - KH and 0 <= w <= W - KW and "
                "0 <= kh < KH and 0 <= kw < KW }")
        .reads("C", "{ S2[h, w, kh, kw] -> C[h, w] }")
        .reads("A", "{ S2[h, w, kh, kw] -> A[h + kh, w + kw] }")
        .reads("B", "{ S2[h, w, kh, kw] -> B[kh, kw] }")
        .writes("C", "{ S2[h, w, kh, kw] -> C[h, w] }")
        .body(bin(BinOp::Add, loadAcc(0),
                  bin(BinOp::Mul, loadAcc(1), loadAcc(2))))
        .ops(2.0)
        .group(1)
        .path({L(0), L(1), S(1), L(2), L(3)});

    // S3: C[h][w] = ReLU(C[h][w]).
    b.statement("S3")
        .domain("[H, W, KH, KW] -> { S3[h, w] : 0 <= h <= H - KH and "
                "0 <= w <= W - KW }")
        .reads("C", "{ S3[h, w] -> C[h, w] }")
        .writes("C", "{ S3[h, w] -> C[h, w] }")
        .body(un(UnOp::Relu, loadAcc(0)))
        .group(2);

    return b.build();
}

} // namespace workloads
} // namespace polyfuse
