#include "workloads/pipelines.hh"

namespace polyfuse {
namespace workloads {

using namespace ir;

/*
 * Unsharp Mask (PolyMage "unsharp_mask"), 4 stages:
 *   By[i,j]  = (I[i,j] + I[i+1,j] + I[i+2,j]) / 3
 *   Bx[i,j]  = (By[i,j] + By[i,j+1] + By[i,j+2]) / 3
 *   Sh[i,j]  = I[i+1,j+1] * (1 + w) - Bx[i,j] * w
 *   M[i,j]   = clamp(Sh[i,j], I[i+1,j+1] - thr, I[i+1,j+1] + thr)
 * Live-out: M.
 */
Program
makeUnsharpMask(const PipelineConfig &cfg)
{
    ProgramBuilder b("unsharp_mask");
    b.param("R", cfg.rows).param("C", cfg.cols);

    b.tensor("I", {"R", "C"}, TensorKind::Input);
    b.tensor("By", {"R - 2", "C"}, TensorKind::Temp);
    b.tensor("Bx", {"R - 2", "C - 2"}, TensorKind::Temp);
    b.tensor("Sh", {"R - 2", "C - 2"}, TensorKind::Temp);
    b.tensor("M", {"R - 2", "C - 2"}, TensorKind::Output);

    const double w = 3.0, thr = 0.05;

    b.statement("Sby")
        .domain("[R, C] -> { Sby[i, j] : 0 <= i < R - 2 and "
                "0 <= j < C }")
        .reads("I", "{ Sby[i, j] -> I[i, j] }")
        .reads("I", "{ Sby[i, j] -> I[i + 1, j] }")
        .reads("I", "{ Sby[i, j] -> I[i + 2, j] }")
        .writes("By", "{ Sby[i, j] -> By[i, j] }")
        .body((loadAcc(0) + loadAcc(1) + loadAcc(2)) *
              lit(1.0 / 3.0))
        .ops(3)
        .group(0);

    b.statement("Sbx")
        .domain("[R, C] -> { Sbx[i, j] : 0 <= i < R - 2 and "
                "0 <= j < C - 2 }")
        .reads("By", "{ Sbx[i, j] -> By[i, j] }")
        .reads("By", "{ Sbx[i, j] -> By[i, j + 1] }")
        .reads("By", "{ Sbx[i, j] -> By[i, j + 2] }")
        .writes("Bx", "{ Sbx[i, j] -> Bx[i, j] }")
        .body((loadAcc(0) + loadAcc(1) + loadAcc(2)) *
              lit(1.0 / 3.0))
        .ops(3)
        .group(1);

    b.statement("Ssh")
        .domain("[R, C] -> { Ssh[i, j] : 0 <= i < R - 2 and "
                "0 <= j < C - 2 }")
        .reads("I", "{ Ssh[i, j] -> I[i + 1, j + 1] }")
        .reads("Bx", "{ Ssh[i, j] -> Bx[i, j] }")
        .writes("Sh", "{ Ssh[i, j] -> Sh[i, j] }")
        .body(loadAcc(0) * lit(1.0 + w) - loadAcc(1) * lit(w))
        .ops(3)
        .group(2);

    b.statement("Sm")
        .domain("[R, C] -> { Sm[i, j] : 0 <= i < R - 2 and "
                "0 <= j < C - 2 }")
        .reads("Sh", "{ Sm[i, j] -> Sh[i, j] }")
        .reads("I", "{ Sm[i, j] -> I[i + 1, j + 1] }")
        .writes("M", "{ Sm[i, j] -> M[i, j] }")
        .body(bin(BinOp::Max,
                  bin(BinOp::Min, loadAcc(0), loadAcc(1) + lit(thr)),
                  loadAcc(1) - lit(thr)))
        .ops(4)
        .group(3);

    return b.build();
}

} // namespace workloads
} // namespace polyfuse
