#include "workloads/polybench.hh"

namespace polyfuse {
namespace workloads {

using namespace ir;

Program
make2mm(int64_t ni, int64_t nj, int64_t nk, int64_t nl)
{
    ProgramBuilder b("2mm");
    b.param("NI", ni).param("NJ", nj).param("NK", nk).param("NL", nl);

    b.tensor("A", {"NI", "NK"}, TensorKind::Input);
    b.tensor("B", {"NK", "NJ"}, TensorKind::Input);
    b.tensor("C", {"NJ", "NL"}, TensorKind::Input);
    b.tensor("Tmp", {"NI", "NJ"}, TensorKind::Temp);
    b.tensor("D", {"NI", "NL"}, TensorKind::Output);

    const double alpha = 1.5, beta = 1.2;

    b.statement("Sti")
        .domain("[NI, NJ] -> { Sti[i, j] : 0 <= i < NI and "
                "0 <= j < NJ }")
        .writes("Tmp", "{ Sti[i, j] -> Tmp[i, j] }")
        .body(lit(0.0))
        .group(0)
        .path({L(0), L(1), S(0)});

    b.statement("Str")
        .domain("[NI, NJ, NK] -> { Str[i, j, k] : 0 <= i < NI and "
                "0 <= j < NJ and 0 <= k < NK }")
        .reads("Tmp", "{ Str[i, j, k] -> Tmp[i, j] }")
        .reads("A", "{ Str[i, j, k] -> A[i, k] }")
        .reads("B", "{ Str[i, j, k] -> B[k, j] }")
        .writes("Tmp", "{ Str[i, j, k] -> Tmp[i, j] }")
        .body(loadAcc(0) + loadAcc(1) * loadAcc(2) * lit(alpha))
        .ops(3)
        .group(0)
        .path({L(0), L(1), S(1), L(2)});

    b.statement("Sdi")
        .domain("[NI, NL] -> { Sdi[i, l] : 0 <= i < NI and "
                "0 <= l < NL }")
        .reads("D", "{ Sdi[i, l] -> D[i, l] }")
        .writes("D", "{ Sdi[i, l] -> D[i, l] }")
        .body(loadAcc(0) * lit(beta))
        .group(1)
        .path({L(0), L(1), S(0)});

    b.statement("Sdr")
        .domain("[NI, NL, NJ] -> { Sdr[i, l, j] : 0 <= i < NI and "
                "0 <= l < NL and 0 <= j < NJ }")
        .reads("D", "{ Sdr[i, l, j] -> D[i, l] }")
        .reads("Tmp", "{ Sdr[i, l, j] -> Tmp[i, j] }")
        .reads("C", "{ Sdr[i, l, j] -> C[j, l] }")
        .writes("D", "{ Sdr[i, l, j] -> D[i, l] }")
        .body(loadAcc(0) + loadAcc(1) * loadAcc(2))
        .ops(2)
        .group(1)
        .path({L(0), L(1), S(1), L(2)});

    return b.build();
}

Program
makeGemver(int64_t n)
{
    ProgramBuilder b("gemver");
    b.param("N", n);

    b.tensor("A", {"N", "N"}, TensorKind::Input);
    for (const char *t : {"U1", "V1", "U2", "V2", "Y", "Z", "Xin"})
        b.tensor(t, {"N"}, TensorKind::Input);
    b.tensor("Ah", {"N", "N"}, TensorKind::Temp);
    b.tensor("X", {"N"}, TensorKind::Temp);
    b.tensor("X2", {"N"}, TensorKind::Temp);
    b.tensor("W", {"N"}, TensorKind::Output);

    const double alpha = 1.5, beta = 1.2;

    // A_hat = A + u1 v1^T + u2 v2^T.
    b.statement("Sah")
        .domain("[N] -> { Sah[i, j] : 0 <= i < N and 0 <= j < N }")
        .reads("A", "{ Sah[i, j] -> A[i, j] }")
        .reads("U1", "{ Sah[i, j] -> U1[i] }")
        .reads("V1", "{ Sah[i, j] -> V1[j] }")
        .reads("U2", "{ Sah[i, j] -> U2[i] }")
        .reads("V2", "{ Sah[i, j] -> V2[j] }")
        .writes("Ah", "{ Sah[i, j] -> Ah[i, j] }")
        .body(loadAcc(0) + loadAcc(1) * loadAcc(2) +
              loadAcc(3) * loadAcc(4))
        .ops(4)
        .group(0);

    // x = beta * A_hat^T y + x_in.
    b.statement("Sxi")
        .domain("[N] -> { Sxi[i] : 0 <= i < N }")
        .reads("Xin", "{ Sxi[i] -> Xin[i] }")
        .writes("X", "{ Sxi[i] -> X[i] }")
        .body(loadAcc(0))
        .group(1)
        .path({L(0), S(0)});
    b.statement("Sxr")
        .domain("[N] -> { Sxr[i, j] : 0 <= i < N and 0 <= j < N }")
        .reads("X", "{ Sxr[i, j] -> X[i] }")
        .reads("Ah", "{ Sxr[i, j] -> Ah[j, i] }")
        .reads("Y", "{ Sxr[i, j] -> Y[j] }")
        .writes("X", "{ Sxr[i, j] -> X[i] }")
        .body(loadAcc(0) + loadAcc(1) * loadAcc(2) * lit(beta))
        .ops(3)
        .group(1)
        .path({L(0), S(1), L(1)});

    // x2 = x + z.
    b.statement("Sx2")
        .domain("[N] -> { Sx2[i] : 0 <= i < N }")
        .reads("X", "{ Sx2[i] -> X[i] }")
        .reads("Z", "{ Sx2[i] -> Z[i] }")
        .writes("X2", "{ Sx2[i] -> X2[i] }")
        .body(loadAcc(0) + loadAcc(1))
        .group(2);

    // w = alpha * A_hat x2.
    b.statement("Swi")
        .domain("[N] -> { Swi[i] : 0 <= i < N }")
        .writes("W", "{ Swi[i] -> W[i] }")
        .body(lit(0.0))
        .group(3)
        .path({L(0), S(0)});
    b.statement("Swr")
        .domain("[N] -> { Swr[i, j] : 0 <= i < N and 0 <= j < N }")
        .reads("W", "{ Swr[i, j] -> W[i] }")
        .reads("Ah", "{ Swr[i, j] -> Ah[i, j] }")
        .reads("X2", "{ Swr[i, j] -> X2[j] }")
        .writes("W", "{ Swr[i, j] -> W[i] }")
        .body(loadAcc(0) + loadAcc(1) * loadAcc(2) * lit(alpha))
        .ops(3)
        .group(3)
        .path({L(0), S(1), L(1)});

    return b.build();
}

Program
makeCovariance(int64_t n, int64_t m)
{
    ProgramBuilder b("covariance");
    b.param("N", n).param("M", m);

    b.tensor("Data", {"N", "M"}, TensorKind::Input);
    b.tensor("Mean", {"M"}, TensorKind::Temp);
    b.tensor("Cd", {"N", "M"}, TensorKind::Temp);
    b.tensor("Cov", {"M", "M"}, TensorKind::Output);

    // Column means.
    b.statement("Smi")
        .domain("[M] -> { Smi[j] : 0 <= j < M }")
        .writes("Mean", "{ Smi[j] -> Mean[j] }")
        .body(lit(0.0))
        .group(0)
        .path({L(0), S(0)});
    b.statement("Smr")
        .domain("[N, M] -> { Smr[j, i] : 0 <= j < M and 0 <= i < N }")
        .reads("Mean", "{ Smr[j, i] -> Mean[j] }")
        .reads("Data", "{ Smr[j, i] -> Data[i, j] }")
        .writes("Mean", "{ Smr[j, i] -> Mean[j] }")
        .body(loadAcc(0) + loadAcc(1))
        .group(0)
        .path({L(0), S(1), L(1)});

    // Centered data (mean scaled by 1/N at use).
    b.statement("Scd")
        .domain("[N, M] -> { Scd[i, j] : 0 <= i < N and 0 <= j < M }")
        .reads("Data", "{ Scd[i, j] -> Data[i, j] }")
        .reads("Mean", "{ Scd[i, j] -> Mean[j] }")
        .writes("Cd", "{ Scd[i, j] -> Cd[i, j] }")
        .body(loadAcc(0) -
              loadAcc(1) * (lit(1.0) / paramRef("N")))
        .ops(2)
        .group(1);

    // Covariance (upper triangle).
    b.statement("Sci")
        .domain("[M] -> { Sci[j1, j2] : 0 <= j1 < M and "
                "j1 <= j2 < M }")
        .writes("Cov", "{ Sci[j1, j2] -> Cov[j1, j2] }")
        .body(lit(0.0))
        .group(2)
        .path({L(0), L(1), S(0)});
    b.statement("Scr")
        .domain("[N, M] -> { Scr[j1, j2, i] : 0 <= j1 < M and "
                "j1 <= j2 < M and 0 <= i < N }")
        .reads("Cov", "{ Scr[j1, j2, i] -> Cov[j1, j2] }")
        .reads("Cd", "{ Scr[j1, j2, i] -> Cd[i, j1] }")
        .reads("Cd", "{ Scr[j1, j2, i] -> Cd[i, j2] }")
        .writes("Cov", "{ Scr[j1, j2, i] -> Cov[j1, j2] }")
        .body(loadAcc(0) + loadAcc(1) * loadAcc(2))
        .ops(2)
        .group(2)
        .path({L(0), L(1), S(1), L(2)});

    return b.build();
}

Program
makeSeidel(int64_t n, int64_t m)
{
    ProgramBuilder b("seidel");
    b.param("N", n).param("M", m);

    b.tensor("A", {"N", "M"}, TensorKind::Output);

    // In-place sweep over the interior; north/west/north-west
    // neighbours are read after their own update (Gauss-Seidel), so
    // every read is a flow dependence with distance (1,0), (0,1) or
    // (1,1) -- uniform, lex-positive, tileable but not coincident.
    b.statement("Ss")
        .domain("[N, M] -> { Ss[i, j] : 1 <= i < N and "
                "1 <= j < M }")
        .reads("A", "{ Ss[i, j] -> A[i, j] }")
        .reads("A", "{ Ss[i, j] -> A[i - 1, j] }")
        .reads("A", "{ Ss[i, j] -> A[i, j - 1] }")
        .reads("A", "{ Ss[i, j] -> A[i - 1, j - 1] }")
        .writes("A", "{ Ss[i, j] -> A[i, j] }")
        .body((loadAcc(0) + loadAcc(1) + loadAcc(2) + loadAcc(3)) *
              lit(0.25))
        .ops(4)
        .group(0);

    return b.build();
}

} // namespace workloads
} // namespace polyfuse
