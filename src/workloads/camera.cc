#include "workloads/pipelines.hh"

#include "support/logging.hh"

namespace polyfuse {
namespace workloads {

using namespace ir;

namespace {

/** Pointwise stage over the half-resolution interior domain. */
StatementBuilder
halfResStage(ProgramBuilder &b, const std::string &stmt)
{
    auto s = b.statement(stmt);
    s.domain("[HR, HC] -> { " + stmt + "[i, j] : 0 <= i < HR - 1 "
             "and 0 <= j < HC - 1 }");
    return s;
}

} // namespace

/*
 * Camera pipeline (PolyMage "camera_pipeline"), 16 stages:
 * Bayer deinterleave (4), green average (1), red/blue demosaic
 * smoothing (2), 3x3 color-correction matrix (3), tone mapping (3),
 * luma (1), sharpen (1), final clamp (1). Channels are modelled as
 * separate half-resolution planes. Live-out: Out.
 */
Program
makeCameraPipeline(const PipelineConfig &cfg)
{
    if (cfg.rows % 2 != 0 || cfg.cols % 2 != 0)
        fatal("camera pipeline expects even image sizes");

    ProgramBuilder b("camera_pipeline");
    b.param("R", cfg.rows)
        .param("C", cfg.cols)
        .param("HR", cfg.rows / 2)
        .param("HC", cfg.cols / 2);

    b.tensor("I", {"R", "C"}, TensorKind::Input);
    for (const char *t : {"Rr", "G1", "G2", "Bb", "Ga"})
        b.tensor(t, {"HR", "HC"}, TensorKind::Temp);
    for (const char *t : {"Rs", "Bs", "Cr", "Cg", "Cb", "Tr", "Tg",
                          "Tb", "Y"})
        b.tensor(t, {"HR - 1", "HC - 1"}, TensorKind::Temp);
    b.tensor("Sp", {"HR - 3", "HC - 3"}, TensorKind::Temp);
    b.tensor("Out", {"HR - 3", "HC - 3"}, TensorKind::Output);

    int g = 0;

    // Bayer deinterleave (RGGB).
    const char *taps[4][2] = {{"Rr", "I[2i, 2j]"},
                              {"G1", "I[2i, 2j + 1]"},
                              {"G2", "I[2i + 1, 2j]"},
                              {"Bb", "I[2i + 1, 2j + 1]"}};
    for (auto &[tensor, access] : taps) {
        std::string stmt = std::string("Sd") + tensor;
        b.statement(stmt)
            .domain("[HR, HC] -> { " + stmt + "[i, j] : 0 <= i < HR "
                    "and 0 <= j < HC }")
            .reads("I", "{ " + stmt + "[i, j] -> " + access + " }")
            .writes(tensor,
                    "{ " + stmt + "[i, j] -> " + tensor + "[i, j] }")
            .body(loadAcc(0))
            .group(g++);
    }

    // Green average.
    b.statement("Sga")
        .domain("[HR, HC] -> { Sga[i, j] : 0 <= i < HR and "
                "0 <= j < HC }")
        .reads("G1", "{ Sga[i, j] -> G1[i, j] }")
        .reads("G2", "{ Sga[i, j] -> G2[i, j] }")
        .writes("Ga", "{ Sga[i, j] -> Ga[i, j] }")
        .body((loadAcc(0) + loadAcc(1)) * lit(0.5))
        .group(g++);

    // Red / blue demosaic smoothing (2x2 averages).
    const char *smooth[2][3] = {{"Rr", "Rs", "Ssr"},
                                {"Bb", "Bs", "Ssb"}};
    for (auto &[in, out, stmt] : smooth) {
        auto s = halfResStage(b, stmt);
        s.reads(in, std::string("{ ") + stmt + "[i, j] -> " + in +
                        "[i, j] }");
        s.reads(in, std::string("{ ") + stmt + "[i, j] -> " + in +
                        "[i, j + 1] }");
        s.reads(in, std::string("{ ") + stmt + "[i, j] -> " + in +
                        "[i + 1, j] }");
        s.reads(in, std::string("{ ") + stmt + "[i, j] -> " + in +
                        "[i + 1, j + 1] }");
        s.writes(out, std::string("{ ") + stmt + "[i, j] -> " + out +
                          "[i, j] }");
        s.body((loadAcc(0) + loadAcc(1) + loadAcc(2) + loadAcc(3)) *
               lit(0.25))
            .ops(4)
            .group(g++);
    }

    // 3x3 color correction matrix.
    const double ccm[3][3] = {{1.8, -0.6, -0.2},
                              {-0.3, 1.6, -0.3},
                              {-0.1, -0.5, 1.6}};
    const char *cc_out[3] = {"Cr", "Cg", "Cb"};
    for (int ch = 0; ch < 3; ++ch) {
        std::string stmt = std::string("Scc") + cc_out[ch];
        auto s = halfResStage(b, stmt);
        s.reads("Rs", "{ " + stmt + "[i, j] -> Rs[i, j] }");
        s.reads("Ga", "{ " + stmt + "[i, j] -> Ga[i, j] }");
        s.reads("Bs", "{ " + stmt + "[i, j] -> Bs[i, j] }");
        s.writes(cc_out[ch],
                 "{ " + stmt + "[i, j] -> " + cc_out[ch] + "[i, j] }");
        s.body(loadAcc(0) * lit(ccm[ch][0]) +
               loadAcc(1) * lit(ccm[ch][1]) +
               loadAcc(2) * lit(ccm[ch][2]))
            .ops(5)
            .group(g++);
    }

    // Tone mapping (gamma ~ sqrt).
    const char *tone_in[3] = {"Cr", "Cg", "Cb"};
    const char *tone_out[3] = {"Tr", "Tg", "Tb"};
    for (int ch = 0; ch < 3; ++ch) {
        std::string stmt = std::string("St") + tone_out[ch];
        auto s = halfResStage(b, stmt);
        s.reads(tone_in[ch], "{ " + stmt + "[i, j] -> " +
                                 tone_in[ch] + "[i, j] }");
        s.writes(tone_out[ch], "{ " + stmt + "[i, j] -> " +
                                   tone_out[ch] + "[i, j] }");
        s.body(un(UnOp::Sqrt, loadAcc(0))).ops(4).group(g++);
    }

    // Luma.
    {
        auto s = halfResStage(b, "Sy");
        s.reads("Tr", "{ Sy[i, j] -> Tr[i, j] }");
        s.reads("Tg", "{ Sy[i, j] -> Tg[i, j] }");
        s.reads("Tb", "{ Sy[i, j] -> Tb[i, j] }");
        s.writes("Y", "{ Sy[i, j] -> Y[i, j] }");
        s.body(loadAcc(0) * lit(0.299) + loadAcc(1) * lit(0.587) +
               loadAcc(2) * lit(0.114))
            .ops(5)
            .group(g++);
    }

    // Sharpen (5-point Laplacian boost).
    b.statement("Ssp")
        .domain("[HR, HC] -> { Ssp[i, j] : 0 <= i < HR - 3 and "
                "0 <= j < HC - 3 }")
        .reads("Y", "{ Ssp[i, j] -> Y[i + 1, j + 1] }")
        .reads("Y", "{ Ssp[i, j] -> Y[i, j + 1] }")
        .reads("Y", "{ Ssp[i, j] -> Y[i + 2, j + 1] }")
        .reads("Y", "{ Ssp[i, j] -> Y[i + 1, j] }")
        .reads("Y", "{ Ssp[i, j] -> Y[i + 1, j + 2] }")
        .writes("Sp", "{ Ssp[i, j] -> Sp[i, j] }")
        .body(loadAcc(0) * lit(2.0) -
              (loadAcc(1) + loadAcc(2) + loadAcc(3) + loadAcc(4)) *
                  lit(0.25))
        .ops(6)
        .group(g++);

    // Final clamp to [0, 1].
    b.statement("Sout")
        .domain("[HR, HC] -> { Sout[i, j] : 0 <= i < HR - 3 and "
                "0 <= j < HC - 3 }")
        .reads("Sp", "{ Sout[i, j] -> Sp[i, j] }")
        .writes("Out", "{ Sout[i, j] -> Out[i, j] }")
        .body(bin(BinOp::Min, bin(BinOp::Max, loadAcc(0), lit(0.0)),
                  lit(1.0)))
        .ops(2)
        .group(g++);

    return b.build();
}

} // namespace workloads
} // namespace polyfuse
