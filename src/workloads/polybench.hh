/**
 * @file
 * The PolyBench kernels of Table II: 2mm, gemver and covariance --
 * the three representative kernels where the paper's composition
 * finds fusion results different from smartfuse.
 */

#ifndef POLYFUSE_WORKLOADS_POLYBENCH_HH
#define POLYFUSE_WORKLOADS_POLYBENCH_HH

#include <cstdint>

#include "ir/program.hh"

namespace polyfuse {
namespace workloads {

/** 2mm: D = alpha*A*B*C + beta*D (two chained matrix products). */
ir::Program make2mm(int64_t ni = 128, int64_t nj = 128,
                    int64_t nk = 128, int64_t nl = 128);

/** gemver: A_hat = A + u1 v1^T + u2 v2^T; x = beta A_hat^T y + z;
 *  w = alpha A_hat x. */
ir::Program makeGemver(int64_t n = 256);

/** covariance of data samples (mean, centering, reduction). */
ir::Program makeCovariance(int64_t n = 128, int64_t m = 128);

/**
 * seidel: one in-place Gauss-Seidel sweep over the interior of an
 * n x m grid, each cell averaging itself with its already-updated
 * north/west/north-west neighbours. The uniform dependences
 * (1,0), (0,1), (1,1) make every rectangularly tiled schedule a
 * wavefront: the tile graph is a DAG, not fully parallel -- the
 * stress case for the graph execution strategy.
 */
ir::Program makeSeidel(int64_t n = 256, int64_t m = 256);

} // namespace workloads
} // namespace polyfuse

#endif // POLYFUSE_WORKLOADS_POLYBENCH_HH
