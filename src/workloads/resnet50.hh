/**
 * @file
 * The ResNet-50 forward convolution layer table (Table III) and a
 * conv+batchnorm program builder used for the compilation-time and
 * accelerator-model experiments.
 */

#ifndef POLYFUSE_WORKLOADS_RESNET50_HH
#define POLYFUSE_WORKLOADS_RESNET50_HH

#include <vector>

#include "ir/program.hh"
#include "memsim/davinci.hh"

namespace polyfuse {
namespace workloads {

/**
 * The 53 forward convolutions of ResNet-50 (conv1, the 16 bottleneck
 * blocks x 3, and the 4 projection shortcuts), each followed by a
 * batch normalization.
 */
std::vector<memsim::ConvLayer> resnet50Layers(int64_t batch = 1);

/**
 * A two-nest conv + batchnorm program for one layer (spatial dims
 * collapsed per output channel), used to time the scheduling passes.
 */
ir::Program makeConvBnProgram(const memsim::ConvLayer &layer);

} // namespace workloads
} // namespace polyfuse

#endif // POLYFUSE_WORKLOADS_RESNET50_HH
