#include "workloads/pipelines.hh"

namespace polyfuse {
namespace workloads {

using namespace ir;

namespace {

/** Add a 3x3 box-sum stage: Out[i,j] = sum In[i..i+2][j..j+2]. */
void
boxSum(ProgramBuilder &b, const std::string &stmt,
       const std::string &in, const std::string &out, int group)
{
    auto s = b.statement(stmt);
    s.domain("[R, C] -> { " + stmt + "[i, j] : 0 <= i < R - 4 and "
             "0 <= j < C - 4 }");
    ExprPtr acc;
    int k = 0;
    for (int di = 0; di < 3; ++di) {
        for (int dj = 0; dj < 3; ++dj) {
            s.reads(in, "{ " + stmt + "[i, j] -> " + in + "[i + " +
                            std::to_string(di) + ", j + " +
                            std::to_string(dj) + "] }");
            acc = acc ? acc + loadAcc(k) : loadAcc(k);
            ++k;
        }
    }
    s.writes(out, "{ " + stmt + "[i, j] -> " + out + "[i, j] }");
    s.body(std::move(acc)).ops(9).group(group);
}

/** Pointwise product stage: Out[i,j] = A[i,j] * B[i,j]. */
void
product(ProgramBuilder &b, const std::string &stmt,
        const std::string &a, const std::string &bten,
        const std::string &out, int group)
{
    b.statement(stmt)
        .domain("[R, C] -> { " + stmt + "[i, j] : 0 <= i < R - 2 "
                "and 0 <= j < C - 2 }")
        .reads(a, "{ " + stmt + "[i, j] -> " + a + "[i, j] }")
        .reads(bten, "{ " + stmt + "[i, j] -> " + bten + "[i, j] }")
        .writes(out, "{ " + stmt + "[i, j] -> " + out + "[i, j] }")
        .body(loadAcc(0) * loadAcc(1))
        .ops(1)
        .group(group);
}

} // namespace

/*
 * Harris corner detection (PolyMage "harris"), 11 stages:
 * Sobel gradients Ix/Iy, products Ixx/Iyy/Ixy, 3x3 sums
 * Sxx/Syy/Sxy, then det, trace and the response. Live-out: Resp.
 */
Program
makeHarris(const PipelineConfig &cfg)
{
    ProgramBuilder b("harris");
    b.param("R", cfg.rows).param("C", cfg.cols);

    b.tensor("I", {"R", "C"}, TensorKind::Input);
    for (const char *t : {"Ix", "Iy", "Ixx", "Iyy", "Ixy"})
        b.tensor(t, {"R - 2", "C - 2"}, TensorKind::Temp);
    for (const char *t : {"Sxx", "Syy", "Sxy", "Det", "Trc"})
        b.tensor(t, {"R - 4", "C - 4"}, TensorKind::Temp);
    b.tensor("Resp", {"R - 4", "C - 4"}, TensorKind::Output);

    // Sobel x gradient.
    {
        auto s = b.statement("Sgx");
        s.domain("[R, C] -> { Sgx[i, j] : 0 <= i < R - 2 and "
                 "0 <= j < C - 2 }");
        s.reads("I", "{ Sgx[i, j] -> I[i, j + 2] }");
        s.reads("I", "{ Sgx[i, j] -> I[i, j] }");
        s.reads("I", "{ Sgx[i, j] -> I[i + 1, j + 2] }");
        s.reads("I", "{ Sgx[i, j] -> I[i + 1, j] }");
        s.reads("I", "{ Sgx[i, j] -> I[i + 2, j + 2] }");
        s.reads("I", "{ Sgx[i, j] -> I[i + 2, j] }");
        s.writes("Ix", "{ Sgx[i, j] -> Ix[i, j] }");
        s.body((loadAcc(0) - loadAcc(1) +
                (loadAcc(2) - loadAcc(3)) * lit(2.0) + loadAcc(4) -
                loadAcc(5)) *
               lit(1.0 / 8.0))
            .ops(7)
            .group(0);
    }
    // Sobel y gradient.
    {
        auto s = b.statement("Sgy");
        s.domain("[R, C] -> { Sgy[i, j] : 0 <= i < R - 2 and "
                 "0 <= j < C - 2 }");
        s.reads("I", "{ Sgy[i, j] -> I[i + 2, j] }");
        s.reads("I", "{ Sgy[i, j] -> I[i, j] }");
        s.reads("I", "{ Sgy[i, j] -> I[i + 2, j + 1] }");
        s.reads("I", "{ Sgy[i, j] -> I[i, j + 1] }");
        s.reads("I", "{ Sgy[i, j] -> I[i + 2, j + 2] }");
        s.reads("I", "{ Sgy[i, j] -> I[i, j + 2] }");
        s.writes("Iy", "{ Sgy[i, j] -> Iy[i, j] }");
        s.body((loadAcc(0) - loadAcc(1) +
                (loadAcc(2) - loadAcc(3)) * lit(2.0) + loadAcc(4) -
                loadAcc(5)) *
               lit(1.0 / 8.0))
            .ops(7)
            .group(1);
    }

    product(b, "Sxx2", "Ix", "Ix", "Ixx", 2);
    product(b, "Syy2", "Iy", "Iy", "Iyy", 3);
    product(b, "Sxy2", "Ix", "Iy", "Ixy", 4);

    boxSum(b, "Sbxx", "Ixx", "Sxx", 5);
    boxSum(b, "Sbyy", "Iyy", "Syy", 6);
    boxSum(b, "Sbxy", "Ixy", "Sxy", 7);

    b.statement("Sdet")
        .domain("[R, C] -> { Sdet[i, j] : 0 <= i < R - 4 and "
                "0 <= j < C - 4 }")
        .reads("Sxx", "{ Sdet[i, j] -> Sxx[i, j] }")
        .reads("Syy", "{ Sdet[i, j] -> Syy[i, j] }")
        .reads("Sxy", "{ Sdet[i, j] -> Sxy[i, j] }")
        .writes("Det", "{ Sdet[i, j] -> Det[i, j] }")
        .body(loadAcc(0) * loadAcc(1) - loadAcc(2) * loadAcc(2))
        .ops(3)
        .group(8);

    b.statement("Strc")
        .domain("[R, C] -> { Strc[i, j] : 0 <= i < R - 4 and "
                "0 <= j < C - 4 }")
        .reads("Sxx", "{ Strc[i, j] -> Sxx[i, j] }")
        .reads("Syy", "{ Strc[i, j] -> Syy[i, j] }")
        .writes("Trc", "{ Strc[i, j] -> Trc[i, j] }")
        .body(loadAcc(0) + loadAcc(1))
        .ops(1)
        .group(9);

    b.statement("Sresp")
        .domain("[R, C] -> { Sresp[i, j] : 0 <= i < R - 4 and "
                "0 <= j < C - 4 }")
        .reads("Det", "{ Sresp[i, j] -> Det[i, j] }")
        .reads("Trc", "{ Sresp[i, j] -> Trc[i, j] }")
        .writes("Resp", "{ Sresp[i, j] -> Resp[i, j] }")
        .body(loadAcc(0) - loadAcc(1) * loadAcc(1) * lit(0.04))
        .ops(3)
        .group(10);

    return b.build();
}

} // namespace workloads
} // namespace polyfuse
