#include "workloads/pipelines.hh"

#include "support/logging.hh"

namespace polyfuse {
namespace workloads {

using namespace ir;

/*
 * Local Laplacian filter (PolyMage "local_laplacian"), modelled with
 * K = 4 remap copies and a 3-level pyramid (12 stages; the paper's 99
 * counts every unrolled copy/level):
 *
 *   G1, G2          gaussian pyramid of the input
 *   Rm[k,i,j]       K remapped copies (exp-based remap curve)
 *   Rm1, Rm2        gaussian pyramids of the copies
 *   Lp0, Lp1        per-copy laplacian levels (NN upsample diff)
 *   O0, O1          data-dependent copy selection driven by G0/G1
 *   Rc1             coarse reconstruction: up(G2) + O1
 *   Out             up(Rc1) + O0
 *
 * The per-pixel copy selection and the upsampled reads are declared
 * as affine over-approximations (the whole k column / the covering
 * 2x2 cell), matching how a polyhedral compiler must treat them.
 */
Program
makeLocalLaplacian(const PipelineConfig &cfg)
{
    if (cfg.rows % 4 != 0 || cfg.cols % 4 != 0)
        fatal("local laplacian expects multiples of 4");
    const int64_t K = 4;

    ProgramBuilder b("local_laplacian");
    b.param("R", cfg.rows)
        .param("C", cfg.cols)
        .param("R1", cfg.rows / 2)
        .param("C1", cfg.cols / 2)
        .param("R2", cfg.rows / 4)
        .param("C2", cfg.cols / 4)
        .param("K", K);

    b.tensor("I", {"R", "C"}, TensorKind::Input);          // 0
    b.tensor("G1", {"R1", "C1"}, TensorKind::Temp);        // 1
    b.tensor("G2", {"R2", "C2"}, TensorKind::Temp);        // 2
    b.tensor("Rm", {"K", "R", "C"}, TensorKind::Temp);     // 3
    b.tensor("Rm1", {"K", "R1", "C1"}, TensorKind::Temp);  // 4
    b.tensor("Rm2", {"K", "R2", "C2"}, TensorKind::Temp);  // 5
    b.tensor("Lp0", {"K", "R", "C"}, TensorKind::Temp);    // 6
    b.tensor("Lp1", {"K", "R1", "C1"}, TensorKind::Temp);  // 7
    b.tensor("O0", {"R", "C"}, TensorKind::Temp);          // 8
    b.tensor("O1", {"R1", "C1"}, TensorKind::Temp);        // 9
    b.tensor("Rc1", {"R1", "C1"}, TensorKind::Temp);       // 10
    b.tensor("Out", {"R", "C"}, TensorKind::Output);       // 11

    int g = 0;

    // Gaussian pyramid of the input (2x2 average).
    auto down = [&](const std::string &stmt, const std::string &in,
                    const std::string &out, const std::string &rp,
                    const std::string &cp, bool has_k) {
        auto s = b.statement(stmt);
        std::string dims = has_k ? "[k, i, j]" : "[i, j]";
        std::string cond = std::string("0 <= i < ") + rp +
                           " and 0 <= j < " + cp;
        if (has_k)
            cond = "0 <= k < K and " + cond;
        s.domain("[K, " + rp + ", " + cp + "] -> { " + stmt + dims +
                 " : " + cond + " }");
        for (int di = 0; di < 2; ++di)
            for (int dj = 0; dj < 2; ++dj) {
                std::string at = has_k ? "[k, 2i + " : "[2i + ";
                at += std::to_string(di) + ", 2j + " +
                      std::to_string(dj) + "]";
                s.reads(in, "{ " + stmt + dims + " -> " + in + at +
                                " }");
            }
        s.writes(out, "{ " + stmt + dims + " -> " + out + dims + " }");
        s.body((loadAcc(0) + loadAcc(1) + loadAcc(2) + loadAcc(3)) *
               lit(0.25))
            .ops(4)
            .group(g++);
    };

    down("Sg1", "I", "G1", "R1", "C1", false);
    down("Sg2", "G1", "G2", "R2", "C2", false);

    // Remap: K tone-adjusted copies.
    {
        ExprPtr v = loadAcc(0);
        ExprPtr level = iterVar(0) * lit(1.0 / double(K - 1));
        ExprPtr d = v - level;
        ExprPtr body =
            v + d * lit(0.8) *
                    un(UnOp::Exp, lit(0.0) - d * d * lit(4.0));
        b.statement("Srm")
            .domain("[K, R, C] -> { Srm[k, i, j] : 0 <= k < K and "
                    "0 <= i < R and 0 <= j < C }")
            .reads("I", "{ Srm[k, i, j] -> I[i, j] }")
            .writes("Rm", "{ Srm[k, i, j] -> Rm[k, i, j] }")
            .body(std::move(body))
            .ops(8)
            .group(g++);
    }

    down("Srm1", "Rm", "Rm1", "R1", "C1", true);
    down("Srm2", "Rm1", "Rm2", "R2", "C2", true);

    // Laplacian levels: fine minus nearest-neighbour upsample of the
    // next-coarser level.
    auto laplacian = [&](const std::string &stmt,
                         const std::string &fine,
                         const std::string &coarse, int coarse_id,
                         const std::string &out, const std::string &rp,
                         const std::string &cp) {
        auto s = b.statement(stmt);
        s.domain("[K, " + rp + ", " + cp + "] -> { " + stmt +
                 "[k, i, j] : 0 <= k < K and 0 <= i < " + rp +
                 " and 0 <= j < " + cp + " }");
        s.reads(fine, "{ " + stmt + "[k, i, j] -> " + fine +
                          "[k, i, j] }");
        s.reads(coarse, "{ " + stmt + "[k, i, j] -> " + coarse +
                            "[k, a, bb] : 2a <= i < 2a + 2 and "
                            "2bb <= j < 2bb + 2 }");
        s.writes(out, "{ " + stmt + "[k, i, j] -> " + out +
                          "[k, i, j] }");
        s.body(loadAcc(0) -
               loadIdx(coarse_id,
                       {iterVar(0),
                        un(UnOp::Floor, iterVar(1) * lit(0.5)),
                        un(UnOp::Floor, iterVar(2) * lit(0.5))}))
            .ops(4)
            .group(g++);
    };
    laplacian("Slp0", "Rm", "Rm1", 4, "Lp0", "R", "C");
    laplacian("Slp1", "Rm1", "Rm2", 5, "Lp1", "R1", "C1");

    // Copy selection driven by the gaussian of the input.
    auto select = [&](const std::string &stmt, const std::string &gsrc,
                      const std::string &lap, int lap_id,
                      const std::string &out, const std::string &rp,
                      const std::string &cp) {
        ExprPtr v = loadAcc(0);
        ExprPtr k = bin(BinOp::Min,
                        bin(BinOp::Max,
                            un(UnOp::Floor, v * lit(double(K - 1))),
                            lit(0.0)),
                        paramRef("K") - lit(1.0));
        b.statement(stmt)
            .domain("[K, " + rp + ", " + cp + "] -> { " + stmt +
                    "[i, j] : 0 <= i < " + rp + " and 0 <= j < " +
                    cp + " }")
            .reads(gsrc,
                   "{ " + stmt + "[i, j] -> " + gsrc + "[i, j] }")
            .reads(lap, "[K] -> { " + stmt + "[i, j] -> " + lap +
                            "[k, i, j] : 0 <= k < K }")
            .writes(out,
                    "{ " + stmt + "[i, j] -> " + out + "[i, j] }")
            .body(loadIdx(lap_id, {k, iterVar(0), iterVar(1)}))
            .ops(6)
            .group(g++);
    };
    select("Ssel0", "I", "Lp0", 6, "O0", "R", "C");
    select("Ssel1", "G1", "Lp1", 7, "O1", "R1", "C1");

    // Reconstruction.
    b.statement("Src1")
        .domain("[R1, C1] -> { Src1[i, j] : 0 <= i < R1 and "
                "0 <= j < C1 }")
        .reads("G2", "{ Src1[i, j] -> G2[a, bb] : 2a <= i < 2a + 2 "
                     "and 2bb <= j < 2bb + 2 }")
        .reads("O1", "{ Src1[i, j] -> O1[i, j] }")
        .writes("Rc1", "{ Src1[i, j] -> Rc1[i, j] }")
        .body(loadIdx(2, {un(UnOp::Floor, iterVar(0) * lit(0.5)),
                          un(UnOp::Floor, iterVar(1) * lit(0.5))}) +
              loadAcc(1))
        .ops(3)
        .group(g++);

    b.statement("Sout")
        .domain("[R, C] -> { Sout[i, j] : 0 <= i < R and "
                "0 <= j < C }")
        .reads("Rc1", "{ Sout[i, j] -> Rc1[a, bb] : 2a <= i < 2a + 2 "
                      "and 2bb <= j < 2bb + 2 }")
        .reads("O0", "{ Sout[i, j] -> O0[i, j] }")
        .writes("Out", "{ Sout[i, j] -> Out[i, j] }")
        .body(loadIdx(10, {un(UnOp::Floor, iterVar(0) * lit(0.5)),
                           un(UnOp::Floor, iterVar(1) * lit(0.5))}) +
              loadAcc(1))
        .ops(3)
        .group(g++);

    return b.build();
}

} // namespace workloads
} // namespace polyfuse
