#include "workloads/equake.hh"

#include <cmath>

namespace polyfuse {
namespace workloads {

using namespace ir;

/*
 * Structure (tensor ids in declaration order):
 *   K    (N, MAXR)  sparse matrix values            [0]
 *   COL  (N, MAXR)  column indices (as doubles)     [1]
 *   RL   (N)        row lengths                     [2]
 *   M    (N)        nodal mass                      [3]
 *   Vold (N)        previous displacement           [4]
 *   Acc  (N)        reduction accumulator (temp)    [5]
 *   Dsp  (N)        gathered update (temp)          [6]
 *   Vel  (N)        velocity update (temp)          [7]
 *   Out  (N)        new displacement (live-out)     [8]
 *
 * Groups: 0 = SpMV nest (init; dynamic-length reduction; gather),
 * 1..2 = follow-up element-wise nests, 3 = live-out update.
 */
Program
makeEquake(const EquakeConfig &cfg)
{
    ProgramBuilder b("equake");
    b.param("N", cfg.nodes).param("MAXR", cfg.maxRow);

    b.tensor("K", {"N", "MAXR"}, TensorKind::Input);
    b.tensor("COL", {"N", "MAXR"}, TensorKind::Input);
    b.tensor("RL", {"N"}, TensorKind::Input);
    b.tensor("M", {"N"}, TensorKind::Input);
    b.tensor("Vold", {"N"}, TensorKind::Input);
    b.tensor("Acc", {"N"}, TensorKind::Temp);
    b.tensor("Dsp", {"N"}, TensorKind::Temp);
    b.tensor("Vel", {"N"}, TensorKind::Temp);
    b.tensor("Out", {"N"}, TensorKind::Output);

    // SpMV component 1: initialize the reduction array.
    b.statement("Sinit")
        .domain("[N] -> { Sinit[i] : 0 <= i < N }")
        .writes("Acc", "{ Sinit[i] -> Acc[i] }")
        .body(lit(0.0))
        .group(0)
        .path({L(0), S(0)});

    // SpMV component 2: the while loop, over-approximated by MAXR
    // iterations with the dynamic bound folded in as a multiplier
    // (step(RL[i] - j) in {0, 1}).
    {
        ExprPtr active = bin(BinOp::Min, lit(1.0),
                             bin(BinOp::Max, lit(0.0),
                                 loadAcc(1) - iterVar(1)));
        ExprPtr contrib =
            loadAcc(2) * loadIdx(4 /* Vold */, {loadAcc(3)});
        b.statement("Sred")
            .domain("[N, MAXR] -> { Sred[i, j] : 0 <= i < N and "
                    "0 <= j < MAXR }")
            .reads("Acc", "{ Sred[i, j] -> Acc[i] }")
            .reads("RL", "{ Sred[i, j] -> RL[i] }")
            .reads("K", "{ Sred[i, j] -> K[i, j] }")
            .reads("COL", "{ Sred[i, j] -> COL[i, j] }")
            .reads("Vold",
                   "[N] -> { Sred[i, j] -> Vold[a] : 0 <= a < N }")
            .writes("Acc", "{ Sred[i, j] -> Acc[i] }")
            .body(loadAcc(0) + active * contrib)
            .ops(5)
            .group(0)
            .path({L(0), S(1), L(1)});
    }

    // SpMV component 3: gather into the mesh update.
    b.statement("Sgat")
        .domain("[N] -> { Sgat[i] : 0 <= i < N }")
        .reads("Acc", "{ Sgat[i] -> Acc[i] }")
        .reads("M", "{ Sgat[i] -> M[i] }")
        .writes("Dsp", "{ Sgat[i] -> Dsp[i] }")
        .body(loadAcc(0) / loadAcc(1))
        .ops(1)
        .group(0)
        .path({L(0), S(2)});

    // Follow-up element-wise nests.
    b.statement("Svel")
        .domain("[N] -> { Svel[i] : 0 <= i < N }")
        .reads("Dsp", "{ Svel[i] -> Dsp[i] }")
        .reads("Vold", "{ Svel[i] -> Vold[i] }")
        .writes("Vel", "{ Svel[i] -> Vel[i] }")
        .body(loadAcc(0) * lit(0.6) - loadAcc(1) * lit(0.4))
        .ops(3)
        .group(1);

    b.statement("Ssm")
        .domain("[N] -> { Ssm[i] : 1 <= i < N - 1 }")
        .reads("Vel", "{ Ssm[i] -> Vel[i - 1] }")
        .reads("Vel", "{ Ssm[i] -> Vel[i] }")
        .reads("Vel", "{ Ssm[i] -> Vel[i + 1] }")
        .writes("Dsp", "{ Ssm[i] -> Dsp[i] }")
        .body((loadAcc(0) + loadAcc(1) * lit(2.0) + loadAcc(2)) *
              lit(0.25))
        .ops(4)
        .group(2);

    b.statement("Sout")
        .domain("[N] -> { Sout[i] : 0 <= i < N }")
        .reads("Dsp", "{ Sout[i] -> Dsp[i] }")
        .reads("Vold", "{ Sout[i] -> Vold[i] }")
        .writes("Out", "{ Sout[i] -> Out[i] }")
        .body(loadAcc(1) + loadAcc(0) * lit(0.01))
        .ops(2)
        .group(3);

    return b.build();
}

void
initEquakeInputs(const ir::Program &program, exec::Buffers &buffers,
                 uint64_t seed)
{
    int64_t n = program.paramValue("N");
    int64_t maxr = program.paramValue("MAXR");

    auto &K = buffers.data(program.tensorId("K"));
    auto &COL = buffers.data(program.tensorId("COL"));
    auto &RL = buffers.data(program.tensorId("RL"));
    auto &M = buffers.data(program.tensorId("M"));
    auto &Vold = buffers.data(program.tensorId("Vold"));

    uint64_t x = seed * 2654435761u + 1;
    auto next = [&]() {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        return x;
    };
    for (int64_t i = 0; i < n; ++i) {
        int64_t len = 3 + next() % (maxr - 3);
        RL[i] = double(len);
        M[i] = 1.0 + double(next() % 100) / 100.0;
        Vold[i] = double(next() % 1000) / 1000.0;
        for (int64_t j = 0; j < maxr; ++j) {
            // Band-limited neighbourhood keeps the mesh realistic.
            int64_t col =
                (i + int64_t(next() % 64) - 32 + n) % n;
            COL[i * maxr + j] = double(col);
            K[i * maxr + j] =
                j < len ? std::sin(double(i * maxr + j)) : 0.0;
        }
    }
}

} // namespace workloads
} // namespace polyfuse
