/**
 * @file
 * The SPEC CPU2000 equake kernel (Sec. VI-A, Fig. 9): a 3D sparse
 * matrix-vector product over an unstructured mesh (initialization,
 * data-dependent-length reduction, gather) followed by a chain of
 * affine element-wise loop nests updating the displacement vectors.
 */

#ifndef POLYFUSE_WORKLOADS_EQUAKE_HH
#define POLYFUSE_WORKLOADS_EQUAKE_HH

#include <cstdint>

#include "exec/executor.hh"
#include "ir/program.hh"

namespace polyfuse {
namespace workloads {

/** equake problem sizes (the paper's x axis of Fig. 9). */
struct EquakeConfig
{
    int64_t nodes = 4096;   ///< mesh nodes (N)
    int64_t maxRow = 16;    ///< over-approximated row length (MAXR)

    static EquakeConfig test() { return {2048, 12}; }
    static EquakeConfig train() { return {8192, 16}; }
    static EquakeConfig ref() { return {16384, 24}; }
};

/**
 * Build the equake program. The while loop over a row's entries is
 * modelled the way the paper's preprocessing does (a dynamic counted
 * loop over-approximated by MAXR with a data-dependent guard folded
 * into the body); the column indirection uses an explicit indexed
 * load with a whole-vector affine over-approximation.
 */
ir::Program makeEquake(const EquakeConfig &cfg = {});

/** Fill the sparse structure (row lengths, columns, values). */
void initEquakeInputs(const ir::Program &program,
                      exec::Buffers &buffers, uint64_t seed);

} // namespace workloads
} // namespace polyfuse

#endif // POLYFUSE_WORKLOADS_EQUAKE_HH
