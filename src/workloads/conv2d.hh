/**
 * @file
 * The paper's running example (Fig. 1(a)): a 2D convolution with
 * quantization (S0), initialization (S1), reduction (S2) and ReLU
 * (S3), as three original loop nests: ({S0}, {S1, S2}, {S3}).
 */

#ifndef POLYFUSE_WORKLOADS_CONV2D_HH
#define POLYFUSE_WORKLOADS_CONV2D_HH

#include <cstdint>

#include "ir/program.hh"

namespace polyfuse {
namespace workloads {

/** Parameters of the Fig. 1(a) convolution. */
struct Conv2DConfig
{
    int64_t height = 64;  ///< H
    int64_t width = 64;   ///< W
    int64_t kh = 3;       ///< KH
    int64_t kw = 3;       ///< KW
};

/**
 * Build the Fig. 1(a) program. Tensor A is the intermediate
 * (quantized input), B the kernel, C the live-out output.
 */
ir::Program makeConv2D(const Conv2DConfig &cfg = {});

} // namespace workloads
} // namespace polyfuse

#endif // POLYFUSE_WORKLOADS_CONV2D_HH
