/**
 * @file
 * A DaVinci-architecture (Huawei Ascend 910) cost model substituting
 * for the paper's AI-accelerator runs (Sec. V-A, Fig. 7, Table III).
 *
 * The model prices exactly the effect the paper measures: an
 * unfused conv -> batchnorm pair round-trips the convolution output
 * through global memory (GM), while the post-tiling-fused pair keeps
 * it in the Unified Buffer. Per layer,
 *     t = max(cube time, GM DMA time) (+ vector pass when unfused).
 */

#ifndef POLYFUSE_MEMSIM_DAVINCI_HH
#define POLYFUSE_MEMSIM_DAVINCI_HH

#include <cstdint>

namespace polyfuse {
namespace memsim {

/** Ascend-910-class machine description (fp16 data paths). */
struct DaVinciConfig
{
    double cubeTflops = 256.0;  ///< Cube Unit peak (fp16 MACs)
    double vectorGops = 2000.0; ///< Vector Unit throughput
    double gmGBs = 170.0;       ///< off-chip (GM) bandwidth
    double ubGBs = 4000.0;      ///< Unified Buffer bandwidth
    int64_t l1KiB = 1024;       ///< L1 Buffer capacity
    int64_t ubKiB = 256;        ///< Unified Buffer capacity
    double perPassUs = 12.0;    ///< fixed per-operator launch cost
    int elemBytes = 2;          ///< fp16
};

/** One forward convolution layer followed by a batch norm. */
struct ConvLayer
{
    int64_t batch = 1;
    int64_t cin = 0;
    int64_t cout = 0;
    int64_t height = 0; ///< input spatial size
    int64_t width = 0;
    int64_t kernel = 1;
    int64_t stride = 1;

    int64_t outH() const { return (height - kernel) / stride + 1; }
    int64_t outW() const { return (width - kernel) / stride + 1; }
    double flops() const;        ///< conv MAC count x2
    double inBytes(int elem_bytes) const;
    double outBytes(int elem_bytes) const;
    double weightBytes(int elem_bytes) const;
};

/** Modeled time of one conv+bn pair. */
struct LayerEstimate
{
    double convMs = 0;
    double bnMs = 0;
    double totalMs = 0;
    double gmBytes = 0;
};

/**
 * Estimate one conv+batchnorm layer. @p fused selects the paper's
 * post-tiling fusion (conv output consumed from the Unified Buffer)
 * versus separated computation spaces (GM round trip).
 */
LayerEstimate estimateConvBn(const ConvLayer &layer, bool fused,
                             const DaVinciConfig &config = {});

} // namespace memsim
} // namespace polyfuse

#endif // POLYFUSE_MEMSIM_DAVINCI_HH
