#include "memsim/davinci.hh"

#include <algorithm>

namespace polyfuse {
namespace memsim {

double
ConvLayer::flops() const
{
    return 2.0 * batch * cout * outH() * outW() * cin * kernel *
           kernel;
}

double
ConvLayer::inBytes(int elem_bytes) const
{
    return double(batch) * cin * height * width * elem_bytes;
}

double
ConvLayer::outBytes(int elem_bytes) const
{
    return double(batch) * cout * outH() * outW() * elem_bytes;
}

double
ConvLayer::weightBytes(int elem_bytes) const
{
    return double(cout) * cin * kernel * kernel * elem_bytes;
}

LayerEstimate
estimateConvBn(const ConvLayer &layer, bool fused,
               const DaVinciConfig &config)
{
    LayerEstimate est;
    double in = layer.inBytes(config.elemBytes);
    double out = layer.outBytes(config.elemBytes);
    double wts = layer.weightBytes(config.elemBytes);

    double cube_ms = layer.flops() / (config.cubeTflops * 1e9);
    // BN applies scale/shift per element on the Vector Unit.
    double bn_vec_ms =
        (out / config.elemBytes) * 4.0 / (config.vectorGops * 1e6);

    if (fused) {
        // conv reads input+weights from GM; its output flows through
        // L0C/UB straight into the BN, which writes the final result
        // to GM: one pass, one output transfer.
        est.gmBytes = in + wts + out;
        double dma_ms = est.gmBytes / (config.gmGBs * 1e6);
        double ub_ms = (2.0 * out) / (config.ubGBs * 1e6);
        est.convMs = std::max({cube_ms + bn_vec_ms, dma_ms, ub_ms}) +
                     config.perPassUs / 1000.0;
        est.bnMs = 0;
        est.totalMs = est.convMs;
    } else {
        // conv pass: input + weights in, conv output to GM.
        double conv_gm = in + wts + out;
        est.convMs = std::max(cube_ms, conv_gm / (config.gmGBs * 1e6)) +
                     config.perPassUs / 1000.0;
        // bn pass: read conv output from GM, write result to GM.
        double bn_gm = 2.0 * out;
        est.bnMs = std::max(bn_vec_ms, bn_gm / (config.gmGBs * 1e6)) +
                   config.perPassUs / 1000.0;
        est.gmBytes = conv_gm + bn_gm;
        est.totalMs = est.convMs + est.bnMs;
    }
    return est;
}

} // namespace memsim
} // namespace polyfuse
