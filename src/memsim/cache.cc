#include "memsim/cache.hh"

#include <algorithm>

#include "support/logging.hh"

namespace polyfuse {
namespace memsim {

CacheLevel::CacheLevel(const CacheConfig &config)
    : config_(config)
{
    if (config_.sizeBytes <= 0 || config_.lineBytes <= 0 ||
        config_.ways <= 0)
        fatal("invalid cache configuration");
    if (config_.sizeBytes % config_.lineBytes != 0)
        fatal("cache size not divisible by line size");
    int64_t lines = config_.sizeBytes / config_.lineBytes;
    if (lines % config_.ways != 0)
        fatal("cache size not divisible by ways");
    numSets_ = lines / config_.ways;
    sets_.assign(numSets_, {});
}

bool
CacheLevel::access(uint64_t line_addr)
{
    auto &set = sets_[line_addr % numSets_];
    auto it = std::find(set.begin(), set.end(), line_addr);
    if (it != set.end()) {
        // Move to MRU position.
        set.erase(it);
        set.insert(set.begin(), line_addr);
        ++hits_;
        return true;
    }
    ++misses_;
    set.insert(set.begin(), line_addr);
    if (set.size() > size_t(config_.ways))
        set.pop_back();
    return false;
}

void
CacheLevel::reset()
{
    for (auto &set : sets_)
        set.clear();
    hits_ = misses_ = 0;
}

MemoryHierarchy::MemoryHierarchy(const CacheConfig &l1,
                                 const CacheConfig &l2)
    : l1_(l1), l2_(l2)
{
}

MemoryHierarchy
MemoryHierarchy::typicalCpu()
{
    CacheConfig l1{32 * 1024, 64, 8, "L1"};
    CacheConfig l2{1024 * 1024, 64, 16, "L2"};
    return MemoryHierarchy(l1, l2);
}

void
MemoryHierarchy::addSpace(int space, int64_t elements)
{
    if (bases_.size() <= size_t(space))
        bases_.resize(space + 1, 0);
    bases_[space] = nextBase_;
    // Page-align the next space.
    uint64_t bytes = uint64_t(elements) * 8;
    nextBase_ += (bytes + 4095) / 4096 * 4096 + 4096;
}

void
MemoryHierarchy::access(int space, int64_t offset, bool is_write)
{
    (void)is_write;
    if (size_t(space) >= bases_.size() || bases_[space] == 0)
        fatal("access to undeclared space " + std::to_string(space));
    uint64_t addr = bases_[space] + uint64_t(offset) * 8;
    uint64_t line = addr / l1_.config().lineBytes;
    ++stats_.accesses;
    if (l1_.access(line)) {
        ++stats_.l1Hits;
        return;
    }
    ++stats_.l1Misses;
    uint64_t l2line = addr / l2_.config().lineBytes;
    if (l2_.access(l2line)) {
        ++stats_.l2Hits;
        return;
    }
    ++stats_.l2Misses;
    stats_.dramBytes += l2_.config().lineBytes;
}

double
MemoryHierarchy::estimatedCycles(double l1_lat, double l2_lat,
                                 double dram_lat) const
{
    return double(stats_.l1Hits) * l1_lat +
           double(stats_.l2Hits) * l2_lat +
           double(stats_.l2Misses) * dram_lat;
}

} // namespace memsim
} // namespace polyfuse
