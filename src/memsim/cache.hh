/**
 * @file
 * A set-associative LRU cache hierarchy driven by the executor's
 * memory trace. This is the library's deterministic substitute for
 * hardware performance counters: strategy-relative locality effects
 * (the paper's subject) appear as miss-count and DRAM-traffic
 * differences.
 */

#ifndef POLYFUSE_MEMSIM_CACHE_HH
#define POLYFUSE_MEMSIM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exec/trace.hh"

namespace polyfuse {
namespace memsim {

/** Geometry of one cache level. */
struct CacheConfig
{
    int64_t sizeBytes = 32 * 1024;
    int lineBytes = 64;
    int ways = 8;
    std::string name = "L1";
};

/** One set-associative LRU cache level. */
class CacheLevel
{
  public:
    explicit CacheLevel(const CacheConfig &config);

    /** Access one line address; @return true on hit. */
    bool access(uint64_t line_addr);

    const CacheConfig &config() const { return config_; }
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

    void reset();

  private:
    CacheConfig config_;
    unsigned numSets_;
    /** Per set: tags in LRU order (front = most recent). */
    std::vector<std::vector<uint64_t>> sets_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/** Counters of a full hierarchy run. */
struct CacheStats
{
    uint64_t accesses = 0;
    uint64_t l1Hits = 0;
    uint64_t l1Misses = 0;
    uint64_t l2Hits = 0;
    uint64_t l2Misses = 0;
    /** Bytes transferred from DRAM (L2 miss lines). */
    uint64_t dramBytes = 0;

    double
    l1MissRate() const
    {
        return accesses ? double(l1Misses) / double(accesses) : 0.0;
    }
};

/**
 * A two-level hierarchy fed by (space, element offset) accesses. Each
 * space (tensor or scratchpad) is laid out at a page-aligned base so
 * distinct tensors never share lines.
 */
class MemoryHierarchy
{
  public:
    MemoryHierarchy(const CacheConfig &l1, const CacheConfig &l2);

    /** A laptop-class default: 32 KiB L1, 1 MiB L2. */
    static MemoryHierarchy typicalCpu();

    /** Declare a space and its size in elements (8-byte doubles). */
    void addSpace(int space, int64_t elements);

    /** Record one access. */
    void access(int space, int64_t offset, bool is_write);

    const CacheStats &stats() const { return stats_; }

    /** Cycle estimate from per-level hit latencies. */
    double estimatedCycles(double l1_lat = 4, double l2_lat = 14,
                           double dram_lat = 120) const;

  private:
    CacheLevel l1_;
    CacheLevel l2_;
    std::vector<uint64_t> bases_;
    uint64_t nextBase_ = 1 << 20;
    CacheStats stats_;
};

/**
 * Batched trace consumer feeding a MemoryHierarchy: the bytecode
 * tier hands it kTraceBatch records per virtual call instead of one
 * std::function invocation per scalar access.
 */
class HierarchySink final : public exec::TraceSink
{
  public:
    explicit HierarchySink(MemoryHierarchy &mem) : mem_(mem) {}

    void
    onRecords(const exec::TraceRecord *records, size_t n) override
    {
        for (size_t i = 0; i < n; ++i)
            mem_.access(records[i].space, records[i].offset,
                        records[i].isWrite != 0);
    }

  private:
    MemoryHierarchy &mem_;
};

} // namespace memsim
} // namespace polyfuse

#endif // POLYFUSE_MEMSIM_CACHE_HH
