#include "memsim/gpu.hh"

#include <algorithm>
#include <functional>

#include "support/intmath.hh"
#include "support/logging.hh"

namespace polyfuse {
namespace memsim {

using codegen::AstKind;
using codegen::AstPtr;
using codegen::BoundAlt;
using codegen::BoundTerm;

namespace {

/** Evaluate a bound term with every loop variable set to zero. */
int64_t
evalClosedTerm(const ir::Program &p, const BoundTerm &t, bool is_lower)
{
    int64_t acc = t.constant;
    for (size_t q = 0; q < t.paramCoeffs.size(); ++q)
        if (t.paramCoeffs[q] != 0)
            acc += t.paramCoeffs[q] * p.paramValue(p.params()[q]);
    // Outer-variable coefficients are zero for top-level loops; for
    // safety treat them as zero-valued (conservative trip count).
    if (t.div == 1)
        return acc;
    return is_lower ? ceilDiv(acc, t.div) : floorDiv(acc, t.div);
}

int64_t
evalClosedBound(const ir::Program &p, const std::vector<BoundAlt> &alts,
                bool is_lower)
{
    int64_t best = 0;
    bool first = true;
    for (const auto &alt : alts) {
        int64_t inner = 0;
        bool ifirst = true;
        for (const auto &t : alt) {
            int64_t v = evalClosedTerm(p, t, is_lower);
            inner = ifirst ? v
                           : (is_lower ? std::max(inner, v)
                                       : std::min(inner, v));
            ifirst = false;
        }
        best = first ? inner
                     : (is_lower ? std::min(best, inner)
                                 : std::max(best, inner));
        first = false;
    }
    return best;
}

/** Grid size (product of up to two outer parallel loops). */
int64_t
gridOf(const ir::Program &p, const AstPtr &n, unsigned depth_left)
{
    if (!n || depth_left == 0)
        return 1;
    if (n->kind == AstKind::For) {
        if (!n->parallel)
            return 1;
        int64_t lo = evalClosedBound(p, n->lb, true);
        int64_t hi = evalClosedBound(p, n->ub, false);
        int64_t trips = std::max<int64_t>(hi - lo + 1, 1);
        int64_t inner = 1;
        // A degenerate (single-trip) loop does not consume a grid
        // dimension: the mapper skips it (as PPCG's does).
        unsigned left = trips > 1 ? depth_left - 1 : depth_left;
        for (const auto &c : n->children)
            inner = std::max(inner, gridOf(p, c, left));
        return trips * inner;
    }
    int64_t best = 1;
    for (const auto &c : n->children)
        best = std::max(best, gridOf(p, c, depth_left));
    return best;
}

/** One entry per kernel: top-level loop nests. */
void
collectKernels(const AstPtr &n, std::vector<AstPtr> &out)
{
    if (!n)
        return;
    if (n->kind == AstKind::For) {
        out.push_back(n);
        return;
    }
    for (const auto &c : n->children)
        collectKernels(c, out);
}

} // namespace

GpuEstimate
estimateGpu(const ir::Program &program, const AstPtr &ast,
            const exec::ExecStats &stats, const GpuTraceCounts &counts,
            const GpuConfig &config)
{
    GpuEstimate est;
    std::vector<AstPtr> kernels;
    collectKernels(ast, kernels);
    est.kernels = kernels.size();

    est.globalBytes = double(counts.globalAccesses) * 8.0;
    est.sharedBytes = double(counts.sharedAccesses) * 8.0;

    // Occupancy: the weakest kernel bounds the whole run (a
    // simplification; kernels are serialized anyway).
    est.occupancy = 1.0;
    for (const auto &k : kernels) {
        int64_t grid = gridOf(program, k, 2);
        double occ =
            grid <= 1
                ? config.serialEfficiency
                : std::min(1.0, double(grid) /
                                    config.blocksForFullOccupancy);
        est.occupancy = std::min(est.occupancy, occ);
    }
    if (kernels.empty())
        est.occupancy = config.serialEfficiency;

    double compute_ms =
        stats.flops / (config.peakGflops * est.occupancy * 1e6);
    // A serialized grid cannot saturate the memory bus either: scale
    // the effective bandwidth with the fraction of SMs kept busy.
    double bw_factor = std::min(
        1.0, std::max(est.occupancy * config.blocksForFullOccupancy /
                          config.numSms,
                      1.0 / config.numSms));
    double dram_ms =
        est.globalBytes / (config.dramGBs * bw_factor * 1e6);
    double shared_ms = est.sharedBytes / (config.sharedGBs * 1e6);
    est.ms = std::max({compute_ms, dram_ms, shared_ms}) +
             est.kernels * config.kernelLaunchUs / 1000.0;
    return est;
}

} // namespace memsim
} // namespace polyfuse
