/**
 * @file
 * A structural GPU performance model substituting for the paper's
 * Quadro P6000 runs (Fig. 10). It consumes exactly the properties
 * the paper's comparison varies: how much traffic stays in shared
 * memory (promoted scratchpads) versus DRAM, how much parallelism
 * the schedule exposes to the grid, and how many kernels are
 * launched.
 */

#ifndef POLYFUSE_MEMSIM_GPU_HH
#define POLYFUSE_MEMSIM_GPU_HH

#include <cstdint>

#include "codegen/ast.hh"
#include "exec/executor.hh"
#include "ir/program.hh"

namespace polyfuse {
namespace memsim {

/** P6000-class machine description. */
struct GpuConfig
{
    double peakGflops = 12000.0;  ///< fp32 peak
    double dramGBs = 432.0;       ///< global memory bandwidth
    double sharedGBs = 8000.0;    ///< aggregate shared-mem bandwidth
    unsigned numSms = 30;
    unsigned blocksForFullOccupancy = 60;
    double kernelLaunchUs = 5.0;
    /** Throughput floor when a kernel exposes no parallelism. */
    double serialEfficiency = 1.0 / 240.0;
};

/** Model output. */
struct GpuEstimate
{
    double ms = 0;           ///< modeled execution time
    double globalBytes = 0;  ///< DRAM traffic
    double sharedBytes = 0;  ///< shared-memory traffic
    double occupancy = 0;    ///< min over kernels
    unsigned kernels = 0;
};

/** Per-run inputs gathered from an executor trace. */
struct GpuTraceCounts
{
    uint64_t globalAccesses = 0; ///< accesses to tensor spaces
    uint64_t sharedAccesses = 0; ///< accesses to scratchpad spaces
};

/**
 * Estimate GPU execution time of @p ast. Parallelism is read off the
 * AST (outer parallel loops become the grid; their trip counts are
 * evaluated from the program parameters), traffic and flops come
 * from the executor run.
 */
GpuEstimate estimateGpu(const ir::Program &program,
                        const codegen::AstPtr &ast,
                        const exec::ExecStats &stats,
                        const GpuTraceCounts &counts,
                        const GpuConfig &config = {});

} // namespace memsim
} // namespace polyfuse

#endif // POLYFUSE_MEMSIM_GPU_HH
