/**
 * @file
 * Structural fingerprinting of whole programs: mixes every byte of a
 * Program that can influence compilation -- parameters and their
 * values, tensors, statement domains, access relations, body
 * expression trees, grouping and structural paths -- into a
 * pres::Fingerprinter stream.
 *
 * Inherits the stability contract of pres/fingerprint.hh: the result
 * is a pure function of the program's structure, invariant across
 * contexts, threads and runs (Program stores parameters in ordered
 * containers, so no iteration-order hazard exists). Two programs that
 * would compile to different code fingerprint differently; renaming
 * nothing-but-comments changes nothing because the IR has no
 * comments.
 *
 * This layer covers the *program* only. Compilation options
 * (strategy, tiles, tier, codegen flags) are mixed on top by
 * driver::programFingerprint, and tuning-search parameters by
 * perfmodel's tuning store.
 *
 * A second, extent-blind layer (mixProgramShape) mixes the same
 * structure but *not* the parameter values. Workloads carry their
 * concrete sizes exclusively through paramValues (domains, tensor
 * extents and access relations are all symbolic in the parameters),
 * so two instantiations of one pipeline at different sizes share a
 * shape fingerprint while any structural change -- another
 * statement, a different stencil, a renamed parameter -- still
 * separates them. The tuning store uses this as its near-miss key:
 * tiles tuned for one size seed the search at another.
 */

#ifndef POLYFUSE_IR_FINGERPRINT_HH
#define POLYFUSE_IR_FINGERPRINT_HH

#include "pres/fingerprint.hh"

namespace polyfuse {
namespace ir {

class Program;

/** Mix @p program's full structure into @p fp. */
void mixProgram(pres::Fingerprinter &fp, const Program &program);

/**
 * Mix @p program's structure *without* the concrete parameter
 * values: the extent-blind shape layer. Parameter names (and their
 * count) are still mixed, so shape equality means "same symbolic
 * program, possibly different sizes".
 */
void mixProgramShape(pres::Fingerprinter &fp, const Program &program);

/** Fingerprint of the program alone (default seeds). */
pres::Fingerprint fingerprintProgram(const Program &program);

} // namespace ir
} // namespace polyfuse

#endif // POLYFUSE_IR_FINGERPRINT_HH
