/**
 * @file
 * The polyhedral program IR: tensors, statements with iteration
 * domains / access relations / body expressions, and the grouping
 * into original loop nests that fusion heuristics operate on.
 *
 * A Program is built through ProgramBuilder using the isl-like text
 * notation of pres/parser.hh; the paper's Fig. 1(a) looks like:
 *
 *   ProgramBuilder b("conv2d");
 *   b.param("H", 64); ... b.tensor("A", {"H", "W"}, TensorKind::Temp);
 *   b.statement("S0").domain("[H,W] -> { S0[h,w] : ... }")
 *       .reads("A", "{ S0[h,w] -> A[h,w] }")
 *       .writes("A", "{ S0[h,w] -> A[h,w] }")
 *       .body(...).group(0);
 */

#ifndef POLYFUSE_IR_PROGRAM_HH
#define POLYFUSE_IR_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ir/expr.hh"
#include "pres/map.hh"
#include "pres/parser.hh"
#include "pres/set.hh"

namespace polyfuse {
namespace ir {

/** Storage role of a tensor. */
enum class TensorKind
{
    Input,  ///< read-only program input
    Output, ///< live-out: referenced after the program finishes
    Temp,   ///< intermediate: dead after the program finishes
};

/** A declared array (or scalar, rank 0). */
struct TensorInfo
{
    std::string name;
    unsigned rank = 0;
    /** Per-dimension extents as rows over [params..., 1]. */
    std::vector<std::vector<int64_t>> extents;
    TensorKind kind = TensorKind::Temp;
};

/** One access of a statement. */
struct Access
{
    int tensor = -1;
    bool isWrite = false;
    /** Statement instances -> tensor elements (affine relation). */
    pres::BasicMap rel;
    /** True when indexExprs defines the access exactly. */
    bool hasExprs = false;
    /** Rows over [stmt dims..., params..., 1], one per tensor dim. */
    std::vector<std::vector<int64_t>> indexExprs;
};

/** One element of a statement's position inside its group. */
struct PathElem
{
    enum class Kind
    {
        Loop, ///< iterate domain dimension `value`
        Seq,  ///< textual position `value` among siblings
    };
    Kind kind;
    unsigned value;
};

/** A statement: domain, accesses, body, and structural position. */
class Statement
{
  public:
    const std::string &name() const { return name_; }
    const pres::BasicSet &domain() const { return domain_; }
    const std::vector<std::string> &dimNames() const
    { return dimNames_; }
    unsigned numDims() const { return domain_.space().numOut(); }

    /** All accesses in declaration order (reads then the write). */
    const std::vector<Access> &accesses() const { return accesses_; }

    /** Indices into accesses() of the read accesses, in order. */
    const std::vector<int> &readIndices() const { return reads_; }

    /** Index into accesses() of the write access (-1 if none). */
    int writeIndex() const { return write_; }

    const Access &
    writeAccess() const
    {
        return accesses_.at(write_);
    }

    /** Value stored per instance (null for no-op statements). */
    const ExprPtr &body() const { return body_; }

    /** Original loop-nest group this statement belongs to. */
    int group() const { return group_; }

    /** Structural position within the group (loops and seq marks). */
    const std::vector<PathElem> &path() const { return path_; }

    /** Estimated floating-point ops per instance (for cost models). */
    double opsPerInstance() const { return ops_; }

  private:
    friend class ProgramBuilder;
    friend class StatementBuilder;

    std::string name_;
    pres::BasicSet domain_;
    std::vector<std::string> dimNames_;
    std::vector<Access> accesses_;
    std::vector<int> reads_;
    int write_ = -1;
    ExprPtr body_;
    int group_ = 0;
    std::vector<PathElem> path_;
    double ops_ = 1.0;
};

/** A whole program: parameters, tensors, grouped statements. */
class Program
{
  public:
    const std::string &name() const { return name_; }

    const std::vector<std::string> &params() const { return params_; }
    const pres::ParamValues &paramValues() const { return paramValues_; }

    int64_t paramValue(const std::string &name) const;

    const std::vector<TensorInfo> &tensors() const { return tensors_; }
    const TensorInfo &tensor(int id) const { return tensors_.at(id); }
    int tensorId(const std::string &name) const;

    const std::vector<Statement> &statements() const { return stmts_; }
    const Statement &statement(int id) const { return stmts_.at(id); }
    int statementId(const std::string &name) const;

    unsigned numGroups() const { return numGroups_; }

    /** Statement ids belonging to group @p g, in declaration order. */
    std::vector<int> groupStatements(int g) const;

    /** Union of all statement domains. */
    pres::Set domains() const;

    /** Union of read access relations, domains applied. */
    pres::Map reads() const;

    /** Union of write access relations, domains applied. */
    pres::Map writes() const;

    /** True when the tensor outlives the program (TensorKind::Output). */
    bool tensorLiveOut(int id) const;

    /**
     * True when group @p g writes some live-out tensor, i.e. is a
     * live-out computation space in the paper's sense (footnote 1).
     */
    bool groupLiveOut(int g) const;

    /** Evaluate a tensor dimension extent under the param values. */
    int64_t tensorExtent(int id, unsigned dim) const;

    /** Flat element count of a tensor under the param values. */
    int64_t tensorSize(int id) const;

  private:
    friend class ProgramBuilder;
    friend class StatementBuilder;

    std::string name_;
    std::vector<std::string> params_;
    pres::ParamValues paramValues_;
    std::vector<TensorInfo> tensors_;
    std::vector<Statement> stmts_;
    unsigned numGroups_ = 0;
};

/** Fluent builder for statements; obtained from ProgramBuilder. */
class StatementBuilder
{
  public:
    /** Set the iteration domain (single-piece isl-like text). */
    StatementBuilder &domain(const std::string &text);

    /** Add a read access of @p tensor. */
    StatementBuilder &reads(const std::string &tensor,
                            const std::string &map_text);

    /** Set the write access of @p tensor. */
    StatementBuilder &writes(const std::string &tensor,
                             const std::string &map_text);

    /** Set the per-instance value expression. */
    StatementBuilder &body(ExprPtr e);

    /** Assign the statement to original loop nest @p g. */
    StatementBuilder &group(int g);

    /** Override the structural path (default: all dims as loops). */
    StatementBuilder &path(std::vector<PathElem> p);

    /** Set the per-instance flop estimate (default 1). */
    StatementBuilder &ops(double flops);

  private:
    friend class ProgramBuilder;
    StatementBuilder(class ProgramBuilder &pb, int idx)
        : pb_(pb), idx_(idx) {}

    class ProgramBuilder &pb_;
    int idx_;
};

/** Builder/validator for Program. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name);

    /** Declare a parameter with its compile-time known value. */
    ProgramBuilder &param(const std::string &name, int64_t value);

    /**
     * Declare a tensor; extents are affine texts over the parameters
     * (e.g. "H - KH + 1"). @return tensor id.
     */
    int tensor(const std::string &name,
               const std::vector<std::string> &extents, TensorKind kind);

    /** Start a statement; finish it via the returned builder. */
    StatementBuilder statement(const std::string &name);

    /**
     * Validate and return the program: checks domains exist, access
     * tuple names match, groups are contiguous, write tensors exist.
     */
    Program build();

  private:
    friend class StatementBuilder;

    Program p_;
};

/** Shorthand for PathElem{Loop, dim}. */
inline PathElem
L(unsigned dim)
{
    return {PathElem::Kind::Loop, dim};
}

/** Shorthand for PathElem{Seq, pos}. */
inline PathElem
S(unsigned pos)
{
    return {PathElem::Kind::Seq, pos};
}

} // namespace ir
} // namespace polyfuse

#endif // POLYFUSE_IR_PROGRAM_HH
