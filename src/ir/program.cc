#include "ir/program.hh"

#include <algorithm>

#include "support/intmath.hh"
#include "support/logging.hh"

namespace polyfuse {
namespace ir {

int64_t
Program::paramValue(const std::string &name) const
{
    auto it = paramValues_.find(name);
    if (it == paramValues_.end())
        fatal("unknown parameter " + name);
    return it->second;
}

int
Program::tensorId(const std::string &name) const
{
    for (size_t i = 0; i < tensors_.size(); ++i)
        if (tensors_[i].name == name)
            return i;
    fatal("unknown tensor " + name);
}

int
Program::statementId(const std::string &name) const
{
    for (size_t i = 0; i < stmts_.size(); ++i)
        if (stmts_[i].name() == name)
            return i;
    fatal("unknown statement " + name);
}

std::vector<int>
Program::groupStatements(int g) const
{
    std::vector<int> out;
    for (size_t i = 0; i < stmts_.size(); ++i)
        if (stmts_[i].group() == g)
            out.push_back(i);
    return out;
}

pres::Set
Program::domains() const
{
    pres::Set out;
    for (const auto &s : stmts_)
        out.addPiece(s.domain());
    return out;
}

pres::Map
Program::reads() const
{
    pres::Map out;
    for (const auto &s : stmts_)
        for (int r : s.readIndices())
            out.addPiece(
                s.accesses()[r].rel.intersectDomain(s.domain()));
    return out;
}

pres::Map
Program::writes() const
{
    pres::Map out;
    for (const auto &s : stmts_)
        if (s.writeIndex() >= 0)
            out.addPiece(
                s.writeAccess().rel.intersectDomain(s.domain()));
    return out;
}

bool
Program::tensorLiveOut(int id) const
{
    return tensors_.at(id).kind == TensorKind::Output;
}

bool
Program::groupLiveOut(int g) const
{
    for (int sid : groupStatements(g)) {
        const Statement &s = stmts_[sid];
        if (s.writeIndex() >= 0 &&
            tensorLiveOut(s.writeAccess().tensor))
            return true;
    }
    return false;
}

int64_t
Program::tensorExtent(int id, unsigned dim) const
{
    const TensorInfo &t = tensors_.at(id);
    if (dim >= t.rank)
        panic("tensorExtent dim out of range");
    const auto &row = t.extents[dim];
    int64_t acc = row.back();
    for (size_t i = 0; i + 1 < row.size(); ++i)
        acc = checkedAdd(acc,
                         checkedMul(row[i], paramValue(params_[i])));
    return acc;
}

int64_t
Program::tensorSize(int id) const
{
    const TensorInfo &t = tensors_.at(id);
    int64_t n = 1;
    for (unsigned d = 0; d < t.rank; ++d)
        n = checkedMul(n, tensorExtent(id, d));
    return n;
}

ProgramBuilder::ProgramBuilder(std::string name)
{
    p_.name_ = std::move(name);
}

ProgramBuilder &
ProgramBuilder::param(const std::string &name, int64_t value)
{
    if (std::find(p_.params_.begin(), p_.params_.end(), name) !=
        p_.params_.end())
        fatal("duplicate parameter " + name);
    p_.params_.push_back(name);
    p_.paramValues_[name] = value;
    return *this;
}

int
ProgramBuilder::tensor(const std::string &name,
                       const std::vector<std::string> &extents,
                       TensorKind kind)
{
    for (const auto &t : p_.tensors_)
        if (t.name == name)
            fatal("duplicate tensor " + name);
    TensorInfo info;
    info.name = name;
    info.rank = extents.size();
    info.kind = kind;
    for (const auto &e : extents)
        info.extents.push_back(pres::parseAffine(e, p_.params_));
    p_.tensors_.push_back(std::move(info));
    return p_.tensors_.size() - 1;
}

StatementBuilder
ProgramBuilder::statement(const std::string &name)
{
    for (const auto &s : p_.stmts_)
        if (s.name() == name)
            fatal("duplicate statement " + name);
    Statement s;
    s.name_ = name;
    p_.stmts_.push_back(std::move(s));
    return StatementBuilder(*this, p_.stmts_.size() - 1);
}

StatementBuilder &
StatementBuilder::domain(const std::string &text)
{
    Statement &s = pb_.p_.stmts_.at(idx_);
    s.domain_ = pres::parseBasicSetNamed(text, &s.dimNames_);
    if (s.domain_.space().outTuple() != s.name_)
        fatal("domain tuple '" + s.domain_.space().outTuple() +
              "' does not match statement name '" + s.name_ + "'");
    return *this;
}

namespace {

Access
makeAccess(const Program &p, const std::string &tensor,
           const std::string &map_text, const Statement &s,
           bool is_write)
{
    pres::ParsedAccess parsed = pres::parseAccess(map_text);
    Access a;
    a.tensor = p.tensorId(tensor);
    a.isWrite = is_write;
    a.rel = parsed.map;
    a.hasExprs = parsed.hasExprs;
    a.indexExprs = parsed.outExprs;
    if (a.rel.space().inTuple() != s.name())
        fatal("access domain tuple mismatch for " + s.name());
    if (a.rel.space().outTuple() != tensor)
        fatal("access range tuple '" + a.rel.space().outTuple() +
              "' does not name tensor '" + tensor + "'");
    if (a.rel.space().numOut() != p.tensor(a.tensor).rank)
        fatal("access rank mismatch for tensor " + tensor);
    return a;
}

} // namespace

StatementBuilder &
StatementBuilder::reads(const std::string &tensor,
                        const std::string &map_text)
{
    Statement &s = pb_.p_.stmts_.at(idx_);
    s.accesses_.push_back(
        makeAccess(pb_.p_, tensor, map_text, s, false));
    s.reads_.push_back(s.accesses_.size() - 1);
    return *this;
}

StatementBuilder &
StatementBuilder::writes(const std::string &tensor,
                         const std::string &map_text)
{
    Statement &s = pb_.p_.stmts_.at(idx_);
    if (s.write_ >= 0)
        fatal("statement " + s.name_ + " already has a write access");
    s.accesses_.push_back(
        makeAccess(pb_.p_, tensor, map_text, s, true));
    s.write_ = s.accesses_.size() - 1;
    return *this;
}

StatementBuilder &
StatementBuilder::body(ExprPtr e)
{
    pb_.p_.stmts_.at(idx_).body_ = std::move(e);
    return *this;
}

StatementBuilder &
StatementBuilder::group(int g)
{
    pb_.p_.stmts_.at(idx_).group_ = g;
    return *this;
}

StatementBuilder &
StatementBuilder::path(std::vector<PathElem> p)
{
    pb_.p_.stmts_.at(idx_).path_ = std::move(p);
    return *this;
}

StatementBuilder &
StatementBuilder::ops(double flops)
{
    pb_.p_.stmts_.at(idx_).ops_ = flops;
    return *this;
}

Program
ProgramBuilder::build()
{
    int max_group = -1;
    for (auto &s : p_.stmts_) {
        if (s.domain_.space().numOut() == 0 &&
            s.domain_.constraints().empty() &&
            s.domain_.space().outTuple().empty())
            fatal("statement " + s.name_ + " has no domain");
        if (s.group_ < 0)
            fatal("statement " + s.name_ + " has negative group");
        max_group = std::max(max_group, s.group_);
        // Default path: every domain dim as a loop, in order.
        if (s.path_.empty())
            for (unsigned d = 0; d < s.numDims(); ++d)
                s.path_.push_back(L(d));
        // Each access must span the statement's dims.
        for (const auto &a : s.accesses_)
            if (a.rel.space().numIn() != s.numDims())
                fatal("access arity mismatch in " + s.name_);
    }
    // Groups must be contiguous 0..max.
    for (int g = 0; g <= max_group; ++g)
        if (p_.groupStatements(g).empty())
            fatal("group " + std::to_string(g) + " has no statements");
    p_.numGroups_ = max_group + 1;
    return p_;
}

} // namespace ir
} // namespace polyfuse
