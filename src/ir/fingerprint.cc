#include "ir/fingerprint.hh"

#include "ir/program.hh"

namespace polyfuse {
namespace ir {

namespace {

using pres::Fingerprinter;

void
mixRows(Fingerprinter &fp,
        const std::vector<std::vector<int64_t>> &rows)
{
    fp.mix(uint64_t(rows.size()));
    for (const auto &row : rows) {
        fp.mix(uint64_t(row.size()));
        for (int64_t c : row)
            fp.mixSigned(c);
    }
}

void
mixExpr(Fingerprinter &fp, const ExprPtr &e)
{
    if (!e) {
        // Distinct tag for "no body" so a null child cannot alias an
        // empty subtree.
        fp.mix(uint64_t(0xffffffffu));
        return;
    }
    fp.mix(uint64_t(e->kind));
    fp.mixSigned(e->access);
    fp.mixSigned(e->tensor);
    fp.mix(uint64_t(e->iter));
    fp.mix(e->param);
    fp.mixDouble(e->value);
    fp.mix(uint64_t(e->uop));
    fp.mix(uint64_t(e->bop));
    fp.mix(uint64_t(e->args.size()));
    for (const auto &a : e->args)
        mixExpr(fp, a);
}

void
mixAccess(Fingerprinter &fp, const Access &a)
{
    fp.mixSigned(a.tensor);
    fp.mixBool(a.isWrite);
    pres::mixBasicMap(fp, a.rel);
    fp.mixBool(a.hasExprs);
    mixRows(fp, a.indexExprs);
}

void
mixStatement(Fingerprinter &fp, const Statement &s)
{
    fp.mix(s.name());
    fp.mixSigned(s.group());
    fp.mix(uint64_t(s.path().size()));
    for (const PathElem &p : s.path()) {
        fp.mix(uint64_t(p.kind));
        fp.mix(uint64_t(p.value));
    }
    fp.mixDouble(s.opsPerInstance());
    fp.mix(uint64_t(s.dimNames().size()));
    for (const auto &d : s.dimNames())
        fp.mix(d);
    pres::mixBasicSet(fp, s.domain());
    fp.mix(uint64_t(s.accesses().size()));
    for (const Access &a : s.accesses())
        mixAccess(fp, a);
    // readIndices/writeIndex are derived from accesses() order and
    // isWrite flags, but mix them anyway: the executor consumes them
    // directly, so any future divergence must change the fingerprint.
    fp.mix(uint64_t(s.readIndices().size()));
    for (int r : s.readIndices())
        fp.mixSigned(r);
    fp.mixSigned(s.writeIndex());
    mixExpr(fp, s.body());
}

/**
 * Shared body of mixProgram/mixProgramShape. The only difference
 * between the full and the shape layer is whether the parameter
 * *values* enter the stream; everything else in a Program is
 * symbolic in the parameters and therefore size-invariant.
 */
void
mixProgramImpl(Fingerprinter &fp, const Program &program,
               bool with_param_values)
{
    fp.mix(program.name());
    fp.mix(uint64_t(program.params().size()));
    for (const auto &p : program.params())
        fp.mix(p);
    // paramValues is a std::map: ordered, deterministic iteration.
    fp.mix(uint64_t(program.paramValues().size()));
    for (const auto &kv : program.paramValues()) {
        fp.mix(kv.first);
        if (with_param_values)
            fp.mixSigned(kv.second);
    }
    fp.mix(uint64_t(program.tensors().size()));
    for (const TensorInfo &t : program.tensors()) {
        fp.mix(t.name);
        fp.mix(uint64_t(t.rank));
        fp.mix(uint64_t(t.kind));
        mixRows(fp, t.extents);
    }
    fp.mix(uint64_t(program.numGroups()));
    fp.mix(uint64_t(program.statements().size()));
    for (const Statement &s : program.statements())
        mixStatement(fp, s);
}

} // namespace

void
mixProgram(Fingerprinter &fp, const Program &program)
{
    mixProgramImpl(fp, program, /*with_param_values=*/true);
}

void
mixProgramShape(Fingerprinter &fp, const Program &program)
{
    // Tag the stream so a shape fingerprint can never collide with a
    // full fingerprint of some other program by construction.
    fp.mix("ir-shape");
    mixProgramImpl(fp, program, /*with_param_values=*/false);
}

pres::Fingerprint
fingerprintProgram(const Program &program)
{
    Fingerprinter fp;
    mixProgram(fp, program);
    return fp.fingerprint();
}

} // namespace ir
} // namespace polyfuse
