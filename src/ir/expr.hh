/**
 * @file
 * The statement-body expression IR.
 *
 * Every Statement stores one value expression which the executor
 * evaluates per instance and stores through the statement's write
 * access. Affine loads reference a declared read access by position
 * (LoadAcc) so analysis and execution share a single source of truth;
 * data-dependent accesses (e.g. equake's indirection) use LoadIdx
 * with explicit index expressions.
 */

#ifndef POLYFUSE_IR_EXPR_HH
#define POLYFUSE_IR_EXPR_HH

#include <memory>
#include <string>
#include <vector>

namespace polyfuse {
namespace ir {

/** Unary operators available in statement bodies. */
enum class UnOp
{
    Neg,
    Exp,
    Log,
    Sqrt,
    Abs,
    Relu,
    Floor,
};

/** Binary operators available in statement bodies. */
enum class BinOp
{
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
};

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/** One node of a statement-body expression tree. */
struct Expr
{
    enum class Kind
    {
        LoadAcc, ///< load via declared read access `access`
        LoadIdx, ///< load tensor `tensor` at explicit `args` indices
        Iter,    ///< value of domain dimension `iter`
        Param,   ///< value of program parameter `param`
        Const,   ///< literal `value`
        Unary,   ///< uop applied to args[0]
        Binary,  ///< bop applied to args[0], args[1]
    };

    Kind kind;
    int access = -1;
    int tensor = -1;
    unsigned iter = 0;
    std::string param;
    double value = 0.0;
    UnOp uop = UnOp::Neg;
    BinOp bop = BinOp::Add;
    std::vector<ExprPtr> args;
};

/** Load through read access @p access_index (declaration order). */
inline ExprPtr
loadAcc(int access_index)
{
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::LoadAcc;
    e->access = access_index;
    return e;
}

/** Load @p tensor at explicitly computed indices (indirection). */
inline ExprPtr
loadIdx(int tensor, std::vector<ExprPtr> indices)
{
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::LoadIdx;
    e->tensor = tensor;
    e->args = std::move(indices);
    return e;
}

/** Value of the statement's domain dimension @p index. */
inline ExprPtr
iterVar(unsigned index)
{
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::Iter;
    e->iter = index;
    return e;
}

/** Value of the named program parameter. */
inline ExprPtr
paramRef(std::string name)
{
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::Param;
    e->param = std::move(name);
    return e;
}

/** Floating-point literal. */
inline ExprPtr
lit(double v)
{
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::Const;
    e->value = v;
    return e;
}

/** Unary application. */
inline ExprPtr
un(UnOp op, ExprPtr x)
{
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::Unary;
    e->uop = op;
    e->args = {std::move(x)};
    return e;
}

/** Binary application. */
inline ExprPtr
bin(BinOp op, ExprPtr l, ExprPtr r)
{
    auto e = std::make_shared<Expr>();
    e->kind = Expr::Kind::Binary;
    e->bop = op;
    e->args = {std::move(l), std::move(r)};
    return e;
}

inline ExprPtr operator+(ExprPtr a, ExprPtr b)
{ return bin(BinOp::Add, std::move(a), std::move(b)); }
inline ExprPtr operator-(ExprPtr a, ExprPtr b)
{ return bin(BinOp::Sub, std::move(a), std::move(b)); }
inline ExprPtr operator*(ExprPtr a, ExprPtr b)
{ return bin(BinOp::Mul, std::move(a), std::move(b)); }
inline ExprPtr operator/(ExprPtr a, ExprPtr b)
{ return bin(BinOp::Div, std::move(a), std::move(b)); }

} // namespace ir
} // namespace polyfuse

#endif // POLYFUSE_IR_EXPR_HH
