/**
 * @file
 * Schedule trees (Grosser et al. [22]), the representation the paper
 * builds its post-tiling fusion on.
 *
 * Node kinds: Domain (root), Band (a loop nest level with
 * permutable/coincident attributes), Sequence (ordered children, each
 * a Filter), Filter (subset of statements), Mark (string label, e.g.
 * "skipped", "kernel", "thread"), Extension (an affine relation from
 * the enclosing band dimensions to additional statement instances --
 * the paper's vehicle for post-tiling fusion).
 *
 * Bands are restricted to the shifted/tiled per-dimension form
 *     value_k(s, i) = floor((i[dims_k(s)] + shift_k(s)) / tile_k)
 * which covers every transformation the paper composes (rectangular/
 * parallelogram tiling, fusion with shifting) while keeping code
 * generation by domain scanning simple.
 */

#ifndef POLYFUSE_SCHEDULE_TREE_HH
#define POLYFUSE_SCHEDULE_TREE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "deps/dependences.hh"
#include "ir/program.hh"
#include "pres/basic_map.hh"

namespace polyfuse {
namespace schedule {

/** Kinds of schedule tree nodes. */
enum class NodeKind
{
    Domain,
    Band,
    Sequence,
    Filter,
    Mark,
    Extension,
    Leaf,
};

/** A band's per-statement dimension selection and shifts. */
struct BandMember
{
    /** Domain dimension used at each band level. */
    std::vector<unsigned> dims;
    /** Constant added to the dimension at each level (fusion shifts). */
    std::vector<int64_t> shifts;
};

struct Node;
using NodePtr = std::shared_ptr<Node>;

/** One schedule tree node (see file comment). */
struct Node
{
    NodeKind kind = NodeKind::Leaf;
    std::vector<NodePtr> children;

    // --- Band ---
    /** Per-statement band definition, keyed by statement name. */
    std::map<std::string, BandMember> members;
    /** Per-level tile size; empty means the band is not tiled. */
    std::vector<int64_t> tileSizes;
    bool permutable = false;
    std::vector<bool> coincident;

    // --- Filter ---
    /** Statement names admitted below this filter. */
    std::vector<std::string> filter;

    // --- Mark ---
    std::string markLabel;

    // --- Extension ---
    /**
     * Outer band dims -> statement instances to introduce. The input
     * tuple spans every enclosing band dimension, outermost first.
     */
    pres::Map extension;

    /** Number of band levels (0 for non-band nodes). */
    unsigned
    numBandDims() const
    {
        if (members.empty())
            return 0;
        return members.begin()->second.dims.size();
    }

    /** The single child (bands, filters, marks, domain). */
    NodePtr
    onlyChild() const
    {
        return children.size() == 1 ? children[0] : nullptr;
    }
};

/** Factory helpers. */
NodePtr makeLeaf();
NodePtr makeBand(std::map<std::string, BandMember> members,
                 NodePtr child);
NodePtr makeSequence(std::vector<NodePtr> filters);
NodePtr makeFilter(std::vector<std::string> stmts, NodePtr child);
NodePtr makeMark(std::string label, NodePtr child);
NodePtr makeExtension(pres::Map extension, NodePtr child);

/** A schedule tree bound to the program it schedules. */
class ScheduleTree
{
  public:
    ScheduleTree() = default;
    ScheduleTree(const ir::Program &program, NodePtr root)
        : prog_(&program), root_(std::move(root)) {}

    /**
     * The initial schedule tree of a program: a Domain node, a
     * Sequence over the original loop-nest groups, and per-group
     * subtrees derived from the statement paths (Fig. 2(a)).
     */
    static ScheduleTree initial(const ir::Program &program);

    const ir::Program &program() const { return *prog_; }
    const NodePtr &root() const { return root_; }

    /** Deep copy (nodes are freshly allocated). */
    ScheduleTree clone() const;

    /**
     * Recompute permutable/coincident for every band from the
     * dependence graph: a level is coincident when every dependence
     * among the band's members has distance exactly 0 there; a band
     * is permutable when every such distance is componentwise
     * non-negative (after shifts).
     */
    void annotate(const deps::DependenceGraph &graph);

    /**
     * Split band @p band into a tile band and a point band using
     * @p sizes (the paper's isolation of tile dimensions, Sec. IV-A).
     * @return the new tile band (its only child is the point band).
     */
    NodePtr tileBand(const NodePtr &band,
                     const std::vector<int64_t> &sizes);

    /** First band on the path below @p node (or null). */
    static NodePtr findBand(const NodePtr &node);

    /** All bands in pre-order. */
    std::vector<NodePtr> allBands() const;

    /** Parent of @p node (linear search; trees are small). */
    NodePtr parentOf(const NodePtr &node) const;

    /** Statement names scheduled under @p node. */
    std::vector<std::string> statementsUnder(const NodePtr &node) const;

    /** Multi-line indented rendering for tests and debugging. */
    std::string str() const;

  private:
    const ir::Program *prog_ = nullptr;
    NodePtr root_;
};

/**
 * Build the subtree of one statement group from the statements'
 * paths, skipping the first @p skip_loops loop elements of each path
 * (used when outer dims were consumed by a fused band).
 */
NodePtr buildGroupSubtree(const ir::Program &program,
                          const std::vector<int> &stmt_ids,
                          unsigned skip_loops);

} // namespace schedule
} // namespace polyfuse

#endif // POLYFUSE_SCHEDULE_TREE_HH
