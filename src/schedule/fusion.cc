#include "schedule/fusion.hh"

#include <algorithm>
#include <map>

#include "support/logging.hh"

namespace polyfuse {
namespace schedule {

using deps::DependenceGraph;
using ir::PathElem;
using ir::Program;
using ir::Statement;

FusionPolicy
parseFusionPolicy(const std::string &name)
{
    if (name == "minfuse")
        return FusionPolicy::Min;
    if (name == "smartfuse")
        return FusionPolicy::Smart;
    if (name == "maxfuse")
        return FusionPolicy::Max;
    if (name == "hybridfuse")
        return FusionPolicy::Hybrid;
    fatal("unknown fusion policy " + name);
}

std::string
fusionPolicyName(FusionPolicy policy)
{
    switch (policy) {
      case FusionPolicy::Min: return "minfuse";
      case FusionPolicy::Smart: return "smartfuse";
      case FusionPolicy::Max: return "maxfuse";
      case FusionPolicy::Hybrid: return "hybridfuse";
    }
    panic("bad policy");
}

unsigned
groupOuterDepth(const Program &program, int g)
{
    unsigned depth = UINT_MAX;
    for (int id : program.groupStatements(g)) {
        const auto &path = program.statement(id).path();
        unsigned k = 0;
        while (k < path.size() && path[k].kind == PathElem::Kind::Loop)
            ++k;
        depth = std::min(depth, k);
    }
    return depth == UINT_MAX ? 0 : depth;
}

namespace {

/** A fusion cluster under construction. */
struct Cluster
{
    std::vector<int> groups;
    unsigned depth = 0;
    /** Per-statement shift vector (length == depth). */
    std::map<int, std::vector<int64_t>> shifts; // by statement id
};

/** First @p m loop dims of a statement's path. */
std::vector<unsigned>
outerDims(const Statement &s, unsigned m)
{
    std::vector<unsigned> dims;
    for (const auto &e : s.path()) {
        if (dims.size() == m)
            break;
        if (e.kind == PathElem::Kind::Loop)
            dims.push_back(e.value);
        else
            break;
    }
    if (dims.size() != m)
        panic("statement shallower than requested band depth");
    return dims;
}

/** Per-level dependence summary over a member set. */
struct LevelSummary
{
    bool legal = true;       ///< all distances >= 0 (no shift needed)
    bool parallel = true;    ///< all distances == 0
    bool bounded = true;     ///< all distances bounded
    int64_t minNeg = 0;      ///< most negative distance (for shifts)
};

/**
 * Summarize dependence distances among @p members over their first
 * @p m dims (shift-adjusted).
 */
std::vector<LevelSummary>
summarize(const Program &p, const DependenceGraph &g,
          const std::map<int, std::vector<int64_t>> &members, unsigned m)
{
    std::vector<LevelSummary> out(m);
    for (const auto &[src, sshift] : members) {
        for (const auto &[dst, dshift] : members) {
            for (const auto *dep : g.between(src, dst)) {
                auto sdims = outerDims(p.statement(src), m);
                auto ddims = outerDims(p.statement(dst), m);
                auto dist = g.bandDistances(*dep, sdims, ddims);
                for (unsigned k = 0; k < m; ++k) {
                    LevelSummary &ls = out[k];
                    if (!dist[k].bounded) {
                        ls.bounded = false;
                        ls.legal = false;
                        ls.parallel = false;
                        continue;
                    }
                    int64_t lo = dist[k].min + dshift[k] - sshift[k];
                    int64_t hi = dist[k].max + dshift[k] - sshift[k];
                    if (lo < 0) {
                        ls.legal = false;
                        ls.minNeg = std::min(ls.minNeg, lo);
                    }
                    if (lo != 0 || hi != 0)
                        ls.parallel = false;
                }
            }
        }
    }
    return out;
}

/** All statement ids of a cluster with their (truncated) shifts. */
std::map<int, std::vector<int64_t>>
clusterMembers(const Program &p, const Cluster &c, unsigned m)
{
    std::map<int, std::vector<int64_t>> out;
    for (int g : c.groups) {
        for (int id : p.groupStatements(g)) {
            auto it = c.shifts.find(id);
            std::vector<int64_t> shift(m, 0);
            if (it != c.shifts.end())
                for (unsigned k = 0; k < m && k < it->second.size();
                     ++k)
                    shift[k] = it->second[k];
            out[id] = std::move(shift);
        }
    }
    return out;
}

/** True when some dependence connects a statement of X to one of Y. */
bool
dependenceConnected(const DependenceGraph &g, const Cluster &x,
                    const Cluster &y)
{
    for (int gx : x.groups)
        for (int gy : y.groups)
            if (g.groupDependsOn(gy, gx) || g.groupDependsOn(gx, gy))
                return true;
    return false;
}

/**
 * Try to merge adjacent clusters under @p policy; on success @p x is
 * extended with @p y's contents (shifting y's statements as needed).
 */
bool
tryMerge(const Program &p, const DependenceGraph &g, Cluster &x,
         const Cluster &y, FusionPolicy policy)
{
    if (policy == FusionPolicy::Min)
        return false;
    unsigned m = std::min(x.depth, y.depth);
    if (m == 0)
        return false;
    if (!dependenceConnected(g, x, y))
        return false;

    auto xm = clusterMembers(p, x, m);
    auto ym = clusterMembers(p, y, m);

    // Fused member set with y's shifts still unadjusted.
    auto fused = xm;
    for (const auto &[id, shift] : ym)
        fused[id] = shift;

    auto summary = summarize(p, g, fused, m);

    // Required shift of y's statements per level.
    std::vector<int64_t> extra(m, 0);
    for (unsigned k = 0; k < m; ++k) {
        const LevelSummary &ls = summary[k];
        if (!ls.bounded)
            return false;
        if (!ls.legal)
            extra[k] = -ls.minNeg;
    }

    auto needsShift = [&](unsigned k) { return extra[k] != 0; };

    // Parallelism check: levels parallel in both inputs must stay
    // parallel in the fusion (smart: all levels; hybrid: level 0).
    auto xsum = summarize(p, g, xm, m);
    auto ysum = summarize(p, g, ym, m);
    auto losesParallelism = [&](unsigned k) {
        bool before = xsum[k].parallel && ysum[k].parallel;
        // After a shift distances are nonzero, hence not parallel.
        bool after = summary[k].parallel && !needsShift(k);
        return before && !after;
    };

    switch (policy) {
      case FusionPolicy::Min:
        return false;
      case FusionPolicy::Smart:
        for (unsigned k = 0; k < m; ++k)
            if (needsShift(k) || losesParallelism(k))
                return false;
        break;
      case FusionPolicy::Max:
        break; // any bounded shift accepted
      case FusionPolicy::Hybrid:
        if (needsShift(0) || losesParallelism(0))
            return false;
        break;
    }

    // Verify the shift fixes everything (a shift that helps an x->y
    // dependence hurts a y->x one; bail out instead of iterating).
    if (std::any_of(extra.begin(), extra.end(),
                    [](int64_t v) { return v != 0; })) {
        auto shifted = xm;
        for (const auto &[id, shift] : ym) {
            std::vector<int64_t> s(m);
            for (unsigned k = 0; k < m; ++k)
                s[k] = shift[k] + extra[k];
            shifted[id] = std::move(s);
        }
        auto check = summarize(p, g, shifted, m);
        for (unsigned k = 0; k < m; ++k)
            if (!check[k].bounded || !check[k].legal)
                return false;
    }

    // Commit: shift y's statements and absorb.
    x.depth = m;
    for (auto &[id, shift] : x.shifts)
        shift.resize(m, 0);
    for (const auto &[id, shift] : ym) {
        std::vector<int64_t> s(m);
        for (unsigned k = 0; k < m; ++k)
            s[k] = shift[k] + extra[k];
        x.shifts[id] = std::move(s);
    }
    for (int gy : y.groups)
        x.groups.push_back(gy);
    return true;
}

/** Rebuild the schedule tree from the final clusters. */
ScheduleTree
buildTree(const Program &p, const std::vector<Cluster> &clusters)
{
    auto domain = std::make_shared<Node>();
    domain->kind = NodeKind::Domain;

    std::vector<NodePtr> filters;
    for (const auto &c : clusters) {
        std::vector<std::string> names;
        for (int g : c.groups)
            for (int id : p.groupStatements(g))
                names.push_back(p.statement(id).name());

        if (c.groups.size() == 1) {
            filters.push_back(makeFilter(
                names,
                buildGroupSubtree(p, p.groupStatements(c.groups[0]),
                                  0)));
            continue;
        }

        // Fused band over the common outer dims, with shifts; below
        // it a sequence of the original group subtrees.
        std::map<std::string, BandMember> members;
        for (int g : c.groups) {
            for (int id : p.groupStatements(g)) {
                const Statement &s = p.statement(id);
                BandMember m;
                m.dims = outerDims(s, c.depth);
                auto it = c.shifts.find(id);
                if (it != c.shifts.end())
                    m.shifts = it->second;
                else
                    m.shifts.assign(c.depth, 0);
                members[s.name()] = std::move(m);
            }
        }
        std::vector<NodePtr> inner;
        for (int g : c.groups) {
            std::vector<std::string> gnames;
            for (int id : p.groupStatements(g))
                gnames.push_back(p.statement(id).name());
            inner.push_back(makeFilter(
                gnames,
                buildGroupSubtree(p, p.groupStatements(g), c.depth)));
        }
        filters.push_back(makeFilter(
            names,
            makeBand(std::move(members), makeSequence(std::move(inner)))));
    }
    domain->children = {makeSequence(std::move(filters))};
    return ScheduleTree(p, domain);
}

} // namespace

FusionResult
applyFusion(const Program &program, const DependenceGraph &graph,
            FusionPolicy policy)
{
    std::vector<Cluster> clusters;
    for (unsigned g = 0; g < program.numGroups(); ++g) {
        Cluster c;
        c.groups = {int(g)};
        c.depth = groupOuterDepth(program, g);
        clusters.push_back(std::move(c));
    }

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 0; i + 1 < clusters.size(); ++i) {
            if (tryMerge(program, graph, clusters[i], clusters[i + 1],
                         policy)) {
                clusters.erase(clusters.begin() + i + 1);
                changed = true;
                break;
            }
        }
    }

    FusionResult result;
    result.tree = buildTree(program, clusters);
    for (const auto &c : clusters)
        result.clusters.push_back(c.groups);
    result.tree.annotate(graph);
    return result;
}

} // namespace schedule
} // namespace polyfuse
