/**
 * @file
 * The tiling-after-fusion baselines the paper compares against
 * (Sec. VI): PPCG-style minfuse / smartfuse / maxfuse plus Pluto's
 * hybridfuse. Each policy clusters the original loop-nest groups over
 * the dependence graph and rebuilds the schedule tree with fused
 * outer bands (with per-statement shifts where the policy allows
 * them).
 *
 * Policy semantics:
 *  - Min:    never fuse (each group its own computation space);
 *  - Smart:  fuse producer/consumer groups only when no shift is
 *            needed and no outer parallelism is lost;
 *  - Max:    fuse whenever bounded shifts make it legal, accepting
 *            parallelism loss (Fig. 1(c));
 *  - Hybrid: Smart at the outermost level, Max below it.
 */

#ifndef POLYFUSE_SCHEDULE_FUSION_HH
#define POLYFUSE_SCHEDULE_FUSION_HH

#include <string>
#include <vector>

#include "schedule/tree.hh"

namespace polyfuse {
namespace schedule {

/** Fusion heuristic selector. */
enum class FusionPolicy
{
    Min,
    Smart,
    Max,
    Hybrid,
};

/** Parse "minfuse" / "smartfuse" / "maxfuse" / "hybridfuse". */
FusionPolicy parseFusionPolicy(const std::string &name);

/** Printable policy name. */
std::string fusionPolicyName(FusionPolicy policy);

/** The outcome of a fusion pass. */
struct FusionResult
{
    ScheduleTree tree;
    /** Original group ids per fused cluster, in execution order. */
    std::vector<std::vector<int>> clusters;
};

/**
 * Apply @p policy to the program's initial schedule and return the
 * fused, attribute-annotated schedule tree.
 */
FusionResult applyFusion(const ir::Program &program,
                         const deps::DependenceGraph &graph,
                         FusionPolicy policy);

/**
 * Depth of the outermost common loop band of group @p g (the number
 * of leading lockstep Loop elements across its statement paths).
 */
unsigned groupOuterDepth(const ir::Program &program, int g);

} // namespace schedule
} // namespace polyfuse

#endif // POLYFUSE_SCHEDULE_FUSION_HH
