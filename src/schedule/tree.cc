#include "schedule/tree.hh"

#include <algorithm>
#include <functional>
#include <sstream>

#include "support/logging.hh"
#include "support/strutil.hh"

namespace polyfuse {
namespace schedule {

using ir::PathElem;
using ir::Program;
using ir::Statement;

NodePtr
makeLeaf()
{
    auto n = std::make_shared<Node>();
    n->kind = NodeKind::Leaf;
    return n;
}

NodePtr
makeBand(std::map<std::string, BandMember> members, NodePtr child)
{
    auto n = std::make_shared<Node>();
    n->kind = NodeKind::Band;
    n->members = std::move(members);
    unsigned depth = n->numBandDims();
    for (auto &[name, m] : n->members) {
        if (m.dims.size() != depth)
            panic("band member depth mismatch for " + name);
        if (m.shifts.empty())
            m.shifts.assign(depth, 0);
        if (m.shifts.size() != depth)
            panic("band member shift arity mismatch for " + name);
    }
    n->coincident.assign(depth, false);
    n->children = {std::move(child)};
    return n;
}

NodePtr
makeSequence(std::vector<NodePtr> filters)
{
    auto n = std::make_shared<Node>();
    n->kind = NodeKind::Sequence;
    for (const auto &f : filters)
        if (f->kind != NodeKind::Filter)
            panic("sequence children must be filters");
    n->children = std::move(filters);
    return n;
}

NodePtr
makeFilter(std::vector<std::string> stmts, NodePtr child)
{
    auto n = std::make_shared<Node>();
    n->kind = NodeKind::Filter;
    n->filter = std::move(stmts);
    n->children = {std::move(child)};
    return n;
}

NodePtr
makeMark(std::string label, NodePtr child)
{
    auto n = std::make_shared<Node>();
    n->kind = NodeKind::Mark;
    n->markLabel = std::move(label);
    n->children = {std::move(child)};
    return n;
}

NodePtr
makeExtension(pres::Map extension, NodePtr child)
{
    auto n = std::make_shared<Node>();
    n->kind = NodeKind::Extension;
    n->extension = std::move(extension);
    n->children = {std::move(child)};
    return n;
}

namespace {

/** Per-statement cursor into its path during subtree construction. */
struct Cursor
{
    int stmt;
    size_t pos;
};

NodePtr
buildRec(const Program &program, std::vector<Cursor> cursors)
{
    if (cursors.empty())
        panic("buildRec: no statements");

    // Single statement with only loops left: one band (or leaf).
    bool all_done = true;
    for (const auto &c : cursors)
        if (c.pos < program.statement(c.stmt).path().size())
            all_done = false;
    if (all_done) {
        if (cursors.size() == 1)
            return makeLeaf();
        // Distinct statements ending at the same spot: declaration
        // order decides.
        std::vector<NodePtr> filters;
        for (const auto &c : cursors)
            filters.push_back(makeFilter(
                {program.statement(c.stmt).name()}, makeLeaf()));
        return makeSequence(std::move(filters));
    }

    // Are all next elements loops?
    bool all_loops = true;
    for (const auto &c : cursors) {
        const auto &path = program.statement(c.stmt).path();
        if (c.pos >= path.size() ||
            path[c.pos].kind != PathElem::Kind::Loop)
            all_loops = false;
    }

    if (all_loops) {
        // Maximal run of lockstep loops.
        size_t run = SIZE_MAX;
        for (const auto &c : cursors) {
            const auto &path = program.statement(c.stmt).path();
            size_t k = 0;
            while (c.pos + k < path.size() &&
                   path[c.pos + k].kind == PathElem::Kind::Loop)
                ++k;
            run = std::min(run, k);
        }
        std::map<std::string, BandMember> members;
        for (const auto &c : cursors) {
            const Statement &s = program.statement(c.stmt);
            BandMember m;
            for (size_t k = 0; k < run; ++k)
                m.dims.push_back(s.path()[c.pos + k].value);
            m.shifts.assign(run, 0);
            members[s.name()] = std::move(m);
        }
        std::vector<Cursor> next = cursors;
        for (auto &c : next)
            c.pos += run;
        return makeBand(std::move(members),
                        buildRec(program, std::move(next)));
    }

    // Otherwise every statement must sit at a Seq element (or its
    // end, which we treat as position by declaration order).
    std::map<unsigned, std::vector<Cursor>> by_pos;
    for (const auto &c : cursors) {
        const auto &path = program.statement(c.stmt).path();
        if (c.pos < path.size() &&
            path[c.pos].kind == PathElem::Kind::Seq) {
            Cursor adv = c;
            ++adv.pos;
            by_pos[path[c.pos].value].push_back(adv);
        } else {
            panic("statement paths mix loops and sequence positions "
                  "at the same level");
        }
    }
    std::vector<NodePtr> filters;
    for (auto &[pos, subgroup] : by_pos) {
        std::vector<std::string> names;
        for (const auto &c : subgroup)
            names.push_back(program.statement(c.stmt).name());
        filters.push_back(makeFilter(
            std::move(names), buildRec(program, std::move(subgroup))));
    }
    return makeSequence(std::move(filters));
}

} // namespace

NodePtr
buildGroupSubtree(const Program &program,
                  const std::vector<int> &stmt_ids, unsigned skip_loops)
{
    std::vector<Cursor> cursors;
    for (int id : stmt_ids) {
        const auto &path = program.statement(id).path();
        size_t pos = 0;
        unsigned skipped = 0;
        while (skipped < skip_loops) {
            if (pos >= path.size())
                panic("skip_loops exceeds path length");
            if (path[pos].kind == PathElem::Kind::Loop)
                ++skipped;
            ++pos;
        }
        cursors.push_back({id, pos});
    }
    return buildRec(program, std::move(cursors));
}

ScheduleTree
ScheduleTree::initial(const Program &program)
{
    auto domain = std::make_shared<Node>();
    domain->kind = NodeKind::Domain;

    std::vector<NodePtr> filters;
    for (unsigned g = 0; g < program.numGroups(); ++g) {
        auto stmts = program.groupStatements(g);
        std::vector<std::string> names;
        for (int id : stmts)
            names.push_back(program.statement(id).name());
        filters.push_back(makeFilter(
            std::move(names), buildGroupSubtree(program, stmts, 0)));
    }
    domain->children = {makeSequence(std::move(filters))};
    return ScheduleTree(program, domain);
}

namespace {

NodePtr
cloneRec(const NodePtr &node)
{
    auto n = std::make_shared<Node>(*node);
    for (auto &c : n->children)
        c = cloneRec(c);
    return n;
}

} // namespace

ScheduleTree
ScheduleTree::clone() const
{
    return ScheduleTree(*prog_, cloneRec(root_));
}

void
ScheduleTree::annotate(const deps::DependenceGraph &graph)
{
    const Program &p = *prog_;
    for (const NodePtr &band : allBands()) {
        unsigned depth = band->numBandDims();
        band->permutable = true;
        band->coincident.assign(depth, true);
        for (const auto &[sname, sm] : band->members) {
            for (const auto &[tname, tm] : band->members) {
                int src = p.statementId(sname);
                int dst = p.statementId(tname);
                for (const auto *dep : graph.between(src, dst)) {
                    auto dist = graph.bandDistances(*dep, sm.dims,
                                                    tm.dims);
                    for (unsigned k = 0; k < depth; ++k) {
                        if (!dist[k].bounded) {
                            band->permutable = false;
                            band->coincident[k] = false;
                            continue;
                        }
                        int64_t lo = dist[k].min + tm.shifts[k] -
                                     sm.shifts[k];
                        int64_t hi = dist[k].max + tm.shifts[k] -
                                     sm.shifts[k];
                        if (lo < 0)
                            band->permutable = false;
                        if (lo != 0 || hi != 0)
                            band->coincident[k] = false;
                    }
                }
            }
        }
    }
}

NodePtr
ScheduleTree::tileBand(const NodePtr &band,
                       const std::vector<int64_t> &sizes)
{
    if (band->kind != NodeKind::Band)
        panic("tileBand on non-band node");
    if (!band->tileSizes.empty())
        fatal("band is already tiled");
    if (sizes.size() != band->numBandDims())
        fatal("tile size arity mismatch");
    for (int64_t s : sizes)
        if (s <= 0)
            fatal("tile sizes must be positive");

    auto point = std::make_shared<Node>(*band);
    point->tileSizes.clear();
    band->tileSizes = sizes;
    band->children = {point};
    return band;
}

NodePtr
ScheduleTree::findBand(const NodePtr &node)
{
    if (!node)
        return nullptr;
    if (node->kind == NodeKind::Band)
        return node;
    for (const auto &c : node->children)
        if (NodePtr b = findBand(c))
            return b;
    return nullptr;
}

std::vector<NodePtr>
ScheduleTree::allBands() const
{
    std::vector<NodePtr> out;
    std::function<void(const NodePtr &)> walk =
        [&](const NodePtr &n) {
            if (!n)
                return;
            if (n->kind == NodeKind::Band)
                out.push_back(n);
            for (const auto &c : n->children)
                walk(c);
        };
    walk(root_);
    return out;
}

NodePtr
ScheduleTree::parentOf(const NodePtr &node) const
{
    NodePtr found;
    std::function<void(const NodePtr &)> walk =
        [&](const NodePtr &n) {
            if (!n || found)
                return;
            for (const auto &c : n->children) {
                if (c == node) {
                    found = n;
                    return;
                }
                walk(c);
            }
        };
    walk(root_);
    return found;
}

std::vector<std::string>
ScheduleTree::statementsUnder(const NodePtr &node) const
{
    std::vector<std::string> out;
    auto add = [&](const std::string &name) {
        if (std::find(out.begin(), out.end(), name) == out.end())
            out.push_back(name);
    };
    std::function<void(const NodePtr &)> walk =
        [&](const NodePtr &n) {
            if (!n)
                return;
            if (n->kind == NodeKind::Filter)
                for (const auto &s : n->filter)
                    add(s);
            if (n->kind == NodeKind::Band)
                for (const auto &[s, m] : n->members)
                    add(s);
            if (n->kind == NodeKind::Extension)
                for (const auto &piece : n->extension.pieces())
                    add(piece.space().outTuple());
            for (const auto &c : n->children)
                walk(c);
        };
    walk(node);
    return out;
}

namespace {

void
printRec(const NodePtr &n, unsigned indent, std::ostringstream &os)
{
    std::string pad(indent * 2, ' ');
    if (!n) {
        os << pad << "(null)\n";
        return;
    }
    switch (n->kind) {
      case NodeKind::Domain:
        os << pad << "domain\n";
        break;
      case NodeKind::Band: {
        os << pad << "band";
        if (!n->tileSizes.empty()) {
            std::vector<std::string> ts;
            for (auto s : n->tileSizes)
                ts.push_back(std::to_string(s));
            os << " tile(" << join(ts, ",") << ")";
        }
        os << " perm=" << (n->permutable ? 1 : 0) << " coin=[";
        for (size_t i = 0; i < n->coincident.size(); ++i)
            os << (i ? "," : "") << (n->coincident[i] ? 1 : 0);
        os << "] {";
        bool first = true;
        for (const auto &[name, m] : n->members) {
            os << (first ? "" : "; ") << name << ":[";
            for (size_t i = 0; i < m.dims.size(); ++i) {
                os << (i ? "," : "") << "i" << m.dims[i];
                if (m.shifts[i] > 0)
                    os << "+" << m.shifts[i];
                else if (m.shifts[i] < 0)
                    os << m.shifts[i];
            }
            os << "]";
            first = false;
        }
        os << "}\n";
        break;
      }
      case NodeKind::Sequence:
        os << pad << "sequence\n";
        break;
      case NodeKind::Filter:
        os << pad << "filter {" << join(n->filter, ", ") << "}\n";
        break;
      case NodeKind::Mark:
        os << pad << "mark \"" << n->markLabel << "\"\n";
        break;
      case NodeKind::Extension:
        os << pad << "extension " << n->extension.str() << "\n";
        break;
      case NodeKind::Leaf:
        os << pad << "leaf\n";
        return;
    }
    for (const auto &c : n->children)
        printRec(c, indent + 1, os);
}

} // namespace

std::string
ScheduleTree::str() const
{
    std::ostringstream os;
    printRec(root_, 0, os);
    return os.str();
}

} // namespace schedule
} // namespace polyfuse
