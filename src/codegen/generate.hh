/**
 * @file
 * AST generation by scanning schedule trees (the code generation
 * strategy of Sec. V): bands become loops with FM-derived bounds,
 * sequences/filters become blocks, extension nodes introduce the
 * fused statements and (optionally) scratchpad promotion scopes for
 * the intermediate tensors they produce (Sec. V-B), and subtrees
 * below a "skipped" mark are bypassed.
 */

#ifndef POLYFUSE_CODEGEN_GENERATE_HH
#define POLYFUSE_CODEGEN_GENERATE_HH

#include "codegen/ast.hh"
#include "schedule/tree.hh"

namespace polyfuse {
namespace codegen {

/** Options for AST generation. */
struct GenOptions
{
    /**
     * Insert Alloc scopes that keep extension-produced intermediate
     * tensors in tile-local scratchpads (the paper's aggressive
     * memory optimization, Sec. V-B).
     *
     * NOTE: promotion is part of the transformation's correctness
     * story for overlapped tiles, not just an optimization: an
     * in-place producer (e.g. A = Quant(A)) re-executed in a halo
     * region would otherwise double-apply to the global tensor.
     * Disable only for idempotent producers.
     */
    bool promoteIntermediates = true;
};

/** Generate the imperative AST of @p tree. */
AstPtr generateAst(const schedule::ScheduleTree &tree,
                   const GenOptions &options = {});

} // namespace codegen
} // namespace polyfuse

#endif // POLYFUSE_CODEGEN_GENERATE_HH
