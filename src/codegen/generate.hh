/**
 * @file
 * AST generation by scanning schedule trees (the code generation
 * strategy of Sec. V): bands become loops with FM-derived bounds,
 * sequences/filters become blocks, extension nodes introduce the
 * fused statements and (optionally) scratchpad promotion scopes for
 * the intermediate tensors they produce (Sec. V-B), and subtrees
 * below a "skipped" mark are bypassed.
 */

#ifndef POLYFUSE_CODEGEN_GENERATE_HH
#define POLYFUSE_CODEGEN_GENERATE_HH

#include "codegen/ast.hh"
#include "schedule/tree.hh"

namespace polyfuse {
namespace codegen {

/** Options for AST generation. */
struct GenOptions
{
    /**
     * Insert Alloc scopes that keep extension-produced intermediate
     * tensors in tile-local scratchpads (the paper's aggressive
     * memory optimization, Sec. V-B).
     *
     * NOTE: promotion is part of the transformation's correctness
     * story for overlapped tiles, not just an optimization: an
     * in-place producer (e.g. A = Quant(A)) re-executed in a halo
     * region would otherwise double-apply to the global tensor.
     * Disable only for idempotent producers.
     */
    bool promoteIntermediates = true;
};

/** One statement's membership in a generated tile band. */
struct GeneratedBandMember
{
    int stmt = -1;
    /** Domain dimension used at each band level. */
    std::vector<unsigned> dims;
    /** Constant added to the dimension at each level. */
    std::vector<int64_t> shifts;
};

/**
 * Side-table record of one **tiled** band the scan turned into tile
 * loops: everything the deps layer needs to project statement-level
 * dependences onto this band's tile coordinates (deps::tileGraph)
 * without reaching back into the schedule tree. The record's index in
 * the table equals the `bandId` stamped on the band's tile-loop For
 * nodes (and, downstream, on bytecode tape loops).
 */
struct GeneratedBand
{
    int id = -1;
    bool permutable = false;
    std::vector<int64_t> tileSizes;  ///< per level
    std::vector<bool> coincident;    ///< per level (padded to depth)
    std::vector<int> vars;           ///< tile-loop var id per level
    std::vector<GeneratedBandMember> members;
    /** Statements executing inside this band's tiles that are NOT
     *  band members (post-tiling fused producers introduced by
     *  extension nodes below the tile loops): their dependences have
     *  no direct tile coordinates, so the projection must treat them
     *  conservatively unless the dependence flows through a tensor
     *  in localTensors. */
    std::vector<int> extraStmts;
    /** Tensors promoted to tile-local scratchpads somewhere under the
     *  tile loops: dependences carried purely through these never
     *  cross tiles (each tile re-computes its own copy). */
    std::vector<int> localTensors;
};

/** Generate the imperative AST of @p tree. */
AstPtr generateAst(const schedule::ScheduleTree &tree,
                   const GenOptions &options = {});

/** As above, additionally filling @p bands with one record per tiled
 *  band, indexed by the `bandId` on the emitted tile loops. */
AstPtr generateAst(const schedule::ScheduleTree &tree,
                   const GenOptions &options,
                   std::vector<GeneratedBand> &bands);

} // namespace codegen
} // namespace polyfuse

#endif // POLYFUSE_CODEGEN_GENERATE_HH
