#include "codegen/generate.hh"

#include <algorithm>
#include <set>

#include "pres/fm.hh"
#include "support/failpoint.hh"
#include "support/logging.hh"

namespace polyfuse {
namespace codegen {

using ir::Program;
using ir::Statement;
using pres::Constraint;
using schedule::Node;
using schedule::NodeKind;
using schedule::NodePtr;

namespace {

/**
 * Scanning context of one active statement: constraint rows over the
 * columns [loop vars | own domain dims | params | 1], plus the
 * binding of already-scanned dims to loop vars.
 */
struct StmtCtx
{
    int stmt = -1;
    unsigned ndims = 0;
    std::vector<Constraint> rows;
    std::vector<int> binding;      ///< var id per dim, -1 if unbound
    std::vector<int64_t> offset;   ///< dim = var + offset
};

/** Whole-scan context; copied down tree branches. */
struct GenCtx
{
    const Program *prog = nullptr;
    /** The pres context FM work is charged to; GenCtx is copied down
     *  tree branches, so the handle (not the state) is the member. */
    pres::fm::PresCtx *pres = nullptr;
    unsigned numVars = 0;
    std::vector<std::string> varNames;
    std::vector<StmtCtx> active;
    std::vector<int> bandVars; ///< loop var per enclosing band dim
    /** Shared tile-band side table (nullable); bands append in visit
     *  order, so an entry's index is its id. Shared across the copied
     *  contexts of sibling branches on purpose. */
    std::vector<GeneratedBand> *bands = nullptr;
};

unsigned
numParams(const GenCtx &ctx)
{
    return ctx.prog->params().size();
}

/** Make a fresh StmtCtx from a statement's domain constraints. */
StmtCtx
freshStmtCtx(const GenCtx &ctx, int stmt_id)
{
    const Statement &s = ctx.prog->statement(stmt_id);
    StmtCtx sc;
    sc.stmt = stmt_id;
    sc.ndims = s.numDims();
    sc.binding.assign(sc.ndims, -1);
    sc.offset.assign(sc.ndims, 0);

    // Domain constraints: [dims, params, 1] -> widen with var cols.
    // The domain's params may be a subset of the program's; remap.
    const pres::Space &dsp = s.domain().space();
    unsigned np = numParams(ctx);
    for (const auto &c : s.domain().constraints()) {
        Constraint row(c.isEq,
                       pres::CoeffRow(
                           ctx.numVars + sc.ndims + np + 1, 0));
        for (unsigned d = 0; d < sc.ndims; ++d)
            row.coeffs[ctx.numVars + d] = c.coeffs[d];
        for (unsigned p = 0; p < dsp.numParams(); ++p) {
            int idx = -1;
            for (unsigned q = 0; q < np; ++q)
                if (ctx.prog->params()[q] == dsp.params()[p])
                    idx = q;
            if (idx < 0)
                panic("domain parameter not in program");
            row.coeffs[ctx.numVars + sc.ndims + idx] =
                c.coeffs[sc.ndims + p];
        }
        row.coeffs.back() = c.constant();
        sc.rows.push_back(std::move(row));
    }
    return sc;
}

/** Append a new loop-variable column to every active context. */
int
newVar(GenCtx &ctx, const std::string &name)
{
    int v = ctx.numVars;
    for (auto &sc : ctx.active)
        for (auto &row : sc.rows)
            row.coeffs.insert(row.coeffs.begin() + v, 0);
    ++ctx.numVars;
    ctx.varNames.push_back(name);
    return v;
}

/** Outcome of a bound extraction. */
enum class BoundStatus
{
    Ok,
    Empty,     ///< the member is infeasible here; contributes nothing
    Unbounded, ///< missing constraint: a code generation bug
};

/**
 * Extract the bounds of variable @p var from @p sc by eliminating
 * the statement's dims and splitting rows on the sign of the var
 * coefficient.
 */
BoundStatus
boundsOf(const GenCtx &ctx, const StmtCtx &sc, int var, BoundAlt &lo,
         BoundAlt &hi)
{
    std::vector<Constraint> rows = sc.rows;
    bool exact = true;
    // Eliminate the dim columns (highest first).
    for (unsigned d = sc.ndims; d-- > 0;) {
        if (!pres::fm::eliminateCol(*ctx.pres, rows,
                                    ctx.numVars + d, exact))
            return BoundStatus::Empty;
    }
    unsigned np = numParams(ctx);
    lo.clear();
    hi.clear();
    for (const auto &row : rows) {
        int64_t a = row.coeffs[var];
        if (a == 0)
            continue;
        auto term = [&](int64_t sign, int64_t div) {
            BoundTerm t;
            t.varCoeffs.assign(ctx.numVars, 0);
            for (unsigned v = 0; v < ctx.numVars; ++v)
                if (int(v) != var)
                    t.varCoeffs[v] = sign * row.coeffs[v];
            t.paramCoeffs.assign(np, 0);
            for (unsigned p = 0; p < np; ++p)
                t.paramCoeffs[p] = sign * row.coeffs[ctx.numVars + p];
            t.constant = sign * row.coeffs.back();
            t.div = div;
            return t;
        };
        if (row.isEq) {
            // a*v + e == 0 -> v == -e/a.
            int64_t div = a > 0 ? a : -a;
            int64_t sign = a > 0 ? -1 : 1;
            lo.push_back(term(sign, div));
            hi.push_back(term(sign, div));
        } else if (a > 0) {
            // a*v + e >= 0 -> v >= ceil(-e/a).
            lo.push_back(term(-1, a));
        } else {
            // -b*v + e >= 0 -> v <= floor(e/b).
            hi.push_back(term(1, -a));
        }
    }
    if (lo.empty() || hi.empty())
        return BoundStatus::Unbounded;
    return BoundStatus::Ok;
}

AstPtr genNode(const NodePtr &node, GenCtx ctx,
               const GenOptions &options);

/** Collect, over a tile band's body subtree, the statements that are
 *  not band members (extension-fused producers) and the tensors
 *  promoted to tile-local scratchpads. */
void
scanTileBody(const AstPtr &n, const std::set<int> &members,
             std::set<int> &extras, std::set<int> &locals)
{
    if (!n)
        return;
    if (n->kind == AstKind::Stmt) {
        if (!members.count(n->stmt))
            extras.insert(n->stmt);
        return;
    }
    if (n->kind == AstKind::Alloc)
        for (const auto &p : n->promotions)
            locals.insert(p.tensor);
    for (const auto &c : n->children)
        scanTileBody(c, members, extras, locals);
}

/** Generate the loops of a band node and recurse into its child. */
AstPtr
genBand(const NodePtr &band, GenCtx ctx, const GenOptions &options)
{
    bool tiled = !band->tileSizes.empty();
    unsigned depth = band->numBandDims();

    // Every active statement must be a member of the band.
    for (const auto &sc : ctx.active) {
        const std::string &name = ctx.prog->statement(sc.stmt).name();
        if (!band->members.count(name))
            panic("active statement " + name + " not a band member");
    }

    // Register tiled bands in the side table up front so nested bands
    // visited while generating the body get later ids.
    std::vector<GeneratedBand> *bands = ctx.bands;
    int band_id = -1;
    size_t band_idx = 0;
    if (tiled && depth > 0 && bands) {
        band_idx = bands->size();
        band_id = int(band_idx);
        GeneratedBand gb;
        gb.id = band_id;
        gb.permutable = band->permutable;
        gb.tileSizes = band->tileSizes;
        gb.coincident.assign(depth, false);
        for (unsigned k = 0;
             k < depth && k < band->coincident.size(); ++k)
            gb.coincident[k] = band->coincident[k];
        for (const auto &sc : ctx.active) {
            const std::string &name =
                ctx.prog->statement(sc.stmt).name();
            const schedule::BandMember &m = band->members.at(name);
            GeneratedBandMember gm;
            gm.stmt = sc.stmt;
            gm.dims = m.dims;
            gm.shifts = m.shifts;
            gb.members.push_back(std::move(gm));
        }
        bands->push_back(std::move(gb));
    }

    AstPtr outer;
    AstNode *attach = nullptr;
    for (unsigned k = 0; k < depth; ++k) {
        std::string vname =
            (tiled ? "t" : "c") + std::to_string(ctx.numVars);
        int v = newVar(ctx, vname);
        ctx.bandVars.push_back(v);

        for (auto &sc : ctx.active) {
            const std::string &name =
                ctx.prog->statement(sc.stmt).name();
            const schedule::BandMember &m = band->members.at(name);
            unsigned dim = m.dims[k];
            int64_t shift = m.shifts[k];
            unsigned dim_col = ctx.numVars + dim;
            unsigned ncols = sc.rows.empty()
                                 ? ctx.numVars + sc.ndims +
                                       numParams(ctx) + 1
                                 : sc.rows[0].coeffs.size();
            if (tiled) {
                int64_t size = band->tileSizes[k];
                // size*v <= dim + shift <= size*v + size - 1.
                Constraint lo(false, pres::CoeffRow(ncols, 0));
                lo.coeffs[dim_col] = 1;
                lo.coeffs[v] = -size;
                lo.coeffs.back() = shift;
                Constraint hi(false, pres::CoeffRow(ncols, 0));
                hi.coeffs[dim_col] = -1;
                hi.coeffs[v] = size;
                hi.coeffs.back() = size - 1 - shift;
                sc.rows.push_back(std::move(lo));
                sc.rows.push_back(std::move(hi));
            } else {
                // v == dim + shift.
                Constraint eq(true, pres::CoeffRow(ncols, 0));
                eq.coeffs[v] = 1;
                eq.coeffs[dim_col] = -1;
                eq.coeffs.back() = -shift;
                sc.rows.push_back(std::move(eq));
                sc.binding[dim] = v;
                sc.offset[dim] = -shift;
            }
        }

        AstPtr loop = astFor(v, vname);
        loop->parallel = k < band->coincident.size() &&
                         band->coincident[k];
        loop->tileLoop = tiled;
        loop->tileSize = tiled ? band->tileSizes[k] : 0;
        loop->permutable = band->permutable;
        loop->bandId = band_id;
        loop->bandLevel = band_id >= 0 ? int(k) : -1;
        if (band_id >= 0)
            (*bands)[band_idx].vars.push_back(v);
        for (const auto &sc : ctx.active) {
            BoundAlt lo, hi;
            BoundStatus st = boundsOf(ctx, sc, v, lo, hi);
            if (st == BoundStatus::Empty)
                continue;
            if (st == BoundStatus::Unbounded)
                panic("unbounded loop in code generation");
            loop->lb.push_back(std::move(lo));
            loop->ub.push_back(std::move(hi));
        }
        if (loop->lb.empty()) {
            // Nothing executes here: the loops built so far are
            // discarded, so drop the (still-last) side-table entry.
            if (band_id >= 0)
                bands->pop_back();
            return astBlock();
        }

        if (!outer) {
            outer = loop;
        } else {
            attach->children.push_back(loop);
        }
        attach = loop.get();
    }

    AstPtr body = genNode(band->onlyChild(), std::move(ctx), options);
    if (band_id >= 0) {
        GeneratedBand &gb = (*bands)[band_idx];
        std::set<int> member_stmts, extras, locals;
        for (const auto &m : gb.members)
            member_stmts.insert(m.stmt);
        scanTileBody(body, member_stmts, extras, locals);
        gb.extraStmts.assign(extras.begin(), extras.end());
        gb.localTensors.assign(locals.begin(), locals.end());
    }
    if (!attach)
        return body; // zero-dimensional band
    attach->children.push_back(body);
    return outer;
}

/** Introduce extension statements; optionally add promotion scopes. */
AstPtr
genExtension(const NodePtr &node, GenCtx ctx, const GenOptions &options)
{
    unsigned np = numParams(ctx);
    std::vector<int> ext_stmts;
    for (const auto &piece : node->extension.pieces()) {
        const pres::Space &sp = piece.space();
        if (sp.numIn() != ctx.bandVars.size())
            panic("extension arity does not match enclosing bands");
        int stmt_id = ctx.prog->statementId(sp.outTuple());
        // Find or create the context for this statement.
        StmtCtx *sc = nullptr;
        for (auto &c : ctx.active)
            if (c.stmt == stmt_id)
                sc = &c;
        if (!sc) {
            ctx.active.push_back(freshStmtCtx(ctx, stmt_id));
            sc = &ctx.active.back();
            ext_stmts.push_back(stmt_id);
        }
        // Translate map rows: in dims -> band var columns, out dims
        // -> statement dim columns.
        for (const auto &c : piece.constraints()) {
            Constraint row(c.isEq,
                           pres::CoeffRow(
                               ctx.numVars + sc->ndims + np + 1, 0));
            for (unsigned i = 0; i < sp.numIn(); ++i)
                row.coeffs[ctx.bandVars[i]] = c.coeffs[sp.inCol(i)];
            for (unsigned d = 0; d < sp.numOut(); ++d)
                row.coeffs[ctx.numVars + d] = c.coeffs[sp.outCol(d)];
            for (unsigned p = 0; p < sp.numParams(); ++p) {
                int idx = -1;
                for (unsigned q = 0; q < np; ++q)
                    if (ctx.prog->params()[q] == sp.params()[p])
                        idx = q;
                if (idx < 0)
                    panic("extension parameter not in program");
                row.coeffs[ctx.numVars + sc->ndims + idx] =
                    c.coeffs[sp.paramCol(p)];
            }
            row.coeffs.back() = c.constant();
            sc->rows.push_back(std::move(row));
        }
    }

    // NOTE: the composition pass guarantees one convex piece per
    // statement (simpleHull), so appending the rows above is exact.

    AstPtr body = genNode(node->onlyChild(), ctx, options);

    if (!options.promoteIntermediates || ext_stmts.empty())
        return body;

    // Promotion scopes for Temp tensors written by the introduced
    // statements: box bounds of the writes as functions of the
    // enclosing loop vars (Sec. V-B).
    AstPtr alloc = astAlloc();
    std::set<int> tensors;
    for (int sid : ext_stmts) {
        const Statement &s = ctx.prog->statement(sid);
        if (s.writeIndex() < 0)
            continue;
        int t = s.writeAccess().tensor;
        if (ctx.prog->tensor(t).kind == ir::TensorKind::Temp)
            tensors.insert(t);
    }
    for (int t : tensors) {
        Promotion promo;
        promo.tensor = t;
        unsigned rank = ctx.prog->tensor(t).rank;
        promo.boxLo.resize(rank);
        promo.boxHi.resize(rank);
        // The box must cover every access to the tensor under this
        // scope -- the fused producers' writes AND the consumers'
        // reads (which may touch never-written border regions whose
        // values are copied in from the global tensor).
        std::vector<std::pair<int, const ir::Access *>> touching;
        for (const auto &c : ctx.active) {
            const Statement &s = ctx.prog->statement(c.stmt);
            for (const auto &acc : s.accesses())
                if (acc.tensor == t)
                    touching.emplace_back(c.stmt, &acc);
        }
        for (const auto &[sid, accp] : touching) {
            const ir::Access &acc = *accp;
            StmtCtx *sc = nullptr;
            for (auto &c : ctx.active)
                if (c.stmt == sid)
                    sc = &c;
            // System over [vars, dims, tdims, params, 1].
            unsigned base = sc->rows.empty()
                                ? 0
                                : sc->rows[0].coeffs.size();
            (void)base;
            std::vector<Constraint> rows;
            unsigned nd = sc->ndims;
            unsigned total = ctx.numVars + nd + rank + np + 1;
            for (const auto &r : sc->rows) {
                Constraint row(r.isEq,
                               pres::CoeffRow(total, 0));
                for (unsigned i = 0; i < ctx.numVars + nd; ++i)
                    row.coeffs[i] = r.coeffs[i];
                for (unsigned p = 0; p < np + 1; ++p)
                    row.coeffs[ctx.numVars + nd + rank + p] =
                        r.coeffs[ctx.numVars + nd + p];
                rows.push_back(std::move(row));
            }
            // Access relation rows.
            const pres::Space &asp = acc.rel.space();
            for (const auto &c : acc.rel.constraints()) {
                Constraint row(c.isEq,
                               pres::CoeffRow(total, 0));
                for (unsigned i = 0; i < nd; ++i)
                    row.coeffs[ctx.numVars + i] =
                        c.coeffs[asp.inCol(i)];
                for (unsigned j = 0; j < rank; ++j)
                    row.coeffs[ctx.numVars + nd + j] =
                        c.coeffs[asp.outCol(j)];
                for (unsigned p = 0; p < asp.numParams(); ++p) {
                    int idx = -1;
                    for (unsigned q = 0; q < np; ++q)
                        if (ctx.prog->params()[q] == asp.params()[p])
                            idx = q;
                    if (idx < 0)
                        panic("access parameter not in program");
                    row.coeffs[ctx.numVars + nd + rank + idx] =
                        c.coeffs[asp.paramCol(p)];
                }
                row.coeffs.back() = c.constant();
                rows.push_back(std::move(row));
            }
            // Eliminate the statement dims.
            bool exact = true;
            bool empty = false;
            for (unsigned d = nd; d-- > 0;) {
                if (!pres::fm::eliminateCol(*ctx.pres, rows,
                                            ctx.numVars + d,
                                            exact)) {
                    empty = true;
                    break;
                }
            }
            if (empty)
                continue;
            // Bounds of each tensor dim.
            for (unsigned j = 0; j < rank; ++j) {
                std::vector<Constraint> jrows = rows;
                bool jex = true;
                bool jempty = false;
                for (unsigned o = rank; o-- > 0;) {
                    if (o == j)
                        continue;
                    if (!pres::fm::eliminateCol(
                            *ctx.pres, jrows, ctx.numVars + o,
                            jex)) {
                        jempty = true;
                        break;
                    }
                }
                if (jempty)
                    continue;
                BoundAlt lo, hi;
                unsigned jcol = ctx.numVars; // only remaining tdim
                for (const auto &row : jrows) {
                    int64_t a = row.coeffs[jcol];
                    if (a == 0)
                        continue;
                    BoundTerm term;
                    term.varCoeffs.assign(ctx.numVars, 0);
                    term.paramCoeffs.assign(np, 0);
                    int64_t sign = a > 0 ? -1 : 1;
                    int64_t div = a > 0 ? a : -a;
                    for (unsigned v = 0; v < ctx.numVars; ++v)
                        term.varCoeffs[v] = sign * row.coeffs[v];
                    for (unsigned pp = 0; pp < np; ++pp)
                        term.paramCoeffs[pp] =
                            sign *
                            row.coeffs[ctx.numVars + 1 + pp];
                    term.constant = sign * row.coeffs.back();
                    term.div = div;
                    if (row.isEq) {
                        lo.push_back(term);
                        hi.push_back(term);
                    } else if (a > 0) {
                        lo.push_back(term);
                    } else {
                        hi.push_back(term);
                    }
                }
                if (!lo.empty() && !hi.empty()) {
                    promo.boxLo[j].push_back(std::move(lo));
                    promo.boxHi[j].push_back(std::move(hi));
                }
            }
        }
        bool complete = true;
        for (unsigned j = 0; j < rank; ++j)
            if (promo.boxLo[j].empty() || promo.boxHi[j].empty())
                complete = false;
        if (complete)
            alloc->promotions.push_back(std::move(promo));
    }
    if (alloc->promotions.empty())
        return body;
    alloc->children = {body};
    return alloc;
}

AstPtr
genLeaf(GenCtx &ctx)
{
    AstPtr block = astBlock();
    unsigned np = numParams(ctx);
    for (auto &sc : ctx.active) {
        AstPtr stmt = astStmt(sc.stmt);
        for (unsigned d = 0; d < sc.ndims; ++d) {
            if (sc.binding[d] < 0)
                panic("statement dim unbound at leaf: " +
                      ctx.prog->statement(sc.stmt).name());
            stmt->bindings.emplace_back(sc.binding[d], sc.offset[d]);
        }
        // Guards: substitute dims with their bindings.
        std::vector<Constraint> rows = sc.rows;
        for (auto &row : rows) {
            for (unsigned d = 0; d < sc.ndims; ++d) {
                int64_t c = row.coeffs[ctx.numVars + d];
                if (c == 0)
                    continue;
                row.coeffs[sc.binding[d]] += c;
                row.coeffs.back() += c * sc.offset[d];
                row.coeffs[ctx.numVars + d] = 0;
            }
        }
        if (!pres::fm::simplifyRows(*ctx.pres, rows))
            continue; // statement never executes here
        for (const auto &row : rows) {
            GuardRow g;
            g.isEq = row.isEq;
            g.varCoeffs.assign(ctx.numVars, 0);
            for (unsigned v = 0; v < ctx.numVars; ++v)
                g.varCoeffs[v] = row.coeffs[v];
            g.paramCoeffs.assign(np, 0);
            for (unsigned p = 0; p < np; ++p)
                g.paramCoeffs[p] = row.coeffs[ctx.numVars + sc.ndims + p];
            g.constant = row.coeffs.back();
            stmt->guards.push_back(std::move(g));
        }
        block->children.push_back(std::move(stmt));
    }
    return block;
}

AstPtr
genNode(const NodePtr &node, GenCtx ctx, const GenOptions &options)
{
    switch (node->kind) {
      case NodeKind::Domain: {
        for (const auto &s : ctx.prog->statements())
            ctx.active.push_back(
                freshStmtCtx(ctx, ctx.prog->statementId(s.name())));
        return genNode(node->onlyChild(), std::move(ctx), options);
      }
      case NodeKind::Filter: {
        std::vector<StmtCtx> kept;
        for (auto &sc : ctx.active) {
            const std::string &name =
                ctx.prog->statement(sc.stmt).name();
            if (std::find(node->filter.begin(), node->filter.end(),
                          name) != node->filter.end())
                kept.push_back(std::move(sc));
        }
        ctx.active = std::move(kept);
        if (ctx.active.empty())
            return astBlock();
        return genNode(node->onlyChild(), std::move(ctx), options);
      }
      case NodeKind::Sequence: {
        AstPtr block = astBlock();
        for (const auto &child : node->children) {
            AstPtr sub = genNode(child, ctx, options);
            if (sub && !(sub->kind == AstKind::Block &&
                         sub->children.empty()))
                block->children.push_back(std::move(sub));
        }
        return block;
      }
      case NodeKind::Mark: {
        if (node->markLabel == "skipped")
            return astBlock();
        return genNode(node->onlyChild(), std::move(ctx), options);
      }
      case NodeKind::Band:
        return genBand(node, std::move(ctx), options);
      case NodeKind::Extension:
        return genExtension(node, std::move(ctx), options);
      case NodeKind::Leaf:
        return genLeaf(ctx);
    }
    panic("unreachable node kind");
}

/** Number of loop-variable slots used under @p n (max var + 1). */
int
countLoopVars(const AstPtr &n)
{
    if (!n)
        return 0;
    int vars = n->kind == AstKind::For ? n->var + 1 : 0;
    for (const auto &c : n->children)
        vars = std::max(vars, countLoopVars(c));
    return vars;
}

} // namespace

AstPtr
generateAst(const schedule::ScheduleTree &tree,
            const GenOptions &options)
{
    std::vector<GeneratedBand> bands;
    return generateAst(tree, options, bands);
}

AstPtr
generateAst(const schedule::ScheduleTree &tree,
            const GenOptions &options,
            std::vector<GeneratedBand> &bands)
{
    failpoints::hit("codegen.generate");
    bands.clear();
    GenCtx ctx;
    ctx.prog = &tree.program();
    ctx.pres = &pres::fm::activeCtx();
    ctx.bands = &bands;
    // Enforce an armed budget / tripped cancel token up front; the
    // scan below re-checks through every eliminateCol it performs.
    pres::fm::checkBudget(*ctx.pres, "codegen::generateAst");
    AstPtr root = genNode(tree.root(), std::move(ctx), options);
    if (root)
        root->numLoopVars = countLoopVars(root);
    return root;
}

} // namespace codegen
} // namespace polyfuse
