/**
 * @file
 * The imperative loop AST produced by scanning schedule trees.
 *
 * Loop bounds are min/max combinations of floor/ceil-divided affine
 * expressions over the enclosing loop variables and the program
 * parameters (exactly what CLooG-family generators emit for the
 * band forms this library produces). Statement nodes carry the
 * binding of original domain dimensions to loop variables plus
 * residual guard constraints for union-bound overshoot.
 */

#ifndef POLYFUSE_CODEGEN_AST_HH
#define POLYFUSE_CODEGEN_AST_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace polyfuse {
namespace codegen {

/** One affine bound term: (coeffs . (vars, params, 1)) / div. */
struct BoundTerm
{
    std::vector<int64_t> varCoeffs;   ///< dense, one per loop var
    std::vector<int64_t> paramCoeffs; ///< dense, one per program param
    int64_t constant = 0;
    int64_t div = 1;
};

/**
 * A per-band-member bound: the max (lower) or min (upper) over its
 * terms. A loop bound combines alternatives over members with min
 * (lower) or max (upper) so the loop covers the union.
 */
using BoundAlt = std::vector<BoundTerm>;

/** One guard constraint: coeffs . (vars, params, 1) >= 0 or == 0. */
struct GuardRow
{
    bool isEq = false;
    std::vector<int64_t> varCoeffs;
    std::vector<int64_t> paramCoeffs;
    int64_t constant = 0;
};

/** Tile-local buffer promotion attached to an Alloc node. */
struct Promotion
{
    int tensor = -1;
    /** Per tensor dim: min over alternatives of max over terms. */
    std::vector<std::vector<BoundAlt>> boxLo;
    /** Per tensor dim: max over alternatives of min over terms
     *  (inclusive). */
    std::vector<std::vector<BoundAlt>> boxHi;
};

struct AstNode;
using AstPtr = std::shared_ptr<AstNode>;

/** AST node kinds. */
enum class AstKind
{
    Block, ///< ordered children
    For,   ///< loop over `var`
    Stmt,  ///< one statement instance per surrounding iteration
    Alloc, ///< scratchpad allocation scope (memory promotion)
};

/** One imperative AST node. */
struct AstNode
{
    AstKind kind = AstKind::Block;
    std::vector<AstPtr> children;

    /**
     * On the root node generateAst returns: the number of distinct
     * loop-variable slots in the tree (max For var + 1), so executors
     * can size their register files up front instead of rescanning or
     * growing lazily. -1 on hand-built ASTs (executors then fall back
     * to a scan).
     */
    int numLoopVars = -1;

    // --- For ---
    int var = -1;              ///< loop variable id (dense, 0-based)
    std::string varName;       ///< e.g. "ht", "c3"
    std::vector<BoundAlt> lb;  ///< min over members of max over terms
    std::vector<BoundAlt> ub;  ///< max over members of min over terms
    bool parallel = false;     ///< band level was coincident
    bool tileLoop = false;     ///< iterates tile coordinates
    int64_t tileSize = 0;      ///< when tileLoop
    bool permutable = false;   ///< owning band was permutable
    /** When tileLoop: index of the owning band in the GeneratedBand
     *  side table produced by generateAst (see generate.hh), -1 on
     *  non-tile loops or when no table was requested. */
    int bandId = -1;
    int bandLevel = -1;        ///< level within the owning tile band

    // --- Stmt ---
    int stmt = -1;
    /** Per domain dim: (loop var id, offset); dim = var + offset. */
    std::vector<std::pair<int, int64_t>> bindings;
    std::vector<GuardRow> guards;

    // --- Alloc ---
    std::vector<Promotion> promotions;
};

/** Factory helpers. */
inline AstPtr
astBlock()
{
    auto n = std::make_shared<AstNode>();
    n->kind = AstKind::Block;
    return n;
}

inline AstPtr
astFor(int var, std::string name)
{
    auto n = std::make_shared<AstNode>();
    n->kind = AstKind::For;
    n->var = var;
    n->varName = std::move(name);
    return n;
}

inline AstPtr
astStmt(int stmt)
{
    auto n = std::make_shared<AstNode>();
    n->kind = AstKind::Stmt;
    n->stmt = stmt;
    return n;
}

inline AstPtr
astAlloc()
{
    auto n = std::make_shared<AstNode>();
    n->kind = AstKind::Alloc;
    return n;
}

} // namespace codegen
} // namespace polyfuse

#endif // POLYFUSE_CODEGEN_AST_HH
