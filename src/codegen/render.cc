#include "codegen/render.hh"

#include <sstream>

namespace polyfuse {
namespace codegen {

using ir::Program;

std::string
renderHelperPreamble()
{
    // Real functions, not macros: rendered bounds nest
    // pf_min/pf_max tens deep on heavily fused kernels, and a macro
    // doubles the token count per nesting level -- a 20-line loop
    // nest can explode to 2^20+ preprocessed tokens and minutes of
    // cc1 time. Functions keep the source linear and inline to the
    // same code at -O2.
    return "#include <stdint.h>\n"
           "static inline int64_t pf_max(int64_t a, int64_t b)\n"
           "{ return a > b ? a : b; }\n"
           "static inline int64_t pf_min(int64_t a, int64_t b)\n"
           "{ return a < b ? a : b; }\n"
           "static inline int64_t pf_fdiv(int64_t n, int64_t d)\n"
           "{ return n >= 0 ? n / d : -((-n + d - 1) / d); }\n"
           "static inline int64_t pf_cdiv(int64_t n, int64_t d)\n"
           "{ return pf_fdiv(n + d - 1, d); }\n";
}

std::string
renderLinear(const Program &p, const BoundTerm &t,
             const std::vector<std::string> &var_names)
{
    std::ostringstream os;
    bool first = true;
    auto emit = [&](int64_t c, const std::string &name) {
        if (c == 0)
            return;
        if (first) {
            if (c == -1)
                os << "-";
            else if (c != 1)
                os << c << " * ";
        } else {
            os << (c > 0 ? " + " : " - ");
            int64_t a = c > 0 ? c : -c;
            if (a != 1)
                os << a << " * ";
        }
        os << name;
        first = false;
    };
    for (size_t v = 0; v < t.varCoeffs.size(); ++v)
        emit(t.varCoeffs[v], var_names[v]);
    for (size_t q = 0; q < t.paramCoeffs.size(); ++q)
        emit(t.paramCoeffs[q], p.params()[q]);
    if (first) {
        os << t.constant;
    } else if (t.constant > 0) {
        os << " + " << t.constant;
    } else if (t.constant < 0) {
        os << " - " << -t.constant;
    }
    return os.str();
}

std::string
renderTerm(const Program &p, const BoundTerm &t, bool is_lower,
           const std::vector<std::string> &var_names)
{
    std::string num = renderLinear(p, t, var_names);
    if (t.div == 1)
        return num;
    return std::string(is_lower ? "pf_cdiv(" : "pf_fdiv(") + num +
           ", " + std::to_string(t.div) + ")";
}

std::string
renderBound(const Program &p, const std::vector<BoundAlt> &alts,
            bool is_lower, const std::vector<std::string> &var_names)
{
    // Lower: min over alternatives of max over terms; upper dual.
    std::vector<std::string> alt_texts;
    for (const auto &alt : alts) {
        std::vector<std::string> terms;
        for (const auto &t : alt)
            terms.push_back(renderTerm(p, t, is_lower, var_names));
        std::string text = terms[0];
        for (size_t i = 1; i < terms.size(); ++i)
            text = std::string(is_lower ? "pf_max(" : "pf_min(") +
                   text + ", " + terms[i] + ")";
        alt_texts.push_back(std::move(text));
    }
    std::string out = alt_texts[0];
    for (size_t i = 1; i < alt_texts.size(); ++i)
        out = std::string(is_lower ? "pf_min(" : "pf_max(") + out +
              ", " + alt_texts[i] + ")";
    return out;
}

std::string
renderGuard(const Program &p, const GuardRow &g,
            const std::vector<std::string> &var_names)
{
    BoundTerm t;
    t.varCoeffs = g.varCoeffs;
    t.paramCoeffs = g.paramCoeffs;
    t.constant = g.constant;
    return renderLinear(p, t, var_names) +
           (g.isEq ? " == 0" : " >= 0");
}

} // namespace codegen
} // namespace polyfuse
