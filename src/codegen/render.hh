/**
 * @file
 * Shared text renderers for the affine pieces of the generated AST
 * (bound terms, min/max bound combinations, guard rows). Factored
 * out of the C pretty-printer so the native execution tier's C
 * emitter (exec/native.hh) renders the exact same arithmetic the
 * executor evaluates — one source of truth for the textual form of
 * every bound and guard.
 *
 * All renderers assume the `pf_max` / `pf_min` / `pf_fdiv` /
 * `pf_cdiv` helper preamble (see renderHelperPreamble) is in scope,
 * and spell program parameters by name — the emitting context must
 * declare them (the native emitter defines them as constants, the
 * pretty-printer leaves them symbolic).
 */

#ifndef POLYFUSE_CODEGEN_RENDER_HH
#define POLYFUSE_CODEGEN_RENDER_HH

#include <string>
#include <vector>

#include "codegen/ast.hh"
#include "ir/program.hh"

namespace polyfuse {
namespace codegen {

/** The helper definitions every rendered expression relies on. */
std::string renderHelperPreamble();

/** Render one affine numerator: coeffs over vars/params + const. */
std::string renderLinear(const ir::Program &p, const BoundTerm &t,
                         const std::vector<std::string> &var_names);

/** Render one bound term, dividing via pf_cdiv/pf_fdiv as needed. */
std::string renderTerm(const ir::Program &p, const BoundTerm &t,
                       bool is_lower,
                       const std::vector<std::string> &var_names);

/** Render a full loop/box bound (min/max over alts over terms). */
std::string renderBound(const ir::Program &p,
                        const std::vector<BoundAlt> &alts,
                        bool is_lower,
                        const std::vector<std::string> &var_names);

/** Render one guard row as a boolean C expression. */
std::string renderGuard(const ir::Program &p, const GuardRow &g,
                        const std::vector<std::string> &var_names);

} // namespace codegen
} // namespace polyfuse

#endif // POLYFUSE_CODEGEN_RENDER_HH
