/**
 * @file
 * Pretty-printers turning the generated AST into compilable-looking
 * OpenMP C or CUDA-flavoured code (the role PPCG's backends play in
 * Sec. V). The text is a faithful rendering of what the executor
 * runs; it is used by the examples and for golden tests.
 */

#ifndef POLYFUSE_CODEGEN_CPRINTER_HH
#define POLYFUSE_CODEGEN_CPRINTER_HH

#include <string>

#include "codegen/ast.hh"
#include "ir/program.hh"

namespace polyfuse {
namespace codegen {

/** Output dialect. */
enum class PrintStyle
{
    OpenMP, ///< parallel for + ivdep on the innermost parallel loop
    Cuda,   ///< outer parallel tile loops annotated as grid/block
};

/** Render @p ast as imperative code. */
std::string printCode(const ir::Program &program, const AstPtr &ast,
                      PrintStyle style = PrintStyle::OpenMP);

} // namespace codegen
} // namespace polyfuse

#endif // POLYFUSE_CODEGEN_CPRINTER_HH
