#include "service/protocol.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

#include "support/json.hh"

namespace polyfuse {
namespace service {

namespace {

/** recv() exactly @p n bytes (loops over partials/EINTR).
 *  @return n, 0 on clean EOF before any byte, -1 on error or a
 *  mid-buffer EOF. */
ssize_t
recvAll(int fd, void *buf, size_t n, std::string *error)
{
    size_t got = 0;
    while (got < n) {
        ssize_t r =
            ::recv(fd, static_cast<char *>(buf) + got, n - got, 0);
        if (r > 0) {
            got += size_t(r);
            continue;
        }
        if (r == 0) {
            if (got == 0)
                return 0;
            if (error)
                *error = "truncated frame (peer closed mid-frame)";
            return -1;
        }
        if (errno == EINTR)
            continue;
        if (error)
            *error = std::string("recv: ") + std::strerror(errno);
        return -1;
    }
    return ssize_t(n);
}

} // namespace

FrameStatus
readFrame(int fd, std::string *payload, std::string *error,
          uint32_t max_bytes)
{
    unsigned char hdr[4];
    ssize_t r = recvAll(fd, hdr, sizeof(hdr), error);
    if (r == 0)
        return FrameStatus::Eof;
    if (r < 0)
        return FrameStatus::Error;
    uint32_t len = uint32_t(hdr[0]) | (uint32_t(hdr[1]) << 8) |
                   (uint32_t(hdr[2]) << 16) |
                   (uint32_t(hdr[3]) << 24);
    if (len > max_bytes) {
        if (error)
            *error = "frame of " + std::to_string(len) +
                     " bytes exceeds the " +
                     std::to_string(max_bytes) + "-byte cap";
        return FrameStatus::Oversized;
    }
    payload->assign(len, '\0');
    if (len > 0) {
        ssize_t pr = recvAll(fd, &(*payload)[0], len, error);
        if (pr <= 0) {
            // recvAll reports 0 (clean EOF before any payload byte)
            // without a diagnostic; past a header that is still a
            // truncated frame, not a clean end of stream.
            if (pr == 0 && error)
                *error = "truncated frame (peer closed after frame "
                         "header)";
            return FrameStatus::Error;
        }
    }
    return FrameStatus::Ok;
}

bool
writeFrame(int fd, const std::string &payload, std::string *error)
{
    if (payload.size() > UINT32_MAX) {
        if (error)
            *error = "payload too large to frame";
        return false;
    }
    uint32_t len = uint32_t(payload.size());
    unsigned char hdr[4] = {
        (unsigned char)(len & 0xff),
        (unsigned char)((len >> 8) & 0xff),
        (unsigned char)((len >> 16) & 0xff),
        (unsigned char)((len >> 24) & 0xff),
    };
    std::string buf(reinterpret_cast<char *>(hdr), sizeof(hdr));
    buf += payload;
    size_t sent = 0;
    while (sent < buf.size()) {
        ssize_t w = ::send(fd, buf.data() + sent, buf.size() - sent,
                           MSG_NOSIGNAL);
        if (w > 0) {
            sent += size_t(w);
            continue;
        }
        if (w < 0 && errno == EINTR)
            continue;
        if (error)
            *error = std::string("send: ") + std::strerror(errno);
        return false;
    }
    return true;
}

const char *
errorKindName(ErrorKind kind)
{
    switch (kind) {
    case ErrorKind::None:       return "";
    case ErrorKind::BadRequest: return "badrequest";
    case ErrorKind::Overloaded: return "overloaded";
    case ErrorKind::Timeout:    return "timeout";
    case ErrorKind::Cancelled:  return "cancelled";
    case ErrorKind::Fatal:      return "fatal";
    case ErrorKind::Panic:      return "panic";
    case ErrorKind::Internal:   return "internal";
    case ErrorKind::Oversized:  return "oversized";
    case ErrorKind::Shutdown:   return "shutdown";
    }
    return "";
}

bool
parseErrorKind(const std::string &name, ErrorKind *out)
{
    static const ErrorKind kinds[] = {
        ErrorKind::BadRequest, ErrorKind::Overloaded,
        ErrorKind::Timeout,    ErrorKind::Cancelled,
        ErrorKind::Fatal,      ErrorKind::Panic,
        ErrorKind::Internal,   ErrorKind::Oversized,
        ErrorKind::Shutdown,
    };
    for (ErrorKind k : kinds) {
        if (name == errorKindName(k)) {
            *out = k;
            return true;
        }
    }
    return false;
}

namespace {

bool
asUint(const json::Value &v, uint64_t *out)
{
    if (!v.isNumber() || v.number < 0 ||
        v.number != std::floor(v.number) || v.number > 1e18)
        return false;
    *out = uint64_t(v.number);
    return true;
}

bool
asTiles(const json::Value &v, std::vector<int64_t> *out)
{
    if (!v.isArray())
        return false;
    out->clear();
    for (const auto &e : v.array) {
        uint64_t t;
        if (!asUint(e, &t) || t == 0 || t > (1u << 30))
            return false;
        out->push_back(int64_t(t));
    }
    return true;
}

std::string
tilesJson(const std::vector<int64_t> &tiles)
{
    std::string out = "[";
    for (size_t i = 0; i < tiles.size(); ++i) {
        if (i)
            out += ", ";
        out += std::to_string(tiles[i]);
    }
    return out + "]";
}

std::string
numJson(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    return std::string(buf);
}

bool
fail(std::string *error, const std::string &msg)
{
    if (error)
        *error = msg;
    return false;
}

} // namespace

std::string
encodeRequest(const Request &req)
{
    std::string out = "{\"op\": \"" + json::escape(req.op) + "\"";
    out += ", \"id\": " + std::to_string(req.id);
    out += ", \"workload\": \"" + json::escape(req.workload) + "\"";
    if (req.rows > 0)
        out += ", \"rows\": " + std::to_string(req.rows);
    if (req.cols > 0)
        out += ", \"cols\": " + std::to_string(req.cols);
    out += ", \"strategy\": \"" + json::escape(req.strategy) + "\"";
    if (req.tilesGiven)
        out += ", \"tiles\": " + tilesJson(req.tiles);
    if (!req.innerTiles.empty())
        out += ", \"innerTiles\": " + tilesJson(req.innerTiles);
    out += ", \"tier\": \"" + json::escape(req.tier) + "\"";
    out += std::string(", \"run\": ") +
           (req.run ? "true" : "false");
    if (req.deadlineMs > 0)
        out += ", \"deadlineMs\": " + numJson(req.deadlineMs);
    out += ", \"threads\": " + std::to_string(req.threads);
    out += ", \"par\": \"" + json::escape(req.par) + "\"";
    out += ", \"simd\": \"" + json::escape(req.simd) + "\"";
    return out + "}";
}

bool
decodeRequest(const std::string &payload, Request *out,
              std::string *error)
{
    json::Value root;
    if (!json::parse(payload, &root, error))
        return false;
    if (!root.isObject())
        return fail(error, "request must be a JSON object");

    Request req;
    for (const auto &kv : root.object) {
        const std::string &key = kv.first;
        const json::Value &v = kv.second;
        uint64_t u;
        if (key == "op") {
            if (!v.isString())
                return fail(error, "op must be a string");
            req.op = v.string;
        } else if (key == "id") {
            if (!asUint(v, &req.id))
                return fail(error, "id must be a non-negative "
                                   "integer");
        } else if (key == "workload") {
            if (!v.isString())
                return fail(error, "workload must be a string");
            req.workload = v.string;
        } else if (key == "rows") {
            if (!asUint(v, &u) || u > (1u << 24))
                return fail(error, "rows out of range");
            req.rows = int64_t(u);
        } else if (key == "cols") {
            if (!asUint(v, &u) || u > (1u << 24))
                return fail(error, "cols out of range");
            req.cols = int64_t(u);
        } else if (key == "strategy") {
            if (!v.isString())
                return fail(error, "strategy must be a string");
            req.strategy = v.string;
        } else if (key == "tiles") {
            if (!asTiles(v, &req.tiles))
                return fail(error, "tiles must be an array of "
                                   "positive integers");
            req.tilesGiven = true;
        } else if (key == "innerTiles") {
            if (!asTiles(v, &req.innerTiles))
                return fail(error, "innerTiles must be an array of "
                                   "positive integers");
        } else if (key == "tier") {
            if (!v.isString())
                return fail(error, "tier must be a string");
            req.tier = v.string;
        } else if (key == "run") {
            if (!v.isBool())
                return fail(error, "run must be a boolean");
            req.run = v.boolean;
        } else if (key == "deadlineMs") {
            if (!v.isNumber() || v.number < 0 || v.number > 1e9)
                return fail(error, "deadlineMs out of range");
            req.deadlineMs = v.number;
        } else if (key == "threads") {
            if (!asUint(v, &u) || u > 4096)
                return fail(error, "threads out of range");
            req.threads = unsigned(u);
        } else if (key == "par") {
            if (!v.isString())
                return fail(error, "par must be a string");
            req.par = v.string;
        } else if (key == "simd") {
            if (!v.isString())
                return fail(error, "simd must be a string");
            req.simd = v.string;
        } else {
            return fail(error, "unknown request field '" + key +
                                   "'");
        }
    }
    if (req.op != "compile" && req.op != "ping" &&
        req.op != "stats" && req.op != "shutdown")
        return fail(error, "unknown op '" + req.op + "'");
    if (req.op == "compile" && req.workload.empty())
        return fail(error, "compile needs a workload");
    *out = req;
    return true;
}

std::string
encodeResponse(const Response &resp)
{
    std::string out = "{\"id\": " + std::to_string(resp.id);
    out += std::string(", \"ok\": ") + (resp.ok ? "true" : "false");
    if (!resp.ok) {
        out += ", \"error\": {\"kind\": \"";
        out += errorKindName(resp.kind);
        out += "\", \"message\": \"" + json::escape(resp.message) +
               "\"}";
    } else {
        out += ", \"result\": {";
        out += "\"fingerprint\": \"" +
               json::escape(resp.fingerprint) + "\"";
        out += ", \"requestedTier\": \"" +
               json::escape(resp.requestedTier) + "\"";
        out += ", \"tier\": \"" + json::escape(resp.tier) + "\"";
        out += ", \"strategy\": \"" + json::escape(resp.strategy) +
               "\"";
        out += ", \"requestedStrategy\": \"" +
               json::escape(resp.requestedStrategy) + "\"";
        out += ", \"fallbackTrail\": [";
        for (size_t i = 0; i < resp.fallbackTrail.size(); ++i) {
            if (i)
                out += ", ";
            out += "\"" + json::escape(resp.fallbackTrail[i]) + "\"";
        }
        out += "]";
        out += ", \"tierFallbackReason\": \"" +
               json::escape(resp.tierFallbackReason) + "\"";
        out += std::string(", \"fromCache\": ") +
               (resp.fromCache ? "true" : "false");
        out += std::string(", \"downgraded\": ") +
               (resp.downgraded ? "true" : "false");
        out += ", \"compileMs\": " + numJson(resp.compileMs);
        out += ", \"runMs\": " + numJson(resp.runMs);
        out += ", \"queueMs\": " + numJson(resp.queueMs);
        out += ", \"retries\": " + std::to_string(resp.retries);
        out += ", \"bufferHash\": \"" +
               json::escape(resp.bufferHash) + "\"";
        out += ", \"backend\": \"" + json::escape(resp.backend) +
               "\"";
        out += "}";
    }
    if (resp.server.present) {
        const ServerStats &s = resp.server;
        out += ", \"server\": {";
        out += "\"accepted\": " + std::to_string(s.accepted);
        out += ", \"completed\": " + std::to_string(s.completed);
        out += ", \"shed\": " + std::to_string(s.shed);
        out += ", \"retries\": " + std::to_string(s.retries);
        out += ", \"errors\": " + std::to_string(s.errors);
        out += ", \"timeouts\": " + std::to_string(s.timeouts);
        out += ", \"cacheHits\": " + std::to_string(s.cacheHits);
        out += "}";
    }
    return out + "}";
}

namespace {

bool
decodeResult(const json::Value &v, Response *resp,
             std::string *error)
{
    if (!v.isObject())
        return fail(error, "result must be an object");
    for (const auto &kv : v.object) {
        const std::string &key = kv.first;
        const json::Value &f = kv.second;
        uint64_t u;
        if (key == "fingerprint" || key == "requestedTier" ||
            key == "tier" || key == "strategy" ||
            key == "requestedStrategy" ||
            key == "tierFallbackReason" || key == "bufferHash" ||
            key == "backend") {
            if (!f.isString())
                return fail(error, key + " must be a string");
            std::string Response::*member =
                key == "fingerprint"    ? &Response::fingerprint
                : key == "requestedTier" ? &Response::requestedTier
                : key == "tier"          ? &Response::tier
                : key == "strategy"      ? &Response::strategy
                : key == "requestedStrategy"
                    ? &Response::requestedStrategy
                : key == "tierFallbackReason"
                    ? &Response::tierFallbackReason
                : key == "bufferHash" ? &Response::bufferHash
                                      : &Response::backend;
            resp->*member = f.string;
        } else if (key == "fallbackTrail") {
            if (!f.isArray())
                return fail(error, "fallbackTrail must be an array");
            for (const auto &e : f.array) {
                if (!e.isString())
                    return fail(error,
                                "fallbackTrail entries must be "
                                "strings");
                resp->fallbackTrail.push_back(e.string);
            }
        } else if (key == "fromCache" || key == "downgraded") {
            if (!f.isBool())
                return fail(error, key + " must be a boolean");
            (key == "fromCache" ? resp->fromCache
                                : resp->downgraded) = f.boolean;
        } else if (key == "compileMs" || key == "runMs" ||
                   key == "queueMs") {
            if (!f.isNumber() || f.number < 0)
                return fail(error, key + " out of range");
            (key == "compileMs"  ? resp->compileMs
             : key == "runMs"    ? resp->runMs
                                 : resp->queueMs) = f.number;
        } else if (key == "retries") {
            if (!asUint(f, &u) || u > 1000)
                return fail(error, "retries out of range");
            resp->retries = unsigned(u);
        } else {
            return fail(error,
                        "unknown result field '" + key + "'");
        }
    }
    return true;
}

bool
decodeServer(const json::Value &v, ServerStats *s,
             std::string *error)
{
    if (!v.isObject())
        return fail(error, "server must be an object");
    s->present = true;
    for (const auto &kv : v.object) {
        uint64_t u;
        if (!asUint(kv.second, &u))
            return fail(error, "server counters must be "
                               "non-negative integers");
        if (kv.first == "accepted")
            s->accepted = u;
        else if (kv.first == "completed")
            s->completed = u;
        else if (kv.first == "shed")
            s->shed = u;
        else if (kv.first == "retries")
            s->retries = u;
        else if (kv.first == "errors")
            s->errors = u;
        else if (kv.first == "timeouts")
            s->timeouts = u;
        else if (kv.first == "cacheHits")
            s->cacheHits = u;
        else
            return fail(error, "unknown server counter '" +
                                   kv.first + "'");
    }
    return true;
}

} // namespace

bool
decodeResponse(const std::string &payload, Response *out,
               std::string *error)
{
    json::Value root;
    if (!json::parse(payload, &root, error))
        return false;
    if (!root.isObject())
        return fail(error, "response must be a JSON object");

    Response resp;
    bool saw_ok = false;
    for (const auto &kv : root.object) {
        const std::string &key = kv.first;
        const json::Value &v = kv.second;
        if (key == "id") {
            if (!asUint(v, &resp.id))
                return fail(error, "id must be a non-negative "
                                   "integer");
        } else if (key == "ok") {
            if (!v.isBool())
                return fail(error, "ok must be a boolean");
            resp.ok = v.boolean;
            saw_ok = true;
        } else if (key == "error") {
            if (!v.isObject())
                return fail(error, "error must be an object");
            const json::Value *kind = v.get("kind");
            const json::Value *msg = v.get("message");
            if (!kind || !kind->isString() || !msg ||
                !msg->isString())
                return fail(error, "error needs string kind and "
                                   "message");
            if (!parseErrorKind(kind->string, &resp.kind))
                return fail(error, "unknown error kind '" +
                                       kind->string + "'");
            resp.message = msg->string;
        } else if (key == "result") {
            if (!decodeResult(v, &resp, error))
                return false;
        } else if (key == "server") {
            if (!decodeServer(v, &resp.server, error))
                return false;
        } else {
            return fail(error, "unknown response field '" + key +
                                   "'");
        }
    }
    if (!saw_ok)
        return fail(error, "response missing 'ok'");
    if (!resp.ok && resp.kind == ErrorKind::None)
        return fail(error, "error response missing 'error'");
    *out = resp;
    return true;
}

} // namespace service
} // namespace polyfuse
