#include "service/client.hh"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace polyfuse {
namespace service {

Client::~Client()
{
    close();
}

Client::Client(Client &&other) noexcept : fd_(other.fd_)
{
    other.fd_ = -1;
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

bool
Client::connect(const std::string &path, std::string *error)
{
    close();
    sockaddr_un addr;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "socket path empty or too long";
        return false;
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size());
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (error)
            *error = std::string("connect ") + path + ": " +
                     std::strerror(errno);
        close();
        return false;
    }
    return true;
}

bool
Client::call(const Request &req, Response *resp, std::string *error)
{
    if (fd_ < 0) {
        if (error)
            *error = "not connected";
        return false;
    }
    if (!writeFrame(fd_, encodeRequest(req), error)) {
        close();
        return false;
    }
    std::string payload;
    FrameStatus st = readFrame(fd_, &payload, error);
    if (st != FrameStatus::Ok) {
        if (st == FrameStatus::Eof && error)
            *error = "server closed the connection";
        close();
        return false;
    }
    if (!decodeResponse(payload, resp, error)) {
        close();
        return false;
    }
    return true;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace service
} // namespace polyfuse
