#include "service/client.hh"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

namespace polyfuse {
namespace service {

Client::~Client()
{
    close();
}

Client::Client(Client &&other) noexcept : fd_(other.fd_)
{
    other.fd_ = -1;
}

Client &
Client::operator=(Client &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

bool
Client::connect(const std::string &path, std::string *error)
{
    close();
    sockaddr_un addr;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "socket path empty or too long";
        return false;
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size());
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        if (error)
            *error = std::string("connect ") + path + ": " +
                     std::strerror(errno);
        close();
        return false;
    }
    return true;
}

namespace {

/** Arm/disarm SO_RCVTIMEO; ms <= 0 restores "block forever". */
void
setRecvTimeoutOpt(int fd, double ms)
{
    timeval tv;
    tv.tv_sec = ms > 0 ? time_t(ms / 1000.0) : 0;
    tv.tv_usec =
        ms > 0 ? suseconds_t((ms - double(tv.tv_sec) * 1000.0) * 1000.0)
               : 0;
    if (ms > 0 && tv.tv_sec == 0 && tv.tv_usec == 0)
        tv.tv_usec = 1; // a zero timeval would mean "no timeout"
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

} // namespace

bool
Client::call(const Request &req, Response *resp, std::string *error)
{
    if (fd_ < 0) {
        if (error)
            *error = "not connected";
        return false;
    }
    if (!writeFrame(fd_, encodeRequest(req), error)) {
        close();
        return false;
    }
    // The server enforces req.deadlineMs; the client-side cap only
    // guards against a server that wedged before answering at all.
    double timeout_ms = recvTimeoutMs_;
    if (timeout_ms <= 0 && req.deadlineMs > 0)
        timeout_ms = req.deadlineMs + kDeadlineSlackMs;
    if (timeout_ms > 0)
        setRecvTimeoutOpt(fd_, timeout_ms);
    std::string payload;
    FrameStatus st = readFrame(fd_, &payload, error);
    int recv_errno = errno;
    if (timeout_ms > 0)
        setRecvTimeoutOpt(fd_, 0);
    if (st != FrameStatus::Ok) {
        if (st == FrameStatus::Eof && error)
            *error = "server closed the connection";
        else if (st == FrameStatus::Error && timeout_ms > 0 &&
                 (recv_errno == EAGAIN ||
                  recv_errno == EWOULDBLOCK) &&
                 error)
            *error = "timed out after " +
                     std::to_string(timeout_ms) +
                     " ms waiting for the response";
        close();
        return false;
    }
    if (!decodeResponse(payload, resp, error)) {
        close();
        return false;
    }
    return true;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

} // namespace service
} // namespace polyfuse
