/**
 * @file
 * The hardened compile service: a long-lived daemon that accepts
 * Requests over a unix-domain socket, compiles/executes them through
 * the same driver::compileKernel path the CLI uses, and answers with
 * typed Responses -- `polyfuse --serve <socket>`.
 *
 * Robustness model (DESIGN.md section 11):
 *
 *  - Admission control: a bounded queue. When the number of admitted
 *    but unfinished requests reaches maxQueueDepth, or their summed
 *    frame bytes exceed maxInflightBytes, new compile requests are
 *    shed immediately with ErrorKind::Overloaded -- the daemon
 *    answers "come back later" in microseconds instead of building
 *    an unbounded backlog.
 *
 *  - Deadlines: a request's deadlineMs covers queue wait + compile +
 *    run. The remaining allowance after the queue wait arms the
 *    per-request support::Budget (so the whole pres/codegen chain
 *    enforces it cooperatively), and the per-request CancelToken is
 *    chained to the server token so shutdown cancels in-flight work.
 *    An expired deadline is ErrorKind::Timeout.
 *
 *  - Retries: only *transient* native-tier failures retry, per
 *    support/retry.hh's policy, then degrade to the bytecode tier.
 *    BudgetExceeded rides the driver's strategy-fallback ladder and
 *    is never retried; FatalError/PanicError are never retried.
 *
 *  - Fault isolation: every per-request exception -- including ones
 *    injected via the `service.handle` failpoint -- becomes a typed
 *    error response on that request's connection; the daemon keeps
 *    serving everyone else. Worker threads never die (ThreadPool
 *    contains escaped exceptions as a second line of defense).
 *
 *  - Graceful drain: stop() (triggered by a `shutdown` request or
 *    the CLI's signal watcher) closes the listener, drains the pool
 *    with a deadline, cancels whatever is still running, answers
 *    abandoned queued requests with ErrorKind::Shutdown (RAII reply
 *    guards fire when the pool destroys their closures), flushes the
 *    tuning store, and unlinks the socket.
 *
 * Hot requests hit the process-wide exec::KernelCache, so repeat
 * compiles of the same (program, options, tier) key skip the whole
 * Presburger/codegen pipeline; responses say so (fromCache).
 */

#ifndef POLYFUSE_SERVICE_SERVER_HH
#define POLYFUSE_SERVICE_SERVER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/executor.hh"
#include "service/protocol.hh"
#include "support/budget.hh"
#include "support/retry.hh"
#include "support/thread_pool.hh"

namespace polyfuse {

namespace perfmodel {
class TuneDb;
}

namespace service {

/** Tunables of one Server. */
struct ServerOptions
{
    /** Compile worker threads (0: hardware concurrency). */
    unsigned workers = 4;

    /** Admission cap: admitted-but-unfinished compile requests. */
    size_t maxQueueDepth = 16;

    /** Admission cap: summed request-frame bytes in flight. */
    uint64_t maxInflightBytes = 8ull * 1024 * 1024;

    /** Per-frame payload cap (both directions). */
    uint32_t maxFrameBytes = kMaxFrameBytes;

    /** Drain deadline of stop(), milliseconds (<= 0: forever). */
    double drainMs = 2000;

    /** Backoff schedule for transient native-tier failures. */
    RetryPolicy nativeRetry;

    /** Serve artifacts from the process-wide KernelCache. */
    bool useKernelCache = true;

    /** Tuning store to flush on shutdown (optional, not owned). */
    perfmodel::TuneDb *tuneDb = nullptr;

    /** Test hook: runs at the start of every compile handler (on
     *  the worker thread, after the queue wait is measured). The
     *  overload tests park workers here deterministically. */
    std::function<void(const Request &)> handlerHook;
};

/** The daemon. One instance per socket; start() then run()/stop(). */
class Server
{
  public:
    explicit Server(std::string socket_path, ServerOptions opts = {});

    /** stop()s if still running. */
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind + listen + spawn the accept thread. @return false with
     *  a diagnostic when the socket cannot be created. */
    bool start(std::string *error);

    /** Block until a `shutdown` request arrives (or @p ms elapses,
     *  when ms > 0). @return true once shutdown was requested. */
    bool waitForShutdownRequest(double ms = 0);

    /** Graceful drain (see file comment). Idempotent, thread-safe;
     *  callable from any thread except a pool worker. */
    void stop();

    /** start() + serve until a shutdown request + stop(). The
     *  optional @p poll_ms hook returns true to trigger shutdown
     *  (the CLI's signal watcher). */
    int run(const std::function<bool()> &interrupted = nullptr,
            double poll_ms = 200);

    const std::string &socketPath() const { return path_; }

    /** Aggregate counters (also served by the "stats" op). */
    ServerStats stats() const;

  private:
    struct Conn;
    struct ReplyGuard;

    void acceptLoop();
    void readerLoop(std::shared_ptr<Conn> conn);
    void dispatch(const std::shared_ptr<Conn> &conn,
                  const std::string &payload);
    void handleCompile(const Request &req,
                       const std::shared_ptr<ReplyGuard> &guard,
                       double queue_ms);
    void sendResponse(const std::shared_ptr<Conn> &conn,
                      const Response &resp);
    void sendError(const std::shared_ptr<Conn> &conn, uint64_t id,
                   ErrorKind kind, const std::string &message);

    std::string path_;
    ServerOptions opts_;
    int listenFd_ = -1;
    std::unique_ptr<ThreadPool> pool_;
    std::thread acceptThread_;
    CancelToken cancel_; ///< parent of every request token

    mutable std::mutex mu_;
    std::condition_variable shutdownCv_;
    bool started_ = false;
    bool stopped_ = false;
    std::atomic<bool> accepting_{false};
    std::atomic<bool> shutdownRequested_{false};

    /** Live connections only: a reader erases its Conn (and counts
     *  itself out of activeReaders_) on exit, so connection churn
     *  never accumulates fds or thread handles. Reader threads are
     *  detached; stop() waits on readersCv_ for the count to reach
     *  zero before tearing anything down they could touch. */
    std::vector<std::shared_ptr<Conn>> conns_;
    size_t activeReaders_ = 0; ///< guarded by mu_
    std::condition_variable readersCv_;

    std::atomic<size_t> inflight_{0};       ///< admitted, unfinished
    std::atomic<uint64_t> inflightBytes_{0}; ///< their frame bytes

    struct Counters
    {
        std::atomic<uint64_t> accepted{0};
        std::atomic<uint64_t> completed{0};
        std::atomic<uint64_t> shed{0};
        std::atomic<uint64_t> retries{0};
        std::atomic<uint64_t> errors{0};
        std::atomic<uint64_t> timeouts{0};
        std::atomic<uint64_t> cacheHits{0};
    } counters_;
};

/**
 * FNV hash over the bit patterns of every tensor buffer (in tensor
 * order), as a 16-hex-digit string -- the bit-identity witness
 * responses carry so clients and tests can compare a service run
 * against a direct driver::compileKernel run without shipping the
 * buffers themselves.
 */
std::string hashBuffers(const exec::Buffers &buffers);

/**
 * The canonical input fill of the service (and the CLI): equake gets
 * workloads::initEquakeInputs with seed 11, everything else
 * fillPattern(t, 1000 + t) on the non-Temp tensors. Exposed so tests
 * and benchmarks reproduce bit-identical direct runs.
 */
void fillServiceInputs(const ir::Program &program,
                       exec::Buffers &buffers);

} // namespace service
} // namespace polyfuse

#endif // POLYFUSE_SERVICE_SERVER_HH
