/**
 * @file
 * Client side of the compile service: connect to a `polyfuse
 * --serve` socket, send one Request per call(), read the matching
 * Response -- `polyfuse --connect <socket>` and the service tests
 * both go through this class.
 *
 * The client is deliberately synchronous (one outstanding request
 * per connection); concurrency comes from opening more connections,
 * which is also how the tests exercise the server's admission
 * control and per-connection fault isolation.
 */

#ifndef POLYFUSE_SERVICE_CLIENT_HH
#define POLYFUSE_SERVICE_CLIENT_HH

#include <string>

#include "service/protocol.hh"

namespace polyfuse {
namespace service {

/** One connection to a serving daemon. */
class Client
{
  public:
    Client() = default;

    /** Closes the connection. */
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;

    /** Connect to the unix socket at @p path. @return false with a
     *  diagnostic when the daemon is not reachable. */
    bool connect(const std::string &path, std::string *error);

    /** True while the socket is open. */
    bool connected() const { return fd_ >= 0; }

    /**
     * Send @p req and block for the response. @return false with a
     * diagnostic on transport errors (the connection is then dead);
     * typed service errors come back as resp->ok == false with
     * resp->kind set and are *not* transport failures.
     */
    bool call(const Request &req, Response *resp,
              std::string *error);

    /** Close the connection (idempotent). */
    void close();

    int fd() const { return fd_; }

  private:
    int fd_ = -1;
};

} // namespace service
} // namespace polyfuse

#endif // POLYFUSE_SERVICE_CLIENT_HH
