/**
 * @file
 * Client side of the compile service: connect to a `polyfuse
 * --serve` socket, send one Request per call(), read the matching
 * Response -- `polyfuse --connect <socket>` and the service tests
 * both go through this class.
 *
 * The client is deliberately synchronous (one outstanding request
 * per connection); concurrency comes from opening more connections,
 * which is also how the tests exercise the server's admission
 * control and per-connection fault isolation.
 */

#ifndef POLYFUSE_SERVICE_CLIENT_HH
#define POLYFUSE_SERVICE_CLIENT_HH

#include <string>

#include "service/protocol.hh"

namespace polyfuse {
namespace service {

/** One connection to a serving daemon. */
class Client
{
  public:
    Client() = default;

    /** Closes the connection. */
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&other) noexcept;
    Client &operator=(Client &&other) noexcept;

    /** Connect to the unix socket at @p path. @return false with a
     *  diagnostic when the daemon is not reachable. */
    bool connect(const std::string &path, std::string *error);

    /** True while the socket is open. */
    bool connected() const { return fd_ >= 0; }

    /**
     * Send @p req and block for the response. @return false with a
     * diagnostic on transport errors (the connection is then dead);
     * typed service errors come back as resp->ok == false with
     * resp->kind set and are *not* transport failures.
     *
     * The wait for the response is bounded: an explicit
     * setRecvTimeout() cap wins; otherwise a request carrying a
     * deadlineMs waits deadlineMs + kDeadlineSlackMs (the server
     * enforces the deadline, the slack covers its answer reaching
     * us) -- a wedged server then fails the call with a "timed out"
     * diagnostic instead of hanging the client forever. With
     * neither, the call blocks indefinitely (status-op clients).
     */
    bool call(const Request &req, Response *resp,
              std::string *error);

    /** Grace on top of deadlineMs before call() gives up on a
     *  response the server should have produced by its own
     *  deadline enforcement. */
    static constexpr double kDeadlineSlackMs = 10000;

    /** Cap every call()'s wait for a response at @p ms (applies per
     *  read; <= 0 restores the default deadline-derived behavior
     *  described at call()). */
    void setRecvTimeout(double ms) { recvTimeoutMs_ = ms; }

    /** Close the connection (idempotent). */
    void close();

    int fd() const { return fd_; }

  private:
    int fd_ = -1;
    double recvTimeoutMs_ = 0; ///< explicit cap; 0: deadline-derived
};

} // namespace service
} // namespace polyfuse

#endif // POLYFUSE_SERVICE_CLIENT_HH
