#include "service/server.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "driver/artifact.hh"
#include "driver/compile_context.hh"
#include "driver/pipeline.hh"
#include "driver/registry.hh"
#include "exec/engine.hh"
#include "exec/kernel_cache.hh"
#include "perfmodel/tune_db.hh"
#include "pres/row_hash.hh"
#include "support/failpoint.hh"
#include "support/logging.hh"
#include "workloads/equake.hh"

namespace polyfuse {
namespace service {

namespace {

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

std::string
hashBuffers(const exec::Buffers &buffers)
{
    uint64_t h = pres::kFnvOffset;
    for (size_t t = 0; t < buffers.numTensors(); ++t) {
        const std::vector<double> &d = buffers.data(int(t));
        h = pres::fnvMix(h, uint64_t(d.size()));
        for (double x : d) {
            uint64_t bits;
            std::memcpy(&bits, &x, sizeof(bits));
            h = pres::fnvMix(h, bits);
        }
    }
    h = pres::hashFinalize(h);
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  (unsigned long long)h);
    return std::string(buf);
}

void
fillServiceInputs(const ir::Program &program, exec::Buffers &buffers)
{
    if (program.name() == "equake") {
        workloads::initEquakeInputs(program, buffers, 11);
        return;
    }
    for (size_t t = 0; t < program.tensors().size(); ++t)
        if (program.tensor(t).kind != ir::TensorKind::Temp)
            buffers.fillPattern(t, 1000 + t);
}

/** One accepted connection; the fd closes at the last reference. */
struct Server::Conn
{
    int fd = -1;
    std::mutex writeMu; ///< responses from any thread serialize here

    ~Conn()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

/**
 * RAII reply obligation of one admitted compile request. Exactly one
 * response leaves per admission: the handler replies through it, and
 * if the closure is destroyed *unrun* (pool drain during shutdown)
 * the destructor answers with ErrorKind::Shutdown -- a client never
 * hangs on an abandoned request. Also releases the admission
 * accounting (inflight count + bytes) whichever way it ends.
 */
struct Server::ReplyGuard
{
    Server *srv;
    std::shared_ptr<Conn> conn;
    uint64_t id;
    uint64_t bytes;
    std::chrono::steady_clock::time_point admitted;
    bool answered = false;

    ReplyGuard(Server *s, std::shared_ptr<Conn> c, uint64_t req_id,
               uint64_t frame_bytes)
        : srv(s), conn(std::move(c)), id(req_id),
          bytes(frame_bytes),
          admitted(std::chrono::steady_clock::now())
    {
    }

    void
    reply(const Response &resp)
    {
        answered = true;
        srv->sendResponse(conn, resp);
        ++srv->counters_.completed;
    }

    ~ReplyGuard()
    {
        if (!answered) {
            Response resp;
            resp.id = id;
            resp.ok = false;
            resp.kind = ErrorKind::Shutdown;
            resp.message =
                "server shut down before the request ran";
            srv->sendResponse(conn, resp);
            ++srv->counters_.errors;
            ++srv->counters_.completed;
        }
        --srv->inflight_;
        srv->inflightBytes_ -= bytes;
    }
};

Server::Server(std::string socket_path, ServerOptions opts)
    : path_(std::move(socket_path)), opts_(std::move(opts))
{
}

Server::~Server()
{
    stop();
}

bool
Server::start(std::string *error)
{
    sockaddr_un addr;
    if (path_.empty() || path_.size() >= sizeof(addr.sun_path)) {
        if (error)
            *error = "socket path empty or longer than " +
                     std::to_string(sizeof(addr.sun_path) - 1) +
                     " bytes";
        return false;
    }
    // A stale socket file from a crashed daemon would fail the bind;
    // the path is ours by contract, so reclaim it.
    ::unlink(path_.c_str());

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path_.c_str(), path_.size());
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd_, 64) != 0) {
        if (error)
            *error = std::string("bind/listen ") + path_ + ": " +
                     std::strerror(errno);
        ::close(listenFd_);
        listenFd_ = -1;
        return false;
    }

    pool_ = std::make_unique<ThreadPool>(opts_.workers);
    {
        std::lock_guard<std::mutex> lock(mu_);
        started_ = true;
        stopped_ = false;
    }
    accepting_.store(true);
    acceptThread_ = std::thread(&Server::acceptLoop, this);
    return true;
}

void
Server::acceptLoop()
{
    while (accepting_.load()) {
        pollfd p;
        p.fd = listenFd_;
        p.events = POLLIN;
        p.revents = 0;
        int r = ::poll(&p, 1, 200);
        if (r <= 0)
            continue; // timeout or EINTR; re-check accepting_
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == EAGAIN ||
                errno == ECONNABORTED)
                continue;
            if (errno == EMFILE || errno == ENFILE ||
                errno == ENOMEM || errno == EPROTO) {
                // Resource exhaustion is a load condition, not a
                // dead listener: keep the accept thread alive so
                // the daemon recovers when pressure subsides.
                warn(std::string("service: accept: ") +
                     std::strerror(errno) + " (transient; retrying)");
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(50));
                continue;
            }
            break; // EBADF/EINVAL etc.: listener closed by stop()
        }
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        std::lock_guard<std::mutex> lock(mu_);
        if (!accepting_.load())
            break; // conn closes via its destructor
        conns_.push_back(conn);
        ++activeReaders_;
        // Detached: the reader reaps itself on exit (see
        // readerLoop); stop() waits for activeReaders_ to hit zero.
        std::thread(&Server::readerLoop, this, conn).detach();
    }
}

void
Server::readerLoop(std::shared_ptr<Conn> conn)
{
    while (true) {
        std::string payload, err;
        FrameStatus st = readFrame(conn->fd, &payload, &err,
                                   opts_.maxFrameBytes);
        if (st == FrameStatus::Ok) {
            dispatch(conn, payload);
            continue;
        }
        if (st == FrameStatus::Oversized) {
            // The stream position is unrecoverable past an oversized
            // announcement: answer, then hang up.
            ++counters_.errors;
            sendError(conn, 0, ErrorKind::Oversized, err);
        }
        break; // Eof / Error / Oversized all end the connection
    }
    ::shutdown(conn->fd, SHUT_RDWR);

    // Reap this connection now instead of at stop(): under
    // connection churn the daemon must not accumulate open fds or
    // dead thread handles for its lifetime. The fd itself closes
    // when the last Conn reference drops (in-flight ReplyGuards may
    // still hold one). The notify happens under mu_ so stop() cannot
    // observe a zero count and destroy the Server while this thread
    // still touches it.
    std::lock_guard<std::mutex> lock(mu_);
    conns_.erase(std::remove(conns_.begin(), conns_.end(), conn),
                 conns_.end());
    --activeReaders_;
    readersCv_.notify_all();
}

void
Server::dispatch(const std::shared_ptr<Conn> &conn,
                 const std::string &payload)
{
    Request req;
    std::string err;
    if (!decodeRequest(payload, &req, &err)) {
        ++counters_.errors;
        sendError(conn, 0, ErrorKind::BadRequest, err);
        return;
    }

    if (req.op == "ping") {
        Response resp;
        resp.id = req.id;
        resp.ok = true;
        sendResponse(conn, resp);
        return;
    }
    if (req.op == "stats") {
        Response resp;
        resp.id = req.id;
        resp.ok = true;
        resp.server = stats();
        sendResponse(conn, resp);
        return;
    }
    if (req.op == "shutdown") {
        Response resp;
        resp.id = req.id;
        resp.ok = true;
        sendResponse(conn, resp);
        // Publish under mu_: waitForShutdownRequest() evaluates its
        // predicate under the same mutex, so a store+notify outside
        // it could land between the predicate check and the block,
        // losing the wakeup forever in the ms<=0 blocking mode.
        {
            std::lock_guard<std::mutex> lock(mu_);
            shutdownRequested_.store(true);
        }
        shutdownCv_.notify_all();
        return;
    }

    // op == "compile": admission control. The strict check-then-
    // rollback keeps the cap exact under concurrent readers.
    uint64_t bytes = payload.size();
    size_t depth = inflight_.fetch_add(1);
    uint64_t inflight_bytes = inflightBytes_.fetch_add(bytes);
    if (depth >= opts_.maxQueueDepth ||
        inflight_bytes + bytes > opts_.maxInflightBytes) {
        --inflight_;
        inflightBytes_ -= bytes;
        ++counters_.shed;
        sendError(conn, req.id, ErrorKind::Overloaded,
                  depth >= opts_.maxQueueDepth
                      ? "queue depth cap reached; retry later"
                      : "in-flight byte cap reached; retry later");
        return;
    }
    ++counters_.accepted;

    auto guard =
        std::make_shared<ReplyGuard>(this, conn, req.id, bytes);
    // A rejected submit (pool draining) destroys the closure here;
    // the guard then answers ErrorKind::Shutdown when this frame's
    // last reference drops at the end of dispatch.
    pool_->submit([this, req, guard] {
        handleCompile(req, guard, msSince(guard->admitted));
    });
}

void
Server::handleCompile(const Request &req,
                      const std::shared_ptr<ReplyGuard> &guard,
                      double queue_ms)
{
    Response resp;
    resp.id = req.id;
    resp.queueMs = queue_ms;

    auto failWith = [&](ErrorKind kind, const std::string &message) {
        resp.ok = false;
        resp.kind = kind;
        resp.message = message;
        ++counters_.errors;
        if (kind == ErrorKind::Timeout)
            ++counters_.timeouts;
        guard->reply(resp);
    };

    try {
        if (opts_.handlerHook)
            opts_.handlerHook(req);
        failpoints::hit("service.handle");

        double remaining = 0;
        if (req.deadlineMs > 0) {
            remaining = req.deadlineMs - queue_ms;
            if (remaining <= 0) {
                failWith(ErrorKind::Timeout,
                         "deadline expired after " +
                             std::to_string(queue_ms) +
                             " ms in the queue");
                return;
            }
        }

        const driver::WorkloadSpec *spec =
            driver::findWorkload(req.workload);
        if (!spec) {
            failWith(ErrorKind::BadRequest,
                     "unknown workload '" + req.workload + "'");
            return;
        }
        driver::PipelineOptions popts;
        if (!driver::parseStrategy(req.strategy, popts.strategy)) {
            failWith(ErrorKind::BadRequest,
                     "unknown strategy '" + req.strategy + "'");
            return;
        }
        exec::Tier tier;
        if (!exec::parseTier(req.tier, &tier)) {
            failWith(ErrorKind::BadRequest,
                     "unknown tier '" + req.tier + "'");
            return;
        }
        exec::ParStrategy par;
        if (!exec::parseParStrategy(req.par, &par)) {
            failWith(ErrorKind::BadRequest,
                     "unknown par strategy '" + req.par + "'");
            return;
        }
        exec::SimdMode simd;
        if (!exec::parseSimdMode(req.simd, &simd)) {
            failWith(ErrorKind::BadRequest,
                     "unknown simd mode '" + req.simd + "'");
            return;
        }

        driver::WorkloadParams params = spec->defaults;
        if (req.rows > 0)
            params.rows = req.rows;
        if (req.cols > 0)
            params.cols = req.cols;
        popts.tileSizes =
            req.tilesGiven ? req.tiles : spec->defaultTiles;
        popts.innerTileSizes = req.innerTiles;

        auto program = std::make_shared<const ir::Program>(
            spec->make(params));
        driver::Pipeline pipeline(popts);
        driver::CompileContext ctx;
        if (remaining > 0)
            ctx.budget.wallMs = remaining;
        ctx.cancel.chainTo(&cancel_);

        driver::ArtifactOptions aopts;
        aopts.tier = tier;
        aopts.par = par;
        aopts.parThreads = req.threads;
        aopts.simd = simd;
        if (opts_.useKernelCache)
            aopts.cache = &exec::KernelCache::process();

        driver::KernelArtifact artifact =
            driver::compileKernel(pipeline, program, ctx, aopts);
        if (artifact.fromCache)
            ++counters_.cacheHits;

        // The deadline is hard: the budget trip may have been
        // absorbed by the strategy-fallback ladder (a *downgraded*
        // artifact is still a success), but a client past its
        // deadline has already given up -- answer Timeout instead
        // of running work nobody is waiting for.
        if (req.deadlineMs > 0 &&
            msSince(guard->admitted) >= req.deadlineMs) {
            failWith(ErrorKind::Timeout,
                     "deadline of " +
                         std::to_string(req.deadlineMs) +
                         " ms expired during compile");
            return;
        }

        resp.ok = true;
        resp.fingerprint = artifact.fingerprint.hex();
        resp.requestedTier = exec::tierName(tier);
        resp.strategy =
            driver::strategyName(artifact.effectiveStrategy);
        resp.requestedStrategy =
            driver::strategyName(artifact.requestedStrategy);
        resp.fallbackTrail = artifact.fallbackTrail;
        resp.fromCache = artifact.fromCache;
        resp.downgraded = artifact.downgraded();
        resp.compileMs = artifact.compileMs();

        // Native tier: retry *transient* compile/load failures with
        // backoff, then degrade to bytecode. Permanent failures
        // degrade immediately (see support/retry.hh's table).
        exec::Tier run_tier = tier;
        unsigned retries = 0;
        if (tier == exec::Tier::Native) {
            std::string reason;
            bool transient = false;
            const exec::NativeKernel *nk =
                artifact.image->ensureNative(&reason, &transient);
            while (!nk && transient &&
                   opts_.nativeRetry.shouldRetry(retries)) {
                opts_.nativeRetry.backoff(retries);
                ++retries;
                ++counters_.retries;
                transient = false;
                nk = artifact.image->ensureNative(&reason,
                                                  &transient);
            }
            if (!nk) {
                run_tier = exec::Tier::Bytecode;
                resp.tierFallbackReason = reason;
            }
        }
        resp.retries = retries;

        if (req.run) {
            exec::Buffers buffers(*program);
            fillServiceInputs(*program, buffers);
            exec::ExecOptions eopts;
            eopts.tier = run_tier;
            eopts.threads = req.threads ? req.threads : 1;
            eopts.par = par;
            eopts.simd = simd;
            exec::ExecResult result =
                driver::executeKernel(artifact, buffers, eopts);
            resp.tier = exec::tierName(result.tier);
            if (!result.fallbackReason.empty() &&
                resp.tierFallbackReason.empty())
                resp.tierFallbackReason = result.fallbackReason;
            resp.runMs = result.stats.seconds * 1e3;
            resp.bufferHash = hashBuffers(buffers);
            // The backend that *actually* ran, degradations
            // applied: "tier[+<par>xN][+simd]".
            resp.backend = exec::tierName(result.tier);
            if (result.par.threads > 0) {
                resp.backend += std::string("+") +
                                exec::parStrategyName(
                                    result.par.strategy);
                resp.backend +=
                    "x" + std::to_string(result.par.threads);
            }
            if (result.simd == exec::SimdMode::On)
                resp.backend += "+simd";
        } else {
            resp.tier = exec::tierName(run_tier);
            resp.backend = exec::tierName(run_tier);
        }
        guard->reply(resp);
    } catch (const BudgetExceeded &e) {
        // Never retried here: with a deadline it is the request's
        // own timeout, otherwise shutdown cancelled it mid-flight.
        if (cancel_.cancelled())
            failWith(ErrorKind::Cancelled, e.what());
        else
            failWith(ErrorKind::Timeout, e.what());
    } catch (const FatalError &e) {
        failWith(ErrorKind::Fatal, e.what());
    } catch (const PanicError &e) {
        failWith(ErrorKind::Panic, e.what());
    } catch (const std::exception &e) {
        failWith(ErrorKind::Internal, e.what());
    } catch (...) {
        failWith(ErrorKind::Internal, "unknown exception");
    }
}

void
Server::sendResponse(const std::shared_ptr<Conn> &conn,
                     const Response &resp)
{
    std::string payload = encodeResponse(resp);
    std::string err;
    std::lock_guard<std::mutex> lock(conn->writeMu);
    if (!writeFrame(conn->fd, payload, &err))
        warn("service: dropping response for request " +
             std::to_string(resp.id) + ": " + err);
}

void
Server::sendError(const std::shared_ptr<Conn> &conn, uint64_t id,
                  ErrorKind kind, const std::string &message)
{
    Response resp;
    resp.id = id;
    resp.ok = false;
    resp.kind = kind;
    resp.message = message;
    sendResponse(conn, resp);
}

bool
Server::waitForShutdownRequest(double ms)
{
    std::unique_lock<std::mutex> lock(mu_);
    auto requested = [this] {
        return shutdownRequested_.load() || stopped_;
    };
    if (ms <= 0) {
        shutdownCv_.wait(lock, requested);
        return true;
    }
    return shutdownCv_.wait_for(
        lock, std::chrono::duration<double, std::milli>(ms),
        requested);
}

void
Server::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!started_ || stopped_)
            return;
        stopped_ = true;
    }
    shutdownCv_.notify_all();

    // 1. Stop accepting: shut the listener down (wakes the accept
    //    thread's poll immediately instead of waiting out its tick),
    //    reap the thread, release the socket path.
    accepting_.store(false);
    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);
    if (acceptThread_.joinable())
        acceptThread_.join();
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        listenFd_ = -1;
    }
    ::unlink(path_.c_str());

    // 2. Drain with a deadline. Queued-but-unrun jobs are destroyed;
    //    their ReplyGuards answer ErrorKind::Shutdown. If in-flight
    //    work outlives the deadline, cancel it cooperatively (every
    //    request token chains to cancel_) and wait it out -- those
    //    requests answer ErrorKind::Cancelled.
    if (pool_) {
        ThreadPool::DrainResult dr = pool_->drain(opts_.drainMs);
        if (!dr.completed) {
            cancel_.cancel();
            pool_->wait();
        }
    }

    // 3. Hang up every connection and wait for the (detached)
    //    readers to reap themselves. No reader survives this point,
    //    so the pool teardown below cannot race a late dispatch().
    {
        std::unique_lock<std::mutex> lock(mu_);
        for (const auto &conn : conns_)
            ::shutdown(conn->fd, SHUT_RDWR);
        readersCv_.wait(lock,
                        [this] { return activeReaders_ == 0; });
        conns_.clear();
    }

    // 4. Flush persistent state, then retire the workers.
    if (opts_.tuneDb && !opts_.tuneDb->save())
        warn("service: could not save tuning store " +
             opts_.tuneDb->path());
    pool_.reset();
}

int
Server::run(const std::function<bool()> &interrupted,
            double poll_ms)
{
    while (true) {
        if (waitForShutdownRequest(poll_ms))
            break;
        if (interrupted && interrupted())
            break;
    }
    stop();
    return 0;
}

ServerStats
Server::stats() const
{
    ServerStats s;
    s.present = true;
    s.accepted = counters_.accepted.load();
    s.completed = counters_.completed.load();
    s.shed = counters_.shed.load();
    s.retries = counters_.retries.load();
    s.errors = counters_.errors.load();
    s.timeouts = counters_.timeouts.load();
    s.cacheHits = counters_.cacheHits.load();
    return s;
}

} // namespace service
} // namespace polyfuse
