/**
 * @file
 * Wire protocol of the compile service: length-prefixed JSON frames
 * over a unix-domain stream socket, plus the typed request/response
 * schema both ends validate field by field.
 *
 * Framing is a 4-byte little-endian payload length followed by that
 * many bytes of UTF-8 JSON. The length is bounded (kMaxFrameBytes by
 * default): a peer announcing a larger frame gets a typed
 * `oversized` error and the connection is closed, because the stream
 * position can no longer be trusted. Truncated frames (EOF mid-body)
 * and short lengths surface as FrameStatus::Error.
 *
 * The payload schema is deliberately flat. Requests:
 *
 *   {"op": "compile"|"ping"|"stats"|"shutdown", "id": N,
 *    "workload": "...", "rows": N, "cols": N, "strategy": "...",
 *    "tiles": [..], "innerTiles": [..], "tier": "...",
 *    "run": true, "deadlineMs": N, "threads": N, "par": "...",
 *    "simd": "..."}
 *
 * Responses either carry a "result" object (fingerprint, effective
 * tier/strategy, fallback trail, cache hit, retry count, queue wait,
 * run time, buffer hash) or an "error" object with a typed kind --
 * the error taxonomy of DESIGN.md section 11 -- so clients can
 * distinguish "your request is wrong" (badrequest) from "come back
 * later" (overloaded) from "it cost too much" (timeout) without
 * parsing prose. Unknown request fields are rejected: the protocol
 * is ours on both ends, so unknown shapes mean a confused or hostile
 * peer, and refusing beats guessing (the TuneDb reader's rule).
 */

#ifndef POLYFUSE_SERVICE_PROTOCOL_HH
#define POLYFUSE_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace polyfuse {
namespace service {

/** Ceiling on one frame's payload bytes (requests and responses). */
constexpr uint32_t kMaxFrameBytes = 1u << 20;

/** What readFrame observed on the stream. */
enum class FrameStatus
{
    Ok,        ///< one complete frame in *payload
    Eof,       ///< clean end of stream at a frame boundary
    Error,     ///< truncated frame or socket error (see *error)
    Oversized, ///< announced length exceeds the cap; stream is dead
};

/**
 * Read one frame from @p fd into @p payload. Blocks; loops over
 * partial reads and EINTR. A length above @p max_bytes returns
 * Oversized without consuming the body.
 */
FrameStatus readFrame(int fd, std::string *payload,
                      std::string *error,
                      uint32_t max_bytes = kMaxFrameBytes);

/** Write one frame (length + @p payload) to @p fd. Loops over
 *  partial writes; SIGPIPE is suppressed (a dead peer is a false
 *  return, not a process kill). */
bool writeFrame(int fd, const std::string &payload,
                std::string *error);

/** One request, decoded and validated. */
struct Request
{
    std::string op = "compile"; ///< compile | ping | stats | shutdown
    uint64_t id = 0;            ///< echoed verbatim in the response

    // compile fields (ignored by the other ops)
    std::string workload;
    int64_t rows = 0; ///< 0: the workload's default
    int64_t cols = 0; ///< 0: the workload's default
    std::string strategy = "ours";
    std::vector<int64_t> tiles; ///< tilesGiven=false: default tiles
    bool tilesGiven = false;
    std::vector<int64_t> innerTiles;
    std::string tier = "bytecode"; ///< interp | bytecode | native
    bool run = true;       ///< execute after compiling
    double deadlineMs = 0; ///< whole-request deadline; 0 = none
    unsigned threads = 1;  ///< worker threads for the run
    std::string par = "off"; ///< off | static | graph
    std::string simd = "off"; ///< off | on (bytecode vector path)
};

/** The typed error taxonomy of the service. */
enum class ErrorKind
{
    None,       ///< response is ok
    BadRequest, ///< malformed/unknown request (client's fault)
    Overloaded, ///< admission control shed the request; retry later
    Timeout,    ///< the request's deadline expired
    Cancelled,  ///< the server cancelled it (shutdown in flight)
    Fatal,      ///< FatalError from the compiler (user-level)
    Panic,      ///< PanicError from the compiler (library bug)
    Internal,   ///< any other escaped exception
    Oversized,  ///< frame exceeded the cap; connection closes
    Shutdown,   ///< request abandoned: the server is shutting down
};

/** Wire spelling of @p kind ("" for None). */
const char *errorKindName(ErrorKind kind);

/** Parse an errorKindName spelling. @return false when unknown. */
bool parseErrorKind(const std::string &name, ErrorKind *out);

/** Aggregate server counters (the "stats" op). */
struct ServerStats
{
    bool present = false; ///< response carries a "server" object
    uint64_t accepted = 0;  ///< compile requests admitted
    uint64_t completed = 0; ///< compile responses sent (ok or error)
    uint64_t shed = 0;      ///< rejected by admission control
    uint64_t retries = 0;   ///< native-tier retry attempts
    uint64_t errors = 0;    ///< typed error responses (non-shed)
    uint64_t timeouts = 0;  ///< deadline-expired responses
    uint64_t cacheHits = 0; ///< artifacts served from KernelCache
};

/** One response: either a result or a typed error. */
struct Response
{
    uint64_t id = 0;
    bool ok = false;

    // error (ok == false)
    ErrorKind kind = ErrorKind::None;
    std::string message;

    // result (ok == true); compile ops fill everything, ping/stats/
    // shutdown leave the compile fields defaulted
    std::string fingerprint;
    std::string requestedTier;
    std::string tier;     ///< tier that actually ran
    std::string strategy; ///< effective strategy
    std::string requestedStrategy;
    std::vector<std::string> fallbackTrail;
    std::string tierFallbackReason; ///< why native degraded (if it did)
    bool fromCache = false;
    bool downgraded = false;
    double compileMs = 0;
    double runMs = 0;
    double queueMs = 0;  ///< admission-to-start wait
    unsigned retries = 0; ///< native-tier retries this request
    std::string bufferHash; ///< 16-hex FNV of every output buffer
    std::string backend; ///< effective "tier[+par[xN]][+simd]" label

    ServerStats server; ///< filled for the "stats" op
};

/** Encode @p req as one JSON payload (framing is separate). */
std::string encodeRequest(const Request &req);

/**
 * Parse and validate one request payload. @return false with a
 * diagnostic on malformed JSON, unknown ops/keys, or out-of-range
 * values; the server answers those with ErrorKind::BadRequest.
 */
bool decodeRequest(const std::string &payload, Request *out,
                   std::string *error);

/** Encode @p resp as one JSON payload. */
std::string encodeResponse(const Response &resp);

/** Parse and validate one response payload (client side). */
bool decodeResponse(const std::string &payload, Response *out,
                    std::string *error);

} // namespace service
} // namespace polyfuse

#endif // POLYFUSE_SERVICE_PROTOCOL_HH
