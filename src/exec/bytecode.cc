#include "exec/bytecode.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>
#include <thread>

#include "support/failpoint.hh"
#include "support/intmath.hh"
#include "support/logging.hh"
#include "support/thread_pool.hh"
#include "support/timer.hh"

namespace polyfuse {
namespace exec {

using codegen::AstKind;
using codegen::AstNode;
using codegen::AstPtr;
using codegen::BoundAlt;
using codegen::BoundTerm;
using ir::Expr;
using ir::Program;
using ir::Statement;

namespace bytecode_detail {

constexpr size_t kMaxRank = 8;

/**
 * Lanes per block of the vectorized inner-loop fast path. The block
 * kernels are plain fixed-trip-count lane loops the compiler can
 * vectorize; 8 lanes give the autovectorizer two 4-wide double ops
 * per tape step on AVX2 (or one 8-wide on AVX-512), 4 keep the
 * blocks tight on baseline SSE2.
 */
#if defined(__AVX512F__) || defined(__AVX2__)
constexpr int64_t kSimdWidth = 8;
#else
constexpr int64_t kSimdWidth = 4;
#endif

/** One sparse linear-term pair: coef * vars[slot]. */
struct LinPair
{
    int32_t slot = 0;
    int64_t coef = 0;
};

/** A sparse linear form over loop-var slots, constants folded. */
struct LinFn
{
    int64_t c = 0;
    int32_t begin = 0; ///< range into Image::pairs
    int32_t end = 0;
};

/** One bound term: lin / div (ceil for lower, floor for upper). */
struct BTerm
{
    LinFn lin;
    int64_t div = 1;
};

/** Half-open range into one of the Image pools. */
struct Range
{
    int32_t begin = 0;
    int32_t end = 0;
};

/** A loop/box bound: alts (ranges of BTerm) combined min/max-wise. */
struct Bound
{
    int32_t altBegin = 0; ///< range into Image::altTerms
    int32_t altEnd = 0;
};

/** One compiled loop. */
struct Loop
{
    int32_t var = 0;
    Bound lb, ub;
    bool parallel = false;
    bool tile = false;      ///< iterates tile coordinates
    int32_t bandId = -1;    ///< owning tile band (codegen side table)
    int32_t bandLevel = -1; ///< level within the owning tile band
    /**
     * When the loop body is nothing but statements, the contiguous
     * range [stmtBegin, stmtEnd) of Image::stmts it executes; the
     * untraced interpreter then runs the whole loop inside one
     * dispatch with strength-reduced access offsets (every offset is
     * affine in the loop var, so per-iteration re-evaluation of the
     * folded dot product collapses to one add per access) and the
     * per-instance counters of guard-free statements hoisted out.
     */
    int32_t stmtBegin = -1, stmtEnd = -1;
    /**
     * When the loop body is exactly one such fast inner loop
     * (a perfect two-level nest), its index: guard bases and access
     * offsets then advance incrementally across inner-loop entries
     * instead of being re-derived from their linear forms, which is
     * what makes short reduction loops (3x3 convolution kernels)
     * cheap despite their heavy boundary-guard sets.
     */
    int32_t nestInner = -1;
};

/** One compiled access of one statement node. */
struct AccessC
{
    int32_t tensor = 0;
    int32_t rank = 0;
    int32_t dimBegin = 0;  ///< per-dim LinFns in Image::dimFns
    int32_t foldBase = 0;  ///< range base into Image::mergedSlots
    int32_t foldCount = 0; ///< merged slot count
    /** Fast-path State::foldCoef slots of the offset steps along
     *  the innermost / next-outer enclosing loop vars (-1: the
     *  access is independent of that var). */
    int32_t innerStepSlot = -1;
    int32_t outerStepSlot = -1;
};

/** One compiled guard row. */
struct GuardC
{
    LinFn fn;
    bool isEq = false;
    /** Per-iteration steps along the innermost / next-outer
     *  enclosing loop vars (used only on the fast path). */
    int64_t innerStep = 0;
    int64_t outerStep = 0;
};

/** Postfix expression opcodes. */
enum class XOp : uint8_t
{
    Const,   ///< push consts[a]
    Iter,    ///< push double(vars[a] + b)
    Load,    ///< push load through access a; b = fast-path step
             ///< slot into State::foldCoef, or -1
    LoadIdx, ///< pop b indices, load tensor a
    Un,      ///< sub = UnOp
    Bin,     ///< sub = BinOp
};

struct XInst
{
    XOp op;
    uint8_t sub = 0;
    int32_t a = 0;
    int32_t b = 0;
};

/** One compiled statement node. */
struct StmtC
{
    int32_t guardBegin = 0, guardEnd = 0;
    int32_t xBegin = 0, xEnd = 0; ///< empty when the body is null
    int32_t writeAccess = -1;     ///< index into Image::accesses
    double ops = 1.0;
    int32_t maxStack = 0;
    /** Load + LoadIdx count of the tape (hoisted loads counter). */
    int32_t loadsPerIter = 0;
    /** Fast-path step slot of the write access (see XOp::Load). */
    int32_t writeStepSlot = -1;
    /** Statically eligible for the vectorized fast path: every load
     *  is affine (no LoadIdx, whose indirection defeats the
     *  base+step form). The per-run dependence check happens at
     *  selection time (Machine::simdSafe). */
    bool simdOk = false;
};

/** One tile-local promotion of an Alloc scope. */
struct PromoC
{
    int32_t tensor = 0;
    int32_t rank = 0;
    /** 2 * rank Bounds in Image::boxBounds: lo dims then hi dims. */
    int32_t boxBase = 0;
};

struct AllocC
{
    int32_t promoBegin = 0, promoEnd = 0;
};

/** Top-level tape opcodes. */
enum class Op : uint8_t
{
    ForBegin,
    ForEnd,
    Stmt,
    AllocEnter,
    AllocExit,
    Halt,
};

struct Inst
{
    Op op;
    int32_t arg = 0;  ///< loop / stmt / alloc index
    int32_t jump = 0; ///< ForBegin: past ForEnd; ForEnd: body start
};

/**
 * One parallel-schedulable span of the tape: the consecutive
 * top-level tile loops of one band plus their shared body. A tile is
 * an assignment of values to the region's loop vars; launching one
 * means pinning those vars and executing [bodyBegin, bodyEnd).
 * Regions are discovered by a top-level tape scan after compilation;
 * tile bands nested under other loops or inside Alloc scopes are NOT
 * regions (a scratchpad pushed outside the region would live on the
 * launching machine's state, invisible to workers).
 */
struct TileRegion
{
    int32_t bandId = -1;
    int32_t beginPc = 0;  ///< pc of the outermost tile ForBegin
    int32_t endPc = 0;    ///< pc past the outermost ForEnd
    int32_t bodyBegin = 0; ///< pc after the innermost tile ForBegin
    int32_t bodyEnd = 0;   ///< pc of the innermost tile ForEnd
    std::vector<int32_t> loops; ///< tile loop index per level
    int32_t coincidentLevels = 0; ///< levels flagged parallel
};

/** The immutable compiled form. */
struct Image
{
    const Program *program = nullptr;

    std::vector<Inst> insts;
    std::vector<Loop> loops;
    std::vector<TileRegion> tileRegions;
    std::vector<StmtC> stmts;
    std::vector<AllocC> allocs;
    std::vector<PromoC> promos;
    std::vector<AccessC> accesses;
    std::vector<GuardC> guards;
    std::vector<XInst> xinsts;

    // Pools.
    std::vector<LinPair> pairs;
    /** Aligned with `pairs` for access-dim LinFns: the merged fold
     *  slot each pair accumulates into (see foldAccess). */
    std::vector<int32_t> pairMergedIdx;
    std::vector<BTerm> terms;
    std::vector<Range> altTerms; ///< per alt: term range
    std::vector<LinFn> dimFns;   ///< per access dim
    std::vector<int32_t> mergedSlots;
    std::vector<Bound> boxBounds;
    std::vector<double> consts;

    /** Per tensor: indices into `accesses` that touch it. */
    std::vector<std::vector<int32_t>> accessesByTensor;

    int32_t numVars = 0;
    int32_t numTensors = 0;
    int32_t maxStack = 0;
};

// ---------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------

class Compiler
{
  public:
    Compiler(const Program &program, const AstPtr &ast)
        : prog_(program), ast_(ast)
    {
        img_.program = &program;
        img_.numTensors = int32_t(program.tensors().size());
        for (const auto &name : program.params())
            paramValues_.push_back(program.paramValue(name));
    }

    std::shared_ptr<const Image>
    compile()
    {
        img_.numVars = ast_ && ast_->numLoopVars > 0
                           ? ast_->numLoopVars
                           : scanVars(ast_);
        img_.accessesByTensor.resize(img_.numTensors);
        emit(ast_);
        img_.insts.push_back({Op::Halt, 0, 0});
        scanTileRegions();
        return std::make_shared<Image>(std::move(img_));
    }

  private:
    static int
    scanVars(const AstPtr &n)
    {
        if (!n)
            return 0;
        int vars = n->kind == AstKind::For ? n->var + 1 : 0;
        for (const auto &c : n->children)
            vars = std::max(vars, scanVars(c));
        return vars;
    }

    /** Fold a dense (varCoeffs, paramCoeffs, constant) row into a
     *  sparse LinFn over var slots. */
    LinFn
    makeLin(const std::vector<int64_t> &var_coeffs,
            const std::vector<int64_t> &param_coeffs,
            int64_t constant)
    {
        LinFn fn;
        fn.c = constant;
        for (size_t p = 0; p < param_coeffs.size(); ++p)
            fn.c += param_coeffs[p] * paramValues_[p];
        fn.begin = int32_t(img_.pairs.size());
        for (size_t v = 0; v < var_coeffs.size(); ++v)
            if (var_coeffs[v] != 0) {
                img_.pairs.push_back({int32_t(v), var_coeffs[v]});
                img_.pairMergedIdx.push_back(-1);
            }
        fn.end = int32_t(img_.pairs.size());
        return fn;
    }

    Bound
    makeBound(const std::vector<BoundAlt> &alts)
    {
        Bound b;
        b.altBegin = int32_t(img_.altTerms.size());
        for (const auto &alt : alts) {
            Range r;
            r.begin = int32_t(img_.terms.size());
            for (const auto &t : alt) {
                BTerm bt;
                bt.lin =
                    makeLin(t.varCoeffs, t.paramCoeffs, t.constant);
                bt.div = t.div;
                img_.terms.push_back(bt);
            }
            r.end = int32_t(img_.terms.size());
            img_.altTerms.push_back(r);
        }
        b.altEnd = int32_t(img_.altTerms.size());
        return b;
    }

    /**
     * Compile one access of statement node @p n: compose its index
     * rows with the node's bindings, fold parameters, and lay out
     * the merged fold slots the runtime stride-folding writes to.
     * @return index into Image::accesses.
     */
    int32_t
    compileAccess(const AstNode &n, const ir::Access &a)
    {
        if (!a.hasExprs || a.indexExprs.empty())
            fatal("bytecode: affine access without index rows");
        const Statement &s = prog_.statement(n.stmt);
        size_t nd = s.numDims();
        if (n.bindings.size() != nd)
            fatal("bytecode: binding arity mismatch");
        std::vector<int64_t> access_params;
        for (const auto &pname : a.rel.space().params())
            access_params.push_back(prog_.paramValue(pname));

        AccessC ac;
        ac.tensor = a.tensor;
        ac.rank = int32_t(a.indexExprs.size());
        if (ac.rank > int32_t(kMaxRank))
            fatal("bytecode: access rank exceeds limit");
        ac.dimBegin = int32_t(img_.dimFns.size());

        // Per-dim sparse forms over loop-var slots.
        std::vector<int32_t> merged; // sorted unique slots
        for (const auto &row : a.indexExprs) {
            if (row.size() != nd + access_params.size() + 1)
                fatal("bytecode: access row width mismatch");
            LinFn fn;
            fn.c = row.back();
            for (size_t p = 0; p < access_params.size(); ++p)
                fn.c += row[nd + p] * access_params[p];
            // Compose with bindings: dim d of the instance vector is
            // vars[bind.var] + bind.off.
            std::vector<std::pair<int32_t, int64_t>> sparse;
            for (size_t d = 0; d < nd; ++d) {
                if (row[d] == 0)
                    continue;
                fn.c += row[d] * n.bindings[d].second;
                int32_t slot = n.bindings[d].first;
                bool found = false;
                for (auto &pr : sparse)
                    if (pr.first == slot) {
                        pr.second += row[d];
                        found = true;
                    }
                if (!found)
                    sparse.push_back({slot, row[d]});
            }
            fn.begin = int32_t(img_.pairs.size());
            for (const auto &pr : sparse) {
                img_.pairs.push_back({pr.first, pr.second});
                img_.pairMergedIdx.push_back(-1);
                if (std::find(merged.begin(), merged.end(),
                              pr.first) == merged.end())
                    merged.push_back(pr.first);
            }
            fn.end = int32_t(img_.pairs.size());
            img_.dimFns.push_back(fn);
        }

        ac.foldBase = int32_t(img_.mergedSlots.size());
        ac.foldCount = int32_t(merged.size());
        for (int32_t m = 0; m < ac.foldCount; ++m) {
            if (merged[m] == curVar_)
                ac.innerStepSlot = ac.foldBase + m;
            if (merged[m] == curOuterVar_)
                ac.outerStepSlot = ac.foldBase + m;
            img_.mergedSlots.push_back(merged[m]);
        }
        // Second pass: point every dim pair at its merged slot.
        for (int32_t d = 0; d < ac.rank; ++d) {
            const LinFn &fn = img_.dimFns[ac.dimBegin + d];
            for (int32_t i = fn.begin; i < fn.end; ++i) {
                int32_t slot = img_.pairs[i].slot;
                for (int32_t m = 0; m < ac.foldCount; ++m)
                    if (img_.mergedSlots[ac.foldBase + m] == slot)
                        img_.pairMergedIdx[i] = m;
            }
        }

        int32_t idx = int32_t(img_.accesses.size());
        img_.accesses.push_back(ac);
        img_.accessesByTensor[a.tensor].push_back(idx);
        return idx;
    }

    /** Postfix-compile @p e, returning the stack growth high-water
     *  mark relative to entry. */
    int32_t
    compileExpr(const Expr &e, const AstNode &n,
                const std::vector<int32_t> &access_map)
    {
        switch (e.kind) {
          case Expr::Kind::Const: {
            XInst x{XOp::Const, 0, int32_t(img_.consts.size()), 0};
            img_.consts.push_back(e.value);
            img_.xinsts.push_back(x);
            return 1;
          }
          case Expr::Kind::Param: {
            XInst x{XOp::Const, 0, int32_t(img_.consts.size()), 0};
            img_.consts.push_back(
                double(prog_.paramValue(e.param)));
            img_.xinsts.push_back(x);
            return 1;
          }
          case Expr::Kind::Iter: {
            if (e.iter >= n.bindings.size())
                fatal("bytecode: iter index out of range");
            const auto &[var, off] = n.bindings[e.iter];
            img_.xinsts.push_back(
                {XOp::Iter, 0, var, int32_t(off)});
            return 1;
          }
          case Expr::Kind::LoadAcc: {
            const Statement &s = prog_.statement(n.stmt);
            int acc_idx = s.readIndices().at(e.access);
            if (access_map[acc_idx] < 0)
                fatal("LoadAcc on non-affine access; use loadIdx");
            img_.xinsts.push_back(
                {XOp::Load, 0, access_map[acc_idx],
                 img_.accesses[access_map[acc_idx]]
                     .innerStepSlot});
            return 1;
          }
          case Expr::Kind::LoadIdx: {
            int32_t depth = 0;
            for (size_t i = 0; i < e.args.size(); ++i)
                depth = std::max(
                    int32_t(i) + compileExpr(*e.args[i], n,
                                             access_map),
                    depth);
            if (e.args.size() > kMaxRank)
                fatal("bytecode: LoadIdx rank exceeds limit");
            img_.xinsts.push_back({XOp::LoadIdx, 0, e.tensor,
                                   int32_t(e.args.size())});
            return std::max(depth, int32_t(1));
          }
          case Expr::Kind::Unary: {
            int32_t depth = compileExpr(*e.args[0], n, access_map);
            img_.xinsts.push_back(
                {XOp::Un, uint8_t(e.uop), 0, 0});
            return depth;
          }
          case Expr::Kind::Binary: {
            int32_t d0 = compileExpr(*e.args[0], n, access_map);
            int32_t d1 = compileExpr(*e.args[1], n, access_map);
            img_.xinsts.push_back(
                {XOp::Bin, uint8_t(e.bop), 0, 0});
            return std::max(d0, 1 + d1);
          }
        }
        panic("bad expr kind");
    }

    int32_t
    compileStmtNode(const AstNode &n)
    {
        const Statement &s = prog_.statement(n.stmt);
        StmtC sc;
        sc.ops = s.opsPerInstance();

        sc.guardBegin = int32_t(img_.guards.size());
        for (const auto &g : n.guards) {
            GuardC gc;
            gc.isEq = g.isEq;
            gc.fn = makeLin(g.varCoeffs, g.paramCoeffs, g.constant);
            for (int32_t i = gc.fn.begin; i < gc.fn.end; ++i) {
                if (img_.pairs[i].slot == curVar_)
                    gc.innerStep += img_.pairs[i].coef;
                if (img_.pairs[i].slot == curOuterVar_)
                    gc.outerStep += img_.pairs[i].coef;
            }
            img_.guards.push_back(gc);
        }
        sc.guardEnd = int32_t(img_.guards.size());

        // Compile every affine access of this statement node once;
        // non-affine ones (no index rows) stay unmapped and may only
        // be reached through LoadIdx.
        std::vector<int32_t> access_map(s.accesses().size(), -1);
        for (size_t a = 0; a < s.accesses().size(); ++a)
            if (s.accesses()[a].hasExprs &&
                !s.accesses()[a].indexExprs.empty())
                access_map[a] = compileAccess(n, s.accesses()[a]);

        sc.xBegin = int32_t(img_.xinsts.size());
        if (s.body())
            sc.maxStack = compileExpr(*s.body(), n, access_map);
        sc.xEnd = int32_t(img_.xinsts.size());
        img_.maxStack = std::max(img_.maxStack, sc.maxStack);
        sc.simdOk = sc.xBegin != sc.xEnd;
        for (int32_t x = sc.xBegin; x < sc.xEnd; ++x) {
            if (img_.xinsts[x].op == XOp::Load ||
                img_.xinsts[x].op == XOp::LoadIdx)
                ++sc.loadsPerIter;
            if (img_.xinsts[x].op == XOp::LoadIdx)
                sc.simdOk = false;
        }

        if (s.writeIndex() >= 0) {
            if (access_map[s.writeIndex()] < 0)
                fatal("non-affine write access unsupported");
            sc.writeAccess = access_map[s.writeIndex()];
            sc.writeStepSlot =
                img_.accesses[sc.writeAccess].innerStepSlot;
        }

        int32_t idx = int32_t(img_.stmts.size());
        img_.stmts.push_back(sc);
        return idx;
    }

    void
    emit(const AstPtr &n)
    {
        if (!n)
            return;
        switch (n->kind) {
          case AstKind::Block:
            for (const auto &c : n->children)
                emit(c);
            return;
          case AstKind::Alloc: {
            AllocC al;
            al.promoBegin = int32_t(img_.promos.size());
            for (const auto &promo : n->promotions) {
                PromoC pc;
                pc.tensor = promo.tensor;
                pc.rank = int32_t(promo.boxLo.size());
                if (pc.rank > int32_t(kMaxRank))
                    fatal("bytecode: promotion rank exceeds limit");
                pc.boxBase = int32_t(img_.boxBounds.size());
                for (const auto &lo : promo.boxLo)
                    img_.boxBounds.push_back(makeBound(lo));
                for (const auto &hi : promo.boxHi)
                    img_.boxBounds.push_back(makeBound(hi));
                img_.promos.push_back(pc);
            }
            al.promoEnd = int32_t(img_.promos.size());
            int32_t alloc_idx = int32_t(img_.allocs.size());
            img_.allocs.push_back(al);
            img_.insts.push_back(
                {Op::AllocEnter, alloc_idx, 0});
            for (const auto &c : n->children)
                emit(c);
            img_.insts.push_back({Op::AllocExit, alloc_idx, 0});
            return;
          }
          case AstKind::For: {
            Loop loop;
            loop.var = n->var;
            loop.lb = makeBound(n->lb);
            loop.ub = makeBound(n->ub);
            loop.parallel = n->parallel;
            loop.tile = n->tileLoop;
            loop.bandId = n->bandId;
            loop.bandLevel = n->bandLevel;
            int32_t loop_idx = int32_t(img_.loops.size());
            img_.loops.push_back(loop);
            int32_t begin_pc = int32_t(img_.insts.size());
            img_.insts.push_back({Op::ForBegin, loop_idx, 0});
            int32_t saved_var = curVar_;
            int32_t saved_outer = curOuterVar_;
            curOuterVar_ = curVar_;
            curVar_ = n->var;
            for (const auto &c : n->children)
                emit(c);
            curVar_ = saved_var;
            curOuterVar_ = saved_outer;
            int32_t end_pc = int32_t(img_.insts.size());
            img_.insts.push_back(
                {Op::ForEnd, loop_idx, begin_pc + 1});
            img_.insts[begin_pc].jump = end_pc + 1;
            // Innermost-loop detection: a body of only statements
            // compiles to a contiguous Stmt run (fast-path range).
            bool all_stmts = end_pc > begin_pc + 1;
            for (int32_t i = begin_pc + 1; all_stmts && i < end_pc;
                 ++i)
                all_stmts = img_.insts[i].op == Op::Stmt;
            if (all_stmts) {
                img_.loops[loop_idx].stmtBegin =
                    img_.insts[begin_pc + 1].arg;
                img_.loops[loop_idx].stmtEnd =
                    img_.insts[end_pc - 1].arg + 1;
            }
            // Perfect two-level nest: the body is exactly one fast
            // inner loop.
            if (end_pc > begin_pc + 2 &&
                img_.insts[begin_pc + 1].op == Op::ForBegin &&
                img_.insts[end_pc - 1].op == Op::ForEnd &&
                img_.insts[end_pc - 1].arg ==
                    img_.insts[begin_pc + 1].arg &&
                img_.loops[img_.insts[begin_pc + 1].arg]
                        .stmtBegin >= 0)
                img_.loops[loop_idx].nestInner =
                    img_.insts[begin_pc + 1].arg;
            return;
          }
          case AstKind::Stmt:
            img_.insts.push_back(
                {Op::Stmt, compileStmtNode(*n), 0});
            return;
        }
    }

    /** Walk the top level of the finished tape and record every
     *  maximal run of consecutive tile ForBegins of one band (levels
     *  0..L-1) as a TileRegion. Loops and Alloc scopes are never
     *  entered: only outermost tile bands are schedulable. */
    void
    scanTileRegions()
    {
        int32_t pc = 0;
        int alloc_depth = 0;
        while (img_.insts[pc].op != Op::Halt) {
            const Inst &in = img_.insts[pc];
            switch (in.op) {
              case Op::AllocEnter:
                ++alloc_depth;
                ++pc;
                break;
              case Op::AllocExit:
                --alloc_depth;
                ++pc;
                break;
              case Op::Stmt:
                ++pc;
                break;
              case Op::ForBegin: {
                const Loop &l = img_.loops[in.arg];
                if (alloc_depth == 0 && l.bandId >= 0 &&
                    l.bandLevel == 0) {
                    TileRegion r;
                    r.bandId = l.bandId;
                    r.beginPc = pc;
                    r.endPc = in.jump;
                    int32_t p = pc;
                    int32_t level = 0;
                    while (img_.insts[p].op == Op::ForBegin) {
                        const Loop &lp =
                            img_.loops[img_.insts[p].arg];
                        if (lp.bandId != r.bandId ||
                            lp.bandLevel != level)
                            break;
                        r.loops.push_back(img_.insts[p].arg);
                        if (lp.parallel)
                            ++r.coincidentLevels;
                        ++level;
                        ++p;
                    }
                    r.bodyBegin = p;
                    // The innermost tile ForBegin (at p - 1) jumps
                    // past its own ForEnd; the body ends right on it.
                    r.bodyEnd = img_.insts[p - 1].jump - 1;
                    img_.tileRegions.push_back(std::move(r));
                }
                pc = in.jump; // never enter loop bodies
                break;
              }
              case Op::ForEnd:
              case Op::Halt:
                panic("tile-region scan desynchronized");
            }
        }
    }

    const Program &prog_;
    const AstPtr &ast_;
    std::vector<int64_t> paramValues_;
    Image img_;
    /** Vars of the For being compiled and of its parent For
     *  (-1 outside a loop). */
    int32_t curVar_ = -1;
    int32_t curOuterVar_ = -1;
};

// ---------------------------------------------------------------
// Execution
// ---------------------------------------------------------------

/** The active storage of one tensor (global buffer or scratchpad). */
struct Storage
{
    double *base = nullptr;
    int64_t strides[kMaxRank] = {};
    int64_t origin[kMaxRank] = {};
    int64_t extents[kMaxRank] = {};
    int32_t rank = 0;
    int32_t space = 0;
    bool global = true;
};

/** Per-run mutable machine state. */
struct State
{
    std::vector<int64_t> vars;
    std::vector<int64_t> loopHi;
    /** Runtime stride-folded access forms, aligned with
     *  Image::mergedSlots / Image::accesses. */
    std::vector<int64_t> foldCoef;
    std::vector<int64_t> foldConst;
    std::vector<double *> accBase;
    std::vector<int32_t> accSpace;
    std::vector<std::vector<Storage>> storage;     ///< per tensor
    std::vector<std::vector<std::vector<double>>> scratch;
    std::vector<double> stack;
    /** Vectorized fast path: kSimdWidth lanes per stack slot (empty
     *  unless the machine runs with SIMD enabled). */
    std::vector<double> vecStack;
    /** Inner-loop fast path: offsets/guard values at the loop start
     *  plus per-iteration steps, aligned with Image::xinsts (loads),
     *  Image::stmts (writes/mode) and Image::guards. */
    std::vector<int64_t> innerOff, innerStep;
    std::vector<int64_t> writeOff, writeStep;
    /** Per statement: the inclusive range of iteration deltas whose
     *  guards all pass (empty when dLo > dHi). */
    std::vector<int64_t> stmtDLo, stmtDHi;
    /** Per guard: its value at the current inner-loop start (kept
     *  incrementally across the entries of a perfect nest). */
    std::vector<int64_t> guardBase;
    ExecStats stats;
    int parallelDepth = 0;

    TraceSink *sink = nullptr;
    std::vector<TraceRecord> traceBuf;
    size_t traceN = 0;
};

class Machine
{
  public:
    Machine(const Image &img, Buffers &buffers, bool simd = false)
        : img_(img), buffers_(buffers), simd_(simd)
    {
        st_.vars.assign(img.numVars, 0);
        st_.loopHi.assign(img.loops.size(), 0);
        st_.foldCoef.assign(img.mergedSlots.size(), 0);
        st_.foldConst.assign(img.accesses.size(), 0);
        st_.accBase.assign(img.accesses.size(), nullptr);
        st_.accSpace.assign(img.accesses.size(), 0);
        st_.storage.resize(img.numTensors);
        st_.scratch.resize(img.numTensors);
        st_.stack.assign(std::max(img.maxStack, 1), 0.0);
        if (simd_)
            st_.vecStack.assign(
                size_t(std::max(img.maxStack, 1)) *
                    size_t(kSimdWidth),
                0.0);
        st_.innerOff.assign(img.xinsts.size(), 0);
        st_.innerStep.assign(img.xinsts.size(), 0);
        st_.writeOff.assign(img.stmts.size(), 0);
        st_.writeStep.assign(img.stmts.size(), 0);
        st_.stmtDLo.assign(img.stmts.size(), 0);
        st_.stmtDHi.assign(img.stmts.size(), 0);
        st_.guardBase.assign(img.guards.size(), 0);
        for (int32_t t = 0; t < img.numTensors; ++t) {
            Storage s;
            s.base = buffers.data(t).data();
            const auto &str = buffers.strides(t);
            const auto &ext = buffers.extents(t);
            s.rank = int32_t(str.size());
            for (int32_t d = 0; d < s.rank; ++d) {
                s.strides[d] = str[d];
                s.extents[d] = ext[d];
            }
            s.space = t;
            s.global = true;
            st_.storage[t].push_back(s);
        }
        for (size_t a = 0; a < img.accesses.size(); ++a)
            refold(int32_t(a));
    }

    template <bool Traced>
    ExecStats
    run(TraceSink *sink)
    {
        Timer timer;
        if (Traced) {
            st_.sink = sink;
            st_.traceBuf.resize(kTraceBatch);
        }
        const Inst *insts = img_.insts.data();
        int32_t pc = 0;
        for (;;) {
            const Inst &in = insts[pc];
            switch (in.op) {
              case Op::ForBegin: {
                const Loop &loop = img_.loops[in.arg];
                int64_t lo = evalBound(loop.lb, true);
                int64_t hi = evalBound(loop.ub, false);
                if (lo > hi) {
                    pc = in.jump;
                    break;
                }
                if (!Traced && loop.nestInner >= 0) {
                    runNest(loop, lo, hi);
                    pc = in.jump;
                    break;
                }
                if (!Traced && loop.stmtBegin >= 0) {
                    runInner(loop, lo, hi);
                    pc = in.jump;
                    break;
                }
                st_.vars[loop.var] = lo;
                st_.loopHi[in.arg] = hi;
                if (loop.parallel)
                    ++st_.parallelDepth;
                ++pc;
                break;
              }
              case Op::ForEnd: {
                const Loop &loop = img_.loops[in.arg];
                if (++st_.vars[loop.var] <= st_.loopHi[in.arg]) {
                    pc = in.jump;
                    break;
                }
                if (loop.parallel)
                    --st_.parallelDepth;
                ++pc;
                break;
              }
              case Op::Stmt:
                execStmt<Traced>(img_.stmts[in.arg]);
                ++pc;
                break;
              case Op::AllocEnter:
                enterAlloc(img_.allocs[in.arg]);
                ++pc;
                break;
              case Op::AllocExit:
                exitAlloc(img_.allocs[in.arg]);
                ++pc;
                break;
              case Op::Halt:
                if (Traced)
                    flushTrace();
                st_.stats.seconds = timer.seconds();
                return st_.stats;
            }
        }
    }

    /**
     * Untraced execution of the well-nested tape span
     * [pc, end_pc): the sequential glue of a parallel run (spans
     * between tile regions, regions kept sequential) and the body
     * slice of one tile. Returns with the machine's storage stacks
     * and fold state exactly as on entry (Alloc scopes inside the
     * span are balanced).
     */
    void
    runRange(int32_t pc, int32_t end_pc)
    {
        const Inst *insts = img_.insts.data();
        while (pc != end_pc) {
            const Inst &in = insts[pc];
            switch (in.op) {
              case Op::ForBegin: {
                const Loop &loop = img_.loops[in.arg];
                int64_t lo = evalBound(loop.lb, true);
                int64_t hi = evalBound(loop.ub, false);
                if (lo > hi) {
                    pc = in.jump;
                    break;
                }
                if (loop.nestInner >= 0) {
                    runNest(loop, lo, hi);
                    pc = in.jump;
                    break;
                }
                if (loop.stmtBegin >= 0) {
                    runInner(loop, lo, hi);
                    pc = in.jump;
                    break;
                }
                st_.vars[loop.var] = lo;
                st_.loopHi[in.arg] = hi;
                if (loop.parallel)
                    ++st_.parallelDepth;
                ++pc;
                break;
              }
              case Op::ForEnd: {
                const Loop &loop = img_.loops[in.arg];
                if (++st_.vars[loop.var] <= st_.loopHi[in.arg]) {
                    pc = in.jump;
                    break;
                }
                if (loop.parallel)
                    --st_.parallelDepth;
                ++pc;
                break;
              }
              case Op::Stmt:
                execStmt<false>(img_.stmts[in.arg]);
                ++pc;
                break;
              case Op::AllocEnter:
                enterAlloc(img_.allocs[in.arg]);
                ++pc;
                break;
              case Op::AllocExit:
                exitAlloc(img_.allocs[in.arg]);
                ++pc;
                break;
              case Op::Halt:
                return;
            }
        }
    }

    /**
     * Execute one tile of region @p r: pin the tile-loop vars to
     * @p coords, preset parallelDepth as if the coincident tile
     * loops had been entered (so instancesParallel matches the
     * sequential run bit-for-bit), and run the body slice.
     */
    void
    runTile(const TileRegion &r, const int64_t *coords)
    {
        for (size_t k = 0; k < r.loops.size(); ++k)
            st_.vars[img_.loops[r.loops[k]].var] = coords[k];
        int saved = st_.parallelDepth;
        st_.parallelDepth = saved + r.coincidentLevels;
        runRange(r.bodyBegin, r.bodyEnd);
        st_.parallelDepth = saved;
    }

    /**
     * Enumerate region @p r's tiles in sequential (lexicographic)
     * order, appending each tile's coordinates (one int64 per level)
     * to @p coords. Inner levels re-evaluate their bounds under the
     * outer coordinates, so non-rectangular (skewed) tile spaces
     * enumerate exactly the tiles the sequential run visits. Reads
     * no buffers -- safe during planning.
     */
    void
    enumerateTiles(const TileRegion &r, std::vector<int64_t> &coords)
    {
        size_t levels = r.loops.size();
        std::vector<int64_t> hi(levels);
        size_t k = 0;
        for (;;) {
            const Loop &loop = img_.loops[r.loops[k]];
            int64_t lo = evalBound(loop.lb, true);
            int64_t h = evalBound(loop.ub, false);
            if (lo <= h) {
                st_.vars[loop.var] = lo;
                hi[k] = h;
                if (k + 1 < levels) {
                    ++k;
                    continue;
                }
                for (;;) {
                    for (size_t j = 0; j < levels; ++j)
                        coords.push_back(
                            st_.vars[img_.loops[r.loops[j]].var]);
                    if (++st_.vars[loop.var] > hi[k])
                        break;
                }
            }
            // Carry: advance the innermost unfinished outer level.
            for (;;) {
                if (k == 0)
                    return;
                --k;
                const Loop &outer = img_.loops[r.loops[k]];
                if (++st_.vars[outer.var] <= hi[k])
                    break;
            }
            ++k;
        }
    }

    ExecStats &stats() { return st_.stats; }

  private:
    /** Scalar unary op, bit-exact with the reference interpreter. */
    static double
    applyUn(uint8_t sub, double v)
    {
        switch (ir::UnOp(sub)) {
          case ir::UnOp::Neg: return -v;
          case ir::UnOp::Exp: return std::exp(v);
          case ir::UnOp::Log: return std::log(std::abs(v) + 1e-12);
          case ir::UnOp::Sqrt: return std::sqrt(std::abs(v));
          case ir::UnOp::Abs: return std::abs(v);
          case ir::UnOp::Relu: return v > 0 ? v : 0.0;
          case ir::UnOp::Floor: return std::floor(v);
        }
        return v;
    }

    /** Scalar binary op, bit-exact with the reference interpreter. */
    static double
    applyBin(uint8_t sub, double a, double b)
    {
        switch (ir::BinOp(sub)) {
          case ir::BinOp::Add: return a + b;
          case ir::BinOp::Sub: return a - b;
          case ir::BinOp::Mul: return a * b;
          case ir::BinOp::Div: return a / (b == 0 ? 1e-12 : b);
          case ir::BinOp::Min: return std::min(a, b);
          case ir::BinOp::Max: return std::max(a, b);
        }
        return 0;
    }

    int64_t
    evalLin(const LinFn &fn) const
    {
        int64_t acc = fn.c;
        const LinPair *pairs = img_.pairs.data();
        const int64_t *vars = st_.vars.data();
        for (int32_t i = fn.begin; i < fn.end; ++i)
            acc += pairs[i].coef * vars[pairs[i].slot];
        return acc;
    }

    int64_t
    evalTerm(const BTerm &t, bool is_lower) const
    {
        int64_t acc = evalLin(t.lin);
        if (t.div == 1)
            return acc;
        return is_lower ? ceilDiv(acc, t.div)
                        : floorDiv(acc, t.div);
    }

    int64_t
    evalBound(const Bound &b, bool is_lower) const
    {
        int64_t best = 0;
        for (int32_t a = b.altBegin; a < b.altEnd; ++a) {
            const Range &r = img_.altTerms[a];
            int64_t alt = evalTerm(img_.terms[r.begin], is_lower);
            for (int32_t t = r.begin + 1; t < r.end; ++t) {
                int64_t v = evalTerm(img_.terms[t], is_lower);
                alt = is_lower ? std::max(alt, v)
                               : std::min(alt, v);
            }
            if (a == b.altBegin)
                best = alt;
            else
                best = is_lower ? std::min(best, alt)
                                : std::max(best, alt);
        }
        return best;
    }

    /** Recompute access @p a's stride-folded linear offset form
     *  against the tensor's currently active storage. */
    void
    refold(int32_t a)
    {
        const AccessC &ac = img_.accesses[a];
        const Storage &sto = st_.storage[ac.tensor].back();
        int64_t *coef = st_.foldCoef.data() + ac.foldBase;
        std::memset(coef, 0, sizeof(int64_t) * ac.foldCount);
        int64_t c = 0;
        for (int32_t d = 0; d < ac.rank; ++d) {
            const LinFn &fn = img_.dimFns[ac.dimBegin + d];
            c += sto.strides[d] * (fn.c - sto.origin[d]);
            for (int32_t i = fn.begin; i < fn.end; ++i)
                coef[img_.pairMergedIdx[i]] +=
                    sto.strides[d] * img_.pairs[i].coef;
        }
        st_.foldConst[a] = c;
        st_.accBase[a] = sto.base;
        st_.accSpace[a] = sto.space;
    }

    int64_t
    accessOffset(int32_t a) const
    {
        const AccessC &ac = img_.accesses[a];
        int64_t off = st_.foldConst[a];
        const int64_t *coef = st_.foldCoef.data() + ac.foldBase;
        const int32_t *slots =
            img_.mergedSlots.data() + ac.foldBase;
        const int64_t *vars = st_.vars.data();
        for (int32_t i = 0; i < ac.foldCount; ++i)
            off += coef[i] * vars[slots[i]];
        return off;
    }

    template <bool Traced>
    void
    trace(int32_t space, int64_t off, bool is_write)
    {
        if (!Traced)
            return;
        st_.traceBuf[st_.traceN++] = {off, space,
                                      uint8_t(is_write ? 1 : 0)};
        if (st_.traceN == kTraceBatch)
            flushTrace();
    }

    void
    flushTrace()
    {
        if (st_.traceN && st_.sink)
            st_.sink->onRecords(st_.traceBuf.data(), st_.traceN);
        st_.traceN = 0;
    }

    /** @tparam Count false on the fast path, where the per-iteration
     *  load count is hoisted out of the loop instead. */
    template <bool Traced, bool Count = true>
    double
    loadIdx(int32_t tensor, const int64_t *idx, size_t rank)
    {
        if (Count)
            ++st_.stats.loads;
        const Storage &sto = st_.storage[tensor].back();
        if (sto.global) {
            int64_t off = buffers_.offsetOf(tensor, idx, rank);
            trace<Traced>(tensor, off, false);
            return sto.base[off];
        }
        int64_t off = 0;
        for (size_t d = 0; d < rank; ++d) {
            int64_t rel = idx[d] - sto.origin[d];
            if (rel < 0 || rel >= sto.extents[d])
                fatal("scratchpad read outside promoted box");
            off += rel * sto.strides[d];
        }
        trace<Traced>(sto.space, off, false);
        return sto.base[off];
    }

    template <bool Traced>
    void
    execStmt(const StmtC &sc)
    {
        for (int32_t g = sc.guardBegin; g < sc.guardEnd; ++g) {
            const GuardC &gc = img_.guards[g];
            int64_t acc = evalLin(gc.fn);
            if (gc.isEq ? acc != 0 : acc < 0) {
                ++st_.stats.guardFails;
                return;
            }
        }
        ++st_.stats.instances;
        if (st_.parallelDepth > 0)
            ++st_.stats.instancesParallel;
        st_.stats.flops += sc.ops;
        if (sc.xBegin == sc.xEnd)
            return;

        double *sp = st_.stack.data(); // next free slot
        const XInst *xs = img_.xinsts.data();
        for (int32_t x = sc.xBegin; x < sc.xEnd; ++x) {
            const XInst &xi = xs[x];
            switch (xi.op) {
              case XOp::Const:
                *sp++ = img_.consts[xi.a];
                break;
              case XOp::Iter:
                *sp++ = double(st_.vars[xi.a] + xi.b);
                break;
              case XOp::Load: {
                ++st_.stats.loads;
                int64_t off = accessOffset(xi.a);
                trace<Traced>(st_.accSpace[xi.a], off, false);
                *sp++ = st_.accBase[xi.a][off];
                break;
              }
              case XOp::LoadIdx: {
                int64_t idx[kMaxRank];
                sp -= xi.b;
                for (int32_t i = 0; i < xi.b; ++i)
                    idx[i] = llround(sp[i]);
                *sp++ = loadIdx<Traced>(xi.a, idx, size_t(xi.b));
                break;
              }
              case XOp::Un:
                sp[-1] = applyUn(xi.sub, sp[-1]);
                break;
              case XOp::Bin: {
                double b = *--sp;
                sp[-1] = applyBin(xi.sub, sp[-1], b);
                break;
              }
            }
        }
        double value = sp[-1];
        if (sc.writeAccess >= 0) {
            ++st_.stats.stores;
            int64_t off = accessOffset(sc.writeAccess);
            trace<Traced>(st_.accSpace[sc.writeAccess], off, true);
            st_.accBase[sc.writeAccess][off] = value;
        }
    }

    /**
     * Untraced innermost-loop fast path: the whole loop runs inside
     * one dispatch. Every access offset and guard value is affine in
     * the loop var, so per-iteration evaluation collapses to
     * base + step * d — and each guard can be *solved* for the
     * iteration interval it passes on, instead of re-checked per
     * iteration. The intersection over a statement's guards yields
     * [dLo, dHi]: guardFails counts the complement (one per failing
     * instance, independent of which guard failed, exactly like the
     * generic short-circuit), and instances, flops, loads and stores
     * hoist over the interval length. The iteration loop then runs
     * only interval membership checks and the expression tape.
     */
    void
    runInner(const Loop &loop, int64_t lo, int64_t hi,
             bool fromNest = false)
    {
        const int64_t n = hi - lo + 1;
        if (loop.parallel)
            ++st_.parallelDepth;
        st_.vars[loop.var] = lo;
        const bool par = st_.parallelDepth > 0;
        int64_t d_start = n, d_end = -1;
        for (int32_t s = loop.stmtBegin; s < loop.stmtEnd; ++s) {
            const StmtC &sc = img_.stmts[s];
            int64_t dlo = 0, dhi = n - 1;
            for (int32_t g = sc.guardBegin; g < sc.guardEnd; ++g) {
                const GuardC &gc = img_.guards[g];
                // On the first entry of a nest (and outside nests)
                // the guard value at d = 0 is evaluated and cached;
                // later nest entries update it incrementally
                // (advanceNest) instead of re-walking the form.
                int64_t base;
                if (fromNest)
                    base = st_.guardBase[g];
                else
                    st_.guardBase[g] = base = evalLin(gc.fn);
                int64_t step = gc.innerStep;
                if (step == 0) {
                    if (gc.isEq ? base != 0 : base < 0)
                        dhi = dlo - 1;
                } else if (gc.isEq) {
                    // base + step * d == 0 at one delta, if integer.
                    if (-base % step != 0)
                        dhi = dlo - 1;
                    else {
                        int64_t d = -base / step;
                        dlo = std::max(dlo, d);
                        dhi = std::min(dhi, d);
                    }
                } else if (step > 0) {
                    dlo = std::max(dlo, ceilDiv(-base, step));
                } else {
                    dhi = std::min(dhi, floorDiv(base, -step));
                }
            }
            // Offsets are primed even for statements whose interval
            // came up empty: a later nest entry advances them by
            // deltas, so they must always hold the d = 0 values.
            if (!fromNest && sc.xBegin != sc.xEnd) {
                for (int32_t x = sc.xBegin; x < sc.xEnd; ++x) {
                    const XInst &xi = img_.xinsts[x];
                    if (xi.op == XOp::Load) {
                        st_.innerOff[x] = accessOffset(xi.a);
                        st_.innerStep[x] =
                            xi.b >= 0 ? st_.foldCoef[xi.b] : 0;
                    }
                }
                if (sc.writeAccess >= 0) {
                    st_.writeOff[s] = accessOffset(sc.writeAccess);
                    st_.writeStep[s] =
                        sc.writeStepSlot >= 0
                            ? st_.foldCoef[sc.writeStepSlot]
                            : 0;
                }
            }
            if (dhi < dlo) {
                st_.stats.guardFails += uint64_t(n);
                st_.stmtDLo[s] = 1;
                st_.stmtDHi[s] = 0;
                continue;
            }
            st_.stmtDLo[s] = dlo;
            st_.stmtDHi[s] = dhi;
            d_start = std::min(d_start, dlo);
            d_end = std::max(d_end, dhi);
            int64_t live = dhi - dlo + 1;
            st_.stats.guardFails += uint64_t(n - live);
            st_.stats.instances += uint64_t(live);
            if (par)
                st_.stats.instancesParallel += uint64_t(live);
            st_.stats.flops += sc.ops * double(live);
            if (sc.xBegin == sc.xEnd)
                continue; // null body: no loads, no store
            st_.stats.loads +=
                uint64_t(sc.loadsPerIter) * uint64_t(live);
            if (sc.writeAccess >= 0)
                st_.stats.stores += uint64_t(live);
        }
        if (loop.stmtEnd - loop.stmtBegin == 1) {
            // Single statement: its pass interval IS the loop.
            const StmtC &sc = img_.stmts[loop.stmtBegin];
            int64_t d = d_start;
            if (simd_)
            if (simd_ && sc.simdOk &&
                d_end - d + 1 >= kSimdWidth &&
                simdSafe(loop.stmtBegin, sc)) {
                ++st_.stats.simdLoops;
                for (; d + kSimdWidth - 1 <= d_end;
                     d += kSimdWidth) {
                    execFastStmtBlock(loop.stmtBegin, sc,
                                      loop.var, lo, d);
                    st_.stats.simdLanes += uint64_t(kSimdWidth);
                }
            }
            // Scalar remainder (the whole loop when not selected).
            for (; d <= d_end; ++d) {
                st_.vars[loop.var] = lo + d;
                execFastStmt(loop.stmtBegin, sc, d);
            }
        } else {
            for (int64_t d = d_start; d <= d_end; ++d) {
                st_.vars[loop.var] = lo + d;
                for (int32_t s = loop.stmtBegin; s < loop.stmtEnd;
                     ++s)
                    if (d >= st_.stmtDLo[s] && d <= st_.stmtDHi[s])
                        execFastStmt(s, img_.stmts[s], d);
            }
        }
        // Leave the var where the generic loop would (hi + 1).
        st_.vars[loop.var] = hi + 1;
        if (loop.parallel)
            --st_.parallelDepth;
    }

    /**
     * Untraced fast path over a perfect two-level nest: the first
     * non-empty inner entry evaluates guard values and access
     * offsets from scratch (runInner with fromNest = false, which
     * caches them); every later entry advances the cached values by
     * the outer/inner deltas since the previous entry, so the
     * per-entry cost is a handful of adds instead of re-walking
     * every linear form. Pays off exactly where tiled code hurts
     * the interpreter most: short innermost trip counts (e.g. a
     * 3-wide convolution window) under guard-heavy tile loops.
     */
    void
    runNest(const Loop &outer, int64_t lo, int64_t hi)
    {
        const Loop &inner = img_.loops[outer.nestInner];
        if (outer.parallel)
            ++st_.parallelDepth;
        bool have_prev = false;
        int64_t prev_w = 0, prev_ilo = 0;
        for (int64_t w = lo; w <= hi; ++w) {
            st_.vars[outer.var] = w;
            int64_t ilo = evalBound(inner.lb, true);
            int64_t ihi = evalBound(inner.ub, false);
            if (ilo > ihi)
                continue;
            if (have_prev) {
                advanceNest(inner, w - prev_w, ilo - prev_ilo);
                runInner(inner, ilo, ihi, true);
            } else {
                runInner(inner, ilo, ihi, false);
            }
            prev_w = w;
            prev_ilo = ilo;
            have_prev = true;
        }
        st_.vars[outer.var] = hi + 1;
        if (outer.parallel)
            --st_.parallelDepth;
    }

    /** Advance the cached guard values and access offsets by
     *  @p dw outer-loop steps and @p di inner-loop-start steps. */
    void
    advanceNest(const Loop &inner, int64_t dw, int64_t di)
    {
        for (int32_t s = inner.stmtBegin; s < inner.stmtEnd; ++s) {
            const StmtC &sc = img_.stmts[s];
            for (int32_t g = sc.guardBegin; g < sc.guardEnd; ++g) {
                const GuardC &gc = img_.guards[g];
                st_.guardBase[g] +=
                    gc.outerStep * dw + gc.innerStep * di;
            }
            if (sc.xBegin == sc.xEnd)
                continue;
            for (int32_t x = sc.xBegin; x < sc.xEnd; ++x) {
                const XInst &xi = img_.xinsts[x];
                if (xi.op != XOp::Load)
                    continue;
                const AccessC &ac = img_.accesses[xi.a];
                if (ac.outerStepSlot >= 0)
                    st_.innerOff[x] +=
                        st_.foldCoef[ac.outerStepSlot] * dw;
                if (ac.innerStepSlot >= 0)
                    st_.innerOff[x] +=
                        st_.foldCoef[ac.innerStepSlot] * di;
            }
            if (sc.writeAccess >= 0) {
                const AccessC &ac = img_.accesses[sc.writeAccess];
                if (ac.outerStepSlot >= 0)
                    st_.writeOff[s] +=
                        st_.foldCoef[ac.outerStepSlot] * dw;
                if (ac.innerStepSlot >= 0)
                    st_.writeOff[s] +=
                        st_.foldCoef[ac.innerStepSlot] * di;
            }
        }
    }

    /**
     * May the vectorized block path run statement @p s of the
     * current inner loop? Block execution loads every lane of every
     * read before storing any lane, so within one kSimdWidth-wide
     * block, loads never observe same-block stores. That changes
     * scalar semantics exactly when a *flow* dependence (store at
     * delta d, load of the same address at delta d+k, k >= 1) falls
     * inside a block -- k in [1, kSimdWidth-1]. Anti dependences
     * (k <= -1: the scalar load happens before the conflicting
     * store) and same-lane read-then-write (k == 0) are preserved by
     * the load-all-then-store-all order; distances >= kSimdWidth
     * land in a later block, which runs strictly after this one.
     * Loads from other tensors cannot alias (disjoint allocations).
     * Only unit-stride stores are selected (contiguous vector
     * writes, and wstep == 0 with a same-base load is a scalar
     * reduction chain); unequal load/store strides over one base
     * walk incommensurate address sets, which we conservatively
     * reject rather than solve.
     */
    bool
    simdSafe(int32_t s, const StmtC &sc) const
    {
        if (sc.writeAccess < 0)
            return true; // no store: loads see frozen memory
        const int64_t wstep = st_.writeStep[s];
        if (wstep != 1)
            return false;
        const double *wbase = st_.accBase[sc.writeAccess];
        const int64_t woff = st_.writeOff[s];
        for (int32_t x = sc.xBegin; x < sc.xEnd; ++x) {
            const XInst &xi = img_.xinsts[x];
            if (xi.op != XOp::Load)
                continue;
            if (st_.accBase[xi.a] != wbase)
                continue;
            if (st_.innerStep[x] != wstep)
                return false;
            int64_t k = woff - st_.innerOff[x];
            if (k >= 1 && k < kSimdWidth)
                return false; // in-block flow dependence
        }
        return true;
    }

    /**
     * One kSimdWidth-wide block of the single-statement fast path:
     * lanes d0 .. d0+kSimdWidth-1 of the inner loop, evaluated
     * slot-parallel on the vector stack. Each lane performs exactly
     * the scalar operation sequence of execFastStmt -- the lane
     * loops apply applyUn/applyBin element-wise, never reassociate,
     * and load/store through the same strength-reduced offsets -- so
     * block results are bit-identical to scalar execution (the
     * selection guard simdSafe() rules out in-block dependences).
     */
    void
    execFastStmtBlock(int32_t s, const StmtC &sc, int32_t loop_var,
                      int64_t lo, int64_t d0)
    {
        constexpr int64_t W = kSimdWidth;
        double *sp = st_.vecStack.data(); // next free slot
        const XInst *xs = img_.xinsts.data();
        const int64_t *off = st_.innerOff.data();
        const int64_t *step = st_.innerStep.data();
        for (int32_t x = sc.xBegin; x < sc.xEnd; ++x) {
            const XInst &xi = xs[x];
            switch (xi.op) {
              case XOp::Const: {
                const double v = img_.consts[xi.a];
                for (int64_t l = 0; l < W; ++l)
                    sp[l] = v;
                sp += W;
                break;
              }
              case XOp::Iter: {
                if (xi.a == loop_var) {
                    const double base = double(lo + d0 + xi.b);
                    for (int64_t l = 0; l < W; ++l)
                        sp[l] = base + double(l);
                } else {
                    const double v =
                        double(st_.vars[xi.a] + xi.b);
                    for (int64_t l = 0; l < W; ++l)
                        sp[l] = v;
                }
                sp += W;
                break;
              }
              case XOp::Load: {
                const double *base =
                    st_.accBase[xi.a] + off[x] + step[x] * d0;
                const int64_t st = step[x];
                for (int64_t l = 0; l < W; ++l)
                    sp[l] = base[st * l];
                sp += W;
                break;
              }
              case XOp::LoadIdx:
                panic("simd block on a LoadIdx statement");
              case XOp::Un:
                for (int64_t l = 0; l < W; ++l)
                    sp[l - W] = applyUn(xi.sub, sp[l - W]);
                break;
              case XOp::Bin:
                sp -= W;
                for (int64_t l = 0; l < W; ++l)
                    sp[l - W] =
                        applyBin(xi.sub, sp[l - W], sp[l]);
                break;
            }
        }
        if (sc.writeAccess >= 0) {
            // simdSafe admitted unit-stride stores only.
            double *out = st_.accBase[sc.writeAccess] +
                          st_.writeOff[s] + st_.writeStep[s] * d0;
            for (int64_t l = 0; l < W; ++l)
                out[l] = sp[l - W];
        }
    }

    /** One statement instance on the fast path, at iteration delta
     *  @p d from the loop start: guards already solved away and
     *  counters hoisted by runInner, offsets strength-reduced. */
    void
    execFastStmt(int32_t s, const StmtC &sc, int64_t d)
    {
        if (sc.xBegin == sc.xEnd)
            return;
        double *sp = st_.stack.data();
        const XInst *xs = img_.xinsts.data();
        const int64_t *off = st_.innerOff.data();
        const int64_t *step = st_.innerStep.data();
        for (int32_t x = sc.xBegin; x < sc.xEnd; ++x) {
            const XInst &xi = xs[x];
            switch (xi.op) {
              case XOp::Const:
                *sp++ = img_.consts[xi.a];
                break;
              case XOp::Iter:
                *sp++ = double(st_.vars[xi.a] + xi.b);
                break;
              case XOp::Load:
                *sp++ = st_.accBase[xi.a][off[x] + step[x] * d];
                break;
              case XOp::LoadIdx: {
                int64_t idx[kMaxRank];
                sp -= xi.b;
                for (int32_t i = 0; i < xi.b; ++i)
                    idx[i] = llround(sp[i]);
                *sp++ = loadIdx<false, false>(xi.a, idx,
                                              size_t(xi.b));
                break;
              }
              case XOp::Un:
                sp[-1] = applyUn(xi.sub, sp[-1]);
                break;
              case XOp::Bin: {
                double b = *--sp;
                sp[-1] = applyBin(xi.sub, sp[-1], b);
                break;
              }
            }
        }
        double value = sp[-1];
        if (sc.writeAccess >= 0)
            st_.accBase[sc.writeAccess]
                       [st_.writeOff[s] + st_.writeStep[s] * d] =
                value;
    }

    void
    enterAlloc(const AllocC &al)
    {
        for (int32_t p = al.promoBegin; p < al.promoEnd; ++p) {
            const PromoC &pc = img_.promos[p];
            const auto &gext = buffers_.extents(pc.tensor);
            Storage s;
            s.rank = pc.rank;
            s.space = img_.numTensors + pc.tensor;
            s.global = false;
            int64_t size = 1;
            for (int32_t d = 0; d < pc.rank; ++d) {
                int64_t lo = evalBound(
                    img_.boxBounds[pc.boxBase + d], true);
                int64_t hi = evalBound(
                    img_.boxBounds[pc.boxBase + pc.rank + d],
                    false);
                lo = std::max<int64_t>(lo, 0);
                hi = std::min<int64_t>(hi, gext[d] - 1);
                if (hi < lo)
                    hi = lo - 1; // empty box
                s.origin[d] = lo;
                s.extents[d] = hi - lo + 1;
                size *= std::max<int64_t>(hi - lo + 1, 0);
            }
            for (int32_t d = pc.rank; d-- > 0;)
                s.strides[d] = d + 1 == pc.rank
                                   ? 1
                                   : s.strides[d + 1] *
                                         std::max<int64_t>(
                                             s.extents[d + 1], 0);
            std::vector<double> data(
                size_t(std::max<int64_t>(size, 0)), 0.0);
            s.base = data.data();
            if (size > 0)
                copyIn(pc, s, data);
            st_.scratch[pc.tensor].push_back(std::move(data));
            st_.storage[pc.tensor].push_back(s);
            for (int32_t a : img_.accessesByTensor[pc.tensor])
                refold(a);
        }
    }

    /** Copy-in: producers may read live input values. Reads the
     *  global buffer directly (no trace), like the interpreter. */
    void
    copyIn(const PromoC &pc, const Storage &s,
           std::vector<double> &data)
    {
        const auto &global = buffers_.data(pc.tensor);
        const auto &gstr = buffers_.strides(pc.tensor);
        int64_t n = int64_t(data.size());
        for (int64_t i = 0; i < n; ++i) {
            int64_t rem = i, goff = 0;
            for (int32_t d = pc.rank; d-- > 0;) {
                int64_t coord = s.origin[d] + rem % s.extents[d];
                rem /= s.extents[d];
                goff += coord * gstr[d];
            }
            data[size_t(i)] = global[size_t(goff)];
        }
    }

    void
    exitAlloc(const AllocC &al)
    {
        for (int32_t p = al.promoBegin; p < al.promoEnd; ++p) {
            const PromoC &pc = img_.promos[p];
            st_.storage[pc.tensor].pop_back();
            st_.scratch[pc.tensor].pop_back();
            for (int32_t a : img_.accessesByTensor[pc.tensor])
                refold(a);
        }
    }

    const Image &img_;
    Buffers &buffers_;
    State st_;
    /** Vectorized inner-loop fast path enabled for this run. */
    bool simd_ = false;
};

} // namespace bytecode_detail

using bytecode_detail::Image;
using bytecode_detail::Machine;
using bytecode_detail::TileRegion;

namespace {

/** Merge run counters (seconds excluded: the caller owns timing).
 *  Order-independent for bit-identity: the integer counters are
 *  exact, and flops sums integer-valued per-statement op counts,
 *  which doubles add exactly in any association. */
void
addStats(ExecStats &a, const ExecStats &b)
{
    a.instances += b.instances;
    a.instancesParallel += b.instancesParallel;
    a.flops += b.flops;
    a.loads += b.loads;
    a.stores += b.stores;
    a.guardFails += b.guardFails;
    a.simdLoops += b.simdLoops;
    a.simdLanes += b.simdLanes;
}

/** One SIMD admission per run: the exec.simd.select failpoint lets
 *  the robustness suite fail the selection deterministically; any
 *  failure degrades the whole run to scalar with the reason
 *  recorded (the buffers are untouched at this point). */
bool
admitSimd(SimdMode simd, std::string *fallback_reason)
{
    if (simd != SimdMode::On)
        return false;
    try {
        failpoints::hit("exec.simd.select");
    } catch (const std::exception &e) {
        if (fallback_reason)
            *fallback_reason = e.what();
        return false;
    }
    return true;
}

/** How one tile region is executed in a parallel run. */
enum class RegionMode
{
    Sequential,
    Static, ///< blocking parallel_for over independent tiles
    Graph,  ///< ready-queue drain of the inter-tile DAG
};

/** Planning result of one region (built before any execution). */
struct RegionPlan
{
    RegionMode mode = RegionMode::Sequential;
    const deps::TileBandGraph *cls = nullptr;
    std::vector<int64_t> tiles; ///< lex-order coords, L per tile
    int64_t n = 0;              ///< tile count
    uint64_t critical = 0;      ///< longest dependence chain (tiles)
    // Graph mode: dense coordinate grid + initial in-degrees.
    std::vector<int64_t> lo, hi, stride;
    std::vector<int32_t> grid; ///< flat coord -> tile index, -1 gap
    std::vector<int32_t> indeg;
};

/** Cap on the dense tile-coordinate grid of one wavefront region. */
constexpr int64_t kMaxGridCells = int64_t(1) << 22;

} // namespace

BytecodeKernel
BytecodeKernel::compile(const Program &program, const AstPtr &ast)
{
    bytecode_detail::Compiler compiler(program, ast);
    return BytecodeKernel(compiler.compile());
}

unsigned
simdWidth()
{
    return unsigned(bytecode_detail::kSimdWidth);
}

ExecStats
BytecodeKernel::run(Buffers &buffers, SimdMode simd,
                    std::string *simd_fallback) const
{
    if (!image_)
        fatal("bytecode: run() on an empty kernel");
    Machine m(*image_, buffers, admitSimd(simd, simd_fallback));
    return m.run<false>(nullptr);
}

ExecStats
BytecodeKernel::run(Buffers &buffers, TraceSink &sink) const
{
    if (!image_)
        fatal("bytecode: run() on an empty kernel");
    Machine m(*image_, buffers);
    return m.run<true>(&sink);
}

ExecStats
BytecodeKernel::run(Buffers &buffers, const TraceHook &hook) const
{
    if (!hook)
        return run(buffers);
    HookSink sink(hook);
    return run(buffers, sink);
}

ExecStats
BytecodeKernel::runParallel(Buffers &buffers, unsigned threads,
                            ParStrategy strategy,
                            const std::vector<deps::TileBandGraph> *bands,
                            ParRunStats &par,
                            std::string &fallback_reason,
                            SimdMode simd,
                            std::string *simd_fallback) const
{
    if (!image_)
        fatal("bytecode: runParallel() on an empty kernel");
    const Image &img = *image_;
    Timer timer;
    par = ParRunStats{};
    if (threads == 0)
        threads = ThreadPool::defaultThreads();
    const bool vec = admitSimd(simd, simd_fallback);

    Machine main(img, buffers, vec);

    // ---- Planning: classification, tile enumeration, DAG build,
    // worker spawn. Strictly read-only on buffers, so any failure
    // here (including the exec.par.* failpoints) degrades to a full
    // sequential run with nothing to undo.
    std::vector<RegionPlan> plans(img.tileRegions.size());
    std::unique_ptr<ThreadPool> pool;
    try {
        for (size_t ri = 0; ri < img.tileRegions.size(); ++ri) {
            const TileRegion &r = img.tileRegions[ri];
            RegionPlan &p = plans[ri];
            size_t L = r.loops.size();
            if (bands)
                for (const auto &b : *bands)
                    if (b.bandId == r.bandId) {
                        p.cls = &b;
                        break;
                    }
            using deps::TileBandClass;
            if (!p.cls || p.cls->cls == TileBandClass::Serial)
                continue;
            if (p.cls->cls == TileBandClass::FullyParallel) {
                // Independent tiles: the static fast path serves
                // both strategies.
                main.enumerateTiles(r, p.tiles);
                p.n = int64_t(p.tiles.size() / L);
                p.mode = RegionMode::Static;
                p.critical = p.n > 0 ? 1 : 0;
                continue;
            }
            // Wavefront: needs the dynamic executor.
            if (strategy != ParStrategy::Graph)
                continue;
            failpoints::hit("exec.par.tilegraph");
            main.enumerateTiles(r, p.tiles);
            p.n = int64_t(p.tiles.size() / L);
            if (p.n == 0) {
                p.mode = RegionMode::Static;
                continue;
            }
            // Dense grid over the tiles' bounding box.
            p.lo.assign(L, 0);
            p.hi.assign(L, 0);
            for (size_t k = 0; k < L; ++k)
                p.lo[k] = p.hi[k] = p.tiles[k];
            for (int64_t i = 1; i < p.n; ++i)
                for (size_t k = 0; k < L; ++k) {
                    int64_t c = p.tiles[size_t(i) * L + k];
                    p.lo[k] = std::min(p.lo[k], c);
                    p.hi[k] = std::max(p.hi[k], c);
                }
            p.stride.assign(L, 1);
            int64_t cells = 1;
            bool oversize = false;
            for (size_t k = L; k-- > 0;) {
                p.stride[k] = cells;
                int64_t span = p.hi[k] - p.lo[k] + 1;
                if (span > kMaxGridCells ||
                    cells > kMaxGridCells / span) {
                    oversize = true;
                    break;
                }
                cells *= span;
            }
            if (oversize)
                continue; // keep the region sequential
            p.grid.assign(size_t(cells), -1);
            auto flatten = [&](const int64_t *c) {
                int64_t f = 0;
                for (size_t k = 0; k < L; ++k)
                    f += (c[k] - p.lo[k]) * p.stride[k];
                return f;
            };
            for (int64_t i = 0; i < p.n; ++i)
                p.grid[size_t(
                    flatten(&p.tiles[size_t(i) * L]))] =
                    int32_t(i);
            // In-degrees + critical path. Lex tile order is a
            // topological order (stencil vectors are lex-positive),
            // so one forward sweep computes chain depths.
            p.indeg.assign(size_t(p.n), 0);
            std::vector<int32_t> depth(size_t(p.n), 1);
            std::vector<int64_t> pred(L);
            for (int64_t i = 0; i < p.n; ++i) {
                for (const auto &d : p.cls->deltas) {
                    bool inside = true;
                    for (size_t k = 0; k < L; ++k) {
                        pred[k] =
                            p.tiles[size_t(i) * L + k] - d[k];
                        if (pred[k] < p.lo[k] ||
                            pred[k] > p.hi[k]) {
                            inside = false;
                            break;
                        }
                    }
                    if (!inside)
                        continue;
                    int32_t j =
                        p.grid[size_t(flatten(pred.data()))];
                    if (j < 0)
                        continue;
                    ++p.indeg[size_t(i)];
                    depth[size_t(i)] =
                        std::max(depth[size_t(i)],
                                 depth[size_t(j)] + 1);
                }
            }
            p.critical = uint64_t(*std::max_element(
                depth.begin(), depth.end()));
            p.mode = RegionMode::Graph;
        }
        failpoints::hit("exec.par.spawn");
        pool = std::make_unique<ThreadPool>(threads);
    } catch (const std::exception &e) {
        fallback_reason = e.what();
        par = ParRunStats{};
        return main.run<false>(nullptr);
    }

    // ---- Execution: sequential glue on the launching machine,
    // regions per their plan.
    par.threads = pool->size();
    par.strategy = strategy;
    ExecStats total;
    std::mutex mu;
    int32_t cursor = 0;
    for (size_t ri = 0; ri < img.tileRegions.size(); ++ri) {
        const TileRegion &r = img.tileRegions[ri];
        RegionPlan &p = plans[ri];
        size_t L = r.loops.size();
        main.runRange(cursor, r.beginPc);
        cursor = r.endPc;
        if (p.mode == RegionMode::Sequential) {
            ++par.regionsSequential;
            main.runRange(r.beginPc, r.endPc);
            continue;
        }
        ++par.regionsParallel;
        par.tilesExecuted += uint64_t(p.n);
        par.criticalPath = std::max(par.criticalPath, p.critical);
        if (p.n == 0)
            continue; // empty iteration space: nothing runs
        if (p.mode == RegionMode::Static) {
            pool->parallelFor(
                0, p.n, 0, [&](int64_t b, int64_t e) {
                    Machine m(img, buffers, vec);
                    for (int64_t i = b; i < e; ++i)
                        m.runTile(r, &p.tiles[size_t(i) * L]);
                    std::lock_guard<std::mutex> lock(mu);
                    addStats(total, m.stats());
                });
        } else {
            // Ready-queue drain: a fixed ring where every tile is
            // enqueued exactly once when its atomic in-degree hits
            // zero; workers claim head tickets with one CAS -- no
            // locks on the hot path.
            const int64_t n = p.n;
            std::vector<std::atomic<int32_t>> indeg(
                static_cast<size_t>(n));
            std::vector<std::atomic<int32_t>> ring(
                static_cast<size_t>(n));
            for (int64_t i = 0; i < n; ++i) {
                indeg[size_t(i)].store(p.indeg[size_t(i)],
                                       std::memory_order_relaxed);
                ring[size_t(i)].store(-1,
                                      std::memory_order_relaxed);
            }
            int64_t ready0 = 0;
            for (int64_t i = 0; i < n; ++i)
                if (p.indeg[size_t(i)] == 0)
                    ring[size_t(ready0++)].store(
                        int32_t(i), std::memory_order_relaxed);
            std::atomic<int64_t> head{0}, tail{ready0};
            std::atomic<int64_t> done{0};
            std::atomic<uint64_t> wait_sum{0};
            std::atomic<bool> abort{false};
            unsigned nw = unsigned(
                std::min<int64_t>(pool->size(), n));
            for (unsigned w = 0; w < nw; ++w)
                pool->submit([&, L] {
                    Machine m(img, buffers, vec);
                    uint64_t my_waits = 0;
                    for (;;) {
                        if (done.load(std::memory_order_acquire) >=
                                n ||
                            abort.load(std::memory_order_relaxed))
                            break;
                        int64_t h = head.load(
                            std::memory_order_relaxed);
                        if (h >= tail.load(
                                     std::memory_order_acquire)) {
                            ++my_waits;
                            std::this_thread::yield();
                            continue;
                        }
                        if (!head.compare_exchange_weak(
                                h, h + 1,
                                std::memory_order_acq_rel))
                            continue;
                        int32_t t;
                        while ((t = ring[size_t(h)].load(
                                    std::memory_order_acquire)) <
                               0)
                            std::this_thread::yield();
                        try {
                            m.runTile(r,
                                      &p.tiles[size_t(t) * L]);
                        } catch (...) {
                            abort.store(
                                true, std::memory_order_relaxed);
                            {
                                std::lock_guard<std::mutex> lock(
                                    mu);
                                addStats(total, m.stats());
                            }
                            wait_sum.fetch_add(
                                my_waits,
                                std::memory_order_relaxed);
                            throw; // captured by the pool
                        }
                        for (const auto &d : p.cls->deltas) {
                            bool inside = true;
                            int64_t flat = 0;
                            for (size_t k = 0; k < L; ++k) {
                                int64_t c =
                                    p.tiles[size_t(t) * L + k] +
                                    d[k];
                                if (c < p.lo[k] || c > p.hi[k]) {
                                    inside = false;
                                    break;
                                }
                                flat +=
                                    (c - p.lo[k]) * p.stride[k];
                            }
                            if (!inside)
                                continue;
                            int32_t s = p.grid[size_t(flat)];
                            if (s < 0)
                                continue;
                            if (indeg[size_t(s)].fetch_sub(
                                    1,
                                    std::memory_order_acq_rel) ==
                                1) {
                                int64_t pos = tail.fetch_add(
                                    1, std::memory_order_acq_rel);
                                ring[size_t(pos)].store(
                                    s,
                                    std::memory_order_release);
                            }
                        }
                        done.fetch_add(
                            1, std::memory_order_acq_rel);
                    }
                    {
                        std::lock_guard<std::mutex> lock(mu);
                        addStats(total, m.stats());
                    }
                    wait_sum.fetch_add(
                        my_waits, std::memory_order_relaxed);
                });
            pool->wait();
            par.waits +=
                wait_sum.load(std::memory_order_relaxed);
        }
        if (pool->failureCount()) {
            std::vector<std::string> fails = pool->takeFailures();
            fatal("parallel tile execution failed: " +
                  fails.front());
        }
    }
    // Trailing sequential span up to (not including) Halt.
    main.runRange(cursor, int32_t(img.insts.size()) - 1);

    addStats(main.stats(), total);
    main.stats().seconds = timer.seconds();
    return main.stats();
}

size_t
BytecodeKernel::numTileRegions() const
{
    return image_ ? image_->tileRegions.size() : 0;
}

size_t
BytecodeKernel::numInstructions() const
{
    return image_ ? image_->insts.size() : 0;
}

size_t
BytecodeKernel::numStatements() const
{
    return image_ ? image_->stmts.size() : 0;
}

} // namespace exec
} // namespace polyfuse
