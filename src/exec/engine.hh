/**
 * @file
 * The tier dispatcher: one entry point over the three execution
 * tiers, with graceful degradation.
 *
 *   Tier::Interp   -- the Tier-0 reference interpreter (executor.hh)
 *   Tier::Bytecode -- the Tier-1 bytecode VM (bytecode.hh), default
 *   Tier::Native   -- the Tier-2 dlopen'ed C kernel (native.hh)
 *
 * Requesting Tier::Native with tracing, or when no toolchain /
 * compile / dlopen step works out, falls back to the bytecode tier
 * (unless allowFallback is off, which turns the condition into a
 * FatalError); the result records the tier that actually ran and
 * why any fallback happened, so callers -- the CLI, benchmarks,
 * robustness tests -- can report it.
 */

#ifndef POLYFUSE_EXEC_ENGINE_HH
#define POLYFUSE_EXEC_ENGINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "deps/tile_graph.hh"
#include "exec/executor.hh"

namespace polyfuse {
namespace exec {

/** Which execution engine runs the generated AST. */
enum class Tier
{
    Interp,   ///< tree-walking reference interpreter
    Bytecode, ///< compiled bytecode tape (default)
    Native,   ///< dlopen'ed C kernel via the system compiler
};

/** Stable lower-case name ("interp" | "bytecode" | "native"). */
const char *tierName(Tier tier);

/** Parse a tierName() spelling; false (and *out untouched) on
 *  anything else. */
bool parseTier(const std::string &text, Tier *out);

/**
 * How tile regions are scheduled across threads (bytecode tier).
 *
 *   Off    -- sequential lexicographic order (the default).
 *   Static -- fully-parallel bands run under a blocking parallel_for
 *             over their tiles; wavefront/serial bands stay
 *             sequential.
 *   Graph  -- fully-parallel bands take the static fast path;
 *             wavefront bands run through the dynamic ready-queue
 *             executor driven by the inter-tile dependence stencil
 *             (deps::tileGraph); serial bands stay sequential.
 *
 * Parallel runs are bit-identical to sequential runs: tiles of a
 * fully-parallel band write disjoint footprints, and the wavefront
 * DAG orders every cross-tile dependence.
 */
enum class ParStrategy
{
    Off,
    Static,
    Graph,
};

/** Stable lower-case name ("off" | "static" | "graph"). */
const char *parStrategyName(ParStrategy strategy);

/** Parse a parStrategyName() spelling; false (and *out untouched) on
 *  anything else. */
bool parseParStrategy(const std::string &text, ParStrategy *out);

/**
 * Whether the bytecode tier may take its vectorized fast path over
 * unit-stride interval-solved inner loops (see exec/bytecode.hh).
 * Off is the default; On enables per-loop selection with a scalar
 * tail. The vector path executes lanes block-wise with the exact
 * scalar operation sequence per lane -- no reassociation -- so it
 * stays bit-identical to scalar execution.
 */
enum class SimdMode
{
    Off,
    On,
};

/** Stable lower-case name ("off" | "on"). */
const char *simdModeName(SimdMode mode);

/** Parse a simdModeName() spelling; false (and *out untouched) on
 *  anything else. */
bool parseSimdMode(const std::string &text, SimdMode *out);

/** Lane width the vectorized bytecode path executes per block (a
 *  compile-time probe of the host ISA: 8 with AVX2/AVX-512, 4
 *  otherwise). */
unsigned simdWidth();

/** Counters of one parallel run (all zero on sequential runs). */
struct ParRunStats
{
    unsigned threads = 0;   ///< worker threads used (0: sequential)
    ParStrategy strategy = ParStrategy::Off; ///< strategy that ran
    uint64_t regionsParallel = 0;   ///< tile regions run in parallel
    uint64_t regionsSequential = 0; ///< regions kept sequential
    uint64_t tilesExecuted = 0;     ///< tiles launched onto workers
    uint64_t waits = 0;  ///< ready-queue empty spins across workers
    /** Longest dependence chain (in tiles) over the wavefront
     *  regions executed; 1 for purely coincident runs. */
    uint64_t criticalPath = 0;
};

/** How to execute. */
struct ExecOptions
{
    Tier tier = Tier::Bytecode;
    /** Fall back to a lower tier instead of failing (native only). */
    bool allowFallback = true;
    /** Batched trace consumer (interp/bytecode tiers only). */
    TraceSink *sink = nullptr;
    /** Legacy per-access trace hook; adapted via HookSink. */
    TraceHook trace;
    /** Worker threads for parallel strategies (0: hardware count). */
    unsigned threads = 1;
    /** Tile scheduling strategy (bytecode tier only). */
    ParStrategy par = ParStrategy::Off;
    /** Per-band classifications from deps::tileGraph, keyed by
     *  bandId. Without them every region stays sequential (the
     *  coincident flags alone do not prove tile independence once
     *  post-tiling fusion introduces extension statements). */
    const std::vector<deps::TileBandGraph> *tileBands = nullptr;
    /** Vectorized bytecode fast path (bytecode tier only). */
    SimdMode simd = SimdMode::Off;
};

/** What execute() did. */
struct ExecResult
{
    ExecStats stats;
    Tier tier = Tier::Bytecode; ///< the tier that actually ran
    /** Why `tier` differs from the requested one ("" when it ran). */
    std::string fallbackReason;
    /** Parallel-run counters (threads == 0 when sequential ran). */
    ParRunStats par;
    /** Why a requested parallel strategy degraded to sequential
     *  ("" when it ran as requested). */
    std::string parFallbackReason;
    /** The SIMD mode that was actually enabled for the run. */
    SimdMode simd = SimdMode::Off;
    /** Why a requested SimdMode::On degraded to scalar ("" when it
     *  ran as requested; per-loop selection still applies). */
    std::string simdFallbackReason;
};

/**
 * Execute @p ast over @p buffers on the requested tier. Throws
 * FatalError when fallback is disabled and the tier cannot run, or
 * on program shapes no tier supports.
 */
ExecResult execute(const ir::Program &program,
                   const codegen::AstPtr &ast, Buffers &buffers,
                   const ExecOptions &options = {});

/**
 * One named point in the backend space (tier x par x simd) together
 * with its numerical contract. Every registered backend promises
 * either bit-identical buffers against the Tier-0 interpreter
 * (bitIdentical == true; the emitters use `-ffp-contract=off` and
 * the vector path never reassociates) or a bounded L-infinity
 * residual (maxAbsResidual). The differential tests and
 * bench_backends enforce the contract per workload.
 */
struct BackendSpec
{
    const char *name;  ///< stable id, e.g. "bytecode-par4-simd"
    Tier tier;
    ParStrategy par;
    unsigned threads;  ///< worker threads when par != Off
    SimdMode simd;
    bool bitIdentical;     ///< contract: exact buffer equality
    double maxAbsResidual; ///< contract bound when !bitIdentical
};

/** Every backend the engine can run, in reporting order. The list
 *  covers the parallel strategies at >= 2 thread counts so the TSAN
 *  gate exercises real cross-thread interleavings. */
const std::vector<BackendSpec> &backendRegistry();

/** Look a backend up by its stable name; nullptr when unknown. */
const BackendSpec *findBackend(const std::string &name);

/** The ExecOptions that request exactly @p spec. */
ExecOptions backendOptions(const BackendSpec &spec);

/** How far @p got strayed from @p ref, over every tensor. */
struct BufferDeviation
{
    double maxAbs = 0;    ///< L-infinity deviation
    uint64_t maxUlp = 0;  ///< worst lane distance in representable
                          ///< doubles (sign-magnitude ordering)
    bool bitIdentical = true;
};

/** Measure @p got against the reference buffers @p ref (same
 *  program). NaN-vs-non-NaN lanes count as ULONG_MAX ulps. */
BufferDeviation bufferDeviation(const ir::Program &program,
                                const Buffers &ref,
                                const Buffers &got);

} // namespace exec
} // namespace polyfuse

#endif // POLYFUSE_EXEC_ENGINE_HH
