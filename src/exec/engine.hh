/**
 * @file
 * The tier dispatcher: one entry point over the three execution
 * tiers, with graceful degradation.
 *
 *   Tier::Interp   -- the Tier-0 reference interpreter (executor.hh)
 *   Tier::Bytecode -- the Tier-1 bytecode VM (bytecode.hh), default
 *   Tier::Native   -- the Tier-2 dlopen'ed C kernel (native.hh)
 *
 * Requesting Tier::Native with tracing, or when no toolchain /
 * compile / dlopen step works out, falls back to the bytecode tier
 * (unless allowFallback is off, which turns the condition into a
 * FatalError); the result records the tier that actually ran and
 * why any fallback happened, so callers -- the CLI, benchmarks,
 * robustness tests -- can report it.
 */

#ifndef POLYFUSE_EXEC_ENGINE_HH
#define POLYFUSE_EXEC_ENGINE_HH

#include <string>

#include "exec/executor.hh"

namespace polyfuse {
namespace exec {

/** Which execution engine runs the generated AST. */
enum class Tier
{
    Interp,   ///< tree-walking reference interpreter
    Bytecode, ///< compiled bytecode tape (default)
    Native,   ///< dlopen'ed C kernel via the system compiler
};

/** Stable lower-case name ("interp" | "bytecode" | "native"). */
const char *tierName(Tier tier);

/** Parse a tierName() spelling; false (and *out untouched) on
 *  anything else. */
bool parseTier(const std::string &text, Tier *out);

/** How to execute. */
struct ExecOptions
{
    Tier tier = Tier::Bytecode;
    /** Fall back to a lower tier instead of failing (native only). */
    bool allowFallback = true;
    /** Batched trace consumer (interp/bytecode tiers only). */
    TraceSink *sink = nullptr;
    /** Legacy per-access trace hook; adapted via HookSink. */
    TraceHook trace;
};

/** What execute() did. */
struct ExecResult
{
    ExecStats stats;
    Tier tier = Tier::Bytecode; ///< the tier that actually ran
    /** Why `tier` differs from the requested one ("" when it ran). */
    std::string fallbackReason;
};

/**
 * Execute @p ast over @p buffers on the requested tier. Throws
 * FatalError when fallback is disabled and the tier cannot run, or
 * on program shapes no tier supports.
 */
ExecResult execute(const ir::Program &program,
                   const codegen::AstPtr &ast, Buffers &buffers,
                   const ExecOptions &options = {});

} // namespace exec
} // namespace polyfuse

#endif // POLYFUSE_EXEC_ENGINE_HH
