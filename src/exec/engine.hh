/**
 * @file
 * The tier dispatcher: one entry point over the three execution
 * tiers, with graceful degradation.
 *
 *   Tier::Interp   -- the Tier-0 reference interpreter (executor.hh)
 *   Tier::Bytecode -- the Tier-1 bytecode VM (bytecode.hh), default
 *   Tier::Native   -- the Tier-2 dlopen'ed C kernel (native.hh)
 *
 * Requesting Tier::Native with tracing, or when no toolchain /
 * compile / dlopen step works out, falls back to the bytecode tier
 * (unless allowFallback is off, which turns the condition into a
 * FatalError); the result records the tier that actually ran and
 * why any fallback happened, so callers -- the CLI, benchmarks,
 * robustness tests -- can report it.
 */

#ifndef POLYFUSE_EXEC_ENGINE_HH
#define POLYFUSE_EXEC_ENGINE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "deps/tile_graph.hh"
#include "exec/executor.hh"

namespace polyfuse {
namespace exec {

/** Which execution engine runs the generated AST. */
enum class Tier
{
    Interp,   ///< tree-walking reference interpreter
    Bytecode, ///< compiled bytecode tape (default)
    Native,   ///< dlopen'ed C kernel via the system compiler
};

/** Stable lower-case name ("interp" | "bytecode" | "native"). */
const char *tierName(Tier tier);

/** Parse a tierName() spelling; false (and *out untouched) on
 *  anything else. */
bool parseTier(const std::string &text, Tier *out);

/**
 * How tile regions are scheduled across threads (bytecode tier).
 *
 *   Off    -- sequential lexicographic order (the default).
 *   Static -- fully-parallel bands run under a blocking parallel_for
 *             over their tiles; wavefront/serial bands stay
 *             sequential.
 *   Graph  -- fully-parallel bands take the static fast path;
 *             wavefront bands run through the dynamic ready-queue
 *             executor driven by the inter-tile dependence stencil
 *             (deps::tileGraph); serial bands stay sequential.
 *
 * Parallel runs are bit-identical to sequential runs: tiles of a
 * fully-parallel band write disjoint footprints, and the wavefront
 * DAG orders every cross-tile dependence.
 */
enum class ParStrategy
{
    Off,
    Static,
    Graph,
};

/** Stable lower-case name ("off" | "static" | "graph"). */
const char *parStrategyName(ParStrategy strategy);

/** Parse a parStrategyName() spelling; false (and *out untouched) on
 *  anything else. */
bool parseParStrategy(const std::string &text, ParStrategy *out);

/** Counters of one parallel run (all zero on sequential runs). */
struct ParRunStats
{
    unsigned threads = 0;   ///< worker threads used (0: sequential)
    ParStrategy strategy = ParStrategy::Off; ///< strategy that ran
    uint64_t regionsParallel = 0;   ///< tile regions run in parallel
    uint64_t regionsSequential = 0; ///< regions kept sequential
    uint64_t tilesExecuted = 0;     ///< tiles launched onto workers
    uint64_t waits = 0;  ///< ready-queue empty spins across workers
    /** Longest dependence chain (in tiles) over the wavefront
     *  regions executed; 1 for purely coincident runs. */
    uint64_t criticalPath = 0;
};

/** How to execute. */
struct ExecOptions
{
    Tier tier = Tier::Bytecode;
    /** Fall back to a lower tier instead of failing (native only). */
    bool allowFallback = true;
    /** Batched trace consumer (interp/bytecode tiers only). */
    TraceSink *sink = nullptr;
    /** Legacy per-access trace hook; adapted via HookSink. */
    TraceHook trace;
    /** Worker threads for parallel strategies (0: hardware count). */
    unsigned threads = 1;
    /** Tile scheduling strategy (bytecode tier only). */
    ParStrategy par = ParStrategy::Off;
    /** Per-band classifications from deps::tileGraph, keyed by
     *  bandId. Without them every region stays sequential (the
     *  coincident flags alone do not prove tile independence once
     *  post-tiling fusion introduces extension statements). */
    const std::vector<deps::TileBandGraph> *tileBands = nullptr;
};

/** What execute() did. */
struct ExecResult
{
    ExecStats stats;
    Tier tier = Tier::Bytecode; ///< the tier that actually ran
    /** Why `tier` differs from the requested one ("" when it ran). */
    std::string fallbackReason;
    /** Parallel-run counters (threads == 0 when sequential ran). */
    ParRunStats par;
    /** Why a requested parallel strategy degraded to sequential
     *  ("" when it ran as requested). */
    std::string parFallbackReason;
};

/**
 * Execute @p ast over @p buffers on the requested tier. Throws
 * FatalError when fallback is disabled and the tier cannot run, or
 * on program shapes no tier supports.
 */
ExecResult execute(const ir::Program &program,
                   const codegen::AstPtr &ast, Buffers &buffers,
                   const ExecOptions &options = {});

} // namespace exec
} // namespace polyfuse

#endif // POLYFUSE_EXEC_ENGINE_HH
