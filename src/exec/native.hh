/**
 * @file
 * Tier-2 execution: the generated AST emitted as self-contained C,
 * compiled through the system C compiler into a shared object, and
 * dlopen'ed. This runs the *real* generated kernel -- the same code
 * shape codegen/cprinter.hh pretty-prints -- so wall-clock numbers
 * reflect machine code rather than any interpreter.
 *
 * The emitted source pins down bit-exact semantics against the
 * reference interpreter: the same guarded-division / clamped-log
 * forms, llround()-ed indirection indices, and `-ffp-contract=off`
 * so the C compiler cannot fuse multiply-adds the interpreter
 * evaluates separately (tests/test_exec.cc asserts exact buffer
 * equality when a toolchain is present).
 *
 * Everything degrades gracefully: no compiler on PATH, a failed
 * compile, or a failed dlopen yield a NativeKernel with ok() ==
 * false and a human-readable reason(); exec/engine.hh then falls
 * back to the bytecode tier. Failures additionally classify as
 * transient (a flaky `cc` invocation, a failed dlopen, a full or
 * unwritable /tmp -- conditions that can clear on their own) or
 * permanent (no toolchain at all, a missing kernel symbol --
 * retrying cannot help), which is what the compile service's
 * retry-with-backoff keys on. The compile and load steps carry the
 * failpoints `exec.native.compile`, `exec.native.transient` and
 * `exec.native.dlopen` so the robustness suite can force each
 * failure deterministically.
 */

#ifndef POLYFUSE_EXEC_NATIVE_HH
#define POLYFUSE_EXEC_NATIVE_HH

#include <memory>
#include <string>

#include "exec/engine.hh"
#include "exec/executor.hh"

namespace polyfuse {
namespace exec {

/**
 * How the emitted translation unit executes top-level tile loops of
 * fully-parallel bands.
 *
 *   Seq     -- strictly sequential C (the classic Tier-2 kernel).
 *   Omp     -- C with `#pragma omp parallel for schedule(static)`
 *              on each eligible tile loop; needs a toolchain that
 *              accepts and links `-fopenmp`.
 *   Threads -- C++ with a generated std::thread chunked tile-team
 *              per eligible loop (the fallback when OpenMP is
 *              unavailable but a C++ compiler is); a failed thread
 *              spawn degrades *inside the kernel*: already-spawned
 *              chunks are joined and the unspawned remainder runs on
 *              the calling thread, so results never depend on how
 *              many workers actually started.
 */
enum class NativeParMode
{
    Seq,
    Omp,
    Threads,
};

/** Stable lower-case name ("seq" | "omp" | "threads"). */
const char *nativeParModeName(NativeParMode mode);

/** How to compile a native kernel beyond the sequential default. */
struct NativeOptions
{
    /** Off emits the sequential kernel. Static and Graph both
     *  parallelize fully-parallel top-level tile bands (native has
     *  no wavefront executor; wavefront/serial bands stay
     *  sequential under either spelling). */
    ParStrategy par = ParStrategy::Off;
    /** Tile-team size (0: one per hardware thread). Baked into the
     *  emitted code, so it is part of the kernel-cache key. */
    unsigned threads = 0;
    /** Band classifications proving tile independence (same
     *  contract as ExecOptions::tileBands); without them every
     *  band stays sequential. */
    const std::vector<deps::TileBandGraph> *tileBands = nullptr;
};

/**
 * Emit @p ast as a self-contained translation unit defining
 * `void pf_kernel(double **pf_bufs)` (with C linkage), where
 * `pf_bufs[t]` is the flat buffer of tensor t. Program parameters
 * are folded in as named `const int64_t` constants; scratchpad
 * promotions become calloc'ed locals with copy-in, scoped
 * lexically. With a parallel @p mode, top-level tile loops of
 * bands classified fully parallel in @p bands get a tile-team;
 * @p regions_parallel / @p regions_sequential (optional) report how
 * many top-level tile bands were parallelized vs kept sequential.
 */
std::string emitNativeSource(const ir::Program &program,
                             const codegen::AstPtr &ast,
                             NativeParMode mode = NativeParMode::Seq,
                             unsigned threads = 1,
                             const std::vector<deps::TileBandGraph>
                                 *bands = nullptr,
                             unsigned *regions_parallel = nullptr,
                             unsigned *regions_sequential = nullptr);

/** A dlopen'ed compiled kernel (or the reason there isn't one). */
class NativeKernel
{
  public:
    /** Not runnable; ok() == false. */
    NativeKernel() = default;

    /**
     * Emit, compile and load the kernel. Never throws for missing
     * toolchain / compile / load problems -- those come back as
     * ok() == false with reason() set, so callers can fall back.
     */
    static NativeKernel compile(const ir::Program &program,
                                const codegen::AstPtr &ast);

    /**
     * As above, but honoring @p options: with a parallel strategy
     * requested, picks the strongest available parallel toolchain
     * (OpenMP, then generated std::thread, per parallelToolchain())
     * and emits tile-teams over the fully-parallel top-level bands.
     * When the request degrades to a sequential kernel -- no
     * eligible bands, no parallel toolchain -- the kernel still
     * compiles ok() and parReason() says why it runs sequentially.
     */
    static NativeKernel compile(const ir::Program &program,
                                const codegen::AstPtr &ast,
                                const NativeOptions &options);

    /** True when the shared object is loaded and runnable. */
    bool ok() const { return handle_ != nullptr; }

    /** Why compile() produced a non-runnable kernel. */
    const std::string &reason() const { return reason_; }

    /** True when the failure is worth retrying (see file comment);
     *  meaningless when ok(). */
    bool transient() const { return transient_; }

    /** How the compiled kernel parallelizes (Seq unless a parallel
     *  strategy was requested, admitted and emitted). */
    NativeParMode parMode() const { return par_mode_; }

    /** Why a requested parallel strategy came out sequential (""
     *  when it was emitted, or was never requested). */
    const std::string &parReason() const { return par_reason_; }

    /** Tile-team size baked into the kernel (1 when sequential). */
    unsigned threads() const { return threads_; }

    /** Top-level tile bands that got a tile-team. */
    unsigned regionsParallel() const { return regions_parallel_; }

    /** Top-level tile bands kept sequential. */
    unsigned regionsSequential() const { return regions_sequential_; }

    /**
     * Run the kernel over @p buffers. Only wall-clock seconds is
     * populated in the returned stats -- machine code carries no
     * instance/load/store counters. Throws FatalError when !ok().
     */
    ExecStats run(Buffers &buffers) const;

    /** True when a working C compiler is on this machine (cached). */
    static bool toolchainAvailable();

    /**
     * Which parallel emission mode compile() would pick on this
     * machine (cached probes): Omp when the C toolchain accepts and
     * links `-fopenmp`, else Threads when a C++ compiler handles
     * std::thread with `-pthread`, else Seq. Part of the
     * kernel-cache fingerprint, so a cache populated under one
     * toolchain cannot serve another.
     */
    static NativeParMode parallelToolchain();

  private:
    struct Handle; ///< dlopen lifetime; dlclose on destruction

    std::shared_ptr<Handle> handle_;
    std::string reason_ = "not compiled";
    bool transient_ = false;
    NativeParMode par_mode_ = NativeParMode::Seq;
    std::string par_reason_;
    unsigned threads_ = 1;
    unsigned regions_parallel_ = 0;
    unsigned regions_sequential_ = 0;
};

} // namespace exec
} // namespace polyfuse

#endif // POLYFUSE_EXEC_NATIVE_HH
