/**
 * @file
 * Tier-2 execution: the generated AST emitted as self-contained C,
 * compiled through the system C compiler into a shared object, and
 * dlopen'ed. This runs the *real* generated kernel -- the same code
 * shape codegen/cprinter.hh pretty-prints -- so wall-clock numbers
 * reflect machine code rather than any interpreter.
 *
 * The emitted source pins down bit-exact semantics against the
 * reference interpreter: the same guarded-division / clamped-log
 * forms, llround()-ed indirection indices, and `-ffp-contract=off`
 * so the C compiler cannot fuse multiply-adds the interpreter
 * evaluates separately (tests/test_exec.cc asserts exact buffer
 * equality when a toolchain is present).
 *
 * Everything degrades gracefully: no compiler on PATH, a failed
 * compile, or a failed dlopen yield a NativeKernel with ok() ==
 * false and a human-readable reason(); exec/engine.hh then falls
 * back to the bytecode tier. Failures additionally classify as
 * transient (a flaky `cc` invocation, a failed dlopen, a full or
 * unwritable /tmp -- conditions that can clear on their own) or
 * permanent (no toolchain at all, a missing kernel symbol --
 * retrying cannot help), which is what the compile service's
 * retry-with-backoff keys on. The compile and load steps carry the
 * failpoints `exec.native.compile`, `exec.native.transient` and
 * `exec.native.dlopen` so the robustness suite can force each
 * failure deterministically.
 */

#ifndef POLYFUSE_EXEC_NATIVE_HH
#define POLYFUSE_EXEC_NATIVE_HH

#include <memory>
#include <string>

#include "exec/executor.hh"

namespace polyfuse {
namespace exec {

/**
 * Emit @p ast as a self-contained C translation unit defining
 * `void pf_kernel(double **pf_bufs)`, where `pf_bufs[t]` is the
 * flat buffer of tensor t. Program parameters are folded in as
 * named `const int64_t` constants; scratchpad promotions become
 * calloc'ed locals with copy-in, scoped lexically.
 */
std::string emitNativeSource(const ir::Program &program,
                             const codegen::AstPtr &ast);

/** A dlopen'ed compiled kernel (or the reason there isn't one). */
class NativeKernel
{
  public:
    /** Not runnable; ok() == false. */
    NativeKernel() = default;

    /**
     * Emit, compile and load the kernel. Never throws for missing
     * toolchain / compile / load problems -- those come back as
     * ok() == false with reason() set, so callers can fall back.
     */
    static NativeKernel compile(const ir::Program &program,
                                const codegen::AstPtr &ast);

    /** True when the shared object is loaded and runnable. */
    bool ok() const { return handle_ != nullptr; }

    /** Why compile() produced a non-runnable kernel. */
    const std::string &reason() const { return reason_; }

    /** True when the failure is worth retrying (see file comment);
     *  meaningless when ok(). */
    bool transient() const { return transient_; }

    /**
     * Run the kernel over @p buffers. Only wall-clock seconds is
     * populated in the returned stats -- machine code carries no
     * instance/load/store counters. Throws FatalError when !ok().
     */
    ExecStats run(Buffers &buffers) const;

    /** True when a working C compiler is on this machine (cached). */
    static bool toolchainAvailable();

  private:
    struct Handle; ///< dlopen lifetime; dlclose on destruction

    std::shared_ptr<Handle> handle_;
    std::string reason_ = "not compiled";
    bool transient_ = false;
};

} // namespace exec
} // namespace polyfuse

#endif // POLYFUSE_EXEC_NATIVE_HH
