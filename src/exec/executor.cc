#include "exec/executor.hh"

#include <cmath>

#include "support/intmath.hh"
#include "support/logging.hh"
#include "support/timer.hh"

namespace polyfuse {
namespace exec {

using codegen::AstKind;
using codegen::AstNode;
using codegen::AstPtr;
using codegen::BoundAlt;
using codegen::BoundTerm;
using ir::Access;
using ir::Expr;
using ir::Program;
using ir::Statement;

Buffers::Buffers(const Program &program)
{
    for (size_t t = 0; t < program.tensors().size(); ++t) {
        std::vector<int64_t> ext;
        if (program.tensor(t).rank > 8)
            fatal("tensor " + program.tensor(t).name +
                  " exceeds the supported rank (8)");
        for (unsigned d = 0; d < program.tensor(t).rank; ++d)
            ext.push_back(program.tensorExtent(t, d));
        int64_t n = 1;
        for (int64_t e : ext) {
            if (e <= 0)
                fatal("tensor " + program.tensor(t).name +
                      " has non-positive extent");
            n = checkedMul(n, e);
        }
        data_.emplace_back(n, 0.0);
        std::vector<int64_t> str(ext.size(), 1);
        for (size_t d = ext.size(); d-- > 1;)
            str[d - 1] = str[d] * ext[d];
        extents_.push_back(std::move(ext));
        strides_.push_back(std::move(str));
    }
}

int64_t
Buffers::offsetOf(int tensor, const int64_t *idx, size_t rank) const
{
    const auto &ext = extents_.at(tensor);
    if (rank != ext.size())
        fatal("rank mismatch accessing tensor " +
              std::to_string(tensor));
    int64_t off = 0;
    for (size_t d = 0; d < rank; ++d) {
        if (idx[d] < 0 || idx[d] >= ext[d])
            fatal("out-of-bounds access to tensor " +
                  std::to_string(tensor) + " dim " +
                  std::to_string(d) + ": " + std::to_string(idx[d]) +
                  " not in [0, " + std::to_string(ext[d]) + ")");
        off = off * ext[d] + idx[d];
    }
    return off;
}

void
Buffers::fillPattern(int tensor, uint64_t seed)
{
    uint64_t x = seed * 6364136223846793005ULL + 1442695040888963407ULL;
    for (auto &v : data_.at(tensor)) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        v = double(x % 1000) / 500.0 - 1.0;
    }
}

namespace {

/** Deepest tensor rank the fixed index buffers support. */
constexpr size_t kMaxRank = 8;

/** Pre-resolved runtime view of one access. */
struct AccessRt
{
    int tensor = -1;
    /** Per tensor dim: row over [stmt dims, access params, 1]. */
    std::vector<std::vector<int64_t>> rows;
    std::vector<int64_t> paramValues;
};

/** Pre-resolved runtime view of one statement. */
struct StmtRt
{
    const Statement *stmt = nullptr;
    std::vector<AccessRt> accesses; ///< same order as stmt accesses
    int write = -1;
    double ops = 1.0;
};

/** Active scratchpad of one promoted tensor. */
struct Scratch
{
    std::vector<int64_t> origin;
    std::vector<int64_t> extents;
    std::vector<double> data;
};

class Machine
{
  public:
    Machine(const Program &program, Buffers &buffers,
            const TraceHook &trace)
        : prog_(program), buffers_(buffers), trace_(trace)
    {
        for (const auto &name : program.params())
            paramValues_.push_back(program.paramValue(name));
        for (const auto &s : program.statements()) {
            StmtRt rt;
            rt.stmt = &s;
            rt.write = s.writeIndex();
            rt.ops = s.opsPerInstance();
            for (const auto &a : s.accesses()) {
                AccessRt art;
                art.tensor = a.tensor;
                if (a.hasExprs)
                    art.rows = a.indexExprs;
                for (const auto &pname : a.rel.space().params())
                    art.paramValues.push_back(
                        program.paramValue(pname));
                rt.accesses.push_back(std::move(art));
            }
            stmts_.push_back(std::move(rt));
        }
        scratch_.resize(program.tensors().size());
    }

    ExecStats
    run(const AstPtr &ast)
    {
        Timer timer;
        if (ast && ast->numLoopVars > 0)
            vars_.resize(ast->numLoopVars, 0);
        exec(ast);
        stats_.seconds = timer.seconds();
        return stats_;
    }

  private:
    int64_t
    evalTerm(const BoundTerm &t, bool is_lower) const
    {
        int64_t acc = t.constant;
        for (size_t v = 0; v < t.varCoeffs.size(); ++v)
            if (t.varCoeffs[v] != 0)
                acc += t.varCoeffs[v] * vars_[v];
        for (size_t p = 0; p < t.paramCoeffs.size(); ++p)
            if (t.paramCoeffs[p] != 0)
                acc += t.paramCoeffs[p] * paramValues_[p];
        if (t.div == 1)
            return acc;
        return is_lower ? ceilDiv(acc, t.div) : floorDiv(acc, t.div);
    }

    int64_t
    evalAlt(const BoundAlt &alt, bool is_lower) const
    {
        int64_t best = evalTerm(alt[0], is_lower);
        for (size_t i = 1; i < alt.size(); ++i) {
            int64_t v = evalTerm(alt[i], is_lower);
            best = is_lower ? std::max(best, v) : std::min(best, v);
        }
        return best;
    }

    int64_t
    evalBound(const std::vector<BoundAlt> &alts, bool is_lower) const
    {
        int64_t best = evalAlt(alts[0], is_lower);
        for (size_t i = 1; i < alts.size(); ++i) {
            int64_t v = evalAlt(alts[i], is_lower);
            best = is_lower ? std::min(best, v) : std::max(best, v);
        }
        return best;
    }

    double
    loadTensor(int tensor, const int64_t *idx, size_t rank)
    {
        ++stats_.loads;
        const auto &stack = scratch_[tensor];
        if (!stack.empty()) {
            const Scratch &s = stack.back();
            int64_t off = 0;
            for (size_t d = 0; d < rank; ++d) {
                int64_t rel = idx[d] - s.origin[d];
                if (rel < 0 || rel >= s.extents[d])
                    fatal("scratchpad read outside promoted box");
                off = off * s.extents[d] + rel;
            }
            if (trace_)
                trace_(prog_.tensors().size() + tensor, off, false);
            return s.data[off];
        }
        int64_t off = buffers_.offsetOf(tensor, idx, rank);
        if (trace_)
            trace_(tensor, off, false);
        return buffers_.data(tensor)[off];
    }

    void
    storeTensor(int tensor, const int64_t *idx, size_t rank,
                double value)
    {
        ++stats_.stores;
        auto &stack = scratch_[tensor];
        if (!stack.empty()) {
            Scratch &s = stack.back();
            int64_t off = 0;
            for (size_t d = 0; d < rank; ++d) {
                int64_t rel = idx[d] - s.origin[d];
                if (rel < 0 || rel >= s.extents[d])
                    fatal("scratchpad write outside promoted box");
                off = off * s.extents[d] + rel;
            }
            if (trace_)
                trace_(prog_.tensors().size() + tensor, off, true);
            s.data[off] = value;
            return;
        }
        int64_t off = buffers_.offsetOf(tensor, idx, rank);
        if (trace_)
            trace_(tensor, off, true);
        buffers_.data(tensor)[off] = value;
    }

    /** Compute the index vector of access @p a at instance @p iv
     *  into the fixed-capacity @p idx (no per-access allocation). */
    size_t
    accessIndex(const AccessRt &a, const std::vector<int64_t> &iv,
                int64_t *idx) const
    {
        size_t rank = 0;
        for (const auto &row : a.rows) {
            int64_t acc = row.back();
            for (size_t d = 0; d < iv.size(); ++d)
                acc += row[d] * iv[d];
            for (size_t p = 0; p < a.paramValues.size(); ++p)
                acc += row[iv.size() + p] * a.paramValues[p];
            idx[rank++] = acc;
        }
        return rank;
    }

    double
    evalExpr(const Expr &e, const StmtRt &rt,
             const std::vector<int64_t> &iv)
    {
        switch (e.kind) {
          case Expr::Kind::Const:
            return e.value;
          case Expr::Kind::Iter:
            return double(iv.at(e.iter));
          case Expr::Kind::Param:
            return double(prog_.paramValue(e.param));
          case Expr::Kind::LoadAcc: {
            const Statement &s = *rt.stmt;
            int acc_idx = s.readIndices().at(e.access);
            const AccessRt &a = rt.accesses[acc_idx];
            if (a.rows.empty())
                fatal("LoadAcc on non-affine access; use loadIdx");
            int64_t idx[kMaxRank];
            size_t rank = accessIndex(a, iv, idx);
            return loadTensor(a.tensor, idx, rank);
          }
          case Expr::Kind::LoadIdx: {
            int64_t idx[kMaxRank];
            size_t rank = 0;
            for (const auto &arg : e.args)
                idx[rank++] = llround(evalExpr(*arg, rt, iv));
            return loadTensor(e.tensor, idx, rank);
          }
          case Expr::Kind::Unary: {
            double x = evalExpr(*e.args[0], rt, iv);
            switch (e.uop) {
              case ir::UnOp::Neg: return -x;
              case ir::UnOp::Exp: return std::exp(x);
              case ir::UnOp::Log: return std::log(std::abs(x) + 1e-12);
              case ir::UnOp::Sqrt: return std::sqrt(std::abs(x));
              case ir::UnOp::Abs: return std::abs(x);
              case ir::UnOp::Relu: return x > 0 ? x : 0.0;
              case ir::UnOp::Floor: return std::floor(x);
            }
            panic("bad unop");
          }
          case Expr::Kind::Binary: {
            double a = evalExpr(*e.args[0], rt, iv);
            double b = evalExpr(*e.args[1], rt, iv);
            switch (e.bop) {
              case ir::BinOp::Add: return a + b;
              case ir::BinOp::Sub: return a - b;
              case ir::BinOp::Mul: return a * b;
              case ir::BinOp::Div: return a / (b == 0 ? 1e-12 : b);
              case ir::BinOp::Min: return std::min(a, b);
              case ir::BinOp::Max: return std::max(a, b);
            }
            panic("bad binop");
          }
        }
        panic("bad expr kind");
    }

    void
    execStmt(const AstNode &n)
    {
        const StmtRt &rt = stmts_[n.stmt];
        // Guards.
        for (const auto &g : n.guards) {
            int64_t acc = g.constant;
            for (size_t v = 0; v < g.varCoeffs.size(); ++v)
                if (g.varCoeffs[v] != 0)
                    acc += g.varCoeffs[v] * vars_[v];
            for (size_t p = 0; p < g.paramCoeffs.size(); ++p)
                if (g.paramCoeffs[p] != 0)
                    acc += g.paramCoeffs[p] * paramValues_[p];
            if (g.isEq ? acc != 0 : acc < 0) {
                ++stats_.guardFails;
                return;
            }
        }
        // Instance vector.
        iv_.clear();
        for (const auto &[var, off] : n.bindings)
            iv_.push_back(vars_[var] + off);

        ++stats_.instances;
        if (parallelDepth_ > 0)
            ++stats_.instancesParallel;
        stats_.flops += rt.ops;
        if (!rt.stmt->body())
            return;
        double value = evalExpr(*rt.stmt->body(), rt, iv_);
        if (rt.write >= 0) {
            const AccessRt &w = rt.accesses[rt.write];
            if (w.rows.empty())
                fatal("non-affine write access unsupported");
            int64_t idx[kMaxRank];
            size_t rank = accessIndex(w, iv_, idx);
            storeTensor(w.tensor, idx, rank, value);
        }
    }

    void
    enterAlloc(const AstNode &n)
    {
        for (const auto &promo : n.promotions) {
            Scratch s;
            int64_t size = 1;
            unsigned rank = promo.boxLo.size();
            const auto &gext = buffers_.extents(promo.tensor);
            for (unsigned d = 0; d < rank; ++d) {
                int64_t lo = evalBound(promo.boxLo[d], true);
                int64_t hi = evalBound(promo.boxHi[d], false);
                // Clamp to the tensor's global extent.
                lo = std::max<int64_t>(lo, 0);
                hi = std::min<int64_t>(hi, gext[d] - 1);
                if (hi < lo)
                    hi = lo - 1; // empty box
                s.origin.push_back(lo);
                s.extents.push_back(hi - lo + 1);
                size *= std::max<int64_t>(hi - lo + 1, 0);
            }
            s.data.assign(std::max<int64_t>(size, 0), 0.0);
            // Copy-in: producers may read live input values (e.g.
            // in-place quantization).
            if (size > 0)
                copyIn(promo.tensor, s);
            scratch_[promo.tensor].push_back(std::move(s));
        }
    }

    void
    copyIn(int tensor, Scratch &s)
    {
        std::vector<int64_t> idx(s.origin.size(), 0);
        const auto &global = buffers_.data(tensor);
        int64_t n = s.data.size();
        for (int64_t i = 0; i < n; ++i) {
            // Decode i into box coordinates.
            int64_t rem = i;
            for (int d = int(s.extents.size()) - 1; d >= 0; --d) {
                idx[d] = s.origin[d] + rem % s.extents[d];
                rem /= s.extents[d];
            }
            int64_t off = buffers_.offsetOf(tensor, idx);
            s.data[i] = global[off];
        }
    }

    void
    exitAlloc(const AstNode &n)
    {
        for (const auto &promo : n.promotions)
            scratch_[promo.tensor].pop_back();
    }

    void
    exec(const AstPtr &n)
    {
        if (!n)
            return;
        switch (n->kind) {
          case AstKind::Block:
            for (const auto &c : n->children)
                exec(c);
            return;
          case AstKind::Alloc:
            enterAlloc(*n);
            for (const auto &c : n->children)
                exec(c);
            exitAlloc(*n);
            return;
          case AstKind::For: {
            int64_t lo = evalBound(n->lb, true);
            int64_t hi = evalBound(n->ub, false);
            if (vars_.size() <= size_t(n->var))
                vars_.resize(n->var + 1, 0);
            if (n->parallel)
                ++parallelDepth_;
            for (int64_t v = lo; v <= hi; ++v) {
                vars_[n->var] = v;
                for (const auto &c : n->children)
                    exec(c);
            }
            if (n->parallel)
                --parallelDepth_;
            return;
          }
          case AstKind::Stmt:
            execStmt(*n);
            return;
        }
    }

    const Program &prog_;
    Buffers &buffers_;
    TraceHook trace_;
    std::vector<int64_t> paramValues_;
    std::vector<StmtRt> stmts_;
    std::vector<std::vector<Scratch>> scratch_;
    std::vector<int64_t> vars_;
    std::vector<int64_t> iv_;
    int parallelDepth_ = 0;
    ExecStats stats_;
};

} // namespace

ExecStats
run(const Program &program, const AstPtr &ast, Buffers &buffers,
    const TraceHook &trace)
{
    Machine machine(program, buffers, trace);
    return machine.run(ast);
}

} // namespace exec
} // namespace polyfuse
