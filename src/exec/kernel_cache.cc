#include "exec/kernel_cache.hh"

#include <chrono>
#include <thread>

#include "support/failpoint.hh"
#include "support/logging.hh"

namespace polyfuse {
namespace exec {

const NativeKernel *
KernelImage::ensureNative(std::string *reason, bool *transient) const
{
    return ensureNative(NativeOptions{}, reason, transient);
}

const NativeKernel *
KernelImage::ensureNative(const NativeOptions &options,
                          std::string *reason, bool *transient) const
{
    const bool parallel = options.par != ParStrategy::Off;
    unsigned nt = 1;
    if (parallel) {
        nt = options.threads
                 ? options.threads
                 : std::thread::hardware_concurrency();
        if (nt == 0)
            nt = 1;
    }
    std::lock_guard<std::mutex> lock(nativeMu_);
    NativeSlot *slot = nullptr;
    for (auto &s : nativeSlots_)
        if (s->parallel == parallel && s->threads == nt)
            slot = s.get();
    if (!slot) {
        auto fresh = std::make_unique<NativeSlot>();
        fresh->parallel = parallel;
        fresh->threads = nt;
        nativeSlots_.push_back(std::move(fresh));
        slot = nativeSlots_.back().get();
    }
    if (!slot->tried) {
        NativeOptions nopts = options;
        nopts.threads = nt;
        if (!nopts.tileBands)
            nopts.tileBands = &tileBands;
        slot->kernel = NativeKernel::compile(*program, ast, nopts);
        // Memoize success and permanent failure; a transient failure
        // stays un-memoized so a retrying caller gets a fresh
        // attempt instead of the stale verdict.
        slot->tried = slot->kernel.ok() || !slot->kernel.transient();
    }
    if (slot->kernel.ok())
        return &slot->kernel;
    if (reason)
        *reason = slot->kernel.reason();
    if (transient)
        *transient = slot->kernel.transient();
    return nullptr;
}

uint64_t
estimateImageBytes(const KernelImage &image)
{
    // A deliberately cheap over-approximation: the LRU only needs
    // relative weights that track real footprint, not exact ones.
    uint64_t b = sizeof(KernelImage);
    b += uint64_t(image.bytecode.numInstructions()) * 64;
    b += uint64_t(image.bytecode.numStatements()) * 256;
    for (const auto &band : image.genBands) {
        b += sizeof(band);
        b += band.tileSizes.size() * sizeof(int64_t);
        b += band.members.size() * sizeof(codegen::GeneratedBandMember);
    }
    for (const auto &tg : image.tileBands) {
        b += sizeof(tg);
        for (const auto &d : tg.deltas)
            b += d.size() * sizeof(int64_t);
    }
    if (image.program) {
        for (const auto &s : image.program->statements()) {
            b += sizeof(s);
            b += s.accesses().size() * 256;
        }
        b += image.program->tensors().size() *
             sizeof(ir::TensorInfo);
    }
    return b;
}

ExecResult
execute(const KernelImage &image, Buffers &buffers,
        const ExecOptions &options)
{
    ExecResult result;
    Tier tier = options.tier;
    bool tracing = options.sink || options.trace;
    bool want_par = options.par != ParStrategy::Off;

    if (tier == Tier::Native && tracing) {
        if (!options.allowFallback)
            fatal("native tier cannot emit traces");
        result.fallbackReason = "tracing needs an instrumented tier";
        tier = Tier::Bytecode;
    }

    if (tier == Tier::Native) {
        // Same parallel-native ladder as exec::execute (keep them in
        // lockstep): parallel compile -> sequential native ->
        // bytecode, reasons recorded at every step.
        std::string reason;
        const NativeKernel *kernel = nullptr;
        if (want_par) {
            bool planned = true;
            std::string par_reason;
            try {
                failpoints::hit("exec.native.par.spawn");
            } catch (const std::exception &e) {
                planned = false;
                par_reason = e.what();
            }
            if (planned) {
                NativeOptions nopts;
                nopts.par = options.par;
                nopts.threads = options.threads;
                nopts.tileBands = options.tileBands;
                kernel = image.ensureNative(nopts, &par_reason);
            }
            if (!kernel) {
                kernel = image.ensureNative(&reason);
                if (kernel)
                    result.parFallbackReason = par_reason;
            } else if (kernel->parMode() == NativeParMode::Seq) {
                result.parFallbackReason = kernel->parReason();
            } else {
                result.par.threads = kernel->threads();
                result.par.strategy = options.par;
                result.par.regionsParallel =
                    kernel->regionsParallel();
                result.par.regionsSequential =
                    kernel->regionsSequential();
                result.par.criticalPath =
                    kernel->regionsParallel() ? 1 : 0;
            }
        } else {
            kernel = image.ensureNative(&reason);
        }
        if (kernel) {
            if (options.simd == SimdMode::On)
                result.simdFallbackReason = "native tier relies on "
                                            "compiler "
                                            "auto-vectorization";
            result.stats = kernel->run(buffers);
            result.tier = Tier::Native;
            return result;
        }
        if (!options.allowFallback)
            fatal("native tier unavailable: " + reason);
        result.fallbackReason = reason;
        result.par = ParRunStats{};
        tier = Tier::Bytecode;
    }

    if (tier == Tier::Bytecode) {
        const auto *bands = options.tileBands ? options.tileBands
                                              : &image.tileBands;
        if (want_par && tracing) {
            result.parFallbackReason =
                "tracing requires sequential execution";
            want_par = false;
        }
        SimdMode simd = options.simd;
        if (simd == SimdMode::On && tracing) {
            result.simdFallbackReason =
                "tracing requires scalar execution";
            simd = SimdMode::Off;
        }
        if (want_par) {
            result.stats = image.bytecode.runParallel(
                buffers, options.threads, options.par, bands,
                result.par, result.parFallbackReason, simd,
                &result.simdFallbackReason);
        } else if (options.sink) {
            result.stats = image.bytecode.run(buffers, *options.sink);
        } else if (options.trace) {
            result.stats = image.bytecode.run(buffers, options.trace);
        } else {
            result.stats = image.bytecode.run(buffers, simd,
                                              &result.simdFallbackReason);
        }
        if (options.simd == SimdMode::On &&
            result.simdFallbackReason.empty())
            result.simd = SimdMode::On;
        result.tier = Tier::Bytecode;
        return result;
    }

    // Interp tier: no precompiled form to reuse; delegate.
    return execute(*image.program, image.ast, buffers, options);
}

KernelCache::KernelCache(uint64_t capacity_bytes, unsigned shards)
{
    if (!shards)
        shards = 1;
    uint64_t per = capacity_bytes / shards;
    for (unsigned i = 0; i < shards; ++i)
        shards_.push_back(std::make_unique<Shard>(per ? per : 1));
}

KernelCache::Shard &
KernelCache::shardFor(const pres::Fingerprint &fp)
{
    // h2 picks the shard, h1 indexes inside it: independent lanes, so
    // shard skew does not correlate with in-shard collisions.
    return *shards_[size_t(fp.h2 % shards_.size())];
}

std::shared_ptr<const KernelImage>
KernelCache::find(const pres::Fingerprint &fp)
{
    auto t0 = std::chrono::steady_clock::now();
    Shard &shard = shardFor(fp);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto *entry = shard.lru.find(fp);
    std::shared_ptr<const KernelImage> image =
        entry ? *entry : nullptr;
    if (image)
        ++shard.counters.hits;
    else
        ++shard.counters.misses;
    shard.counters.lookupNs += uint64_t(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    return image;
}

void
KernelCache::insert(const pres::Fingerprint &fp,
                    std::shared_ptr<const KernelImage> image)
{
    if (!image)
        return;
    uint64_t weight =
        image->bytes ? image->bytes : estimateImageBytes(*image);
    Shard &shard = shardFor(fp);
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.counters.insertions;
    shard.counters.evictions +=
        shard.lru.insert(fp, std::move(image), weight);
}

void
KernelCache::clear()
{
    for (auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        shard->lru.clear();
    }
}

void
KernelCache::setCapacityBytes(uint64_t bytes)
{
    uint64_t per = bytes / shards_.size();
    for (auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        shard->counters.evictions +=
            shard->lru.setCapacity(per ? per : 1);
    }
}

uint64_t
KernelCache::capacityBytes() const
{
    uint64_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        total += shard->lru.capacity();
    }
    return total;
}

KernelCache::Counters
KernelCache::counters() const
{
    Counters total;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        total.hits += shard->counters.hits;
        total.misses += shard->counters.misses;
        total.insertions += shard->counters.insertions;
        total.evictions += shard->counters.evictions;
        total.lookupNs += shard->counters.lookupNs;
    }
    return total;
}

size_t
KernelCache::entries() const
{
    size_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        total += shard->lru.size();
    }
    return total;
}

uint64_t
KernelCache::bytes() const
{
    uint64_t total = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        total += shard->lru.weight();
    }
    return total;
}

KernelCache &
KernelCache::process()
{
    static KernelCache cache;
    return cache;
}

} // namespace exec
} // namespace polyfuse
