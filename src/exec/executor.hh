/**
 * @file
 * The AST executor: runs generated loop nests over real buffers.
 *
 * The executor is the library's stand-in for compiling the generated
 * OpenMP/CUDA code with a native toolchain: per-iteration overhead is
 * constant across scheduling strategies, so strategy-relative ratios
 * (which is what the paper's evaluation compares) are preserved,
 * while the memory-access *pattern* is exactly that of the generated
 * code -- which is what the cache simulator consumes via the trace
 * hook.
 */

#ifndef POLYFUSE_EXEC_EXECUTOR_HH
#define POLYFUSE_EXEC_EXECUTOR_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "codegen/ast.hh"
#include "ir/program.hh"

namespace polyfuse {
namespace exec {

/** The runtime storage of one program run. */
class Buffers
{
  public:
    /** Allocate one zero-initialized buffer per program tensor. */
    explicit Buffers(const ir::Program &program);

    std::vector<double> &data(int tensor) { return data_.at(tensor); }
    const std::vector<double> &data(int tensor) const
    { return data_.at(tensor); }

    /** Row-major extents of a tensor. */
    const std::vector<int64_t> &extents(int tensor) const
    { return extents_.at(tensor); }

    /** Row-major linear offset of @p idx within @p tensor. */
    int64_t offsetOf(int tensor, const std::vector<int64_t> &idx) const;

    /** Fill a tensor with a deterministic pseudo-random pattern. */
    void fillPattern(int tensor, uint64_t seed);

  private:
    std::vector<std::vector<double>> data_;
    std::vector<std::vector<int64_t>> extents_;
};

/**
 * Memory-trace hook: called per scalar access with a space id (one
 * per tensor; promoted scratchpads get numTensors + tensor), the
 * element offset within the space, and the direction.
 */
using TraceHook =
    std::function<void(int space, int64_t offset, bool is_write)>;

/** Counters of one execution. */
struct ExecStats
{
    uint64_t instances = 0; ///< statement instances executed
    uint64_t instancesParallel = 0; ///< instances under parallel loops
    double flops = 0;       ///< per-statement ops estimate summed
    uint64_t loads = 0;
    uint64_t stores = 0;
    uint64_t guardFails = 0; ///< instances suppressed by guards
    double seconds = 0;      ///< wall-clock of the run
};

/** Execute @p ast over @p buffers. */
ExecStats run(const ir::Program &program, const codegen::AstPtr &ast,
              Buffers &buffers, const TraceHook &trace = nullptr);

} // namespace exec
} // namespace polyfuse

#endif // POLYFUSE_EXEC_EXECUTOR_HH
